package spp_test

import (
	"errors"
	"fmt"

	spp "repro"
)

// Example shows the core SPP flow: tagged pointers, implicit bounds
// checking, and recovery of identical pointers after a restart.
func Example() {
	pool, err := spp.Open(spp.Options{PoolSize: 32 << 20})
	if err != nil {
		panic(err)
	}
	oid, _ := pool.Alloc(64)
	ptr := pool.Direct(oid)
	_ = pool.StoreU64(ptr, 42)
	v, _ := pool.LoadU64(ptr)
	fmt.Println("stored:", v)

	err = pool.StoreU64(pool.Gep(ptr, 64), 1)
	fmt.Println("overflow detected:", errors.Is(err, spp.ErrDetected))
	// Output:
	// stored: 42
	// overflow detected: true
}

// ExamplePool_Begin demonstrates transactional updates: an aborted
// transaction rolls its snapshotted writes back.
func ExamplePool_Begin() {
	pool, _ := spp.Open(spp.Options{PoolSize: 32 << 20})
	oid, _ := pool.Alloc(64)
	ptr := pool.Direct(oid)
	_ = pool.StoreU64(ptr, 1)
	_ = pool.Persist(ptr, 8)

	tx := pool.Begin()
	_ = tx.AddRange(oid.Off, 8)
	_ = pool.StoreU64(ptr, 999)
	_ = tx.Abort()

	v, _ := pool.LoadU64(ptr)
	fmt.Println("after abort:", v)
	// Output:
	// after abort: 1
}

// ExampleAllocSlice shows the typed persistent-pointer layer (the
// libpmemobj-cpp analog): element accesses are bounds-checked.
func ExampleAllocSlice() {
	pool, _ := spp.Open(spp.Options{PoolSize: 32 << 20})
	arr, _ := spp.AllocSlice[uint32](pool, 8)
	for i := 0; i < arr.Len(); i++ {
		_ = arr.Set(i, uint32(i*i))
	}
	v, _ := arr.At(7)
	fmt.Println("arr[7] =", v)
	_, err := arr.At(8)
	fmt.Println("arr[8] detected:", errors.Is(err, spp.ErrDetected))
	// Output:
	// arr[7] = 49
	// arr[8] detected: true
}

// ExamplePool_OpenStore shows the public key-value store surface: the
// pmemkv-style engine over a protected pool, surviving a restart.
func ExamplePool_OpenStore() {
	pool, _ := spp.Open(spp.Options{PoolSize: 64 << 20})
	store, _ := pool.OpenStore(spp.WithShards(8))
	_ = store.Put([]byte("user:1"), []byte("ada"))
	_ = store.Put([]byte("user:2"), []byte("grace"))
	v, ok, _ := store.Get([]byte("user:1"))
	fmt.Println("user:1 =", string(v), ok)

	_ = pool.Reopen()
	store, _ = pool.OpenStore()
	n, _ := store.Count()
	v, _, _ = store.Get([]byte("user:2"))
	fmt.Println("after restart:", n, "keys, user:2 =", string(v))
	// Output:
	// user:1 = ada true
	// after restart: 2 keys, user:2 = grace
}

// ExampleStore_Snapshot shows MVCC snapshot isolation: a pinned
// snapshot keeps observing the versions that were current when it was
// taken, while ordered range scans see the live state.
func ExampleStore_Snapshot() {
	pool, _ := spp.Open(spp.Options{PoolSize: 64 << 20})
	store, _ := pool.OpenStore(spp.WithShards(8))
	_ = store.Put([]byte("user:1"), []byte("ada"))
	_ = store.Put([]byte("user:2"), []byte("grace"))

	snap := store.Snapshot()
	defer snap.Release()
	_ = store.Put([]byte("user:1"), []byte("lovelace")) // after the snapshot
	_ = store.Put([]byte("user:3"), []byte("margaret"))

	old, _, _ := snap.Get([]byte("user:1"))
	live, _, _ := store.Get([]byte("user:1"))
	fmt.Println("snapshot:", string(old), "live:", string(live))

	_ = store.Scan([]byte("user:"), []byte("user;"), func(k, v []byte) bool {
		fmt.Printf("%s = %s\n", k, v)
		return true
	})
	// Output:
	// snapshot: ada live: lovelace
	// user:1 = lovelace
	// user:2 = grace
	// user:3 = margaret
}

// ExamplePool_Reopen shows that persisted oids reconstruct identical
// tagged pointers across a restart (design goal #4).
func ExamplePool_Reopen() {
	pool, _ := spp.Open(spp.Options{PoolSize: 32 << 20})
	root, _ := pool.Root(24)
	oid, _ := pool.Alloc(48)
	ptr := pool.Direct(oid)
	_ = pool.StoreU64(ptr, 7)
	_ = pool.Persist(ptr, 8)
	pool.WriteOid(root.Off, oid)

	_ = pool.Reopen()
	again := pool.Direct(pool.ReadOid(root.Off))
	v, _ := pool.LoadU64(again)
	fmt.Println("same pointer:", again == ptr, "value:", v)
	// Output:
	// same pointer: true value: 7
}
