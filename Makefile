GO ?= go

.PHONY: check fmt vet test race lint-fixtures analysis-smoke bench telemetry-smoke commit-smoke compile-smoke serve-smoke trace-smoke mvcc-smoke

## check: everything CI runs — formatting, vet, build+tests, the race
## detector over the concurrency-sensitive packages, the sppc -lint
## self-check over the shipped IR fixtures, the per-diagnostic
## analysis smoke test, the disabled-telemetry overhead smoke test,
## the commit-pipeline differential crash tests plus a tiny run of
## the commit experiment, the compiled-vs-interpreted differential
## tests plus a tiny run of the compile experiment, the KV service
## suite plus a tiny run of the serve experiment, the request-
## tracing smoke test plus a sampled run of the serve experiment,
## and the MVCC snapshot suite plus a tiny run of the scan experiment.
check: fmt vet test race lint-fixtures analysis-smoke telemetry-smoke commit-smoke compile-smoke serve-smoke trace-smoke mvcc-smoke

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) build ./...
	$(GO) test ./...

## race: the concurrency-sensitive packages under the race detector —
## the memory path (device, allocator, lanes), the runtimes above it,
## the concurrent kvstore workloads, and the compiled dispatch.
race:
	$(GO) test -race ./internal/pmem ./internal/pmemobj ./internal/hooks ./internal/kvstore ./internal/telemetry ./internal/trace ./internal/interp ./internal/server ./internal/wire ./client

## lint-fixtures: the clean fixture must lint clean; the laundered one
## must be flagged (non-zero exit) — both outcomes are asserted.
lint-fixtures:
	$(GO) run ./cmd/sppc -lint examples/compiler-pass/clean.ir
	@if $(GO) run ./cmd/sppc -lint examples/compiler-pass/laundered.ir; then \
		echo "laundered.ir unexpectedly passed lint"; exit 1; \
	else echo "laundered.ir flagged as expected"; fi

## analysis-smoke: every seeded-bug fixture must produce exactly its
## diagnostic code (non-zero exit + the rule name in the output), and
## the clean fixture must stay clean — one fixture per linter rule.
analysis-smoke:
	@set -e; \
	for pair in \
		double-flush.ir:double-flush \
		fence-no-flush.ir:fence-no-pending-flush \
		store-after-flush.ir:store-after-flush-before-fence \
		missing-flush.ir:unflushed-pm-store \
		laundered.ir:laundered-pointer; do \
		f=$${pair%%:*}; rule=$${pair##*:}; \
		out="$$($(GO) run ./cmd/sppc -lint examples/compiler-pass/$$f 2>&1)" \
			&& { echo "$$f unexpectedly passed lint"; exit 1; } || true; \
		echo "$$out" | grep -q "$$rule" \
			|| { echo "$$f did not report $$rule:"; echo "$$out"; exit 1; }; \
		echo "$$f -> $$rule ok"; \
	done
	$(GO) run ./cmd/sppc -lint examples/compiler-pass/clean.ir

bench:
	$(GO) run ./cmd/sppbench -exp all -scale 0.02 | tee bench_results.txt

## telemetry-smoke: asserts the disabled-path cost of an instrumented
## counter stays within an order of magnitude of a bare loop — the
## "near-zero cost while off" contract, plus the Prometheus text-format
## golden test that keeps scrapers working.
telemetry-smoke:
	$(GO) test -run 'TestDisabledOverheadSmoke|TestWritePromGolden' ./internal/telemetry -count=1

## commit-smoke: the batched commit pipeline's recovery-equivalence
## proof — pmreorder exploration at every fence under all eight knob
## combinations plus the batched-vs-unbatched durable-image diff — and
## a tiny-scale run of the commit experiment end to end.
commit-smoke:
	$(GO) test -run 'TestBatchedCommit' ./internal/pmemobj -count=1
	$(GO) run ./cmd/sppbench -exp commit -scale 0.002 -threads 1,2

## compile-smoke: the closure-compiled dispatch must agree with the
## reference interpreter — results, fault verdicts, durable images —
## and the bitmap allocator must round-trip against the map-based
## free lists, plus a tiny run of the compile experiment end to end.
compile-smoke:
	$(GO) test -run 'TestCompile|TestCompiled|TestBitmap|TestFbits' ./internal/interp ./internal/transform ./internal/pmemobj -count=1
	$(GO) run ./cmd/sppbench -exp compile -scale 0.005

## serve-smoke: the KV service suite — multi-tenant clients over a
## real socket, malformed-frame rejection, admission-control shedding
## with bounded latency, kill-and-restart crash recovery — plus a
## tiny closed-loop run of the serve experiment end to end.
serve-smoke:
	$(GO) test ./internal/server ./internal/wire ./client -count=1
	$(GO) run ./cmd/sppbench -exp serve -scale 0.002

## trace-smoke: the end-to-end tracing contract — a fully sampled run
## must attribute queue, exec and fence time and surface a slow-request
## exemplar on /debug/slow (TestTraceSmoke), the trace-header wire
## extension must stay backward compatible, and a sampled closed-loop
## serve run must populate the attribution columns.
trace-smoke:
	$(GO) test -run 'TestTraceSmoke|TestTrace|TestSampler|TestSlow' ./internal/server ./internal/wire ./internal/trace -count=1
	@out="$$($(GO) run ./cmd/sppbench -exp serve -scale 0.002 -trace-sample 4)"; \
	echo "$$out"; \
	echo "$$out" | awk '$$1=="SPP" && $$2=="64" { found=1; if ($$7=="-" || $$7=="") bad=1 } \
		END { exit (found && !bad) ? 0 : 1 }' \
		|| { echo "attribution columns not populated for the SPP/64 row"; exit 1; }

## mvcc-smoke: the MVCC snapshot contract — frozen-under-storm property
## test, epoch-reclaim leak check, differential fault verdicts on the
## snapshot path, mid-storm crash recovery, scan oracle, end-to-end
## OpScan — plus a tiny run of the scan experiment asserting the
## snapshot reader keeps a non-zero read rate under the write storm.
mvcc-smoke:
	$(GO) test -run 'TestSnapshot|TestEpochReclaim|TestScan|TestCrashRecoveryMidStorm|TestRehashMaint' ./internal/kvstore ./internal/server ./internal/wire -count=1
	@out="$$($(GO) run ./cmd/sppbench -exp scan -scale 0.002)"; \
	echo "$$out"; \
	echo "$$out" | awk '$$1=="mvcc" && $$2=="storm" { found=1; if ($$3+0 <= 0) bad=1 } \
		END { exit (found && !bad) ? 0 : 1 }' \
		|| { echo "mvcc/storm row missing or snapshot reads stalled under the write storm"; exit 1; }
