package spp

// One testing.B benchmark per table and figure of the paper's
// evaluation (§VI). Each iteration regenerates the experiment at a
// laptop scale; run `go run ./cmd/sppbench` for the full tables with
// configurable scale. Micro-benchmarks for the SPP hook fast paths
// follow, since they are what the figures ultimately measure.

import (
	"testing"

	"repro/internal/bench"
	"repro/internal/hooks"
)

func benchCfg() bench.Config {
	return bench.Config{Scale: 0.002, Threads: []int{1, 4}, PoolSize: 128 << 20, Seed: 42}
}

// BenchmarkFig4Indices regenerates Figure 4: persistent-index
// throughput under PMDK, SafePM and SPP.
func BenchmarkFig4Indices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5Pmemkv regenerates Figure 5: pmemkv workloads across
// the thread axis.
func BenchmarkFig5Pmemkv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig5(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6Phoenix regenerates Figure 6: the Phoenix suite.
func BenchmarkFig6Phoenix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig6(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig7PMOps regenerates Figure 7: atomic and transactional
// PM management operations across object sizes.
func BenchmarkFig7PMOps(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig7(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Recovery regenerates Table II: recovery time vs
// snapshotted PMEMoids.
func BenchmarkTable2Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Space regenerates Table III: SPP's PM space overhead
// per index.
func BenchmarkTable3Space(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Ripe regenerates Table IV: the RIPE attack matrix
// against every protection mechanism.
func BenchmarkTable4Ripe(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrashConsistency regenerates the §VI-E pmemcheck +
// pmreorder validation.
func BenchmarkCrashConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.CrashConsistency(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation regenerates the DESIGN.md §7 ablation: pass
// optimizations, _direct hooks and the SafePM medium model.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.Ablation(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// Hook-level micro-benchmarks: the per-access cost each mechanism adds.

func benchmarkLoad(b *testing.B, prot Protection) {
	pool, err := Open(Options{PoolSize: 64 << 20, Protection: prot})
	if err != nil {
		b.Fatal(err)
	}
	oid, err := pool.Alloc(4096)
	if err != nil {
		b.Fatal(err)
	}
	p := pool.Direct(oid)
	rt := pool.Runtime()
	b.ResetTimer()
	var s uint64
	for i := 0; i < b.N; i++ {
		v, err := hooks.LoadU64(rt, rt.Gep(p, int64(i%512)*8))
		if err != nil {
			b.Fatal(err)
		}
		s += v
	}
	sink = s
}

var sink uint64

// BenchmarkCheckedLoadPMDK is the uninstrumented baseline access cost.
func BenchmarkCheckedLoadPMDK(b *testing.B) { benchmarkLoad(b, ProtectionNone) }

// BenchmarkCheckedLoadSPP measures SPP's tag-arithmetic access cost.
func BenchmarkCheckedLoadSPP(b *testing.B) { benchmarkLoad(b, ProtectionSPP) }

// BenchmarkCheckedLoadSafePM measures the shadow-memory access cost.
func BenchmarkCheckedLoadSafePM(b *testing.B) { benchmarkLoad(b, ProtectionSafePM) }

// BenchmarkCheckedLoadMemcheck measures the addressability-tracking
// access cost.
func BenchmarkCheckedLoadMemcheck(b *testing.B) { benchmarkLoad(b, ProtectionMemcheck) }
