package spp

import (
	"errors"
	"testing"
)

func open(t *testing.T, prot Protection) *Pool {
	t.Helper()
	p, err := Open(Options{PoolSize: 16 << 20, Protection: prot})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQuickstartFlow(t *testing.T) {
	pool := open(t, ProtectionSPP)
	if pool.Protection() != ProtectionSPP {
		t.Errorf("Protection = %q", pool.Protection())
	}
	if pool.TagBits() != DefaultTagBits {
		t.Errorf("TagBits = %d", pool.TagBits())
	}
	oid, err := pool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	ptr := pool.Direct(oid)
	if err := pool.StoreU64(ptr, 42); err != nil {
		t.Fatal(err)
	}
	v, err := pool.LoadU64(ptr)
	if err != nil || v != 42 {
		t.Fatalf("LoadU64 = %d, %v", v, err)
	}
	if err := pool.Persist(ptr, 8); err != nil {
		t.Fatal(err)
	}
	// The headline behaviour: one past the end faults.
	bad := pool.Gep(ptr, 64)
	if err := pool.StoreU64(bad, 1); !errors.Is(err, ErrDetected) {
		t.Errorf("overflow error = %v, want ErrDetected", err)
	}
	if err := pool.Free(oid); err != nil {
		t.Fatal(err)
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(Options{}); err == nil {
		t.Error("Open without PoolSize succeeded")
	}
	if _, err := Open(Options{PoolSize: 16 << 20, Protection: "bogus"}); err == nil {
		t.Error("Open with bogus protection succeeded")
	}
	p, err := Open(Options{PoolSize: 16 << 20}) // default protection
	if err != nil {
		t.Fatal(err)
	}
	if p.Protection() != ProtectionSPP {
		t.Errorf("default protection = %q", p.Protection())
	}
}

func TestAllProtections(t *testing.T) {
	for _, prot := range []Protection{ProtectionNone, ProtectionSPP, ProtectionSafePM, ProtectionMemcheck} {
		t.Run(string(prot), func(t *testing.T) {
			pool := open(t, prot)
			oid, err := pool.Alloc(128)
			if err != nil {
				t.Fatal(err)
			}
			ptr := pool.Direct(oid)
			if err := pool.StoreBytes(ptr, []byte("persistent data")); err != nil {
				t.Fatal(err)
			}
			got, err := pool.LoadBytes(ptr, 15)
			if err != nil || string(got) != "persistent data" {
				t.Fatalf("LoadBytes = %q, %v", got, err)
			}
			if prot != ProtectionNone {
				if err := pool.Memset(ptr, 0, 129); !errors.Is(err, ErrDetected) {
					t.Errorf("memset overflow = %v", err)
				}
			}
		})
	}
}

func TestTransactionsAndReopen(t *testing.T) {
	pool := open(t, ProtectionSPP)
	root, err := pool.Root(64)
	if err != nil {
		t.Fatal(err)
	}
	tx := pool.Begin()
	oid, err := pool.TxAlloc(tx, 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddRange(root.Off, 24); err != nil {
		t.Fatal(err)
	}
	pool.WriteOid(root.Off, oid)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	ptr := pool.Direct(pool.ReadOid(root.Off))
	if err := pool.StoreU64(ptr, 0xfeed); err != nil {
		t.Fatal(err)
	}
	if err := pool.Persist(ptr, 8); err != nil {
		t.Fatal(err)
	}

	if err := pool.Reopen(); err != nil {
		t.Fatal(err)
	}
	got := pool.ReadOid(root.Off)
	if got.Size != 256 {
		t.Errorf("oid.Size after reopen = %d", got.Size)
	}
	ptr2 := pool.Direct(got)
	if ptr != ptr2 {
		t.Errorf("tagged pointer changed across reopen: %#x vs %#x", ptr, ptr2)
	}
	v, err := pool.LoadU64(ptr2)
	if err != nil || v != 0xfeed {
		t.Errorf("after reopen = %#x, %v", v, err)
	}
	if err := pool.StoreU8(pool.Gep(ptr2, 256), 1); !errors.Is(err, ErrDetected) {
		t.Errorf("bounds not enforced after reopen: %v", err)
	}
}

func TestStringWrappers(t *testing.T) {
	pool := open(t, ProtectionSPP)
	src, _ := pool.Alloc(32)
	dst, _ := pool.Alloc(8)
	ps, pd := pool.Direct(src), pool.Direct(dst)
	if err := pool.StoreBytes(ps, append([]byte("hello"), 0)); err != nil {
		t.Fatal(err)
	}
	if err := pool.Strcpy(pd, ps); err != nil {
		t.Fatal(err)
	}
	n, err := pool.Strlen(pd)
	if err != nil || n != 5 {
		t.Errorf("Strlen = %d, %v", n, err)
	}
	if err := pool.StoreBytes(ps, append([]byte("too long for dst"), 0)); err != nil {
		t.Fatal(err)
	}
	if err := pool.Strcpy(pd, ps); !errors.Is(err, ErrDetected) {
		t.Errorf("strcpy overflow = %v", err)
	}
}

func TestExternalMasking(t *testing.T) {
	pool := open(t, ProtectionSPP)
	oid, _ := pool.Alloc(64)
	ptr := pool.Direct(oid)
	masked := pool.External(ptr)
	if err := pool.AddressSpace().StoreU64(masked, 7); err != nil {
		t.Fatalf("raw store through masked pointer: %v", err)
	}
	if v, _ := pool.LoadU64(ptr); v != 7 {
		t.Error("external store invisible")
	}
}

func TestMaxObjectSize(t *testing.T) {
	pool, err := Open(Options{PoolSize: 16 << 20, TagBits: 10})
	if err != nil {
		t.Fatal(err)
	}
	if pool.MaxObjectSize() != 1024 {
		t.Errorf("MaxObjectSize = %d", pool.MaxObjectSize())
	}
	if _, err := pool.Alloc(1025); err == nil {
		t.Error("oversized alloc accepted")
	}
}

func TestAllocAtFreeAt(t *testing.T) {
	pool := open(t, ProtectionSPP)
	root, _ := pool.Root(64)
	if err := pool.AllocAt(root.Off, 96); err != nil {
		t.Fatal(err)
	}
	oid := pool.ReadOid(root.Off)
	if oid.Size != 96 {
		t.Errorf("published oid = %v", oid)
	}
	before := pool.Stats().AllocatedObjects
	if err := pool.FreeAt(root.Off); err != nil {
		t.Fatal(err)
	}
	if got := pool.Stats().AllocatedObjects; got != before-1 {
		t.Errorf("objects = %d, want %d", got, before-1)
	}
	// Realloc via facade.
	oid2, err := pool.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	oid3, err := pool.Realloc(oid2, 4096)
	if err != nil || oid3.Size != 4096 {
		t.Fatalf("Realloc = %v, %v", oid3, err)
	}
	tx := pool.Begin()
	if err := pool.TxFree(tx, oid3); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestFilePersistence(t *testing.T) {
	path := t.TempDir() + "/pool.img"
	opts := Options{PoolSize: 16 << 20, Protection: ProtectionSPP}
	pool, err := OpenFile(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	root, err := pool.Root(24)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := pool.Alloc(48)
	if err != nil {
		t.Fatal(err)
	}
	ptr := pool.Direct(oid)
	if err := pool.StoreU64(ptr, 0xfeedbeef); err != nil {
		t.Fatal(err)
	}
	if err := pool.Persist(ptr, 8); err != nil {
		t.Fatal(err)
	}
	pool.WriteOid(root.Off, oid)
	if err := pool.SaveFile(path); err != nil {
		t.Fatal(err)
	}

	// A "new process": open the file, recover, verify tags and data.
	pool2, err := OpenFile(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	root2, err := pool2.Root(24)
	if err != nil {
		t.Fatal(err)
	}
	got := pool2.ReadOid(root2.Off)
	if got.Size != 48 {
		t.Fatalf("oid after reload = %v", got)
	}
	p2 := pool2.Direct(got)
	if v, err := pool2.LoadU64(p2); err != nil || v != 0xfeedbeef {
		t.Fatalf("data after reload = %#x, %v", v, err)
	}
	if err := pool2.StoreU8(pool2.Gep(p2, 48), 1); !errors.Is(err, ErrDetected) {
		t.Errorf("bounds not enforced after reload: %v", err)
	}
}
