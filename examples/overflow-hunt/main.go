// Overflow hunt: reproductions of the real bugs §VI-D of the paper
// reports SPP finding, rebuilt on this stack:
//
//  1. the PMDK btree_map memmove overflow (pmem/pmdk#5333): shifting
//     node entries during a split moves one slot too many;
//  2. the PMDK libpmemobj array example's unchecked realloc: when a
//     grow fails, the code fills the "new" cells of the old, smaller
//     array;
//  3. the Phoenix string_match off-by-one: the scanner reads one byte
//     past the input buffer (kozyraki/phoenix#9).
//
// Each bug is run under native PMDK (silent corruption) and under SPP
// (detected at the faulting access).
//
// Run with: go run ./examples/overflow-hunt
package main

import (
	"errors"
	"fmt"
	"log"

	spp "repro"
	"repro/internal/indices"
	"repro/internal/phoenix"
	"repro/internal/telemetry"
	"repro/internal/variant"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Println("bug 1: btree_map memmove overflow (pmem/pmdk#5333)")
	if err := btreeMemmoveBug(); err != nil {
		return err
	}
	fmt.Println("\nbug 2: array example's unchecked realloc")
	if err := arrayReallocBug(); err != nil {
		return err
	}
	fmt.Println("\nbug 3: phoenix string_match off-by-one (kozyraki/phoenix#9)")
	return stringMatchBug()
}

// btreeMemmoveBug triggers pmem/pmdk#5333 inside the real persistent
// B-tree: with the split guard disabled (the upstream bug's missing
// precondition), inserting into a full node shifts its items one slot
// past the node object through the interposed memmove.
func btreeMemmoveBug() error {
	for _, kind := range []variant.Kind{variant.PMDK, variant.SPP} {
		env, err := variant.New(kind, variant.Options{PoolSize: 32 << 20})
		if err != nil {
			return err
		}
		m, err := indices.New("btree", env.RT)
		if err != nil {
			return err
		}
		for k := uint64(10); k <= 70; k += 10 { // fill the root node
			if err := m.Insert(k, k); err != nil {
				return err
			}
		}
		if err := m.(indices.BugInjector).InjectBug("pmdk-5333"); err != nil {
			return err
		}
		prot := spp.ProtectionNone
		if kind == variant.SPP {
			prot = spp.ProtectionSPP
		}
		report(prot, m.Insert(5, 5))
	}
	return nil
}

// arrayReallocBug models the libpmemobj array example (lines 215/235/
// 257): the realloc return value is unchecked, and after a failed grow
// the code fills the new cells of the array that never grew.
func arrayReallocBug() error {
	for _, prot := range []spp.Protection{spp.ProtectionNone, spp.ProtectionSPP} {
		pool, err := spp.Open(spp.Options{PoolSize: 16 << 20, Protection: prot})
		if err != nil {
			return err
		}
		const oldElems, newElems = 8, 16
		arr, err := pool.Alloc(oldElems * 8)
		if err != nil {
			return err
		}
		if _, err := pool.Alloc(64); err != nil { // the victim neighbour
			return err
		}
		// The grow "fails" (here: is skipped), but like the example the
		// code does not check and fills elements oldElems..newElems-1
		// of the supposedly resized array.
		p := pool.Direct(arr)
		var bugErr error
		for i := int64(oldElems); i < newElems; i++ {
			if bugErr = pool.StoreU64(pool.Gep(p, i*8), uint64(i)); bugErr != nil {
				break
			}
		}
		report(prot, bugErr)
	}
	return nil
}

// stringMatchBug runs the ported Phoenix kernel with the upstream
// off-by-one enabled.
func stringMatchBug() error {
	for _, kind := range []variant.Kind{variant.PMDK, variant.SPP} {
		env, err := variant.New(kind, variant.Options{PoolSize: 32 << 20})
		if err != nil {
			return err
		}
		_, err = phoenix.StringMatchBuggy(env.RT, 2000, 1)
		prot := spp.ProtectionNone
		if kind == variant.SPP {
			prot = spp.ProtectionSPP
		}
		report(prot, err)
	}
	return nil
}

func report(prot spp.Protection, err error) {
	switch {
	case errors.Is(err, spp.ErrDetected), err != nil && prot == spp.ProtectionSPP:
		fmt.Printf("  %-6s DETECTED: %v\n", prot, err)
		for _, v := range telemetry.Audit.RecordsSince(auditMark) {
			fmt.Printf("         audit: %s\n", v)
		}
	case err != nil:
		fmt.Printf("  %-6s unexpected error: %v\n", prot, err)
	default:
		fmt.Printf("  %-6s silent (corruption written to the neighbouring object)\n", prot)
	}
	auditMark = telemetry.Audit.Total()
}

// auditMark tracks the audit-trail high-water mark so each report
// prints only the records its own bug produced.
var auditMark uint64
