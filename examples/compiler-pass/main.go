// Compiler-pass example: a small "C program" in the mini-IR is run
// through SPP's transformation and LTO passes and then executed — once
// under the native toolchain (the overflow silently corrupts a
// neighbour) and once under SPP (the injected hooks trap it). The
// instrumented IR is printed so the injected __spp_* calls, the
// pruned volatile accesses and the merged bound checks are visible.
//
// Run with: go run ./examples/compiler-pass
package main

import (
	"fmt"
	"log"

	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/transform"
	"repro/internal/variant"
)

// program mixes everything the pass has to reason about: persistent
// and volatile pointers, pointer arithmetic, an external call, a
// memory intrinsic, and a buffer overflow at the end.
const program = `
extern @ext_store8
func @main() {
entry:
  %sz = const 64
  %oid = pmalloc %sz
  %p = direct %oid          ; persistent: instrumented with _direct hooks
  %m = malloc %sz
  %v = const 7
  store.8 %m, %v            ; volatile: instrumentation pruned
  store.8 %p, %v            ; proven in-bounds: hooks elided (rebased on cleantag)
  %q = gep %p, 8
  store.8 %q, %v            ; %q also escapes into memcpy below: stays tagged+checked
  %r = callext @ext_store8, %p, %v   ; pointer masked before the call
  %n = const 16
  memcpy %q, %p, %n         ; interposed with the checking wrapper
  %oid2 = pmalloc %sz
  %p2 = direct %oid2
  %over = gep %p, 64
  store.8 %over, %v         ; BUG: one past the end of %p
  ret %v
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mod, err := ir.Parse(program)
	if err != nil {
		return err
	}
	instrumented, stats, err := transform.Apply(mod, transform.Options{})
	if err != nil {
		return err
	}
	fmt.Println("--- instrumented module ---")
	fmt.Print(instrumented.String())
	fmt.Printf("\n--- pass statistics ---\n")
	fmt.Printf("updatetag calls:  %d\n", stats.UpdateTags)
	fmt.Printf("checkbound calls: %d (+%d merged away by preemption)\n", stats.CheckBounds, stats.Preempted)
	fmt.Printf("elided by proof:  %d checks, %d tag updates\n", stats.RangeElidedChecks, stats.RangeElidedTags)
	fmt.Printf("external masks:   %d\n", stats.CleanExternals)
	fmt.Printf("wrapped intrins:  %d\n", stats.WrappedIntrins)
	fmt.Printf("pruned volatile:  %d\n", stats.PrunedVolatile)
	fmt.Printf("_direct hooks:    %d\n", stats.DirectHooks)

	for _, kind := range []variant.Kind{variant.PMDK, variant.SPP} {
		env, err := variant.New(kind, variant.Options{PoolSize: 32 << 20})
		if err != nil {
			return err
		}
		ret, err := interp.New(instrumented, env).Run("main")
		fmt.Printf("\n--- running the hardened binary under %s ---\n", kind)
		switch {
		case hooks.IsSafetyTrap(err):
			fmt.Printf("PM buffer overflow detected: %v\n", err)
		case err != nil:
			return err
		default:
			fmt.Printf("@main returned %d (overflow went undetected)\n", ret)
		}
	}
	return nil
}
