// Quickstart: safe persistent pointers in a few lines.
//
// The program opens an SPP-protected pool, allocates a persistent
// object, accesses it through tagged pointers, demonstrates the
// implicit bounds check catching a buffer overflow, and shows that the
// tags reconstruct identically after a restart.
//
// Run with: go run ./examples/quickstart
package main

import (
	"errors"
	"fmt"
	"log"

	spp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pool, err := spp.Open(spp.Options{
		PoolSize:   64 << 20,
		Protection: spp.ProtectionSPP,
	})
	if err != nil {
		return err
	}
	fmt.Printf("pool opened: protection=%s tag-bits=%d max-object=%d bytes\n",
		pool.Protection(), pool.TagBits(), pool.MaxObjectSize())

	// Allocate a 64-byte persistent object. The oid carries the size
	// (the SPP PMEMoid extension) and Direct builds a tagged pointer.
	oid, err := pool.Alloc(64)
	if err != nil {
		return err
	}
	ptr := pool.Direct(oid)
	fmt.Printf("allocated %v\ntagged pointer: %#016x (PM bit + negated-size tag + address)\n", oid, ptr)

	// In-bounds accesses work exactly like plain pointers.
	for i := int64(0); i < 8; i++ {
		if err := pool.StoreU64(pool.Gep(ptr, i*8), uint64(i*i)); err != nil {
			return err
		}
	}
	if err := pool.Persist(ptr, 64); err != nil {
		return err
	}
	v, err := pool.LoadU64(pool.Gep(ptr, 56))
	if err != nil {
		return err
	}
	fmt.Printf("slot[7] = %d\n", v)

	// Walking one byte past the end sets the overflow bit; the access
	// faults with no explicit check anywhere.
	overflown := pool.Gep(ptr, 64)
	err = pool.StoreU64(overflown, 0xbad)
	if !errors.Is(err, spp.ErrDetected) {
		return fmt.Errorf("expected a detected overflow, got %v", err)
	}
	fmt.Printf("buffer overflow detected: %v\n", err)

	// Pointer arithmetic back in range revalidates the pointer (§IV-A).
	recovered := pool.Gep(overflown, -8)
	if err := pool.StoreU64(recovered, 99); err != nil {
		return err
	}
	fmt.Println("pointer walked back in bounds is valid again")

	// Store the oid persistently and restart: Direct rebuilds the same
	// tagged pointer from the persisted size field.
	root, err := pool.Root(32)
	if err != nil {
		return err
	}
	pool.WriteOid(root.Off, oid)
	if err := pool.Reopen(); err != nil {
		return err
	}
	again := pool.Direct(pool.ReadOid(root.Off))
	fmt.Printf("after restart: pointer %#016x (identical: %v)\n", again, again == ptr)
	v, err = pool.LoadU64(pool.Gep(again, 56))
	if err != nil {
		return err
	}
	fmt.Printf("slot[7] still = %d; bounds still enforced: ", v)
	err = pool.StoreU64(pool.Gep(again, 64), 1)
	fmt.Println(errors.Is(err, spp.ErrDetected))
	return nil
}
