// Persistent key-value store example: the pmemkv-style engine on top
// of the protected pool — puts, gets, deletes, concurrent access, and
// recovery after a simulated restart, all under SPP protection and all
// through the public spp API (no internal packages).
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"sync"

	spp "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	pool, err := spp.Open(spp.Options{PoolSize: 128 << 20})
	if err != nil {
		return err
	}
	store, err := pool.OpenStore()
	if err != nil {
		return err
	}

	// Concurrent writers, like pmemkv's cmap engine.
	const writers = 4
	const perWriter = 500
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				key := fmt.Sprintf("user:%d:%04d", w, i)
				val := fmt.Sprintf(`{"writer":%d,"seq":%d}`, w, i)
				if err := store.Put([]byte(key), []byte(val)); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	n, err := store.Count()
	if err != nil {
		return err
	}
	fmt.Printf("loaded %d keys from %d concurrent writers\n", n, writers)

	val, ok, err := store.Get([]byte("user:2:0042"))
	if err != nil {
		return err
	}
	fmt.Printf("get user:2:0042 -> %q (found=%v)\n", val, ok)

	if _, err := store.Delete([]byte("user:2:0042")); err != nil {
		return err
	}
	if _, ok, _ = store.Get([]byte("user:2:0042")); ok {
		return fmt.Errorf("delete did not stick")
	}
	fmt.Println("deleted user:2:0042")

	stats := pool.Stats()
	fmt.Printf("pool usage: %d objects, %.1f MB allocated\n",
		stats.AllocatedObjects, float64(stats.AllocatedBytes)/(1<<20))

	// Simulated restart: recovery runs, shard locks and SPP tags are
	// rebuilt, and the data is all still there.
	if err := pool.Reopen(); err != nil {
		return err
	}
	store2, err := pool.OpenStore()
	if err != nil {
		return err
	}
	n2, err := store2.Count()
	if err != nil {
		return err
	}
	val, _, err = store2.Get([]byte("user:0:0007"))
	if err != nil {
		return err
	}
	fmt.Printf("after restart: %d keys, user:0:0007 -> %q\n", n2, val)
	return nil
}
