// Command pmemcheck validates crash consistency the way §VI-E does:
// it records the store/flush/fence trace of an index workload, runs
// the pmemcheck protocol analysis over it, and explores power-loss
// states pmreorder-style, recovering and validating the structure at
// each one.
//
// Usage:
//
//	pmemcheck                      # all four indices, 200 ops each
//	pmemcheck -index ctree -ops 1000 -every 4
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"repro/internal/indices"
	"repro/internal/pmem"
	"repro/internal/pmemcheck"
	"repro/internal/variant"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pmemcheck:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("pmemcheck", flag.ContinueOnError)
	index := fs.String("index", "", "single index kind (default: all)")
	ops := fs.Int("ops", 200, "operations in the recorded window")
	every := fs.Int("every", 8, "explore crash states at every Nth fence")
	maxStates := fs.Int("max-states", 500, "cap on explored crash states")
	if err := fs.Parse(args); err != nil {
		return err
	}
	kinds := indices.AllKinds
	if *index != "" {
		kinds = []string{*index}
	}
	var failed []string
	for _, kind := range kinds {
		if err := check(kind, *ops, *every, *maxStates); err != nil {
			fmt.Printf("%-8s FAIL: %v\n", kind, err)
			var ce *pmemcheck.ConsistencyError
			if errors.As(err, &ce) {
				for _, v := range ce.Audit {
					fmt.Printf("%-8s audit: %s\n", kind, v)
				}
			}
			failed = append(failed, kind)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("crash-consistency check failed for %v", failed)
	}
	return nil
}

func check(kind string, ops, every, maxStates int) error {
	env, err := variant.New(variant.SPP, variant.Options{PoolSize: 64 << 20})
	if err != nil {
		return err
	}
	m, err := indices.New(kind, env.RT)
	if err != nil {
		return err
	}
	for k := 1; k <= ops/2; k++ {
		if err := m.Insert(uint64(k), uint64(k)); err != nil {
			return err
		}
	}
	base := make([]byte, env.Dev.Size())
	copy(base, env.Dev.Data())

	tracker := pmemcheck.NewTracker()
	env.Dev.EnableTracking(tracker)
	for k := ops/2 + 1; k <= ops; k++ {
		if err := m.Insert(uint64(k), uint64(k)); err != nil {
			return err
		}
	}
	for k := 1; k <= ops/4; k++ {
		if _, err := m.Remove(uint64(k)); err != nil {
			return err
		}
	}
	env.Dev.DisableTracking()

	events := tracker.Events()
	rep := pmemcheck.Analyze(events)
	if !rep.Clean() {
		for _, v := range rep.Violations {
			fmt.Printf("%-8s violation: %s\n", kind, v)
		}
		return fmt.Errorf("%d protocol violations", len(rep.Violations))
	}
	states, err := pmemcheck.Explore(base, events,
		pmemcheck.ExploreOptions{EveryNthFence: every, MaxSingles: 4, MaxStates: maxStates},
		func(img []byte) error { return validate(img, kind, ops) })
	if err != nil {
		return err
	}
	fmt.Printf("%-8s OK: %d stores, %d fences, 0 violations, %d crash states consistent\n",
		kind, rep.Stores, rep.Fences, states)
	return nil
}

func validate(img []byte, kind string, maxKey int) error {
	dev := pmem.NewPool("crash-image", uint64(len(img)))
	copy(dev.Data(), img)
	env, err := variant.Adopt(variant.SPP, dev)
	if err != nil {
		return err
	}
	m, err := indices.New(kind, env.RT)
	if err != nil {
		return err
	}
	want, err := m.Count()
	if err != nil {
		return err
	}
	var got uint64
	for k := 1; k <= maxKey; k++ {
		v, ok, err := m.Get(uint64(k))
		if err != nil {
			return fmt.Errorf("get(%d): %w", k, err)
		}
		if ok {
			got++
			if v != uint64(k) {
				return fmt.Errorf("key %d maps to %d", k, v)
			}
		}
	}
	if got != want {
		return fmt.Errorf("count %d but %d reachable", want, got)
	}
	return nil
}
