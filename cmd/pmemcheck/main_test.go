package main

import "testing"

func TestCheckOneIndex(t *testing.T) {
	if err := run([]string{"-index", "ctree", "-ops", "40", "-every", "16", "-max-states", "60"}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckBadIndex(t *testing.T) {
	if err := run([]string{"-index", "splaytree", "-ops", "10"}); err == nil {
		t.Error("unknown index accepted")
	}
}
