// Command sppc is the SPP "compiler" driver: it parses a mini-IR
// module, runs the SPP transformation and LTO passes over it, prints
// the instrumented module and pass statistics, and optionally executes
// the result under a chosen protection mechanism.
//
// Usage:
//
//	sppc program.ir                     # instrument and print
//	sppc -run -protection spp prog.ir   # instrument and execute @main
//	sppc -demo                          # built-in overflow demo
//	sppc -no-tracking -no-preempt ...   # ablate individual passes
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/transform"
	"repro/internal/variant"
)

const demo = `; Demo: in-bounds writes succeed, the out-of-bounds one faults.
func @main() {
entry:
  %size = const 64
  %oid = pmalloc %size
  %p = direct %oid
  %v = const 7
  store.8 %p, %v
  %q = gep %p, 56
  store.8 %q, %v
  %over = gep %p, 64
  store.8 %over, %v       ; one past the end: SPP faults here
  ret %v
}
`

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sppc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sppc", flag.ContinueOnError)
	doRun := fs.Bool("run", false, "execute @main after instrumenting")
	prot := fs.String("protection", "spp", "execution variant: pmdk, spp, safepm, memcheck")
	useDemo := fs.Bool("demo", false, "use the built-in demo program")
	noTracking := fs.Bool("no-tracking", false, "disable pointer tracking")
	noPreempt := fs.Bool("no-preempt", false, "disable bound-check preemption")
	noHoist := fs.Bool("no-hoist", false, "disable loop check hoisting")
	noLTO := fs.Bool("no-lto", false, "disable the LTO class refinement")
	restore := fs.Bool("restore-intptr", false, "re-derive laundered pointers via use-def chains (§IV-G mitigation)")
	quiet := fs.Bool("q", false, "do not print the modules")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src string
	switch {
	case *useDemo:
		src = demo
	case fs.NArg() == 1:
		b, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("usage: sppc [flags] <program.ir> (or -demo)")
	}

	mod, err := ir.Parse(src)
	if err != nil {
		return err
	}
	opts := transform.Options{
		DisablePointerTracking: *noTracking,
		DisablePreemption:      *noPreempt,
		DisableHoisting:        *noHoist,
		DisableLTO:             *noLTO,
		RestoreIntPtr:          *restore,
	}
	instrumented, stats, err := transform.Apply(mod, opts)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Println("--- input module ---")
		fmt.Print(mod.String())
		fmt.Println("--- instrumented module ---")
		fmt.Print(instrumented.String())
	}
	fmt.Printf("--- pass statistics ---\n%+v\n", stats)

	if !*doRun {
		return nil
	}
	env, err := variant.New(variant.Kind(*prot), variant.Options{PoolSize: 64 << 20})
	if err != nil {
		return err
	}
	ret, err := interp.New(instrumented, env).Run("main")
	switch {
	case hooks.IsSafetyTrap(err):
		fmt.Printf("--- execution under %s ---\nMEMORY-SAFETY VIOLATION DETECTED: %v\n", *prot, err)
	case err != nil:
		return err
	default:
		fmt.Printf("--- execution under %s ---\n@main returned %d\n", *prot, ret)
	}
	return nil
}
