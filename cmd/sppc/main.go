// Command sppc is the SPP "compiler" driver: it parses a mini-IR
// module, runs the SPP transformation and LTO passes over it, prints
// the instrumented module and pass statistics, and optionally executes
// the result under a chosen protection mechanism. It also fronts the
// IR safety linter built on the dataflow framework.
//
// Usage:
//
//	sppc program.ir                     # instrument and print
//	sppc -run -protection spp prog.ir   # instrument and execute @main
//	sppc -lint prog.ir                  # safety lint only, no codegen
//	sppc -stats -q prog.ir              # per-analysis statistics table
//	sppc -demo                          # built-in overflow demo
//	sppc -no-tracking -no-preempt ...   # ablate individual passes
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/engine"
	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/telemetry"
	"repro/internal/transform"
	"repro/internal/variant"
)

const demo = `; Demo: in-bounds writes succeed, the out-of-bounds one faults.
func @main() {
entry:
  %size = const 64
  %oid = pmalloc %size
  %p = direct %oid
  %v = const 7
  store.8 %p, %v
  %q = gep %p, 56
  store.8 %q, %v
  %over = gep %p, 64
  store.8 %over, %v       ; one past the end: SPP faults here
  ret %v
}
`

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sppc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sppc", flag.ContinueOnError)
	doRun := fs.Bool("run", false, "execute @main after instrumenting")
	prot := fs.String("protection", "spp", "execution variant: pmdk, spp, safepm, memcheck")
	useDemo := fs.Bool("demo", false, "use the built-in demo program")
	doLint := fs.Bool("lint", false, "run the IR safety linter; non-zero exit on findings")
	doStats := fs.Bool("stats", false, "print the per-analysis statistics table")
	noTracking := fs.Bool("no-tracking", false, "disable pointer tracking")
	noPreempt := fs.Bool("no-preempt", false, "disable bound-check preemption")
	noHoist := fs.Bool("no-hoist", false, "disable loop check hoisting")
	noElide := fs.Bool("no-elide", false, "disable value-range check elision")
	noLoop := fs.Bool("no-loop", false, "disable the loop analysis tier (IV ranges, invariant hoist, widened checks)")
	noFlushElim := fs.Bool("no-flush-elim", false, "disable static elimination of provably-redundant flushes")
	noLTO := fs.Bool("no-lto", false, "disable the LTO class refinement")
	restore := fs.Bool("restore-intptr", false, "re-derive laundered pointers via use-def chains (§IV-G mitigation)")
	quiet := fs.Bool("q", false, "do not print the modules")
	knobs := engine.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var src, name string
	switch {
	case *useDemo:
		src, name = demo, "demo"
	case fs.NArg() == 1:
		name = fs.Arg(0)
		b, err := os.ReadFile(name)
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("usage: sppc [flags] <program.ir> (or -demo)")
	}

	mod, err := ir.Parse(src)
	if err != nil {
		return err
	}

	if *doLint {
		diags := analysis.Lint(mod)
		if len(diags) == 0 {
			fmt.Fprintf(out, "lint: %s: clean\n", name)
			return nil
		}
		for _, d := range diags {
			fmt.Fprintf(out, "%s: %s\n", name, d)
		}
		return fmt.Errorf("lint: %d issue(s) in %s", len(diags), name)
	}

	opts := transform.Options{
		DisablePointerTracking: *noTracking,
		DisablePreemption:      *noPreempt,
		DisableHoisting:        *noHoist,
		DisableValueRange:      *noElide,
		DisableLoopOpt:         *noLoop,
		DisableFlushElim:       *noFlushElim,
		DisableLTO:             *noLTO,
		RestoreIntPtr:          *restore,
	}
	instrumented, stats, err := transform.Apply(mod, opts)
	if err != nil {
		return err
	}
	if !*quiet {
		fmt.Fprintln(out, "--- input module ---")
		fmt.Fprint(out, mod.String())
		fmt.Fprintln(out, "--- instrumented module ---")
		fmt.Fprint(out, instrumented.String())
	}
	var mach *interp.Machine
	if *doStats || *doRun {
		env, err := variant.New(variant.Kind(*prot),
			variant.Options{PoolSize: 64 << 20, Knobs: *knobs})
		if err != nil {
			return err
		}
		mach = interp.New(instrumented, env)
	}
	if *doStats {
		printStats(out, stats)
		fmt.Fprintln(out, "closure compilation:")
		if knobs.NoCompile {
			fmt.Fprintln(out, "  disabled (-no-compile)")
		} else {
			cst := mach.CompileAll()
			fmt.Fprintf(out, "  funcs compiled        %d\n", cst.Funcs)
			fmt.Fprintf(out, "  thunks emitted        %d\n", cst.Thunks)
			fmt.Fprintf(out, "  hooks inlined         %d\n", cst.Hooks)
			fmt.Fprintf(out, "  interp fallbacks      %d\n", cst.Fallbacks)
		}
		fmt.Fprintln(out, "safety linter:")
		fmt.Fprintf(out, "  diagnostics           %d\n", len(analysis.Lint(mod)))
	} else {
		fmt.Fprintf(out, "--- pass statistics ---\n%+v\n", stats)
	}

	if !*doRun {
		return nil
	}
	auditMark := telemetry.Audit.Total()
	ret, err := mach.Run("main")
	switch {
	case hooks.IsSafetyTrap(err):
		fmt.Fprintf(out, "--- execution under %s ---\nMEMORY-SAFETY VIOLATION DETECTED: %v\n", *prot, err)
		for _, v := range telemetry.Audit.RecordsSince(auditMark) {
			fmt.Fprintf(out, "audit: %s\n", v)
		}
	case err != nil:
		return err
	default:
		fmt.Fprintf(out, "--- execution under %s ---\n@main returned %d\n", *prot, ret)
	}
	return nil
}

// printStats renders the statistics grouped by the analysis that
// produced them, one "name value" line each — stable output for
// scripting and golden tests.
func printStats(out io.Writer, s transform.Stats) {
	fmt.Fprintln(out, "--- per-analysis statistics ---")
	fmt.Fprintln(out, "pointer provenance (interprocedural):")
	fmt.Fprintf(out, "  persistent values     %d\n", s.ClassPersistent)
	fmt.Fprintf(out, "  volatile values       %d\n", s.ClassVolatile)
	fmt.Fprintf(out, "  unknown values        %d\n", s.ClassUnknown)
	fmt.Fprintf(out, "  reclassified          %d\n", s.Reclassified)
	fmt.Fprintf(out, "  pruned volatile hooks %d\n", s.PrunedVolatile)
	fmt.Fprintln(out, "value-range bound proving:")
	fmt.Fprintf(out, "  elided checks         %d\n", s.RangeElidedChecks)
	fmt.Fprintf(out, "  elided tag updates    %d\n", s.RangeElidedTags)
	fmt.Fprintf(out, "  cleantag anchors      %d\n", s.RangeAnchors)
	fmt.Fprintln(out, "classic optimizations:")
	fmt.Fprintf(out, "  preempted checks      %d\n", s.Preempted)
	fmt.Fprintf(out, "  hoisted checks        %d\n", s.Hoisted)
	fmt.Fprintf(out, "  restored int-to-ptrs  %d\n", s.RestoredPtrs)
	fmt.Fprintln(out, "loop analysis:")
	fmt.Fprintf(out, "  invariant hoisted     %d\n", s.LoopInvariantHoisted)
	fmt.Fprintf(out, "  widened IV checks     %d\n", s.WidenedIVChecks)
	fmt.Fprintln(out, "persistence ordering:")
	fmt.Fprintf(out, "  flushes elided        %d\n", s.FlushesElided)
	fmt.Fprintln(out, "instrumentation:")
	fmt.Fprintf(out, "  updatetag hooks       %d\n", s.UpdateTags)
	fmt.Fprintf(out, "  checkbound hooks      %d\n", s.CheckBounds)
	fmt.Fprintf(out, "  cleantag hooks        %d\n", s.CleanTags)
	fmt.Fprintf(out, "  external-call masks   %d\n", s.CleanExternals)
	fmt.Fprintf(out, "  wrapped intrinsics    %d\n", s.WrappedIntrins)
	fmt.Fprintf(out, "  _direct hooks         %d\n", s.DirectHooks)
}
