package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunDemo(t *testing.T) {
	if err := run([]string{"-demo", "-q"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-q", "-run"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-q", "-run", "-protection", "pmdk"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-q", "-no-tracking", "-no-preempt",
		"-no-hoist", "-no-elide", "-no-lto", "-restore-intptr"}, io.Discard); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-q", "-run", "-no-compile"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestStatsNoCompile: with -no-compile the stats table must say so
// instead of reporting zero compiled functions.
func TestStatsNoCompile(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-demo", "-q", "-stats", "-no-compile"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "disabled (-no-compile)") {
		t.Errorf("-stats -no-compile output lacks the disabled marker:\n%s", buf.String())
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.ir")
	src := "func @main() {\nentry:\n  %x = const 5\n  ret %x\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-q", "-run", path}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil, io.Discard); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"/nonexistent.ir"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-demo", "-q", "-run", "-protection", "bogus"}, io.Discard); err == nil {
		t.Error("bogus protection accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.ir")
	if err := os.WriteFile(path, []byte("not ir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-q", path}, io.Discard); err == nil {
		t.Error("bad IR accepted")
	}
}

// TestLintCommand lints the shipped example fixtures: the clean one
// must pass, the laundered one must fail with both diagnostics and an
// actionable repair hint.
func TestLintCommand(t *testing.T) {
	var buf strings.Builder
	clean := filepath.Join("..", "..", "examples", "compiler-pass", "clean.ir")
	if err := run([]string{"-lint", clean}, &buf); err != nil {
		t.Fatalf("clean fixture flagged: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "clean") {
		t.Errorf("missing clean verdict: %s", buf.String())
	}

	buf.Reset()
	laundered := filepath.Join("..", "..", "examples", "compiler-pass", "laundered.ir")
	err := run([]string{"-lint", laundered}, &buf)
	if err == nil {
		t.Fatalf("laundered fixture passed lint:\n%s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"laundered-pointer", "unmasked-external", "-restore-intptr", "spp.cleantag.ext"} {
		if !strings.Contains(out, want) {
			t.Errorf("lint output lacks %q:\n%s", want, out)
		}
	}
}

// TestStatsGolden pins the -stats table for the built-in demo against
// a golden file, so the per-analysis reporting stays stable.
func TestStatsGolden(t *testing.T) {
	var buf strings.Builder
	if err := run([]string{"-demo", "-q", "-stats"}, &buf); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "stats_demo.golden")
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != string(want) {
		t.Errorf("-stats output drifted from %s:\n--- got ---\n%s--- want ---\n%s",
			goldenPath, buf.String(), want)
	}
}
