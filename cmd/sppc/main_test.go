package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDemo(t *testing.T) {
	if err := run([]string{"-demo", "-q"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-q", "-run"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-q", "-run", "-protection", "pmdk"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-demo", "-q", "-no-tracking", "-no-preempt", "-no-hoist", "-no-lto", "-restore-intptr"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prog.ir")
	src := "func @main() {\nentry:\n  %x = const 5\n  ret %x\n}\n"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-q", "-run", path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"/nonexistent.ir"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-demo", "-q", "-run", "-protection", "bogus"}); err == nil {
		t.Error("bogus protection accepted")
	}
	path := filepath.Join(t.TempDir(), "bad.ir")
	if err := os.WriteFile(path, []byte("not ir"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-q", path}); err == nil {
		t.Error("bad IR accepted")
	}
}
