// Command sppbench regenerates the tables and figures of the paper's
// evaluation (§VI). Each experiment prints the same rows or series the
// paper reports, at a configurable scale.
//
// Usage:
//
//	sppbench -exp all -scale 0.01
//	sppbench -exp fig4 -scale 0.1 -pool 1073741824
//	sppbench -exp table4
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/telemetry"
)

type experiment struct {
	name string
	desc string
	run  func(bench.Config) (bench.Table, error)
}

var experiments = []experiment{
	{"fig4", "persistent indices (Figure 4)", bench.Fig4},
	{"fig5", "pmemkv workloads (Figure 5)", bench.Fig5},
	{"fig6", "Phoenix suite (Figure 6)", bench.Fig6},
	{"fig7", "PM management operations (Figure 7)", bench.Fig7},
	{"table2", "recovery time (Table II)", bench.Table2},
	{"table3", "PM space overhead (Table III)", bench.Table3},
	{"table4", "RIPE attacks (Table IV)", bench.Table4},
	{"crash", "crash consistency (§VI-E)", bench.CrashConsistency},
	{"ablation", "design-choice ablation (DESIGN.md §7)", bench.Ablation},
	{"elide", "static elision tiers: range, loop, persistence (DESIGN.md §13)", bench.Elide},
	{"scaling", "memory-path concurrency scaling (DESIGN.md §10)", bench.Scaling},
	{"steal", "cross-arena steal rates under skewed size classes (DESIGN.md §11)", bench.Steal},
	{"commit", "commit pipeline batching (DESIGN.md §12)", bench.Commit},
	{"compile", "closure compilation vs reference interpreter (DESIGN.md §14)", bench.Compile},
	{"serve", "KV service under closed-loop load (DESIGN.md §15)", bench.ServeBench},
	{"scan", "snapshot reads and range scans under write storm (DESIGN.md §17)", bench.ScanBench},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sppbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sppbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment: all, "+names())
	scale := fs.Float64("scale", 0.01, "fraction of the paper's operation counts (1.0 = paper scale)")
	pool := fs.Uint64("pool", 256<<20, "pool size in bytes per environment")
	threads := fs.String("threads", "1,2,4,8", "comma-separated thread axis for fig5/scaling")
	seed := fs.Int64("seed", 42, "workload seed")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics, /debug/vars, /debug/audit, /debug/flight and /debug/pprof on this address (implies -metrics)")
	knobs := engine.RegisterFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *metricsAddr != "" {
		knobs.Telemetry = true
	}
	if knobs.Telemetry {
		telemetry.Enable()
	}
	if knobs.FlightRecorder {
		telemetry.Flight.Enable()
	}
	if *metricsAddr != "" {
		addr, closeTelemetry, err := telemetry.Serve(*metricsAddr, telemetry.Default)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer closeTelemetry()
		fmt.Printf("telemetry: serving http://%s/metrics (and /debug/vars, /debug/audit, /debug/flight, /debug/pprof)\n", addr)
	}
	var ts []int
	for _, part := range strings.Split(*threads, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad -threads value %q", part)
		}
		ts = append(ts, n)
	}
	cfg := bench.Config{
		Scale: *scale, PoolSize: *pool, Threads: ts, Seed: *seed,
		Knobs: *knobs,
	}

	selected := experiments
	if *exp != "all" {
		selected = nil
		for _, e := range experiments {
			if e.name == *exp {
				selected = []experiment{e}
			}
		}
		if selected == nil {
			return fmt.Errorf("unknown experiment %q (want all, %s)", *exp, names())
		}
	}
	for _, e := range selected {
		fmt.Printf("running %s ...\n", e.desc)
		start := time.Now()
		table, err := e.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Println(table.Format())
		fmt.Printf("(%s in %.1fs)\n\n", e.name, time.Since(start).Seconds())
	}
	if knobs.FlightRecorder {
		fmt.Println("== flight recorder (most recent events) ==")
		if _, err := telemetry.Flight.WriteTo(os.Stdout); err != nil {
			return err
		}
	}
	return nil
}

func names() string {
	out := make([]string, len(experiments))
	for i, e := range experiments {
		out[i] = e.name
	}
	return strings.Join(out, ", ")
}
