package main

import "testing"

func TestRunOneExperiment(t *testing.T) {
	if err := run([]string{"-exp", "ablation", "-scale", "0.001", "-pool", "67108864"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunValidation(t *testing.T) {
	if err := run([]string{"-exp", "bogus"}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if err := run([]string{"-threads", "0"}); err == nil {
		t.Error("bad threads accepted")
	}
	if err := run([]string{"-threads", "x"}); err == nil {
		t.Error("non-numeric threads accepted")
	}
}
