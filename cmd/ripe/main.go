// Command ripe runs the RIPE buffer-overflow attack matrix (the
// paper's Table IV) against one or all protection mechanisms and
// reports which attacks succeed.
//
// Usage:
//
//	ripe                # the full Table IV
//	ripe -row spp -v    # one row, listing surviving attacks
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ripe"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "ripe:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("ripe", flag.ContinueOnError)
	row := fs.String("row", "", "single row: volatile-heap, pm-pool-heap, safepm, spp, memcheck")
	verbose := fs.Bool("v", false, "list the attacks that succeeded")
	if err := fs.Parse(args); err != nil {
		return err
	}
	runner := &ripe.Runner{}
	rows := ripe.Rows
	if *row != "" {
		found := false
		for _, r := range ripe.Rows {
			if string(r) == *row {
				rows = []ripe.RowKind{r}
				found = true
			}
		}
		if !found {
			return fmt.Errorf("unknown row %q", *row)
		}
	}
	byID := make(map[int]ripe.Attack)
	for _, a := range ripe.Matrix() {
		byID[a.ID] = a
	}
	fmt.Printf("RIPE 64-bit PM port: %d buffer-overflow attack instances\n\n", len(byID))
	fmt.Printf("%-16s %12s %12s\n", "variant", "successful", "prevented")
	for _, r := range rows {
		res, err := runner.RunRow(r)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s %12d %12d\n", r, res.Successful, res.Prevented)
		if *verbose {
			for _, id := range res.SucceededIDs {
				fmt.Printf("    surviving: %s\n", byID[id])
			}
		}
	}
	return nil
}
