package main

import "testing"

func TestRunSingleRow(t *testing.T) {
	if err := run([]string{"-row", "spp", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadRow(t *testing.T) {
	if err := run([]string{"-row", "bogus"}); err == nil {
		t.Error("bogus row accepted")
	}
}
