// Command sppserver runs the multi-tenant KV service: per-tenant
// protected pools behind the internal/wire protocol, with admission
// control shedding load past the configured in-flight window.
//
//	sppserver -addr :7421 -protection spp -data /var/lib/spp
//
// SIGINT/SIGTERM trigger a graceful shutdown: in-flight requests
// drain, then every tenant pool is saved (when -data is set) and
// closed.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/engine"
	"repro/internal/server"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sppserver:", err)
		os.Exit(1)
	}
}

func run(argv []string) error {
	fs := flag.NewFlagSet("sppserver", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7421", "listen address")
	protection := fs.String("protection", "spp", "protection variant: none, spp, safepm, memcheck")
	pool := fs.Uint64("pool", server.DefaultPoolSize, "per-tenant pool size in bytes")
	tagBits := fs.Uint("tag-bits", 0, "SPP tag bits (0 = paper default)")
	shards := fs.Uint64("shards", 0, "kvstore shards per tenant (0 = default)")
	dataDir := fs.String("data", "", "directory for tenant pool images (empty = volatile)")
	inFlight := fs.Int("max-inflight", server.DefaultMaxInFlight, "admission window: concurrently executing requests")
	queue := fs.Int("max-queue", 0, "admission queue depth before shedding (0 = 2*max-inflight)")
	tenants := fs.Int("max-tenants", server.DefaultMaxTenants, "maximum distinct tenants")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics and /debug handlers on this address (implies -metrics)")
	knobs := engine.RegisterFlags(fs)
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *metricsAddr != "" {
		knobs.Telemetry = true
	}

	srv, err := server.New(server.Config{
		Protection:  *protection,
		PoolSize:    *pool,
		TagBits:     *tagBits,
		Shards:      *shards,
		DataDir:     *dataDir,
		MaxInFlight: *inFlight,
		MaxQueue:    *queue,
		MaxTenants:  *tenants,
		Knobs:       *knobs,
	})
	if err != nil {
		return err
	}
	if *metricsAddr != "" {
		maddr, closeTelemetry, err := telemetry.Serve(*metricsAddr, telemetry.Default)
		if err != nil {
			return fmt.Errorf("-metrics-addr: %w", err)
		}
		defer closeTelemetry()
		fmt.Printf("telemetry: serving http://%s/metrics\n", maddr)
	}

	bound, err := srv.Listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("sppserver: %s pools, serving %s\n", *protection, bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	<-sig
	fmt.Println("sppserver: shutting down")
	return srv.Close()
}
