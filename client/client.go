// Package client is the Go client library for the sppserver KV
// service. A Client is bound to one tenant on one connection and is
// safe for concurrent use: requests are serialized onto the wire in
// order (the protocol is strictly request/response per connection).
// Open several clients for pipelined load.
//
// Shedding is a first-class outcome: when the server's admission
// control rejects a request, calls fail with ErrOverloaded — the
// operation was never executed and can be retried. Server-side
// failures (including memory-safety traps) surface as *ServerError.
package client

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/trace"
	"repro/internal/wire"
)

// ErrOverloaded reports that the server shed the request before
// executing it; retrying after backoff is safe.
var ErrOverloaded = wire.ErrOverloaded

// ServerError is an error reported by the server while executing an
// operation (as opposed to transport or shedding errors).
type ServerError struct{ Msg string }

func (e *ServerError) Error() string { return "server: " + e.Msg }

// Client is one tenant's handle to a KV service.
type Client struct {
	tenant  string
	sampler *trace.Sampler

	mu   sync.Mutex
	conn net.Conn
	br   *bufio.Reader
	bw   *bufio.Writer
}

// Option configures a Client at Dial time.
type Option func(*Client)

// WithTracing makes the client mint a trace context for one in n
// requests (n <= 1 traces every request). A sampled request carries
// the context in its wire frame, and the server records a per-phase
// latency breakdown for it. Only sampled requests change the frame
// encoding, so a client with sampling configured still interoperates
// with pre-tracing servers on the unsampled ones; a traced frame sent
// to such a server fails with a "bad op" *ServerError rather than
// misbehaving. Requires a server that understands the trace header.
func WithTracing(n int) Option {
	return func(c *Client) { c.sampler = trace.NewSampler(n) }
}

// Dial connects to a sppserver at addr and binds the client to tenant.
func Dial(addr, tenant string, opts ...Option) (*Client, error) {
	if tenant == "" || len(tenant) > wire.MaxTenantLen {
		return nil, fmt.Errorf("client: invalid tenant %q", tenant)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		tenant: tenant,
		conn:   conn,
		br:     bufio.NewReader(conn),
		bw:     bufio.NewWriter(conn),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Close closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	return err
}

// do performs one round trip. The connection lock spans write and read
// so concurrent callers cannot interleave frames.
func (c *Client) do(req wire.Request) (wire.Response, error) {
	req.Tenant = c.tenant
	if c.sampler != nil {
		if tc := c.sampler.Next(); tc.Sampled {
			req.Trace = tc
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return wire.Response{}, errors.New("client: closed")
	}
	if err := wire.WriteRequest(c.bw, req); err != nil {
		return wire.Response{}, err
	}
	if err := c.bw.Flush(); err != nil {
		return wire.Response{}, err
	}
	resp, err := wire.ReadResponse(c.br)
	if err != nil {
		return wire.Response{}, err
	}
	switch resp.Status {
	case wire.StatusOverloaded:
		return resp, ErrOverloaded
	case wire.StatusError:
		return resp, &ServerError{Msg: string(resp.Payload)}
	}
	return resp, nil
}

// Get fetches key. ok is false when the key is absent.
func (c *Client) Get(key []byte) (value []byte, ok bool, err error) {
	resp, err := c.do(wire.Request{Op: wire.OpGet, Key: key})
	if err != nil {
		return nil, false, err
	}
	if resp.Status == wire.StatusNotFound {
		return nil, false, nil
	}
	return resp.Payload, true, nil
}

// Put stores value under key, overwriting any prior value.
func (c *Client) Put(key, value []byte) error {
	_, err := c.do(wire.Request{Op: wire.OpPut, Key: key, Value: value})
	return err
}

// Delete removes key; removed is false when it was absent.
func (c *Client) Delete(key []byte) (removed bool, err error) {
	resp, err := c.do(wire.Request{Op: wire.OpDelete, Key: key})
	if err != nil {
		return false, err
	}
	return resp.Status != wire.StatusNotFound, nil
}

// Scan returns up to limit key/value pairs in [lo, hi) in ascending
// key order (nil lo scans from the start, nil hi to the end, limit 0
// means no client-side limit). The server runs the scan against a
// single consistent snapshot, so the result never interleaves with
// concurrent writes; it may still be truncated by the response frame
// budget — re-issue with lo set past the last returned key to page.
func (c *Client) Scan(lo, hi []byte, limit uint32) ([]wire.KV, error) {
	resp, err := c.do(wire.Request{Op: wire.OpScan, Key: lo, Hi: hi, Limit: limit})
	if err != nil {
		return nil, err
	}
	return wire.ParseScanResult(resp.Payload)
}

// Count returns the number of live keys in the tenant's store.
func (c *Client) Count() (uint64, error) {
	resp, err := c.do(wire.Request{Op: wire.OpCount})
	if err != nil {
		return 0, err
	}
	return wire.ParseCount(resp.Payload)
}
