package client

import (
	"errors"
	"strings"
	"testing"
)

func TestDialRejectsBadTenant(t *testing.T) {
	if _, err := Dial("127.0.0.1:0", ""); err == nil {
		t.Error("empty tenant accepted")
	}
	if _, err := Dial("127.0.0.1:0", strings.Repeat("a", 300)); err == nil {
		t.Error("oversized tenant accepted")
	}
}

func TestServerErrorMatching(t *testing.T) {
	err := error(&ServerError{Msg: "boom"})
	var se *ServerError
	if !errors.As(err, &se) || se.Msg != "boom" {
		t.Errorf("errors.As failed on %v", err)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Errorf("Error() = %q", err.Error())
	}
}

func TestClosedClientFails(t *testing.T) {
	c := &Client{tenant: "t"}
	if err := c.Put([]byte("k"), []byte("v")); err == nil {
		t.Error("Put on closed client succeeded")
	}
}
