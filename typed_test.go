package spp

import (
	"errors"
	"testing"
)

func TestTypedSliceRoundTrip(t *testing.T) {
	pool := open(t, ProtectionSPP)
	arr, err := AllocSlice[uint64](pool, 16)
	if err != nil {
		t.Fatal(err)
	}
	if arr.IsNull() || arr.Len() != 16 {
		t.Fatalf("arr = %+v", arr)
	}
	for i := 0; i < 16; i++ {
		if err := arr.Set(i, uint64(i*i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := arr.Persist(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		v, err := arr.At(i)
		if err != nil || v != uint64(i*i) {
			t.Fatalf("At(%d) = %d, %v", i, v, err)
		}
	}
	// The typed dereference is what the mechanism checks: one past the
	// end faults.
	if _, err := arr.At(16); !errors.Is(err, ErrDetected) {
		t.Errorf("At(len) = %v, want ErrDetected", err)
	}
	if err := arr.Set(16, 1); !errors.Is(err, ErrDetected) {
		t.Errorf("Set(len) = %v, want ErrDetected", err)
	}
	if err := arr.Free(); err != nil {
		t.Fatal(err)
	}
}

func TestTypedNarrowTypes(t *testing.T) {
	pool := open(t, ProtectionSPP)

	b, err := AllocSlice[uint8](pool, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Set(9, 0xAB); err != nil {
		t.Fatal(err)
	}
	if v, _ := b.At(9); v != 0xAB {
		t.Errorf("u8 = %#x", v)
	}
	if _, err := b.At(10); !errors.Is(err, ErrDetected) {
		t.Errorf("u8 overflow = %v", err)
	}

	w, err := AllocSlice[uint16](pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Set(3, 0xBEEF); err != nil {
		t.Fatal(err)
	}
	if v, _ := w.At(3); v != 0xBEEF {
		t.Errorf("u16 = %#x", v)
	}
	if _, err := w.At(4); !errors.Is(err, ErrDetected) {
		t.Errorf("u16 overflow = %v", err)
	}

	q, err := AllocSlice[int32](pool, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Set(0, -5); err != nil {
		t.Fatal(err)
	}
	if v, _ := q.At(0); v != -5 {
		t.Errorf("i32 = %d", v)
	}
}

func TestTypedNamedType(t *testing.T) {
	type Key uint64
	pool := open(t, ProtectionSPP)
	arr, err := AllocSlice[Key](pool, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := arr.Set(2, Key(77)); err != nil {
		t.Fatal(err)
	}
	if v, _ := arr.At(2); v != 77 {
		t.Errorf("named type = %d", v)
	}
}

func TestTypedNullAndValidation(t *testing.T) {
	pool := open(t, ProtectionSPP)
	var null Ptr[uint64]
	if !null.IsNull() {
		t.Error("zero value not null")
	}
	if _, err := null.At(0); err == nil {
		t.Error("null deref succeeded")
	}
	if err := null.Set(0, 1); err == nil {
		t.Error("null store succeeded")
	}
	if err := null.Persist(); err == nil {
		t.Error("null persist succeeded")
	}
	if err := null.Free(); err == nil {
		t.Error("null free succeeded")
	}
	if _, err := AllocSlice[uint64](pool, 0); err == nil {
		t.Error("zero-count alloc succeeded")
	}
	if _, err := SliceFromOid[uint64](pool, OidNull, 4); err == nil {
		t.Error("SliceFromOid(null) succeeded")
	}
}

func TestTypedSurvivesRestart(t *testing.T) {
	pool := open(t, ProtectionSPP)
	root, err := pool.Root(24)
	if err != nil {
		t.Fatal(err)
	}
	arr, err := AllocSlice[uint32](pool, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := arr.Set(i, uint32(100+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := arr.Persist(); err != nil {
		t.Fatal(err)
	}
	pool.WriteOid(root.Off, arr.Oid())

	if err := pool.Reopen(); err != nil {
		t.Fatal(err)
	}
	again, err := SliceFromOid[uint32](pool, pool.ReadOid(root.Off), 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		v, err := again.At(i)
		if err != nil || v != uint32(100+i) {
			t.Fatalf("At(%d) after reopen = %d, %v", i, v, err)
		}
	}
	// Adopting more elements than the allocation holds is rejected.
	if _, err := SliceFromOid[uint64](pool, pool.ReadOid(root.Off), 8); err == nil {
		t.Error("oversized adoption succeeded")
	}
}

func TestTypedTransactional(t *testing.T) {
	pool := open(t, ProtectionSPP)
	tx := pool.Begin()
	arr, err := TxAllocSlice[uint64](pool, tx, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := arr.Set(i, uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	// Snapshot + mutate + abort restores.
	tx2 := pool.Begin()
	if err := arr.Snapshot(tx2); err != nil {
		t.Fatal(err)
	}
	if err := arr.Set(0, 999); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if v, _ := arr.At(0); v != 0 {
		t.Errorf("after abort = %d, want 0", v)
	}
	tx3 := pool.Begin()
	if _, err := TxAllocSlice[uint64](pool, tx3, -1); err == nil {
		t.Error("negative count accepted")
	}
	if err := tx3.Abort(); err != nil {
		t.Fatal(err)
	}
}
