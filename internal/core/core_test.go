package core

import (
	"testing"
	"testing/quick"
)

func TestNewEncodingValidation(t *testing.T) {
	for _, bits := range []uint{0, 47, 62, 64} {
		if _, err := NewEncoding(bits); err == nil {
			t.Errorf("NewEncoding(%d) succeeded, want error", bits)
		}
	}
	for _, bits := range []uint{1, 26, 31, 46} {
		e, err := NewEncoding(bits)
		if err != nil {
			t.Errorf("NewEncoding(%d): %v", bits, err)
			continue
		}
		if e.TagBits() != bits || e.AddrBits() != 62-bits {
			t.Errorf("NewEncoding(%d) = tag %d addr %d", bits, e.TagBits(), e.AddrBits())
		}
	}
}

func TestMustEncodingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustEncoding(0) did not panic")
		}
	}()
	MustEncoding(0)
}

func TestLimits(t *testing.T) {
	e := MustEncoding(26)
	if e.MaxObjectSize() != 1<<26 {
		t.Errorf("MaxObjectSize = %d", e.MaxObjectSize())
	}
	if e.MaxPoolEnd() != 1<<36 {
		t.Errorf("MaxPoolEnd = %#x", e.MaxPoolEnd())
	}
}

func TestMakeTaggedLayout(t *testing.T) {
	// The worked example from Figure 3: 24 tag bits, 42-byte object.
	e := MustEncoding(24)
	p := e.MakeTagged(0x626364, 42)
	if !IsPM(p) {
		t.Error("PM bit not set")
	}
	if Overflow(p) {
		t.Error("overflow bit set on fresh pointer")
	}
	if got := e.Tag(p); got != 0xFFFFD6 { // -42 in 24-bit two's complement
		t.Errorf("tag = %#x, want 0xFFFFD6", got)
	}
	if got := e.Addr(p); got != 0x626364 {
		t.Errorf("addr = %#x", got)
	}
}

func TestFigure3Walkthrough(t *testing.T) {
	// pm_ptr += 21 twice on a 42-byte object: first step stays valid,
	// second step lands exactly on the upper bound and sets overflow.
	e := MustEncoding(24)
	p := e.MakeTagged(0x1000, 42)

	p = e.Gep(p, 21)
	if got := e.Tag(p); got != 0xFFFFEB {
		t.Errorf("after +21: tag = %#x, want 0xFFFFEB", got)
	}
	if Overflow(p) {
		t.Error("overflow after +21 of 42")
	}
	if got := e.Addr(p); got != 0x1015 {
		t.Errorf("addr after +21 = %#x", got)
	}

	p = e.Gep(p, 21)
	if got := e.Tag(p); got != 0 {
		t.Errorf("after +42: tag = %#x, want 0", got)
	}
	if !Overflow(p) {
		t.Error("no overflow after reaching upper bound")
	}
	if !IsPM(p) {
		t.Error("PM bit lost during arithmetic")
	}
}

func TestOverflowBitRecovers(t *testing.T) {
	// Arithmetic back below the bound must clear the overflow bit
	// (§IV-A: "the pointer becomes valid again").
	e := MustEncoding(26)
	p := e.MakeTagged(0x1000, 100)
	p = e.Gep(p, 150)
	if !Overflow(p) {
		t.Fatal("overflow not set at +150 of 100")
	}
	p = e.Gep(p, -60)
	if Overflow(p) {
		t.Error("overflow still set after returning in bounds")
	}
	if e.Addr(p) != 0x1000+90 {
		t.Errorf("addr = %#x", e.Addr(p))
	}
}

func TestCleanTagPreservesOverflow(t *testing.T) {
	e := MustEncoding(26)
	in := e.MakeTagged(0x2000, 8)
	if got := e.CleanTag(in); got != 0x2000 {
		t.Errorf("CleanTag(in-bounds) = %#x, want plain address", got)
	}
	out := e.Gep(in, 8)
	cleaned := e.CleanTag(out)
	if cleaned != OverflowBit|0x2008 {
		t.Errorf("CleanTag(overflown) = %#x, want overflow|addr", cleaned)
	}
}

func TestCleanTagExternalMasksEverything(t *testing.T) {
	e := MustEncoding(26)
	p := e.Gep(e.MakeTagged(0x2000, 8), 16) // overflown
	if got := e.CleanTagExternal(p); got != 0x2010 {
		t.Errorf("CleanTagExternal = %#x, want bare address", got)
	}
}

func TestVolatilePointersPassThrough(t *testing.T) {
	e := MustEncoding(26)
	const v = uint64(0x7fff_1234_5678)
	if e.UpdateTag(v, 100) != v {
		t.Error("UpdateTag modified a volatile pointer")
	}
	if e.CleanTag(v) != v {
		t.Error("CleanTag modified a volatile pointer")
	}
	if e.CheckBound(v, 8) != v {
		t.Error("CheckBound modified a volatile pointer")
	}
	if e.CleanTagExternal(v) != v {
		t.Error("CleanTagExternal modified a volatile pointer")
	}
	if e.Gep(v, 8) != v+8 {
		t.Error("Gep on volatile pointer is plain addition")
	}
}

func TestCheckBound(t *testing.T) {
	e := MustEncoding(26)
	p := e.MakeTagged(0x3000, 16)
	tests := []struct {
		name      string
		advance   int64
		derefSize uint64
		wantFault bool
	}{
		{"first byte", 0, 1, false},
		{"whole object", 0, 16, false},
		{"one past with size 1", 16, 1, true},
		{"u64 at last valid slot", 8, 8, false},
		{"u64 straddling end", 9, 8, true},
		{"u64 one past end", 16, 8, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			q := e.Gep(p, tt.advance)
			got := e.CheckBound(q, tt.derefSize)
			faulted := got&OverflowBit != 0
			if faulted != tt.wantFault {
				t.Errorf("CheckBound(+%d, %d) = %#x, fault=%v, want %v",
					tt.advance, tt.derefSize, got, faulted, tt.wantFault)
			}
			if !faulted && got != 0x3000+uint64(tt.advance) {
				t.Errorf("cleaned address = %#x", got)
			}
		})
	}
}

func TestCheckBoundDoesNotMutateInput(t *testing.T) {
	// CheckBound's tag advance is local to the dereference: reusing the
	// original pointer afterwards must still be valid.
	e := MustEncoding(26)
	p := e.MakeTagged(0x3000, 8)
	_ = e.CheckBound(p, 8)
	if Overflow(p) {
		t.Error("input mutated")
	}
	if e.CheckBound(p, 8)&OverflowBit != 0 {
		t.Error("second CheckBound on same pointer faults")
	}
}

func TestMemIntrCheck(t *testing.T) {
	e := MustEncoding(26)
	p := e.MakeTagged(0x4000, 64)
	if got := e.MemIntrCheck(p, 64); got != 0x4000 {
		t.Errorf("MemIntrCheck(full object) = %#x", got)
	}
	if got := e.MemIntrCheck(p, 65); got&OverflowBit == 0 {
		t.Errorf("MemIntrCheck(object+1) = %#x, want overflow", got)
	}
	if got := e.MemIntrCheck(p, 0); got != 0x4000 {
		t.Errorf("MemIntrCheck(0 bytes) = %#x", got)
	}
	mid := e.Gep(p, 32)
	if got := e.MemIntrCheck(mid, 32); got != 0x4020 {
		t.Errorf("MemIntrCheck(tail half) = %#x", got)
	}
	if got := e.MemIntrCheck(mid, 33); got&OverflowBit == 0 {
		t.Errorf("MemIntrCheck(tail half + 1) = %#x, want overflow", got)
	}
}

func TestMaxObjectSizeIsProtected(t *testing.T) {
	e := MustEncoding(8) // max object 256 B
	p := e.MakeTagged(0x100, 256)
	if e.CheckBound(p, 256)&OverflowBit != 0 {
		t.Error("access to full max-size object faults")
	}
	q := e.Gep(p, 256)
	if !Overflow(q) {
		t.Error("no overflow one past max-size object")
	}
}

func TestWraparoundLimitation(t *testing.T) {
	// §IV-G: an offset beyond the tag's representation range can wrap
	// the overflow bit back to 0. The encoding documents, not hides,
	// this: verify the wraparound exists so the RIPE "escape" attacks
	// have the mechanism the paper describes.
	e := MustEncoding(8)
	p := e.MakeTagged(0x100, 16)
	// The tag+overflow field is 9 bits (512 states) starting at -16:
	// advancing by 272 lands the field back on 0 with overflow clear.
	q := e.Gep(p, 272)
	if Overflow(q) {
		t.Error("expected overflow bit wrapped back to zero")
	}
	if IsPM(q) != true {
		t.Error("PM bit must never be affected by tag arithmetic")
	}
}

func TestUnderflowUndetected(t *testing.T) {
	// SPP protects the upper bound only (§IV-A).
	e := MustEncoding(26)
	p := e.MakeTagged(0x5000, 32)
	q := e.Gep(p, -8)
	if Overflow(q) {
		t.Error("underflow set the overflow bit; SPP should not detect underflow")
	}
	if got := e.CheckBound(q, 1); got != 0x5000-8 {
		t.Errorf("underflown access = %#x, unexpectedly trapped", got)
	}
}

func TestQuickOverflowBitMatchesBound(t *testing.T) {
	// Property: for any object size and cumulative offset within the
	// tag's range, the overflow bit after arithmetic is set iff the
	// pointer passed the upper bound.
	e := MustEncoding(26)
	f := func(sizeRaw, offRaw uint32) bool {
		size := uint64(sizeRaw)%e.MaxObjectSize() + 1
		off := int64(uint64(offRaw) % e.MaxObjectSize())
		p := e.MakeTagged(0x10000, size)
		q := e.Gep(p, off)
		wantOverflow := uint64(off) >= size
		return Overflow(q) == wantOverflow && e.Addr(q) == 0x10000+uint64(off)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickArithmeticPathIndependence(t *testing.T) {
	// Property: splitting an offset into two Geps is equivalent to one.
	e := MustEncoding(26)
	f := func(sizeRaw uint32, aRaw, bRaw uint16) bool {
		size := uint64(sizeRaw)%1024 + 1
		a, b := int64(aRaw%2048), int64(bRaw%2048)
		p := e.MakeTagged(0x10000, size)
		return e.Gep(e.Gep(p, a), b) == e.Gep(p, a+b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickGepRoundTrip(t *testing.T) {
	// Property: Gep(+k) then Gep(-k) restores the pointer exactly.
	e := MustEncoding(26)
	f := func(sizeRaw uint32, kRaw uint16) bool {
		size := uint64(sizeRaw)%4096 + 1
		k := int64(kRaw)
		p := e.MakeTagged(0x20000, size)
		return e.Gep(e.Gep(p, k), -k) == p
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuickCheckBoundEquivalence(t *testing.T) {
	// Property: CheckBound(p, n) faults iff Gep(p, n-1) overflows.
	e := MustEncoding(26)
	f := func(sizeRaw, advRaw uint16, nRaw uint8) bool {
		size := uint64(sizeRaw)%4096 + 1
		adv := int64(advRaw % 8192)
		n := uint64(nRaw) + 1
		p := e.Gep(e.MakeTagged(0x20000, size), adv)
		faults := e.CheckBound(p, n)&OverflowBit != 0
		wantFaults := Overflow(e.Gep(p, int64(n)-1))
		return faults == wantFaults
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDirectVariantsMatchGeneric(t *testing.T) {
	e := MustEncoding(26)
	p := e.MakeTagged(0x6000, 64)
	if e.UpdateTag(p, 10) != e.UpdateTagDirect(p, 10) {
		t.Error("UpdateTagDirect differs on PM pointer")
	}
	if e.CleanTag(p) != e.CleanTagDirect(p) {
		t.Error("CleanTagDirect differs on PM pointer")
	}
	if e.CheckBound(p, 8) != e.CheckBoundDirect(p, 8) {
		t.Error("CheckBoundDirect differs on PM pointer")
	}
}

func TestEncodingString(t *testing.T) {
	if MustEncoding(26).String() == "" {
		t.Error("empty String()")
	}
}

func BenchmarkUpdateTag(b *testing.B) {
	e := MustEncoding(26)
	p := e.MakeTagged(0x1000, 1024)
	for i := 0; i < b.N; i++ {
		p = e.UpdateTag(p, 1)
	}
	sinkU64 = p
}

func BenchmarkCheckBound(b *testing.B) {
	e := MustEncoding(26)
	p := e.MakeTagged(0x1000, 1024)
	var s uint64
	for i := 0; i < b.N; i++ {
		s += e.CheckBound(p, 8)
	}
	sinkU64 = s
}

var sinkU64 uint64

func TestGepSaturatingClosesWraparound(t *testing.T) {
	// The §IV-G evasion with 8 tag bits: a 272-byte jump wraps the
	// 9-bit tag+overflow field back to zero under plain Gep.
	e := MustEncoding(8)
	p := e.MakeTagged(0x100, 16)
	if Overflow(e.Gep(p, 272)) {
		t.Fatal("plain Gep did not wrap (test premise broken)")
	}
	q := e.GepSaturating(p, 272)
	if !Overflow(q) {
		t.Error("saturating Gep did not pin the overflow bit")
	}
	if e.Addr(q) != 0 {
		t.Errorf("poisoned pointer keeps an address: %#x", e.Addr(q))
	}
	// No arithmetic resurrects a poisoned pointer into a valid one.
	if back := e.GepSaturating(q, -200); Overflow(back) == false && e.Addr(back) < 1<<32 {
		t.Errorf("poisoned pointer resurrected: %#x", back)
	}
	// Small offsets behave exactly like Gep, including walking back in
	// bounds after a small overflow.
	if e.GepSaturating(p, 10) != e.Gep(p, 10) {
		t.Error("small offsets diverge")
	}
	over := e.GepSaturating(p, 20) // overflown by a small offset
	if !Overflow(over) {
		t.Fatal("small overflow missed")
	}
	back := e.GepSaturating(over, -10)
	if Overflow(back) {
		t.Error("walking back in bounds did not revalidate")
	}
	// Forward arithmetic on an already-overflown pointer stays pinned.
	if !Overflow(e.GepSaturating(over, 4)) {
		t.Error("forward arithmetic unpinned an overflown pointer")
	}
	// Volatile pointers: plain addition.
	if e.GepSaturating(0x7000, 512) != 0x7000+512 {
		t.Error("volatile pointer mangled")
	}
}
