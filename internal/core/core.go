// Package core implements Safe Persistent Pointers: the SPP tagged
// pointer encoding and the runtime tag-management functions that the
// compiler instrumentation injects (§IV-A, §IV-D of the paper).
//
// A 64-bit SPP pointer is split into four parts:
//
//	bit 63        PM bit: 1 marks a pointer into persistent memory
//	bit 62        overflow bit
//	bits 61..B    tag (TagBits wide), B = 64 - 2 - TagBits
//	bits B-1..0   virtual address
//
// The tag is initialized to the two's complement of the object size
// (Delta-pointer encoding): for a fresh object the tag holds
// 2^TagBits - size and the overflow bit is clear. Every pointer
// arithmetic operation adds its byte offset to the tag; when the
// cumulative offset reaches the object size the addition carries out of
// the tag field into the overflow bit. Cleaning the tag before a
// dereference preserves the overflow bit, so an overflown pointer
// resolves to the invalid address 2^62|addr and the access faults —
// the bounds check is implicit, with no branch.
//
// Walking the pointer back below the upper bound borrows the carry back
// and the pointer becomes valid again, exactly as in Figure 3 of the
// paper. Like SPP (and Delta Pointers), the encoding detects only
// upper-bound violations; underflows would need a second tag field
// (§IV-A).
package core

import "fmt"

// PMBit marks pointers into persistent memory (design goal #3: the
// most significant bit distinguishes instrumented PM pointers from
// untouched volatile pointers).
const PMBit uint64 = 1 << 63

// OverflowBit is the implicit bounds-check bit. It is preserved by tag
// cleaning so an out-of-bounds pointer stays invalid when dereferenced.
const OverflowBit uint64 = 1 << 62

// DefaultTagBits is the tag width used throughout the paper's
// evaluation (§VI-A) except for Phoenix, which uses PhoenixTagBits.
const DefaultTagBits = 26

// PhoenixTagBits is the wider tag used for the Phoenix port to permit
// larger allocations (§VI-B).
const PhoenixTagBits = 31

// Encoding is a configured SPP pointer layout. The zero value is not
// usable; construct with NewEncoding.
type Encoding struct {
	tagBits   uint
	addrBits  uint
	addrMask  uint64 // low addrBits set
	fieldMask uint64 // overflow bit + tag bits, in place
	tagMask   uint64 // tag field value mask (unshifted)
}

// NewEncoding validates the tag width and returns the derived layout.
// The paper requires the tag and virtual address to share the 62
// non-reserved bits, so 1 <= tagBits <= 61; widths that leave fewer
// than 16 address bits are rejected as useless.
func NewEncoding(tagBits uint) (Encoding, error) {
	if tagBits < 1 || tagBits > 46 {
		return Encoding{}, fmt.Errorf("core: tag bits must be in [1, 46], got %d", tagBits)
	}
	addrBits := 64 - 2 - tagBits
	return Encoding{
		tagBits:   tagBits,
		addrBits:  addrBits,
		addrMask:  1<<addrBits - 1,
		fieldMask: (1<<(tagBits+1) - 1) << addrBits,
		tagMask:   1<<tagBits - 1,
	}, nil
}

// MustEncoding is NewEncoding for known-good widths; it panics on error
// and is intended for package-level defaults and tests.
func MustEncoding(tagBits uint) Encoding {
	e, err := NewEncoding(tagBits)
	if err != nil {
		panic(err)
	}
	return e
}

// TagBits returns the configured tag width.
func (e Encoding) TagBits() uint { return e.tagBits }

// AddrBits returns the number of virtual-address bits.
func (e Encoding) AddrBits() uint { return e.addrBits }

// MaxObjectSize is the largest protectable PM object: 1<<tagBits
// (§IV-G "PM object & PM pool size").
func (e Encoding) MaxObjectSize() uint64 { return 1 << e.tagBits }

// MaxPoolEnd is the first virtual address a PM pool may not reach:
// pools must live in the low 1<<(62-tagBits) bytes of the address
// space.
func (e Encoding) MaxPoolEnd() uint64 { return 1 << e.addrBits }

// MakeTagged builds the tagged pointer that pmemobj_direct returns for
// an object of the given size mapped at addr: the PM bit is set, the
// tag holds the negated size, and the overflow bit starts clear.
func (e Encoding) MakeTagged(addr, size uint64) uint64 {
	tag := (-size) & e.tagMask
	return PMBit | tag<<e.addrBits | (addr & e.addrMask)
}

// IsPM reports whether p carries the PM bit, i.e. whether the SPP
// runtime functions should operate on it (__spp_is_pm_ptr).
func IsPM(p uint64) bool { return p&PMBit != 0 }

// Overflow reports whether the overflow bit is set.
func Overflow(p uint64) bool { return p&OverflowBit != 0 }

// Addr extracts the virtual-address bits of p.
func (e Encoding) Addr(p uint64) uint64 { return p & e.addrMask }

// Tag extracts the tag field (without the overflow bit).
func (e Encoding) Tag(p uint64) uint64 { return p >> e.addrBits & e.tagMask }

// UpdateTag is __spp_updatetag: it adds off to the tag of a PM
// pointer. The addition deliberately carries into the overflow bit —
// that carry IS the bounds check — but is masked so it can never reach
// the PM bit. Offsets whose magnitude exceeds the tag's representation
// range can wrap the overflow bit back to zero; the paper documents
// this as an inherent limitation of the encoding (§IV-G).
//
// UpdateTag does not move the address bits; pointer arithmetic itself
// (the GEP) advances them.
func (e Encoding) UpdateTag(p uint64, off int64) uint64 {
	if !IsPM(p) {
		return p
	}
	return e.UpdateTagDirect(p, off)
}

// UpdateTagDirect is the _direct variant that skips the PM-bit test;
// the compiler emits it for pointers statically known to point to PM
// (§V-B "Hook functions").
func (e Encoding) UpdateTagDirect(p uint64, off int64) uint64 {
	field := (p & e.fieldMask) + uint64(off)<<e.addrBits
	return p&^e.fieldMask | field&e.fieldMask
}

// CleanTag is __spp_cleantag: it masks the PM bit and the tag but
// preserves the overflow bit and the address, so a subsequent access
// through an overflown pointer faults.
func (e Encoding) CleanTag(p uint64) uint64 {
	if !IsPM(p) {
		return p
	}
	return e.CleanTagDirect(p)
}

// CleanTagDirect is the _direct variant of CleanTag.
func (e Encoding) CleanTagDirect(p uint64) uint64 {
	return p & (OverflowBit | e.addrMask)
}

// CleanTagExternal is __spp_cleantag_external: before a call into an
// uninstrumented library every bit above the address is masked,
// including the overflow bit, so the callee receives a plain pointer
// (§V-B). Memory safety is forfeited inside the callee, as the paper
// concedes.
func (e Encoding) CleanTagExternal(p uint64) uint64 {
	if !IsPM(p) {
		return p
	}
	return p & e.addrMask
}

// CheckBound is __spp_checkbound: called before a dereference of
// derefSize bytes, it advances the tag to the last byte touched and
// returns the cleaned pointer for the actual access. In-bounds
// accesses return the plain address; out-of-bounds accesses return
// 2^62|addr, which no mapping covers.
func (e Encoding) CheckBound(p uint64, derefSize uint64) uint64 {
	if !IsPM(p) {
		return p
	}
	return e.CheckBoundDirect(p, derefSize)
}

// CheckBoundDirect is the _direct variant of CheckBound.
func (e Encoding) CheckBoundDirect(p uint64, derefSize uint64) uint64 {
	upd := e.UpdateTagDirect(p, int64(derefSize)-1)
	return e.CleanTagDirect(upd)
}

// MemIntrCheck is __spp_memintr_check: given the pointer operand of a
// memory intrinsic (memcpy, memset, memmove) that will touch n bytes,
// it updates the tag to the last byte and returns the cleaned base
// address. If the range exceeds the object, the returned address has
// the overflow bit set and the intrinsic's first access faults.
func (e Encoding) MemIntrCheck(p uint64, n uint64) uint64 {
	if !IsPM(p) {
		return p
	}
	if n == 0 {
		return e.CleanTagDirect(p)
	}
	return e.CheckBoundDirect(p, n)
}

// Gep models the combined effect of pointer arithmetic on an SPP
// pointer: the address bits advance by off and the tag is updated by
// the same amount. This is the pairing of the GEP instruction with the
// injected __spp_updatetag call in Listing 1.
func (e Encoding) Gep(p uint64, off int64) uint64 {
	if !IsPM(p) {
		return p + uint64(off)
	}
	moved := p&^e.addrMask | (p+uint64(off))&e.addrMask
	return e.UpdateTagDirect(moved, off)
}

// GepSaturating is the §IV-G hardening the paper proposes as future
// work: pointer arithmetic whose offset magnitude meets or exceeds the
// tag's representation range (1 << tagBits) cannot be tracked by the
// delta encoding — a wrapping offset could silently clear the overflow
// bit. The paper suggests emitting an error, "since such actions
// mostly originate from malicious activities": this variant
// invalidates the pointer outright (overflow pinned, address zeroed),
// so no subsequent arithmetic can resurrect it. In-range offsets
// behave exactly like Gep, including legitimate overflow recovery.
func (e Encoding) GepSaturating(p uint64, off int64) uint64 {
	if !IsPM(p) {
		return p + uint64(off)
	}
	mag := off
	if mag < 0 {
		mag = -mag
	}
	if uint64(mag) >= e.MaxObjectSize() {
		return PMBit | OverflowBit
	}
	return e.Gep(p, off)
}

// String describes the layout, for diagnostics.
func (e Encoding) String() string {
	return fmt.Sprintf("spp-encoding{tag=%d bits, addr=%d bits, max-object=%d, pool-limit=%#x}",
		e.tagBits, e.addrBits, e.MaxObjectSize(), e.MaxPoolEnd())
}
