package safepm

import (
	"testing"

	"repro/internal/hooks"
	"repro/internal/pmem"
	"repro/internal/pmemobj"
	"repro/internal/vmem"
)

func newRuntime(t *testing.T) (*Runtime, *pmemobj.Pool) {
	t.Helper()
	dev := pmem.NewPool("safepm-test", 16<<20)
	as := vmem.New()
	pool, err := pmemobj.Create(dev, as, 0x10000, pmemobj.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Attach(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	return rt, pool
}

func TestAttachRejectsSPPPool(t *testing.T) {
	dev := pmem.NewPool("spp", 16<<20)
	pool, err := pmemobj.Create(dev, nil, 0x10000, pmemobj.Config{SPP: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(pool, nil); err == nil {
		t.Error("Attach on an SPP pool succeeded")
	}
}

func TestRedzonesPoisoned(t *testing.T) {
	rt, _ := newRuntime(t)
	oid, err := rt.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Direct(oid)
	// Every byte of the object is addressable.
	for i := uint64(0); i < 40; i++ {
		if _, err := rt.Check(p+i, 1); err != nil {
			t.Fatalf("in-bounds byte %d flagged: %v", i, err)
		}
	}
	// The byte after the object (partial-granule tail) is poisoned.
	if _, err := rt.Check(p+40, 1); err == nil {
		t.Error("first redzone byte addressable")
	}
	// The byte before is the left redzone.
	if _, err := rt.Check(p-1, 1); err == nil {
		t.Error("left redzone addressable")
	}
	// A range straddling the end is flagged even when it starts valid.
	if _, err := rt.Check(p+36, 8); err == nil {
		t.Error("straddling range addressable")
	}
}

func TestFreePoisonsUserRange(t *testing.T) {
	rt, _ := newRuntime(t)
	oid, _ := rt.Alloc(64)
	p := rt.Direct(oid)
	if err := rt.Free(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Check(p, 8); err == nil {
		t.Error("freed memory still addressable")
	}
	// Double free is rejected via the redzone header check.
	if err := rt.Free(oid); err == nil {
		t.Error("double free succeeded")
	}
}

func TestPartialGranuleSemantics(t *testing.T) {
	// A 13-byte object: granule 0 fully addressable, granule 1 allows
	// 5 bytes.
	rt, _ := newRuntime(t)
	oid, _ := rt.Alloc(13)
	p := rt.Direct(oid)
	if _, err := rt.Check(p+12, 1); err != nil {
		t.Errorf("last byte flagged: %v", err)
	}
	if _, err := rt.Check(p+13, 1); err == nil {
		t.Error("byte 13 addressable in a 13-byte object")
	}
	if _, err := rt.Check(p+8, 5); err != nil {
		t.Errorf("tail range flagged: %v", err)
	}
	if _, err := rt.Check(p+8, 6); err == nil {
		t.Error("tail range + 1 addressable")
	}
}

func TestNonPoolPointersPassThrough(t *testing.T) {
	rt, _ := newRuntime(t)
	if _, err := rt.Check(0xdead0000000, 8); err != nil {
		t.Errorf("non-pool pointer flagged: %v", err)
	}
	if got := rt.Gep(100, 5); got != 105 {
		t.Errorf("Gep = %d", got)
	}
	if got := rt.External(12345); got != 12345 {
		t.Errorf("External = %d", got)
	}
}

func TestViolationErrorDetail(t *testing.T) {
	rt, _ := newRuntime(t)
	oid, _ := rt.Alloc(16)
	p := rt.Direct(oid)
	_, err := rt.Check(p+16, 8)
	if !hooks.IsSafetyTrap(err) {
		t.Fatalf("no violation: %v", err)
	}
	if err.Error() == "" {
		t.Error("empty violation message")
	}
}

func TestReallocMovesRedzones(t *testing.T) {
	rt, _ := newRuntime(t)
	oid, _ := rt.Alloc(32)
	p := rt.Direct(oid)
	if _, err := rt.Check(p, 32); err != nil {
		t.Fatal(err)
	}
	grown, err := rt.Realloc(oid, 200)
	if err != nil {
		t.Fatal(err)
	}
	gp := rt.Direct(grown)
	if _, err := rt.Check(gp, 200); err != nil {
		t.Errorf("grown object flagged: %v", err)
	}
	if _, err := rt.Check(gp+200, 1); err == nil {
		t.Error("grown object's redzone addressable")
	}
	// The old location is poisoned.
	if _, err := rt.Check(p, 8); err == nil {
		t.Error("old location still addressable after realloc")
	}
}

func TestShadowLatencyAblatable(t *testing.T) {
	old := ShadowLatencyLoops
	defer func() { ShadowLatencyLoops = old }()
	ShadowLatencyLoops = 0
	rt, _ := newRuntime(t)
	oid, _ := rt.Alloc(16)
	p := rt.Direct(oid)
	if _, err := rt.Check(p, 8); err != nil {
		t.Errorf("check with zero latency: %v", err)
	}
}

func TestRebuildHandlesForeignAllocations(t *testing.T) {
	// An allocation made directly through the pool (no SafePM header)
	// must be fully addressable after rebuild, not poisoned.
	rt, pool := newRuntime(t)
	raw, err := pool.Alloc(48)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.rebuild(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Check(rt.Pool().Base()+raw.Off, 48); err != nil {
		t.Errorf("foreign allocation poisoned: %v", err)
	}
}

// TestShadowCrashConsistency: power loss at any fence during a SafePM
// allocation must leave persistent state from which Attach rebuilds a
// correct shadow — live objects addressable, everything else poisoned
// (the SafePM property §II-D demands and §VI-E verifies).
func TestShadowCrashConsistency(t *testing.T) {
	for crashAt := 1; crashAt < 25; crashAt++ {
		dev := pmem.NewPool("safepm-crash", 16<<20)
		as := vmem.New()
		pool, err := pmemobj.Create(dev, as, 0x10000, pmemobj.Config{UUID: 5})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := Attach(pool, as)
		if err != nil {
			t.Fatal(err)
		}
		stable, err := rt.Alloc(40)
		if err != nil {
			t.Fatal(err)
		}

		sink := &fenceCrash{crashAt: crashAt}
		dev.EnableTracking(sink)
		var crashed bool
		func() {
			defer func() {
				if recover() != nil {
					crashed = true
				}
			}()
			if _, err := rt.Alloc(64); err != nil {
				t.Fatal(err)
			}
		}()
		if crashed {
			if err := dev.Crash(); err != nil {
				t.Fatal(err)
			}
		}
		dev.DisableTracking()

		// Restart: recovery + shadow rebuild.
		pool2, err := pmemobj.Open(dev, nil, 0x10000)
		if err != nil {
			t.Fatalf("crashAt=%d: recovery: %v", crashAt, err)
		}
		as2 := vmem.New()
		if err := as2.Map(&vmem.Mapping{Base: 0x10000, Data: dev.Data(), Name: "p"}); err != nil {
			t.Fatal(err)
		}
		rt2, err := attachAt(pool2, as2)
		if err != nil {
			t.Fatalf("crashAt=%d: attach: %v", crashAt, err)
		}
		// The pre-crash object is fully usable with intact redzones.
		p := rt2.Direct(stable)
		if _, err := rt2.Check(p, 40); err != nil {
			t.Fatalf("crashAt=%d: stable object poisoned: %v", crashAt, err)
		}
		if _, err := rt2.Check(p+40, 1); err == nil {
			t.Fatalf("crashAt=%d: stable object's redzone addressable", crashAt)
		}
		if !crashed {
			return // allocation completed before the crash point
		}
	}
}

func attachAt(pool *pmemobj.Pool, as *vmem.AddressSpace) (*Runtime, error) {
	return Attach(pool, as)
}

type fenceCrash struct {
	fences  int
	crashAt int
}

func (f *fenceCrash) RecordStore(off uint64, data []byte) {}
func (f *fenceCrash) RecordFlush(off, size uint64)        {}
func (f *fenceCrash) RecordFence() {
	f.fences++
	if f.fences == f.crashAt {
		panic("injected power loss")
	}
}
