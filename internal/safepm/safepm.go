// Package safepm reimplements the SafePM baseline (Bozdoğan et al.,
// EuroSys'22): an AddressSanitizer-style shadow-memory sanitizer for
// persistent memory, used by the paper as the state-of-the-art
// comparison point.
//
// One shadow byte describes eight pool bytes (0 = fully addressable,
// 1..7 = only the first k bytes addressable, 0xFF = poisoned). The
// shadow region is itself a PM object inside the pool, persisted with
// the same flush discipline as application data — SafePM's key claim —
// and rebuilt from per-allocation headers after a restart. Every
// allocation is padded with poisoned redzones; every dereference reads
// the shadow, which is exactly the extra PM traffic that makes SafePM
// 2x-8x slower than SPP in the paper's figures.
package safepm

import (
	"errors"
	"fmt"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
	"repro/internal/vmem"
)

const (
	// RedzoneSize is the poisoned padding on each side of an object.
	RedzoneSize = 16
	// shadowScale maps 8 application bytes to 1 shadow byte.
	shadowScale = 8
	// poisoned marks an 8-byte granule as non-addressable.
	poisoned = 0xFF
	// rzMagic identifies a SafePM left redzone header.
	rzMagic = 0x5AFE9A6E5AFE9A6E
)

// ShadowLatencyLoops models the PM-media read latency of a shadow
// lookup. SafePM's shadow region resides in persistent memory, so on
// the paper's Optane testbed every ASan check pays a PM read (~2-3x a
// DRAM read); in this DRAM-backed simulation the same lookup is nearly
// free, which would understate SafePM's overhead. Each shadow
// consultation therefore spins for this many iterations (~15-20 ns at
// the default, the cached-PM vs L1 gap). Set to 0 to ablate the medium
// model.
var ShadowLatencyLoops = 48

var latencySink uint64

// pmLatency charges the simulated PM-media cost of one metadata access.
func pmLatency() {
	s := latencySink
	for i := 0; i < ShadowLatencyLoops; i++ {
		s += uint64(i) ^ s<<1
	}
	latencySink = s
}

// Runtime is the SafePM hooks implementation.
type Runtime struct {
	pool      *pmemobj.Pool
	as        *vmem.AddressSpace
	shadowOff uint64 // pool offset of the shadow region
	shadowLen uint64
}

var _ hooks.Runtime = (*Runtime)(nil)

// Attach initializes (or re-opens) SafePM on a native-mode pool: the
// persistent shadow region is allocated on first use and rebuilt from
// the heap's redzone headers on every attach, restoring crash
// consistency for the safety metadata.
func Attach(pool *pmemobj.Pool, as *vmem.AddressSpace) (*Runtime, error) {
	if pool.SPP() {
		return nil, errors.New("safepm: requires a native-mode pool (SafePM and SPP are exclusive)")
	}
	dev := pool.Device()
	shadowLen := (dev.Size() + shadowScale - 1) / shadowScale
	slot := pool.UserSlot()
	if slot.IsNull() {
		oid, err := pool.Alloc(shadowLen)
		if err != nil {
			return nil, fmt.Errorf("safepm: shadow allocation: %w", err)
		}
		pool.SetUserSlot(oid)
		slot = oid
	}
	rt := &Runtime{pool: pool, as: as, shadowOff: slot.Off, shadowLen: shadowLen}
	if err := rt.rebuild(); err != nil {
		return nil, err
	}
	return rt, nil
}

// rebuild reconstructs the shadow from persistent state: free space is
// poisoned; allocations carrying a SafePM redzone header expose only
// their user range; foreign allocations (the shadow itself, pmemobj
// internals) stay fully addressable.
func (rt *Runtime) rebuild() error {
	dev := rt.pool.Device()
	heapStart, heapEnd := rt.pool.HeapBounds()
	// Poison the whole heap, then carve out live allocations.
	rt.setShadow(heapStart, heapEnd-heapStart, poisoned)
	err := rt.pool.ForEachAllocated(func(off, size uint64) error {
		if off == rt.shadowOff {
			rt.unpoison(off, size)
			return nil
		}
		if size >= 2*RedzoneSize && dev.ReadU64(off) == rzMagic {
			userSize := dev.ReadU64(off + 8)
			if userSize <= size-2*RedzoneSize {
				rt.unpoison(off+RedzoneSize, userSize)
				return nil
			}
		}
		// Not a SafePM allocation: no redzone information, expose it
		// fully (ASan behaviour for unknown memory).
		rt.unpoison(off, size)
		return nil
	})
	if err != nil {
		return err
	}
	dev.Persist(rt.shadowOff, rt.shadowLen)
	return nil
}

// shadowIndex returns the shadow byte offset covering pool offset off.
func (rt *Runtime) shadowIndex(off uint64) uint64 { return rt.shadowOff + off/shadowScale }

// unpoison marks [off, off+size) addressable, with ASan partial-byte
// semantics at the tail.
func (rt *Runtime) unpoison(off, size uint64) {
	dev := rt.pool.Device()
	data := dev.Data()
	full := size / shadowScale
	start := rt.shadowIndex(off)
	for i := uint64(0); i < full; i++ {
		data[start+i] = 0
	}
	if rem := size % shadowScale; rem != 0 {
		data[start+full] = byte(rem)
	}
	granules := (size + shadowScale - 1) / shadowScale
	dev.ObserveStore(start, granules)
	dev.Persist(start, granules)
}

// setShadow fills the shadow for [off, off+size) with v.
func (rt *Runtime) setShadow(off, size uint64, v byte) {
	pmLatency() // shadow updates write persistent memory
	dev := rt.pool.Device()
	data := dev.Data()
	start := rt.shadowIndex(off)
	granules := (size + shadowScale - 1) / shadowScale
	for i := uint64(0); i < granules; i++ {
		data[start+i] = v
	}
	dev.ObserveStore(start, granules)
	dev.Persist(start, granules)
}

// poison marks [off, off+size) non-addressable.
func (rt *Runtime) poison(off, size uint64) { rt.setShadow(off, size, poisoned) }

// Name implements hooks.Runtime.
func (rt *Runtime) Name() string { return "safepm" }

// Pool implements hooks.Runtime.
func (rt *Runtime) Pool() *pmemobj.Pool { return rt.pool }

// Space implements hooks.Runtime.
func (rt *Runtime) Space() *vmem.AddressSpace { return rt.as }

// Root implements hooks.Runtime: the root object is padded with
// redzones like every allocation.
func (rt *Runtime) Root(size uint64) (pmemobj.Oid, error) {
	inner, err := rt.pool.Root(size + 2*RedzoneSize)
	if err != nil {
		return pmemobj.OidNull, err
	}
	rt.writeHeader(inner.Off, size)
	return pmemobj.Oid{Pool: inner.Pool, Off: inner.Off + RedzoneSize, Size: size}, nil
}

// writeHeader stamps the left redzone and sets the shadow for an
// allocation whose user range is [innerOff+RedzoneSize, +size).
func (rt *Runtime) writeHeader(innerOff, size uint64) {
	dev := rt.pool.Device()
	dev.WriteU64(innerOff, rzMagic)
	dev.WriteU64(innerOff+8, size)
	dev.Persist(innerOff, 16)
	rt.poison(innerOff, RedzoneSize)
	// Poison the right redzone from the next granule boundary, then
	// unpoison the user range last: its partial tail granule encodes
	// how many bytes of the shared granule are addressable.
	userStart := innerOff + RedzoneSize
	rzStart := (userStart + size + shadowScale - 1) &^ (shadowScale - 1)
	rzEnd := userStart + size + RedzoneSize
	if rzStart < rzEnd {
		rt.poison(rzStart, rzEnd-rzStart)
	}
	rt.unpoison(userStart, size)
}

// Alloc implements hooks.Runtime: pad, stamp, poison.
func (rt *Runtime) Alloc(size uint64) (pmemobj.Oid, error) {
	inner, err := rt.pool.Alloc(size + 2*RedzoneSize)
	if err != nil {
		return pmemobj.OidNull, err
	}
	rt.writeHeader(inner.Off, size)
	return pmemobj.Oid{Pool: inner.Pool, Off: inner.Off + RedzoneSize, Size: size}, nil
}

// AllocAt implements hooks.Runtime.
func (rt *Runtime) AllocAt(destOff, size uint64) error {
	oid, err := rt.Alloc(size)
	if err != nil {
		return err
	}
	rt.pool.WriteOid(destOff, oid)
	return nil
}

// innerOid recovers the padded allocation behind a user oid.
func (rt *Runtime) innerOid(oid pmemobj.Oid) (pmemobj.Oid, uint64, error) {
	if oid.Off < RedzoneSize {
		return pmemobj.OidNull, 0, fmt.Errorf("safepm: %v is not a SafePM allocation", oid)
	}
	innerOff := oid.Off - RedzoneSize
	dev := rt.pool.Device()
	if innerOff+16 > dev.Size() || dev.ReadU64(innerOff) != rzMagic {
		return pmemobj.OidNull, 0, fmt.Errorf("safepm: %v has no redzone header", oid)
	}
	userSize := dev.ReadU64(innerOff + 8)
	return pmemobj.Oid{Pool: oid.Pool, Off: innerOff, Size: userSize + 2*RedzoneSize}, userSize, nil
}

// Free implements hooks.Runtime: re-poison, then release the padded
// block.
func (rt *Runtime) Free(oid pmemobj.Oid) error {
	inner, userSize, err := rt.innerOid(oid)
	if err != nil {
		return err
	}
	if err := rt.pool.Free(inner); err != nil {
		return err
	}
	rt.poison(oid.Off, userSize)
	return nil
}

// FreeAt implements hooks.Runtime.
func (rt *Runtime) FreeAt(destOff uint64) error {
	oid := rt.pool.ReadOid(destOff)
	if err := rt.Free(oid); err != nil {
		return err
	}
	rt.pool.WriteOid(destOff, pmemobj.OidNull)
	return nil
}

// Realloc implements hooks.Runtime.
func (rt *Runtime) Realloc(oid pmemobj.Oid, size uint64) (pmemobj.Oid, error) {
	_, userSize, err := rt.innerOid(oid)
	if err != nil {
		return pmemobj.OidNull, err
	}
	newOid, err := rt.Alloc(size)
	if err != nil {
		return pmemobj.OidNull, err
	}
	n := userSize
	if size < n {
		n = size
	}
	dev := rt.pool.Device()
	dev.WriteBytes(newOid.Off, dev.ReadBytes(oid.Off, n))
	dev.Persist(newOid.Off, n)
	if err := rt.Free(oid); err != nil {
		return pmemobj.OidNull, err
	}
	return newOid, nil
}

// ReallocAt implements hooks.Runtime.
func (rt *Runtime) ReallocAt(destOff, size uint64) error {
	oid := rt.pool.ReadOid(destOff)
	if oid.IsNull() {
		return rt.AllocAt(destOff, size)
	}
	newOid, err := rt.Realloc(oid, size)
	if err != nil {
		return err
	}
	rt.pool.WriteOid(destOff, newOid)
	return nil
}

// TxAlloc implements hooks.Runtime.
func (rt *Runtime) TxAlloc(tx *pmemobj.Tx, size uint64) (pmemobj.Oid, error) {
	inner, err := tx.Alloc(size + 2*RedzoneSize)
	if err != nil {
		return pmemobj.OidNull, err
	}
	rt.writeHeader(inner.Off, size)
	return pmemobj.Oid{Pool: inner.Pool, Off: inner.Off + RedzoneSize, Size: size}, nil
}

// TxFree implements hooks.Runtime.
func (rt *Runtime) TxFree(tx *pmemobj.Tx, oid pmemobj.Oid) error {
	inner, userSize, err := rt.innerOid(oid)
	if err != nil {
		return err
	}
	if err := tx.Free(inner); err != nil {
		return err
	}
	rt.poison(oid.Off, userSize)
	return nil
}

// Direct implements hooks.Runtime: plain addresses, no tags.
func (rt *Runtime) Direct(oid pmemobj.Oid) uint64 { return rt.pool.Direct(oid) }

// Gep implements hooks.Runtime.
func (rt *Runtime) Gep(p uint64, off int64) uint64 { return p + uint64(off) }

// Check implements hooks.Runtime: the ASan shadow check. This is the
// metadata fetch per access that SPP's design avoids.
func (rt *Runtime) Check(p, n uint64) (uint64, error) {
	if err := rt.checkRange(p, n); err != nil {
		return 0, err
	}
	return p, nil
}

// CheckPM implements hooks.Runtime.
func (rt *Runtime) CheckPM(p, n uint64) (uint64, error) { return rt.Check(p, n) }

// MemIntr implements hooks.Runtime.
func (rt *Runtime) MemIntr(p, n uint64) (uint64, error) { return rt.Check(p, n) }

// External implements hooks.Runtime.
func (rt *Runtime) External(p uint64) uint64 { return p }

func (rt *Runtime) checkRange(p, n uint64) error {
	base := rt.pool.Base()
	dev := rt.pool.Device()
	if p < base || p-base >= dev.Size() || n == 0 {
		// Not a pool pointer: SafePM instruments only PM.
		return nil
	}
	off := p - base
	if off+n > dev.Size() {
		return rt.violation(p, n, "range extends past pool")
	}
	pmLatency() // the shadow lookup reads persistent memory
	data := dev.Data()
	end := off + n - 1
	for g := off / shadowScale; g <= end/shadowScale; g++ {
		s := data[rt.shadowOff+g]
		if s == 0 {
			continue
		}
		if s == poisoned {
			return rt.violation(p, n, "poisoned granule")
		}
		// Partially addressable: the access must end within the first
		// s bytes of this granule.
		last := end
		if gEnd := g*shadowScale + shadowScale - 1; last > gEnd {
			last = gEnd
		}
		if last%shadowScale >= uint64(s) {
			return rt.violation(p, n, "partial granule exceeded")
		}
	}
	return nil
}

func (rt *Runtime) violation(p, n uint64, detail string) error {
	return &hooks.ViolationError{Mechanism: "safepm", Addr: p, Size: n, Detail: detail}
}
