// Package memcheck reimplements the pmem-aware Valgrind memcheck
// baseline of Table IV: a dynamic addressability tracker. It knows
// which pool ranges belong to live allocations (from PMDK's internal
// annotations, here the allocator itself) and flags any access that
// touches memory outside every live object.
//
// It is deliberately coarser than SafePM or SPP: it has no redzones
// and no per-object bounds, so an overflow that lands inside an
// *adjacent live object* goes undetected — the mechanistic reason
// memcheck stops only 203 of the 223 RIPE attacks in the paper while
// SPP stops 219.
package memcheck

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
	"repro/internal/vmem"
)

// Runtime is the memcheck hooks implementation.
type Runtime struct {
	pool *pmemobj.Pool
	as   *vmem.AddressSpace

	mu    sync.Mutex
	start []uint64 // sorted payload offsets of live blocks
	size  map[uint64]uint64
}

var _ hooks.Runtime = (*Runtime)(nil)

// Attach builds the addressability map for a native-mode pool by
// walking the heap, the analog of Valgrind reading PMDK's annotations.
func Attach(pool *pmemobj.Pool, as *vmem.AddressSpace) (*Runtime, error) {
	if pool.SPP() {
		return nil, errors.New("memcheck: requires a native-mode pool")
	}
	rt := &Runtime{pool: pool, as: as, size: make(map[uint64]uint64)}
	err := pool.ForEachAllocated(func(off, size uint64) error {
		rt.insert(off, size)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rt, nil
}

func (rt *Runtime) insert(off, size uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	i := sort.Search(len(rt.start), func(i int) bool { return rt.start[i] >= off })
	rt.start = append(rt.start, 0)
	copy(rt.start[i+1:], rt.start[i:])
	rt.start[i] = off
	rt.size[off] = size
}

func (rt *Runtime) remove(off uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	i := sort.Search(len(rt.start), func(i int) bool { return rt.start[i] >= off })
	if i < len(rt.start) && rt.start[i] == off {
		rt.start = append(rt.start[:i], rt.start[i+1:]...)
		delete(rt.size, off)
	}
}

// covered reports whether [off, off+n) lies inside one live block.
func (rt *Runtime) covered(off, n uint64) bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	i := sort.Search(len(rt.start), func(i int) bool { return rt.start[i] > off })
	if i == 0 {
		return false
	}
	blk := rt.start[i-1]
	return off+n <= blk+rt.size[blk]
}

// blockPayload returns the payload size the allocator reserved for the
// user size (16-aligned), which is the range memcheck registers —
// block-granular, like Valgrind's VALID_REGION on PMDK allocations.
func blockPayload(size uint64) uint64 { return (size + 15) &^ 15 }

// Name implements hooks.Runtime.
func (rt *Runtime) Name() string { return "memcheck" }

// Pool implements hooks.Runtime.
func (rt *Runtime) Pool() *pmemobj.Pool { return rt.pool }

// Space implements hooks.Runtime.
func (rt *Runtime) Space() *vmem.AddressSpace { return rt.as }

// Root implements hooks.Runtime.
func (rt *Runtime) Root(size uint64) (pmemobj.Oid, error) {
	oid, err := rt.pool.Root(size)
	if err != nil {
		return pmemobj.OidNull, err
	}
	rt.remove(oid.Off) // re-register in case of growth
	rt.insert(oid.Off, blockPayload(size))
	return oid, nil
}

// Alloc implements hooks.Runtime.
func (rt *Runtime) Alloc(size uint64) (pmemobj.Oid, error) {
	oid, err := rt.pool.Alloc(size)
	if err != nil {
		return pmemobj.OidNull, err
	}
	rt.insert(oid.Off, blockPayload(size))
	return oid, nil
}

// AllocAt implements hooks.Runtime.
func (rt *Runtime) AllocAt(destOff, size uint64) error {
	if err := rt.pool.AllocAt(destOff, size); err != nil {
		return err
	}
	oid := rt.pool.ReadOid(destOff)
	rt.insert(oid.Off, blockPayload(size))
	return nil
}

// Free implements hooks.Runtime.
func (rt *Runtime) Free(oid pmemobj.Oid) error {
	if err := rt.pool.Free(oid); err != nil {
		return err
	}
	rt.remove(oid.Off)
	return nil
}

// FreeAt implements hooks.Runtime.
func (rt *Runtime) FreeAt(destOff uint64) error {
	oid := rt.pool.ReadOid(destOff)
	if err := rt.pool.FreeAt(destOff); err != nil {
		return err
	}
	rt.remove(oid.Off)
	return nil
}

// Realloc implements hooks.Runtime.
func (rt *Runtime) Realloc(oid pmemobj.Oid, size uint64) (pmemobj.Oid, error) {
	newOid, err := rt.pool.Realloc(oid, size)
	if err != nil {
		return pmemobj.OidNull, err
	}
	rt.remove(oid.Off)
	rt.insert(newOid.Off, blockPayload(size))
	return newOid, nil
}

// ReallocAt implements hooks.Runtime.
func (rt *Runtime) ReallocAt(destOff, size uint64) error {
	old := rt.pool.ReadOid(destOff)
	if err := rt.pool.ReallocAt(destOff, size); err != nil {
		return err
	}
	if !old.IsNull() {
		rt.remove(old.Off)
	}
	oid := rt.pool.ReadOid(destOff)
	rt.insert(oid.Off, blockPayload(size))
	return nil
}

// TxAlloc implements hooks.Runtime.
func (rt *Runtime) TxAlloc(tx *pmemobj.Tx, size uint64) (pmemobj.Oid, error) {
	oid, err := tx.Alloc(size)
	if err != nil {
		return pmemobj.OidNull, err
	}
	rt.insert(oid.Off, blockPayload(size))
	return oid, nil
}

// TxFree implements hooks.Runtime.
func (rt *Runtime) TxFree(tx *pmemobj.Tx, oid pmemobj.Oid) error {
	if err := tx.Free(oid); err != nil {
		return err
	}
	rt.remove(oid.Off)
	return nil
}

// Direct implements hooks.Runtime.
func (rt *Runtime) Direct(oid pmemobj.Oid) uint64 { return rt.pool.Direct(oid) }

// Gep implements hooks.Runtime.
func (rt *Runtime) Gep(p uint64, off int64) uint64 { return p + uint64(off) }

// Check implements hooks.Runtime.
func (rt *Runtime) Check(p, n uint64) (uint64, error) {
	base := rt.pool.Base()
	if p < base || p-base >= rt.pool.Device().Size() || n == 0 {
		return p, nil // not a pool pointer
	}
	heapStart, heapEnd := rt.pool.HeapBounds()
	off := p - base
	if off < heapStart || off >= heapEnd {
		// Pool metadata: PMDK-internal, always annotated addressable.
		return p, nil
	}
	if !rt.covered(off, n) {
		return 0, &hooks.ViolationError{
			Mechanism: "memcheck", Addr: p, Size: n,
			Detail: fmt.Sprintf("access outside live allocations (pool offset %#x)", off),
		}
	}
	return p, nil
}

// CheckPM implements hooks.Runtime.
func (rt *Runtime) CheckPM(p, n uint64) (uint64, error) { return rt.Check(p, n) }

// MemIntr implements hooks.Runtime.
func (rt *Runtime) MemIntr(p, n uint64) (uint64, error) { return rt.Check(p, n) }

// External implements hooks.Runtime.
func (rt *Runtime) External(p uint64) uint64 { return p }
