package memcheck

import (
	"testing"

	"repro/internal/hooks"
	"repro/internal/pmem"
	"repro/internal/pmemobj"
	"repro/internal/vmem"
)

func newRuntime(t *testing.T) (*Runtime, *pmemobj.Pool) {
	t.Helper()
	dev := pmem.NewPool("memcheck-test", 16<<20)
	as := vmem.New()
	pool, err := pmemobj.Create(dev, as, 0x10000, pmemobj.Config{})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := Attach(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	return rt, pool
}

func TestAttachRejectsSPPPool(t *testing.T) {
	dev := pmem.NewPool("spp", 16<<20)
	pool, err := pmemobj.Create(dev, nil, 0x10000, pmemobj.Config{SPP: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Attach(pool, nil); err == nil {
		t.Error("Attach on an SPP pool succeeded")
	}
}

func TestLiveAllocationAddressable(t *testing.T) {
	rt, _ := newRuntime(t)
	oid, err := rt.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Direct(oid)
	if _, err := rt.Check(p, 100); err != nil {
		t.Errorf("live allocation flagged: %v", err)
	}
	// Block-granular: the 16-byte-aligned payload is registered, so
	// bytes 100..111 pass (memcheck's known imprecision).
	if _, err := rt.Check(p+100, 12); err != nil {
		t.Errorf("padding flagged (should be block-granular): %v", err)
	}
	// Past the block payload: flagged.
	if _, err := rt.Check(p, 200); !hooks.IsSafetyTrap(err) {
		t.Errorf("past-block access passed: %v", err)
	}
}

func TestFreedMemoryFlagged(t *testing.T) {
	rt, _ := newRuntime(t)
	oid, _ := rt.Alloc(64)
	p := rt.Direct(oid)
	if err := rt.Free(oid); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Check(p, 8); !hooks.IsSafetyTrap(err) {
		t.Errorf("freed memory addressable: %v", err)
	}
}

func TestGapBetweenBlocksFlagged(t *testing.T) {
	rt, _ := newRuntime(t)
	a, _ := rt.Alloc(64)
	b, _ := rt.Alloc(64)
	pa := rt.Direct(a)
	dist := int64(b.Off - a.Off)
	// The block header region between payloads is not addressable.
	if _, err := rt.Check(pa+uint64(dist)-8, 8); !hooks.IsSafetyTrap(err) {
		t.Errorf("inter-block gap addressable: %v", err)
	}
	// But a jump landing inside the live neighbour passes — the
	// mechanistic reason memcheck misses 20 RIPE attacks.
	if _, err := rt.Check(pa+uint64(dist), 8); err != nil {
		t.Errorf("live neighbour flagged: %v", err)
	}
}

func TestPoolMetadataPassesThrough(t *testing.T) {
	rt, pool := newRuntime(t)
	// Addresses in the header/lane region are PMDK-internal.
	if _, err := rt.Check(pool.Base()+64, 8); err != nil {
		t.Errorf("pool metadata flagged: %v", err)
	}
	// Non-pool addresses pass.
	if _, err := rt.Check(0xdead0000000, 8); err != nil {
		t.Errorf("non-pool pointer flagged: %v", err)
	}
}

func TestReallocUpdatesIntervals(t *testing.T) {
	rt, _ := newRuntime(t)
	oid, _ := rt.Alloc(32)
	old := rt.Direct(oid)
	grown, err := rt.Realloc(oid, 500)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Check(rt.Direct(grown), 500); err != nil {
		t.Errorf("grown object flagged: %v", err)
	}
	if _, err := rt.Check(old, 8); !hooks.IsSafetyTrap(err) {
		t.Errorf("old location still registered: %v", err)
	}
}

func TestRebuildFromHeapWalk(t *testing.T) {
	rt, pool := newRuntime(t)
	oid, _ := rt.Alloc(64)
	gone, _ := rt.Alloc(64)
	if err := rt.Free(gone); err != nil {
		t.Fatal(err)
	}
	// A fresh attach rebuilds intervals from the persistent heap.
	rt2, err := Attach(pool, rt.Space())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt2.Check(rt2.Direct(oid), 64); err != nil {
		t.Errorf("live object flagged after rebuild: %v", err)
	}
	if _, err := rt2.Check(rt2.Direct(oid)+uint64(gone.Off-oid.Off), 8); !hooks.IsSafetyTrap(err) {
		t.Errorf("freed object addressable after rebuild: %v", err)
	}
}

func TestTxPathsUpdateIntervals(t *testing.T) {
	rt, pool := newRuntime(t)
	tx := pool.Begin()
	oid, err := rt.TxAlloc(tx, 80)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Check(rt.Direct(oid), 80); err != nil {
		t.Errorf("tx-allocated object flagged: %v", err)
	}
	tx2 := pool.Begin()
	if err := rt.TxFree(tx2, oid); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Check(rt.Direct(oid), 8); !hooks.IsSafetyTrap(err) {
		t.Errorf("tx-freed object addressable: %v", err)
	}
}
