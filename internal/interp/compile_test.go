package interp

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/telemetry"
	"repro/internal/variant"
)

// TestCompileAllCounts checks the compile/fallback accounting on a
// module with one compilable function and one that must decline (its
// only use is defined later in the same block, behind a backedge).
func TestCompileAllCounts(t *testing.T) {
	m := parse(t, `
func @good(%a) {
entry:
  %one = const 1
  %b = add %a, %one
  ret %b
}
func @bad() {
entry:
  br loop
loop:
  %y = add %x, %x
  %x = const 1
  %c = icmp.lt %y, %x
  condbr %c, loop, out
out:
  ret %y
}
`)
	mach := New(m, env(t, variant.PMDK))
	st := mach.CompileAll()
	if st.Funcs != 1 || st.Fallbacks != 1 {
		t.Fatalf("CompileAll: %+v, want 1 compiled / 1 fallback", st)
	}
	if st.Thunks != 3 {
		t.Errorf("Thunks = %d, want 3 (good's instruction count)", st.Thunks)
	}
	// The fallback function must keep the interpreter's
	// fault-on-undefined semantics.
	if _, err := mach.Run("bad"); err == nil || !strings.Contains(err.Error(), "undefined value") {
		t.Errorf("bad() = %v, want undefined-value fault", err)
	}
	if got, err := mach.Run("good", 41); err != nil || got != 42 {
		t.Errorf("good(41) = %d, %v", got, err)
	}
}

// TestNoCompileKnob checks both selection paths: the variant option and
// the machine field.
func TestNoCompileKnob(t *testing.T) {
	src := `
func @main(%a) {
entry:
  ret %a
}
`
	e, err := variant.New(variant.PMDK, variant.Options{PoolSize: 16 << 20, Knobs: engine.Knobs{NoCompile: true}})
	if err != nil {
		t.Fatal(err)
	}
	mach := New(parse(t, src), e)
	if !mach.NoCompile {
		t.Fatal("Options.NoCompile not threaded into the machine")
	}
	if got, err := mach.Run("main", 7); err != nil || got != 7 {
		t.Fatalf("interpreted main(7) = %d, %v", got, err)
	}
	if st := mach.CompileStats(); st.Funcs != 0 {
		t.Errorf("NoCompile machine compiled %d funcs", st.Funcs)
	}
}

// TestCompiledHookThunks: under SPP every hook site must be lowered
// (and counted) rather than interpreted, and the compiled hooks must
// still catch an out-of-bounds access.
func TestCompiledHookThunks(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %size = const 64
  %oid = pmalloc %size
  %p = direct %oid
  %t = spp.updatetag %p, 64
  %q = gep %p, 64
  %a = spp.checkbound.8 %t
  store.8 %a, %size
  ret %size
}
`)
	mach := New(m, env(t, variant.SPP))
	st := mach.CompileAll()
	if st.Funcs != 1 {
		t.Fatalf("CompileAll: %+v", st)
	}
	if st.Hooks != 2 {
		t.Errorf("Hooks = %d, want 2 (updatetag + checkbound)", st.Hooks)
	}
	if _, err := mach.Run("main"); err == nil {
		t.Error("compiled SPP hooks let an overflow through")
	}
}

// TestCompiledExternalRegistry: externals registered after compilation
// must be visible to already-compiled call sites.
func TestCompiledExternalRegistry(t *testing.T) {
	m := parse(t, `
extern @ext_double
func @main(%a) {
entry:
  %r = callext @ext_double, %a
  ret %r
}
`)
	mach := New(m, env(t, variant.PMDK))
	mach.CompileAll()
	mach.RegisterExternal("ext_double", func(m *Machine, args []uint64) (uint64, error) {
		return args[0] * 2, nil
	})
	if got, err := mach.Run("main", 21); err != nil || got != 42 {
		t.Errorf("main(21) = %d, %v", got, err)
	}
}

// TestCompiledStepBudget: the compiled dispatch shares MaxSteps with
// the interpreter.
func TestCompiledStepBudget(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  br spin
spin:
  br spin
}
`)
	mach := New(m, env(t, variant.PMDK))
	mach.MaxSteps = 1000
	if _, err := mach.Run("main"); err == nil || !strings.Contains(err.Error(), "step budget") {
		t.Errorf("spin = %v, want step-budget fault", err)
	}
}

// TestCompileTelemetry: the compile counters must reach the default
// registry's Prometheus exposition.
func TestCompileTelemetry(t *testing.T) {
	telemetry.Enable()
	m := parse(t, `
func @main(%a) {
entry:
  ret %a
}
func @dead() {
entry:
  br loop
loop:
  %y = add %x, %x
  %x = const 1
  ret %y
}
`)
	mach := New(m, env(t, variant.PMDK))
	mach.CompileAll()
	var sb strings.Builder
	telemetry.Default.WriteProm(&sb)
	out := sb.String()
	for _, metric := range []string{
		"spp_compiled_funcs_total",
		"spp_interp_fallback_total",
		"spp_compile_ns",
	} {
		if !strings.Contains(out, metric) {
			t.Errorf("prometheus exposition missing %s", metric)
		}
	}
}
