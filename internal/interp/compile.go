package interp

import (
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/hooks"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Closure compilation (DESIGN.md §14). Run lowers each function once
// into a flat array of thunks — one Go closure per instruction, with
// operands resolved to register slots and every variant decision
// (SPP vs identity tag hooks, KnownPM specializations, access width)
// baked in at compile time. Execution is then an indirect call per
// instruction instead of a switch on opcode plus per-name map lookups,
// so a surviving SPP hook costs what the hook itself costs.
//
// The interpreter in interp.go remains the reference semantics and the
// differential oracle (Machine.NoCompile selects it). The two must be
// observably identical; the one semantic hazard is undefined values.
// The interpreter faults when a use reads a name no executed
// instruction has defined; a register slot would silently read zero.
// Compilation therefore requires analysis.UsesDominated — every use
// dominated by a definition, so no execution can read-before-write —
// and any function failing it (or using an op the compiler does not
// know) falls back to interpretation, recorded in CompileStats and the
// spp_interp_fallback_total counter.

var (
	metCompiledFuncs  = telemetry.Default.Counter("spp_compiled_funcs_total", "IR functions lowered to closure chains")
	metInterpFallback = telemetry.Default.Counter("spp_interp_fallback_total", "functions declined to the reference interpreter")
	metCompileNs      = telemetry.Default.Histogram("spp_compile_ns", "per-function closure-compilation time (ns)")
)

// CompileStats summarizes one machine's compilation activity.
type CompileStats struct {
	// Funcs is the number of functions lowered to closure chains.
	Funcs int
	// Thunks is the total number of instruction thunks emitted.
	Thunks int
	// Hooks is how many of those thunks are SPP hook or persistence
	// sites (checkbound/updatetag/cleantag/clean-external/memintr,
	// flush, fence) — direct calls in compiled execution.
	Hooks int
	// Fallbacks is the number of functions declined to the interpreter
	// (non-dominated uses, empty or unterminated bodies).
	Fallbacks int
}

// cstate is the per-activation state of a compiled function: register
// file, thunk program counter and the ret/done latch.
type cstate struct {
	m    *Machine
	regs []uint64
	pc   int
	ret  uint64
	done bool
}

// thunk executes one lowered instruction against the activation state.
type thunk func(s *cstate) error

// compiledFunc is one function lowered to threaded code.
type compiledFunc struct {
	f      *ir.Func
	nRegs  int
	params []int // register slot of each parameter
	code   []thunk
}

// compiledFor returns the lowered form of f, compiling on first use, or
// nil when f executes on the interpreter (NoCompile or fallback).
func (m *Machine) compiledFor(f *ir.Func) *compiledFunc {
	if m.NoCompile {
		return nil
	}
	if cf, ok := m.compiled[f.Name]; ok {
		return cf
	}
	start := time.Now()
	cf := m.compile(f)
	if telemetry.On() {
		metCompileNs.Observe(uint64(time.Since(start).Nanoseconds()))
	}
	if m.compiled == nil {
		m.compiled = map[string]*compiledFunc{}
	}
	m.compiled[f.Name] = cf
	if cf == nil {
		m.cstats.Fallbacks++
		metInterpFallback.Inc()
	} else {
		m.cstats.Funcs++
		m.cstats.Thunks += len(cf.code)
		metCompiledFuncs.Inc()
	}
	return cf
}

// CompileAll eagerly lowers every defined function in the module and
// returns the cumulative stats (sppc -stats reports them).
func (m *Machine) CompileAll() CompileStats {
	for _, f := range m.mod.Funcs {
		if !f.External {
			m.compiledFor(f)
		}
	}
	return m.cstats
}

// CompileStats returns the compilation counters accumulated so far.
func (m *Machine) CompileStats() CompileStats { return m.cstats }

// runCompiled drives a compiled function: one indirect call per
// instruction, sharing the machine's step budget with the interpreter.
func (m *Machine) runCompiled(cf *compiledFunc, args []uint64) (uint64, error) {
	s := cstate{m: m, regs: make([]uint64, cf.nRegs)}
	for i, r := range cf.params {
		s.regs[r] = args[i]
	}
	code := cf.code
	for !s.done {
		m.steps++
		if m.steps > m.MaxSteps {
			return 0, fmt.Errorf("interp: step budget exceeded in %s", cf.f.Name)
		}
		t := code[s.pc]
		s.pc++
		if err := t(&s); err != nil {
			return 0, err
		}
	}
	return s.ret, nil
}

// compile lowers f, or returns nil to decline it to the interpreter.
func (m *Machine) compile(f *ir.Func) *compiledFunc {
	if !analysis.UsesDominated(f) {
		return nil
	}
	for _, blk := range f.Blocks {
		if len(blk.Instrs) == 0 {
			return nil
		}
		switch blk.Instrs[len(blk.Instrs)-1].Op {
		case ir.Br, ir.CondBr, ir.Ret:
		default:
			return nil // no terminator: interp reports fell-off-the-end
		}
	}

	cf := &compiledFunc{f: f}
	regOf := map[string]int{}
	reg := func(name string) int {
		if r, ok := regOf[name]; ok {
			return r
		}
		r := cf.nRegs
		cf.nRegs++
		regOf[name] = r
		return r
	}
	for _, p := range f.Params {
		cf.params = append(cf.params, reg(p))
	}

	// Thunk addresses: one thunk per instruction, blocks laid out in
	// declaration order. Branches jump to a block's first thunk.
	blockPC := map[string]int{}
	pc := 0
	for _, blk := range f.Blocks {
		blockPC[blk.Name] = pc
		pc += len(blk.Instrs)
	}

	cf.code = make([]thunk, 0, pc)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			t, isHook := m.lower(cf, f, in, reg, blockPC)
			if t == nil {
				return nil // unknown op: interp owns the error
			}
			if isHook {
				m.cstats.Hooks++
			}
			cf.code = append(cf.code, t)
		}
	}
	return cf
}

// lower emits the thunk for one instruction, with operands bound to
// register slots and all mode decisions resolved now. The second result
// marks SPP hook / persistence sites.
func (m *Machine) lower(cf *compiledFunc, f *ir.Func, in *ir.Instr,
	reg func(string) int, blockPC map[string]int) (thunk, bool) {
	rt := m.env.RT
	as := m.env.AS
	enc := m.enc
	argR := func(i int) int { return reg(in.Args[i]) }

	switch in.Op {
	case ir.Const:
		d, imm := reg(in.Dst), uint64(in.Imm)
		return func(s *cstate) error { s.regs[d] = imm; return nil }, false

	case ir.Malloc:
		d, a := reg(in.Dst), argR(0)
		heap := m.env.Heap
		return func(s *cstate) error {
			p, err := heap.Alloc(s.regs[a])
			if err != nil {
				return err
			}
			s.regs[d] = p
			return nil
		}, false

	case ir.PmemAlloc:
		d, a := reg(in.Dst), argR(0)
		return func(s *cstate) error {
			oid, err := rt.Alloc(s.regs[a])
			if err != nil {
				return err
			}
			s.m.oids = append(s.m.oids, oid)
			s.regs[d] = uint64(len(s.m.oids))
			return nil
		}, false

	case ir.PmemDirect:
		d, a := reg(in.Dst), argR(0)
		return func(s *cstate) error {
			oid, err := s.m.Oid(s.regs[a])
			if err != nil {
				return err
			}
			s.regs[d] = rt.Direct(oid)
			return nil
		}, false

	case ir.Gep:
		d, a := reg(in.Dst), argR(0)
		if len(in.Args) == 2 {
			b := argR(1)
			return func(s *cstate) error { s.regs[d] = s.regs[a] + s.regs[b]; return nil }, false
		}
		off := uint64(in.Imm)
		return func(s *cstate) error { s.regs[d] = s.regs[a] + off; return nil }, false

	case ir.Load:
		d, a := reg(in.Dst), argR(0)
		in := in // fault provenance needs the instruction
		switch in.Size {
		case 1:
			return func(s *cstate) error {
				v, err := as.LoadU8(s.regs[a])
				if err != nil {
					return s.m.trapWithProvenance(f, in, err)
				}
				s.regs[d] = uint64(v)
				return nil
			}, false
		case 2:
			return func(s *cstate) error {
				v, err := as.LoadU16(s.regs[a])
				if err != nil {
					return s.m.trapWithProvenance(f, in, err)
				}
				s.regs[d] = uint64(v)
				return nil
			}, false
		case 4:
			return func(s *cstate) error {
				v, err := as.LoadU32(s.regs[a])
				if err != nil {
					return s.m.trapWithProvenance(f, in, err)
				}
				s.regs[d] = uint64(v)
				return nil
			}, false
		default:
			return func(s *cstate) error {
				v, err := as.LoadU64(s.regs[a])
				if err != nil {
					return s.m.trapWithProvenance(f, in, err)
				}
				s.regs[d] = v
				return nil
			}, false
		}

	case ir.Store:
		a, v := argR(0), argR(1)
		in := in
		switch in.Size {
		case 1:
			return func(s *cstate) error {
				if err := as.StoreU8(s.regs[a], byte(s.regs[v])); err != nil {
					return s.m.trapWithProvenance(f, in, err)
				}
				return nil
			}, false
		case 2:
			return func(s *cstate) error {
				if err := as.StoreU16(s.regs[a], uint16(s.regs[v])); err != nil {
					return s.m.trapWithProvenance(f, in, err)
				}
				return nil
			}, false
		case 4:
			return func(s *cstate) error {
				if err := as.StoreU32(s.regs[a], uint32(s.regs[v])); err != nil {
					return s.m.trapWithProvenance(f, in, err)
				}
				return nil
			}, false
		default:
			return func(s *cstate) error {
				if err := as.StoreU64(s.regs[a], s.regs[v]); err != nil {
					return s.m.trapWithProvenance(f, in, err)
				}
				return nil
			}, false
		}

	case ir.PtrToInt, ir.IntToPtr:
		d, a := reg(in.Dst), argR(0)
		return func(s *cstate) error { s.regs[d] = s.regs[a]; return nil }, false

	case ir.Add:
		d, a, b := reg(in.Dst), argR(0), argR(1)
		return func(s *cstate) error { s.regs[d] = s.regs[a] + s.regs[b]; return nil }, false
	case ir.Sub:
		d, a, b := reg(in.Dst), argR(0), argR(1)
		return func(s *cstate) error { s.regs[d] = s.regs[a] - s.regs[b]; return nil }, false
	case ir.Mul:
		d, a, b := reg(in.Dst), argR(0), argR(1)
		return func(s *cstate) error { s.regs[d] = s.regs[a] * s.regs[b]; return nil }, false
	case ir.ICmpLt:
		d, a, b := reg(in.Dst), argR(0), argR(1)
		return func(s *cstate) error { s.regs[d] = b2u(s.regs[a] < s.regs[b]); return nil }, false
	case ir.ICmpEq:
		d, a, b := reg(in.Dst), argR(0), argR(1)
		return func(s *cstate) error { s.regs[d] = b2u(s.regs[a] == s.regs[b]); return nil }, false

	case ir.Br:
		target := blockPC[in.Sym]
		return func(s *cstate) error { s.pc = target; return nil }, false

	case ir.CondBr:
		c := argR(0)
		then, els := blockPC[in.Sym], blockPC[in.SymElse]
		return func(s *cstate) error {
			if s.regs[c] != 0 {
				s.pc = then
			} else {
				s.pc = els
			}
			return nil
		}, false

	case ir.Ret:
		if len(in.Args) > 0 {
			a := argR(0)
			return func(s *cstate) error { s.ret, s.done = s.regs[a], true; return nil }, false
		}
		return func(s *cstate) error { s.done = true; return nil }, false

	case ir.Call:
		args := make([]int, len(in.Args))
		for i := range in.Args {
			args[i] = argR(i)
		}
		sym := in.Sym
		if in.Dst != "" {
			d := reg(in.Dst)
			return func(s *cstate) error {
				vals := make([]uint64, len(args))
				for i, r := range args {
					vals[i] = s.regs[r]
				}
				ret, err := s.m.Run(sym, vals...)
				if err != nil {
					return err
				}
				s.regs[d] = ret
				return nil
			}, false
		}
		return func(s *cstate) error {
			vals := make([]uint64, len(args))
			for i, r := range args {
				vals[i] = s.regs[r]
			}
			_, err := s.m.Run(sym, vals...)
			return err
		}, false

	case ir.CallExt:
		args := make([]int, len(in.Args))
		for i := range in.Args {
			args[i] = argR(i)
		}
		sym := in.Sym
		d := -1
		if in.Dst != "" {
			d = reg(in.Dst)
		}
		// The registry is resolved per call: RegisterExternal after New
		// (and after compilation) must keep working.
		return func(s *cstate) error {
			fn, ok := s.m.externals[sym]
			if !ok {
				return fmt.Errorf("interp: unknown external @%s", sym)
			}
			vals := make([]uint64, len(args))
			for i, r := range args {
				vals[i] = s.regs[r]
			}
			ret, err := fn(s.m, vals)
			if err != nil {
				return err
			}
			if d >= 0 {
				s.regs[d] = ret
			}
			return nil
		}, false

	case ir.MemCpy, ir.MemSet:
		dst, src, n := argR(0), argR(1), argR(2)
		in := in
		return func(s *cstate) error {
			return s.m.memIntrinsic(in, s.regs[dst], s.regs[src], s.regs[n])
		}, false

	case ir.StrCpy:
		dst, src := argR(0), argR(1)
		if in.Wrapped {
			return func(s *cstate) error {
				return hooks.Strcpy(rt, s.regs[dst], s.regs[src])
			}, false
		}
		return func(s *cstate) error {
			str, err := as.CString(s.regs[src], 1<<20)
			if err != nil {
				return err
			}
			return as.StoreBytes(s.regs[dst], append([]byte(str), 0))
		}, false

	case ir.Flush:
		a := argR(0)
		pool, dev := m.env.Pool, m.env.Dev
		if pool == nil || dev == nil {
			return func(s *cstate) error { return nil }, true
		}
		return func(s *cstate) error {
			if off, err := pool.OffsetOf(rt.External(s.regs[a])); err == nil {
				dev.Flush(off, 1)
			}
			return nil
		}, true

	case ir.Fence:
		dev := m.env.Dev
		if dev == nil {
			return func(s *cstate) error { return nil }, true
		}
		return func(s *cstate) error { dev.Fence(); return nil }, true

	case ir.SppUpdateTag:
		d, a := reg(in.Dst), argR(0)
		if !m.isSPP {
			if len(in.Args) == 2 {
				argR(1) // keep register layout independent of variant
			}
			return func(s *cstate) error { s.regs[d] = s.regs[a]; return nil }, true
		}
		if len(in.Args) == 2 {
			b := argR(1)
			if in.KnownPM {
				return func(s *cstate) error {
					s.regs[d] = enc.UpdateTagDirect(s.regs[a], int64(s.regs[b]))
					return nil
				}, true
			}
			return func(s *cstate) error {
				s.regs[d] = enc.UpdateTag(s.regs[a], int64(s.regs[b]))
				return nil
			}, true
		}
		off := in.Imm
		if in.KnownPM {
			return func(s *cstate) error {
				s.regs[d] = enc.UpdateTagDirect(s.regs[a], off)
				return nil
			}, true
		}
		return func(s *cstate) error {
			s.regs[d] = enc.UpdateTag(s.regs[a], off)
			return nil
		}, true

	case ir.SppCheckBound:
		d, a, size := reg(in.Dst), argR(0), in.Size
		if in.KnownPM {
			return func(s *cstate) error {
				addr, err := rt.CheckPM(s.regs[a], size)
				if err != nil {
					return err
				}
				s.regs[d] = addr
				return nil
			}, true
		}
		return func(s *cstate) error {
			addr, err := rt.Check(s.regs[a], size)
			if err != nil {
				return err
			}
			s.regs[d] = addr
			return nil
		}, true

	case ir.SppCleanTag:
		d, a := reg(in.Dst), argR(0)
		if !m.isSPP {
			return func(s *cstate) error { s.regs[d] = s.regs[a]; return nil }, true
		}
		return func(s *cstate) error { s.regs[d] = enc.CleanTag(s.regs[a]); return nil }, true

	case ir.SppCleanExternal:
		d, a := reg(in.Dst), argR(0)
		return func(s *cstate) error { s.regs[d] = rt.External(s.regs[a]); return nil }, true

	case ir.SppMemIntrCheck:
		d, a, n := reg(in.Dst), argR(0), argR(1)
		return func(s *cstate) error {
			addr, err := rt.MemIntr(s.regs[a], s.regs[n])
			if err != nil {
				return err
			}
			s.regs[d] = addr
			return nil
		}, true
	}
	return nil, false
}
