package interp

import (
	"errors"
	"testing"

	"repro/internal/ir"
	"repro/internal/variant"
)

func env(t *testing.T, kind variant.Kind) *variant.Env {
	t.Helper()
	e, err := variant.New(kind, variant.Options{PoolSize: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestRunErrors(t *testing.T) {
	m := parse(t, `
extern @ext_identity
func @main(%a) {
entry:
  ret %a
}
`)
	mach := New(m, env(t, variant.PMDK))
	if _, err := mach.Run("nope"); err == nil {
		t.Error("unknown function accepted")
	}
	if _, err := mach.Run("ext_identity", 1); err == nil {
		t.Error("running an extern accepted")
	}
	if _, err := mach.Run("main"); err == nil {
		t.Error("arity mismatch accepted")
	}
	if got, err := mach.Run("main", 42); err != nil || got != 42 {
		t.Errorf("main(42) = %d, %v", got, err)
	}
}

func TestUndefinedValue(t *testing.T) {
	// The verifier rejects names never defined anywhere; a value defined
	// only on an unexecuted path passes Verify but must still fault at
	// run time.
	m := parse(t, `
func @main() {
entry:
  %x = add %a, %a
  ret %x
dead:
  %a = const 1
  ret %a
}
`)
	if _, err := New(m, env(t, variant.PMDK)).Run("main"); err == nil {
		t.Error("undefined value accepted")
	}
}

func TestArithmeticAndMemoryOps(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %two = const 2
  %three = const 3
  %six = mul %two, %three
  %five = add %two, %three
  %one = sub %three, %two
  store.1 %p, %one
  %q = gep %p, 1
  store.2 %q, %five
  %r = gep %p, 4
  store.4 %r, %six
  %w = gep %p, 8
  store.8 %w, %five
  %a = load.1 %p
  %b = load.2 %q
  %c = load.4 %r
  %d = load.8 %w
  %ab = add %a, %b
  %cd = add %c, %d
  %sum = add %ab, %cd
  ret %sum
}
`)
	got, err := New(m, env(t, variant.PMDK)).Run("main")
	if err != nil || got != 1+5+6+5 {
		t.Errorf("sum = %d, %v", got, err)
	}
}

func TestExternalRegistry(t *testing.T) {
	m := parse(t, `
extern @ext_custom
func @main() {
entry:
  %v = const 10
  %r = callext @ext_custom, %v
  ret %r
}
`)
	mach := New(m, env(t, variant.PMDK))
	if _, err := mach.Run("main"); err == nil {
		t.Error("unregistered external accepted")
	}
	mach.RegisterExternal("ext_custom", func(m *Machine, args []uint64) (uint64, error) {
		return args[0] * 3, nil
	})
	got, err := mach.Run("main")
	if err != nil || got != 30 {
		t.Errorf("ext_custom = %d, %v", got, err)
	}
}

func TestOidHandles(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 32
  %oid = pmalloc %s
  ret %oid
}
`)
	mach := New(m, env(t, variant.SPP))
	h, err := mach.Run("main")
	if err != nil {
		t.Fatal(err)
	}
	oid, err := mach.Oid(h)
	if err != nil || oid.Size != 32 {
		t.Errorf("Oid(%d) = %v, %v", h, oid, err)
	}
	if _, err := mach.Oid(0); err == nil {
		t.Error("null handle accepted")
	}
	if _, err := mach.Oid(99); err == nil {
		t.Error("wild handle accepted")
	}
}

func TestMallocAndVolatileStores(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 16
  %m = malloc %s
  %v = const 123
  store.8 %m, %v
  %x = load.8 %m
  ret %x
}
`)
	got, err := New(m, env(t, variant.SPP)).Run("main")
	if err != nil || got != 123 {
		t.Errorf("volatile store/load = %d, %v", got, err)
	}
}

func TestStrcpyInstr(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 16
  %a = pmalloc %s
  %pa = direct %a
  %b = pmalloc %s
  %pb = direct %b
  %h = const 104
  store.1 %pa, %h
  %z = gep %pa, 1
  %nul = const 0
  store.1 %z, %nul
  strcpy %pb, %pa
  %c = load.1 %pb
  ret %c
}
`)
	// Uninstrumented on the native toolchain: raw strcpy.
	got, err := New(m, env(t, variant.PMDK)).Run("main")
	if err != nil || got != 104 {
		t.Errorf("strcpy copy = %d, %v", got, err)
	}
}

func TestRetWithoutValue(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  ret
}
`)
	got, err := New(m, env(t, variant.PMDK)).Run("main")
	if err != nil || got != 0 {
		t.Errorf("bare ret = %d, %v", got, err)
	}
}

func TestIntToPtrPreservesValue(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %i = ptrtoint %p
  %q = inttoptr %i
  %eq = icmp.eq %p, %q
  ret %eq
}
`)
	got, err := New(m, env(t, variant.PMDK)).Run("main")
	if err != nil || got != 1 {
		t.Errorf("round trip = %d, %v", got, err)
	}
}

var errSentinel = errors.New("sentinel")

func TestExternalErrorPropagates(t *testing.T) {
	m := parse(t, `
extern @ext_fail
func @main() {
entry:
  %r = callext @ext_fail
  ret %r
}
`)
	mach := New(m, env(t, variant.PMDK))
	mach.RegisterExternal("ext_fail", func(m *Machine, args []uint64) (uint64, error) {
		return 0, errSentinel
	})
	if _, err := mach.Run("main"); !errors.Is(err, errSentinel) {
		t.Errorf("err = %v", err)
	}
}
