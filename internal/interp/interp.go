// Package interp executes mini-IR modules against a simulated
// environment. It models the run-time half of the SPP toolchain: an
// uninstrumented module performs raw loads and stores, while a module
// rewritten by the transform pass calls the variant's hook
// implementations at the injected sites — so an out-of-bounds access
// under SPP faults exactly as a hardened binary would.
package interp

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/hooks"
	"repro/internal/ir"
	"repro/internal/pmemobj"
	"repro/internal/telemetry"
	"repro/internal/variant"
)

// ExternalFn simulates an uninstrumented library function. It receives
// already-masked pointer arguments and accesses memory raw.
type ExternalFn func(m *Machine, args []uint64) (uint64, error)

// Machine runs one module against one environment.
type Machine struct {
	mod   *ir.Module
	env   *variant.Env
	enc   core.Encoding
	isSPP bool

	oids      []pmemobj.Oid
	externals map[string]ExternalFn

	steps    int
	MaxSteps int

	// NoCompile pins execution to the reference interpreter. It is
	// initialized from the environment's option and may be flipped
	// before the first Run; compiled functions are cached, so flipping
	// it afterwards only affects functions not yet executed.
	NoCompile bool
	compiled  map[string]*compiledFunc
	cstats    CompileStats
}

// New returns a machine for the module over the environment, with the
// default external-function registry installed.
func New(mod *ir.Module, env *variant.Env) *Machine {
	m := &Machine{
		mod: mod,
		env: env,
		enc: env.Pool.Encoding(),
		// Both SPP layouts carry tags in the pointer (pmemobj.Config.SPP
		// is set for either); the packed-oid variant must not degrade
		// the tag hooks to identity.
		isSPP:     env.Kind == variant.SPP || env.Kind == variant.SPPPacked,
		MaxSteps:  10_000_000,
		NoCompile: env.NoCompile(),
	}
	m.externals = map[string]ExternalFn{
		// ext_store8(p, v): an uninstrumented library writing through a
		// pointer it was handed. It dereferences raw — a tagged pointer
		// passed unmasked would fault here.
		"ext_store8": func(m *Machine, args []uint64) (uint64, error) {
			if len(args) != 2 {
				return 0, fmt.Errorf("ext_store8 wants 2 args")
			}
			return 0, m.env.AS.StoreU64(args[0], args[1])
		},
		"ext_load8": func(m *Machine, args []uint64) (uint64, error) {
			if len(args) != 1 {
				return 0, fmt.Errorf("ext_load8 wants 1 arg")
			}
			return m.env.AS.LoadU64(args[0])
		},
		"ext_identity": func(m *Machine, args []uint64) (uint64, error) {
			if len(args) != 1 {
				return 0, fmt.Errorf("ext_identity wants 1 arg")
			}
			return args[0], nil
		},
	}
	return m
}

// RegisterExternal installs or replaces an external function.
func (m *Machine) RegisterExternal(name string, fn ExternalFn) {
	m.externals[name] = fn
}

// Oid returns the oid behind a handle produced by pmalloc.
func (m *Machine) Oid(handle uint64) (pmemobj.Oid, error) {
	if handle == 0 || handle > uint64(len(m.oids)) {
		return pmemobj.OidNull, fmt.Errorf("interp: bad oid handle %d", handle)
	}
	return m.oids[handle-1], nil
}

// Run executes the named function with the given arguments and returns
// the value of its ret instruction.
func (m *Machine) Run(fn string, args ...uint64) (uint64, error) {
	f := m.mod.Func(fn)
	if f == nil {
		return 0, fmt.Errorf("interp: no function %q", fn)
	}
	if f.External {
		return 0, fmt.Errorf("interp: %q is external", fn)
	}
	if len(args) != len(f.Params) {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", fn, len(f.Params), len(args))
	}
	if cf := m.compiledFor(f); cf != nil {
		return m.runCompiled(cf, args)
	}
	vals := make(map[string]uint64, 16)
	for i, p := range f.Params {
		vals[p] = args[i]
	}
	blk := f.Blocks[0]
	for {
		next, ret, done, err := m.execBlock(f, blk, vals)
		if err != nil {
			return 0, err
		}
		if done {
			return ret, nil
		}
		blk = next
	}
}

func (m *Machine) execBlock(f *ir.Func, blk *ir.Block, vals map[string]uint64) (*ir.Block, uint64, bool, error) {
	rt := m.env.RT
	as := m.env.AS
	get := func(name string) (uint64, error) {
		v, ok := vals[name]
		if !ok {
			return 0, fmt.Errorf("interp: %s: undefined value %s", f.Name, name)
		}
		return v, nil
	}
	for _, in := range blk.Instrs {
		m.steps++
		if m.steps > m.MaxSteps {
			return nil, 0, false, fmt.Errorf("interp: step budget exceeded in %s", f.Name)
		}
		switch in.Op {
		case ir.Const:
			vals[in.Dst] = uint64(in.Imm)

		case ir.Malloc:
			size, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			p, err := m.env.Heap.Alloc(size)
			if err != nil {
				return nil, 0, false, err
			}
			vals[in.Dst] = p

		case ir.PmemAlloc:
			size, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			oid, err := rt.Alloc(size)
			if err != nil {
				return nil, 0, false, err
			}
			m.oids = append(m.oids, oid)
			vals[in.Dst] = uint64(len(m.oids))

		case ir.PmemDirect:
			h, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			oid, err := m.Oid(h)
			if err != nil {
				return nil, 0, false, err
			}
			vals[in.Dst] = rt.Direct(oid)

		case ir.Gep:
			base, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			off := in.Imm
			if len(in.Args) == 2 {
				v, err := get(in.Args[1])
				if err != nil {
					return nil, 0, false, err
				}
				off = int64(v)
			}
			// The bare GEP moves the address; the injected
			// spp.updatetag maintains the tag separately.
			vals[in.Dst] = base + uint64(off)

		case ir.Load:
			addr, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			v, err := m.load(as, addr, in.Size)
			if err != nil {
				return nil, 0, false, m.trapWithProvenance(f, in, err)
			}
			vals[in.Dst] = v

		case ir.Store:
			addr, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			v, err := get(in.Args[1])
			if err != nil {
				return nil, 0, false, err
			}
			if err := m.store(as, addr, v, in.Size); err != nil {
				return nil, 0, false, m.trapWithProvenance(f, in, err)
			}

		case ir.PtrToInt, ir.IntToPtr:
			v, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			vals[in.Dst] = v

		case ir.Add, ir.Sub, ir.Mul, ir.ICmpLt, ir.ICmpEq:
			a, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			b, err := get(in.Args[1])
			if err != nil {
				return nil, 0, false, err
			}
			switch in.Op {
			case ir.Add:
				vals[in.Dst] = a + b
			case ir.Sub:
				vals[in.Dst] = a - b
			case ir.Mul:
				vals[in.Dst] = a * b
			case ir.ICmpLt:
				vals[in.Dst] = b2u(a < b)
			case ir.ICmpEq:
				vals[in.Dst] = b2u(a == b)
			}

		case ir.Br:
			return f.Block(in.Sym), 0, false, nil

		case ir.CondBr:
			c, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			if c != 0 {
				return f.Block(in.Sym), 0, false, nil
			}
			return f.Block(in.SymElse), 0, false, nil

		case ir.Ret:
			var v uint64
			if len(in.Args) > 0 {
				var err error
				if v, err = get(in.Args[0]); err != nil {
					return nil, 0, false, err
				}
			}
			return nil, v, true, nil

		case ir.Call:
			args := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				v, err := get(a)
				if err != nil {
					return nil, 0, false, err
				}
				args[i] = v
			}
			ret, err := m.Run(in.Sym, args...)
			if err != nil {
				return nil, 0, false, err
			}
			if in.Dst != "" {
				vals[in.Dst] = ret
			}

		case ir.CallExt:
			fn, ok := m.externals[in.Sym]
			if !ok {
				return nil, 0, false, fmt.Errorf("interp: unknown external @%s", in.Sym)
			}
			args := make([]uint64, len(in.Args))
			for i, a := range in.Args {
				v, err := get(a)
				if err != nil {
					return nil, 0, false, err
				}
				args[i] = v
			}
			ret, err := fn(m, args)
			if err != nil {
				return nil, 0, false, err
			}
			if in.Dst != "" {
				vals[in.Dst] = ret
			}

		case ir.MemCpy, ir.MemSet:
			dst, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			src, err := get(in.Args[1])
			if err != nil {
				return nil, 0, false, err
			}
			n, err := get(in.Args[2])
			if err != nil {
				return nil, 0, false, err
			}
			if err := m.memIntrinsic(in, dst, src, n); err != nil {
				return nil, 0, false, err
			}

		case ir.StrCpy:
			dst, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			src, err := get(in.Args[1])
			if err != nil {
				return nil, 0, false, err
			}
			if in.Wrapped {
				if err := hooks.Strcpy(rt, dst, src); err != nil {
					return nil, 0, false, err
				}
			} else {
				s, err := as.CString(src, 1<<20)
				if err != nil {
					return nil, 0, false, err
				}
				if err := as.StoreBytes(dst, append([]byte(s), 0)); err != nil {
					return nil, 0, false, err
				}
			}

		case ir.Flush:
			// An application-level flush forwards to the device model:
			// the cacheline holding the (untagged) address joins the
			// pending set, and the next fence persists it. Addresses
			// outside the pool (volatile memory) are a no-op, as on
			// real hardware where clwb of DRAM has no durability
			// effect. The operand is always resolved so an undefined
			// reference faults like any other use.
			p, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			if m.env.Pool != nil && m.env.Dev != nil {
				if off, err := m.env.Pool.OffsetOf(rt.External(p)); err == nil {
					m.env.Dev.Flush(off, 1)
				}
			}

		case ir.Fence:
			// Orders pending flushes: the device copies the current
			// working contents of every pending line to the durable
			// image. Free when persistence tracking is off.
			if m.env.Dev != nil {
				m.env.Dev.Fence()
			}

		case ir.SppUpdateTag:
			p, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			off := in.Imm
			if len(in.Args) == 2 {
				v, err := get(in.Args[1])
				if err != nil {
					return nil, 0, false, err
				}
				off = int64(v)
			}
			vals[in.Dst] = m.updateTag(p, off, in.KnownPM)

		case ir.SppCheckBound:
			p, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			var addr uint64
			if in.KnownPM {
				addr, err = rt.CheckPM(p, in.Size)
			} else {
				addr, err = rt.Check(p, in.Size)
			}
			if err != nil {
				return nil, 0, false, err
			}
			vals[in.Dst] = addr

		case ir.SppCleanTag:
			p, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			if m.isSPP {
				vals[in.Dst] = m.enc.CleanTag(p)
			} else {
				vals[in.Dst] = p
			}

		case ir.SppCleanExternal:
			p, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			vals[in.Dst] = rt.External(p)

		case ir.SppMemIntrCheck:
			p, err := get(in.Args[0])
			if err != nil {
				return nil, 0, false, err
			}
			n, err := get(in.Args[1])
			if err != nil {
				return nil, 0, false, err
			}
			addr, err := rt.MemIntr(p, n)
			if err != nil {
				return nil, 0, false, err
			}
			vals[in.Dst] = addr

		default:
			return nil, 0, false, fmt.Errorf("interp: unimplemented op %s", in.Op)
		}
	}
	return nil, 0, false, fmt.Errorf("interp: %s/%s fell off the end", f.Name, blk.Name)
}

// updateTag is the __spp_updatetag hook: pure tag arithmetic under
// SPP, identity elsewhere.
func (m *Machine) updateTag(p uint64, off int64, knownPM bool) uint64 {
	if !m.isSPP {
		return p
	}
	if knownPM {
		return m.enc.UpdateTagDirect(p, off)
	}
	return m.enc.UpdateTag(p, off)
}

func (m *Machine) memIntrinsic(in *ir.Instr, dst, src, n uint64) error {
	rt := m.env.RT
	as := m.env.AS
	if in.Wrapped {
		if in.Op == ir.MemCpy {
			return hooks.Memcpy(rt, dst, src, n)
		}
		return hooks.Memset(rt, dst, byte(src), n)
	}
	if in.Op == ir.MemCpy {
		return as.Memmove(dst, src, n)
	}
	return as.Memset(dst, byte(src), n)
}

func (m *Machine) load(as interface {
	LoadU8(uint64) (byte, error)
	LoadU16(uint64) (uint16, error)
	LoadU32(uint64) (uint32, error)
	LoadU64(uint64) (uint64, error)
}, addr uint64, size uint64) (uint64, error) {
	switch size {
	case 1:
		v, err := as.LoadU8(addr)
		return uint64(v), err
	case 2:
		v, err := as.LoadU16(addr)
		return uint64(v), err
	case 4:
		v, err := as.LoadU32(addr)
		return uint64(v), err
	default:
		return as.LoadU64(addr)
	}
}

func (m *Machine) store(as interface {
	StoreU8(uint64, byte) error
	StoreU16(uint64, uint16) error
	StoreU32(uint64, uint32) error
	StoreU64(uint64, uint64) error
}, addr, v uint64, size uint64) error {
	switch size {
	case 1:
		return as.StoreU8(addr, byte(v))
	case 2:
		return as.StoreU16(addr, uint16(v))
	case 4:
		return as.StoreU32(addr, uint32(v))
	default:
		return as.StoreU64(addr, v)
	}
}

// trapWithProvenance files the audit record for a faulting IR access
// and annotates it with the static use-def chain of the address
// operand — the IR-level context only the interpreter has. The
// interpreter's raw loads and stores bypass the hooks.Load*/Store*
// helpers, so the access-site record is created here.
func (m *Machine) trapWithProvenance(f *ir.Func, in *ir.Instr, err error) error {
	err = hooks.Trap(m.env.RT, err)
	if hooks.IsSafetyTrap(err) && len(in.Args) > 0 {
		if chain := analysis.ProvenanceChain(f, in.Args[0], 8); len(chain) > 0 {
			telemetry.Audit.Annotate(telemetry.Audit.Total(), chain)
		}
	}
	return err
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
