package transform

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// elideRedundantFlushes deletes flush instructions the
// persistence-ordering dataflow proves redundant: the same cacheline
// (for every possible allocation alignment) is already flushed on
// every path to the instruction, with no store or fence in between.
//
// Safety: the device model line-rounds flushes and a fence persists
// the current working contents of every pending line. Removing the
// second of two back-to-back flushes of one line leaves the pending
// set's line coverage — and therefore every durable image at every
// fence and every crash point — byte-identical, because the line's
// working contents did not change between the two flushes. The
// crash-equivalence tests check exactly this, image by image.
//
// The pass runs before instrumentation and before any check rewrites,
// so the value graph the resolver walks is still the source program's.
func elideRedundantFlushes(f *ir.Func, stats *Stats) {
	if f.External || len(f.Blocks) == 0 {
		return
	}
	pi := analysis.AnalyzePersistence(f)
	if !pi.Converged || len(pi.RedundantFlushes) == 0 {
		return
	}
	drop := make(map[*ir.Instr]bool, len(pi.RedundantFlushes))
	for _, in := range pi.RedundantFlushes {
		drop[in] = true
	}
	for _, blk := range f.Blocks {
		out := blk.Instrs[:0]
		for _, in := range blk.Instrs {
			if drop[in] {
				stats.FlushesElided++
				continue
			}
			out = append(out, in)
		}
		blk.Instrs = out
	}
}
