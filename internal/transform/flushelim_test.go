package transform

import (
	"bytes"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pmemcheck"
	"repro/internal/variant"
)

// flushElimPrograms exercise the persistence-ordering pass: each
// contains at least one provably-redundant flush (and some flushes
// that must NOT be eliminated).
var flushElimPrograms = []struct {
	name      string
	src       string
	wantElide int
}{
	{
		// Straight-line double flush of one line; the offset-8 flush is
		// NOT removable (offset 0 and 8 can straddle a line boundary
		// under some alignments), and the post-store flush is live.
		name: "straight-line",
		src: `
func @main() {
entry:
  %size = const 256
  %oid = pmalloc %size
  %p = direct %oid
  %v = const 7
  store.8 %p, %v
  flush %p
  flush %p
  %q = gep %p, 8
  flush %q
  fence
  %w = const 9
  store.8 %p, %w
  flush %p
  fence
  ret %w
}
`,
		wantElide: 1,
	},
	{
		// Both branch arms flush the same line, the join flushes it
		// again: the must-intersection proves the join flush redundant.
		name: "branch-join",
		src: `
func @main() {
entry:
  %size = const 256
  %oid = pmalloc %size
  %p = direct %oid
  %v = const 7
  store.8 %p, %v
  %c = icmp.lt %v, %size
  condbr %c, left, right
left:
  flush %p
  br join
right:
  flush %p
  br join
join:
  flush %p
  fence
  ret %v
}
`,
		wantElide: 1,
	},
	{
		// A store between the flushes keeps the second flush alive, and
		// a fence between flushes also blocks elimination.
		name: "no-false-elision",
		src: `
func @main() {
entry:
  %size = const 256
  %oid = pmalloc %size
  %p = direct %oid
  %v = const 7
  store.8 %p, %v
  flush %p
  %w = const 9
  store.8 %p, %w
  flush %p
  fence
  flush %p
  fence
  ret %w
}
`,
		wantElide: 0,
	},
}

// TestFlushElimStats: the pass removes exactly the provably-redundant
// flushes.
func TestFlushElimStats(t *testing.T) {
	for _, tc := range flushElimPrograms {
		mod, err := ir.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		_, stats, err := Apply(mod, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if stats.FlushesElided != tc.wantElide {
			t.Errorf("%s: FlushesElided = %d, want %d", tc.name, stats.FlushesElided, tc.wantElide)
		}
	}
}

// TestFlushElimCrashEquivalence: removing a provably-redundant flush
// must leave every durable image unchanged — after each fence and at
// the end — and must not introduce pmemcheck protocol violations. The
// trace is recorded by the device model while the instrumented program
// runs, so it includes allocator flush traffic too; fence counts and
// the per-fence durable images must match byte for byte.
func TestFlushElimCrashEquivalence(t *testing.T) {
	for _, tc := range flushElimPrograms {
		mod, err := ir.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		type trace struct {
			events  []pmemcheck.Event
			base    []byte
			durable []byte
		}
		runOne := func(opts Options) trace {
			t.Helper()
			instrumented, _, err := Apply(mod, opts)
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			env := newEnv(t, variant.SPP)
			tracker := pmemcheck.NewTracker()
			env.Dev.EnableTracking(tracker)
			base := append([]byte(nil), env.Dev.Data()...)
			if _, err := interp.New(instrumented, env).Run("main"); err != nil {
				t.Fatalf("%s: run failed: %v", tc.name, err)
			}
			durable, err := env.Dev.DurableImage()
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			return trace{events: tracker.Events(), base: base, durable: durable}
		}
		kept := runOne(Options{DisableFlushElim: true})
		elided := runOne(Options{})

		// The pool header holds a random identity stamp, so raw images
		// from two fresh pools are never byte-equal. Normalize each image
		// against its own run's base: the diff contains exactly the
		// trace-driven writes, which must match.
		if !bytes.Equal(xorDiff(kept.durable, kept.base), xorDiff(elided.durable, elided.base)) {
			t.Errorf("%s: final durable image changed by flush elimination", tc.name)
		}
		imgsKept := pmemcheck.FenceImages(kept.base, kept.events)
		imgsElided := pmemcheck.FenceImages(elided.base, elided.events)
		if len(imgsKept) != len(imgsElided) {
			t.Fatalf("%s: fence count changed: %d vs %d", tc.name, len(imgsKept)-1, len(imgsElided)-1)
		}
		for i := range imgsKept {
			if !bytes.Equal(xorDiff(imgsKept[i], kept.base), xorDiff(imgsElided[i], elided.base)) {
				t.Errorf("%s: durable image after fence %d differs", tc.name, i)
			}
		}
		repKept := pmemcheck.Analyze(kept.events)
		repElided := pmemcheck.Analyze(elided.events)
		if len(repElided.Violations) > len(repKept.Violations) {
			t.Errorf("%s: flush elimination introduced pmemcheck violations: %v",
				tc.name, repElided.Violations)
		}
		if repElided.Flushes >= repKept.Flushes && tcElides(tc.wantElide) {
			t.Errorf("%s: expected fewer dynamic flushes (%d vs %d)",
				tc.name, repElided.Flushes, repKept.Flushes)
		}
	}
}

func tcElides(n int) bool { return n > 0 }

// xorDiff returns a XOR b (truncated to the shorter length): the bytes
// that differ from the run's own starting image.
func xorDiff(a, b []byte) []byte {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	out := make([]byte, n)
	for i := 0; i < n; i++ {
		out[i] = a[i] ^ b[i]
	}
	return out
}
