package transform

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// loopHoistChecks is the loop tier of check elision: it runs on loops
// DISCOVERED from the CFG (natural-loop analysis + induction-variable
// recognition in internal/analysis), where hoistLoopChecks only
// handles loops carrying a !loop.bound annotation. Two rewrites:
//
//   - invariant hoist: a dereference of a loop-invariant address —
//     directly or through a constant-offset gep of an invariant base —
//     is covered by one check in the preheader when its block
//     dominates every latch and every exiting block, i.e. the access
//     executes whenever the loop iterates or leaves;
//
//   - widened induction check: a dereference through
//     base + iv*stride, with iv a recognized slot induction variable,
//     is covered by one preheader check of the whole iteration space
//     [0, maxIV*stride + size) when the latch is the only exit (the
//     loop cannot leave before the IV runs its course) and the access
//     dominates the latch (it executes every iteration).
//
// Trap equivalence: a hoisted check traps exactly when some execution
// of the covered access would trap — except on executions where the
// loop body diverges before reaching the access; there the hoisted
// check may trap where the original program would spin forever. The
// differential fault-verdict tests exercise the terminating cases.
//
// The pass runs after the annotation-based hoisting, so annotated
// loops (whose headers the legacy pass owns) are skipped, and before
// instrumentFunc, so elided accesses simply never get hooks.
func loopHoistChecks(f *ir.Func, classes map[string]Class, opts Options, stats *Stats) {
	if f.External || len(f.Blocks) == 0 {
		return
	}
	cfg := analysis.BuildCFG(f)
	dom := analysis.Dominators(cfg)
	li := analysis.FindLoops(cfg, dom)
	if len(li.Loops) == 0 {
		return
	}

	defBlk := make(map[string]int) // value name -> defining block index
	defCount := make(map[string]int)
	defs := make(map[string]*ir.Instr)
	uses := useCounts(f)
	for bi, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dst != "" {
				defBlk[in.Dst] = bi
				defCount[in.Dst]++
				defs[in.Dst] = in
			}
		}
	}
	consts := constValues(f)
	classOf := func(v string) Class {
		if opts.DisablePointerTracking {
			return Unknown
		}
		return classes[v]
	}

	for _, l := range li.Loops {
		if l.Preheader < 0 {
			continue
		}
		if f.Blocks[l.Header].LoopBound > 0 {
			continue // annotated: the legacy hoisting pass owns this loop
		}
		pre := f.Blocks[l.Preheader]

		// invariant: defined outside the loop, in a block whose def
		// dominates the preheader (so the hoisted check may use it).
		invariant := func(v string) bool {
			bi, ok := defBlk[v]
			if !ok {
				return true // parameter
			}
			return !l.Blocks[bi] && dom.Dominates(bi, l.Preheader)
		}
		// anchored: the access block runs whenever the loop iterates or
		// leaves — the trap-equivalence condition for hoisting.
		anchored := func(bi int) bool {
			for _, latch := range l.Latches {
				if !dom.Dominates(bi, latch) {
					return false
				}
			}
			for _, ex := range l.Exiting {
				if !dom.Dominates(bi, ex) {
					return false
				}
			}
			return true
		}
		emit := func(base string, size uint64, suffix string) string {
			masked := freshValueName(defCount, base+suffix)
			hook := &ir.Instr{
				Op: ir.SppCheckBound, Dst: masked, Args: []string{base},
				Size:    size,
				KnownPM: classOf(base) == Persistent,
			}
			pre.Instrs = insertBefore(pre.Instrs, pre.Instrs[len(pre.Instrs)-1], hook)
			stats.CheckBounds++
			if hook.KnownPM {
				stats.DirectHooks++
			}
			return masked
		}

		// --- Invariant hoisting -------------------------------------
		type access struct {
			gep   *ir.Instr // nil when the base is dereferenced directly
			deref *ir.Instr
			end   int64
		}
		groups := make(map[string][]access)
		var order []string
		add := func(base string, a access) {
			if _, seen := groups[base]; !seen {
				order = append(order, base)
			}
			groups[base] = append(groups[base], a)
		}
		for bi, blk := range f.Blocks {
			if !l.Blocks[bi] || !anchored(bi) {
				continue
			}
			for _, in := range blk.Instrs {
				if (in.Op != ir.Load && in.Op != ir.Store) || in.SkipCheck {
					continue
				}
				addr := in.Args[0]
				if invariant(addr) && classOf(addr) != Volatile {
					add(addr, access{deref: in, end: int64(in.Size)})
					continue
				}
				g := defs[addr]
				if g == nil || g.Op != ir.Gep || g.SkipTagUpdate ||
					len(g.Args) != 1 || defCount[addr] != 1 || uses[addr] != 1 {
					continue
				}
				gbi, ok := defBlk[addr]
				if !ok || !l.Blocks[gbi] {
					continue // the gep must live in the loop for the rebase to be local
				}
				base := g.Args[0]
				if invariant(base) && classOf(base) != Volatile {
					add(base, access{gep: g, deref: in, end: g.Imm + int64(in.Size)})
				}
			}
		}
		for _, base := range order {
			accs := groups[base]
			var maxEnd int64
			ok := true
			for _, a := range accs {
				if a.end <= 0 {
					ok = false // negative offsets: keep per-access checks
					break
				}
				if a.end > maxEnd {
					maxEnd = a.end
				}
			}
			if !ok || maxEnd <= 0 {
				continue
			}
			masked := emit(base, uint64(maxEnd), ".lh")
			for _, a := range accs {
				if a.gep != nil {
					a.gep.Args[0] = masked
					a.gep.SkipTagUpdate = true
				} else {
					a.deref.Args[0] = masked
				}
				a.deref.SkipCheck = true
				stats.LoopInvariantHoisted++
			}
		}

		// --- Widened induction-variable checks ----------------------
		ivs := li.IndVars(l)
		if len(ivs) == 0 {
			continue
		}
		if len(l.Exiting) != 1 || len(l.Latches) != 1 || l.Exiting[0] != l.Latches[0] {
			continue // an early exit could leave before the IV runs out
		}
		latch := l.Latches[0]
		ivHi := make(map[string]int64) // mul dst -> max offset value
		for _, iv := range ivs {
			if iv.Init < 0 {
				continue
			}
			for ld, hi := range iv.LoadHi {
				if ld.Dst == "" || defCount[ld.Dst] != 1 {
					continue
				}
				// Find muls of the IV load by a positive constant.
				for _, blk := range f.Blocks {
					for _, in := range blk.Instrs {
						if in.Op != ir.Mul || in.Dst == "" || defCount[in.Dst] != 1 {
							continue
						}
						var stride int64
						switch {
						case in.Args[0] == ld.Dst:
							stride = consts[in.Args[1]]
						case in.Args[1] == ld.Dst:
							stride = consts[in.Args[0]]
						default:
							continue
						}
						if stride <= 0 {
							continue
						}
						ivHi[in.Dst] = hi * stride
					}
				}
			}
		}
		if len(ivHi) == 0 {
			continue
		}
		for bi, blk := range f.Blocks {
			if !l.Blocks[bi] {
				continue
			}
			for _, g := range blk.Instrs {
				if g.Op != ir.Gep || len(g.Args) != 2 || g.SkipTagUpdate || defCount[g.Dst] != 1 {
					continue
				}
				maxOff, ok := ivHi[g.Args[1]]
				base := g.Args[0]
				if !ok || !invariant(base) || classOf(base) == Volatile {
					continue
				}
				var derefs []*ir.Instr
				covered := true
				for _, u := range f.Blocks {
					for _, in := range u.Instrs {
						usesG := false
						for _, a := range in.Args {
							if a == g.Dst {
								usesG = true
							}
						}
						if !usesG {
							continue
						}
						if (in.Op == ir.Load || in.Op == ir.Store) && in.Args[0] == g.Dst && !in.SkipCheck {
							derefs = append(derefs, in)
						} else {
							covered = false // the tagged value escapes: keep the tag
						}
					}
				}
				if !covered || len(derefs) == 0 {
					continue
				}
				allAnchored := true
				var maxSize uint64
				for _, d := range derefs {
					_, dbi, _ := locateIn(f, d)
					if !dom.Dominates(dbi, latch) || !l.Blocks[dbi] {
						allAnchored = false
						break
					}
					if d.Size > maxSize {
						maxSize = d.Size
					}
				}
				if !allAnchored {
					continue
				}
				masked := emit(base, uint64(maxOff)+maxSize, ".w")
				g.Args[0] = masked
				g.SkipTagUpdate = true
				for _, d := range derefs {
					d.SkipCheck = true
					stats.WidenedIVChecks++
				}
			}
		}
	}
}

// locateIn returns the block name, block index and instruction index of
// target in f.
func locateIn(f *ir.Func, target *ir.Instr) (string, int, int) {
	for bi, blk := range f.Blocks {
		for ii, in := range blk.Instrs {
			if in == target {
				return blk.Name, bi, ii
			}
		}
	}
	return "", -1, -1
}
