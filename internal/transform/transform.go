// Package transform implements SPP's compiler passes over the mini-IR
// (§IV-C, §V-A of the paper):
//
//   - the transformation pass injects __spp_updatetag after pointer
//     arithmetic, __spp_checkbound before dereferences and
//     __spp_cleantag before pointer-to-integer conversions;
//   - the LTO pass masks pointer arguments of external calls, marks
//     memory/string intrinsics for interposition, and refines pointer
//     classes across function boundaries from call-site information;
//   - pointer tracking classifies every value as volatile, persistent
//     or unknown and prunes instrumentation for volatile pointers,
//     while persistent pointers use the _direct hook variants;
//   - bound-check preemption merges consecutive checks on the same
//     pointer within a basic block, and loop hoisting moves the check
//     of a constant-stride access pattern into the preheader (§IV-E,
//     §V-C).
package transform

import (
	"fmt"

	"repro/internal/ir"
)

// Class is a pointer-tracking classification.
type Class int

// Classes (§IV-E "Pointer tracking").
const (
	Unknown    Class = iota // instrument, test the PM bit at run time
	Volatile                // skip instrumentation entirely
	Persistent              // instrument with _direct hooks
)

func (c Class) String() string {
	switch c {
	case Volatile:
		return "volatile"
	case Persistent:
		return "persistent"
	default:
		return "unknown"
	}
}

// Options selects which passes run. The zero value runs everything,
// matching the paper's default build.
type Options struct {
	// DisablePointerTracking instruments every pointer (no pruning).
	DisablePointerTracking bool
	// DisablePreemption turns off in-block bound-check merging.
	DisablePreemption bool
	// DisableHoisting turns off loop bound-check hoisting.
	DisableHoisting bool
	// DisableLTO skips the link-time pass (no cross-function class
	// refinement; external calls are still masked, since unmasked tags
	// would crash the callee).
	DisableLTO bool
	// RestoreIntPtr enables the §IV-G future-work mitigation: an
	// integer-to-pointer conversion whose integer provably derives
	// from a pointer-to-integer conversion (via the use-def chain,
	// optionally through one addition or constant subtraction) is
	// rewritten to re-derive the original tagged pointer, restoring
	// SPP protection across the laundering.
	RestoreIntPtr bool
}

// Stats reports what the instrumentation did, for tests and the
// ablation benchmarks.
type Stats struct {
	UpdateTags     int // __spp_updatetag calls injected
	CheckBounds    int // __spp_checkbound calls injected
	CleanTags      int // __spp_cleantag before ptr-to-int
	CleanExternals int // __spp_cleantag_external before external calls
	WrappedIntrins int // memcpy/memset/strcpy interpositions
	PrunedVolatile int // hooks omitted thanks to volatile classification
	DirectHooks    int // hooks emitted as the _direct variant
	Preempted      int // checks merged by bound-check preemption
	Hoisted        int // checks hoisted out of annotated loops
	RestoredPtrs   int // int-to-ptr conversions re-derived from their pointer origin
}

// Apply runs the passes over a copy of m and returns the instrumented
// module and statistics.
func Apply(m *ir.Module, opts Options) (*ir.Module, Stats, error) {
	out := m.Clone()
	var stats Stats

	if opts.RestoreIntPtr {
		for _, f := range out.Funcs {
			if !f.External {
				stats.RestoredPtrs += restoreIntPtr(f)
			}
		}
	}
	classes := classify(out, !opts.DisableLTO)

	for _, f := range out.Funcs {
		if f.External {
			continue
		}
		fc := classes[f.Name]
		if !opts.DisablePreemption {
			preemptChecks(f, fc, opts, &stats)
		}
		if !opts.DisableHoisting {
			hoistLoopChecks(f, fc, opts, &stats)
		}
		instrumentFunc(f, fc, opts, &stats)
	}
	if err := out.Verify(); err != nil {
		return nil, stats, fmt.Errorf("transform: instrumented module invalid: %w", err)
	}
	return out, stats, nil
}

// classify runs pointer tracking for every function; with LTO it also
// propagates argument classes across call edges until a fixpoint.
func classify(m *ir.Module, lto bool) map[string]map[string]Class {
	classes := make(map[string]map[string]Class, len(m.Funcs))
	for _, f := range m.Funcs {
		if !f.External {
			classes[f.Name] = classifyFunc(f, nil)
		}
	}
	if !lto {
		return classes
	}
	// LTO: derive parameter classes from every call site (§IV-E: a
	// parameter gets a class only if all callers agree).
	for pass := 0; pass < 4; pass++ {
		changed := false
		paramClasses := make(map[string][]Class)
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Op != ir.Call {
						continue
					}
					callee := m.Func(in.Sym)
					if callee == nil || callee.External {
						continue
					}
					cur, ok := paramClasses[in.Sym]
					if !ok {
						cur = make([]Class, len(callee.Params))
						for i := range cur {
							cur[i] = -1 // unseen
						}
						paramClasses[in.Sym] = cur
					}
					for i := range callee.Params {
						var argClass Class = Unknown
						if i < len(in.Args) {
							argClass = classes[f.Name][in.Args[i]]
						}
						if cur[i] == -1 {
							cur[i] = argClass
						} else if cur[i] != argClass {
							cur[i] = Unknown
						}
					}
				}
			}
		}
		for name, pcs := range paramClasses {
			f := m.Func(name)
			seed := make(map[string]Class, len(pcs))
			for i, pc := range pcs {
				if pc == Volatile || pc == Persistent {
					seed[f.Params[i]] = pc
				}
			}
			next := classifyFunc(f, seed)
			if !sameClasses(classes[name], next) {
				classes[name] = next
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return classes
}

func sameClasses(a, b map[string]Class) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// classifyFunc assigns classes to every value of f, seeded with
// parameter classes from the LTO pass.
func classifyFunc(f *ir.Func, seed map[string]Class) map[string]Class {
	c := make(map[string]Class)
	for _, p := range f.Params {
		if cl, ok := seed[p]; ok {
			c[p] = cl
		} else {
			c[p] = Unknown
		}
	}
	// Iterate to a fixpoint so gep chains across blocks settle.
	for pass := 0; pass < 8; pass++ {
		changed := false
		set := func(name string, cl Class) {
			if name == "" {
				return
			}
			if old, ok := c[name]; !ok || old != cl {
				c[name] = cl
				changed = true
			}
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.Const, ir.Add, ir.Sub, ir.Mul, ir.ICmpLt, ir.ICmpEq, ir.PtrToInt:
					set(in.Dst, Volatile) // integers carry no tag
				case ir.Malloc:
					set(in.Dst, Volatile)
				case ir.CallExt:
					// Pointers returned by external functions are
					// untagged: treated as volatile (§V-C).
					set(in.Dst, Volatile)
				case ir.IntToPtr:
					// An integer-born pointer has no tag; SPP cannot
					// protect it (§IV-G) and skips its hooks.
					set(in.Dst, Volatile)
				case ir.PmemAlloc:
					set(in.Dst, Persistent) // oid handle
				case ir.PmemDirect:
					set(in.Dst, Persistent)
				case ir.Gep:
					set(in.Dst, c[in.Args[0]])
				case ir.Load, ir.Call:
					if _, ok := c[in.Dst]; !ok && in.Dst != "" {
						set(in.Dst, Unknown)
					}
				case ir.SppCheckBound, ir.SppUpdateTag, ir.SppCleanTag, ir.SppCleanExternal, ir.SppMemIntrCheck:
					set(in.Dst, c[in.Args[0]])
				}
			}
		}
		if !changed {
			break
		}
	}
	return c
}

// instrumentFunc performs the transformation pass proper.
func instrumentFunc(f *ir.Func, classes map[string]Class, opts Options, stats *Stats) {
	fresh := 0
	gen := func(base string, kind string) string {
		fresh++
		return fmt.Sprintf("%s.%s%d", base, kind, fresh)
	}
	classOf := func(v string) Class {
		if opts.DisablePointerTracking {
			return Unknown
		}
		return classes[v]
	}

	for _, blk := range f.Blocks {
		out := make([]*ir.Instr, 0, len(blk.Instrs)*2)
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.Gep:
				if in.NoTagUpdate() {
					// Rebased onto a masked pointer by preemption or
					// hoisting; accounted there.
					out = append(out, in)
					continue
				}
				cls := classOf(in.Args[0])
				if cls == Volatile {
					stats.PrunedVolatile++
					out = append(out, in)
					continue
				}
				raw := gen(in.Dst, "g")
				hook := &ir.Instr{
					Op: ir.SppUpdateTag, Dst: in.Dst, Args: []string{raw},
					Imm: in.Imm, KnownPM: cls == Persistent,
				}
				if len(in.Args) == 2 { // variable offset
					hook.Args = append(hook.Args, in.Args[1])
				}
				in.Dst = raw
				out = append(out, in, hook)
				stats.UpdateTags++
				if cls == Persistent {
					stats.DirectHooks++
				}

			case ir.Load, ir.Store:
				if in.PreChecked() {
					out = append(out, in)
					continue
				}
				addr := in.Args[0]
				cls := classOf(addr)
				if cls == Volatile {
					stats.PrunedVolatile++
					out = append(out, in)
					continue
				}
				checked := gen(addr, "c")
				out = append(out, &ir.Instr{
					Op: ir.SppCheckBound, Dst: checked, Args: []string{addr},
					Size: in.Size, KnownPM: cls == Persistent,
				})
				in.Args[0] = checked
				out = append(out, in)
				stats.CheckBounds++
				if cls == Persistent {
					stats.DirectHooks++
				}

			case ir.PtrToInt:
				cls := classOf(in.Args[0])
				if cls == Volatile {
					stats.PrunedVolatile++
					out = append(out, in)
					continue
				}
				cleaned := gen(in.Args[0], "i")
				out = append(out, &ir.Instr{
					Op: ir.SppCleanTag, Dst: cleaned, Args: []string{in.Args[0]},
					KnownPM: cls == Persistent,
				})
				in.Args[0] = cleaned
				out = append(out, in)
				stats.CleanTags++

			case ir.CallExt:
				// The LTO pass masks every non-volatile pointer
				// argument before the uninstrumented callee sees it.
				for i, arg := range in.Args {
					cls := classOf(arg)
					if cls == Volatile {
						stats.PrunedVolatile++
						continue
					}
					masked := gen(arg, "x")
					out = append(out, &ir.Instr{
						Op: ir.SppCleanExternal, Dst: masked, Args: []string{arg},
						KnownPM: cls == Persistent,
					})
					in.Args[i] = masked
					stats.CleanExternals++
				}
				out = append(out, in)

			case ir.MemCpy, ir.MemSet, ir.StrCpy:
				// Interposed with the checking wrappers at link time.
				in.Wrapped = true
				stats.WrappedIntrins++
				out = append(out, in)

			default:
				out = append(out, in)
			}
		}
		blk.Instrs = out
	}
}
