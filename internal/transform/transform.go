// Package transform implements SPP's compiler passes over the mini-IR
// (§IV-C, §V-A of the paper):
//
//   - the transformation pass injects __spp_updatetag after pointer
//     arithmetic, __spp_checkbound before dereferences and
//     __spp_cleantag before pointer-to-integer conversions;
//   - the LTO pass masks pointer arguments of external calls, marks
//     memory/string intrinsics for interposition, and refines pointer
//     classes across function boundaries from call-site information;
//   - pointer tracking classifies every value as volatile, persistent
//     or unknown and prunes instrumentation for volatile pointers,
//     while persistent pointers use the _direct hook variants;
//   - bound-check preemption merges consecutive checks on the same
//     pointer within a basic block, and loop hoisting moves the check
//     of a constant-stride access pattern into the preheader (§IV-E,
//     §V-C).
package transform

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/telemetry"
)

// Class is a pointer-tracking classification; the analysis package owns
// the type and the classification itself (interprocedural pointer
// provenance), the transform consumes it.
type Class = analysis.Class

// Classes (§IV-E "Pointer tracking").
const (
	Unknown    = analysis.Unknown    // instrument, test the PM bit at run time
	Volatile   = analysis.Volatile   // skip instrumentation entirely
	Persistent = analysis.Persistent // instrument with _direct hooks
)

// Options selects which passes run. The zero value runs everything,
// matching the paper's default build.
type Options struct {
	// DisablePointerTracking instruments every pointer (no pruning).
	DisablePointerTracking bool
	// DisablePreemption turns off in-block bound-check merging.
	DisablePreemption bool
	// DisableHoisting turns off loop bound-check hoisting.
	DisableHoisting bool
	// DisableLTO skips the link-time pass (no cross-function class
	// refinement; external calls are still masked, since unmasked tags
	// would crash the callee).
	DisableLTO bool
	// RestoreIntPtr enables the §IV-G future-work mitigation: an
	// integer-to-pointer conversion whose integer provably derives
	// from a pointer-to-integer conversion (via the use-def chain,
	// optionally through one addition or constant subtraction) is
	// rewritten to re-derive the original tagged pointer, restoring
	// SPP protection across the laundering.
	RestoreIntPtr bool
	// DisableValueRange turns off value-range hook elision: the
	// interval analysis that proves accesses in-bounds against
	// statically known allocation sizes and removes their
	// __spp_checkbound/__spp_updatetag hooks entirely.
	DisableValueRange bool
	// DisableLoopOpt turns off the loop tier of the static analysis:
	// natural-loop discovery with induction-variable recognition, which
	// (a) feeds loop-carried counter bounds into the value-range proof
	// and (b) hoists loop-invariant checks and widens monotone
	// induction-variable accesses into one preheader check.
	DisableLoopOpt bool
	// DisableFlushElim turns off static flush elimination: deleting
	// flushes the persistence-ordering dataflow proves redundant (same
	// cacheline already flushed, no intervening store or fence).
	DisableFlushElim bool
}

// Stats reports what the instrumentation did, for tests and the
// ablation benchmarks.
type Stats struct {
	UpdateTags     int // __spp_updatetag calls injected
	CheckBounds    int // __spp_checkbound calls injected
	CleanTags      int // __spp_cleantag before ptr-to-int
	CleanExternals int // __spp_cleantag_external before external calls
	WrappedIntrins int // memcpy/memset/strcpy interpositions
	PrunedVolatile int // hooks omitted thanks to volatile classification
	DirectHooks    int // hooks emitted as the _direct variant
	Preempted      int // checks merged by bound-check preemption
	Hoisted        int // checks hoisted out of annotated loops
	RestoredPtrs   int // int-to-ptr conversions re-derived from their pointer origin

	// Per-analysis results (the dataflow clients in internal/analysis).
	Reclassified      int // values refined from unknown by interprocedural provenance
	RangeElidedChecks int // bound checks elided by the value-range in-bounds proof
	RangeElidedTags   int // tag updates elided by rebasing proven chains
	RangeAnchors      int // spp.cleantag anchors inserted for rebased chains
	ClassUnknown      int // values classified unknown
	ClassVolatile     int // values classified volatile
	ClassPersistent   int // values classified persistent

	// Loop tier (discovered loops; the annotated-loop hoists are in
	// Hoisted) and persistence-ordering results.
	LoopInvariantHoisted int // loop-invariant checks moved to the preheader
	WidenedIVChecks      int // induction-variable accesses covered by one widened check
	FlushesElided        int // provably-redundant flushes deleted
}

// Apply runs the passes over a copy of m and returns the instrumented
// module and statistics.
func Apply(m *ir.Module, opts Options) (*ir.Module, Stats, error) {
	out := m.Clone()
	var stats Stats

	if opts.RestoreIntPtr {
		for _, f := range out.Funcs {
			if !f.External {
				stats.RestoredPtrs += restoreIntPtr(f)
			}
		}
	}
	// Flush elimination runs first, before any check rewrite disturbs
	// the value graph the persistence resolver walks.
	if !opts.DisableFlushElim {
		for _, f := range out.Funcs {
			if !f.External {
				elideRedundantFlushes(f, &stats)
			}
		}
	}
	prov := analysis.PointerProvenance(out, !opts.DisableLTO)
	classes := prov.Classes
	stats.Reclassified = prov.Reclassified
	for _, fc := range classes {
		for _, cl := range fc {
			switch cl {
			case Volatile:
				stats.ClassVolatile++
			case Persistent:
				stats.ClassPersistent++
			default:
				stats.ClassUnknown++
			}
		}
	}

	for _, f := range out.Funcs {
		if f.External {
			continue
		}
		fc := classes[f.Name]
		if !opts.DisableValueRange {
			elideProvenChecks(f, fc, opts, &stats)
		}
		if !opts.DisablePreemption {
			preemptChecks(f, fc, opts, &stats)
		}
		if !opts.DisableHoisting {
			hoistLoopChecks(f, fc, opts, &stats)
		}
		if !opts.DisableLoopOpt {
			loopHoistChecks(f, fc, opts, &stats)
		}
		instrumentFunc(f, fc, opts, &stats)
	}
	if err := out.Verify(); err != nil {
		return nil, stats, fmt.Errorf("transform: instrumented module invalid: %w", err)
	}
	// Mirror the pass statistics into the metrics registry so
	// compile-time hook elision shows up next to the runtime hook rates
	// it explains.
	if telemetry.On() {
		passCheckBounds.Add(uint64(stats.CheckBounds))
		passUpdateTags.Add(uint64(stats.UpdateTags))
		passElidedChecks.Add(uint64(stats.RangeElidedChecks + stats.Preempted + stats.Hoisted +
			stats.LoopInvariantHoisted + stats.WidenedIVChecks))
		passElidedTags.Add(uint64(stats.RangeElidedTags))
		passPruned.Add(uint64(stats.PrunedVolatile))
		passDirect.Add(uint64(stats.DirectHooks))
		passHoisted.Add(uint64(stats.Hoisted + stats.LoopInvariantHoisted + stats.WidenedIVChecks))
		passFlushElided.Add(uint64(stats.FlushesElided))
	}
	return out, stats, nil
}

// Pass telemetry: how many hooks each instrumentation run injected and
// how many the optimizations removed.
var (
	passCheckBounds  = telemetry.Default.Counter("spp_pass_checkbounds_total", "__spp_checkbound hooks injected")
	passUpdateTags   = telemetry.Default.Counter("spp_pass_updatetags_total", "__spp_updatetag hooks injected")
	passElidedChecks = telemetry.Default.Counter("spp_pass_elided_checks_total", "bound checks removed (range proof, preemption, hoisting)")
	passElidedTags   = telemetry.Default.Counter("spp_pass_elided_tags_total", "tag updates removed by chain rebasing")
	passPruned       = telemetry.Default.Counter("spp_pass_pruned_volatile_total", "hooks omitted for proven-volatile pointers")
	passDirect       = telemetry.Default.Counter("spp_pass_direct_hooks_total", "hooks emitted as the _direct variant")
	passHoisted      = telemetry.Default.Counter("spp_pass_hoisted_checks_total", "checks hoisted out of loops (annotated, invariant and widened-IV)")
	passFlushElided  = telemetry.Default.Counter("spp_pass_flushes_elided_total", "provably-redundant flushes deleted by the persistence-ordering pass")
)

// instrumentFunc performs the transformation pass proper.
func instrumentFunc(f *ir.Func, classes map[string]Class, opts Options, stats *Stats) {
	fresh := 0
	gen := func(base string, kind string) string {
		fresh++
		return fmt.Sprintf("%s.%s%d", base, kind, fresh)
	}
	classOf := func(v string) Class {
		if opts.DisablePointerTracking {
			return Unknown
		}
		return classes[v]
	}

	for _, blk := range f.Blocks {
		out := make([]*ir.Instr, 0, len(blk.Instrs)*2)
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.Gep:
				if in.NoTagUpdate() {
					// Rebased onto a masked pointer by preemption or
					// hoisting; accounted there.
					out = append(out, in)
					continue
				}
				cls := classOf(in.Args[0])
				if cls == Volatile {
					stats.PrunedVolatile++
					out = append(out, in)
					continue
				}
				raw := gen(in.Dst, "g")
				hook := &ir.Instr{
					Op: ir.SppUpdateTag, Dst: in.Dst, Args: []string{raw},
					Imm: in.Imm, KnownPM: cls == Persistent,
				}
				if len(in.Args) == 2 { // variable offset
					hook.Args = append(hook.Args, in.Args[1])
				}
				in.Dst = raw
				out = append(out, in, hook)
				stats.UpdateTags++
				if cls == Persistent {
					stats.DirectHooks++
				}

			case ir.Load, ir.Store:
				if in.PreChecked() {
					out = append(out, in)
					continue
				}
				addr := in.Args[0]
				cls := classOf(addr)
				if cls == Volatile {
					stats.PrunedVolatile++
					out = append(out, in)
					continue
				}
				checked := gen(addr, "c")
				out = append(out, &ir.Instr{
					Op: ir.SppCheckBound, Dst: checked, Args: []string{addr},
					Size: in.Size, KnownPM: cls == Persistent,
				})
				in.Args[0] = checked
				out = append(out, in)
				stats.CheckBounds++
				if cls == Persistent {
					stats.DirectHooks++
				}

			case ir.PtrToInt:
				cls := classOf(in.Args[0])
				if cls == Volatile {
					stats.PrunedVolatile++
					out = append(out, in)
					continue
				}
				cleaned := gen(in.Args[0], "i")
				out = append(out, &ir.Instr{
					Op: ir.SppCleanTag, Dst: cleaned, Args: []string{in.Args[0]},
					KnownPM: cls == Persistent,
				})
				in.Args[0] = cleaned
				out = append(out, in)
				stats.CleanTags++

			case ir.CallExt:
				// The LTO pass masks every non-volatile pointer
				// argument before the uninstrumented callee sees it.
				for i, arg := range in.Args {
					cls := classOf(arg)
					if cls == Volatile {
						stats.PrunedVolatile++
						continue
					}
					masked := gen(arg, "x")
					out = append(out, &ir.Instr{
						Op: ir.SppCleanExternal, Dst: masked, Args: []string{arg},
						KnownPM: cls == Persistent,
					})
					in.Args[i] = masked
					stats.CleanExternals++
				}
				out = append(out, in)

			case ir.MemCpy, ir.MemSet, ir.StrCpy:
				// Interposed with the checking wrappers at link time.
				in.Wrapped = true
				stats.WrappedIntrins++
				out = append(out, in)

			default:
				out = append(out, in)
			}
		}
		blk.Instrs = out
	}
}
