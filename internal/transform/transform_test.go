package transform

import (
	"strings"
	"testing"

	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/variant"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func apply(t *testing.T, m *ir.Module, opts Options) (*ir.Module, Stats) {
	t.Helper()
	out, stats, err := Apply(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	return out, stats
}

func newEnv(t *testing.T, kind variant.Kind) *variant.Env {
	t.Helper()
	env, err := variant.New(kind, variant.Options{PoolSize: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

const basicProgram = `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 7
  store.8 %p, %v
  %q = gep %p, 8
  %x = load.8 %q
  ret %x
}
`

func TestInstrumentationSites(t *testing.T) {
	m := parse(t, basicProgram)
	// Value-range elision would prove both accesses and remove every
	// hook; disable it to observe the raw instrumentation sites.
	out, stats := apply(t, m, Options{DisablePreemption: true, DisableHoisting: true, DisableValueRange: true})
	if stats.UpdateTags != 1 {
		t.Errorf("UpdateTags = %d, want 1 (one gep)", stats.UpdateTags)
	}
	if stats.CheckBounds != 2 {
		t.Errorf("CheckBounds = %d, want 2 (store + load)", stats.CheckBounds)
	}
	// Persistent pointers get _direct hooks.
	if stats.DirectHooks != 3 {
		t.Errorf("DirectHooks = %d, want 3", stats.DirectHooks)
	}
	text := out.String()
	for _, want := range []string{"spp.updatetag", "spp.checkbound.8"} {
		if !strings.Contains(text, want) {
			t.Errorf("instrumented module lacks %s:\n%s", want, text)
		}
	}
}

func TestVolatilePruning(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 64
  %m = malloc %s
  %v = const 1
  store.8 %m, %v
  %q = gep %m, 8
  %x = load.8 %q
  ret %x
}
`)
	_, stats := apply(t, m, Options{})
	if stats.CheckBounds != 0 || stats.UpdateTags != 0 {
		t.Errorf("volatile code instrumented: %+v", stats)
	}
	if stats.PrunedVolatile < 3 {
		t.Errorf("PrunedVolatile = %d, want >= 3", stats.PrunedVolatile)
	}
	// With tracking disabled everything is instrumented (value-range
	// elision would still prove these accesses, so it is off too).
	_, stats = apply(t, m, Options{DisablePointerTracking: true, DisablePreemption: true, DisableHoisting: true, DisableValueRange: true})
	if stats.CheckBounds != 2 || stats.UpdateTags != 1 {
		t.Errorf("tracking-off stats: %+v", stats)
	}
}

func TestEndToEndOverflowDetection(t *testing.T) {
	overflow := `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 7
  %q = gep %p, 64
  store.8 %q, %v
  ret %v
}
`
	m := parse(t, overflow)
	instrumented, _ := apply(t, m, Options{})

	// Under SPP the instrumented out-of-bounds store faults.
	env := newEnv(t, variant.SPP)
	// A neighbour so the raw store has somewhere to land.
	if _, err := env.RT.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.New(instrumented, env).Run("main"); !hooks.IsSafetyTrap(err) {
		t.Errorf("instrumented overflow not trapped: %v", err)
	}

	// The same binary on the native toolchain sails through.
	envN := newEnv(t, variant.PMDK)
	if _, err := envN.RT.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.New(instrumented, envN).Run("main"); err != nil {
		t.Errorf("native run failed: %v", err)
	}

	// In-bounds instrumented code runs cleanly under SPP.
	ok := parse(t, basicProgram)
	okInst, _ := apply(t, ok, Options{})
	env2 := newEnv(t, variant.SPP)
	if _, err := interp.New(okInst, env2).Run("main"); err != nil {
		t.Errorf("in-bounds instrumented run failed: %v", err)
	}
}

func TestUninstrumentedTaggedPointerFaults(t *testing.T) {
	// Running an UNinstrumented module against the SPP toolchain
	// faults on the very first access: Direct returns tagged pointers
	// that raw dereferences cannot use. This is why SPP requires
	// recompilation, as the paper explains.
	m := parse(t, basicProgram)
	env := newEnv(t, variant.SPP)
	if _, err := interp.New(m, env).Run("main"); !hooks.IsSafetyTrap(err) {
		t.Errorf("raw tagged dereference did not fault: %v", err)
	}
}

func TestExternalCallMasking(t *testing.T) {
	m := parse(t, `
extern @ext_store8
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 42
  %r = callext @ext_store8, %p, %v
  %x = load.8 %p
  ret %x
}
`)
	instrumented, stats := apply(t, m, Options{})
	if stats.CleanExternals != 1 {
		t.Errorf("CleanExternals = %d, want 1 (%%v is volatile)", stats.CleanExternals)
	}
	env := newEnv(t, variant.SPP)
	got, err := interp.New(instrumented, env).Run("main")
	if err != nil {
		t.Fatalf("external call through masked pointer failed: %v", err)
	}
	if got != 42 {
		t.Errorf("external store not visible: %d", got)
	}
	// Without the LTO masking the external callee faults on the tag.
	raw := parse(t, `
extern @ext_store8
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 42
  %r = callext @ext_store8, %p, %v
  ret %v
}
`)
	env2 := newEnv(t, variant.SPP)
	if _, err := interp.New(raw, env2).Run("main"); !hooks.IsSafetyTrap(err) {
		t.Errorf("unmasked external call did not fault: %v", err)
	}
}

func TestPtrToIntCleaning(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %i = ptrtoint %p
  %j = ptrtoint %p
  %eq = icmp.eq %i, %j
  ret %eq
}
`)
	instrumented, stats := apply(t, m, Options{})
	if stats.CleanTags != 2 {
		t.Errorf("CleanTags = %d, want 2", stats.CleanTags)
	}
	env := newEnv(t, variant.SPP)
	got, err := interp.New(instrumented, env).Run("main")
	if err != nil || got != 1 {
		t.Errorf("pointer comparison after cleaning = %d, %v", got, err)
	}
}

func TestLaunderedPointerEscapesInstrumentation(t *testing.T) {
	// §IV-G: an integer-born pointer carries no tag; the pass
	// classifies it volatile and SPP is blind to its overflow.
	m := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %oid2 = pmalloc %s
  %p2 = direct %oid2
  %i = ptrtoint %p
  %lp = inttoptr %i
  %lq = gep %lp, 64
  %v = const 7
  store.8 %lq, %v
  ret %v
}
`)
	instrumented, _ := apply(t, m, Options{})
	env := newEnv(t, variant.SPP)
	if _, err := interp.New(instrumented, env).Run("main"); err != nil {
		t.Errorf("laundered overflow was trapped (SPP should be blind): %v", err)
	}
}

func TestMemIntrinsicWrapping(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %n = const 65
  %oid2 = pmalloc %n
  %src = direct %oid2
  memcpy %p, %src, %n
  %r = const 0
  ret %r
}
`)
	instrumented, stats := apply(t, m, Options{})
	if stats.WrappedIntrins != 1 {
		t.Errorf("WrappedIntrins = %d", stats.WrappedIntrins)
	}
	env := newEnv(t, variant.SPP)
	if _, err := interp.New(instrumented, env).Run("main"); !hooks.IsSafetyTrap(err) {
		t.Errorf("wrapped memcpy overflow not trapped: %v", err)
	}
	// Unwrapped (uninstrumented) on native: plain copy, no trap.
	envN := newEnv(t, variant.PMDK)
	if _, err := interp.New(m, envN).Run("main"); err != nil {
		t.Errorf("native memcpy failed: %v", err)
	}
}

func TestBoundCheckPreemption(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 1
  %a = gep %p, 0
  store.8 %a, %v
  %b = gep %p, 8
  store.8 %b, %v
  %c = gep %p, 16
  %x = load.8 %c
  ret %x
}
`)
	// Value-range elision would prove all three accesses and leave
	// nothing to merge; disable it to exercise preemption itself.
	instrumented, stats := apply(t, m, Options{DisableValueRange: true})
	if stats.Preempted != 2 {
		t.Errorf("Preempted = %d, want 2 (three checks merged into one)", stats.Preempted)
	}
	if stats.CheckBounds != 1 {
		t.Errorf("CheckBounds = %d, want 1 merged check\n%s", stats.CheckBounds, instrumented)
	}
	env := newEnv(t, variant.SPP)
	if _, err := interp.New(instrumented, env).Run("main"); err != nil {
		t.Errorf("preempted in-bounds run failed: %v", err)
	}

	// The merged check still catches an overflow in the group.
	m2 := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 1
  %a = gep %p, 0
  store.8 %a, %v
  %b = gep %p, 60
  store.8 %b, %v
  ret %v
}
`)
	inst2, _ := apply(t, m2, Options{})
	env2 := newEnv(t, variant.SPP)
	if _, err := env2.RT.Alloc(64); err != nil {
		t.Fatal(err)
	}
	if _, err := interp.New(inst2, env2).Run("main"); !hooks.IsSafetyTrap(err) {
		t.Errorf("merged check missed overflow: %v", err)
	}
}

const loopProgram = `
func @main() {
entry:
  %s = const 80
  %oid = pmalloc %s
  %p = direct %oid
  %eight = const 8
  %islot = malloc %eight
  %zero = const 0
  store.8 %islot, %zero
  br loop
loop: !loop.bound 10
  %i = load.8 %islot
  %c8 = const 8
  %off = mul %i, %c8
  %q = gep %p, %off
  store.8 %q, %i
  %one = const 1
  %i2 = add %i, %one
  store.8 %islot, %i2
  %n = const 10
  %c = icmp.lt %i2, %n
  condbr %c, loop, done
done:
  %first = load.8 %p
  %last = gep %p, 72
  %lv = load.8 %last
  %sum = add %first, %lv
  ret %sum
}
`

func TestLoopHoisting(t *testing.T) {
	m := parse(t, loopProgram)
	// Value-range elision would prove the whole loop in-bounds and
	// remove the checks outright; disable it to exercise hoisting.
	hoistOn, on := apply(t, m, Options{DisableValueRange: true})
	if on.Hoisted != 1 {
		t.Fatalf("Hoisted = %d, want 1\n%s", on.Hoisted, hoistOn)
	}
	_, off := apply(t, m, Options{DisableHoisting: true, DisableValueRange: true})
	if off.Hoisted != 0 {
		t.Errorf("Hoisted = %d with hoisting disabled", off.Hoisted)
	}
	// The win is dynamic: the loop body must contain no bound check
	// (it would run every iteration); the check sits in the preheader.
	loopBlk := hoistOn.Func("main").Block("loop")
	for _, in := range loopBlk.Instrs {
		if in.Op == ir.SppCheckBound {
			t.Errorf("bound check left in loop body: %s", in)
		}
	}
	entryText := blockText(hoistOn.Func("main").Block("entry"))
	if !strings.Contains(entryText, "spp.checkbound.80") {
		t.Errorf("preheader lacks hoisted check of max extent:\n%s", entryText)
	}
	// The hoisted program computes the same result under SPP.
	env := newEnv(t, variant.SPP)
	got, err := interp.New(hoistOn, env).Run("main")
	if err != nil {
		t.Fatalf("hoisted run failed: %v", err)
	}
	if got != 9 { // first element 0 + last element 9
		t.Errorf("hoisted result = %d, want 9", got)
	}
}

func TestLoopHoistingCatchesOverflowConservatively(t *testing.T) {
	// The annotated bound exceeds the object: the hoisted preheader
	// check traps before the loop runs.
	src := strings.Replace(loopProgram, "%s = const 80", "%s = const 72", 1)
	m := parse(t, src)
	instrumented, stats := apply(t, m, Options{})
	if stats.Hoisted != 1 {
		t.Fatalf("Hoisted = %d", stats.Hoisted)
	}
	env := newEnv(t, variant.SPP)
	if _, err := interp.New(instrumented, env).Run("main"); !hooks.IsSafetyTrap(err) {
		t.Errorf("hoisted check missed loop overflow: %v", err)
	}
}

// TestHoistEntryHeaderLoop: a loop whose header IS the function entry
// block has no preheader; the seed picked the latch (the only branch
// to the header), placing the hoisted check inside the loop after its
// first use. The pass must instead synthesize a preheader block ahead
// of entry and hoist the check there.
func TestHoistEntryHeaderLoop(t *testing.T) {
	m := parse(t, `
func @kernel(%p, %islot) {
head: !loop.bound 10
  %i = load.8 %islot
  %c8 = const 8
  %off = mul %i, %c8
  %q = gep %p, %off
  store.8 %q, %i
  br latch
latch:
  %i1 = load.8 %islot
  %one = const 1
  %i2 = add %i1, %one
  store.8 %islot, %i2
  %n = const 10
  %c = icmp.lt %i2, %n
  condbr %c, head, done
done:
  %last = gep %p, 72
  %lv = load.8 %last
  ret %lv
}
func @main() {
entry:
  %s = const 80
  %oid = pmalloc %s
  %p = direct %oid
  %eight = const 8
  %islot = malloc %eight
  %zero = const 0
  store.8 %islot, %zero
  %r = call @kernel, %p, %islot
  ret %r
}
`)
	// Disable elision so the hoisting path itself is exercised.
	instrumented, stats := apply(t, m, Options{DisableValueRange: true})
	if stats.Hoisted != 1 {
		t.Fatalf("Hoisted = %d, want 1\n%s", stats.Hoisted, instrumented)
	}
	kernel := instrumented.Func("kernel")
	pre := kernel.Blocks[0]
	if pre.Name == "head" {
		t.Fatalf("no preheader synthesized for entry-header loop:\n%s", instrumented)
	}
	if !strings.Contains(blockText(pre), "spp.checkbound.80") {
		t.Errorf("synthesized preheader lacks the hoisted max-extent check:\n%s", blockText(pre))
	}
	for _, in := range kernel.Block("head").Instrs {
		if in.Op == ir.SppCheckBound && in.Args[0] == "%p" {
			t.Errorf("hoisted check left inside the loop header: %s", in)
		}
	}
	for _, in := range kernel.Block("latch").Instrs {
		if in.Op == ir.SppCheckBound && in.Args[0] == "%p" {
			t.Errorf("hoisted check placed in the latch (seed bug): %s", in)
		}
	}
	// The miscompile was dynamic: the check's result was used on
	// iteration 1 before the latch defined it. The fixed program must
	// run to completion with the right answer.
	env := newEnv(t, variant.SPP)
	got, err := interp.New(instrumented, env).Run("main")
	if err != nil {
		t.Fatalf("entry-header loop run failed: %v\n%s", err, instrumented)
	}
	if got != 9 {
		t.Errorf("result = %d, want 9", got)
	}
}

func TestLTORefinesParameterClasses(t *testing.T) {
	m := parse(t, `
func @writeslot(%ptr, %val) {
entry:
  store.8 %ptr, %val
  ret %val
}
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 5
  %r = call @writeslot, %p, %v
  %r2 = call @writeslot, %p, %r
  ret %r2
}
`)
	_, withLTO := apply(t, m, Options{DisablePreemption: true, DisableHoisting: true})
	_, noLTO := apply(t, m, Options{DisableLTO: true, DisablePreemption: true, DisableHoisting: true})
	// With LTO the callee's %ptr is known persistent: its check
	// becomes a _direct hook.
	if withLTO.DirectHooks <= noLTO.DirectHooks {
		t.Errorf("LTO did not refine classes: direct hooks %d vs %d", withLTO.DirectHooks, noLTO.DirectHooks)
	}
	env := newEnv(t, variant.SPP)
	inst, _ := apply(t, m, Options{})
	if got, err := interp.New(inst, env).Run("main"); err != nil || got != 5 {
		t.Errorf("LTO-refined run = %d, %v", got, err)
	}
}

func TestInstrumentedRunsOnAllVariants(t *testing.T) {
	m := parse(t, basicProgram)
	instrumented, _ := apply(t, m, Options{})
	for _, kind := range variant.Kinds {
		env := newEnv(t, kind)
		if _, err := interp.New(instrumented, env).Run("main"); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestInterpCallAndControlFlow(t *testing.T) {
	m := parse(t, `
func @fib(%n) {
entry:
  %one = const 1
  %two = const 2
  %c = icmp.lt %n, %two
  condbr %c, base, rec
base:
  ret %n
rec:
  %n1 = sub %n, %one
  %n2 = sub %n, %two
  %a = call @fib, %n1
  %b = call @fib, %n2
  %r = add %a, %b
  ret %r
}
func @main() {
entry:
  %ten = const 10
  %r = call @fib, %ten
  ret %r
}
`)
	env := newEnv(t, variant.PMDK)
	got, err := interp.New(m, env).Run("main")
	if err != nil || got != 55 {
		t.Errorf("fib(10) = %d, %v", got, err)
	}
}

func TestInterpStepBudget(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  br entry
}
`)
	env := newEnv(t, variant.PMDK)
	mach := interp.New(m, env)
	mach.MaxSteps = 1000
	if _, err := mach.Run("main"); err == nil {
		t.Error("infinite loop not stopped")
	}
}

func blockText(b *ir.Block) string {
	var sb strings.Builder
	for _, in := range b.Instrs {
		sb.WriteString(in.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestRestoreIntPtr: the §IV-G future-work mitigation re-derives
// laundered pointers from their use-def origin, restoring SPP's
// protection through integer round trips.
func TestRestoreIntPtr(t *testing.T) {
	src := `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %oid2 = pmalloc %s
  %p2 = direct %oid2
  %i = ptrtoint %p
  %sixtyfour = const 64
  %j = add %i, %sixtyfour
  %lq = inttoptr %j
  %v = const 7
  store.8 %lq, %v
  ret %v
}
`
	m := parse(t, src)

	// Without the mitigation the laundered overflow is invisible.
	plain, _ := apply(t, m, Options{})
	env := newEnv(t, variant.SPP)
	if _, err := interp.New(plain, env).Run("main"); err != nil {
		t.Fatalf("baseline laundering unexpectedly trapped: %v", err)
	}

	// With it, the int-to-ptr is rewritten to gep %p, 64 and the store
	// traps.
	hardened, stats := apply(t, m, Options{RestoreIntPtr: true})
	if stats.RestoredPtrs != 1 {
		t.Fatalf("RestoredPtrs = %d", stats.RestoredPtrs)
	}
	env2 := newEnv(t, variant.SPP)
	if _, err := interp.New(hardened, env2).Run("main"); !hooks.IsSafetyTrap(err) {
		t.Errorf("restored pointer overflow not trapped: %v", err)
	}

	// Direct round trip (no arithmetic) restores too, and in-bounds
	// use keeps working.
	ok := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %i = ptrtoint %p
  %lp = inttoptr %i
  %v = const 9
  store.8 %lp, %v
  %x = load.8 %lp
  ret %x
}
`)
	inst, stats2 := apply(t, ok, Options{RestoreIntPtr: true})
	if stats2.RestoredPtrs != 1 {
		t.Fatalf("RestoredPtrs = %d", stats2.RestoredPtrs)
	}
	env3 := newEnv(t, variant.SPP)
	got, err := interp.New(inst, env3).Run("main")
	if err != nil || got != 9 {
		t.Errorf("in-bounds restored use = %d, %v", got, err)
	}

	// Integers from elsewhere (no pointer origin) are left alone.
	wild := parse(t, `
func @main() {
entry:
  %c = const 65536
  %wp = inttoptr %c
  ret %c
}
`)
	_, stats3 := apply(t, wild, Options{RestoreIntPtr: true})
	if stats3.RestoredPtrs != 0 {
		t.Errorf("restored a pointer with no origin: %d", stats3.RestoredPtrs)
	}
}
