package transform

import (
	"strings"
	"testing"

	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/variant"
)

// TestElideRebasesProvenChain: a gep chain off a known-size persistent
// allocation whose every use is a proven in-bounds access is rebased
// onto a cleantag anchor, and all its SPP hooks disappear.
func TestElideRebasesProvenChain(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 256
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 7
  %q = gep %p, 8
  store.8 %q, %v
  %x = load.8 %q
  ret %x
}
`)
	instrumented, stats := apply(t, m, Options{})
	if stats.RangeAnchors != 1 {
		t.Errorf("RangeAnchors = %d, want 1", stats.RangeAnchors)
	}
	if stats.RangeElidedTags != 1 {
		t.Errorf("RangeElidedTags = %d, want 1 (the gep)", stats.RangeElidedTags)
	}
	if stats.RangeElidedChecks != 2 {
		t.Errorf("RangeElidedChecks = %d, want 2 (store + load)", stats.RangeElidedChecks)
	}
	text := instrumented.String()
	if !strings.Contains(text, "%p.clean = spp.cleantag %p !pm") {
		t.Errorf("missing known-PM cleantag anchor:\n%s", text)
	}
	if !strings.Contains(text, "gep %p.clean, 8") {
		t.Errorf("gep not rebased onto the clean pointer:\n%s", text)
	}
	if strings.Contains(text, "spp.checkbound") || strings.Contains(text, "spp.updatetag") {
		t.Errorf("proven chain kept SPP hooks:\n%s", text)
	}
	for _, kind := range []variant.Kind{variant.SPP, variant.SPPPacked, variant.PMDK} {
		env := newEnv(t, kind)
		got, err := interp.New(instrumented, env).Run("main")
		if err != nil {
			t.Fatalf("%s: elided run failed: %v\n%s", kind, err, text)
		}
		if got != 7 {
			t.Errorf("%s: got %d, want 7", kind, got)
		}
	}
}

// TestElideKeepsCheckOnUnprovenAccess: an access the interval analysis
// cannot prove in bounds keeps its tagged pointer and its bound check —
// and that check still fires.
func TestElideKeepsCheckOnUnprovenAccess(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 256
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 7
  %q = gep %p, 8
  store.8 %q, %v
  %bad = gep %p, 249
  store.8 %bad, %v
  ret %v
}
`)
	instrumented, stats := apply(t, m, Options{})
	text := instrumented.String()
	// The straddling access (249 + 8 > 256) is out of the proof: its
	// gep keeps the tag update and the store keeps the check.
	if stats.RangeElidedChecks != 1 {
		t.Errorf("RangeElidedChecks = %d, want 1 (only the safe store)\n%s",
			stats.RangeElidedChecks, text)
	}
	if !strings.Contains(text, "spp.updatetag") || !strings.Contains(text, "spp.checkbound") {
		t.Errorf("unproven access lost its hooks:\n%s", text)
	}
	env := newEnv(t, variant.SPP)
	if _, err := interp.New(instrumented, env).Run("main"); !hooks.IsSafetyTrap(err) {
		t.Errorf("straddling store not trapped after elision: %v\n%s", err, text)
	}
}

// TestElideSkipsVolatileRoots: pointer tracking already prunes every
// hook on volatile chains, so anchoring a cleantag there would only
// add an instruction.
func TestElideSkipsVolatileRoots(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 256
  %p = malloc %s
  %v = const 7
  %q = gep %p, 8
  store.8 %q, %v
  %x = load.8 %q
  ret %x
}
`)
	instrumented, stats := apply(t, m, Options{})
	if stats.RangeAnchors != 0 {
		t.Errorf("RangeAnchors = %d on a volatile-only program\n%s",
			stats.RangeAnchors, instrumented)
	}
	if strings.Contains(instrumented.String(), "spp.cleantag") {
		t.Errorf("cleantag anchor on a volatile root:\n%s", instrumented)
	}
}

// TestElideTagObservingUseBlocksRebase: a gep whose value is also
// converted to an integer could expose the missing tag; the chain must
// stay on the tagged pointer.
func TestElideTagObservingUseBlocksRebase(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 256
  %oid = pmalloc %s
  %p = direct %oid
  %v = const 7
  %q = gep %p, 8
  store.8 %q, %v
  %i = ptrtoint %q
  ret %i
}
`)
	instrumented, stats := apply(t, m, Options{})
	text := instrumented.String()
	if stats.RangeAnchors != 0 || stats.RangeElidedTags != 0 || stats.RangeElidedChecks != 0 {
		t.Errorf("tag-observed chain was rebased (anchors=%d tags=%d checks=%d):\n%s",
			stats.RangeAnchors, stats.RangeElidedTags, stats.RangeElidedChecks, text)
	}
	if !strings.Contains(text, "spp.updatetag") {
		t.Errorf("tag-observed gep lost its tag update:\n%s", text)
	}
	env := newEnv(t, variant.SPP)
	if _, err := interp.New(instrumented, env).Run("main"); err != nil {
		t.Fatalf("run failed: %v\n%s", err, text)
	}
}
