package transform

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// elideProvenChecks removes SPP hooks for accesses the value-range
// analysis proves in-bounds against a statically known allocation size.
//
// Mechanism: a masked copy of the allocation root is anchored right
// after its definition (%root.clean = spp.cleantag %root — on a fresh
// in-bounds pointer cleantag yields the plain address; on the other
// variants it is the identity), and every gep chain whose transitive
// uses are all provably-safe dereferences is rebased onto that clean
// pointer. The rebased geps then need no __spp_updatetag (there is no
// tag to maintain) and the proven accesses need no __spp_checkbound
// (the address is plain and in bounds), so the hooks are elided
// entirely — a strict superset of what preemption and hoisting save,
// since those still execute one merged or hoisted check.
//
// Soundness: a chain is only rebased when every transitive use of
// every value in it is a proven-in-bounds dereference, a further
// rebasable gep, or a flush — any use that could observe the tag
// (stored as data, call argument, ptrtoint, an access the proof does
// not cover) keeps the chain on the tagged pointer. The anchor must
// also dominate every rewritten instruction.
func elideProvenChecks(f *ir.Func, classes map[string]Class, opts Options, stats *Stats) {
	if f.External || len(f.Blocks) == 0 {
		return
	}
	ri := analysis.InferRangesOpt(f, analysis.RangeOptions{Loops: !opts.DisableLoopOpt})
	if !ri.Converged || len(ri.RootSize) == 0 {
		return
	}
	classOf := func(v string) Class {
		if opts.DisablePointerTracking {
			return Unknown
		}
		return classes[v]
	}

	type loc struct{ blk, idx int }
	type use struct {
		in  *ir.Instr
		arg int
		at  loc
	}
	defLoc := make(map[string]loc)
	defInstr := make(map[string]*ir.Instr)
	defCount := make(map[string]int)
	uses := make(map[string][]use)
	for bi, blk := range f.Blocks {
		for ii, in := range blk.Instrs {
			if in.Dst != "" {
				defCount[in.Dst]++
				defLoc[in.Dst] = loc{bi, ii}
				defInstr[in.Dst] = in
			}
			for ai, a := range in.Args {
				uses[a] = append(uses[a], use{in, ai, loc{bi, ii}})
			}
		}
	}
	dom := analysis.Dominators(analysis.BuildCFG(f))

	// rebasable reports whether the gep's value never leaves the set of
	// proven-safe dereferences / rebasable geps / flushes. The memo's
	// false-while-in-progress entry also breaks self-referential defs.
	memo := make(map[*ir.Instr]bool)
	var rebasable func(g *ir.Instr) bool
	rebasable = func(g *ir.Instr) bool {
		if v, ok := memo[g]; ok {
			return v
		}
		memo[g] = false
		if g.Dst == "" || defCount[g.Dst] != 1 {
			return false
		}
		if _, ok := ri.GepFact[g]; !ok {
			return false
		}
		for _, u := range uses[g.Dst] {
			switch {
			case (u.in.Op == ir.Load || u.in.Op == ir.Store) && u.arg == 0 && ri.SafeAccess(u.in):
			case u.in.Op == ir.Gep && u.arg == 0 && rebasable(u.in):
			case u.in.Op == ir.Flush && u.arg == 0:
			default:
				return false
			}
		}
		memo[g] = true
		return true
	}

	// markChain flags every gep and access of a rebased chain.
	var markChain func(g *ir.Instr)
	markChain = func(g *ir.Instr) {
		g.SkipTagUpdate = true
		stats.RangeElidedTags++
		for _, u := range uses[g.Dst] {
			switch {
			case (u.in.Op == ir.Load || u.in.Op == ir.Store) && u.arg == 0 && !u.in.SkipCheck:
				u.in.SkipCheck = true
				stats.RangeElidedChecks++
			case u.in.Op == ir.Gep && u.arg == 0:
				markChain(u.in)
			}
		}
	}

	// dominatedByAnchor: the anchor sits right after the root's def, so
	// it dominates exactly the instructions the def strictly dominates.
	dominatedByAnchor := func(root string, at loc) bool {
		d := defLoc[root]
		if d.blk == at.blk {
			return at.idx > d.idx
		}
		return dom.Dominates(d.blk, at.blk)
	}

	// Walk roots in program order for deterministic output.
	for _, blk := range f.Blocks {
		for _, rootDef := range blk.Instrs {
			root := rootDef.Dst
			if root == "" {
				continue
			}
			if _, ok := ri.RootSize[root]; !ok || defInstr[root] != rootDef {
				continue
			}
			cls := classOf(root)
			if cls == Volatile {
				continue // hooks are pruned anyway; an anchor would only add work
			}
			// Collect the rewrites: rebasable gep chains off this root,
			// and proven-safe dereferences of the root itself.
			var topGeps []*ir.Instr
			var directAccs []*ir.Instr
			for _, u := range uses[root] {
				switch {
				case u.in.Op == ir.Gep && u.arg == 0 && rebasable(u.in) && dominatedByAnchor(root, u.at):
					topGeps = append(topGeps, u.in)
				case (u.in.Op == ir.Load || u.in.Op == ir.Store) && u.arg == 0 &&
					ri.SafeAccess(u.in) && dominatedByAnchor(root, u.at):
					directAccs = append(directAccs, u.in)
				}
			}
			if len(topGeps) == 0 && len(directAccs) == 0 {
				continue
			}
			clean := freshValueName(defCount, root+".clean")
			anchor := &ir.Instr{
				Op: ir.SppCleanTag, Dst: clean, Args: []string{root},
				KnownPM: cls == Persistent,
			}
			blk.Instrs = insertAfter(blk.Instrs, rootDef, anchor)
			stats.RangeAnchors++
			for _, g := range topGeps {
				g.Args[0] = clean
				markChain(g)
			}
			for _, acc := range directAccs {
				if !acc.SkipCheck {
					acc.Args[0] = clean
					acc.SkipCheck = true
					stats.RangeElidedChecks++
				}
			}
		}
	}
}

func freshValueName(defCount map[string]int, base string) string {
	name := base
	for i := 1; defCount[name] > 0; i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	defCount[name]++
	return name
}

func insertAfter(list []*ir.Instr, target, insert *ir.Instr) []*ir.Instr {
	for i, in := range list {
		if in == target {
			out := make([]*ir.Instr, 0, len(list)+1)
			out = append(out, list[:i+1]...)
			out = append(out, insert)
			out = append(out, list[i+1:]...)
			return out
		}
	}
	return append(list, insert)
}
