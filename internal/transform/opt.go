package transform

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ir"
)

// useCounts maps every value name to the number of instructions that
// read it.
func useCounts(f *ir.Func) map[string]int {
	uses := make(map[string]int)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			for _, a := range in.Args {
				uses[a]++
			}
		}
	}
	return uses
}

// constValues maps names of Const results to their values.
func constValues(f *ir.Func) map[string]int64 {
	consts := make(map[string]int64)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.Const {
				consts[in.Dst] = in.Imm
			}
		}
	}
	return consts
}

// preemptChecks implements bound-check preemption (§IV-E): when a
// basic block dereferences the same pointer several times through
// constant offsets, a single check of the maximum extent replaces the
// per-access checks and the accesses use the masked pointer.
func preemptChecks(f *ir.Func, classes map[string]Class, opts Options, stats *Stats) {
	uses := useCounts(f)
	for _, blk := range f.Blocks {
		type access struct {
			gep   *ir.Instr // nil for a direct deref of the base
			deref *ir.Instr
			end   int64 // last byte offset touched + 1
		}
		groups := make(map[string][]access)
		order := make([]string, 0, 4)
		gepsByDst := make(map[string]*ir.Instr)
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.Gep:
				if len(in.Args) == 1 && !in.SkipTagUpdate { // constant offset, not rebased by elision
					gepsByDst[in.Dst] = in
				}
			case ir.Load, ir.Store:
				if in.SkipCheck {
					continue // already elided by the value-range proof
				}
				addr := in.Args[0]
				if g, ok := gepsByDst[addr]; ok && uses[g.Dst] == 1 {
					base := g.Args[0]
					if !opts.DisablePointerTracking && classes[base] == Volatile {
						continue
					}
					if _, seen := groups[base]; !seen {
						order = append(order, base)
					}
					groups[base] = append(groups[base], access{gep: g, deref: in, end: g.Imm + int64(in.Size)})
				} else if _, isGep := gepsByDst[addr]; !isGep {
					if !opts.DisablePointerTracking && classes[addr] == Volatile {
						continue
					}
					if _, seen := groups[addr]; !seen {
						order = append(order, addr)
					}
					groups[addr] = append(groups[addr], access{deref: in, end: int64(in.Size)})
				}
			}
		}
		for _, base := range order {
			accs := groups[base]
			if len(accs) < 2 {
				continue
			}
			var maxEnd int64
			for _, a := range accs {
				if a.end > maxEnd {
					maxEnd = a.end
				}
				if a.end <= 0 {
					maxEnd = -1
					break
				}
			}
			if maxEnd <= 0 {
				continue // negative offsets: leave per-access checks
			}
			masked := fmt.Sprintf("%s.pre", base)
			pre := &ir.Instr{
				Op: ir.SppCheckBound, Dst: masked, Args: []string{base},
				Size:    uint64(maxEnd),
				KnownPM: !opts.DisablePointerTracking && classes[base] == Persistent,
			}
			// Insert the merged check before the first access of the
			// group (its gep if it has one).
			first := accs[0].deref
			if accs[0].gep != nil {
				first = accs[0].gep
			}
			blk.Instrs = insertBefore(blk.Instrs, first, pre)
			for _, a := range accs {
				if a.gep != nil {
					a.gep.Args[0] = masked
					a.gep.SkipTagUpdate = true
				} else {
					a.deref.Args[0] = masked
				}
				a.deref.SkipCheck = true
			}
			stats.Preempted += len(accs) - 1
			stats.CheckBounds++
			if pre.KnownPM {
				stats.DirectHooks++
			}
		}
	}
}

// hoistLoopChecks implements loop bound-check hoisting (§V-C): in a
// block annotated with its trip count, a dereference through
// base + induction*stride is covered by one check of the maximum
// offset placed in the preheader.
func hoistLoopChecks(f *ir.Func, classes map[string]Class, opts Options, stats *Stats) {
	consts := constValues(f)
	params := make(map[string]bool, len(f.Params))
	for _, p := range f.Params {
		params[p] = true
	}
	entry := f.Blocks[0]
	blocks := f.Blocks
	for _, blk := range blocks {
		if blk.LoopBound <= 0 {
			continue
		}
		pre := preheader(f, blk)
		// A loop headed by the entry block has no preheader: nothing
		// executes before entry. One is synthesized lazily (only if a
		// check actually hoists), and only parameters may serve as the
		// hoisted base — they alone are defined that early.
		synth := pre == nil && blk == entry
		if pre == nil && !synth {
			continue
		}
		defined := make(map[string]bool)
		for _, in := range blk.Instrs {
			if in.Dst != "" {
				defined[in.Dst] = true
			}
		}
		// Find mul-by-constant offsets.
		strides := make(map[string]int64) // offset value -> stride
		for _, in := range blk.Instrs {
			if in.Op != ir.Mul || len(in.Args) != 2 {
				continue
			}
			if c, ok := consts[in.Args[1]]; ok {
				strides[in.Dst] = c
			} else if c, ok := consts[in.Args[0]]; ok {
				strides[in.Dst] = c
			}
		}
		for _, in := range blk.Instrs {
			if in.Op != ir.Gep || len(in.Args) != 2 || in.SkipTagUpdate {
				continue
			}
			base, off := in.Args[0], in.Args[1]
			stride, ok := strides[off]
			if !ok || stride <= 0 || defined[base] {
				continue // not the recognized pattern, or base not invariant
			}
			if synth && !params[base] {
				continue // a synthesized preheader runs before entry: only params exist there
			}
			if !opts.DisablePointerTracking && classes[base] == Volatile {
				continue
			}
			// Find the dereferences of this gep's result in the block.
			var derefs []*ir.Instr
			for _, d := range blk.Instrs {
				if (d.Op == ir.Load || d.Op == ir.Store) && d.Args[0] == in.Dst && !d.SkipCheck {
					derefs = append(derefs, d)
				}
			}
			if len(derefs) == 0 {
				continue
			}
			var maxSize uint64
			for _, d := range derefs {
				if d.Size > maxSize {
					maxSize = d.Size
				}
			}
			maxEnd := (blk.LoopBound-1)*stride + int64(maxSize)
			if pre == nil {
				pre = &ir.Block{
					Name:   freshBlockName(f, "preheader"),
					Instrs: []*ir.Instr{{Op: ir.Br, Sym: blk.Name}},
				}
				f.Blocks = append([]*ir.Block{pre}, f.Blocks...)
			}
			masked := fmt.Sprintf("%s.h", base)
			hook := &ir.Instr{
				Op: ir.SppCheckBound, Dst: masked, Args: []string{base},
				Size:    uint64(maxEnd),
				KnownPM: !opts.DisablePointerTracking && classes[base] == Persistent,
			}
			pre.Instrs = insertBefore(pre.Instrs, pre.Instrs[len(pre.Instrs)-1], hook)
			in.Args[0] = masked
			in.SkipTagUpdate = true
			for _, d := range derefs {
				d.SkipCheck = true
				stats.Hoisted++
			}
			stats.CheckBounds++
			if hook.KnownPM {
				stats.DirectHooks++
			}
		}
	}
}

// preheader returns the unique block outside the loop that branches to
// loop, or nil. The entry block never has one: every other branch to it
// is a back edge, and placing a "preheader" inside the loop would both
// re-execute the hoisted check and use its result before it is defined
// on the first iteration.
func preheader(f *ir.Func, loop *ir.Block) *ir.Block {
	if loop == f.Blocks[0] {
		return nil
	}
	cfg := analysis.BuildCFG(f)
	dom := analysis.Dominators(cfg)
	var pre *ir.Block
	for bi, blk := range f.Blocks {
		if blk == loop {
			continue
		}
		term := blk.Instrs[len(blk.Instrs)-1]
		if term.Sym == loop.Name || term.SymElse == loop.Name {
			if dom.Dominates(cfg.Index[loop.Name], bi) {
				continue // back edge from inside the loop
			}
			if pre != nil {
				return nil // multiple entries: cannot hoist
			}
			pre = blk
		}
	}
	return pre
}

// freshBlockName returns base, or base+suffix when taken.
func freshBlockName(f *ir.Func, base string) string {
	taken := func(name string) bool {
		for _, blk := range f.Blocks {
			if blk.Name == name {
				return true
			}
		}
		return false
	}
	name := base
	for i := 1; taken(name); i++ {
		name = fmt.Sprintf("%s%d", base, i)
	}
	return name
}

func insertBefore(list []*ir.Instr, target, insert *ir.Instr) []*ir.Instr {
	for i, in := range list {
		if in == target {
			out := make([]*ir.Instr, 0, len(list)+1)
			out = append(out, list[:i]...)
			out = append(out, insert)
			out = append(out, list[i:]...)
			return out
		}
	}
	return append(list, insert)
}

// restoreIntPtr rewrites IntToPtr instructions whose integer operand
// provably derives from a PtrToInt of a known pointer — directly, or
// through one addition / constant subtraction — into pointer
// arithmetic on the original (tagged) pointer. This is the paper's
// suggested use-def-chain mitigation for the integer-laundering blind
// spot (§IV-G). It runs before classification so the restored pointers
// are tracked and instrumented like any other.
func restoreIntPtr(f *ir.Func) int {
	origin := analysis.NewOrigin(f)
	restored := 0
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op != ir.IntToPtr {
				continue
			}
			ptr, imm, varOff, ok := origin.PtrOrigin(in.Args[0])
			if !ok {
				continue
			}
			in.Op = ir.Gep
			if varOff != "" {
				in.Args = []string{ptr, varOff}
				in.Imm = 0
			} else {
				in.Args = []string{ptr}
				in.Imm = imm
			}
			restored++
		}
	}
	return restored
}
