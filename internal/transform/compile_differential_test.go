package transform

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/pmemcheck"
	"repro/internal/variant"
)

// The compiled execution path (internal/interp/compile.go) and the
// reference interpreter must be observably identical: same results on
// in-bounds programs, same fault verdicts on out-of-bounds ones, and
// byte-identical durable images — at every optimization rung, under
// every protection variant. The interpreter is the oracle; these tests
// are the differential harness the refactor is accepted against.

func newEnvCompiled(t *testing.T, kind variant.Kind, noCompile bool) *variant.Env {
	t.Helper()
	env, err := variant.New(kind, variant.Options{PoolSize: 8 << 20, Knobs: engine.Knobs{NoCompile: noCompile}})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// runVerdict executes instrumented @main in one mode and folds the
// outcome into a verdict.
func runVerdict(t *testing.T, mod *ir.Module, kind variant.Kind, noCompile bool) verdict {
	t.Helper()
	env := newEnvCompiled(t, kind, noCompile)
	mach := interp.New(mod, env)
	mach.MaxSteps = 1 << 24
	got, runErr := mach.Run("main")
	v := verdict{errored: runErr != nil, trapped: hooks.IsSafetyTrap(runErr)}
	if runErr == nil {
		v.value = got
	}
	if !noCompile && !v.errored {
		// A clean compiled run of these corpora must actually have
		// compiled something — guard against silently falling back.
		if st := mach.CompileStats(); st.Funcs == 0 {
			t.Fatalf("compiled run executed %d funcs through the compiler", st.Funcs)
		}
	}
	return v
}

// TestCompiledDifferentialVerdicts sweeps the random straight-line and
// loop corpora — in-bounds and fault-injected — across all opt rungs
// and protection variants, requiring the compiled path to reproduce the
// interpreter's verdict exactly.
func TestCompiledDifferentialVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(20240808))
	faults := []string{faultNone, faultOverflow, faultStraddle, faultUnderflow}
	var srcs []string
	for trial := 0; trial < 12; trial++ {
		srcs = append(srcs, genProgram(rng, faults[trial%len(faults)]))
	}
	loopFaults := []string{faultNone, faultLoopOverflow, faultLoopInvar}
	for trial := 0; trial < 6; trial++ {
		srcs = append(srcs, genLoopProgram(rng, loopFaults[trial%len(loopFaults)]))
	}
	for si, src := range srcs {
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("program %d invalid: %v\n%s", si, err, src)
		}
		for _, lv := range optLevels {
			instrumented, _, err := Apply(mod, lv.opts)
			if err != nil {
				t.Fatalf("program %d %s: %v", si, lv.name, err)
			}
			for _, kind := range diffVariants {
				interpV := runVerdict(t, instrumented, kind, true)
				compV := runVerdict(t, instrumented, kind, false)
				if interpV != compV {
					t.Fatalf("program %d %s %s: compiled %+v, interpreted %+v\n%s",
						si, lv.name, kind, compV, interpV, src)
				}
			}
		}
	}
}

// TestCompiledDurableImageEquivalence: on the flush/fence corpus the
// compiled path must leave exactly the interpreter's durable images —
// after every fence and at the end — with the same fence count and no
// new pmemcheck violations. Images are XOR-normalized against each
// run's own base because the pool header carries a random identity.
func TestCompiledDurableImageEquivalence(t *testing.T) {
	for _, tc := range flushElimPrograms {
		mod, err := ir.Parse(tc.src)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		instrumented, _, err := Apply(mod, Options{})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		type trace struct {
			events  []pmemcheck.Event
			base    []byte
			durable []byte
		}
		runOne := func(noCompile bool) trace {
			t.Helper()
			env := newEnvCompiled(t, variant.SPP, noCompile)
			tracker := pmemcheck.NewTracker()
			env.Dev.EnableTracking(tracker)
			base := append([]byte(nil), env.Dev.Data()...)
			if _, err := interp.New(instrumented, env).Run("main"); err != nil {
				t.Fatalf("%s (noCompile=%v): run failed: %v", tc.name, noCompile, err)
			}
			durable, err := env.Dev.DurableImage()
			if err != nil {
				t.Fatalf("%s: %v", tc.name, err)
			}
			return trace{events: tracker.Events(), base: base, durable: durable}
		}
		ref := runOne(true)
		comp := runOne(false)

		if !bytes.Equal(xorDiff(ref.durable, ref.base), xorDiff(comp.durable, comp.base)) {
			t.Errorf("%s: compiled execution changed the final durable image", tc.name)
		}
		imgsRef := pmemcheck.FenceImages(ref.base, ref.events)
		imgsComp := pmemcheck.FenceImages(comp.base, comp.events)
		if len(imgsRef) != len(imgsComp) {
			t.Fatalf("%s: fence count changed: %d vs %d", tc.name, len(imgsRef)-1, len(imgsComp)-1)
		}
		for i := range imgsRef {
			if !bytes.Equal(xorDiff(imgsRef[i], ref.base), xorDiff(imgsComp[i], comp.base)) {
				t.Errorf("%s: durable image after fence %d differs", tc.name, i)
			}
		}
		repRef := pmemcheck.Analyze(ref.events)
		repComp := pmemcheck.Analyze(comp.events)
		if len(repComp.Violations) != len(repRef.Violations) {
			t.Errorf("%s: compiled execution changed pmemcheck violations: %v vs %v",
				tc.name, repComp.Violations, repRef.Violations)
		}
	}
}
