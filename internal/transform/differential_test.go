package transform

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/variant"
)

// genProgram builds a random straight-line program that stays in
// bounds: it allocates a few PM and volatile objects, performs random
// in-range geps, loads, stores, integer arithmetic, ptr/int round
// trips, memory intrinsics and external calls, and returns a checksum
// of everything it loaded.
func genProgram(rng *rand.Rand) string {
	var b strings.Builder
	b.WriteString("extern @ext_identity\nextern @ext_load8\nfunc @main() {\nentry:\n")
	fmt.Fprintf(&b, "  %%objsize = const %d\n", 256)
	fmt.Fprintf(&b, "  %%zero = const 0\n")

	nPM := rng.Intn(3) + 1
	nVol := rng.Intn(2) + 1
	var ptrs []string // pointer values with 256-byte valid range
	for i := 0; i < nPM; i++ {
		fmt.Fprintf(&b, "  %%oid%d = pmalloc %%objsize\n", i)
		fmt.Fprintf(&b, "  %%pm%d = direct %%oid%d\n", i, i)
		ptrs = append(ptrs, fmt.Sprintf("%%pm%d", i))
	}
	for i := 0; i < nVol; i++ {
		fmt.Fprintf(&b, "  %%vol%d = malloc %%objsize\n", i)
		ptrs = append(ptrs, fmt.Sprintf("%%vol%d", i))
	}
	fmt.Fprintf(&b, "  %%acc0 = add %%zero, %%zero\n")
	acc := "%acc0"

	vals := []string{"%zero", "%objsize"}
	tmp := 0
	fresh := func(prefix string) string {
		tmp++
		return fmt.Sprintf("%%%s%d", prefix, tmp)
	}
	steps := rng.Intn(25) + 10
	for s := 0; s < steps; s++ {
		base := ptrs[rng.Intn(len(ptrs))]
		switch rng.Intn(8) {
		case 0: // gep + store
			off := rng.Intn(31) * 8
			q := fresh("q")
			v := vals[rng.Intn(len(vals))]
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q, base, off)
			fmt.Fprintf(&b, "  store.8 %s, %s\n", q, v)
		case 1: // gep + load into the accumulator
			off := rng.Intn(31) * 8
			q := fresh("q")
			x := fresh("x")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q, base, off)
			fmt.Fprintf(&b, "  %s = load.8 %s\n", x, q)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, x)
			acc = a2
			vals = append(vals, x)
		case 2: // integer arithmetic
			x := fresh("i")
			a, c := vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
			op := []string{"add", "sub", "mul"}[rng.Intn(3)]
			fmt.Fprintf(&b, "  %s = %s %s, %s\n", x, op, a, c)
			vals = append(vals, x)
		case 3: // ptr -> int -> comparison (cleaned values compare equal)
			i1, i2, eq := fresh("i"), fresh("i"), fresh("c")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = ptrtoint %s\n", i1, base)
			fmt.Fprintf(&b, "  %s = ptrtoint %s\n", i2, base)
			fmt.Fprintf(&b, "  %s = icmp.eq %s, %s\n", eq, i1, i2)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, eq)
			acc = a2
		case 4: // in-bounds memcpy between two objects
			dst := ptrs[rng.Intn(len(ptrs))]
			n := fresh("n")
			fmt.Fprintf(&b, "  %s = const %d\n", n, rng.Intn(16)*8+8)
			fmt.Fprintf(&b, "  memcpy %s, %s, %s\n", dst, base, n)
		case 5: // memset a prefix
			n, c := fresh("n"), fresh("cv")
			fmt.Fprintf(&b, "  %s = const %d\n", n, rng.Intn(32)+1)
			fmt.Fprintf(&b, "  %s = const %d\n", c, rng.Intn(256))
			fmt.Fprintf(&b, "  memset %s, %s, %s\n", base, c, n)
		case 6: // external call with a masked pointer
			r := fresh("r")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = callext @ext_load8, %s\n", r, base)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, r)
			acc = a2
		case 7: // chained gep back and forth
			q1, q2 := fresh("q"), fresh("q")
			off := rng.Intn(28)*8 + 16
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q1, base, off)
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q2, q1, -8)
			fmt.Fprintf(&b, "  store.8 %s, %s\n", q2, vals[rng.Intn(len(vals))])
		}
	}
	fmt.Fprintf(&b, "  ret %s\n}\n", acc)
	return b.String()
}

// TestDifferentialRandomPrograms: for random in-bounds programs, the
// instrumented binary under every protection variant must compute
// exactly what the uninstrumented binary computes natively — the
// compiler pass must never change program semantics.
func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	passConfigs := []Options{
		{},
		{DisablePointerTracking: true},
		{DisablePreemption: true, DisableHoisting: true},
		{RestoreIntPtr: true},
	}
	for trial := 0; trial < 40; trial++ {
		src := genProgram(rng)
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated program invalid: %v\n%s", trial, err, src)
		}
		// Ground truth: uninstrumented on native.
		envN := newEnv(t, variant.PMDK)
		want, err := interp.New(mod, envN).Run("main")
		if err != nil {
			t.Fatalf("trial %d: native run failed: %v\n%s", trial, err, src)
		}
		for ci, opts := range passConfigs {
			instrumented, _, err := Apply(mod, opts)
			if err != nil {
				t.Fatalf("trial %d cfg %d: %v", trial, ci, err)
			}
			for _, kind := range []variant.Kind{variant.PMDK, variant.SPP, variant.SafePM, variant.SPPPacked} {
				env := newEnv(t, kind)
				got, err := interp.New(instrumented, env).Run("main")
				if err != nil {
					t.Fatalf("trial %d cfg %d %s: run failed: %v\n%s", trial, ci, kind, err, src)
				}
				if got != want {
					t.Fatalf("trial %d cfg %d %s: got %d want %d\n%s", trial, ci, kind, got, want, src)
				}
			}
		}
	}
}
