package transform

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/variant"
)

// optLevels are the optimization rungs of the pass, from bare
// instrumentation to the full analysis pipeline. Differential testing
// asserts that climbing the ladder never changes program semantics —
// neither results of in-bounds programs nor fault verdicts of
// out-of-bounds ones.
var optLevels = []struct {
	name string
	opts Options
}{
	{"no-opt", Options{DisablePreemption: true, DisableHoisting: true, DisableValueRange: true,
		DisableLoopOpt: true, DisableFlushElim: true}},
	{"preempt", Options{DisableHoisting: true, DisableValueRange: true,
		DisableLoopOpt: true, DisableFlushElim: true}},
	{"preempt+hoist", Options{DisableValueRange: true, DisableLoopOpt: true, DisableFlushElim: true}},
	{"range", Options{DisableLoopOpt: true, DisableFlushElim: true}},
	{"range+loop", Options{DisableFlushElim: true}},
	{"full-analysis", Options{}},
}

// Fault kinds genProgram can inject.
const (
	faultNone      = ""
	faultOverflow  = "overflow"  // gep one object past the end, store
	faultStraddle  = "straddle"  // in-bounds pointer, access crosses the end
	faultUnderflow = "underflow" // gep before the object start, store
)

// genProgram builds a random straight-line program: it allocates a few
// PM and volatile objects, performs random in-range geps, loads,
// stores, integer arithmetic, ptr/int round trips, memory intrinsics
// and external calls, and returns a checksum of everything it loaded.
// With a non-empty fault kind it additionally injects one
// out-of-bounds store on a persistent object.
func genProgram(rng *rand.Rand, fault string) string {
	var b strings.Builder
	b.WriteString("extern @ext_identity\nextern @ext_load8\nfunc @main() {\nentry:\n")
	fmt.Fprintf(&b, "  %%objsize = const %d\n", 256)
	fmt.Fprintf(&b, "  %%zero = const 0\n")

	nPM := rng.Intn(3) + 1
	nVol := rng.Intn(2) + 1
	var ptrs []string // pointer values with 256-byte valid range
	for i := 0; i < nPM; i++ {
		fmt.Fprintf(&b, "  %%oid%d = pmalloc %%objsize\n", i)
		fmt.Fprintf(&b, "  %%pm%d = direct %%oid%d\n", i, i)
		ptrs = append(ptrs, fmt.Sprintf("%%pm%d", i))
	}
	for i := 0; i < nVol; i++ {
		fmt.Fprintf(&b, "  %%vol%d = malloc %%objsize\n", i)
		ptrs = append(ptrs, fmt.Sprintf("%%vol%d", i))
	}
	fmt.Fprintf(&b, "  %%acc0 = add %%zero, %%zero\n")
	acc := "%acc0"

	vals := []string{"%zero", "%objsize"}
	tmp := 0
	fresh := func(prefix string) string {
		tmp++
		return fmt.Sprintf("%%%s%d", prefix, tmp)
	}
	steps := rng.Intn(25) + 10
	for s := 0; s < steps; s++ {
		base := ptrs[rng.Intn(len(ptrs))]
		switch rng.Intn(8) {
		case 0: // gep + store
			off := rng.Intn(31) * 8
			q := fresh("q")
			v := vals[rng.Intn(len(vals))]
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q, base, off)
			fmt.Fprintf(&b, "  store.8 %s, %s\n", q, v)
		case 1: // gep + load into the accumulator
			off := rng.Intn(31) * 8
			q := fresh("q")
			x := fresh("x")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q, base, off)
			fmt.Fprintf(&b, "  %s = load.8 %s\n", x, q)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, x)
			acc = a2
			vals = append(vals, x)
		case 2: // integer arithmetic
			x := fresh("i")
			a, c := vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
			op := []string{"add", "sub", "mul"}[rng.Intn(3)]
			fmt.Fprintf(&b, "  %s = %s %s, %s\n", x, op, a, c)
			vals = append(vals, x)
		case 3: // ptr -> int -> comparison (cleaned values compare equal)
			i1, i2, eq := fresh("i"), fresh("i"), fresh("c")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = ptrtoint %s\n", i1, base)
			fmt.Fprintf(&b, "  %s = ptrtoint %s\n", i2, base)
			fmt.Fprintf(&b, "  %s = icmp.eq %s, %s\n", eq, i1, i2)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, eq)
			acc = a2
		case 4: // in-bounds memcpy between two objects
			dst := ptrs[rng.Intn(len(ptrs))]
			n := fresh("n")
			fmt.Fprintf(&b, "  %s = const %d\n", n, rng.Intn(16)*8+8)
			fmt.Fprintf(&b, "  memcpy %s, %s, %s\n", dst, base, n)
		case 5: // memset a prefix
			n, c := fresh("n"), fresh("cv")
			fmt.Fprintf(&b, "  %s = const %d\n", n, rng.Intn(32)+1)
			fmt.Fprintf(&b, "  %s = const %d\n", c, rng.Intn(256))
			fmt.Fprintf(&b, "  memset %s, %s, %s\n", base, c, n)
		case 6: // external call with a masked pointer
			r := fresh("r")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = callext @ext_load8, %s\n", r, base)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, r)
			acc = a2
		case 7: // chained gep back and forth
			q1, q2 := fresh("q"), fresh("q")
			off := rng.Intn(28)*8 + 16
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q1, base, off)
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q2, q1, -8)
			fmt.Fprintf(&b, "  store.8 %s, %s\n", q2, vals[rng.Intn(len(vals))])
		}
	}
	if fault != faultNone {
		pm := fmt.Sprintf("%%pm%d", rng.Intn(nPM))
		q := fresh("oob")
		switch fault {
		case faultOverflow:
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q, pm, 256+rng.Intn(4)*8)
		case faultStraddle:
			// In-bounds pointer whose 8-byte access crosses the end.
			fmt.Fprintf(&b, "  %s = gep %s, 249\n", q, pm)
		case faultUnderflow:
			fmt.Fprintf(&b, "  %s = gep %s, -8\n", q, pm)
		}
		fmt.Fprintf(&b, "  store.8 %s, %%zero\n", q)
	}
	fmt.Fprintf(&b, "  ret %s\n}\n", acc)
	return b.String()
}

var diffVariants = []variant.Kind{variant.PMDK, variant.SPP, variant.SafePM, variant.SPPPacked}

// TestDifferentialRandomPrograms: for random in-bounds programs, the
// instrumented binary at every optimization level and under every
// protection variant must compute exactly what the uninstrumented
// binary computes natively — the compiler pass must never change
// program semantics.
func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	passConfigs := []struct {
		name string
		opts Options
	}{
		{"tracking-off", Options{DisablePointerTracking: true}},
		{"restore-intptr", Options{RestoreIntPtr: true}},
	}
	for _, lv := range optLevels {
		passConfigs = append(passConfigs, struct {
			name string
			opts Options
		}{lv.name, lv.opts})
	}
	for trial := 0; trial < 40; trial++ {
		src := genProgram(rng, faultNone)
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated program invalid: %v\n%s", trial, err, src)
		}
		// Ground truth: uninstrumented on native.
		envN := newEnv(t, variant.PMDK)
		want, err := interp.New(mod, envN).Run("main")
		if err != nil {
			t.Fatalf("trial %d: native run failed: %v\n%s", trial, err, src)
		}
		for _, cfg := range passConfigs {
			instrumented, _, err := Apply(mod, cfg.opts)
			if err != nil {
				t.Fatalf("trial %d cfg %s: %v", trial, cfg.name, err)
			}
			for _, kind := range diffVariants {
				env := newEnv(t, kind)
				got, err := interp.New(instrumented, env).Run("main")
				if err != nil {
					t.Fatalf("trial %d cfg %s %s: run failed: %v\n%s", trial, cfg.name, kind, err, src)
				}
				if got != want {
					t.Fatalf("trial %d cfg %s %s: got %d want %d\n%s", trial, cfg.name, kind, got, want, src)
				}
			}
		}
	}
}

// verdict is the observable outcome of one run: whether it errored,
// whether the error was a detected safety trap, and the result value
// when it completed.
type verdict struct {
	errored bool
	trapped bool
	value   uint64
}

// TestDifferentialFaultVerdicts: for random out-of-bounds programs,
// each protection variant must reach the same verdict at every
// optimization level. In particular value-range elision must never
// remove the check that catches the injected fault, and check
// preemption must never turn a trapping program into a silent one (or
// vice versa).
func TestDifferentialFaultVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(1312))
	faults := []string{faultOverflow, faultStraddle, faultUnderflow}
	for trial := 0; trial < 24; trial++ {
		fault := faults[trial%len(faults)]
		src := genProgram(rng, fault)
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated program invalid: %v\n%s", trial, err, src)
		}
		for _, kind := range diffVariants {
			var base verdict
			for li, lv := range optLevels {
				instrumented, _, err := Apply(mod, lv.opts)
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, lv.name, err)
				}
				env := newEnv(t, kind)
				got, runErr := interp.New(instrumented, env).Run("main")
				v := verdict{errored: runErr != nil, trapped: hooks.IsSafetyTrap(runErr)}
				if runErr == nil {
					v.value = got
				}
				if li == 0 {
					base = v
					continue
				}
				if v != base {
					t.Fatalf("trial %d (%s) %s: verdict diverged at %s: %+v vs %s %+v\n%s",
						trial, fault, kind, lv.name, v, optLevels[0].name, base, src)
				}
			}
			// The tag-carrying variants must actually detect overflow
			// and straddling accesses (underflow detection depends on
			// the encoding, so only cross-level agreement is required).
			if (kind == variant.SPP || kind == variant.SPPPacked) &&
				(fault == faultOverflow || fault == faultStraddle) && !base.trapped {
				t.Errorf("trial %d (%s) %s: out-of-bounds store not trapped\n%s",
					trial, fault, kind, src)
			}
		}
	}
}

// TestValueRangeElisionRate: over the random corpus, the loop fixture
// and the examples/compiler-pass IR fixtures, the value-range client
// must elide at least 20% of the bound checks that survive preemption
// and hoisting.
func TestValueRangeElisionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var surviving, withElision int
	count := func(src string) {
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("invalid program: %v\n%s", err, src)
		}
		_, base, err := Apply(mod, Options{DisableValueRange: true})
		if err != nil {
			t.Fatal(err)
		}
		_, full, err := Apply(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		surviving += base.CheckBounds
		withElision += full.CheckBounds
	}
	for trial := 0; trial < 40; trial++ {
		count(genProgram(rng, faultNone))
	}
	count(loopProgram)
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "examples", "compiler-pass", "*.ir"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no compiler-pass fixtures found: %v", err)
	}
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			t.Fatal(err)
		}
		count(string(b))
	}
	if surviving == 0 {
		t.Fatal("corpus produced no bound checks")
	}
	elided := surviving - withElision
	rate := float64(elided) / float64(surviving)
	t.Logf("bound checks surviving preemption+hoisting: %d, after elision: %d (%.0f%% elided)",
		surviving, withElision, rate*100)
	if rate < 0.20 {
		t.Errorf("elision rate %.1f%% below the 20%% acceptance bar", rate*100)
	}
}

// Loop fault kinds genLoopProgram can inject.
const (
	faultLoopOverflow = "loop-overflow"  // induction variable runs past the object
	faultLoopInvar    = "loop-invariant" // loop-invariant access past the object
)

// genLoopProgram builds a random loop-heavy program: @main allocates a
// persistent object and iterates a strided store loop over it with a
// slot induction variable (statically known size: the range+loop tier
// elides everything), and @kernel receives the pointer as a parameter
// (size unknown: only the loop tier's widened and invariant preheader
// checks apply). Fault kinds push the induction range or an invariant
// access past the object.
func genLoopProgram(rng *rand.Rand, fault string) string {
	const objSize = 256
	trip := rng.Intn(24) + 8 // 8..31 iterations, stride 8: in bounds
	if fault == faultLoopOverflow {
		trip = objSize/8 + 1 + rng.Intn(4) // runs one or more strides past
	}
	invarOff := rng.Intn(16) * 8
	if fault == faultLoopInvar {
		invarOff = objSize + rng.Intn(4)*8
	}
	nInvar := rng.Intn(2) + 1 // invariant loads in the kernel loop

	var b strings.Builder
	fmt.Fprintf(&b, "func @kernel(%%p) {\nentry:\n")
	fmt.Fprintf(&b, "  %%eight = const 8\n  %%zero = const 0\n  %%one = const 1\n")
	fmt.Fprintf(&b, "  %%slot = malloc %%eight\n  store.8 %%slot, %%zero\n")
	fmt.Fprintf(&b, "  %%acc = malloc %%eight\n  store.8 %%acc, %%zero\n")
	fmt.Fprintf(&b, "  br loop\nloop:\n")
	fmt.Fprintf(&b, "  %%i = load.8 %%slot\n")
	fmt.Fprintf(&b, "  %%off = mul %%i, %%eight\n")
	fmt.Fprintf(&b, "  %%q = gep %%p, %%off\n")
	fmt.Fprintf(&b, "  store.8 %%q, %%i\n")
	for k := 0; k < nInvar; k++ {
		off := rng.Intn(8) * 8
		if k == 0 {
			off = invarOff
		}
		fmt.Fprintf(&b, "  %%f%d = gep %%p, %d\n  %%x%d = load.8 %%f%d\n", k, off, k, k)
		fmt.Fprintf(&b, "  %%a%d = load.8 %%acc\n  %%s%d = add %%a%d, %%x%d\n  store.8 %%acc, %%s%d\n",
			k, k, k, k, k)
	}
	fmt.Fprintf(&b, "  %%i2 = add %%i, %%one\n")
	fmt.Fprintf(&b, "  store.8 %%slot, %%i2\n")
	fmt.Fprintf(&b, "  %%lim = const %d\n", trip)
	fmt.Fprintf(&b, "  %%c = icmp.lt %%i2, %%lim\n")
	fmt.Fprintf(&b, "  condbr %%c, loop, done\ndone:\n")
	fmt.Fprintf(&b, "  %%r = load.8 %%acc\n  ret %%r\n}\n")

	mainTrip := rng.Intn(24) + 8
	fmt.Fprintf(&b, "func @main() {\nentry:\n")
	fmt.Fprintf(&b, "  %%size = const %d\n  %%oid = pmalloc %%size\n  %%pm = direct %%oid\n", objSize)
	fmt.Fprintf(&b, "  %%eight = const 8\n  %%zero = const 0\n  %%one = const 1\n")
	fmt.Fprintf(&b, "  %%slot = malloc %%eight\n  store.8 %%slot, %%zero\n  br fill\nfill:\n")
	fmt.Fprintf(&b, "  %%i = load.8 %%slot\n  %%off = mul %%i, %%eight\n")
	fmt.Fprintf(&b, "  %%q = gep %%pm, %%off\n  store.8 %%q, %%i\n")
	fmt.Fprintf(&b, "  %%i2 = add %%i, %%one\n  store.8 %%slot, %%i2\n  %%lim = const %d\n", mainTrip)
	fmt.Fprintf(&b, "  %%c = icmp.lt %%i2, %%lim\n  condbr %%c, fill, run\nrun:\n")
	fmt.Fprintf(&b, "  %%r = call @kernel, %%pm\n  ret %%r\n}\n")
	return b.String()
}

// TestLoopFaultVerdicts: the loop tier's hoisted and widened preheader
// checks must reach the same verdict as the per-access checks they
// replace, for in-bounds loops and for loops whose induction range or
// invariant access runs past the object. A widened check may trap at
// the preheader where the unoptimized program traps mid-loop, but
// trap/no-trap and computed results must agree.
func TestLoopFaultVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	faults := []string{faultNone, faultLoopOverflow, faultLoopInvar}
	for trial := 0; trial < 18; trial++ {
		fault := faults[trial%len(faults)]
		src := genLoopProgram(rng, fault)
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated program invalid: %v\n%s", trial, err, src)
		}
		for _, kind := range diffVariants {
			var base verdict
			for li, lv := range optLevels {
				instrumented, _, err := Apply(mod, lv.opts)
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, lv.name, err)
				}
				env := newEnv(t, kind)
				mach := interp.New(instrumented, env)
				mach.MaxSteps = 1 << 24
				got, runErr := mach.Run("main")
				v := verdict{errored: runErr != nil, trapped: hooks.IsSafetyTrap(runErr)}
				if runErr == nil {
					v.value = got
				}
				if li == 0 {
					base = v
					continue
				}
				if v != base {
					t.Fatalf("trial %d (%s) %s: verdict diverged at %s: %+v vs %s %+v\n%s",
						trial, fault, kind, lv.name, v, optLevels[0].name, base, src)
				}
			}
			if kind == variant.SPP && fault != faultNone && !base.trapped {
				t.Errorf("trial %d (%s) %s: out-of-bounds loop access not trapped\n%s",
					trial, fault, kind, src)
			}
		}
	}
}

// TestLoopElisionRate: on the loop-heavy corpus the range+loop tiers
// together must elide at least 35% of the bound checks that survive
// preemption and hoisting (the value-range tier alone clears 20% on
// the straight-line corpus).
func TestLoopElisionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(271828))
	baseOpts := Options{DisableValueRange: true, DisableLoopOpt: true, DisableFlushElim: true}
	loopOpts := Options{DisableFlushElim: true}
	var surviving, withLoop int
	count := func(src string) {
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("invalid program: %v\n%s", err, src)
		}
		_, base, err := Apply(mod, baseOpts)
		if err != nil {
			t.Fatal(err)
		}
		_, full, err := Apply(mod, loopOpts)
		if err != nil {
			t.Fatal(err)
		}
		surviving += base.CheckBounds
		withLoop += full.CheckBounds
	}
	for trial := 0; trial < 30; trial++ {
		count(genLoopProgram(rng, faultNone))
	}
	count(loopProgram)
	count(ablationKernel)
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "examples", "compiler-pass", "*.ir"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no compiler-pass fixtures found: %v", err)
	}
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			t.Fatal(err)
		}
		count(string(b))
	}
	if surviving == 0 {
		t.Fatal("corpus produced no bound checks")
	}
	rate := float64(surviving-withLoop) / float64(surviving)
	t.Logf("bound checks surviving preemption+hoisting: %d, after range+loop: %d (%.0f%% elided)",
		surviving, withLoop, rate*100)
	if rate < 0.35 {
		t.Errorf("range+loop elision rate %.1f%% below the 35%% acceptance bar", rate*100)
	}
}

// ablationKernel mirrors the shape of the bench ablation program: an
// unannotated slot-IV loop over a known-size persistent array, which
// the loop tier must fully prove.
const ablationKernel = `
func @main() {
entry:
  %size = const 4096
  %oid = pmalloc %size
  %p = direct %oid
  %eight = const 8
  %slot = malloc %eight
  %zero = const 0
  %one = const 1
  store.8 %slot, %zero
  br loop
loop:
  %i = load.8 %slot
  %off = mul %i, %eight
  %q = gep %p, %off
  store.8 %q, %i
  %i2 = add %i, %one
  %lim = const 512
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  %last = gep %p, 4088
  %r = load.8 %last
  ret %r
}
`
