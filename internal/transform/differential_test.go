package transform

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/variant"
)

// optLevels are the optimization rungs of the pass, from bare
// instrumentation to the full analysis pipeline. Differential testing
// asserts that climbing the ladder never changes program semantics —
// neither results of in-bounds programs nor fault verdicts of
// out-of-bounds ones.
var optLevels = []struct {
	name string
	opts Options
}{
	{"no-opt", Options{DisablePreemption: true, DisableHoisting: true, DisableValueRange: true}},
	{"preempt", Options{DisableHoisting: true, DisableValueRange: true}},
	{"preempt+hoist", Options{DisableValueRange: true}},
	{"full-analysis", Options{}},
}

// Fault kinds genProgram can inject.
const (
	faultNone      = ""
	faultOverflow  = "overflow"  // gep one object past the end, store
	faultStraddle  = "straddle"  // in-bounds pointer, access crosses the end
	faultUnderflow = "underflow" // gep before the object start, store
)

// genProgram builds a random straight-line program: it allocates a few
// PM and volatile objects, performs random in-range geps, loads,
// stores, integer arithmetic, ptr/int round trips, memory intrinsics
// and external calls, and returns a checksum of everything it loaded.
// With a non-empty fault kind it additionally injects one
// out-of-bounds store on a persistent object.
func genProgram(rng *rand.Rand, fault string) string {
	var b strings.Builder
	b.WriteString("extern @ext_identity\nextern @ext_load8\nfunc @main() {\nentry:\n")
	fmt.Fprintf(&b, "  %%objsize = const %d\n", 256)
	fmt.Fprintf(&b, "  %%zero = const 0\n")

	nPM := rng.Intn(3) + 1
	nVol := rng.Intn(2) + 1
	var ptrs []string // pointer values with 256-byte valid range
	for i := 0; i < nPM; i++ {
		fmt.Fprintf(&b, "  %%oid%d = pmalloc %%objsize\n", i)
		fmt.Fprintf(&b, "  %%pm%d = direct %%oid%d\n", i, i)
		ptrs = append(ptrs, fmt.Sprintf("%%pm%d", i))
	}
	for i := 0; i < nVol; i++ {
		fmt.Fprintf(&b, "  %%vol%d = malloc %%objsize\n", i)
		ptrs = append(ptrs, fmt.Sprintf("%%vol%d", i))
	}
	fmt.Fprintf(&b, "  %%acc0 = add %%zero, %%zero\n")
	acc := "%acc0"

	vals := []string{"%zero", "%objsize"}
	tmp := 0
	fresh := func(prefix string) string {
		tmp++
		return fmt.Sprintf("%%%s%d", prefix, tmp)
	}
	steps := rng.Intn(25) + 10
	for s := 0; s < steps; s++ {
		base := ptrs[rng.Intn(len(ptrs))]
		switch rng.Intn(8) {
		case 0: // gep + store
			off := rng.Intn(31) * 8
			q := fresh("q")
			v := vals[rng.Intn(len(vals))]
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q, base, off)
			fmt.Fprintf(&b, "  store.8 %s, %s\n", q, v)
		case 1: // gep + load into the accumulator
			off := rng.Intn(31) * 8
			q := fresh("q")
			x := fresh("x")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q, base, off)
			fmt.Fprintf(&b, "  %s = load.8 %s\n", x, q)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, x)
			acc = a2
			vals = append(vals, x)
		case 2: // integer arithmetic
			x := fresh("i")
			a, c := vals[rng.Intn(len(vals))], vals[rng.Intn(len(vals))]
			op := []string{"add", "sub", "mul"}[rng.Intn(3)]
			fmt.Fprintf(&b, "  %s = %s %s, %s\n", x, op, a, c)
			vals = append(vals, x)
		case 3: // ptr -> int -> comparison (cleaned values compare equal)
			i1, i2, eq := fresh("i"), fresh("i"), fresh("c")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = ptrtoint %s\n", i1, base)
			fmt.Fprintf(&b, "  %s = ptrtoint %s\n", i2, base)
			fmt.Fprintf(&b, "  %s = icmp.eq %s, %s\n", eq, i1, i2)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, eq)
			acc = a2
		case 4: // in-bounds memcpy between two objects
			dst := ptrs[rng.Intn(len(ptrs))]
			n := fresh("n")
			fmt.Fprintf(&b, "  %s = const %d\n", n, rng.Intn(16)*8+8)
			fmt.Fprintf(&b, "  memcpy %s, %s, %s\n", dst, base, n)
		case 5: // memset a prefix
			n, c := fresh("n"), fresh("cv")
			fmt.Fprintf(&b, "  %s = const %d\n", n, rng.Intn(32)+1)
			fmt.Fprintf(&b, "  %s = const %d\n", c, rng.Intn(256))
			fmt.Fprintf(&b, "  memset %s, %s, %s\n", base, c, n)
		case 6: // external call with a masked pointer
			r := fresh("r")
			a2 := fresh("acc")
			fmt.Fprintf(&b, "  %s = callext @ext_load8, %s\n", r, base)
			fmt.Fprintf(&b, "  %s = add %s, %s\n", a2, acc, r)
			acc = a2
		case 7: // chained gep back and forth
			q1, q2 := fresh("q"), fresh("q")
			off := rng.Intn(28)*8 + 16
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q1, base, off)
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q2, q1, -8)
			fmt.Fprintf(&b, "  store.8 %s, %s\n", q2, vals[rng.Intn(len(vals))])
		}
	}
	if fault != faultNone {
		pm := fmt.Sprintf("%%pm%d", rng.Intn(nPM))
		q := fresh("oob")
		switch fault {
		case faultOverflow:
			fmt.Fprintf(&b, "  %s = gep %s, %d\n", q, pm, 256+rng.Intn(4)*8)
		case faultStraddle:
			// In-bounds pointer whose 8-byte access crosses the end.
			fmt.Fprintf(&b, "  %s = gep %s, 249\n", q, pm)
		case faultUnderflow:
			fmt.Fprintf(&b, "  %s = gep %s, -8\n", q, pm)
		}
		fmt.Fprintf(&b, "  store.8 %s, %%zero\n", q)
	}
	fmt.Fprintf(&b, "  ret %s\n}\n", acc)
	return b.String()
}

var diffVariants = []variant.Kind{variant.PMDK, variant.SPP, variant.SafePM, variant.SPPPacked}

// TestDifferentialRandomPrograms: for random in-bounds programs, the
// instrumented binary at every optimization level and under every
// protection variant must compute exactly what the uninstrumented
// binary computes natively — the compiler pass must never change
// program semantics.
func TestDifferentialRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	passConfigs := []struct {
		name string
		opts Options
	}{
		{"tracking-off", Options{DisablePointerTracking: true}},
		{"restore-intptr", Options{RestoreIntPtr: true}},
	}
	for _, lv := range optLevels {
		passConfigs = append(passConfigs, struct {
			name string
			opts Options
		}{lv.name, lv.opts})
	}
	for trial := 0; trial < 40; trial++ {
		src := genProgram(rng, faultNone)
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated program invalid: %v\n%s", trial, err, src)
		}
		// Ground truth: uninstrumented on native.
		envN := newEnv(t, variant.PMDK)
		want, err := interp.New(mod, envN).Run("main")
		if err != nil {
			t.Fatalf("trial %d: native run failed: %v\n%s", trial, err, src)
		}
		for _, cfg := range passConfigs {
			instrumented, _, err := Apply(mod, cfg.opts)
			if err != nil {
				t.Fatalf("trial %d cfg %s: %v", trial, cfg.name, err)
			}
			for _, kind := range diffVariants {
				env := newEnv(t, kind)
				got, err := interp.New(instrumented, env).Run("main")
				if err != nil {
					t.Fatalf("trial %d cfg %s %s: run failed: %v\n%s", trial, cfg.name, kind, err, src)
				}
				if got != want {
					t.Fatalf("trial %d cfg %s %s: got %d want %d\n%s", trial, cfg.name, kind, got, want, src)
				}
			}
		}
	}
}

// verdict is the observable outcome of one run: whether it errored,
// whether the error was a detected safety trap, and the result value
// when it completed.
type verdict struct {
	errored bool
	trapped bool
	value   uint64
}

// TestDifferentialFaultVerdicts: for random out-of-bounds programs,
// each protection variant must reach the same verdict at every
// optimization level. In particular value-range elision must never
// remove the check that catches the injected fault, and check
// preemption must never turn a trapping program into a silent one (or
// vice versa).
func TestDifferentialFaultVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(1312))
	faults := []string{faultOverflow, faultStraddle, faultUnderflow}
	for trial := 0; trial < 24; trial++ {
		fault := faults[trial%len(faults)]
		src := genProgram(rng, fault)
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("trial %d: generated program invalid: %v\n%s", trial, err, src)
		}
		for _, kind := range diffVariants {
			var base verdict
			for li, lv := range optLevels {
				instrumented, _, err := Apply(mod, lv.opts)
				if err != nil {
					t.Fatalf("trial %d %s: %v", trial, lv.name, err)
				}
				env := newEnv(t, kind)
				got, runErr := interp.New(instrumented, env).Run("main")
				v := verdict{errored: runErr != nil, trapped: hooks.IsSafetyTrap(runErr)}
				if runErr == nil {
					v.value = got
				}
				if li == 0 {
					base = v
					continue
				}
				if v != base {
					t.Fatalf("trial %d (%s) %s: verdict diverged at %s: %+v vs %s %+v\n%s",
						trial, fault, kind, lv.name, v, optLevels[0].name, base, src)
				}
			}
			// The tag-carrying variants must actually detect overflow
			// and straddling accesses (underflow detection depends on
			// the encoding, so only cross-level agreement is required).
			if (kind == variant.SPP || kind == variant.SPPPacked) &&
				(fault == faultOverflow || fault == faultStraddle) && !base.trapped {
				t.Errorf("trial %d (%s) %s: out-of-bounds store not trapped\n%s",
					trial, fault, kind, src)
			}
		}
	}
}

// TestValueRangeElisionRate: over the random corpus, the loop fixture
// and the examples/compiler-pass IR fixtures, the value-range client
// must elide at least 20% of the bound checks that survive preemption
// and hoisting.
func TestValueRangeElisionRate(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var surviving, withElision int
	count := func(src string) {
		mod, err := ir.Parse(src)
		if err != nil {
			t.Fatalf("invalid program: %v\n%s", err, src)
		}
		_, base, err := Apply(mod, Options{DisableValueRange: true})
		if err != nil {
			t.Fatal(err)
		}
		_, full, err := Apply(mod, Options{})
		if err != nil {
			t.Fatal(err)
		}
		surviving += base.CheckBounds
		withElision += full.CheckBounds
	}
	for trial := 0; trial < 40; trial++ {
		count(genProgram(rng, faultNone))
	}
	count(loopProgram)
	fixtures, err := filepath.Glob(filepath.Join("..", "..", "examples", "compiler-pass", "*.ir"))
	if err != nil || len(fixtures) == 0 {
		t.Fatalf("no compiler-pass fixtures found: %v", err)
	}
	for _, fx := range fixtures {
		b, err := os.ReadFile(fx)
		if err != nil {
			t.Fatal(err)
		}
		count(string(b))
	}
	if surviving == 0 {
		t.Fatal("corpus produced no bound checks")
	}
	elided := surviving - withElision
	rate := float64(elided) / float64(surviving)
	t.Logf("bound checks surviving preemption+hoisting: %d, after elision: %d (%.0f%% elided)",
		surviving, withElision, rate*100)
	if rate < 0.20 {
		t.Errorf("elision rate %.1f%% below the 20%% acceptance bar", rate*100)
	}
}
