package indices

import (
	"math/rand"
	"testing"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
	"repro/internal/variant"
)

func TestBtreeBasic(t *testing.T) {
	env := newRT(t, variant.SPP)
	m, err := New("btree", env.RT)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "btree" {
		t.Errorf("Name = %q", m.Name())
	}
	for k := uint64(1); k <= 500; k++ {
		if err := m.Insert(k, k*7); err != nil {
			t.Fatalf("Insert(%d): %v", k, err)
		}
	}
	if n, _ := m.Count(); n != 500 {
		t.Fatalf("Count = %d", n)
	}
	for k := uint64(1); k <= 500; k++ {
		v, ok, err := m.Get(k)
		if err != nil || !ok || v != k*7 {
			t.Fatalf("Get(%d) = %d,%v,%v", k, v, ok, err)
		}
	}
	// Update in place.
	if err := m.Insert(100, 1); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := m.Get(100); v != 1 {
		t.Errorf("update lost: %d", v)
	}
	if n, _ := m.Count(); n != 500 {
		t.Errorf("Count after update = %d", n)
	}
	for k := uint64(1); k <= 250; k++ {
		ok, err := m.Remove(k)
		if err != nil || !ok {
			t.Fatalf("Remove(%d) = %v,%v", k, ok, err)
		}
	}
	if ok, _ := m.Remove(10); ok {
		t.Error("double remove succeeded")
	}
	if n, _ := m.Count(); n != 250 {
		t.Fatalf("Count after removes = %d", n)
	}
	for k := uint64(1); k <= 500; k++ {
		_, ok, _ := m.Get(k)
		if ok != (k > 250) {
			t.Fatalf("Get(%d) present=%v", k, ok)
		}
	}
}

// walkBtree recursively validates sortedness, occupancy and uniform
// leaf depth, collecting all pairs.
func walkBtree(t *testing.T, tr *btree, n pmemobj.Oid, lo, hi uint64, got map[uint64]uint64, isRoot bool) int {
	t.Helper()
	c := tr.c
	cnt := int(tr.nodeN(n))
	if err := c.Take(); err != nil {
		t.Fatal(err)
	}
	if cnt > btMaxItems {
		t.Fatalf("node holds %d items", cnt)
	}
	if !isRoot && cnt < btMinDeg-1 {
		t.Fatalf("non-root node holds %d items (< %d)", cnt, btMinDeg-1)
	}
	prev := lo
	leaf := tr.isLeaf(n)
	depth := -1
	for i := 0; i < cnt; i++ {
		k, v := tr.item(n, i)
		if err := c.Take(); err != nil {
			t.Fatal(err)
		}
		if k <= prev && !(i == 0 && k == lo && lo == 0) {
			if k <= prev {
				t.Fatalf("keys out of order: %d after %d", k, prev)
			}
		}
		if k >= hi {
			t.Fatalf("key %d outside bound %d", k, hi)
		}
		got[k] = v
		if !leaf {
			child := tr.child(n, i)
			d := walkBtree(t, tr, child, prev, k, got, false)
			if depth == -1 {
				depth = d
			} else if d != depth {
				t.Fatalf("uneven leaf depth: %d vs %d", d, depth)
			}
		}
		prev = k
	}
	if !leaf {
		child := tr.child(n, cnt)
		d := walkBtree(t, tr, child, prev, hi, got, false)
		if depth != -1 && d != depth {
			t.Fatalf("uneven leaf depth: %d vs %d", d, depth)
		}
		return d + 1
	}
	return 0
}

func checkBtree(t *testing.T, tr *btree, oracle map[uint64]uint64) {
	t.Helper()
	c := tr.c
	root := c.LoadOid(c.Direct(tr.hdr), 8)
	if err := c.Take(); err != nil {
		t.Fatal(err)
	}
	got := make(map[uint64]uint64)
	if !root.IsNull() {
		walkBtree(t, tr, root, 0, ^uint64(0), got, true)
	}
	if len(got) != len(oracle) {
		t.Fatalf("tree has %d keys, oracle %d", len(got), len(oracle))
	}
	for k, v := range oracle {
		if got[k] != v {
			t.Fatalf("key %d = %d, want %d", k, got[k], v)
		}
	}
	if n, err := tr.Count(); err != nil || n != uint64(len(oracle)) {
		t.Fatalf("Count = %d, %v; oracle %d", n, err, len(oracle))
	}
}

func TestBtreeOracleAndInvariants(t *testing.T) {
	env := newRT(t, variant.SPP)
	m, err := New("btree", env.RT)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.(*btree)
	oracle := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(21))
	for step := 0; step < 4000; step++ {
		k := uint64(rng.Intn(600)) + 1
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			if err := m.Insert(k, v); err != nil {
				t.Fatalf("step %d Insert: %v", step, err)
			}
			oracle[k] = v
		case 2:
			ok, err := m.Remove(k)
			if err != nil {
				t.Fatalf("step %d Remove: %v", step, err)
			}
			if _, want := oracle[k]; ok != want {
				t.Fatalf("step %d Remove(%d)=%v want %v", step, k, ok, want)
			}
			delete(oracle, k)
		}
		if step%500 == 0 {
			checkBtree(t, tr, oracle)
		}
	}
	checkBtree(t, tr, oracle)
	// Drain completely: the root must become null.
	for k := range oracle {
		if ok, err := m.Remove(k); !ok || err != nil {
			t.Fatalf("drain Remove(%d) = %v,%v", k, ok, err)
		}
	}
	if n, _ := m.Count(); n != 0 {
		t.Fatalf("Count after drain = %d", n)
	}
	if !tr.c.LoadOid(tr.c.Direct(tr.hdr), 8).IsNull() {
		t.Error("root not cleared after drain")
	}
	_ = tr.c.Take()
}

func TestBtreePersistsAcrossReopen(t *testing.T) {
	env := newRT(t, variant.SPP)
	m, err := New("btree", env.RT)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		if err := m.Insert(k, k^0xff); err != nil {
			t.Fatal(err)
		}
	}
	if err := env.Reopen(); err != nil {
		t.Fatal(err)
	}
	m2, err := New("btree", env.RT)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 200; k++ {
		v, ok, err := m2.Get(k)
		if err != nil || !ok || v != k^0xff {
			t.Fatalf("Get(%d) after reopen = %d,%v,%v", k, v, ok, err)
		}
	}
}

// TestBtreeMemmoveBugDetected reproduces pmem/pmdk#5333 inside the
// real insert path: with the full-node split guard disabled, the item
// shift memmove runs on a full node and writes one item past the node
// object. SPP traps it at the interposed memmove; native PMDK
// silently corrupts the neighbouring allocation.
func TestBtreeMemmoveBugDetected(t *testing.T) {
	trigger := func(kind variant.Kind) error {
		env := newRT(t, kind)
		m, err := New("btree", env.RT)
		if err != nil {
			t.Fatal(err)
		}
		tr := m.(*btree)
		// Fill the root to capacity with the guard ON.
		for k := uint64(10); k <= 70; k += 10 {
			if err := m.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		// Now insert a small key with the buggy path enabled: the
		// shift of 7 items overflows the items array.
		tr.BuggySplit = true
		return m.Insert(5, 5)
	}
	if err := trigger(variant.SPP); !hooks.IsSafetyTrap(err) {
		t.Errorf("SPP did not detect the btree memmove overflow: %v", err)
	}
	if err := trigger(variant.PMDK); err != nil {
		t.Errorf("native run errored (should corrupt silently): %v", err)
	}
}

func TestBtreeUnderAllVariants(t *testing.T) {
	for _, kind := range []variant.Kind{variant.PMDK, variant.SPP, variant.SafePM, variant.Memcheck, variant.SPPPacked} {
		t.Run(string(kind), func(t *testing.T) {
			env := newRT(t, kind)
			m, err := New("btree", env.RT)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(1); k <= 150; k++ {
				if err := m.Insert(k, k); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(1); k <= 150; k++ {
				if v, ok, err := m.Get(k); err != nil || !ok || v != k {
					t.Fatalf("Get(%d) = %d,%v,%v", k, v, ok, err)
				}
			}
			for k := uint64(1); k <= 150; k += 2 {
				if ok, err := m.Remove(k); !ok || err != nil {
					t.Fatalf("Remove(%d) = %v,%v", k, ok, err)
				}
			}
		})
	}
}
