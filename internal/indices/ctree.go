package indices

import (
	"math/bits"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
)

// ctree is a crit-bit tree over 64-bit keys, the PMDK ctree_map
// layout: internal nodes hold the critical-bit index and two children;
// leaves hold the key/value pair.
//
// Header object: {count u64, root oid}.
// Internal node:  {kind=1, diff u64, child[2] oid}.
// Leaf node:      {kind=0, key u64, value u64}.
type ctree struct {
	c       *ctx
	slotOff uint64      // root-slot holding the header oid
	hdr     pmemobj.Oid // header object
}

const (
	ctKind  = 0
	ctDiff  = 8 // internal: critical bit; leaf: key
	ctValue = 16
	ctChild = 16 // internal: child array base

	ctLeaf     = 0
	ctInternal = 1

	ctLeafSize = 24
)

func (t *ctree) hdrSize() uint64      { return 8 + uint64(t.c.OidSize) }
func (t *ctree) internalSize() uint64 { return 16 + 2*uint64(t.c.OidSize) }

func newCtree(rt hooks.Runtime, slotOff uint64) (*ctree, error) {
	c := newCtx(rt)
	t := &ctree{c: c, slotOff: slotOff}
	hdr := c.Pool.ReadOid(slotOff)
	if hdr.IsNull() {
		if err := rt.AllocAt(slotOff, t.hdrSize()); err != nil {
			return nil, err
		}
		hdr = c.Pool.ReadOid(slotOff)
	}
	t.hdr = hdr
	return t, nil
}

func (t *ctree) Name() string { return "ctree" }

// Count returns the stored key count.
func (t *ctree) Count() (uint64, error) {
	n := t.c.Load(t.c.Direct(t.hdr), 0)
	return n, t.c.Take()
}

// dir returns which child to follow for key at the given critical bit
// (bit index counted from the most significant bit).
func dir(key uint64, diff uint64) int64 {
	return int64(key >> (63 - diff) & 1)
}

// childOff returns the field offset of child d in an internal node.
func (t *ctree) childOff(d int64) int64 { return ctChild + d*t.c.OidSize }

// Get implements Map.
func (t *ctree) Get(key uint64) (uint64, bool, error) {
	c := t.c
	node := c.LoadOid(c.Direct(t.hdr), 8)
	for !node.IsNull() && c.Err() == nil {
		p := c.Direct(node)
		if c.Load(p, ctKind) == ctLeaf {
			if c.Load(p, ctDiff) == key {
				v := c.Load(p, ctValue)
				return v, true, c.Take()
			}
			return 0, false, c.Take()
		}
		node = c.LoadOid(p, t.childOff(dir(key, c.Load(p, ctDiff))))
	}
	return 0, false, c.Take()
}

func (t *ctree) newLeaf(tx *pmemobj.Tx, key, value uint64) pmemobj.Oid {
	c := t.c
	if c.Err() != nil {
		return pmemobj.OidNull
	}
	oid, err := c.RT.TxAlloc(tx, ctLeafSize)
	if err != nil {
		c.Fail(err)
		return pmemobj.OidNull
	}
	p := c.Direct(oid)
	c.Store(p, ctKind, ctLeaf)
	c.Store(p, ctDiff, key)
	c.Store(p, ctValue, value)
	return oid
}

// bumpCount adjusts the header count by delta inside the transaction.
func (t *ctree) bumpCount(tx *pmemobj.Tx, delta int64) {
	c := t.c
	c.Snapshot(tx, t.hdr, t.hdrSize())
	p := c.Direct(t.hdr)
	c.Store(p, 0, c.Load(p, 0)+uint64(delta))
}

// Insert implements Map.
func (t *ctree) Insert(key, value uint64) error {
	c := t.c
	return c.Run(func(tx *pmemobj.Tx) {
		hp := c.Direct(t.hdr)
		root := c.LoadOid(hp, 8)
		if root.IsNull() {
			leaf := t.newLeaf(tx, key, value)
			t.bumpCount(tx, 1)
			c.StoreOid(c.Direct(t.hdr), 8, leaf)
			return
		}

		// Descend to the closest leaf.
		node := root
		for c.Err() == nil {
			p := c.Direct(node)
			if c.Load(p, ctKind) == ctLeaf {
				break
			}
			node = c.LoadOid(p, t.childOff(dir(key, c.Load(p, ctDiff))))
		}
		if c.Err() != nil {
			return
		}
		leafP := c.Direct(node)
		leafKey := c.Load(leafP, ctDiff)
		if leafKey == key {
			c.Snapshot(tx, node, ctLeafSize)
			c.Store(c.Direct(node), ctValue, value)
			return
		}
		diff := uint64(bits.LeadingZeros64(key ^ leafKey))

		// Walk again to the insertion point: the first position whose
		// node is a leaf or has a critical bit below the new one.
		parent := pmemobj.OidNull // internal node owning the slot
		var slotField int64
		node = root
		for c.Err() == nil {
			p := c.Direct(node)
			if c.Load(p, ctKind) == ctLeaf || c.Load(p, ctDiff) > diff {
				break
			}
			parent = node
			slotField = t.childOff(dir(key, c.Load(p, ctDiff)))
			node = c.LoadOid(p, slotField)
		}
		if c.Err() != nil {
			return
		}

		// Build the new internal node with the new leaf and the
		// displaced subtree as children.
		internal, err := c.RT.TxAlloc(tx, t.internalSize())
		if err != nil {
			c.Fail(err)
			return
		}
		newLeaf := t.newLeaf(tx, key, value)
		ip := c.Direct(internal)
		c.Store(ip, ctKind, ctInternal)
		c.Store(ip, ctDiff, diff)
		d := dir(key, diff)
		c.StoreOid(ip, t.childOff(d), newLeaf)
		c.StoreOid(ip, t.childOff(1-d), node)

		t.bumpCount(tx, 1)
		if parent.IsNull() {
			c.StoreOid(c.Direct(t.hdr), 8, internal)
		} else {
			c.Snapshot(tx, parent, t.internalSize())
			c.StoreOid(c.Direct(parent), slotField, internal)
		}
	})
}

// Remove implements Map.
func (t *ctree) Remove(key uint64) (bool, error) {
	c := t.c
	removed := false
	err := c.Run(func(tx *pmemobj.Tx) {
		hp := c.Direct(t.hdr)
		root := c.LoadOid(hp, 8)
		if root.IsNull() {
			return
		}

		var parent, grand pmemobj.Oid
		var parentField, grandField int64
		node := root
		for c.Err() == nil {
			p := c.Direct(node)
			if c.Load(p, ctKind) == ctLeaf {
				break
			}
			grand, grandField = parent, parentField
			parent = node
			parentField = t.childOff(dir(key, c.Load(p, ctDiff)))
			node = c.LoadOid(p, parentField)
		}
		if c.Err() != nil {
			return
		}
		if c.Load(c.Direct(node), ctDiff) != key {
			return
		}
		removed = true
		t.bumpCount(tx, -1)

		if parent.IsNull() {
			// The leaf is the root.
			c.StoreOid(c.Direct(t.hdr), 8, pmemobj.OidNull)
			if err := c.RT.TxFree(tx, node); err != nil {
				c.Fail(err)
			}
			return
		}
		// Splice the sibling into the grandparent slot.
		pp := c.Direct(parent)
		var sibField int64
		if parentField == t.childOff(0) {
			sibField = t.childOff(1)
		} else {
			sibField = t.childOff(0)
		}
		sibling := c.LoadOid(pp, sibField)
		if grand.IsNull() {
			c.StoreOid(c.Direct(t.hdr), 8, sibling)
		} else {
			c.Snapshot(tx, grand, t.internalSize())
			c.StoreOid(c.Direct(grand), grandField, sibling)
		}
		if err := c.RT.TxFree(tx, node); err != nil {
			c.Fail(err)
		}
		if c.Err() == nil {
			if err := c.RT.TxFree(tx, parent); err != nil {
				c.Fail(err)
			}
		}
	})
	return removed, err
}
