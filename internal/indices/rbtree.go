package indices

import (
	"repro/internal/hooks"
	"repro/internal/pmemobj"
)

// rbtree is a persistent red-black tree following PMDK's rbtree_map:
// a sentinel node serves as NIL and a fake root node's left child
// holds the actual tree root, which makes rotations and transplants
// uniform (no nil special cases).
//
// Header object: {count u64, sentinel oid, fakeroot oid}.
// Node object:   {key u64, value u64, color u64, parent oid, left oid,
//
//	right oid}.
type rbtree struct {
	c    *ctx
	hdr  pmemobj.Oid
	sent pmemobj.Oid // sentinel (NIL)
	root pmemobj.Oid // fake root; left child is the tree root
}

const (
	rbKey    = 0
	rbValue  = 8
	rbColor  = 16
	rbParent = 24

	rbBlack = 0
	rbRed   = 1
)

func (t *rbtree) leftOff() int64   { return rbParent + t.c.OidSize }
func (t *rbtree) rightOff() int64  { return rbParent + 2*t.c.OidSize }
func (t *rbtree) nodeSize() uint64 { return 24 + 3*uint64(t.c.OidSize) }
func (t *rbtree) hdrSize() uint64  { return 8 + 2*uint64(t.c.OidSize) }

func newRbtree(rt hooks.Runtime, slotOff uint64) (*rbtree, error) {
	c := newCtx(rt)
	t := &rbtree{c: c}
	hdr := c.Pool.ReadOid(slotOff)
	if hdr.IsNull() {
		if err := rt.AllocAt(slotOff, t.hdrSize()); err != nil {
			return nil, err
		}
		hdr = c.Pool.ReadOid(slotOff)
		t.hdr = hdr
		err := c.Run(func(tx *pmemobj.Tx) {
			sent, err := rt.TxAlloc(tx, t.nodeSize())
			if err != nil {
				c.Fail(err)
				return
			}
			fake, err := rt.TxAlloc(tx, t.nodeSize())
			if err != nil {
				c.Fail(err)
				return
			}
			// Sentinel: black, self-referential.
			sp := c.Direct(sent)
			c.Store(sp, rbColor, rbBlack)
			c.StoreOid(sp, rbParent, sent)
			c.StoreOid(sp, t.leftOff(), sent)
			c.StoreOid(sp, t.rightOff(), sent)
			// Fake root: black, children point at the sentinel.
			fp := c.Direct(fake)
			c.Store(fp, rbColor, rbBlack)
			c.StoreOid(fp, rbParent, sent)
			c.StoreOid(fp, t.leftOff(), sent)
			c.StoreOid(fp, t.rightOff(), sent)
			c.Snapshot(tx, hdr, t.hdrSize())
			hp := c.Direct(hdr)
			c.StoreOid(hp, 8, sent)
			c.StoreOid(hp, 8+c.OidSize, fake)
		})
		if err != nil {
			return nil, err
		}
	}
	t.hdr = hdr
	hp := c.Direct(hdr)
	t.sent = c.LoadOid(hp, 8)
	t.root = c.LoadOid(hp, 8+c.OidSize)
	if err := c.Take(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *rbtree) Name() string { return "rbtree" }

// Count implements Map.
func (t *rbtree) Count() (uint64, error) {
	n := t.c.Load(t.c.Direct(t.hdr), 0)
	return n, t.c.Take()
}

// opCtx tracks which nodes the current transaction has snapshotted so
// each node is copied into the undo log once.
type opCtx struct {
	t       *rbtree
	tx      *pmemobj.Tx
	snapped map[uint64]struct{}
}

func (t *rbtree) op(tx *pmemobj.Tx) *opCtx {
	return &opCtx{t: t, tx: tx, snapped: make(map[uint64]struct{}, 16)}
}

func (o *opCtx) snap(n pmemobj.Oid) {
	if _, ok := o.snapped[n.Off]; ok {
		return
	}
	o.snapped[n.Off] = struct{}{}
	o.t.c.Snapshot(o.tx, n, o.t.nodeSize())
}

// Field accessors. Loads go through the instrumented interface; stores
// snapshot the node first.

func (t *rbtree) key(n pmemobj.Oid) uint64   { return t.c.Load(t.c.Direct(n), rbKey) }
func (t *rbtree) value(n pmemobj.Oid) uint64 { return t.c.Load(t.c.Direct(n), rbValue) }
func (t *rbtree) color(n pmemobj.Oid) uint64 { return t.c.Load(t.c.Direct(n), rbColor) }
func (t *rbtree) parent(n pmemobj.Oid) pmemobj.Oid {
	return t.c.LoadOid(t.c.Direct(n), rbParent)
}
func (t *rbtree) left(n pmemobj.Oid) pmemobj.Oid {
	return t.c.LoadOid(t.c.Direct(n), t.leftOff())
}
func (t *rbtree) right(n pmemobj.Oid) pmemobj.Oid {
	return t.c.LoadOid(t.c.Direct(n), t.rightOff())
}

func (o *opCtx) setKey(n pmemobj.Oid, v uint64) {
	o.snap(n)
	o.t.c.Store(o.t.c.Direct(n), rbKey, v)
}
func (o *opCtx) setValue(n pmemobj.Oid, v uint64) {
	o.snap(n)
	o.t.c.Store(o.t.c.Direct(n), rbValue, v)
}
func (o *opCtx) setColor(n pmemobj.Oid, v uint64) {
	o.snap(n)
	o.t.c.Store(o.t.c.Direct(n), rbColor, v)
}
func (o *opCtx) setParent(n, v pmemobj.Oid) {
	o.snap(n)
	o.t.c.StoreOid(o.t.c.Direct(n), rbParent, v)
}
func (o *opCtx) setLeft(n, v pmemobj.Oid) {
	o.snap(n)
	o.t.c.StoreOid(o.t.c.Direct(n), o.t.leftOff(), v)
}
func (o *opCtx) setRight(n, v pmemobj.Oid) {
	o.snap(n)
	o.t.c.StoreOid(o.t.c.Direct(n), o.t.rightOff(), v)
}

// find returns the node with the given key, or the sentinel.
func (t *rbtree) find(key uint64) pmemobj.Oid {
	n := t.left(t.root)
	for n.Off != t.sent.Off && t.c.Err() == nil {
		k := t.key(n)
		switch {
		case key == k:
			return n
		case key < k:
			n = t.left(n)
		default:
			n = t.right(n)
		}
	}
	return t.sent
}

// Get implements Map.
func (t *rbtree) Get(key uint64) (uint64, bool, error) {
	n := t.find(key)
	if t.c.Err() == nil && n.Off != t.sent.Off {
		v := t.value(n)
		return v, true, t.c.Take()
	}
	return 0, false, t.c.Take()
}

func (o *opCtx) rotateLeft(x pmemobj.Oid) {
	t := o.t
	y := t.right(x)
	o.setRight(x, t.left(y))
	if l := t.left(y); l.Off != t.sent.Off {
		o.setParent(l, x)
	}
	xp := t.parent(x)
	o.setParent(y, xp)
	if t.left(xp).Off == x.Off {
		o.setLeft(xp, y)
	} else {
		o.setRight(xp, y)
	}
	o.setLeft(y, x)
	o.setParent(x, y)
}

func (o *opCtx) rotateRight(x pmemobj.Oid) {
	t := o.t
	y := t.left(x)
	o.setLeft(x, t.right(y))
	if r := t.right(y); r.Off != t.sent.Off {
		o.setParent(r, x)
	}
	xp := t.parent(x)
	o.setParent(y, xp)
	if t.left(xp).Off == x.Off {
		o.setLeft(xp, y)
	} else {
		o.setRight(xp, y)
	}
	o.setRight(y, x)
	o.setParent(x, y)
}

// Insert implements Map.
func (t *rbtree) Insert(key, value uint64) error {
	c := t.c
	return c.Run(func(tx *pmemobj.Tx) {
		o := t.op(tx)

		// BST descent from the fake root.
		parent := t.root
		n := t.left(t.root)
		goLeft := true
		for n.Off != t.sent.Off && c.Err() == nil {
			k := t.key(n)
			if k == key {
				o.setValue(n, value)
				return
			}
			parent = n
			goLeft = key < k
			if goLeft {
				n = t.left(n)
			} else {
				n = t.right(n)
			}
		}
		if c.Err() != nil {
			return
		}

		fresh, err := c.RT.TxAlloc(tx, t.nodeSize())
		if err != nil {
			c.Fail(err)
			return
		}
		fp := c.Direct(fresh)
		c.Store(fp, rbKey, key)
		c.Store(fp, rbValue, value)
		c.Store(fp, rbColor, rbRed)
		c.StoreOid(fp, rbParent, parent)
		c.StoreOid(fp, t.leftOff(), t.sent)
		c.StoreOid(fp, t.rightOff(), t.sent)
		if goLeft {
			o.setLeft(parent, fresh)
		} else {
			o.setRight(parent, fresh)
		}

		t.insertFixup(o, fresh)

		c.Snapshot(tx, t.hdr, 8)
		hp := c.Direct(t.hdr)
		c.Store(hp, 0, c.Load(hp, 0)+1)
	})
}

func (t *rbtree) insertFixup(o *opCtx, z pmemobj.Oid) {
	c := t.c
	for c.Err() == nil {
		zp := t.parent(z)
		if zp.Off == t.root.Off || t.color(zp) == rbBlack {
			break
		}
		zpp := t.parent(zp)
		if t.left(zpp).Off == zp.Off {
			y := t.right(zpp) // uncle
			if t.color(y) == rbRed {
				o.setColor(zp, rbBlack)
				o.setColor(y, rbBlack)
				o.setColor(zpp, rbRed)
				z = zpp
				continue
			}
			if t.right(zp).Off == z.Off {
				z = zp
				o.rotateLeft(z)
				zp = t.parent(z)
				zpp = t.parent(zp)
			}
			o.setColor(zp, rbBlack)
			o.setColor(zpp, rbRed)
			o.rotateRight(zpp)
		} else {
			y := t.left(zpp)
			if t.color(y) == rbRed {
				o.setColor(zp, rbBlack)
				o.setColor(y, rbBlack)
				o.setColor(zpp, rbRed)
				z = zpp
				continue
			}
			if t.left(zp).Off == z.Off {
				z = zp
				o.rotateRight(z)
				zp = t.parent(z)
				zpp = t.parent(zp)
			}
			o.setColor(zp, rbBlack)
			o.setColor(zpp, rbRed)
			o.rotateLeft(zpp)
		}
	}
	if c.Err() == nil {
		root := t.left(t.root)
		if root.Off != t.sent.Off && t.color(root) != rbBlack {
			o.setColor(root, rbBlack)
		}
	}
}

// Remove implements Map.
func (t *rbtree) Remove(key uint64) (bool, error) {
	c := t.c
	removed := false
	err := c.Run(func(tx *pmemobj.Tx) {
		z := t.find(key)
		if c.Err() != nil || z.Off == t.sent.Off {
			return
		}
		removed = true
		o := t.op(tx)

		// y is the node physically removed; x replaces it.
		y := z
		if t.left(z).Off != t.sent.Off && t.right(z).Off != t.sent.Off {
			// Two children: take the successor.
			y = t.right(z)
			for t.left(y).Off != t.sent.Off && c.Err() == nil {
				y = t.left(y)
			}
		}
		var x pmemobj.Oid
		if t.left(y).Off != t.sent.Off {
			x = t.left(y)
		} else {
			x = t.right(y)
		}
		yp := t.parent(y)
		o.setParent(x, yp) // sentinel's parent is legal scratch state
		if t.left(yp).Off == y.Off {
			o.setLeft(yp, x)
		} else {
			o.setRight(yp, x)
		}
		if y.Off != z.Off {
			o.setKey(z, t.key(y))
			o.setValue(z, t.value(y))
		}
		if t.color(y) == rbBlack {
			t.deleteFixup(o, x)
		}
		if c.Err() == nil {
			if err := c.RT.TxFree(tx, y); err != nil {
				c.Fail(err)
				return
			}
		}
		c.Snapshot(tx, t.hdr, 8)
		hp := c.Direct(t.hdr)
		c.Store(hp, 0, c.Load(hp, 0)-1)
	})
	return removed, err
}

func (t *rbtree) deleteFixup(o *opCtx, x pmemobj.Oid) {
	c := t.c
	for c.Err() == nil {
		root := t.left(t.root)
		if x.Off == root.Off || t.color(x) == rbRed {
			break
		}
		xp := t.parent(x)
		if t.left(xp).Off == x.Off {
			w := t.right(xp)
			if t.color(w) == rbRed {
				o.setColor(w, rbBlack)
				o.setColor(xp, rbRed)
				o.rotateLeft(xp)
				xp = t.parent(x)
				w = t.right(xp)
			}
			if t.color(t.left(w)) == rbBlack && t.color(t.right(w)) == rbBlack {
				o.setColor(w, rbRed)
				x = xp
				continue
			}
			if t.color(t.right(w)) == rbBlack {
				o.setColor(t.left(w), rbBlack)
				o.setColor(w, rbRed)
				o.rotateRight(w)
				xp = t.parent(x)
				w = t.right(xp)
			}
			o.setColor(w, t.color(xp))
			o.setColor(xp, rbBlack)
			o.setColor(t.right(w), rbBlack)
			o.rotateLeft(xp)
			break
		}
		w := t.left(xp)
		if t.color(w) == rbRed {
			o.setColor(w, rbBlack)
			o.setColor(xp, rbRed)
			o.rotateRight(xp)
			xp = t.parent(x)
			w = t.left(xp)
		}
		if t.color(t.right(w)) == rbBlack && t.color(t.left(w)) == rbBlack {
			o.setColor(w, rbRed)
			x = xp
			continue
		}
		if t.color(t.left(w)) == rbBlack {
			o.setColor(t.right(w), rbBlack)
			o.setColor(w, rbRed)
			o.rotateLeft(w)
			xp = t.parent(x)
			w = t.left(xp)
		}
		o.setColor(w, t.color(xp))
		o.setColor(xp, rbBlack)
		o.setColor(t.left(w), rbBlack)
		o.rotateRight(xp)
		break
	}
	if c.Err() == nil {
		o.setColor(x, rbBlack)
	}
}
