package indices

import (
	"math/rand"
	"testing"

	"repro/internal/hooks"

	"repro/internal/pmemobj"
	"repro/internal/variant"
)

func newRT(t *testing.T, kind variant.Kind) *variant.Env {
	t.Helper()
	env, err := variant.New(kind, variant.Options{PoolSize: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestNewRejectsUnknownKind(t *testing.T) {
	env := newRT(t, variant.PMDK)
	if _, err := New("splaytree", env.RT); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestBasicInsertGetRemove(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind, func(t *testing.T) {
			env := newRT(t, variant.SPP)
			m, err := New(kind, env.RT)
			if err != nil {
				t.Fatal(err)
			}
			if m.Name() != kind {
				t.Errorf("Name = %q", m.Name())
			}
			for k := uint64(1); k <= 100; k++ {
				if err := m.Insert(k, k*10); err != nil {
					t.Fatalf("Insert(%d): %v", k, err)
				}
			}
			if n, err := m.Count(); err != nil || n != 100 {
				t.Errorf("Count = %d, %v", n, err)
			}
			for k := uint64(1); k <= 100; k++ {
				v, ok, err := m.Get(k)
				if err != nil || !ok || v != k*10 {
					t.Fatalf("Get(%d) = %d, %v, %v", k, v, ok, err)
				}
			}
			if _, ok, _ := m.Get(1000); ok {
				t.Error("Get(absent) found")
			}
			// Update in place.
			if err := m.Insert(50, 999); err != nil {
				t.Fatal(err)
			}
			if v, _, _ := m.Get(50); v != 999 {
				t.Errorf("updated value = %d", v)
			}
			if n, _ := m.Count(); n != 100 {
				t.Errorf("Count after update = %d", n)
			}
			// Remove half.
			for k := uint64(1); k <= 50; k++ {
				ok, err := m.Remove(k)
				if err != nil || !ok {
					t.Fatalf("Remove(%d) = %v, %v", k, ok, err)
				}
			}
			if ok, _ := m.Remove(25); ok {
				t.Error("double remove succeeded")
			}
			if n, _ := m.Count(); n != 50 {
				t.Errorf("Count after removes = %d", n)
			}
			for k := uint64(1); k <= 100; k++ {
				_, ok, err := m.Get(k)
				if err != nil {
					t.Fatal(err)
				}
				if ok != (k > 50) {
					t.Errorf("Get(%d) present=%v", k, ok)
				}
			}
		})
	}
}

// TestOracleRandomOps runs a random operation mix against a Go map
// oracle for every index kind and every variant.
func TestOracleRandomOps(t *testing.T) {
	for _, vk := range []variant.Kind{variant.PMDK, variant.SPP, variant.SafePM, variant.Memcheck} {
		for _, kind := range Kinds {
			t.Run(string(vk)+"/"+kind, func(t *testing.T) {
				env := newRT(t, vk)
				m, err := New(kind, env.RT)
				if err != nil {
					t.Fatal(err)
				}
				oracle := make(map[uint64]uint64)
				rng := rand.New(rand.NewSource(7))
				const keySpace = 300
				for step := 0; step < 1500; step++ {
					key := uint64(rng.Intn(keySpace)) + 1
					switch rng.Intn(3) {
					case 0:
						val := rng.Uint64()
						if err := m.Insert(key, val); err != nil {
							t.Fatalf("step %d Insert: %v", step, err)
						}
						oracle[key] = val
					case 1:
						got, ok, err := m.Get(key)
						if err != nil {
							t.Fatalf("step %d Get: %v", step, err)
						}
						want, wantOk := oracle[key]
						if ok != wantOk || (ok && got != want) {
							t.Fatalf("step %d Get(%d) = %d,%v want %d,%v", step, key, got, ok, want, wantOk)
						}
					case 2:
						ok, err := m.Remove(key)
						if err != nil {
							t.Fatalf("step %d Remove: %v", step, err)
						}
						_, wantOk := oracle[key]
						if ok != wantOk {
							t.Fatalf("step %d Remove(%d) = %v want %v", step, key, ok, wantOk)
						}
						delete(oracle, key)
					}
				}
				if n, err := m.Count(); err != nil || n != uint64(len(oracle)) {
					t.Errorf("final Count = %d, %v; oracle %d", n, err, len(oracle))
				}
				for k, want := range oracle {
					got, ok, err := m.Get(k)
					if err != nil || !ok || got != want {
						t.Errorf("final Get(%d) = %d,%v,%v want %d", k, got, ok, err, want)
					}
				}
			})
		}
	}
}

// TestPersistenceAcrossReopen checks that indices are found and intact
// after a simulated restart, including tagged-pointer reconstruction
// under SPP (design goal #4).
func TestPersistenceAcrossReopen(t *testing.T) {
	for _, vk := range []variant.Kind{variant.PMDK, variant.SPP, variant.SafePM} {
		for _, kind := range Kinds {
			t.Run(string(vk)+"/"+kind, func(t *testing.T) {
				env := newRT(t, vk)
				m, err := New(kind, env.RT)
				if err != nil {
					t.Fatal(err)
				}
				for k := uint64(1); k <= 200; k++ {
					if err := m.Insert(k, k^0xabcd); err != nil {
						t.Fatal(err)
					}
				}
				if err := env.Reopen(); err != nil {
					t.Fatal(err)
				}
				m2, err := New(kind, env.RT)
				if err != nil {
					t.Fatal(err)
				}
				if n, err := m2.Count(); err != nil || n != 200 {
					t.Fatalf("Count after reopen = %d, %v", n, err)
				}
				for k := uint64(1); k <= 200; k++ {
					v, ok, err := m2.Get(k)
					if err != nil || !ok || v != k^0xabcd {
						t.Fatalf("Get(%d) after reopen = %d,%v,%v", k, v, ok, err)
					}
				}
				if _, err := m2.Remove(10); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestCrashDuringInsertLeavesConsistentIndex injects a power loss
// mid-transaction and checks the index recovers to the pre-operation
// state.
func TestCrashDuringInsertLeavesConsistentIndex(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind, func(t *testing.T) {
			env := newRT(t, variant.SPP)
			m, err := New(kind, env.RT)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(1); k <= 50; k++ {
				if err := m.Insert(k, k); err != nil {
					t.Fatal(err)
				}
			}
			// Begin a transaction that dirties the index and crash by
			// reopening without commit: every index op is internally
			// transactional, so instead simulate the crash window by
			// snapshotting state mid-op via the device crash hook.
			dev := env.Dev
			dev.EnableTracking(nil)
			_ = m.Insert(51, 51) // fully persisted op: survives
			if err := dev.Crash(); err != nil {
				t.Fatal(err)
			}
			dev.DisableTracking()
			if err := env.Reopen(); err != nil {
				t.Fatal(err)
			}
			m2, err := New(kind, env.RT)
			if err != nil {
				t.Fatal(err)
			}
			// Whatever happened to key 51, keys 1..50 must be intact
			// and the structure walkable.
			for k := uint64(1); k <= 50; k++ {
				v, ok, err := m2.Get(k)
				if err != nil || !ok || v != k {
					t.Fatalf("Get(%d) after crash = %d,%v,%v", k, v, ok, err)
				}
			}
		})
	}
}

// TestRbtreeInvariants validates the red-black properties after a
// random workload: root black, no red-red edges, equal black heights.
func TestRbtreeInvariants(t *testing.T) {
	env := newRT(t, variant.SPP)
	m, err := New("rbtree", env.RT)
	if err != nil {
		t.Fatal(err)
	}
	tr, ok := m.(*rbtree)
	if !ok {
		t.Fatal("not an rbtree")
	}
	rng := rand.New(rand.NewSource(3))
	live := make(map[uint64]bool)
	for i := 0; i < 2000; i++ {
		k := uint64(rng.Intn(500)) + 1
		if rng.Intn(3) == 0 {
			if _, err := m.Remove(k); err != nil {
				t.Fatal(err)
			}
			delete(live, k)
		} else {
			if err := m.Insert(k, k); err != nil {
				t.Fatal(err)
			}
			live[k] = true
		}
		if i%200 == 0 {
			checkRB(t, tr)
		}
	}
	checkRB(t, tr)
	if n, _ := m.Count(); n != uint64(len(live)) {
		t.Errorf("Count = %d, oracle %d", n, len(live))
	}
}

// checkRB verifies red-black invariants and BST ordering.
func checkRB(t *testing.T, tr *rbtree) {
	t.Helper()
	root := tr.left(tr.root)
	if err := tr.c.Take(); err != nil {
		t.Fatal(err)
	}
	if root.Off != tr.sent.Off && tr.color(root) != rbBlack {
		t.Fatal("root is not black")
	}
	var walk func(n pmemobj.Oid, lo, hi uint64) int
	walk = func(n pmemobj.Oid, lo, hi uint64) int {
		if n.Off == tr.sent.Off {
			return 1
		}
		k := tr.key(n)
		if k <= lo || k >= hi {
			t.Fatalf("BST violation: key %d outside (%d, %d)", k, lo, hi)
		}
		c := tr.color(n)
		l, r := tr.left(n), tr.right(n)
		if c == rbRed {
			if tr.color(l) == rbRed || tr.color(r) == rbRed {
				t.Fatal("red-red edge")
			}
		}
		lb := walk(l, lo, k)
		rb := walk(r, k, hi)
		if lb != rb {
			t.Fatalf("black-height mismatch at key %d: %d vs %d", k, lb, rb)
		}
		if err := tr.c.Take(); err != nil {
			t.Fatal(err)
		}
		if c == rbBlack {
			return lb + 1
		}
		return lb
	}
	walk(root, 0, ^uint64(0))
}

// TestRtreeByteKeys exercises path compression with variable-length
// string keys.
func TestRtreeByteKeys(t *testing.T) {
	env := newRT(t, variant.SPP)
	m, err := New("rtree", env.RT)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.(*rtree)
	keys := []string{
		"", "a", "ab", "abc", "abcd", "abd", "b", "ba",
		"romane", "romanus", "romulus", "rubens", "ruber", "rubicon", "rubicundus",
	}
	for i, k := range keys {
		if err := tr.InsertBytes([]byte(k), uint64(i+1)); err != nil {
			t.Fatalf("InsertBytes(%q): %v", k, err)
		}
	}
	for i, k := range keys {
		v, ok, err := tr.GetBytes([]byte(k))
		if err != nil || !ok || v != uint64(i+1) {
			t.Fatalf("GetBytes(%q) = %d,%v,%v", k, v, ok, err)
		}
	}
	if _, ok, _ := tr.GetBytes([]byte("roman")); ok {
		t.Error("prefix-only key found")
	}
	if _, ok, _ := tr.GetBytes([]byte("rubiconX")); ok {
		t.Error("extension key found")
	}
	// Remove a middle key; its extensions survive.
	if ok, err := tr.RemoveBytes([]byte("ruber")); !ok || err != nil {
		t.Fatalf("RemoveBytes = %v, %v", ok, err)
	}
	if _, ok, _ := tr.GetBytes([]byte("ruber")); ok {
		t.Error("removed key still present")
	}
	if v, ok, _ := tr.GetBytes([]byte("rubens")); !ok || v != 12 {
		t.Errorf("sibling damaged: %d %v", v, ok)
	}
	// Oversized keys rejected.
	if err := tr.InsertBytes(make([]byte, rtMaxPrefix+1), 1); err == nil {
		t.Error("oversized key accepted")
	}
}

// TestSpaceOverheadShape is the qualitative Table III check: rtree
// space blows up under SPP (256 oids/node), the others barely move.
func TestSpaceOverheadShape(t *testing.T) {
	used := func(vk variant.Kind, kind string) uint64 {
		env := newRT(t, vk)
		m, err := New(kind, env.RT)
		if err != nil {
			t.Fatal(err)
		}
		for k := uint64(1); k <= 500; k++ {
			if err := m.Insert(k, k); err != nil {
				t.Fatal(err)
			}
		}
		return env.Pool.Stats().AllocatedBytes
	}
	for _, kind := range []string{"ctree", "rtree"} {
		pmdk := used(variant.PMDK, kind)
		spp := used(variant.SPP, kind)
		ratio := float64(spp)/float64(pmdk) - 1
		t.Logf("%s: pmdk=%d spp=%d overhead=%.1f%%", kind, pmdk, spp, ratio*100)
		if kind == "rtree" && (ratio < 0.30 || ratio > 0.50) {
			t.Errorf("rtree overhead %.1f%%, expected ~40%%", ratio*100)
		}
		if kind == "ctree" && ratio > 0.05 {
			t.Errorf("ctree overhead %.1f%%, expected ~0%% (size classes absorb the oid growth)", ratio*100)
		}
	}
}

// TestPackedVariantWorksAndCostsNothing exercises every index under the
// future-work packed-oid layout: full functionality with 16-byte oids
// and zero space overhead versus native PMDK.
func TestPackedVariantWorksAndCostsNothing(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind, func(t *testing.T) {
			env := newRT(t, variant.SPPPacked)
			m, err := New(kind, env.RT)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(1); k <= 300; k++ {
				if err := m.Insert(k, k*3); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(1); k <= 300; k++ {
				v, ok, err := m.Get(k)
				if err != nil || !ok || v != k*3 {
					t.Fatalf("Get(%d) = %d,%v,%v", k, v, ok, err)
				}
			}
			for k := uint64(1); k <= 150; k++ {
				if ok, err := m.Remove(k); !ok || err != nil {
					t.Fatalf("Remove(%d) = %v,%v", k, ok, err)
				}
			}
			packed := env.Pool.Stats().AllocatedBytes

			envP := newRT(t, variant.PMDK)
			mp, err := New(kind, envP.RT)
			if err != nil {
				t.Fatal(err)
			}
			for k := uint64(1); k <= 300; k++ {
				if err := mp.Insert(k, k*3); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(1); k <= 150; k++ {
				if _, err := mp.Remove(k); err != nil {
					t.Fatal(err)
				}
			}
			if pmdk := envP.Pool.Stats().AllocatedBytes; packed != pmdk {
				t.Errorf("packed usage %d != pmdk %d (should be identical)", packed, pmdk)
			}
			// Bounds still enforced: over-read of an index node traps.
			oid, err := env.RT.Alloc(32)
			if err != nil {
				t.Fatal(err)
			}
			p := env.RT.Direct(oid)
			if _, err := hooks.LoadU64(env.RT, env.RT.Gep(p, 32)); !hooks.IsSafetyTrap(err) {
				t.Errorf("packed variant lost protection: %v", err)
			}
		})
	}
}

// TestForEachVisitsEverything: every index's walker yields exactly the
// oracle's pairs; the rbtree's arrives sorted.
func TestForEachVisitsEverything(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(kind, func(t *testing.T) {
			env := newRT(t, variant.SPP)
			m, err := New(kind, env.RT)
			if err != nil {
				t.Fatal(err)
			}
			oracle := make(map[uint64]uint64)
			rng := rand.New(rand.NewSource(5))
			for i := 0; i < 400; i++ {
				k := uint64(rng.Intn(1000)) + 1
				v := rng.Uint64()
				if err := m.Insert(k, v); err != nil {
					t.Fatal(err)
				}
				oracle[k] = v
			}
			w, ok := m.(Walker)
			if !ok {
				t.Fatalf("%s does not implement Walker", kind)
			}
			got := make(map[uint64]uint64)
			var prev uint64
			ordered := true
			if err := w.ForEach(func(k, v uint64) bool {
				if k <= prev && len(got) > 0 {
					ordered = false
				}
				prev = k
				got[k] = v
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(oracle) {
				t.Fatalf("visited %d pairs, oracle has %d", len(got), len(oracle))
			}
			for k, v := range oracle {
				if got[k] != v {
					t.Errorf("key %d = %d, want %d", k, got[k], v)
				}
			}
			if kind == "rbtree" && !ordered {
				t.Error("rbtree ForEach not in key order")
			}
			// Early termination stops the walk.
			count := 0
			if err := w.ForEach(func(k, v uint64) bool {
				count++
				return count < 10
			}); err != nil {
				t.Fatal(err)
			}
			if count != 10 {
				t.Errorf("early-stop visited %d", count)
			}
		})
	}
}

func TestRbtreeOrderedQueries(t *testing.T) {
	env := newRT(t, variant.SPP)
	m, err := New("rbtree", env.RT)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.(*rbtree)
	// Empty tree.
	if _, _, ok, err := tr.Min(); ok || err != nil {
		t.Errorf("Min on empty = %v, %v", ok, err)
	}
	if _, _, ok, err := tr.Max(); ok || err != nil {
		t.Errorf("Max on empty = %v, %v", ok, err)
	}
	for _, k := range []uint64{50, 10, 90, 30, 70, 20, 80} {
		if err := m.Insert(k, k*2); err != nil {
			t.Fatal(err)
		}
	}
	if k, v, ok, err := tr.Min(); !ok || err != nil || k != 10 || v != 20 {
		t.Errorf("Min = %d,%d,%v,%v", k, v, ok, err)
	}
	if k, v, ok, err := tr.Max(); !ok || err != nil || k != 90 || v != 180 {
		t.Errorf("Max = %d,%d,%v,%v", k, v, ok, err)
	}
	var keys []uint64
	if err := tr.AscendRange(20, 80, func(k, v uint64) bool {
		keys = append(keys, k)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	want := []uint64{20, 30, 50, 70, 80}
	if len(keys) != len(want) {
		t.Fatalf("AscendRange = %v, want %v", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("AscendRange = %v, want %v", keys, want)
		}
	}
	// Early termination.
	n := 0
	if err := tr.AscendRange(0, ^uint64(0), func(k, v uint64) bool {
		n++
		return false
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("early stop visited %d", n)
	}
}

// TestRtreeQuickByteKeys: random variable-length byte keys against a
// map oracle, exercising path compression splits and prunes.
func TestRtreeQuickByteKeys(t *testing.T) {
	env := newRT(t, variant.SPP)
	m, err := New("rtree", env.RT)
	if err != nil {
		t.Fatal(err)
	}
	tr := m.(*rtree)
	oracle := make(map[string]uint64)
	rng := rand.New(rand.NewSource(13))
	randKey := func() string {
		n := rng.Intn(12)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(4)) // small alphabet: deep sharing
		}
		return string(b)
	}
	for step := 0; step < 3000; step++ {
		k := randKey()
		switch rng.Intn(3) {
		case 0, 1:
			v := rng.Uint64()
			if err := tr.InsertBytes([]byte(k), v); err != nil {
				t.Fatalf("step %d InsertBytes(%q): %v", step, k, err)
			}
			oracle[k] = v
		case 2:
			ok, err := tr.RemoveBytes([]byte(k))
			if err != nil {
				t.Fatalf("step %d RemoveBytes: %v", step, err)
			}
			if _, want := oracle[k]; ok != want {
				t.Fatalf("step %d RemoveBytes(%q) = %v want %v", step, k, ok, want)
			}
			delete(oracle, k)
		}
	}
	if n, _ := m.Count(); n != uint64(len(oracle)) {
		t.Fatalf("Count = %d, oracle %d", n, len(oracle))
	}
	for k, v := range oracle {
		got, ok, err := tr.GetBytes([]byte(k))
		if err != nil || !ok || got != v {
			t.Fatalf("GetBytes(%q) = %d,%v,%v want %d", k, got, ok, err, v)
		}
	}
}
