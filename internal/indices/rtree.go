package indices

import (
	"encoding/binary"
	"fmt"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
)

// rtree is a path-compressed radix tree over byte-string keys with
// 256-way nodes, the PMDK rtree_map layout: every node embeds a fixed
// 256-slot child oid array and a fixed-capacity key buffer. With 256
// embedded oids per node, SPP's extra 8 bytes per persisted oid make
// this the worst case of Table III (~+40% PM space).
//
// Header object: {count u64, root oid}.
// Node object:   {hasValue u64, value u64, childCount u64,
//
//	prefixLen u64, prefix [1000]byte, child[256] oid}.
type rtree struct {
	c   *ctx
	hdr pmemobj.Oid
}

const (
	rtHasValue   = 0
	rtValue      = 8
	rtChildCount = 16
	rtPrefixLen  = 24
	rtPrefix     = 32
	rtMaxPrefix  = 1000
	rtChildren   = rtPrefix + rtMaxPrefix // 1032
	rtFanout     = 256
)

func (t *rtree) nodeSize() uint64 { return rtChildren + rtFanout*uint64(t.c.OidSize) }
func (t *rtree) hdrSize() uint64  { return 8 + uint64(t.c.OidSize) }

// childField returns the field offset of child b.
func (t *rtree) childField(b byte) int64 { return rtChildren + int64(b)*t.c.OidSize }

func newRtree(rt hooks.Runtime, slotOff uint64) (*rtree, error) {
	c := newCtx(rt)
	t := &rtree{c: c}
	hdr := c.Pool.ReadOid(slotOff)
	if hdr.IsNull() {
		if err := rt.AllocAt(slotOff, t.hdrSize()); err != nil {
			return nil, err
		}
		hdr = c.Pool.ReadOid(slotOff)
		t.hdr = hdr
		// The root node always exists, with an empty prefix.
		err := c.Run(func(tx *pmemobj.Tx) {
			root, err := rt.TxAlloc(tx, t.nodeSize())
			if err != nil {
				c.Fail(err)
				return
			}
			c.Snapshot(tx, hdr, t.hdrSize())
			c.StoreOid(c.Direct(hdr), 8, root)
		})
		if err != nil {
			return nil, err
		}
	}
	t.hdr = hdr
	return t, nil
}

func (t *rtree) Name() string { return "rtree" }

// Count implements Map.
func (t *rtree) Count() (uint64, error) {
	n := t.c.Load(t.c.Direct(t.hdr), 0)
	return n, t.c.Take()
}

func keyBytes(key uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], key)
	return b[:]
}

// Insert implements Map.
func (t *rtree) Insert(key, value uint64) error { return t.InsertBytes(keyBytes(key), value) }

// Get implements Map.
func (t *rtree) Get(key uint64) (uint64, bool, error) { return t.GetBytes(keyBytes(key)) }

// Remove implements Map.
func (t *rtree) Remove(key uint64) (bool, error) { return t.RemoveBytes(keyBytes(key)) }

// prefix reads a node's compressed prefix.
func (t *rtree) prefix(p uint64) []byte {
	n := t.c.Load(p, rtPrefixLen)
	if t.c.Err() != nil || n == 0 {
		return nil
	}
	if n > rtMaxPrefix {
		t.c.Fail(fmt.Errorf("rtree: corrupt prefix length %d", n))
		return nil
	}
	b, err := hooks.LoadBytes(t.c.RT, t.c.RT.Gep(p, rtPrefix), n)
	if err != nil {
		t.c.Fail(err)
		return nil
	}
	return b
}

// setPrefix writes a node's compressed prefix (caller snapshots).
func (t *rtree) setPrefix(p uint64, b []byte) {
	if t.c.Err() != nil {
		return
	}
	t.c.Store(p, rtPrefixLen, uint64(len(b)))
	if len(b) == 0 {
		return
	}
	if err := hooks.StoreBytes(t.c.RT, t.c.RT.Gep(p, rtPrefix), b); err != nil {
		t.c.Fail(err)
	}
}

func commonLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// newNode allocates a node with the given prefix, optional value and
// no children.
func (t *rtree) newNode(tx *pmemobj.Tx, prefix []byte, hasValue bool, value uint64) pmemobj.Oid {
	c := t.c
	if c.Err() != nil {
		return pmemobj.OidNull
	}
	oid, err := c.RT.TxAlloc(tx, t.nodeSize())
	if err != nil {
		c.Fail(err)
		return pmemobj.OidNull
	}
	p := c.Direct(oid)
	if hasValue {
		c.Store(p, rtHasValue, 1)
		c.Store(p, rtValue, value)
	}
	t.setPrefix(p, prefix)
	return oid
}

func (t *rtree) bumpCount(tx *pmemobj.Tx, delta int64) {
	c := t.c
	c.SnapshotField(tx, t.hdr, 0, 8)
	p := c.Direct(t.hdr)
	c.Store(p, 0, c.Load(p, 0)+uint64(delta))
}

// InsertBytes adds or updates a byte-string key.
func (t *rtree) InsertBytes(key []byte, value uint64) error {
	if len(key) > rtMaxPrefix {
		return fmt.Errorf("rtree: key of %d bytes exceeds maximum %d", len(key), rtMaxPrefix)
	}
	c := t.c
	return c.Run(func(tx *pmemobj.Tx) {
		// slot identifies where the current node is linked from.
		slotObj := t.hdr
		slotField := int64(8)
		node := c.LoadOid(c.Direct(t.hdr), 8)
		rest := key

		for c.Err() == nil {
			p := c.Direct(node)
			pfx := t.prefix(p)
			m := commonLen(rest, pfx)
			if m < len(pfx) {
				// Split the edge: a new inner node takes the common
				// part; the current node keeps the tail after the
				// branching byte.
				inner := t.newNode(tx, pfx[:m], false, 0)
				if c.Err() != nil {
					return
				}
				ip := c.Direct(inner)
				c.StoreOid(ip, t.childField(pfx[m]), node)
				c.Store(ip, rtChildCount, 1)
				c.Snapshot(tx, node, rtChildren) // scalar header + prefix
				np := c.Direct(node)
				t.setPrefix(np, pfx[m+1:])
				if m == len(rest) {
					c.Store(ip, rtHasValue, 1)
					c.Store(ip, rtValue, value)
				} else {
					leaf := t.newNode(tx, rest[m+1:], true, value)
					c.StoreOid(ip, t.childField(rest[m]), leaf)
					c.Store(ip, rtChildCount, 2)
				}
				c.SnapshotField(tx, slotObj, slotField, uint64(c.OidSize))
				c.StoreOid(c.Direct(slotObj), slotField, inner)
				t.bumpCount(tx, 1)
				return
			}
			rest = rest[m:]
			if len(rest) == 0 {
				// The key ends at this node.
				c.SnapshotField(tx, node, rtHasValue, 16)
				np := c.Direct(node)
				fresh := c.Load(np, rtHasValue) == 0
				c.Store(np, rtHasValue, 1)
				c.Store(np, rtValue, value)
				if fresh {
					t.bumpCount(tx, 1)
				}
				return
			}
			b := rest[0]
			rest = rest[1:]
			child := c.LoadOid(p, t.childField(b))
			if child.IsNull() {
				leaf := t.newNode(tx, rest, true, value)
				if c.Err() != nil {
					return
				}
				c.SnapshotField(tx, node, t.childField(b), uint64(c.OidSize))
				c.SnapshotField(tx, node, rtChildCount, 8)
				np := c.Direct(node)
				c.StoreOid(np, t.childField(b), leaf)
				c.Store(np, rtChildCount, c.Load(np, rtChildCount)+1)
				t.bumpCount(tx, 1)
				return
			}
			slotObj, slotField = node, t.childField(b)
			node = child
		}
	})
}

// GetBytes looks a byte-string key up.
func (t *rtree) GetBytes(key []byte) (uint64, bool, error) {
	c := t.c
	node := c.LoadOid(c.Direct(t.hdr), 8)
	rest := key
	for c.Err() == nil {
		p := c.Direct(node)
		pfx := t.prefix(p)
		m := commonLen(rest, pfx)
		if m < len(pfx) {
			return 0, false, c.Take()
		}
		rest = rest[m:]
		if len(rest) == 0 {
			if c.Load(p, rtHasValue) != 0 {
				v := c.Load(p, rtValue)
				return v, true, c.Take()
			}
			return 0, false, c.Take()
		}
		child := c.LoadOid(p, t.childField(rest[0]))
		if child.IsNull() {
			return 0, false, c.Take()
		}
		rest = rest[1:]
		node = child
	}
	return 0, false, c.Take()
}

// RemoveBytes deletes a byte-string key. A node left with no value and
// no children is unlinked from its parent and freed.
func (t *rtree) RemoveBytes(key []byte) (bool, error) {
	c := t.c
	removed := false
	err := c.Run(func(tx *pmemobj.Tx) {
		slotObj := t.hdr
		slotField := int64(8)
		parent := pmemobj.OidNull
		node := c.LoadOid(c.Direct(t.hdr), 8)
		rest := key
		for c.Err() == nil {
			p := c.Direct(node)
			pfx := t.prefix(p)
			m := commonLen(rest, pfx)
			if m < len(pfx) {
				return
			}
			rest = rest[m:]
			if len(rest) == 0 {
				if c.Load(p, rtHasValue) == 0 {
					return
				}
				removed = true
				c.SnapshotField(tx, node, rtHasValue, 16)
				np := c.Direct(node)
				c.Store(np, rtHasValue, 0)
				c.Store(np, rtValue, 0)
				t.bumpCount(tx, -1)
				// Prune if the node is now empty (never the root).
				if !parent.IsNull() && c.Load(np, rtChildCount) == 0 {
					c.SnapshotField(tx, slotObj, slotField, uint64(c.OidSize))
					c.StoreOid(c.Direct(slotObj), slotField, pmemobj.OidNull)
					c.SnapshotField(tx, parent, rtChildCount, 8)
					pp := c.Direct(parent)
					c.Store(pp, rtChildCount, c.Load(pp, rtChildCount)-1)
					if err := c.RT.TxFree(tx, node); err != nil {
						c.Fail(err)
					}
				}
				return
			}
			child := c.LoadOid(p, t.childField(rest[0]))
			if child.IsNull() {
				return
			}
			parent = node
			slotObj, slotField = node, t.childField(rest[0])
			node = child
			rest = rest[1:]
		}
	})
	return removed, err
}
