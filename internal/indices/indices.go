// Package indices implements the four persistent indices of the
// paper's pmembench evaluation (Figure 4, Table III): ctree (crit-bit
// tree), rbtree (red-black tree), rtree (radix tree with 256-way
// nodes and fixed path-compression buffers, the PMDK rtree_map
// layout whose embedded oid arrays drive SPP's worst-case space
// overhead) and hashmap (bucketed chains with transactional resize).
//
// All structural modifications run inside pmemobj transactions and
// every memory access goes through the hooks.Runtime instrumentation
// surface, so the same index code runs under native PMDK, SPP, SafePM
// and memcheck.
package indices

import (
	"fmt"

	"repro/internal/hooks"
	"repro/internal/pmaccess"
)

// Map is a persistent uint64 -> uint64 index.
type Map interface {
	// Name returns the index kind ("ctree", "rbtree", "rtree",
	// "hashmap").
	Name() string
	// Insert adds or updates a key.
	Insert(key, value uint64) error
	// Get looks a key up.
	Get(key uint64) (value uint64, found bool, err error)
	// Remove deletes a key, reporting whether it was present.
	Remove(key uint64) (bool, error)
	// Count returns the number of live keys.
	Count() (uint64, error)
}

// Kinds lists the benchmarked index kinds in the paper's order
// (Figure 4, Table III).
var Kinds = []string{"ctree", "rbtree", "rtree", "hashmap"}

// AllKinds additionally includes the btree of §VI-D.
var AllKinds = []string{"ctree", "rbtree", "rtree", "hashmap", "btree"}

// Root slot layout: the pool root object holds one oid per index kind.
const rootSlots = 5

func slotIndex(kind string) (int, error) {
	for i, k := range AllKinds {
		if k == kind {
			return i, nil
		}
	}
	return 0, fmt.Errorf("indices: unknown kind %q", kind)
}

// New opens (or creates) the index of the given kind in the runtime's
// pool. The index header lives in an object referenced from the pool
// root, so the index is found again after a restart.
func New(kind string, rt hooks.Runtime) (Map, error) {
	slot, err := slotIndex(kind)
	if err != nil {
		return nil, err
	}
	oidSize := rt.Pool().OidPersistedSize()
	root, err := rt.Root(rootSlots * oidSize)
	if err != nil {
		return nil, err
	}
	slotOff := root.Off + uint64(slot)*oidSize
	switch kind {
	case "ctree":
		return newCtree(rt, slotOff)
	case "rbtree":
		return newRbtree(rt, slotOff)
	case "rtree":
		return newRtree(rt, slotOff)
	case "hashmap":
		return newHashmap(rt, slotOff)
	case "btree":
		return newBtree(rt, slotOff)
	}
	return nil, fmt.Errorf("indices: unknown kind %q", kind)
}

// BugInjector is implemented by indices that can reproduce known
// upstream bugs for the §VI-D experiments.
type BugInjector interface {
	// InjectBug enables the named bug; it errors on unknown names.
	InjectBug(name string) error
}

// ctx aliases the shared sticky-error accessor; the thin wrapper
// keeps the index code terse.
type ctx = pmaccess.Ctx

func newCtx(rt hooks.Runtime) *ctx { return pmaccess.New(rt) }
