package indices

import (
	"encoding/binary"

	"repro/internal/pmemobj"
)

// Walker is implemented by every index: ForEach visits all key/value
// pairs (unspecified order except for rbtree, which visits in key
// order) until fn returns false.
type Walker interface {
	ForEach(fn func(key, value uint64) bool) error
}

// Ordered is implemented by the rbtree: range queries over the key
// order.
type Ordered interface {
	// Min returns the smallest key.
	Min() (key, value uint64, ok bool, err error)
	// Max returns the largest key.
	Max() (key, value uint64, ok bool, err error)
	// AscendRange visits keys in [lo, hi] in ascending order until fn
	// returns false.
	AscendRange(lo, hi uint64, fn func(key, value uint64) bool) error
}

// Interface checks.
var (
	_ Walker  = (*ctree)(nil)
	_ Walker  = (*rbtree)(nil)
	_ Walker  = (*rtree)(nil)
	_ Walker  = (*hashmap)(nil)
	_ Ordered = (*rbtree)(nil)
)

// ForEach implements Walker for ctree via a depth-first walk.
func (t *ctree) ForEach(fn func(key, value uint64) bool) error {
	c := t.c
	root := c.LoadOid(c.Direct(t.hdr), 8)
	if err := c.Take(); err != nil {
		return err
	}
	_, err := t.walk(root, fn)
	return err
}

func (t *ctree) walk(node pmemobj.Oid, fn func(key, value uint64) bool) (bool, error) {
	if node.IsNull() {
		return true, nil
	}
	c := t.c
	p := c.Direct(node)
	kind := c.Load(p, ctKind)
	if err := c.Take(); err != nil {
		return false, err
	}
	if kind == ctLeaf {
		key := c.Load(p, ctDiff)
		val := c.Load(p, ctValue)
		if err := c.Take(); err != nil {
			return false, err
		}
		return fn(key, val), nil
	}
	for d := int64(0); d < 2; d++ {
		child := c.LoadOid(p, t.childOff(d))
		if err := c.Take(); err != nil {
			return false, err
		}
		cont, err := t.walk(child, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// ForEach implements Walker for rbtree: an in-order traversal, so keys
// arrive sorted.
func (t *rbtree) ForEach(fn func(key, value uint64) bool) error {
	return t.AscendRange(0, ^uint64(0), fn)
}

// Min implements Ordered.
func (t *rbtree) Min() (uint64, uint64, bool, error) {
	c := t.c
	n := t.left(t.root)
	if c.Err() == nil && n.Off == t.sent.Off {
		return 0, 0, false, c.Take()
	}
	for c.Err() == nil {
		l := t.left(n)
		if l.Off == t.sent.Off {
			break
		}
		n = l
	}
	k, v := t.key(n), t.value(n)
	return k, v, true, c.Take()
}

// Max implements Ordered.
func (t *rbtree) Max() (uint64, uint64, bool, error) {
	c := t.c
	n := t.left(t.root)
	if c.Err() == nil && n.Off == t.sent.Off {
		return 0, 0, false, c.Take()
	}
	for c.Err() == nil {
		r := t.right(n)
		if r.Off == t.sent.Off {
			break
		}
		n = r
	}
	k, v := t.key(n), t.value(n)
	return k, v, true, c.Take()
}

// AscendRange implements Ordered with an explicit-stack in-order walk.
func (t *rbtree) AscendRange(lo, hi uint64, fn func(key, value uint64) bool) error {
	c := t.c
	type frame struct {
		node    pmemobj.Oid
		visited bool
	}
	stack := []frame{{node: t.left(t.root)}}
	for len(stack) > 0 && c.Err() == nil {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.node.Off == t.sent.Off {
			continue
		}
		if f.visited {
			k := t.key(f.node)
			if c.Err() != nil {
				break
			}
			if k > hi {
				break
			}
			if k >= lo {
				v := t.value(f.node)
				if c.Err() != nil {
					break
				}
				if !fn(k, v) {
					break
				}
			}
			stack = append(stack, frame{node: t.right(f.node)})
			continue
		}
		k := t.key(f.node)
		if c.Err() != nil {
			break
		}
		// Prune subtrees wholly outside the range.
		switch {
		case k < lo:
			stack = append(stack, frame{node: t.right(f.node)})
		case k > hi:
			stack = append(stack, frame{node: t.left(f.node)})
		default:
			stack = append(stack, frame{node: f.node, visited: true})
			stack = append(stack, frame{node: t.left(f.node)})
		}
	}
	return c.Take()
}

// ForEach implements Walker for rtree by reconstructing 8-byte keys
// along the radix paths.
func (t *rtree) ForEach(fn func(key, value uint64) bool) error {
	c := t.c
	root := c.LoadOid(c.Direct(t.hdr), 8)
	if err := c.Take(); err != nil {
		return err
	}
	_, err := t.walkNode(root, nil, fn)
	return err
}

func (t *rtree) walkNode(node pmemobj.Oid, prefix []byte, fn func(key, value uint64) bool) (bool, error) {
	if node.IsNull() {
		return true, nil
	}
	c := t.c
	p := c.Direct(node)
	pfx := t.prefix(p)
	if err := c.Take(); err != nil {
		return false, err
	}
	full := append(append([]byte{}, prefix...), pfx...)
	hasValue := c.Load(p, rtHasValue)
	value := c.Load(p, rtValue)
	if err := c.Take(); err != nil {
		return false, err
	}
	if hasValue != 0 && len(full) == 8 {
		if !fn(binary.BigEndian.Uint64(full), value) {
			return false, nil
		}
	}
	for b := 0; b < rtFanout; b++ {
		child := c.LoadOid(p, t.childField(byte(b)))
		if err := c.Take(); err != nil {
			return false, err
		}
		if child.IsNull() {
			continue
		}
		cont, err := t.walkNode(child, append(full, byte(b)), fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// ForEach implements Walker for hashmap via a bucket scan.
func (h *hashmap) ForEach(fn func(key, value uint64) bool) error {
	c := h.c
	hp := c.Direct(h.hdr)
	n := c.Load(hp, hmNBuckets)
	buckets := c.LoadOid(hp, hmBuckets)
	if err := c.Take(); err != nil {
		return err
	}
	bp := c.Direct(buckets)
	for i := uint64(0); i < n; i++ {
		entry := c.LoadOid(bp, h.bucketField(i))
		for !entry.IsNull() {
			ep := c.Direct(entry)
			k := c.Load(ep, hmKey)
			v := c.Load(ep, hmValue)
			next := c.LoadOid(ep, hmNext)
			if err := c.Take(); err != nil {
				return err
			}
			if !fn(k, v) {
				return nil
			}
			entry = next
		}
		if err := c.Take(); err != nil {
			return err
		}
	}
	return c.Take()
}
