package indices

import (
	"repro/internal/hooks"
	"repro/internal/pmemobj"
)

// hashmap is the PMDK hashmap_tx layout: a persistent bucket array of
// chain heads, entries prepended in transactions, and a transactional
// rehash once the load factor exceeds one.
//
// Header object: {count u64, nbuckets u64, buckets oid}.
// Buckets object: nbuckets embedded oids (chain heads).
// Entry object:   {key u64, value u64, next oid}.
type hashmap struct {
	c   *ctx
	hdr pmemobj.Oid
}

const (
	hmCount    = 0
	hmNBuckets = 8
	hmBuckets  = 16

	hmKey   = 0
	hmValue = 8
	hmNext  = 16

	hmInitialBuckets = 64
)

func (h *hashmap) hdrSize() uint64   { return 16 + uint64(h.c.OidSize) }
func (h *hashmap) entrySize() uint64 { return 16 + uint64(h.c.OidSize) }

func newHashmap(rt hooks.Runtime, slotOff uint64) (*hashmap, error) {
	c := newCtx(rt)
	h := &hashmap{c: c}
	hdr := c.Pool.ReadOid(slotOff)
	if hdr.IsNull() {
		if err := rt.AllocAt(slotOff, h.hdrSize()); err != nil {
			return nil, err
		}
		hdr = c.Pool.ReadOid(slotOff)
		h.hdr = hdr
		// Initialize the bucket array in one transaction.
		err := c.Run(func(tx *pmemobj.Tx) {
			buckets, err := rt.TxAlloc(tx, hmInitialBuckets*uint64(c.OidSize))
			if err != nil {
				c.Fail(err)
				return
			}
			c.Snapshot(tx, hdr, h.hdrSize())
			p := c.Direct(hdr)
			c.Store(p, hmNBuckets, hmInitialBuckets)
			c.StoreOid(p, hmBuckets, buckets)
		})
		if err != nil {
			return nil, err
		}
	}
	h.hdr = hdr
	return h, nil
}

func (h *hashmap) Name() string { return "hashmap" }

// Count implements Map.
func (h *hashmap) Count() (uint64, error) {
	n := h.c.Load(h.c.Direct(h.hdr), hmCount)
	return n, h.c.Take()
}

// hash mixes the key (fmix64 from MurmurHash3).
func hash(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	key *= 0xc4ceb9fe1a85ec53
	key ^= key >> 33
	return key
}

// bucketField returns the field offset of bucket i in the array.
func (h *hashmap) bucketField(i uint64) int64 { return int64(i) * h.c.OidSize }

// Get implements Map.
func (h *hashmap) Get(key uint64) (uint64, bool, error) {
	c := h.c
	hp := c.Direct(h.hdr)
	n := c.Load(hp, hmNBuckets)
	if n == 0 {
		return 0, false, c.Take()
	}
	buckets := c.LoadOid(hp, hmBuckets)
	bp := c.Direct(buckets)
	entry := c.LoadOid(bp, h.bucketField(hash(key)%n))
	for !entry.IsNull() && c.Err() == nil {
		ep := c.Direct(entry)
		if c.Load(ep, hmKey) == key {
			v := c.Load(ep, hmValue)
			return v, true, c.Take()
		}
		entry = c.LoadOid(ep, hmNext)
	}
	return 0, false, c.Take()
}

// Insert implements Map.
func (h *hashmap) Insert(key, value uint64) error {
	c := h.c
	err := c.Run(func(tx *pmemobj.Tx) {
		hp := c.Direct(h.hdr)
		n := c.Load(hp, hmNBuckets)
		buckets := c.LoadOid(hp, hmBuckets)
		bp := c.Direct(buckets)
		field := h.bucketField(hash(key) % n)

		// Update in place if present.
		entry := c.LoadOid(bp, field)
		for !entry.IsNull() && c.Err() == nil {
			ep := c.Direct(entry)
			if c.Load(ep, hmKey) == key {
				c.Snapshot(tx, entry, h.entrySize())
				c.Store(c.Direct(entry), hmValue, value)
				return
			}
			entry = c.LoadOid(ep, hmNext)
		}
		if c.Err() != nil {
			return
		}

		// Prepend a fresh entry.
		head := c.LoadOid(bp, field)
		fresh, err := c.RT.TxAlloc(tx, h.entrySize())
		if err != nil {
			c.Fail(err)
			return
		}
		fp := c.Direct(fresh)
		c.Store(fp, hmKey, key)
		c.Store(fp, hmValue, value)
		c.StoreOid(fp, hmNext, head)
		c.SnapshotField(tx, buckets, field, uint64(c.OidSize))
		c.StoreOid(c.Direct(buckets), field, fresh)

		c.Snapshot(tx, h.hdr, h.hdrSize())
		c.Store(c.Direct(h.hdr), hmCount, c.Load(c.Direct(h.hdr), hmCount)+1)
	})
	if err != nil {
		return err
	}
	return h.maybeRehash()
}

// maybeRehash grows the bucket array when the load factor exceeds one.
func (h *hashmap) maybeRehash() error {
	c := h.c
	hp := c.Direct(h.hdr)
	count := c.Load(hp, hmCount)
	n := c.Load(hp, hmNBuckets)
	if err := c.Take(); err != nil {
		return err
	}
	if count <= n {
		return nil
	}
	newN := n * 2
	return c.Run(func(tx *pmemobj.Tx) {
		oldBuckets := c.LoadOid(hp, hmBuckets)
		fresh, err := c.RT.TxAlloc(tx, newN*uint64(c.OidSize))
		if err != nil {
			c.Fail(err)
			return
		}
		op := c.Direct(oldBuckets)
		np := c.Direct(fresh)
		// Relink every entry into its new chain. Entries are
		// snapshotted because their next pointers change.
		for i := uint64(0); i < n && c.Err() == nil; i++ {
			entry := c.LoadOid(op, h.bucketField(i))
			for !entry.IsNull() && c.Err() == nil {
				ep := c.Direct(entry)
				next := c.LoadOid(ep, hmNext)
				field := h.bucketField(hash(c.Load(ep, hmKey)) % newN)
				c.Snapshot(tx, entry, h.entrySize())
				ep = c.Direct(entry)
				c.StoreOid(ep, hmNext, c.LoadOid(np, field))
				c.StoreOid(np, field, entry)
				entry = next
			}
		}
		if c.Err() != nil {
			return
		}
		c.Snapshot(tx, h.hdr, h.hdrSize())
		nhp := c.Direct(h.hdr)
		c.Store(nhp, hmNBuckets, newN)
		c.StoreOid(nhp, hmBuckets, fresh)
		if err := c.RT.TxFree(tx, oldBuckets); err != nil {
			c.Fail(err)
		}
	})
}

// Remove implements Map.
func (h *hashmap) Remove(key uint64) (bool, error) {
	c := h.c
	removed := false
	err := c.Run(func(tx *pmemobj.Tx) {
		hp := c.Direct(h.hdr)
		n := c.Load(hp, hmNBuckets)
		if n == 0 {
			return
		}
		buckets := c.LoadOid(hp, hmBuckets)
		bp := c.Direct(buckets)
		field := h.bucketField(hash(key) % n)

		prev := pmemobj.OidNull
		entry := c.LoadOid(bp, field)
		for !entry.IsNull() && c.Err() == nil {
			ep := c.Direct(entry)
			if c.Load(ep, hmKey) == key {
				next := c.LoadOid(ep, hmNext)
				if prev.IsNull() {
					c.SnapshotField(tx, buckets, field, uint64(c.OidSize))
					c.StoreOid(c.Direct(buckets), field, next)
				} else {
					c.Snapshot(tx, prev, h.entrySize())
					c.StoreOid(c.Direct(prev), hmNext, next)
				}
				if err := c.RT.TxFree(tx, entry); err != nil {
					c.Fail(err)
					return
				}
				c.Snapshot(tx, h.hdr, h.hdrSize())
				c.Store(c.Direct(h.hdr), hmCount, c.Load(c.Direct(h.hdr), hmCount)-1)
				removed = true
				return
			}
			prev = entry
			entry = c.LoadOid(ep, hmNext)
		}
	})
	return removed, err
}
