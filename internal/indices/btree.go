package indices

import (
	"fmt"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
)

// btree is the PMDK btree_map layout: an order-8 B-tree whose nodes
// hold up to 7 sorted items and 8 children, with preemptive
// split-on-descent so inserts always land in a non-full node.
//
// §VI-D of the paper reproduces a real overflow in this structure
// (pmem/pmdk#5333): btree_map.c shifts node items right with a memmove
// whose length is computed from the current item count, and on one
// path runs when the node is already full, moving the last item one
// slot past the array. Items are the final field of our node object,
// so the buggy shift crosses the object's upper bound exactly as the
// upstream report describes SPP catching it. BuggySplit re-enables
// that path.
//
// Header object: {count u64, root oid}.
// Node object:   {n u64, child[8] oid..., items[7]{key u64, value u64}}.
type btree struct {
	c   *ctx
	hdr pmemobj.Oid
	// BuggySplit reproduces pmem/pmdk#5333: descending into a full
	// node without splitting it first, so the item shift overflows.
	BuggySplit bool
}

const (
	btOrder    = 8           // children per node
	btMaxItems = btOrder - 1 // 7
	btMinDeg   = btOrder / 2 // CLRS t = 4

	btN     = 0
	btChild = 8
)

func (t *btree) itemsOff() int64      { return btChild + btOrder*t.c.OidSize }
func (t *btree) itemOff(i int) int64  { return t.itemsOff() + int64(i)*16 }
func (t *btree) childOff(i int) int64 { return btChild + int64(i)*t.c.OidSize }
func (t *btree) nodeSize() uint64 {
	return uint64(t.itemsOff()) + btMaxItems*16
}
func (t *btree) hdrSize() uint64 { return 8 + uint64(t.c.OidSize) }

func newBtree(rt hooks.Runtime, slotOff uint64) (*btree, error) {
	c := newCtx(rt)
	t := &btree{c: c}
	hdr := c.Pool.ReadOid(slotOff)
	if hdr.IsNull() {
		if err := rt.AllocAt(slotOff, t.hdrSize()); err != nil {
			return nil, err
		}
		hdr = c.Pool.ReadOid(slotOff)
	}
	t.hdr = hdr
	return t, nil
}

func (t *btree) Name() string { return "btree" }

// InjectBug implements BugInjector. The only known bug is
// "pmdk-5333", the btree_map memmove overflow of §VI-D.
func (t *btree) InjectBug(name string) error {
	if name != "pmdk-5333" {
		return fmt.Errorf("btree: unknown bug %q", name)
	}
	t.BuggySplit = true
	return nil
}

// Count implements Map.
func (t *btree) Count() (uint64, error) {
	n := t.c.Load(t.c.Direct(t.hdr), 0)
	return n, t.c.Take()
}

// Node field helpers (loads; stores are done at call sites inside
// transactions with snapshots).

func (t *btree) nodeN(n pmemobj.Oid) uint64 { return t.c.Load(t.c.Direct(n), btN) }
func (t *btree) child(n pmemobj.Oid, i int) pmemobj.Oid {
	return t.c.LoadOid(t.c.Direct(n), t.childOff(i))
}
func (t *btree) item(n pmemobj.Oid, i int) (uint64, uint64) {
	p := t.c.Direct(n)
	return t.c.Load(p, t.itemOff(i)), t.c.Load(p, t.itemOff(i)+8)
}
func (t *btree) setItem(n pmemobj.Oid, i int, k, v uint64) {
	p := t.c.Direct(n)
	t.c.Store(p, t.itemOff(i), k)
	t.c.Store(p, t.itemOff(i)+8, v)
}
func (t *btree) isLeaf(n pmemobj.Oid) bool { return t.child(n, 0).IsNull() }

// findPos returns the index of the first item with key >= k.
func (t *btree) findPos(n pmemobj.Oid, k uint64) (int, bool) {
	cnt := int(t.nodeN(n))
	for i := 0; i < cnt; i++ {
		ik, _ := t.item(n, i)
		if t.c.Err() != nil {
			return 0, false
		}
		if k == ik {
			return i, true
		}
		if k < ik {
			return i, false
		}
	}
	return cnt, false
}

// Get implements Map.
func (t *btree) Get(key uint64) (uint64, bool, error) {
	c := t.c
	n := c.LoadOid(c.Direct(t.hdr), 8)
	for !n.IsNull() && c.Err() == nil {
		pos, exact := t.findPos(n, key)
		if exact {
			_, v := t.item(n, pos)
			return v, true, c.Take()
		}
		if t.isLeaf(n) {
			break
		}
		n = t.child(n, pos)
	}
	return 0, false, c.Take()
}

// shiftItemsRight moves items [p, count) one slot right with the
// interposed memmove — the btree_map.c:378 call site. In buggy mode
// the caller may invoke it on a full node, where the move's last write
// lands one item past the array and past the node object.
func (t *btree) shiftItemsRight(n pmemobj.Oid, p, count int) {
	if count <= 0 || t.c.Err() != nil {
		return
	}
	np := t.c.Direct(n)
	err := hooks.Memmove(t.c.RT,
		t.c.RT.Gep(np, t.itemOff(p+1)),
		t.c.RT.Gep(np, t.itemOff(p)),
		uint64(count)*16)
	if err != nil {
		t.c.Fail(err)
	}
}

// shiftChildrenRight moves children [p, count) one slot right.
func (t *btree) shiftChildrenRight(tx *pmemobj.Tx, n pmemobj.Oid, p, count int) {
	c := t.c
	for i := p + count - 1; i >= p && c.Err() == nil; i-- {
		c.StoreOid(c.Direct(n), t.childOff(i+1), t.child(n, i))
	}
	_ = tx
}

// newNode allocates an empty node inside the transaction.
func (t *btree) newNode(tx *pmemobj.Tx) pmemobj.Oid {
	c := t.c
	if c.Err() != nil {
		return pmemobj.OidNull
	}
	oid, err := c.RT.TxAlloc(tx, t.nodeSize())
	if err != nil {
		c.Fail(err)
		return pmemobj.OidNull
	}
	return oid
}

// splitChild splits the full child at index ci of parent (CLRS
// B-TREE-SPLIT-CHILD). parent must be non-full.
func (t *btree) splitChild(tx *pmemobj.Tx, parent pmemobj.Oid, ci int) {
	c := t.c
	full := t.child(parent, ci)
	right := t.newNode(tx)
	if c.Err() != nil {
		return
	}
	c.Snapshot(tx, full, t.nodeSize())
	c.Snapshot(tx, parent, t.nodeSize())

	const mid = btMinDeg - 1 // item promoted to the parent
	// Move the upper items (and children) into the new right node.
	for i := 0; i < btMinDeg-1; i++ {
		k, v := t.item(full, mid+1+i)
		t.setItem(right, i, k, v)
	}
	if !t.isLeaf(full) {
		for i := 0; i < btMinDeg; i++ {
			c.StoreOid(c.Direct(right), t.childOff(i), t.child(full, mid+1+i))
		}
	}
	c.Store(c.Direct(right), btN, btMinDeg-1)
	midK, midV := t.item(full, mid)
	c.Store(c.Direct(full), btN, mid)

	// Insert the promoted item and the new child into the parent.
	pn := int(t.nodeN(parent))
	t.shiftItemsRight(parent, ci, pn-ci)
	t.shiftChildrenRight(tx, parent, ci+1, pn-ci)
	t.setItem(parent, ci, midK, midV)
	c.StoreOid(c.Direct(parent), t.childOff(ci+1), right)
	c.Store(c.Direct(parent), btN, uint64(pn+1))
}

// Insert implements Map.
func (t *btree) Insert(key, value uint64) error {
	c := t.c
	return c.Run(func(tx *pmemobj.Tx) {
		hp := c.Direct(t.hdr)
		root := c.LoadOid(hp, 8)
		if root.IsNull() {
			root = t.newNode(tx)
			if c.Err() != nil {
				return
			}
			t.setItem(root, 0, key, value)
			c.Store(c.Direct(root), btN, 1)
			c.Snapshot(tx, t.hdr, t.hdrSize())
			hp = c.Direct(t.hdr)
			c.StoreOid(hp, 8, root)
			c.Store(hp, 0, c.Load(hp, 0)+1)
			return
		}
		if t.nodeN(root) == btMaxItems && !t.BuggySplit {
			// Grow: a new root with the old one as its only child.
			newRoot := t.newNode(tx)
			if c.Err() != nil {
				return
			}
			c.StoreOid(c.Direct(newRoot), t.childOff(0), root)
			t.splitChild(tx, newRoot, 0)
			c.Snapshot(tx, t.hdr, t.hdrSize())
			c.StoreOid(c.Direct(t.hdr), 8, newRoot)
			root = newRoot
		}
		inserted := t.insertNonFull(tx, root, key, value)
		if c.Err() == nil && inserted {
			c.Snapshot(tx, t.hdr, 8)
			hp := c.Direct(t.hdr)
			c.Store(hp, 0, c.Load(hp, 0)+1)
		}
	})
}

// insertNonFull is CLRS B-TREE-INSERT-NONFULL: descend, splitting full
// children first, and place the item in a leaf. Returns false if the
// key existed (update in place). In buggy mode the full-node guard is
// skipped — the pmem/pmdk#5333 path — and the item shift overflows.
func (t *btree) insertNonFull(tx *pmemobj.Tx, n pmemobj.Oid, key, value uint64) bool {
	c := t.c
	for c.Err() == nil {
		pos, exact := t.findPos(n, key)
		if exact {
			c.Snapshot(tx, n, t.nodeSize())
			k, _ := t.item(n, pos)
			t.setItem(n, pos, k, value)
			return false
		}
		if t.isLeaf(n) {
			cnt := int(t.nodeN(n))
			c.Snapshot(tx, n, t.nodeSize())
			// The upstream bug: shifting cnt-pos items when cnt is
			// already btMaxItems writes item cnt past the array.
			t.shiftItemsRight(n, pos, cnt-pos)
			if c.Err() != nil {
				return false
			}
			t.setItem(n, pos, key, value)
			c.Store(c.Direct(n), btN, uint64(cnt+1))
			return true
		}
		child := t.child(n, pos)
		if t.nodeN(child) == btMaxItems && !t.BuggySplit {
			t.splitChild(tx, n, pos)
			if c.Err() != nil {
				return false
			}
			// The promoted item may change the descent direction.
			continue
		}
		n = child
	}
	return false
}

// Remove implements Map (CLRS B-tree deletion: every node visited has
// at least t items before descending, via borrow or merge).
func (t *btree) Remove(key uint64) (bool, error) {
	c := t.c
	removed := false
	err := c.Run(func(tx *pmemobj.Tx) {
		root := c.LoadOid(c.Direct(t.hdr), 8)
		if root.IsNull() {
			return
		}
		removed = t.remove(tx, root, key)
		if c.Err() != nil {
			return
		}
		// Shrink the root when it empties.
		if t.nodeN(root) == 0 {
			c.Snapshot(tx, t.hdr, t.hdrSize())
			if t.isLeaf(root) {
				c.StoreOid(c.Direct(t.hdr), 8, pmemobj.OidNull)
			} else {
				c.StoreOid(c.Direct(t.hdr), 8, t.child(root, 0))
			}
			if err := c.RT.TxFree(tx, root); err != nil {
				c.Fail(err)
				return
			}
		}
		if removed {
			c.Snapshot(tx, t.hdr, 8)
			hp := c.Direct(t.hdr)
			c.Store(hp, 0, c.Load(hp, 0)-1)
		}
	})
	return removed, err
}

// removeShiftLeft moves items [p+1, count) one slot left (and children
// [p+2, ...) for internal deletes via explicit loops).
func (t *btree) removeItemAt(tx *pmemobj.Tx, n pmemobj.Oid, p int) {
	c := t.c
	cnt := int(t.nodeN(n))
	c.Snapshot(tx, n, t.nodeSize())
	np := c.Direct(n)
	if cnt-p-1 > 0 {
		err := hooks.Memmove(c.RT,
			c.RT.Gep(np, t.itemOff(p)),
			c.RT.Gep(np, t.itemOff(p+1)),
			uint64(cnt-p-1)*16)
		if err != nil {
			c.Fail(err)
			return
		}
	}
	c.Store(np, btN, uint64(cnt-1))
}

func (t *btree) remove(tx *pmemobj.Tx, n pmemobj.Oid, key uint64) bool {
	c := t.c
	pos, exact := t.findPos(n, key)
	if c.Err() != nil {
		return false
	}
	if exact {
		if t.isLeaf(n) {
			t.removeItemAt(tx, n, pos)
			return true
		}
		return t.removeInternal(tx, n, pos, key)
	}
	if t.isLeaf(n) {
		return false
	}
	child := t.ensureChild(tx, n, pos, key)
	if c.Err() != nil {
		return false
	}
	return t.remove(tx, child.node, child.key)
}

type descent struct {
	node pmemobj.Oid
	key  uint64
}

// removeInternal deletes the item at pos of internal node n using the
// predecessor/successor/merge cases of CLRS.
func (t *btree) removeInternal(tx *pmemobj.Tx, n pmemobj.Oid, pos int, key uint64) bool {
	c := t.c
	left := t.child(n, pos)
	right := t.child(n, pos+1)
	switch {
	case t.nodeN(left) >= btMinDeg:
		pk, pv := t.maxOf(left)
		if c.Err() != nil {
			return false
		}
		c.Snapshot(tx, n, t.nodeSize())
		t.setItem(n, pos, pk, pv)
		return t.remove(tx, left, pk)
	case t.nodeN(right) >= btMinDeg:
		sk, sv := t.minOf(right)
		if c.Err() != nil {
			return false
		}
		c.Snapshot(tx, n, t.nodeSize())
		t.setItem(n, pos, sk, sv)
		return t.remove(tx, right, sk)
	default:
		t.mergeChildren(tx, n, pos)
		if c.Err() != nil {
			return false
		}
		return t.remove(tx, left, key)
	}
}

func (t *btree) maxOf(n pmemobj.Oid) (uint64, uint64) {
	for !t.isLeaf(n) && t.c.Err() == nil {
		n = t.child(n, int(t.nodeN(n)))
	}
	return t.item(n, int(t.nodeN(n))-1)
}

func (t *btree) minOf(n pmemobj.Oid) (uint64, uint64) {
	for !t.isLeaf(n) && t.c.Err() == nil {
		n = t.child(n, 0)
	}
	return t.item(n, 0)
}

// ensureChild guarantees child pos has at least btMinDeg items before
// descent, borrowing from a sibling or merging. It returns the node to
// descend into (which may have changed after a merge).
func (t *btree) ensureChild(tx *pmemobj.Tx, n pmemobj.Oid, pos int, key uint64) descent {

	child := t.child(n, pos)
	if t.nodeN(child) >= btMinDeg {
		return descent{child, key}
	}
	if pos > 0 {
		left := t.child(n, pos-1)
		if t.nodeN(left) >= btMinDeg {
			t.borrowFromLeft(tx, n, pos)
			return descent{child, key}
		}
	}
	if pos < int(t.nodeN(n)) {
		right := t.child(n, pos+1)
		if t.nodeN(right) >= btMinDeg {
			t.borrowFromRight(tx, n, pos)
			return descent{child, key}
		}
	}
	// Merge with a sibling.
	if pos < int(t.nodeN(n)) {
		t.mergeChildren(tx, n, pos)
		return descent{child, key}
	}
	left := t.child(n, pos-1)
	t.mergeChildren(tx, n, pos-1)
	return descent{left, key}
}

// borrowFromLeft rotates the parent separator down into child pos and
// the left sibling's last item up.
func (t *btree) borrowFromLeft(tx *pmemobj.Tx, n pmemobj.Oid, pos int) {
	c := t.c
	child := t.child(n, pos)
	left := t.child(n, pos-1)
	c.Snapshot(tx, n, t.nodeSize())
	c.Snapshot(tx, child, t.nodeSize())
	c.Snapshot(tx, left, t.nodeSize())

	ccnt := int(t.nodeN(child))
	t.shiftItemsRight(child, 0, ccnt)
	t.shiftChildrenRight(tx, child, 0, ccnt+1)
	sk, sv := t.item(n, pos-1)
	t.setItem(child, 0, sk, sv)
	lcnt := int(t.nodeN(left))
	lk, lv := t.item(left, lcnt-1)
	t.setItem(n, pos-1, lk, lv)
	if !t.isLeaf(left) {
		c.StoreOid(c.Direct(child), t.childOff(0), t.child(left, lcnt))
	}
	c.Store(c.Direct(left), btN, uint64(lcnt-1))
	c.Store(c.Direct(child), btN, uint64(ccnt+1))
}

// borrowFromRight rotates the parent separator down and the right
// sibling's first item up.
func (t *btree) borrowFromRight(tx *pmemobj.Tx, n pmemobj.Oid, pos int) {
	c := t.c
	child := t.child(n, pos)
	right := t.child(n, pos+1)
	c.Snapshot(tx, n, t.nodeSize())
	c.Snapshot(tx, child, t.nodeSize())
	c.Snapshot(tx, right, t.nodeSize())

	ccnt := int(t.nodeN(child))
	sk, sv := t.item(n, pos)
	t.setItem(child, ccnt, sk, sv)
	rk, rv := t.item(right, 0)
	t.setItem(n, pos, rk, rv)
	if !t.isLeaf(right) {
		c.StoreOid(c.Direct(child), t.childOff(ccnt+1), t.child(right, 0))
		rcnt := int(t.nodeN(right))
		for i := 0; i < rcnt; i++ {
			c.StoreOid(c.Direct(right), t.childOff(i), t.child(right, i+1))
		}
	}
	t.removeItemAt(tx, right, 0)
	c.Store(c.Direct(child), btN, uint64(ccnt+1))
}

// mergeChildren folds child pos+1 and the separator into child pos and
// frees the right node.
func (t *btree) mergeChildren(tx *pmemobj.Tx, n pmemobj.Oid, pos int) {
	c := t.c
	left := t.child(n, pos)
	right := t.child(n, pos+1)
	c.Snapshot(tx, n, t.nodeSize())
	c.Snapshot(tx, left, t.nodeSize())

	lcnt := int(t.nodeN(left))
	rcnt := int(t.nodeN(right))
	sk, sv := t.item(n, pos)
	t.setItem(left, lcnt, sk, sv)
	for i := 0; i < rcnt; i++ {
		k, v := t.item(right, i)
		t.setItem(left, lcnt+1+i, k, v)
	}
	if !t.isLeaf(left) {
		for i := 0; i <= rcnt; i++ {
			c.StoreOid(c.Direct(left), t.childOff(lcnt+1+i), t.child(right, i))
		}
	}
	c.Store(c.Direct(left), btN, uint64(lcnt+1+rcnt))

	// Remove the separator and the right child pointer from n.
	ncnt := int(t.nodeN(n))
	np := c.Direct(n)
	if ncnt-pos-1 > 0 {
		err := hooks.Memmove(c.RT,
			c.RT.Gep(np, t.itemOff(pos)),
			c.RT.Gep(np, t.itemOff(pos+1)),
			uint64(ncnt-pos-1)*16)
		if err != nil {
			c.Fail(err)
			return
		}
	}
	for i := pos + 1; i < ncnt; i++ {
		c.StoreOid(np, t.childOff(i), t.child(n, i+1))
	}
	c.Store(np, btN, uint64(ncnt-1))
	if err := c.RT.TxFree(tx, right); err != nil {
		c.Fail(err)
	}
}
