// Package hooks defines the instrumentation surface that SPP's
// compiler passes inject into an application (Listing 1 of the paper)
// and provides the variant implementations used by the evaluation.
//
// Application code in this repository (the persistent indices, the KV
// store, the Phoenix kernels, the RIPE attacks) is written against the
// Runtime interface, calling it at exactly the sites the LLVM
// transformation pass would instrument: after pointer arithmetic
// (Gep), before dereferences (Check), before memory intrinsics
// (MemIntr) and before external calls (External). Swapping the Runtime
// swaps the protection mechanism without touching application code —
// the Go analog of recompiling with a different sanitizer:
//
//   - Native: no instrumentation (the PMDK baseline of Table I).
//   - SPP: tag arithmetic only, faults implicitly at access time.
//   - SafePM (package safepm): persistent shadow memory + redzones.
//   - memcheck (package memcheck): addressability tracking.
package hooks

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/pmemobj"
	"repro/internal/vmem"
)

// ViolationError reports a memory-safety violation detected by an
// explicit check (shadow memory or addressability tracking). SPP does
// not produce it: its violations surface as vmem faults at access
// time.
type ViolationError struct {
	Mechanism string
	Addr      uint64
	Size      uint64
	Detail    string
}

func (e *ViolationError) Error() string {
	return fmt.Sprintf("%s: memory-safety violation: %d-byte access at %#x (%s)",
		e.Mechanism, e.Size, e.Addr, e.Detail)
}

// IsSafetyTrap reports whether err represents a detected memory-safety
// violation under any mechanism: an explicit sanitizer report or the
// simulated hardware fault an SPP overflow triggers.
func IsSafetyTrap(err error) bool {
	var v *ViolationError
	if errors.As(err, &v) {
		return true
	}
	var f *vmem.FaultError
	return errors.As(err, &f)
}

// Runtime is the per-variant instrumentation. Pointer values flowing
// through it are simulated 64-bit pointers (tagged under SPP).
type Runtime interface {
	// Name identifies the variant ("pmdk", "spp", "safepm", "memcheck").
	Name() string
	// Pool returns the object pool the runtime is attached to.
	Pool() *pmemobj.Pool
	// Space returns the simulated address space.
	Space() *vmem.AddressSpace

	// Root returns the pool's root object of at least the given size.
	// SafePM pads it with redzones like any other allocation.
	Root(size uint64) (pmemobj.Oid, error)

	// Allocation wrappers. SafePM adjusts sizes and offsets for its
	// redzones here; SPP and native pass straight through.
	Alloc(size uint64) (pmemobj.Oid, error)
	AllocAt(destOff, size uint64) error
	Free(oid pmemobj.Oid) error
	FreeAt(destOff uint64) error
	Realloc(oid pmemobj.Oid, size uint64) (pmemobj.Oid, error)
	ReallocAt(destOff, size uint64) error
	TxAlloc(tx *pmemobj.Tx, size uint64) (pmemobj.Oid, error)
	TxFree(tx *pmemobj.Tx, oid pmemobj.Oid) error

	// Direct is pmemobj_direct: oid to (variant-specific) pointer.
	Direct(oid pmemobj.Oid) uint64
	// Gep is pointer arithmetic plus the injected __spp_updatetag.
	Gep(p uint64, off int64) uint64
	// Check is __spp_checkbound before an n-byte dereference: it
	// returns the address to access. Mechanisms with explicit checks
	// return an error on violation; SPP returns an address that
	// faults.
	Check(p, n uint64) (uint64, error)
	// CheckPM is the _direct hook variant used when the pointer is
	// statically known to point to PM (pointer-tracking optimization).
	CheckPM(p, n uint64) (uint64, error)
	// MemIntr is __spp_memintr_check for a memory intrinsic touching
	// n bytes starting at p.
	MemIntr(p, n uint64) (uint64, error)
	// External is __spp_cleantag_external before uninstrumented calls.
	External(p uint64) uint64
}

// Native is the unprotected PMDK baseline: every hook is a pass-through.
type Native struct {
	pool *pmemobj.Pool
	as   *vmem.AddressSpace
}

var _ Runtime = (*Native)(nil)

// NewNative returns the baseline runtime over pool.
func NewNative(pool *pmemobj.Pool, as *vmem.AddressSpace) *Native {
	return &Native{pool: pool, as: as}
}

// Name implements Runtime.
func (n *Native) Name() string { return "pmdk" }

// Pool implements Runtime.
func (n *Native) Pool() *pmemobj.Pool { return n.pool }

// Space implements Runtime.
func (n *Native) Space() *vmem.AddressSpace { return n.as }

// Root implements Runtime.
func (n *Native) Root(size uint64) (pmemobj.Oid, error) { return n.pool.Root(size) }

// Alloc implements Runtime.
func (n *Native) Alloc(size uint64) (pmemobj.Oid, error) { return n.pool.Alloc(size) }

// AllocAt implements Runtime.
func (n *Native) AllocAt(destOff, size uint64) error { return n.pool.AllocAt(destOff, size) }

// Free implements Runtime.
func (n *Native) Free(oid pmemobj.Oid) error { return n.pool.Free(oid) }

// FreeAt implements Runtime.
func (n *Native) FreeAt(destOff uint64) error { return n.pool.FreeAt(destOff) }

// Realloc implements Runtime.
func (n *Native) Realloc(oid pmemobj.Oid, size uint64) (pmemobj.Oid, error) {
	return n.pool.Realloc(oid, size)
}

// ReallocAt implements Runtime.
func (n *Native) ReallocAt(destOff, size uint64) error { return n.pool.ReallocAt(destOff, size) }

// TxAlloc implements Runtime.
func (n *Native) TxAlloc(tx *pmemobj.Tx, size uint64) (pmemobj.Oid, error) { return tx.Alloc(size) }

// TxFree implements Runtime.
func (n *Native) TxFree(tx *pmemobj.Tx, oid pmemobj.Oid) error { return tx.Free(oid) }

// Direct implements Runtime.
func (n *Native) Direct(oid pmemobj.Oid) uint64 { return n.pool.Direct(oid) }

// Gep implements Runtime.
func (n *Native) Gep(p uint64, off int64) uint64 { return p + uint64(off) }

// Check implements Runtime.
func (n *Native) Check(p, _ uint64) (uint64, error) { return p, nil }

// CheckPM implements Runtime.
func (n *Native) CheckPM(p, _ uint64) (uint64, error) { return p, nil }

// MemIntr implements Runtime.
func (n *Native) MemIntr(p, _ uint64) (uint64, error) { return p, nil }

// External implements Runtime.
func (n *Native) External(p uint64) uint64 { return p }

// SPP is the paper's mechanism: tagged pointers with implicit bounds
// checks. All hooks are pure register arithmetic — no metadata loads.
type SPP struct {
	pool *pmemobj.Pool
	as   *vmem.AddressSpace
	enc  core.Encoding
	// saturating enables the §IV-G wraparound hardening: offsets past
	// the tag range pin the overflow bit instead of wrapping it.
	saturating bool
}

// SetSaturating toggles the wraparound hardening (GepSaturating).
func (s *SPP) SetSaturating(on bool) { s.saturating = on }

var _ Runtime = (*SPP)(nil)

// NewSPP returns the SPP runtime over an SPP-mode pool.
func NewSPP(pool *pmemobj.Pool, as *vmem.AddressSpace) (*SPP, error) {
	if !pool.SPP() {
		return nil, errors.New("hooks: SPP runtime requires a pool created with Config.SPP")
	}
	return &SPP{pool: pool, as: as, enc: pool.Encoding()}, nil
}

// Name implements Runtime.
func (s *SPP) Name() string { return "spp" }

// Pool implements Runtime.
func (s *SPP) Pool() *pmemobj.Pool { return s.pool }

// Space implements Runtime.
func (s *SPP) Space() *vmem.AddressSpace { return s.as }

// Root implements Runtime.
func (s *SPP) Root(size uint64) (pmemobj.Oid, error) { return s.pool.Root(size) }

// Alloc implements Runtime.
func (s *SPP) Alloc(size uint64) (pmemobj.Oid, error) { return s.pool.Alloc(size) }

// AllocAt implements Runtime.
func (s *SPP) AllocAt(destOff, size uint64) error { return s.pool.AllocAt(destOff, size) }

// Free implements Runtime.
func (s *SPP) Free(oid pmemobj.Oid) error { return s.pool.Free(oid) }

// FreeAt implements Runtime.
func (s *SPP) FreeAt(destOff uint64) error { return s.pool.FreeAt(destOff) }

// Realloc implements Runtime.
func (s *SPP) Realloc(oid pmemobj.Oid, size uint64) (pmemobj.Oid, error) {
	return s.pool.Realloc(oid, size)
}

// ReallocAt implements Runtime.
func (s *SPP) ReallocAt(destOff, size uint64) error { return s.pool.ReallocAt(destOff, size) }

// TxAlloc implements Runtime.
func (s *SPP) TxAlloc(tx *pmemobj.Tx, size uint64) (pmemobj.Oid, error) { return tx.Alloc(size) }

// TxFree implements Runtime.
func (s *SPP) TxFree(tx *pmemobj.Tx, oid pmemobj.Oid) error { return tx.Free(oid) }

// Direct implements Runtime: the tagged pointer of §IV-B.
func (s *SPP) Direct(oid pmemobj.Oid) uint64 { return s.pool.Direct(oid) }

// Gep implements Runtime: address advance plus __spp_updatetag.
func (s *SPP) Gep(p uint64, off int64) uint64 {
	hookGep.IncSampled()
	if s.saturating {
		return s.enc.GepSaturating(p, off)
	}
	return s.enc.Gep(p, off)
}

// Check implements Runtime: __spp_checkbound. The returned address
// carries the overflow bit on violation; the access itself faults. A
// set overflow bit additionally files a check-time audit record — the
// one extra branch the always-on audit trail costs this hot path.
func (s *SPP) Check(p, n uint64) (uint64, error) {
	hookCheck.IncSampled()
	r := s.enc.CheckBound(p, n)
	if core.Overflow(r) {
		s.recordOverflow("checkbound", p, r, n)
	}
	return r, nil
}

// CheckPM implements Runtime: the _direct hook that skips the PM-bit
// test (§V-B).
func (s *SPP) CheckPM(p, n uint64) (uint64, error) {
	hookCheckPM.IncSampled()
	r := s.enc.CheckBoundDirect(p, n)
	if core.Overflow(r) {
		s.recordOverflow("checkbound-pm", p, r, n)
	}
	return r, nil
}

// MemIntr implements Runtime: __spp_memintr_check.
func (s *SPP) MemIntr(p, n uint64) (uint64, error) {
	hookMemIntr.IncSampled()
	r := s.enc.MemIntrCheck(p, n)
	if core.Overflow(r) {
		s.recordOverflow("memintr", p, r, n)
	}
	return r, nil
}

// External implements Runtime: __spp_cleantag_external.
func (s *SPP) External(p uint64) uint64 {
	hookExternal.IncSampled()
	return s.enc.CleanTagExternal(p)
}
