package hooks

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/pmemobj"
	"repro/internal/vmem"
)

func newPools(t *testing.T, sppMode bool) (*pmemobj.Pool, *vmem.AddressSpace) {
	t.Helper()
	dev := pmem.NewPool("hooks-test", 16<<20)
	as := vmem.New()
	pool, err := pmemobj.Create(dev, as, 0x10000, pmemobj.Config{SPP: sppMode})
	if err != nil {
		t.Fatal(err)
	}
	return pool, as
}

func TestNewSPPRequiresSPPPool(t *testing.T) {
	pool, as := newPools(t, false)
	if _, err := NewSPP(pool, as); err == nil {
		t.Error("NewSPP accepted a native pool")
	}
}

func TestIsSafetyTrap(t *testing.T) {
	tests := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain error", errors.New("boom"), false},
		{"violation", &ViolationError{Mechanism: "x"}, true},
		{"wrapped violation", errorsJoin(&ViolationError{Mechanism: "x"}), true},
		{"fault", &vmem.FaultError{Addr: 1, Size: 8, Kind: vmem.Store}, true},
	}
	for _, tt := range tests {
		if got := IsSafetyTrap(tt.err); got != tt.want {
			t.Errorf("%s: IsSafetyTrap = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func errorsJoin(err error) error { return errors.Join(errors.New("ctx"), err) }

func TestNativeIsTransparent(t *testing.T) {
	pool, as := newPools(t, false)
	rt := NewNative(pool, as)
	if rt.Name() != "pmdk" || rt.Pool() != pool || rt.Space() != as {
		t.Error("accessors wrong")
	}
	if got := rt.Gep(100, -4); got != 96 {
		t.Errorf("Gep = %d", got)
	}
	for _, fn := range []func(uint64, uint64) (uint64, error){rt.Check, rt.CheckPM, rt.MemIntr} {
		if a, err := fn(0x123, 8); a != 0x123 || err != nil {
			t.Errorf("hook not transparent: %v %v", a, err)
		}
	}
	if rt.External(7) != 7 {
		t.Error("External not transparent")
	}
}

func TestSPPHookSemantics(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	if rt.Name() != "spp" {
		t.Errorf("Name = %q", rt.Name())
	}
	oid, err := rt.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Direct(oid)
	if !core.IsPM(p) {
		t.Fatal("Direct returned untagged pointer")
	}
	// Check on an in-bounds pointer returns the cleaned address.
	a, err := rt.Check(p, 32)
	if err != nil || core.IsPM(a) || a&core.OverflowBit != 0 {
		t.Errorf("Check = %#x, %v", a, err)
	}
	// CheckPM agrees for persistent pointers.
	b, _ := rt.CheckPM(p, 32)
	if a != b {
		t.Errorf("CheckPM differs: %#x vs %#x", a, b)
	}
	// Out of bounds: overflow bit set in the result; the access faults.
	bad, _ := rt.Check(rt.Gep(p, 32), 1)
	if bad&core.OverflowBit == 0 {
		t.Error("overflow bit lost")
	}
	if _, err := as.LoadU8(bad); !IsSafetyTrap(err) {
		t.Errorf("access through overflown pointer: %v", err)
	}
	// Volatile pointers pass through untouched.
	if a, _ := rt.Check(0x5555, 8); a != 0x5555 {
		t.Errorf("volatile pointer modified: %#x", a)
	}
}

func TestCheckedHelpersSizes(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := rt.Alloc(16)
	p := rt.Direct(oid)
	if err := StoreU8(rt, rt.Gep(p, 15), 0xAB); err != nil {
		t.Fatal(err)
	}
	if v, err := LoadU8(rt, rt.Gep(p, 15)); err != nil || v != 0xAB {
		t.Errorf("LoadU8 = %#x, %v", v, err)
	}
	if err := StoreU64(rt, rt.Gep(p, 9), 1); !IsSafetyTrap(err) {
		t.Errorf("straddling u64 store: %v", err)
	}
	if err := StoreU64PM(rt, rt.Gep(p, 8), 7); err != nil {
		t.Fatal(err)
	}
	if v, err := LoadU64PM(rt, rt.Gep(p, 8)); err != nil || v != 7 {
		t.Errorf("LoadU64PM = %d, %v", v, err)
	}
}

func TestStrlenUnterminated(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := rt.Alloc(8)
	p := rt.Direct(oid)
	// Fill the object with non-NUL bytes: the scan traps at the bound.
	if err := StoreBytes(rt, p, []byte("xxxxxxxx")); err != nil {
		t.Fatal(err)
	}
	if _, err := Strlen(rt, p); !IsSafetyTrap(err) {
		t.Errorf("unterminated strlen: %v", err)
	}
}

func TestMemcpyZeroLength(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := rt.Alloc(8)
	p := rt.Direct(oid)
	if err := Memcpy(rt, p, p, 0); err != nil {
		t.Errorf("zero-length memcpy: %v", err)
	}
	if err := Memset(rt, p, 0, 0); err != nil {
		t.Errorf("zero-length memset: %v", err)
	}
	if b, err := LoadBytes(rt, p, 0); err != nil || b != nil {
		t.Errorf("zero-length LoadBytes: %v, %v", b, err)
	}
	if err := StoreBytes(rt, p, nil); err != nil {
		t.Errorf("empty StoreBytes: %v", err)
	}
}

func TestStrcmpOrdering(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(s string) uint64 {
		oid, err := rt.Alloc(uint64(len(s) + 1))
		if err != nil {
			t.Fatal(err)
		}
		p := rt.Direct(oid)
		if err := StoreBytes(rt, p, append([]byte(s), 0)); err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b, c := mk("abc"), mk("abd"), mk("abc")
	if r, _ := Strcmp(rt, a, b); r != -1 {
		t.Errorf("abc vs abd = %d", r)
	}
	if r, _ := Strcmp(rt, b, a); r != 1 {
		t.Errorf("abd vs abc = %d", r)
	}
	if r, _ := Strcmp(rt, a, c); r != 0 {
		t.Errorf("abc vs abc = %d", r)
	}
	short := mk("ab")
	if r, _ := Strcmp(rt, short, a); r != -1 {
		t.Errorf("ab vs abc = %d", r)
	}
}

func TestSPPSaturatingOption(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	oid, _ := rt.Alloc(16)
	victim, _ := rt.Alloc(16)
	_ = victim
	p := rt.Direct(oid)
	// An offset past the tag range wraps under the default encoding
	// (26 tag bits need a 2^27 jump, far outside this pool, so emulate
	// with the encoding check) — here verify the hook plumbing: with
	// saturation on, a jump of MaxObjectSize lands with the overflow
	// bit pinned and the access traps.
	rt.SetSaturating(true)
	jump := int64(pool.Encoding().MaxObjectSize())
	q := rt.Gep(rt.Gep(p, jump), -jump+8) // net +8, but via a wild excursion
	if _, err := LoadU64(rt, q); !IsSafetyTrap(err) {
		t.Errorf("saturating mode allowed a wild excursion: %v", err)
	}
	rt.SetSaturating(false)
	q2 := rt.Gep(rt.Gep(p, jump), -jump+8)
	if _, err := LoadU64(rt, q2); err != nil {
		t.Errorf("plain mode round trip failed: %v", err)
	}
}
