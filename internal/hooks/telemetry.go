package hooks

import (
	"errors"

	"repro/internal/pmemobj"
	"repro/internal/telemetry"
	"repro/internal/vmem"
)

// Hook-invocation telemetry. Each counter maps to one injected runtime
// function of Listing 1, so rates expose how much instrumentation a
// workload actually executes (and, with the transform pass's elision
// counters, how much was optimized away).
var (
	hookCheck    = telemetry.Default.Counter("spp_hook_checkbound_total", "__spp_checkbound invocations")
	hookCheckPM  = telemetry.Default.Counter("spp_hook_checkbound_pm_total", "__spp_checkbound_direct invocations")
	hookGep      = telemetry.Default.Counter("spp_hook_updatetag_total", "__spp_updatetag invocations (Gep)")
	hookMemIntr  = telemetry.Default.Counter("spp_hook_memintr_total", "__spp_memintr_check invocations")
	hookExternal = telemetry.Default.Counter("spp_hook_cleantag_external_total", "__spp_cleantag_external invocations")
	hookOverflow = telemetry.Default.Counter("spp_hook_overflow_sets_total", "checks that returned an overflown address")
	accessFaults = telemetry.Default.Counter("spp_access_faults_total", "safety violations surfaced at an access site")
)

// recordOverflow files a check-time audit record: an SPP hook computed
// an address with the overflow bit set, so the upcoming access will
// fault. p is the incoming tagged pointer, result the hook's output.
func (s *SPP) recordOverflow(kind string, p, result, n uint64) {
	hookOverflow.Inc()
	v := telemetry.Violation{
		Mechanism:  "spp",
		Kind:       kind,
		Addr:       result,
		Tag:        s.enc.Tag(p),
		AccessSize: n,
	}
	enrich(s.pool, &v, s.enc.Addr(result))
	seq := telemetry.Audit.Record(v)
	telemetry.Flight.Record(telemetry.EvViolation, result, seq)
}

// Trap files an audit record when err is a detected memory-safety
// violation surfacing at the access itself — a vmem fault (SPP) or an
// explicit sanitizer report — then returns err unchanged. The checked
// load/store helpers wrap every error exit with it; for SPP this
// yields a second record completing the check-time one, with the
// access-site view of the same violation.
func Trap(rt Runtime, err error) error {
	if err == nil {
		return nil
	}
	var ve *ViolationError
	if errors.As(err, &ve) {
		accessFaults.Inc()
		v := telemetry.Violation{
			Mechanism:  ve.Mechanism,
			Kind:       "violation",
			Addr:       ve.Addr,
			AccessSize: ve.Size,
		}
		enrich(rt.Pool(), &v, ve.Addr)
		seq := telemetry.Audit.Record(v)
		telemetry.Flight.Record(telemetry.EvViolation, ve.Addr, seq)
		return err
	}
	var fe *vmem.FaultError
	if errors.As(err, &fe) {
		accessFaults.Inc()
		v := telemetry.Violation{
			Mechanism:  rt.Name(),
			Kind:       "access-fault",
			Addr:       fe.Addr,
			AccessSize: fe.Size,
		}
		addr := fe.Addr
		if pool := rt.Pool(); pool != nil && pool.SPP() {
			addr = pool.Encoding().Addr(fe.Addr)
		}
		enrich(rt.Pool(), &v, addr)
		seq := telemetry.Audit.Record(v)
		telemetry.Flight.Record(telemetry.EvViolation, fe.Addr, seq)
	}
	return err
}

// enrich resolves addr into pool coordinates: the pool offset and,
// when the allocator can name it, the enclosing (or immediately
// preceding, for one-past-the-end overflows) live object.
func enrich(pool *pmemobj.Pool, v *telemetry.Violation, addr uint64) {
	if pool == nil {
		return
	}
	off, err := pool.OffsetOf(addr)
	if err != nil {
		return
	}
	v.PoolUUID = pool.UUID()
	v.Offset = off
	if oOff, oSize, ok := pool.ObjectAt(off); ok {
		v.ObjectOff, v.ObjectSize = oOff, oSize
		return
	}
	if off > 0 {
		if oOff, oSize, ok := pool.ObjectAt(off - 1); ok {
			v.ObjectOff, v.ObjectSize = oOff, oSize
		}
	}
}
