package hooks

import (
	"testing"

	"repro/internal/telemetry"
)

// TestOverflowProducesAuditRecord seeds the canonical SPP overflow —
// store one past the end of an allocation — and checks the audit trail
// holds a record whose coordinates name the faulting access: the pool,
// the offset just past the object, the object's bounds, the pointer's
// tag and the access size.
func TestOverflowProducesAuditRecord(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	const objSize = 64
	oid, err := rt.Alloc(objSize)
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Direct(oid)
	// Point at the last word's final 4 bytes: the pointer itself is in
	// bounds (tag intact), but an 8-byte store through it crosses the
	// end, so checkbound — not updatetag — flags the overflow.
	over := rt.Gep(p, objSize-4)
	wantTag := pool.Encoding().Tag(over)
	if wantTag == 0 {
		t.Fatal("in-bounds pointer lost its tag")
	}
	objOff, err := pool.OffsetOf(pool.Encoding().Addr(p))
	if err != nil {
		t.Fatal(err)
	}

	mark := telemetry.Audit.Total()
	if err := StoreU64(rt, over, 1); err == nil {
		t.Fatal("out-of-bounds store succeeded")
	} else if !IsSafetyTrap(err) {
		t.Fatalf("not a safety trap: %v", err)
	}
	recs := telemetry.Audit.RecordsSince(mark)
	if len(recs) < 2 {
		t.Fatalf("got %d audit records, want check-time + access-site", len(recs))
	}

	// The check-time record carries the full pointer view.
	chk := recs[0]
	if chk.Kind != "checkbound" || chk.Mechanism != "spp" {
		t.Fatalf("first record is %s/%s, want spp/checkbound", chk.Mechanism, chk.Kind)
	}
	if chk.Tag != wantTag {
		t.Fatalf("tag %#x, want %#x", chk.Tag, wantTag)
	}
	if chk.AccessSize != 8 {
		t.Fatalf("access size %d, want 8", chk.AccessSize)
	}
	if chk.PoolUUID != pool.UUID() || chk.PoolUUID == 0 {
		t.Fatalf("pool uuid %#x, want %#x", chk.PoolUUID, pool.UUID())
	}
	if want := objOff + objSize - 4; chk.Offset != want {
		t.Fatalf("offset %#x, want the faulting word at %#x", chk.Offset, want)
	}
	// ObjectSize is the block's payload capacity, which size-class
	// rounding makes at least the requested size.
	if chk.ObjectOff != objOff || chk.ObjectSize < objSize {
		t.Fatalf("object [%#x,+%d), want [%#x,+>=%d)", chk.ObjectOff, chk.ObjectSize, objOff, objSize)
	}
	if chk.Goroutine == 0 {
		t.Fatal("goroutine id missing")
	}

	// The access-site record agrees on where the fault landed.
	acc := recs[len(recs)-1]
	if acc.Kind != "access-fault" {
		t.Fatalf("last record kind %q, want access-fault", acc.Kind)
	}
	if acc.Offset != chk.Offset || acc.ObjectOff != chk.ObjectOff {
		t.Fatalf("access-site offset %#x/object %#x disagrees with check-time %#x/%#x",
			acc.Offset, acc.ObjectOff, chk.Offset, chk.ObjectOff)
	}
}

// TestMemIntrOverflowAudited covers the intrinsic check path: a memset
// running off the end of an object files a memintr-kind record.
func TestMemIntrOverflowAudited(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	oid, err := rt.Alloc(32)
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Direct(oid)
	mark := telemetry.Audit.Total()
	if err := Memset(rt, p, 0xaa, 40); err == nil {
		t.Fatal("overlong memset succeeded")
	}
	recs := telemetry.Audit.RecordsSince(mark)
	if len(recs) == 0 {
		t.Fatal("no audit record")
	}
	if recs[0].Kind != "memintr" {
		t.Fatalf("kind %q, want memintr", recs[0].Kind)
	}
	if recs[0].AccessSize != 40 {
		t.Fatalf("access size %d, want 40", recs[0].AccessSize)
	}
	if recs[0].PoolUUID != pool.UUID() {
		t.Fatal("pool not resolved")
	}
}

// TestInBoundsAccessLeavesNoAudit pins the always-on trail's zero-cost
// property for correct programs: clean accesses file nothing.
func TestInBoundsAccessLeavesNoAudit(t *testing.T) {
	pool, as := newPools(t, true)
	rt, err := NewSPP(pool, as)
	if err != nil {
		t.Fatal(err)
	}
	_ = pool
	oid, err := rt.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Direct(oid)
	mark := telemetry.Audit.Total()
	if err := StoreU64(rt, rt.Gep(p, 56), 7); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadU64(rt, rt.Gep(p, 56)); err != nil {
		t.Fatal(err)
	}
	if got := telemetry.Audit.Total() - mark; got != 0 {
		t.Fatalf("%d audit records from in-bounds accesses", got)
	}
}
