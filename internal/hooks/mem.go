package hooks

import "fmt"

// Checked load/store helpers. Each is a dereference site: the hook
// (Check) runs first, then the access goes through the simulated
// address space, where an SPP overflow faults.

// LoadU64 loads 8 bytes through the runtime's bounds check.
func LoadU64(rt Runtime, p uint64) (uint64, error) {
	a, err := rt.Check(p, 8)
	if err != nil {
		return 0, Trap(rt, err)
	}
	v, err := rt.Space().LoadU64(a)
	return v, Trap(rt, err)
}

// StoreU64 stores 8 bytes through the runtime's bounds check.
func StoreU64(rt Runtime, p uint64, v uint64) error {
	a, err := rt.Check(p, 8)
	if err != nil {
		return Trap(rt, err)
	}
	return Trap(rt, rt.Space().StoreU64(a, v))
}

// LoadU8 loads one byte through the runtime's bounds check.
func LoadU8(rt Runtime, p uint64) (byte, error) {
	a, err := rt.Check(p, 1)
	if err != nil {
		return 0, Trap(rt, err)
	}
	b, err := rt.Space().LoadU8(a)
	return b, Trap(rt, err)
}

// StoreU8 stores one byte through the runtime's bounds check.
func StoreU8(rt Runtime, p uint64, v byte) error {
	a, err := rt.Check(p, 1)
	if err != nil {
		return Trap(rt, err)
	}
	return Trap(rt, rt.Space().StoreU8(a, v))
}

// LoadU64PM is LoadU64 through the _direct hook for statically-known
// PM pointers (pointer-tracking optimization).
func LoadU64PM(rt Runtime, p uint64) (uint64, error) {
	a, err := rt.CheckPM(p, 8)
	if err != nil {
		return 0, Trap(rt, err)
	}
	v, err := rt.Space().LoadU64(a)
	return v, Trap(rt, err)
}

// StoreU64PM is StoreU64 through the _direct hook.
func StoreU64PM(rt Runtime, p uint64, v uint64) error {
	a, err := rt.CheckPM(p, 8)
	if err != nil {
		return Trap(rt, err)
	}
	return Trap(rt, rt.Space().StoreU64(a, v))
}

// Interposed memory intrinsics — SPP's __wrap_memcpy family (§IV-D).
// Each pointer operand passes through MemIntr with the full touched
// range, then the built-in operation runs on the masked addresses.

// Memcpy copies n bytes; ranges must not overlap.
func Memcpy(rt Runtime, dst, src uint64, n uint64) error {
	return Memmove(rt, dst, src, n)
}

// Memmove copies n bytes with overlap allowed.
func Memmove(rt Runtime, dst, src uint64, n uint64) error {
	if n == 0 {
		return nil
	}
	sa, err := rt.MemIntr(src, n)
	if err != nil {
		return Trap(rt, err)
	}
	da, err := rt.MemIntr(dst, n)
	if err != nil {
		return Trap(rt, err)
	}
	return Trap(rt, rt.Space().Memmove(da, sa, n))
}

// Memset fills n bytes with c.
func Memset(rt Runtime, dst uint64, c byte, n uint64) error {
	if n == 0 {
		return nil
	}
	da, err := rt.MemIntr(dst, n)
	if err != nil {
		return Trap(rt, err)
	}
	return Trap(rt, rt.Space().Memset(da, c, n))
}

// Strlen returns the length of the NUL-terminated string at p. The
// scan itself is the access: running off the object's end faults
// (SPP) or reports a violation (shadow mechanisms) at the first
// out-of-bounds byte.
func Strlen(rt Runtime, p uint64) (uint64, error) {
	var n uint64
	for {
		b, err := LoadU8(rt, rt.Gep(p, int64(n)))
		if err != nil {
			return 0, err
		}
		if b == 0 {
			return n, nil
		}
		n++
		if n > 1<<30 {
			return 0, fmt.Errorf("hooks: unterminated string at %#x", p)
		}
	}
}

// Strcpy copies the NUL-terminated string at src to dst, checking the
// whole destination range first, as SPP's wrapper does.
func Strcpy(rt Runtime, dst, src uint64) error {
	n, err := Strlen(rt, src)
	if err != nil {
		return err
	}
	sa, err := rt.MemIntr(src, n+1)
	if err != nil {
		return Trap(rt, err)
	}
	da, err := rt.MemIntr(dst, n+1)
	if err != nil {
		return Trap(rt, err)
	}
	return Trap(rt, rt.Space().Memmove(da, sa, n+1))
}

// Strcat appends the string at src to the string at dst.
func Strcat(rt Runtime, dst, src uint64) error {
	dlen, err := Strlen(rt, dst)
	if err != nil {
		return err
	}
	return Strcpy(rt, rt.Gep(dst, int64(dlen)), src)
}

// Strcmp compares the strings at a and b like C strcmp.
func Strcmp(rt Runtime, a, b uint64) (int, error) {
	for i := int64(0); ; i++ {
		ca, err := LoadU8(rt, rt.Gep(a, i))
		if err != nil {
			return 0, err
		}
		cb, err := LoadU8(rt, rt.Gep(b, i))
		if err != nil {
			return 0, err
		}
		switch {
		case ca < cb:
			return -1, nil
		case ca > cb:
			return 1, nil
		case ca == 0:
			return 0, nil
		}
	}
}

// StoreBytes writes b through a single intrinsic-style check.
func StoreBytes(rt Runtime, dst uint64, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	da, err := rt.MemIntr(dst, uint64(len(b)))
	if err != nil {
		return Trap(rt, err)
	}
	return Trap(rt, rt.Space().StoreBytes(da, b))
}

// LoadBytes reads n bytes through a single intrinsic-style check.
func LoadBytes(rt Runtime, src uint64, n uint64) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	sa, err := rt.MemIntr(src, n)
	if err != nil {
		return nil, Trap(rt, err)
	}
	b, err := rt.Space().LoadBytes(sa, n)
	return b, Trap(rt, err)
}
