package hooks

import (
	"sync"
	"testing"
)

// TestRuntimesAreConcurrencySafe drives the Native and SPP runtimes
// from many goroutines at once — alloc, gep, checked load/store, free.
// Both runtimes are stateless after construction (all mutable state
// lives in the pool, whose memory path is concurrency-safe), so the
// test's real assertion is a clean run under -race.
func TestRuntimesAreConcurrencySafe(t *testing.T) {
	for _, tc := range []struct {
		name string
		spp  bool
	}{
		{"native", false},
		{"spp", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			pool, as := newPools(t, tc.spp)
			var rt Runtime
			if tc.spp {
				var err error
				if rt, err = NewSPP(pool, as); err != nil {
					t.Fatal(err)
				}
			} else {
				rt = NewNative(pool, as)
			}
			const workers = 8
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 200; i++ {
						oid, err := rt.Alloc(128)
						if err != nil {
							t.Errorf("worker %d: Alloc: %v", w, err)
							return
						}
						p := rt.Direct(oid)
						q := rt.Gep(p, int64(i%16)*8)
						want := uint64(w)<<32 | uint64(i)
						if err := StoreU64(rt, q, want); err != nil {
							t.Errorf("worker %d: StoreU64: %v", w, err)
							return
						}
						got, err := LoadU64(rt, q)
						if err != nil {
							t.Errorf("worker %d: LoadU64: %v", w, err)
							return
						}
						if got != want {
							t.Errorf("worker %d: read %#x, want %#x", w, got, want)
							return
						}
						if err := rt.Free(oid); err != nil {
							t.Errorf("worker %d: Free: %v", w, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}
