package engine

import (
	"flag"
	"fmt"
	"reflect"
	"testing"
)

// TestRegisterFlagsCoversEveryKnob walks Knobs with reflection: every
// field must have a flag in knobFlags, the flag must be registered,
// and setting the flag must change that field (so a renamed field
// can't leave a stale mapping behind).
func TestRegisterFlagsCoversEveryKnob(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	k := RegisterFlags(fs)

	typ := reflect.TypeOf(Knobs{})
	if len(knobFlags) != typ.NumField() {
		t.Errorf("knobFlags has %d entries, Knobs has %d fields", len(knobFlags), typ.NumField())
	}
	for i := 0; i < typ.NumField(); i++ {
		field := typ.Field(i)
		name, ok := knobFlags[field.Name]
		if !ok {
			t.Errorf("Knobs.%s has no entry in knobFlags", field.Name)
			continue
		}
		if fs.Lookup(name) == nil {
			t.Errorf("Knobs.%s: flag -%s not registered", field.Name, name)
			continue
		}
		var sample string
		switch field.Type.Kind() {
		case reflect.Bool:
			sample = "true"
		default:
			sample = fmt.Sprintf("%d", i+2)
		}
		if err := fs.Set(name, sample); err != nil {
			t.Errorf("Knobs.%s: set -%s=%s: %v", field.Name, name, sample, err)
			continue
		}
		got := reflect.ValueOf(*k).Field(i)
		if got.IsZero() {
			t.Errorf("Knobs.%s: flag -%s did not populate the field", field.Name, name)
		}
	}
}
