// Package enginetest provides reflection helpers for the
// knob-plumbing completeness tests: every layer that embeds
// engine.Knobs asserts (with Filled) that a fully non-zero knob set
// survives its translation, so a field added to Knobs is covered by
// those tests without editing them.
package enginetest

import (
	"fmt"
	"reflect"

	"repro/internal/engine"
)

// Filled returns a Knobs with every field set to a distinct non-zero
// value, whatever the current field set is.
func Filled() engine.Knobs {
	var k engine.Knobs
	fill(reflect.ValueOf(&k).Elem())
	return k
}

// FilledGeometry is Filled for the pool-geometry struct.
func FilledGeometry() engine.Geometry {
	var g engine.Geometry
	fill(reflect.ValueOf(&g).Elem())
	return g
}

func fill(v reflect.Value) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		switch f.Kind() {
		case reflect.Bool:
			f.SetBool(true)
		case reflect.Int, reflect.Int64:
			f.SetInt(int64(i + 3))
		case reflect.Uint, reflect.Uint64:
			f.SetUint(uint64(i + 5))
		default:
			panic(fmt.Sprintf("enginetest: unhandled field kind %s for %s",
				f.Kind(), v.Type().Field(i).Name))
		}
	}
}
