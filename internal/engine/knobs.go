// Package engine holds the single definition of the engine's tuning
// surface. Every layer that used to re-declare these fields —
// pmemobj.Config, variant.Options, bench.Config, and each binary's
// flag block — now embeds Knobs (and, where pool geometry matters,
// Geometry) instead, so a knob added here is automatically carried
// through pool creation, environment assembly, the benchmark harness,
// and the command-line of sppbench, sppc and sppserver. RegisterFlags
// is the one flag-registration site; knobFlags names the flag for each
// field and the tests assert the mapping is total, so a new field
// cannot silently miss its flag or get dropped in translation.
package engine

import "flag"

// Knobs are the volatile engine knobs: they shape rebuilt in-memory
// structure and dispatch, never the persistent layout, so any pool may
// be opened under any combination.
type Knobs struct {
	// NArenas is the number of heap arenas (independent allocator
	// shards); the pool default when zero.
	NArenas int
	// DisableLaneAffinity turns off the worker-affine lane cache and
	// dispenses every lane through the shared channel.
	DisableLaneAffinity bool
	// DisableRangeDedup makes AddRange snapshot every requested range
	// in full instead of only the sub-ranges not yet covered by this
	// transaction's interval set.
	DisableRangeDedup bool
	// DisableFlushCoalesce makes the commit pipeline's flush
	// accumulators pass each flush straight to the device instead of
	// merging duplicate and adjacent cachelines per fence epoch.
	DisableFlushCoalesce bool
	// DisableGroupFence gives every committer a private fence instead
	// of sharing one through the device's epoch combiner.
	DisableGroupFence bool
	// DisableBitmapAlloc turns off the hierarchical free-bitmap
	// size-class pools and serves every block from the map-based free
	// lists; both modes rebuild from the same persistent headers.
	DisableBitmapAlloc bool
	// NoCompile makes the interpreter execute IR by walking
	// instructions instead of through closure-compiled functions (the
	// interpreter is the reference semantics).
	NoCompile bool
	// NoMVCC turns off multi-version snapshot isolation in the
	// kvstore: reads take the per-shard RWMutex like writers instead of
	// running lock-free against published copy-on-write roots, and
	// Snapshot falls back to locked reads. The ablation baseline for
	// -exp scan.
	NoMVCC bool
	// Telemetry turns on the global metrics registry; process-wide
	// once set (see internal/telemetry).
	Telemetry bool
	// FlightRecorder turns on the global flight-recorder event ring.
	FlightRecorder bool
	// TraceSample traces 1 in N served requests with a per-phase
	// latency breakdown (internal/trace); 0 disables request tracing.
	// The server applies its own sampler to requests whose client sent
	// no trace context, so attribution works with old clients too.
	TraceSample int
	// SlowTraceUS captures traced requests at least this many
	// microseconds slow as whole-request exemplars on /debug/slow;
	// 0 disables exemplar capture.
	SlowTraceUS int
	// MetricsSample records 1 in N increments (weighted, rounded up to
	// a power of two) on the hottest per-access hook counters instead
	// of every one, so telemetry stays cheap on multi-core; 0 or 1
	// counts exactly.
	MetricsSample int
}

// Geometry sizes the pool's transaction logs. Unlike Knobs these are
// persisted in the pool header at creation; on reopen the header wins.
type Geometry struct {
	// NLanes is the number of redo/undo lanes (concurrent
	// transactions).
	NLanes int
	// RedoEntries is the redo-log capacity per lane.
	RedoEntries int
	// UndoBytes is the undo-log capacity per lane.
	UndoBytes uint64
}

// knobFlags maps every Knobs field to its canonical command-line flag.
// TestRegisterFlagsCoversEveryKnob walks the struct and fails on any
// field missing here, and RegisterFlags is driven off the same table,
// so the mapping cannot drift.
var knobFlags = map[string]string{
	"NArenas":              "arenas",
	"DisableLaneAffinity":  "no-affinity",
	"DisableRangeDedup":    "no-range-dedup",
	"DisableFlushCoalesce": "no-flush-coalesce",
	"DisableGroupFence":    "no-group-fence",
	"DisableBitmapAlloc":   "no-bitmap-alloc",
	"NoCompile":            "no-compile",
	"NoMVCC":               "no-mvcc",
	"Telemetry":            "metrics",
	"FlightRecorder":       "flight",
	"TraceSample":          "trace-sample",
	"SlowTraceUS":          "slow-threshold",
	"MetricsSample":        "metrics-sample",
}

// RegisterFlags registers one flag per Knobs field on fs and returns
// the Knobs the parsed flags populate. It is the only flag-registration
// site for engine knobs; sppbench, sppc and sppserver all consume it.
func RegisterFlags(fs *flag.FlagSet) *Knobs {
	k := &Knobs{}
	fs.IntVar(&k.NArenas, knobFlags["NArenas"], 0,
		"allocator arena count (0 = pool default)")
	fs.BoolVar(&k.DisableLaneAffinity, knobFlags["DisableLaneAffinity"], false,
		"disable the worker-affine lane cache")
	fs.BoolVar(&k.DisableRangeDedup, knobFlags["DisableRangeDedup"], false,
		"disable undo-range interval dedup in transactions")
	fs.BoolVar(&k.DisableFlushCoalesce, knobFlags["DisableFlushCoalesce"], false,
		"disable commit-time flush coalescing")
	fs.BoolVar(&k.DisableGroupFence, knobFlags["DisableGroupFence"], false,
		"disable the cross-lane group-fence combiner")
	fs.BoolVar(&k.DisableBitmapAlloc, knobFlags["DisableBitmapAlloc"], false,
		"disable the free-bitmap size-class pools; use map-based free lists")
	fs.BoolVar(&k.NoCompile, knobFlags["NoCompile"], false,
		"disable closure compilation; run every function in the reference interpreter")
	fs.BoolVar(&k.NoMVCC, knobFlags["NoMVCC"], false,
		"disable MVCC snapshot isolation; kvstore reads take shard locks")
	fs.BoolVar(&k.Telemetry, knobFlags["Telemetry"], false,
		"enable the telemetry metrics registry")
	fs.BoolVar(&k.FlightRecorder, knobFlags["FlightRecorder"], false,
		"enable the flight-recorder event ring")
	fs.IntVar(&k.TraceSample, knobFlags["TraceSample"], 0,
		"trace 1 in N served requests with a per-phase latency breakdown (0 = off)")
	fs.IntVar(&k.SlowTraceUS, knobFlags["SlowTraceUS"], 0,
		"capture traced requests at least this many µs slow as /debug/slow exemplars (0 = off)")
	fs.IntVar(&k.MetricsSample, knobFlags["MetricsSample"], 0,
		"sample 1 in N hook-counter increments, weighted (0 or 1 = exact)")
	return k
}
