package ir

import (
	"strings"
	"testing"
)

const sample = `
extern @ext_store8
func @main(%a) {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %q = gep %p, 8
  store.8 %q, %a
  %x = load.8 %q
  %i = ptrtoint %p
  %p2 = inttoptr %i
  %c = icmp.lt %x, %a
  condbr %c, more, done
more: !loop.bound 4
  %off = mul %x, %s
  %r = gep %p, %off
  %y = load.8 %r
  %z = callext @ext_store8, %p, %y
  br done
done:
  memcpy %p, %q, %s
  ret %x
}
`

func TestParseAndRoundTrip(t *testing.T) {
	m, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Funcs) != 2 {
		t.Fatalf("funcs = %d", len(m.Funcs))
	}
	if !m.Func("ext_store8").External {
		t.Error("extern not marked external")
	}
	f := m.Func("main")
	if len(f.Params) != 1 || f.Params[0] != "%a" {
		t.Errorf("params = %v", f.Params)
	}
	if f.Block("more").LoopBound != 4 {
		t.Errorf("loop bound = %d", f.Block("more").LoopBound)
	}
	// Round-trip: print, reparse, print again; must be stable.
	text1 := m.String()
	m2, err := Parse(text1)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text1)
	}
	if text2 := m2.String(); text1 != text2 {
		t.Errorf("round trip unstable:\n%s\nvs\n%s", text1, text2)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, src string
	}{
		{"garbage", "hello world"},
		{"no header brace", "func @f()\nentry:\n ret\n}"},
		{"unknown op", "func @f() {\nentry:\n  frobnicate %x\n}"},
		{"bad const", "func @f() {\nentry:\n  %x = const zebra\n  ret %x\n}"},
		{"unterminated", "func @f() {\nentry:\n  ret"},
		{"instr before label", "func @f() {\n  ret\n}"},
		{"bad loop bound", "func @f() {\nentry: !loop.bound x\n  ret\n}"},
		{"branch to nowhere", "func @f() {\nentry:\n  br missing\n}"},
		{"misplaced terminator", "func @f() {\nentry:\n  ret\n  %x = const 1\n}"},
		{"bad size", "func @f(%p) {\nentry:\n  %x = load.3 %p\n  ret %x\n}"},
		{"call unknown", "func @f() {\nentry:\n  call @nope\n  ret\n}"},
		{"internal call to extern", "extern @e\nfunc @f() {\nentry:\n  call @e\n  ret\n}"},
		{"call target not @name", "func @g() {\nentry:\n  ret\n}\nfunc @f() {\nentry:\n  call g\n  ret\n}"},
		{"call arity mismatch", "func @g(%a) {\nentry:\n  ret %a\n}\nfunc @f() {\nentry:\n  %r = call @g\n  ret %r\n}"},
		{"duplicate function", "func @f() {\nentry:\n  ret\n}\nfunc @f() {\nentry:\n  ret\n}"},
		{"duplicate label", "func @f() {\nentry:\n  br next\nnext:\n  br next2\nnext:\n  ret\nnext2:\n  ret\n}"},
		{"undefined value ref", "func @f() {\nentry:\n  %x = add %a, %b\n  ret %x\n}"},
		{"undefined condbr cond", "func @f() {\nentry:\n  condbr %c, a, b\na:\n  ret\nb:\n  ret\n}"},
		{"trailing text after label", "func @f() {\nentry: junk\n  ret\n}"},
		{"bad gep offset", "func @f(%p) {\nentry:\n  %q = gep %p, zebra\n  ret\n}"},
		{"gep missing offset", "func @f(%p) {\nentry:\n  %q = gep %p\n  ret\n}"},
		{"condbr missing else", "func @f(%c) {\nentry:\n  condbr %c, a\na:\n  ret\n}"},
		{"trailing operands", "func @f() {\nentry:\n  br a, b\n}"},
		{"zero-size bound check", "func @f(%p) {\nentry:\n  %c = spp.checkbound %p\n  ret\n}"},
		{"flush arity", "func @f(%p) {\nentry:\n  flush %p, %p\n  ret\n}"},
		{"fence with operand", "func @f(%p) {\nentry:\n  fence %p\n  ret\n}"},
		{"bad updatetag offset", "func @f(%p) {\nentry:\n  %q = spp.updatetag %p, zebra\n  ret\n}"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.src); err == nil {
				t.Errorf("Parse succeeded on %q", tt.src)
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	m, err := Parse(sample)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	c.Func("main").Blocks[0].Instrs[0].Imm = 999
	c.Func("main").Blocks[0].Instrs[3].Args[0] = "%other"
	if m.Func("main").Blocks[0].Instrs[0].Imm == 999 {
		t.Error("Imm aliased")
	}
	if m.Func("main").Blocks[0].Instrs[3].Args[0] == "%other" {
		t.Error("Args aliased")
	}
	if c.Func("main").Block("more").LoopBound != 4 {
		t.Error("LoopBound lost in clone")
	}
}

func TestVerifyCatchesEmptyFunction(t *testing.T) {
	m := &Module{Funcs: []*Func{{Name: "f"}}}
	if err := m.Verify(); err == nil {
		t.Error("empty function accepted")
	}
	m = &Module{Funcs: []*Func{{Name: "f", Blocks: []*Block{{Name: "entry"}}}}}
	if err := m.Verify(); err == nil {
		t.Error("empty block accepted")
	}
}

func TestInstrStringAnnotations(t *testing.T) {
	in := &Instr{Op: SppCheckBound, Dst: "%c", Args: []string{"%p"}, Size: 8, KnownPM: true}
	s := in.String()
	if !strings.Contains(s, "!pm") || !strings.Contains(s, "spp.checkbound.8") {
		t.Errorf("String = %q", s)
	}
	in2 := &Instr{Op: MemCpy, Args: []string{"%a", "%b", "%n"}, Wrapped: true}
	if !strings.Contains(in2.String(), "!wrapped") {
		t.Errorf("String = %q", in2.String())
	}
}

func TestParseFlushFence(t *testing.T) {
	src := `
func @f(%p, %v) {
entry:
  store.8 %p, %v
  flush %p
  fence
  ret %v
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	instrs := m.Func("f").Blocks[0].Instrs
	if instrs[1].Op != Flush || instrs[1].Args[0] != "%p" {
		t.Errorf("flush parsed as %s", instrs[1])
	}
	if instrs[2].Op != Fence || len(instrs[2].Args) != 0 {
		t.Errorf("fence parsed as %s", instrs[2])
	}
	// Round trip.
	text := m.String()
	if _, err := Parse(text); err != nil {
		t.Errorf("reparse: %v\n%s", err, text)
	}
}

func TestParseComments(t *testing.T) {
	src := `
; leading comment
func @f() { ; trailing
entry:
  %x = const 1 ; a constant
  ret %x
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if m.Func("f") == nil {
		t.Error("function lost")
	}
}
