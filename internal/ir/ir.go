// Package ir defines a miniature SSA-style intermediate representation
// standing in for LLVM IR in this reproduction. The SPP transformation
// and LTO passes (package transform) rewrite modules of this IR — the
// same decisions the paper's LLVM passes make: where to inject tag
// updates and bound checks, which pointers to classify as volatile,
// persistent or unknown, and which checks to merge or hoist.
package ir

import (
	"fmt"
	"strings"
)

// Op enumerates instruction opcodes.
type Op int

// Application opcodes.
const (
	Const      Op = iota + 1 // dst = Imm
	Malloc                   // dst = volatile alloc(arg0 bytes)
	PmemAlloc                // dst = oid handle of pmemobj_alloc(arg0 bytes)
	PmemDirect               // dst = pmemobj_direct(arg0 oid)
	Gep                      // dst = arg0 + arg1 (pointer arithmetic)
	Load                     // dst = *(arg0), Size bytes
	Store                    // *(arg0) = arg1, Size bytes
	PtrToInt                 // dst = integer value of arg0
	IntToPtr                 // dst = pointer from integer arg0
	Add                      // dst = arg0 + arg1
	Sub                      // dst = arg0 - arg1
	Mul                      // dst = arg0 * arg1
	ICmpLt                   // dst = arg0 < arg1 (1 or 0)
	ICmpEq                   // dst = arg0 == arg1
	Br                       // jump to Sym
	CondBr                   // if arg0 != 0 jump Sym else SymElse
	Ret                      // return arg0 (optional)
	Call                     // dst = call Sym(args...) — internal function
	CallExt                  // dst = call Sym(args...) — external library
	MemCpy                   // memcpy(arg0 dst, arg1 src, arg2 n)
	MemSet                   // memset(arg0 dst, arg1 byte, arg2 n)
	StrCpy                   // strcpy(arg0 dst, arg1 src)
	Flush                    // write-back the cacheline holding *(arg0) (CLWB)
	Fence                    // store fence ordering prior flushes (SFENCE)
)

// SPP hook opcodes, inserted by the transformation pass (Listing 1).
const (
	SppUpdateTag     Op = iota + 100 // dst = __spp_updatetag(arg0, Imm)
	SppCheckBound                    // dst = __spp_checkbound(arg0, Size)
	SppCleanTag                      // dst = __spp_cleantag(arg0)
	SppCleanExternal                 // dst = __spp_cleantag_external(arg0)
	SppMemIntrCheck                  // dst = __spp_memintr_check(arg0, arg1 bytes)
)

var opNames = map[Op]string{
	Const: "const", Malloc: "malloc", PmemAlloc: "pmalloc", PmemDirect: "direct",
	Gep: "gep", Load: "load", Store: "store", PtrToInt: "ptrtoint", IntToPtr: "inttoptr",
	Add: "add", Sub: "sub", Mul: "mul", ICmpLt: "icmp.lt", ICmpEq: "icmp.eq",
	Br: "br", CondBr: "condbr", Ret: "ret", Call: "call", CallExt: "callext",
	MemCpy: "memcpy", MemSet: "memset", StrCpy: "strcpy",
	Flush: "flush", Fence: "fence",
	SppUpdateTag: "spp.updatetag", SppCheckBound: "spp.checkbound",
	SppCleanTag: "spp.cleantag", SppCleanExternal: "spp.cleantag.ext",
	SppMemIntrCheck: "spp.memintr",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Instr is one instruction.
type Instr struct {
	Op   Op
	Dst  string   // result value name ("" if none)
	Args []string // operand value names
	Imm  int64    // immediate (Const value, Gep constant offset, hook offset)
	// Size is the access width of Load/Store/SppCheckBound.
	Size uint64
	// Sym is the branch target or callee name; SymElse the fallthrough
	// of CondBr.
	Sym, SymElse string
	// KnownPM is set by the pointer-tracking pass when the operand is
	// statically persistent: the hook may skip the PM-bit test (the
	// _direct runtime variants of §V-B).
	KnownPM bool
	// Wrapped marks a memory intrinsic interposed by the LTO pass
	// (__wrap_memcpy and friends).
	Wrapped bool
	// SkipTagUpdate exempts a Gep from __spp_updatetag injection: its
	// base is already a masked pointer from a merged or hoisted check.
	SkipTagUpdate bool
	// SkipCheck exempts a Load/Store from __spp_checkbound injection
	// for the same reason.
	SkipCheck bool
}

// NoTagUpdate reports whether the instrumentation must not inject a
// tag update after this Gep.
func (in *Instr) NoTagUpdate() bool { return in.SkipTagUpdate }

// PreChecked reports whether the access was covered by a merged or
// hoisted bound check.
func (in *Instr) PreChecked() bool { return in.SkipCheck }

func (in *Instr) String() string {
	var b strings.Builder
	if in.Dst != "" {
		fmt.Fprintf(&b, "%s = ", in.Dst)
	}
	b.WriteString(in.Op.String())
	if in.Op == Load || in.Op == Store || in.Op == SppCheckBound {
		fmt.Fprintf(&b, ".%d", in.Size)
	}
	writeArgs := func(args []string) {
		for i, a := range args {
			if i == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteString(", ")
			}
			b.WriteString(a)
		}
	}
	switch in.Op {
	case Const:
		fmt.Fprintf(&b, " %d", in.Imm)
	case SppUpdateTag:
		writeArgs(in.Args)
		if len(in.Args) == 1 {
			fmt.Fprintf(&b, ", %d", in.Imm)
		}
	case Gep:
		writeArgs(in.Args)
		if len(in.Args) == 1 {
			fmt.Fprintf(&b, ", %d", in.Imm)
		}
	case Br:
		fmt.Fprintf(&b, " %s", in.Sym)
	case CondBr:
		fmt.Fprintf(&b, " %s, %s, %s", in.Args[0], in.Sym, in.SymElse)
	case Call, CallExt:
		fmt.Fprintf(&b, " @%s", in.Sym)
		for _, a := range in.Args {
			fmt.Fprintf(&b, ", %s", a)
		}
	default:
		writeArgs(in.Args)
	}
	if in.KnownPM {
		b.WriteString(" !pm")
	}
	if in.Wrapped {
		b.WriteString(" !wrapped")
	}
	return b.String()
}

// Block is a basic block.
type Block struct {
	Name   string
	Instrs []*Instr
	// LoopBound, when positive, annotates a self-looping block with
	// its trip count — the stand-in for LLVM scalar-evolution results
	// that the bound-check hoisting optimization consumes (§V-C).
	LoopBound int64
}

// Func is a function.
type Func struct {
	Name   string
	Params []string
	Blocks []*Block
	// External marks a declaration for an uninstrumented library
	// function (no body).
	External bool
}

// Block returns the named block, or nil.
func (f *Func) Block(name string) *Block {
	for _, b := range f.Blocks {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// Module is a compilation unit.
type Module struct {
	Funcs []*Func
}

// Func returns the named function, or nil.
func (m *Module) Func(name string) *Func {
	for _, f := range m.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// String renders the module in the textual syntax accepted by Parse.
func (m *Module) String() string {
	var b strings.Builder
	for _, f := range m.Funcs {
		if f.External {
			fmt.Fprintf(&b, "extern @%s\n", f.Name)
			continue
		}
		fmt.Fprintf(&b, "func @%s(%s) {\n", f.Name, strings.Join(f.Params, ", "))
		for _, blk := range f.Blocks {
			if blk.LoopBound > 0 {
				fmt.Fprintf(&b, "%s: !loop.bound %d\n", blk.Name, blk.LoopBound)
			} else {
				fmt.Fprintf(&b, "%s:\n", blk.Name)
			}
			for _, in := range blk.Instrs {
				fmt.Fprintf(&b, "  %s\n", in)
			}
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// Verify performs structural checks: unique function and block names,
// defined blocks for branch targets, terminators at block ends, call
// arity, and every value reference resolving to a parameter or an
// instruction result of the function.
func (m *Module) Verify() error {
	funcNames := make(map[string]bool, len(m.Funcs))
	for _, f := range m.Funcs {
		if funcNames[f.Name] {
			return fmt.Errorf("ir: duplicate function %q", f.Name)
		}
		funcNames[f.Name] = true
	}
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		if len(f.Blocks) == 0 {
			return fmt.Errorf("ir: function %s has no blocks", f.Name)
		}
		defined := make(map[string]bool)
		for _, p := range f.Params {
			defined[p] = true
		}
		blockNames := make(map[string]bool, len(f.Blocks))
		for _, blk := range f.Blocks {
			if blockNames[blk.Name] {
				return fmt.Errorf("ir: %s: duplicate block label %q", f.Name, blk.Name)
			}
			blockNames[blk.Name] = true
			for _, in := range blk.Instrs {
				if in.Dst != "" {
					defined[in.Dst] = true
				}
			}
		}
		for _, blk := range f.Blocks {
			if len(blk.Instrs) == 0 {
				return fmt.Errorf("ir: %s/%s is empty", f.Name, blk.Name)
			}
			for i, in := range blk.Instrs {
				isTerm := in.Op == Br || in.Op == CondBr || in.Op == Ret
				if isTerm != (i == len(blk.Instrs)-1) {
					return fmt.Errorf("ir: %s/%s: terminator misplaced at %d (%s)", f.Name, blk.Name, i, in)
				}
				for _, a := range in.Args {
					if !defined[a] {
						return fmt.Errorf("ir: %s/%s: use of undefined value %q in %q", f.Name, blk.Name, a, in)
					}
				}
				switch in.Op {
				case Br:
					if f.Block(in.Sym) == nil {
						return fmt.Errorf("ir: %s: branch to unknown block %q", f.Name, in.Sym)
					}
				case CondBr:
					if f.Block(in.Sym) == nil || f.Block(in.SymElse) == nil {
						return fmt.Errorf("ir: %s: condbr to unknown block", f.Name)
					}
				case Call:
					callee := m.Func(in.Sym)
					if callee == nil {
						return fmt.Errorf("ir: %s: call to unknown function %q", f.Name, in.Sym)
					}
					if callee.External {
						return fmt.Errorf("ir: %s: internal call to external %q (use callext)", f.Name, in.Sym)
					}
					if len(in.Args) != len(callee.Params) {
						return fmt.Errorf("ir: %s: call @%s with %d args, want %d", f.Name, in.Sym, len(in.Args), len(callee.Params))
					}
				case Load, Store:
					switch in.Size {
					case 1, 2, 4, 8:
					default:
						return fmt.Errorf("ir: %s: bad access size %d", f.Name, in.Size)
					}
				case SppCheckBound:
					if in.Size == 0 {
						return fmt.Errorf("ir: %s: zero-size bound check", f.Name)
					}
				case Flush:
					if len(in.Args) != 1 {
						return fmt.Errorf("ir: %s: flush wants 1 operand, got %d", f.Name, len(in.Args))
					}
				case Fence:
					if len(in.Args) != 0 {
						return fmt.Errorf("ir: %s: fence takes no operands", f.Name)
					}
				}
			}
		}
	}
	return nil
}

// Clone deep-copies the module so a pass can rewrite it without
// mutating the input.
func (m *Module) Clone() *Module {
	out := &Module{Funcs: make([]*Func, len(m.Funcs))}
	for i, f := range m.Funcs {
		nf := &Func{Name: f.Name, Params: append([]string(nil), f.Params...), External: f.External}
		for _, blk := range f.Blocks {
			nb := &Block{Name: blk.Name, LoopBound: blk.LoopBound}
			for _, in := range blk.Instrs {
				cp := *in
				cp.Args = append([]string(nil), in.Args...)
				nb.Instrs = append(nb.Instrs, &cp)
			}
			nf.Blocks = append(nf.Blocks, nb)
		}
		out.Funcs[i] = nf
	}
	return out
}
