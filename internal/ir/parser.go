package ir

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads a module from its textual form. The syntax matches
// Module.String; see the package examples and the compiler-pass
// example program.
func Parse(src string) (*Module, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	m, err := p.module()
	if err != nil {
		return nil, err
	}
	if err := m.Verify(); err != nil {
		return nil, err
	}
	return m, nil
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ir: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := p.lines[p.pos]
		p.pos++
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (p *parser) module() (*Module, error) {
	m := &Module{}
	for {
		line, ok := p.next()
		if !ok {
			return m, nil
		}
		switch {
		case strings.HasPrefix(line, "extern @"):
			m.Funcs = append(m.Funcs, &Func{Name: strings.TrimPrefix(line, "extern @"), External: true})
		case strings.HasPrefix(line, "func @"):
			f, err := p.funcDef(line)
			if err != nil {
				return nil, err
			}
			m.Funcs = append(m.Funcs, f)
		default:
			return nil, p.errf("expected func or extern, got %q", line)
		}
	}
}

func (p *parser) funcDef(header string) (*Func, error) {
	open := strings.Index(header, "(")
	close := strings.Index(header, ")")
	if open < 0 || close < open || !strings.HasSuffix(header, "{") {
		return nil, p.errf("malformed function header %q", header)
	}
	f := &Func{Name: strings.TrimPrefix(header[:open], "func @")}
	if params := strings.TrimSpace(header[open+1 : close]); params != "" {
		for _, prm := range strings.Split(params, ",") {
			f.Params = append(f.Params, strings.TrimSpace(prm))
		}
	}
	var cur *Block
	for {
		line, ok := p.next()
		if !ok {
			return nil, p.errf("unexpected end of input in function %s", f.Name)
		}
		if line == "}" {
			return f, nil
		}
		if idx := strings.Index(line, ":"); idx >= 0 && !strings.Contains(line[:idx], " ") && !strings.Contains(line[:idx], "=") && !strings.Contains(line[:idx], ".") {
			cur = &Block{Name: line[:idx]}
			rest := strings.TrimSpace(line[idx+1:])
			if strings.HasPrefix(rest, "!loop.bound") {
				n, err := strconv.ParseInt(strings.TrimSpace(strings.TrimPrefix(rest, "!loop.bound")), 10, 64)
				if err != nil {
					return nil, p.errf("bad loop bound: %v", err)
				}
				cur.LoopBound = n
			} else if rest != "" {
				return nil, p.errf("trailing text after label: %q", rest)
			}
			f.Blocks = append(f.Blocks, cur)
			continue
		}
		if cur == nil {
			return nil, p.errf("instruction before first label")
		}
		in, err := p.instr(line)
		if err != nil {
			return nil, err
		}
		cur.Instrs = append(cur.Instrs, in)
	}
}

func (p *parser) instr(line string) (*Instr, error) {
	in := &Instr{}
	// Trailing annotations.
	for {
		switch {
		case strings.HasSuffix(line, " !pm"):
			in.KnownPM = true
			line = strings.TrimSuffix(line, " !pm")
		case strings.HasSuffix(line, " !wrapped"):
			in.Wrapped = true
			line = strings.TrimSuffix(line, " !wrapped")
		default:
			goto parsed
		}
	}
parsed:
	if eq := strings.Index(line, "="); eq >= 0 && strings.HasPrefix(line, "%") {
		in.Dst = strings.TrimSpace(line[:eq])
		line = strings.TrimSpace(line[eq+1:])
	}
	var mnemonic string
	if sp := strings.IndexByte(line, ' '); sp >= 0 {
		mnemonic, line = line[:sp], strings.TrimSpace(line[sp+1:])
	} else {
		mnemonic, line = line, ""
	}
	if dot := strings.LastIndex(mnemonic, "."); dot >= 0 && isDigits(mnemonic[dot+1:]) {
		n, err := strconv.ParseUint(mnemonic[dot+1:], 10, 64)
		if err != nil {
			return nil, p.errf("bad access size in %q", mnemonic)
		}
		in.Size = n
		mnemonic = mnemonic[:dot]
	}
	op, ok := opByName(mnemonic)
	if !ok {
		return nil, p.errf("unknown opcode %q", mnemonic)
	}
	in.Op = op

	fields := splitOperands(line)
	take := func() (string, error) {
		if len(fields) == 0 {
			return "", p.errf("missing operand for %s", mnemonic)
		}
		f := fields[0]
		fields = fields[1:]
		return f, nil
	}

	switch op {
	case Const:
		f, err := take()
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(f, 0, 64)
		if err != nil {
			return nil, p.errf("bad constant %q", f)
		}
		in.Imm = n
	case Br:
		f, err := take()
		if err != nil {
			return nil, err
		}
		in.Sym = f
	case CondBr:
		c, err := take()
		if err != nil {
			return nil, err
		}
		tgt, err := take()
		if err != nil {
			return nil, err
		}
		els, err := take()
		if err != nil {
			return nil, err
		}
		in.Args = []string{c}
		in.Sym, in.SymElse = tgt, els
	case Call, CallExt:
		f, err := take()
		if err != nil {
			return nil, err
		}
		if !strings.HasPrefix(f, "@") {
			return nil, p.errf("call target must be @name, got %q", f)
		}
		in.Sym = strings.TrimPrefix(f, "@")
		in.Args = fields
		fields = nil
	case Gep:
		base, err := take()
		if err != nil {
			return nil, err
		}
		off, err := take()
		if err != nil {
			return nil, err
		}
		in.Args = []string{base}
		if strings.HasPrefix(off, "%") {
			in.Args = append(in.Args, off)
		} else {
			n, err := strconv.ParseInt(off, 0, 64)
			if err != nil {
				return nil, p.errf("bad gep offset %q", off)
			}
			in.Imm = n
		}
	case SppUpdateTag:
		ptr, err := take()
		if err != nil {
			return nil, err
		}
		in.Args = []string{ptr}
		if len(fields) > 0 {
			n, err := strconv.ParseInt(fields[0], 0, 64)
			if err != nil {
				return nil, p.errf("bad updatetag offset %q", fields[0])
			}
			in.Imm = n
			fields = fields[1:]
		}
	case Ret:
		in.Args = fields
		fields = nil
	default:
		in.Args = fields
		fields = nil
	}
	if len(fields) != 0 {
		return nil, p.errf("trailing operands %v for %s", fields, mnemonic)
	}
	return in, nil
}

func splitOperands(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, part := range parts {
		for _, f := range strings.Fields(part) {
			out = append(out, f)
		}
	}
	return out
}

func opByName(name string) (Op, bool) {
	for op, n := range opNames {
		if n == name {
			return op, true
		}
	}
	return 0, false
}

func isDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
