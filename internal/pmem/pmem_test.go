package pmem

import (
	"bytes"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestReadWriteU64(t *testing.T) {
	p := NewPool("t", 1<<12)
	p.WriteU64(64, 0xfeedface12345678)
	if got := p.ReadU64(64); got != 0xfeedface12345678 {
		t.Errorf("ReadU64 = %#x", got)
	}
	// Little-endian layout.
	if p.Data()[64] != 0x78 {
		t.Errorf("byte 0 = %#x, want 0x78 (little endian)", p.Data()[64])
	}
}

func TestQuickU64RoundTrip(t *testing.T) {
	p := NewPool("t", 1<<12)
	f := func(off uint8, v uint64) bool {
		o := uint64(off) * 8
		p.WriteU64(o, v)
		return p.ReadU64(o) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBytesAndZero(t *testing.T) {
	p := NewPool("t", 1<<12)
	p.WriteBytes(100, []byte("abcdef"))
	if got := p.ReadBytes(100, 6); !bytes.Equal(got, []byte("abcdef")) {
		t.Errorf("ReadBytes = %q", got)
	}
	p.Zero(102, 2)
	if got := p.ReadBytes(100, 6); !bytes.Equal(got, []byte{'a', 'b', 0, 0, 'e', 'f'}) {
		t.Errorf("after Zero = %v", got)
	}
}

func TestCrashRequiresTracking(t *testing.T) {
	p := NewPool("t", 1<<12)
	if err := p.Crash(); !errors.Is(err, ErrTrackingDisabled) {
		t.Errorf("Crash without tracking = %v, want ErrTrackingDisabled", err)
	}
	if _, err := p.DurableImage(); !errors.Is(err, ErrTrackingDisabled) {
		t.Errorf("DurableImage without tracking = %v, want ErrTrackingDisabled", err)
	}
}

func TestUnflushedStoreLostOnCrash(t *testing.T) {
	p := NewPool("t", 1<<12)
	p.WriteU64(0, 1)
	p.EnableTracking(nil)
	p.WriteU64(0, 2) // never flushed
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := p.ReadU64(0); got != 1 {
		t.Errorf("after crash = %d, want pre-tracking value 1", got)
	}
}

func TestFlushWithoutFenceNotDurable(t *testing.T) {
	p := NewPool("t", 1<<12)
	p.EnableTracking(nil)
	p.WriteU64(0, 7)
	p.Flush(0, 8)
	// No fence: store must not survive the crash.
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := p.ReadU64(0); got != 0 {
		t.Errorf("flushed-unfenced store survived crash: %d", got)
	}
}

func TestPersistSurvivesCrash(t *testing.T) {
	p := NewPool("t", 1<<12)
	p.EnableTracking(nil)
	p.WriteU64(0, 7)
	p.Persist(0, 8)
	p.WriteU64(8, 9) // unflushed neighbour
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := p.ReadU64(0); got != 7 {
		t.Errorf("persisted store lost on crash: %d", got)
	}
	// The neighbour was in the same cacheline as the flushed range, so
	// it was written *after* the fence and must be lost.
	if got := p.ReadU64(8); got != 0 {
		t.Errorf("unflushed store survived crash: %d", got)
	}
}

func TestFlushCoversWholeCacheline(t *testing.T) {
	p := NewPool("t", 1<<12)
	p.EnableTracking(nil)
	p.WriteU64(0, 1)
	p.WriteU64(56, 2)
	// Flushing any byte of the line persists the whole line.
	p.Persist(30, 1)
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	if p.ReadU64(0) != 1 || p.ReadU64(56) != 2 {
		t.Errorf("cacheline flush did not cover whole line: %d %d", p.ReadU64(0), p.ReadU64(56))
	}
}

func TestDisableTrackingKeepsWorkingImage(t *testing.T) {
	p := NewPool("t", 1<<12)
	p.EnableTracking(nil)
	p.WriteU64(0, 42)
	p.DisableTracking()
	if got := p.ReadU64(0); got != 42 {
		t.Errorf("working image lost on DisableTracking: %d", got)
	}
	if p.Tracking() {
		t.Error("Tracking() = true after DisableTracking")
	}
}

type traceRecorder struct {
	stores  []uint64
	flushes []uint64
	fences  int
}

func (r *traceRecorder) RecordStore(off uint64, data []byte) {
	r.stores = append(r.stores, off)
}
func (r *traceRecorder) RecordFlush(off, size uint64) { r.flushes = append(r.flushes, off) }
func (r *traceRecorder) RecordFence()                 { r.fences++ }

func TestTraceSinkSeesEvents(t *testing.T) {
	p := NewPool("t", 1<<12)
	rec := &traceRecorder{}
	p.EnableTracking(rec)
	p.WriteU64(128, 5)
	p.WriteBytes(200, []byte{1, 2})
	p.Zero(300, 4)
	p.Persist(128, 8)
	if len(rec.stores) != 3 {
		t.Errorf("sink saw %d stores, want 3", len(rec.stores))
	}
	if len(rec.flushes) != 1 || rec.flushes[0] != 128 {
		t.Errorf("flushes = %v, want [128]", rec.flushes)
	}
	if rec.fences != 1 {
		t.Errorf("fences = %d, want 1", rec.fences)
	}
}

func TestObserveStoreJoinsTrace(t *testing.T) {
	p := NewPool("t", 1<<12)
	rec := &traceRecorder{}
	p.EnableTracking(rec)
	p.ObserveStore(64, 8)
	if len(rec.stores) != 1 || rec.stores[0] != 64 {
		t.Errorf("stores = %v, want [64]", rec.stores)
	}
}

func TestSaveAndOpenFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "pool.img")
	p := NewPool(path, 1<<12)
	p.WriteU64(0, 0xabcd)
	if err := p.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	q, err := OpenFile(path, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.ReadU64(0); got != 0xabcd {
		t.Errorf("reopened pool ReadU64 = %#x", got)
	}
	// Size mismatch is an error.
	if _, err := OpenFile(path, 1<<13); err == nil {
		t.Error("OpenFile with wrong size succeeded")
	}
	// Missing file creates a fresh pool.
	fresh, err := OpenFile(filepath.Join(dir, "missing.img"), 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Size() != 1<<10 {
		t.Errorf("fresh pool size = %d", fresh.Size())
	}
	// Unreadable path surfaces the underlying error.
	if err := os.WriteFile(filepath.Join(dir, "dir"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestDurableImageIsACopy(t *testing.T) {
	p := NewPool("t", 1<<10)
	p.EnableTracking(nil)
	p.WriteU64(0, 1)
	p.Persist(0, 8)
	img, err := p.DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	img[0] = 0xff
	if err := p.Crash(); err != nil {
		t.Fatal(err)
	}
	if got := p.ReadU64(0); got != 1 {
		t.Errorf("mutating DurableImage copy affected pool: %d", got)
	}
}

// TestQuickDurabilityModel drives a random store/flush/fence/crash
// sequence against a reference model of the durability rules and
// checks the working image after each crash.
func TestQuickDurabilityModel(t *testing.T) {
	const size = 1 << 12
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		p := NewPool("model", size)
		p.EnableTracking(nil)
		working := make([]byte, size) // what stores produced
		durable := make([]byte, size) // the model's persisted image
		type frange struct{ off, size uint64 }
		var pending []frange
		for step := 0; step < 200; step++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3, 4: // store
				off := uint64(rng.Intn(size-8)) &^ 7
				v := rng.Uint64()
				p.WriteU64(off, v)
				for j := 0; j < 8; j++ {
					working[off+uint64(j)] = byte(v >> (8 * j))
				}
			case 5, 6: // flush
				off := uint64(rng.Intn(size - 64))
				n := uint64(rng.Intn(128) + 1)
				if off+n > size {
					n = size - off
				}
				p.Flush(off, n)
				start := off &^ (CachelineSize - 1)
				end := (off + n + CachelineSize - 1) &^ (CachelineSize - 1)
				if end > size {
					end = size
				}
				pending = append(pending, frange{start, end - start})
			case 7, 8: // fence
				p.Fence()
				for _, f := range pending {
					copy(durable[f.off:f.off+f.size], working[f.off:f.off+f.size])
				}
				pending = pending[:0]
			case 9: // crash
				if err := p.Crash(); err != nil {
					t.Fatal(err)
				}
				copy(working, durable)
				pending = pending[:0]
				for i := 0; i < size; i += 8 {
					if got := p.ReadU64(uint64(i)); got != leU64(durable[i:]) {
						t.Fatalf("trial %d step %d: off %d = %#x, model %#x",
							trial, step, i, got, leU64(durable[i:]))
					}
				}
			}
		}
	}
}

func leU64(b []byte) uint64 {
	var v uint64
	for j := 0; j < 8; j++ {
		v |= uint64(b[j]) << (8 * j)
	}
	return v
}
