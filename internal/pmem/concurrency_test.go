package pmem

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentStoreFlushFence exercises the device data path from
// many goroutines in both modes, with mode flips at the quiescent
// barriers between rounds (EnableTracking snapshots the whole image,
// so it requires a quiet data path — same as snapshotting real
// memory). The test asserts little beyond termination and final
// durability — its value is running under -race: concurrent stores,
// flushes and fences on disjoint ranges must not trip the detector in
// either mode.
func TestConcurrentStoreFlushFence(t *testing.T) {
	const workers = 8
	p := NewPool("conc", 1<<20)
	storm := func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				base := uint64(w) * 4096
				for i := 0; i < 500; i++ {
					off := base + uint64(i%64)*64
					p.WriteU64(off, uint64(w)<<32|uint64(i))
					p.Flush(off, 8)
					if i%16 == 0 {
						p.Fence()
					}
				}
				p.Fence()
			}(w)
		}
		wg.Wait()
	}
	storm() // performance mode
	p.EnableTracking(nil)
	storm() // tracked mode: striped pending sets under contention
	p.DisableTracking()
	storm() // and back
	for w := 0; w < workers; w++ {
		base := uint64(w) * 4096
		want := uint64(w)<<32 | uint64(499)
		if got := p.ReadU64(base + uint64(499%64)*64); got != want {
			t.Errorf("worker %d: final store lost: %#x != %#x", w, got, want)
		}
	}
}

// TestConcurrentFenceDurability checks the striped pending sets under
// contention: every worker persists a disjoint slot; all slots must be
// in the durable image afterwards regardless of how the concurrent
// Fences interleaved.
func TestConcurrentFenceDurability(t *testing.T) {
	const workers = 8
	p := NewPool("fence", 1<<20)
	p.EnableTracking(nil)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				off := uint64(w)*16384 + uint64(i)*64
				p.WriteU64(off, uint64(w+1)<<32|uint64(i))
				p.Persist(off, 8)
			}
		}(w)
	}
	wg.Wait()
	img, err := p.DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < 200; i++ {
			off := uint64(w)*16384 + uint64(i)*64
			want := uint64(w+1)<<32 | uint64(i)
			if got := leU64(img[off : off+8]); got != want {
				t.Fatalf("slot w=%d i=%d not durable: %#x != %#x", w, i, got, want)
			}
		}
	}
}

// BenchmarkStoreFlushFenceParallel is the contention microbenchmark
// for the lock-free fast path: per-op cost of the store+flush+fence
// sequence under GOMAXPROCS-way parallelism, tracking off (the
// performance mode every throughput experiment runs in) vs on. Before
// the refactor the tracking-off path took a global mutex per
// operation; now it is a single atomic load.
func BenchmarkStoreFlushFenceParallel(b *testing.B) {
	for _, tracked := range []bool{false, true} {
		b.Run(fmt.Sprintf("tracking=%v", tracked), func(b *testing.B) {
			p := NewPool("bench", 1<<24)
			if tracked {
				p.EnableTracking(nil)
			}
			var ctr sync.Mutex
			next := 0
			b.RunParallel(func(pb *testing.PB) {
				ctr.Lock()
				worker := next
				next++
				ctr.Unlock()
				base := uint64(worker%64) * 65536
				i := uint64(0)
				for pb.Next() {
					off := base + (i%1024)*8
					p.WriteU64(off, i)
					p.Flush(off, 8)
					p.Fence()
					i++
				}
			})
		})
	}
}
