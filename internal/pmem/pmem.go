// Package pmem models a byte-addressable persistent memory device.
//
// A Pool is the analog of a DAX-mapped PM file: a flat byte region with
// explicit persistence operations. Stores land in the "CPU cache" (the
// working image) immediately; they become durable only after a Flush of
// their range followed by a Fence — the CLWB/SFENCE discipline that
// PMDK's crash-consistency protocol is built on and that pmemcheck
// verifies.
//
// With tracking enabled the pool keeps a separate durable image and an
// event trace (stores, flushes, fences), which the pmemcheck package
// replays to explore crash states. With tracking disabled every store
// is immediately durable and the pool runs at full speed for the
// performance experiments.
//
// Concurrency. The fast path is lock-free: Store/Flush/Fence consult a
// single atomic gate word (tracking and telemetry bits) and return
// without touching any mutex when both are off, so independent
// goroutines hammering the device never contend. When tracking is on, pending flush ranges are striped
// across flushStripes cacheline-padded mutexes keyed by the flushed
// address, and the mode switch itself is guarded by an RWMutex: the
// data path holds it for read, Enable/DisableTracking, Crash and
// DurableImage hold it for write. The lock order is mode before
// stripe; stripes are only ever locked together in ascending index
// order (by Fence).
package pmem

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// Device telemetry: store/flush/fence rates split by whether the
// lock-free fast path (tracking off) or the tracked slow path served
// them. The device's data path is the hottest code in the repo (~5 ns
// per store+flush+fence), where even one extra predicted branch is
// measurable, so the telemetry gate shares the single atomic word the
// data path already loads for the tracking check (see Pool.gates):
// with both off, Store/Flush/Fence execute instruction-for-instruction
// what they did before telemetry existed. The telemetry bit is latched
// at pool creation; enable telemetry before building the device to get
// device-op counters (sppbench does this at startup).
var (
	devStores     = telemetry.Default.CounterVec("spp_dev_stores_total", "device stores by path", "path")
	devStoreBytes = telemetry.Default.CounterVec("spp_dev_store_bytes_total", "device store bytes by path", "path")
	devFlushes    = telemetry.Default.Counter("spp_dev_flushes_total", "cacheline flushes issued")
	devFences     = telemetry.Default.Counter("spp_dev_fences_total", "store fences issued")

	devStoresFast    = devStores.With("fast")
	devStoresTracked = devStores.With("tracked")
	devBytesFast     = devStoreBytes.With("fast")
	devBytesTracked  = devStoreBytes.With("tracked")

	// Batched-pipeline telemetry: flush requests a FlushAccum merged
	// away before reaching the device, and fences answered by another
	// committer's fence through the GroupFence combiner.
	devFlushCoalesced = telemetry.Default.Counter("spp_dev_flushes_coalesced_total", "flush requests merged by a flush accumulator")
	devFencesShared   = telemetry.Default.Counter("spp_dev_fences_shared_total", "fences satisfied by another goroutine's fence via the group combiner")
)

// CachelineSize is the flush granularity of the simulated device.
const CachelineSize = 64

// StoreAtomicity is the size in bytes up to which an aligned store is
// failure-atomic, matching the 8-byte powerfail atomicity of real PM.
const StoreAtomicity = 8

// flushStripes is the number of independent pending-flush sets. Flushes
// hash to a stripe by cacheline index so concurrent flushers of
// disjoint ranges do not share a lock even when tracking is on.
const flushStripes = 16

// ErrTrackingDisabled is returned by crash-simulation entry points when
// the pool is running in performance mode.
var ErrTrackingDisabled = errors.New("pmem: persistence tracking is disabled")

// TraceSink receives the persistence event stream of a tracked pool.
type TraceSink interface {
	// RecordStore is called after data is written at off. The slice is
	// owned by the sink.
	RecordStore(off uint64, data []byte)
	// RecordFlush is called when [off, off+size) is flushed.
	RecordFlush(off, size uint64)
	// RecordFence is called on a store fence.
	RecordFence()
}

type flushRange struct {
	off, size uint64
}

// flushStripe is one shard of the pending-flush set, padded so
// neighbouring stripes do not false-share a cacheline.
type flushStripe struct {
	mu      sync.Mutex
	pending []flushRange
	_       [40]byte
}

// Bits of Pool.gates.
const (
	gateTracking = 1 << iota // crash-simulation mode is on
	gateTelem                // count device ops into the telemetry registry
)

// Pool is a simulated persistent memory pool.
type Pool struct {
	data []byte
	name string

	// gates is the fast-path gate word: one atomic load on every
	// Store/Flush/Fence covers both the tracking check and the
	// telemetry check, so the all-off path costs exactly what a single
	// tracking flag did. gateTelem is latched from the global telemetry
	// flag at pool creation and never changes; a pool created before
	// telemetry.Enable does not count device ops, so consumers that
	// want them (sppbench, the bench experiments) enable telemetry
	// before building the device. gateTracking is toggled by
	// Enable/DisableTracking under the mode lock.
	gates atomic.Uint32

	// mode serializes tracking-mode transitions against the data path.
	// The fields below it are valid only while tracking is on.
	mode      sync.RWMutex
	persisted []byte // durable image
	sink      TraceSink
	stripes   [flushStripes]flushStripe

	// Fence combiner (GroupFence): fenceEpoch counts combined fences
	// that have *started*; fenceMu serializes leaders. Only consulted
	// when tracking is on — that is the only mode where a fence does
	// real work worth sharing.
	fenceEpoch atomic.Uint64
	fenceMu    sync.Mutex
}

// NewPool returns an in-memory pool of the given size with tracking
// disabled.
func NewPool(name string, size uint64) *Pool {
	p := &Pool{data: make([]byte, size), name: name}
	if telemetry.On() {
		p.gates.Store(gateTelem)
	}
	return p
}

// OpenFile loads a pool image from path, or creates a zeroed pool of
// the given size if the file does not exist.
func OpenFile(path string, size uint64) (*Pool, error) {
	b, err := os.ReadFile(path)
	switch {
	case err == nil:
		if uint64(len(b)) != size {
			return nil, fmt.Errorf("pmem: %s: image is %d bytes, want %d", path, len(b), size)
		}
		p := &Pool{data: b, name: path}
		if telemetry.On() {
			p.gates.Store(gateTelem)
		}
		return p, nil
	case os.IsNotExist(err):
		return NewPool(path, size), nil
	default:
		return nil, fmt.Errorf("pmem: open %s: %w", path, err)
	}
}

// SaveFile writes the working image to path.
func (p *Pool) SaveFile(path string) error {
	if err := os.WriteFile(path, p.data, 0o644); err != nil {
		return fmt.Errorf("pmem: save %s: %w", path, err)
	}
	return nil
}

// Name returns the pool's identifier.
func (p *Pool) Name() string { return p.name }

// Size returns the pool size in bytes.
func (p *Pool) Size() uint64 { return uint64(len(p.data)) }

// Data exposes the working image. It is the slice to hand to
// vmem.Mapping so the pool appears in the simulated address space.
func (p *Pool) Data() []byte { return p.data }

// EnableTracking switches the pool into crash-simulation mode: the
// current working image becomes the durable image and all subsequent
// stores/flushes/fences are reported to sink (which may be nil to track
// durability only). Like snapshotting real memory, the transition
// requires a quiescent data path: no store may be in flight while the
// image is copied.
func (p *Pool) EnableTracking(sink TraceSink) {
	p.mode.Lock()
	defer p.mode.Unlock()
	p.sink = sink
	p.persisted = make([]byte, len(p.data))
	copy(p.persisted, p.data)
	for i := range p.stripes {
		p.stripes[i].pending = nil
	}
	// Publish last: a fast-path reader that observes tracking=true is
	// about to block on mode.RLock and will see the fields above.
	p.gates.Store(p.gates.Load() | gateTracking)
}

// DisableTracking returns the pool to performance mode. The working
// image is kept; the durable image and any pending flushes are dropped.
func (p *Pool) DisableTracking() {
	p.mode.Lock()
	defer p.mode.Unlock()
	p.gates.Store(p.gates.Load() &^ gateTracking)
	p.sink = nil
	p.persisted = nil
	for i := range p.stripes {
		p.stripes[i].pending = nil
	}
}

// Tracking reports whether crash-simulation mode is on.
func (p *Pool) Tracking() bool {
	return p.gates.Load()&gateTracking != 0
}

// recordStore notes a completed store at [off, off+size).
func (p *Pool) recordStore(off, size uint64) {
	g := p.gates.Load()
	if g == 0 {
		return
	}
	if g&gateTracking == 0 {
		if g&gateTelem != 0 {
			devStoresFast.Inc()
			devBytesFast.Add(size)
		}
		return
	}
	if g&gateTelem != 0 {
		devStoresTracked.Inc()
		devBytesTracked.Add(size)
	}
	p.mode.RLock()
	sink := p.sink
	var cp []byte
	if p.Tracking() && sink != nil {
		cp = make([]byte, size)
		copy(cp, p.data[off:off+size])
	} else {
		sink = nil
	}
	p.mode.RUnlock()
	if sink != nil {
		sink.RecordStore(off, cp)
	}
}

// ObserveStore implements vmem.StoreObserver so that application stores
// through the simulated address space join the persistence trace.
func (p *Pool) ObserveStore(off, size uint64) {
	p.recordStore(off, size)
}

// ReadU64 reads a little-endian 64-bit value at off.
func (p *Pool) ReadU64(off uint64) uint64 {
	b := p.data[off : off+8]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// WriteU64 writes a little-endian 64-bit value at off.
func (p *Pool) WriteU64(off uint64, v uint64) {
	b := p.data[off : off+8]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
	p.recordStore(off, 8)
}

// WriteU64s writes consecutive little-endian 64-bit values starting at
// off — the bulk log-write path. With tracking off the whole run is one
// store (one gate check, one telemetry event of len(vals)*8 bytes); with
// tracking on it falls back to per-word WriteU64 so the persistence
// trace keeps the exact 8-byte store sequence pmemcheck's atomicity
// model expects.
func (p *Pool) WriteU64s(off uint64, vals []uint64) {
	if len(vals) == 0 {
		return
	}
	if p.gates.Load()&gateTracking != 0 {
		for i, v := range vals {
			p.WriteU64(off+uint64(i)*8, v)
		}
		return
	}
	b := p.data[off : off+uint64(len(vals))*8]
	for i, v := range vals {
		e := b[i*8 : i*8+8]
		e[0] = byte(v)
		e[1] = byte(v >> 8)
		e[2] = byte(v >> 16)
		e[3] = byte(v >> 24)
		e[4] = byte(v >> 32)
		e[5] = byte(v >> 40)
		e[6] = byte(v >> 48)
		e[7] = byte(v >> 56)
	}
	p.recordStore(off, uint64(len(vals))*8)
}

// ReadBytes copies size bytes at off into a fresh slice.
func (p *Pool) ReadBytes(off, size uint64) []byte {
	out := make([]byte, size)
	copy(out, p.data[off:off+size])
	return out
}

// WriteBytes writes b at off.
func (p *Pool) WriteBytes(off uint64, b []byte) {
	copy(p.data[off:], b)
	p.recordStore(off, uint64(len(b)))
}

// Zero clears [off, off+size).
func (p *Pool) Zero(off, size uint64) {
	region := p.data[off : off+size]
	for i := range region {
		region[i] = 0
	}
	p.recordStore(off, size)
}

// Flush initiates write-back of [off, off+size), extended to cacheline
// boundaries. The data is durable only after the next Fence.
func (p *Pool) Flush(off, size uint64) {
	if size == 0 {
		return
	}
	g := p.gates.Load()
	if g == 0 {
		return
	}
	if g&gateTelem != 0 {
		devFlushes.Inc()
	}
	if g&gateTracking == 0 {
		return
	}
	start := off &^ (CachelineSize - 1)
	end := (off + size + CachelineSize - 1) &^ (CachelineSize - 1)
	if end > uint64(len(p.data)) {
		end = uint64(len(p.data))
	}
	p.mode.RLock()
	if !p.Tracking() {
		p.mode.RUnlock()
		return
	}
	s := &p.stripes[(start/CachelineSize)%flushStripes]
	s.mu.Lock()
	s.pending = append(s.pending, flushRange{start, end - start})
	s.mu.Unlock()
	sink := p.sink
	p.mode.RUnlock()
	if sink != nil {
		sink.RecordFlush(start, end-start)
	}
}

// Fence makes all pending flushed ranges durable.
func (p *Pool) Fence() {
	g := p.gates.Load()
	if g == 0 {
		return
	}
	if g&gateTelem != 0 {
		devFences.Inc()
	}
	if g&gateTracking == 0 {
		return
	}
	p.mode.RLock()
	if !p.Tracking() {
		p.mode.RUnlock()
		return
	}
	// Take every stripe in ascending order so concurrent Fences are
	// serialized with each other (their persisted-image copies may
	// overlap) while leaving Flush on other stripes unblocked until
	// its own stripe is reached.
	for i := range p.stripes {
		p.stripes[i].mu.Lock()
	}
	retired := 0
	for i := range p.stripes {
		s := &p.stripes[i]
		retired += len(s.pending)
		for _, r := range s.pending {
			copy(p.persisted[r.off:r.off+r.size], p.data[r.off:r.off+r.size])
		}
		s.pending = s.pending[:0]
	}
	telemetry.Flight.Record(telemetry.EvFence, uint64(retired), 0)
	for i := len(p.stripes) - 1; i >= 0; i-- {
		p.stripes[i].mu.Unlock()
	}
	sink := p.sink
	p.mode.RUnlock()
	if sink != nil {
		sink.RecordFence()
	}
}

// GroupFence is Fence with cross-goroutine combining — classic group
// commit. The caller's flushes must already be registered (Flush
// returned) before the call. If another goroutine's fence *started*
// after that point, it retired our pending lines too, so we return
// without fencing; otherwise we become the leader for every committer
// now piling up behind the combiner lock. Under contention N
// concurrent fences collapse to ~1.
//
// The epoch is bumped before the leader's Fence begins, and followers
// observe it only after acquiring the lock the leader holds for the
// whole fence — so an observed epoch change proves a fence ran
// entirely after the follower's flushes were registered.
func (p *Pool) GroupFence() {
	g := p.gates.Load()
	if g&gateTracking == 0 {
		// Fast mode: a fence is at most a telemetry bump; nothing worth
		// sharing, and the combiner would add an atomic + lock.
		p.Fence()
		return
	}
	e := p.fenceEpoch.Load()
	p.fenceMu.Lock()
	if p.fenceEpoch.Load() != e {
		p.fenceMu.Unlock()
		if g&gateTelem != 0 {
			devFencesShared.Inc()
		}
		return
	}
	p.fenceEpoch.Add(1)
	p.Fence()
	p.fenceMu.Unlock()
}

// FlushAccum coalesces the flush traffic of one commit epoch: requests
// are rounded to cachelines and merged with adjacent or duplicate
// lines, then issued to the device in one pass by Drain — the "flush
// once per line per fence" discipline PMDK's FLUSH macros implement
// with a dirty-line set. An accumulator belongs to one goroutine; the
// typical owner is a transaction commit or a redo publication.
//
// When coalescing is disabled (or the device is in the all-off fast
// mode, where Flush is free anyway) requests pass straight through, so
// callers need no mode branches.
type FlushAccum struct {
	p        *Pool
	coalesce bool
	lines    []flushRange // cacheline-rounded, merged opportunistically
	requests int          // raw requests this epoch
}

// NewFlushAccum returns an accumulator over p. With coalesce false the
// accumulator is a transparent pass-through.
func NewFlushAccum(p *Pool, coalesce bool) *FlushAccum {
	return &FlushAccum{p: p, coalesce: coalesce}
}

// Flush records a flush request for [off, off+size).
func (a *FlushAccum) Flush(off, size uint64) {
	if size == 0 {
		return
	}
	if !a.coalesce {
		a.p.Flush(off, size)
		return
	}
	if a.p.gates.Load() == 0 {
		// Flushes are free no-ops with tracking and telemetry both off;
		// recording them would only cost memory.
		return
	}
	start := off &^ (CachelineSize - 1)
	end := (off + size + CachelineSize - 1) &^ (CachelineSize - 1)
	if end > uint64(len(a.p.data)) {
		end = uint64(len(a.p.data))
	}
	a.requests++
	// Merge with the previous range when overlapping or adjacent — the
	// common shape (sequential log writes, block header pairs) without
	// paying for a sort on every request.
	if n := len(a.lines); n > 0 {
		l := &a.lines[n-1]
		if start <= l.off+l.size && l.off <= end {
			newEnd := l.off + l.size
			if end > newEnd {
				newEnd = end
			}
			if start < l.off {
				l.off = start
			}
			l.size = newEnd - l.off
			return
		}
	}
	a.lines = append(a.lines, flushRange{start, end - start})
}

// Drain merges the accumulated lines and issues one device flush per
// disjoint range. The epoch's coalescing win is counted into telemetry.
func (a *FlushAccum) Drain() {
	if len(a.lines) == 0 {
		a.requests = 0
		return
	}
	sort.Slice(a.lines, func(i, j int) bool { return a.lines[i].off < a.lines[j].off })
	issued := 0
	cur := a.lines[0]
	for _, r := range a.lines[1:] {
		if r.off <= cur.off+cur.size {
			if e := r.off + r.size; e > cur.off+cur.size {
				cur.size = e - cur.off
			}
			continue
		}
		a.p.Flush(cur.off, cur.size)
		issued++
		cur = r
	}
	a.p.Flush(cur.off, cur.size)
	issued++
	if a.p.gates.Load()&gateTelem != 0 && a.requests > issued {
		devFlushCoalesced.Add(uint64(a.requests - issued))
	}
	a.lines = a.lines[:0]
	a.requests = 0
}

// Persist is Flush followed by Fence, PMDK's pmemobj_persist.
func (p *Pool) Persist(off, size uint64) {
	p.Flush(off, size)
	p.Fence()
}

// Crash reverts the working image to the durable image, simulating a
// power failure. It requires tracking.
func (p *Pool) Crash() error {
	p.mode.Lock()
	defer p.mode.Unlock()
	if !p.Tracking() {
		return ErrTrackingDisabled
	}
	copy(p.data, p.persisted)
	for i := range p.stripes {
		p.stripes[i].pending = p.stripes[i].pending[:0]
	}
	return nil
}

// DurableImage returns a copy of the durable image. It requires
// tracking.
func (p *Pool) DurableImage() ([]byte, error) {
	p.mode.Lock()
	defer p.mode.Unlock()
	if !p.Tracking() {
		return nil, ErrTrackingDisabled
	}
	out := make([]byte, len(p.persisted))
	copy(out, p.persisted)
	return out, nil
}
