package pmem

import (
	"sync"
	"testing"
)

// traceCounter tallies events and remembers store sizes.
type traceCounter struct {
	mu         sync.Mutex
	stores     int
	storeSizes []uint64
	flushes    int
	fences     int
}

func (c *traceCounter) RecordStore(off uint64, data []byte) {
	c.mu.Lock()
	c.stores++
	c.storeSizes = append(c.storeSizes, uint64(len(data)))
	c.mu.Unlock()
}
func (c *traceCounter) RecordFlush(off, size uint64) {
	c.mu.Lock()
	c.flushes++
	c.mu.Unlock()
}
func (c *traceCounter) RecordFence() {
	c.mu.Lock()
	c.fences++
	c.mu.Unlock()
}

func TestWriteU64sFastPath(t *testing.T) {
	p := NewPool("bulk", 4096)
	p.WriteU64s(64, []uint64{1, 2, 3, 0xdeadbeef})
	for i, want := range []uint64{1, 2, 3, 0xdeadbeef} {
		if got := p.ReadU64(64 + uint64(i)*8); got != want {
			t.Errorf("word %d = %#x, want %#x", i, got, want)
		}
	}
	p.WriteU64s(128, nil) // no-op
}

// TestWriteU64sTrackedFallback pins the contract that bulk writes keep
// the exact 8-byte store sequence in the persistence trace: pmemcheck's
// atomicity model depends on it.
func TestWriteU64sTrackedFallback(t *testing.T) {
	p := NewPool("bulk-tracked", 4096)
	sink := &traceCounter{}
	p.EnableTracking(sink)
	p.WriteU64s(64, []uint64{7, 8, 9})
	if sink.stores != 3 {
		t.Fatalf("tracked bulk write recorded %d stores, want 3", sink.stores)
	}
	for i, s := range sink.storeSizes {
		if s != 8 {
			t.Errorf("store %d has size %d, want 8", i, s)
		}
	}
	p.Persist(64, 24)
	img, err := p.DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	dup := NewPool("check", 4096)
	copy(dup.Data(), img)
	if dup.ReadU64(64) != 7 || dup.ReadU64(80) != 9 {
		t.Error("bulk write not durable after persist")
	}
}

func TestFlushAccumCoalescesLines(t *testing.T) {
	p := NewPool("accum", 1<<16)
	sink := &traceCounter{}
	p.EnableTracking(sink)
	a := NewFlushAccum(p, true)
	// Twelve requests inside two cachelines plus one distant line.
	for i := uint64(0); i < 8; i++ {
		a.Flush(i*8, 8) // all in lines 0..1? offsets 0..63: line 0
	}
	a.Flush(64, 8)  // line 1, adjacent: merges
	a.Flush(0, 128) // duplicate of both
	a.Flush(4096, 8)
	a.Flush(4100, 16) // same line as previous
	a.Drain()
	p.Fence()
	if sink.flushes != 2 {
		t.Fatalf("device saw %d flushes, want 2 merged ranges", sink.flushes)
	}
	// Drain with nothing pending is a no-op.
	a.Drain()
	if sink.flushes != 2 {
		t.Fatalf("empty drain issued flushes")
	}
}

// TestFlushAccumLeftwardMergeKeepsTail: a request that extends the last
// line to the left must not lose the line's original tail (regression:
// the merged end was computed after moving the start).
func TestFlushAccumLeftwardMergeKeepsTail(t *testing.T) {
	p := NewPool("accum-left", 1<<16)
	p.EnableTracking(nil)
	a := NewFlushAccum(p, true)
	p.WriteU64(64, 1)
	p.WriteU64(128, 2)
	p.WriteU64(0, 3)
	a.Flush(64, 128) // lines [64, 192)
	a.Flush(0, 8)    // leftward-adjacent line [0, 64)
	a.Drain()
	p.Fence()
	img, err := p.DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	dup := NewPool("check", uint64(len(img)))
	copy(dup.Data(), img)
	for _, c := range []struct{ off, want uint64 }{{64, 1}, {128, 2}, {0, 3}} {
		if got := dup.ReadU64(c.off); got != c.want {
			t.Errorf("offset %d = %d after leftward merge, want %d", c.off, got, c.want)
		}
	}
}

func TestFlushAccumDurability(t *testing.T) {
	p := NewPool("accum-durable", 1<<16)
	p.EnableTracking(nil)
	a := NewFlushAccum(p, true)
	p.WriteU64(100, 42)
	p.WriteU64(9000, 43)
	a.Flush(100, 8)
	a.Flush(9000, 8)
	a.Drain()
	p.Fence()
	img, err := p.DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	dup := NewPool("check", uint64(len(img)))
	copy(dup.Data(), img)
	if dup.ReadU64(100) != 42 || dup.ReadU64(9000) != 43 {
		t.Error("accumulated flushes not durable after drain+fence")
	}
}

func TestFlushAccumPassthroughWhenDisabled(t *testing.T) {
	p := NewPool("accum-off", 1<<16)
	sink := &traceCounter{}
	p.EnableTracking(sink)
	a := NewFlushAccum(p, false)
	a.Flush(0, 8)
	a.Flush(8, 8)
	if sink.flushes != 2 {
		t.Fatalf("pass-through issued %d flushes, want 2", sink.flushes)
	}
	a.Drain() // nothing accumulated
	if sink.flushes != 2 {
		t.Fatalf("drain in pass-through mode issued flushes")
	}
}

// TestGroupFenceAlwaysFencesWhenAlone: with no concurrent committer the
// combiner must degrade to a plain fence — the caller's lines become
// durable.
func TestGroupFenceAlwaysFencesWhenAlone(t *testing.T) {
	p := NewPool("gfence", 4096)
	p.EnableTracking(nil)
	p.WriteU64(64, 11)
	p.Flush(64, 8)
	p.GroupFence()
	img, err := p.DurableImage()
	if err != nil {
		t.Fatal(err)
	}
	dup := NewPool("check", 4096)
	copy(dup.Data(), img)
	if dup.ReadU64(64) != 11 {
		t.Error("solo GroupFence did not make the line durable")
	}
}

// TestGroupFenceConcurrentDurability: every goroutine's flushed line
// must be durable once its GroupFence returns, whether it led or
// followed.
func TestGroupFenceConcurrentDurability(t *testing.T) {
	p := NewPool("gfence-conc", 1<<20)
	p.EnableTracking(nil)
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				off := uint64(w)*4096 + uint64(i%32)*64
				p.WriteU64(off, uint64(w)<<32|uint64(i))
				p.Flush(off, 8)
				p.GroupFence()
				// The value just fenced must be durable now. Concurrent
				// writers touch disjoint offsets, so a stale read here
				// is a combiner bug, not a race.
				img, err := p.DurableImage()
				if err != nil {
					t.Error(err)
					return
				}
				got := uint64(img[off]) | uint64(img[off+1])<<8 | uint64(img[off+2])<<16 |
					uint64(img[off+3])<<24 | uint64(img[off+4])<<32 | uint64(img[off+5])<<40 |
					uint64(img[off+6])<<48 | uint64(img[off+7])<<56
				if got != uint64(w)<<32|uint64(i) {
					t.Errorf("worker %d round %d: fenced value not durable (got %#x)", w, i, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestGroupFenceFastModeIsPlainFence(t *testing.T) {
	p := NewPool("gfence-fast", 4096)
	// Tracking off: must not touch the combiner (epoch stays put) and
	// must not panic or block.
	p.GroupFence()
	if p.fenceEpoch.Load() != 0 {
		t.Error("fast-mode GroupFence advanced the combiner epoch")
	}
}
