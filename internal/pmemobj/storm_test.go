package pmemobj

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/pmem"
)

// stormRng is a per-goroutine xorshift so the storm tests need no
// locking around randomness.
type stormRng uint64

func (x *stormRng) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = stormRng(v)
	return v
}

// stormObj is one live object owned by a storm worker: the oid plus the
// stamp written into its first payload word.
type stormObj struct {
	oid   Oid
	stamp uint64
}

// TestConcurrentStormInvariants hammers the allocator from P goroutines
// with a random mix of atomic alloc/free/realloc and transactional
// alloc, then checks the global invariants: no block is handed to two
// owners (stamps and walk offsets are unique), no block is lost (the
// walk tiles exactly the union of live sets and Stats agrees), and a
// reopen rebuilds the same picture.
func TestConcurrentStormInvariants(t *testing.T) {
	for _, m := range []struct {
		name    string
		noFbits bool
	}{{"bitmap", false}, {"maps", true}} {
		t.Run(m.name, func(t *testing.T) { stormInvariants(t, m.noFbits) })
	}
}

func stormInvariants(t *testing.T, noFbits bool) {
	const (
		workers = 8
		steps   = 300
		window  = 16
	)
	p, dev := newTestPool(t, Config{Geometry: Geometry{NLanes: workers}, Knobs: Knobs{DisableBitmapAlloc: noFbits}})

	live := make([]map[uint64]stormObj, workers) // payload off -> obj
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		live[w] = make(map[uint64]stormObj)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := stormRng(w*2654435761 + 1)
			mine := live[w]
			pick := func() (stormObj, bool) {
				for _, o := range mine {
					return o, true
				}
				return stormObj{}, false
			}
			check := func(o stormObj) bool {
				if got := dev.ReadU64(o.oid.Off); got != o.stamp {
					t.Errorf("worker %d: object at %#x stamped %#x, read %#x",
						w, o.oid.Off, o.stamp, got)
					return false
				}
				return true
			}
			for i := 0; i < steps; i++ {
				switch op := rng.next() % 100; {
				case op < 45 && len(mine) < window: // atomic alloc
					size := 32 + rng.next()%993
					oid, err := p.Alloc(size)
					if err != nil {
						t.Errorf("worker %d: Alloc(%d): %v", w, size, err)
						return
					}
					stamp := uint64(w)<<56 | rng.next()>>8
					dev.WriteU64(oid.Off, stamp)
					dev.Persist(oid.Off, 8)
					mine[oid.Off] = stormObj{oid, stamp}
				case op < 65: // atomic free
					o, ok := pick()
					if !ok {
						continue
					}
					if !check(o) {
						return
					}
					if err := p.Free(o.oid); err != nil {
						t.Errorf("worker %d: Free: %v", w, err)
						return
					}
					delete(mine, o.oid.Off)
				case op < 80: // atomic realloc
					o, ok := pick()
					if !ok {
						continue
					}
					if !check(o) {
						return
					}
					size := 32 + rng.next()%1993
					oid, err := p.Realloc(o.oid, size)
					if err != nil {
						t.Errorf("worker %d: Realloc: %v", w, err)
						return
					}
					delete(mine, o.oid.Off)
					mine[oid.Off] = stormObj{oid, o.stamp} // stamp moves with the payload
				default: // transactional alloc, half committed
					if len(mine) >= window {
						continue
					}
					tx := p.Begin()
					size := 64 + rng.next()%961
					oid, err := tx.Alloc(size)
					if err != nil {
						t.Errorf("worker %d: tx.Alloc: %v", w, err)
						_ = tx.Abort()
						return
					}
					stamp := uint64(w)<<56 | rng.next()>>8
					dev.WriteU64(oid.Off, stamp)
					if rng.next()%2 == 0 {
						if err := tx.Commit(); err != nil {
							t.Errorf("worker %d: Commit: %v", w, err)
							return
						}
						mine[oid.Off] = stormObj{oid, stamp}
					} else if err := tx.Abort(); err != nil {
						t.Errorf("worker %d: Abort: %v", w, err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	verify := func(q *Pool, when string) map[uint64]uint64 {
		walked := map[uint64]uint64{} // payload off -> size
		if err := q.ForEachAllocated(func(off, size uint64) error {
			if _, dup := walked[off]; dup {
				return fmt.Errorf("offset %#x walked twice", off)
			}
			walked[off] = size
			return nil
		}); err != nil {
			t.Fatalf("%s: walk: %v", when, err)
		}
		total := 0
		for w := 0; w < workers; w++ {
			for off, o := range live[w] {
				total++
				if _, ok := walked[off]; !ok {
					t.Errorf("%s: live object at %#x missing from walk", when, off)
				}
				if got := dev.ReadU64(off); got != o.stamp {
					t.Errorf("%s: object at %#x stamped %#x, read %#x", when, off, o.stamp, got)
				}
			}
		}
		if len(walked) != total {
			t.Errorf("%s: walk found %d objects, workers own %d", when, len(walked), total)
		}
		if got := q.Stats().AllocatedObjects; got != uint64(total) {
			t.Errorf("%s: Stats.AllocatedObjects = %d, want %d", when, got, total)
		}
		return walked
	}
	before := verify(p, "post-storm")
	q, err := OpenConfig(dev, nil, testBase, Config{Knobs: Knobs{DisableBitmapAlloc: noFbits}})
	if err != nil {
		t.Fatalf("OpenConfig: %v", err)
	}
	after := verify(q, "post-reopen")
	if len(before) != len(after) {
		t.Errorf("reopen changed object count: %d -> %d", len(before), len(after))
	}
}

// TestConcurrentStormCrashRecovery crashes the device in the middle of
// a concurrent storm: every worker runs a string of committed
// transactions (each publishing its latest object and stamp into a root
// slot), then parks with one more transaction open — dirty slot writes
// and an uncommitted allocation in flight. After the crash, recovery
// must roll every parked transaction back and the pool must contain
// exactly the committed oracle.
func TestConcurrentStormCrashRecovery(t *testing.T) {
	for _, m := range []struct {
		name    string
		noFbits bool
	}{{"bitmap", false}, {"maps", true}} {
		t.Run(m.name, func(t *testing.T) { stormCrashRecovery(t, m.noFbits) })
	}
}

func stormCrashRecovery(t *testing.T, noFbits bool) {
	const (
		workers = 8
		commits = 20
	)
	p, dev := newTestPool(t, Config{Geometry: Geometry{NLanes: workers}, Knobs: Knobs{DisableBitmapAlloc: noFbits}})
	root, err := p.Root(uint64(workers) * 32)
	if err != nil {
		t.Fatalf("Root: %v", err)
	}
	dev.EnableTracking(nil)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			slot := root.Off + uint64(w)*32
			var prev Oid
			for i := 0; i < commits; i++ {
				tx := p.Begin()
				if err := tx.AddRange(slot, 16); err != nil {
					t.Errorf("worker %d: AddRange: %v", w, err)
					_ = tx.Abort()
					return
				}
				oid, err := tx.Alloc(64)
				if err != nil {
					t.Errorf("worker %d: tx.Alloc: %v", w, err)
					_ = tx.Abort()
					return
				}
				stamp := uint64(w)<<32 | uint64(i)
				dev.WriteU64(oid.Off, stamp)
				dev.WriteU64(slot, oid.Off)
				dev.WriteU64(slot+8, stamp)
				if prev != OidNull {
					if err := tx.Free(prev); err != nil {
						t.Errorf("worker %d: tx.Free: %v", w, err)
						_ = tx.Abort()
						return
					}
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("worker %d: Commit: %v", w, err)
					return
				}
				prev = oid
			}
			// Park with an open transaction: snapshotted slot scribbled
			// over, an allocation reserved, nothing committed.
			tx := p.Begin()
			if err := tx.AddRange(slot, 16); err != nil {
				t.Errorf("worker %d: parked AddRange: %v", w, err)
				return
			}
			dev.WriteU64(slot, 0xdeadbeef)
			dev.WriteU64(slot+8, 0xdeadbeef)
			dev.Persist(slot, 16)
			if _, err := tx.Alloc(128); err != nil {
				t.Errorf("worker %d: parked tx.Alloc: %v", w, err)
			}
			// The transaction is abandoned: the crash below must undo it.
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if err := dev.Crash(); err != nil {
		t.Fatalf("Crash: %v", err)
	}
	dev.DisableTracking()
	q := reopen(t, dev)

	rootOid, err := q.Root(uint64(workers) * 32)
	if err != nil {
		t.Fatalf("Root after crash: %v", err)
	}
	liveOffs := map[uint64]bool{rootOid.Off: true}
	for w := 0; w < workers; w++ {
		slot := rootOid.Off + uint64(w)*32
		off := dev.ReadU64(slot)
		stamp := dev.ReadU64(slot + 8)
		want := uint64(w)<<32 | uint64(commits-1)
		if stamp != want {
			t.Errorf("worker %d: slot stamp %#x, want %#x (rollback lost the oracle)", w, stamp, want)
			continue
		}
		if got := dev.ReadU64(off); got != stamp {
			t.Errorf("worker %d: object at %#x holds %#x, want %#x", w, off, got, stamp)
		}
		liveOffs[off] = true
	}
	walked := 0
	if err := q.ForEachAllocated(func(off, size uint64) error {
		walked++
		if !liveOffs[off] {
			return fmt.Errorf("unexpected survivor at %#x (+%d)", off, size)
		}
		return nil
	}); err != nil {
		t.Fatalf("walk after crash: %v", err)
	}
	if walked != len(liveOffs) {
		t.Errorf("walk found %d objects, want %d (root + one per worker)", walked, len(liveOffs))
	}
	if got := q.Stats().AllocatedObjects; got != uint64(len(liveOffs)) {
		t.Errorf("Stats.AllocatedObjects = %d, want %d", got, len(liveOffs))
	}
}

// BenchmarkScalingAlloc measures atomic alloc/free throughput across a
// goroutine axis, with the sharded arena layout against a single
// serialized arena. The acceptance figure for the concurrency refactor
// is the sharded/goroutines=8 row scaling over goroutines=1 on a
// multi-core runner.
func BenchmarkScalingAlloc(b *testing.B) {
	modes := []struct {
		name       string
		arenas     int
		noAffinity bool
	}{
		{"sharded", 0, false},
		{"1arena", 1, true},
	}
	for _, m := range modes {
		for _, g := range []int{1, 2, 4, 8} {
			b.Run(fmt.Sprintf("%s/goroutines=%d", m.name, g), func(b *testing.B) {
				dev := pmem.NewPool("bench", 1<<26)
				p, err := Create(dev, nil, testBase, Config{
					UUID:     1,
					Geometry: Geometry{NLanes: 16},
					Knobs:    Knobs{NArenas: m.arenas, DisableLaneAffinity: m.noAffinity},
				})
				if err != nil {
					b.Fatalf("Create: %v", err)
				}
				per := b.N/g + 1
				b.ResetTimer()
				var wg sync.WaitGroup
				errs := make([]error, g)
				for w := 0; w < g; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						rng := stormRng(w + 1)
						var live [64]Oid
						n := 0
						for i := 0; i < per; i++ {
							oid, err := p.Alloc(64 + rng.next()%960)
							if err != nil {
								errs[w] = err
								return
							}
							if n == len(live) {
								victim := int(rng.next() % uint64(n))
								if err := p.Free(live[victim]); err != nil {
									errs[w] = err
									return
								}
								n--
								live[victim] = live[n]
							}
							live[n] = oid
							n++
						}
					}(w)
				}
				wg.Wait()
				for _, err := range errs {
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
