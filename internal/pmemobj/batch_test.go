package pmemobj

import (
	"testing"

	"repro/internal/pmem"
)

// dedupPool opens a small pool for interval-set tests.
func dedupPool(t *testing.T, cfg Config) *Pool {
	t.Helper()
	dev := pmem.NewPool("dedup", 4<<20)
	p, err := Create(dev, nil, testBase, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func ranges(tx *Tx) []txRange { return tx.ranges }

func TestAddRangeDedupMergesIntervals(t *testing.T) {
	p := dedupPool(t, Config{})
	oid, err := p.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	base := oid.Off
	tx := p.Begin()
	defer tx.Abort()

	cases := []struct {
		off, size uint64
		want      []txRange // expected interval set after the call
	}{
		{base + 100, 50, []txRange{{base + 100, 50}}},
		// Fully covered: set unchanged.
		{base + 110, 20, []txRange{{base + 100, 50}}},
		// Identical request: unchanged.
		{base + 100, 50, []txRange{{base + 100, 50}}},
		// Disjoint to the right.
		{base + 300, 10, []txRange{{base + 100, 50}, {base + 300, 10}}},
		// Overlapping extension to the left.
		{base + 80, 40, []txRange{{base + 80, 70}, {base + 300, 10}}},
		// Adjacent on the right edge merges.
		{base + 150, 10, []txRange{{base + 80, 80}, {base + 300, 10}}},
		// Spanning request swallows everything between.
		{base + 50, 300, []txRange{{base + 50, 300}}},
	}
	for i, c := range cases {
		if err := tx.AddRange(c.off, c.size); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := ranges(tx)
		if len(got) != len(c.want) {
			t.Fatalf("case %d: intervals %v, want %v", i, got, c.want)
		}
		for k := range got {
			if got[k] != c.want[k] {
				t.Fatalf("case %d: intervals %v, want %v", i, got, c.want)
			}
		}
	}
}

func TestAddRangeDedupSkipsCoveredBytes(t *testing.T) {
	p := dedupPool(t, Config{})
	oid, err := p.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.AddRange(oid.Off, 256); err != nil {
		t.Fatal(err)
	}
	before := tx.undoBytes
	// Re-adding any sub-range must not grow the undo log.
	for _, r := range []txRange{{oid.Off, 256}, {oid.Off + 8, 8}, {oid.Off + 200, 56}} {
		if err := tx.AddRange(r.off, r.size); err != nil {
			t.Fatal(err)
		}
	}
	if tx.undoBytes != before {
		t.Fatalf("undo grew from %d to %d on covered re-adds", before, tx.undoBytes)
	}
	// A half-covered request snapshots only the uncovered half.
	if err := tx.AddRange(oid.Off+192, 128); err != nil {
		t.Fatal(err)
	}
	if tx.undoBytes != before+64 {
		t.Fatalf("undo grew by %d, want 64", tx.undoBytes-before)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
}

// TestAddRangeDedupRollbackEquivalence mutates overlapping ranges and
// aborts; dedup and dense paths must both restore the original bytes.
func TestAddRangeDedupRollbackEquivalence(t *testing.T) {
	for _, disable := range []bool{false, true} {
		p := dedupPool(t, Config{Knobs: Knobs{DisableRangeDedup: disable}})
		oid, err := p.Alloc(1024)
		if err != nil {
			t.Fatal(err)
		}
		dev := p.Device()
		for i := uint64(0); i < 128; i++ {
			dev.WriteU64(oid.Off+i*8, i)
		}
		dev.Persist(oid.Off, 1024)

		tx := p.Begin()
		// Overlapping adds interleaved with stores: later adds must not
		// re-snapshot bytes the tx already dirtied.
		if err := tx.AddRange(oid.Off, 512); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 64; i++ {
			dev.WriteU64(oid.Off+i*8, 0xdead)
		}
		if err := tx.AddRange(oid.Off+256, 512); err != nil {
			t.Fatal(err)
		}
		for i := uint64(64); i < 96; i++ { // words 64..95 stay inside [256,768)
			dev.WriteU64(oid.Off+i*8, 0xbeef)
		}
		if err := tx.Abort(); err != nil {
			t.Fatal(err)
		}
		for i := uint64(0); i < 128; i++ {
			if got := dev.ReadU64(oid.Off + i*8); got != i {
				t.Fatalf("disable=%v: word %d = %#x after abort, want %d", disable, i, got, i)
			}
		}
	}
}

func TestBatchKnobsThread(t *testing.T) {
	p := dedupPool(t, Config{})
	if !p.RangeDedup() || !p.FlushCoalesce() || !p.GroupFence() {
		t.Error("batching not on by default")
	}
	p2 := dedupPool(t, Config{Knobs: Knobs{DisableRangeDedup: true, DisableFlushCoalesce: true, DisableGroupFence: true}})
	if p2.RangeDedup() || p2.FlushCoalesce() || p2.GroupFence() {
		t.Error("disable knobs did not thread through")
	}
}

// TestCommitBatchedAllKnobCombos runs the same tx workload under every
// knob combination and checks committed state and rollback behavior.
func TestCommitBatchedAllKnobCombos(t *testing.T) {
	for mask := 0; mask < 8; mask++ {
		cfg := Config{Knobs: Knobs{
			DisableRangeDedup:    mask&1 != 0,
			DisableFlushCoalesce: mask&2 != 0,
			DisableGroupFence:    mask&4 != 0,
		}}
		p := dedupPool(t, cfg)
		oid, err := p.Alloc(512)
		if err != nil {
			t.Fatal(err)
		}
		tx := p.Begin()
		if err := tx.AddRange(oid.Off, 512); err != nil {
			t.Fatal(err)
		}
		if err := tx.AddRange(oid.Off+64, 64); err != nil {
			t.Fatal(err)
		}
		p.Device().WriteU64(oid.Off, 0x1234)
		inner, err := tx.Alloc(128)
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("mask %d: %v", mask, err)
		}
		if got := p.Device().ReadU64(oid.Off); got != 0x1234 {
			t.Fatalf("mask %d: committed store lost (%#x)", mask, got)
		}
		if _, err := p.validateOid(inner); err != nil {
			t.Fatalf("mask %d: tx alloc not live after commit: %v", mask, err)
		}
	}
}
