package pmemobj

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// TestFbits drives the hierarchical bitmap against a naive boolean
// reference across sizes that exercise every level shape: single word,
// exact word boundary, two levels, three levels.
func TestFbits(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 129, 4096, 5000} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			f := newFbits(n)
			ref := make([]bool, n)
			rng := rand.New(rand.NewSource(int64(n)))
			refNext := func(i int) int {
				for ; i < n; i++ {
					if ref[i] {
						return i
					}
				}
				return -1
			}
			for step := 0; step < 4000; step++ {
				i := rng.Intn(n)
				switch rng.Intn(3) {
				case 0:
					f.set(i)
					ref[i] = true
				case 1:
					f.clear(i)
					ref[i] = false
				case 2:
					if got, want := f.test(i), ref[i]; got != want {
						t.Fatalf("step %d: test(%d) = %v, want %v", step, i, got, want)
					}
				}
				q := rng.Intn(n)
				if got, want := f.nextSet(q), refNext(q); got != want {
					t.Fatalf("step %d: nextSet(%d) = %d, want %d", step, q, got, want)
				}
			}
			if got, want := f.nextSet(0), refNext(0); got != want {
				t.Fatalf("final: nextSet(0) = %d, want %d", got, want)
			}
			if f.nextSet(n) != -1 || f.nextSet(n+100) != -1 {
				t.Fatal("nextSet past the end must return -1")
			}
		})
	}
}

// TestBitmapAllocFreeMergeRoundTrip walks the bitmap fast path through
// an alloc/free/merge/reuse cycle where every interesting transition is
// observable through block offsets: forward merging across a freed
// neighbor, reuse of the merged block by a larger request, a re-split
// back into the original blocks, and lazy discard of the stale stack
// entry the merge leaves behind.
func TestBitmapAllocFreeMergeRoundTrip(t *testing.T) {
	// One arena: the offsets below assume every request lands in the
	// same free run (sync.Pool affinity hints are not deterministic
	// under the race detector).
	p, _ := newTestPool(t, Config{Knobs: Knobs{NArenas: 1}})
	alloc := func(size uint64) Oid {
		t.Helper()
		oid, err := p.Alloc(size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		return oid
	}
	free := func(oid Oid) {
		t.Helper()
		if err := p.Free(oid); err != nil {
			t.Fatalf("Free(%v): %v", oid, err)
		}
	}

	// Three adjacent 128-byte blocks carved off the front of the heap.
	a, b, c := alloc(100), alloc(100), alloc(100)
	if b.Off != a.Off+128 || c.Off != b.Off+128 {
		t.Fatalf("allocations not adjacent: %#x %#x %#x", a.Off, b.Off, c.Off)
	}

	// Freeing b lists a 128-block; freeing a then forward-merges it into
	// a 256-block (and strands b's 128-class stack entry as stale).
	free(b)
	free(a)

	// A 256-class request must reuse the merged block.
	big := alloc(200)
	if big.Off != a.Off {
		t.Fatalf("merged block not reused: got %#x, want %#x", big.Off, a.Off)
	}

	// Re-split: two 128-byte requests recover exactly a and b. The
	// first scans the 128 class, finds only b's stale entry (its slot
	// bit died with the merge), discards it and splits the 256 block.
	free(big)
	r1, r2 := alloc(100), alloc(100)
	if r1.Off != a.Off || r2.Off != b.Off {
		t.Fatalf("re-split mismatch: got %#x,%#x want %#x,%#x", r1.Off, r2.Off, a.Off, b.Off)
	}
	free(r1)
	free(r2)
	free(c)
}

// blockMap snapshots the heap's block chain (offset -> size and state)
// for structural comparison between allocator modes.
func blockMap(t *testing.T, p *Pool) map[uint64][2]uint64 {
	t.Helper()
	out := map[uint64][2]uint64{}
	p.heap.lockAll()
	defer p.heap.unlockAll()
	err := p.heap.walkLocked(p, func(off, size, state uint64, inFlux bool) error {
		out[off] = [2]uint64{size, state}
		return nil
	})
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	return out
}

// freeCount sums the live free-listed blocks across arenas.
func freeCount(p *Pool) int {
	n := 0
	for i := range p.heap.arenas {
		a := &p.heap.arenas[i]
		a.mu.Lock()
		n += a.nFree
		a.mu.Unlock()
	}
	return n
}

// TestBitmapRebuildEquivalence checks that the bitmap and map-based
// allocators are two volatile views of the same persistent heap: after
// a randomized alloc/free/realloc history, reopening the pool in either
// mode rebuilds the identical block chain, identical occupancy and the
// same number of free-listed blocks — and both modes keep serving
// allocations from that state.
func TestBitmapRebuildEquivalence(t *testing.T) {
	p, dev := newTestPool(t, Config{})
	rng := rand.New(rand.NewSource(7))
	var live []Oid
	for i := 0; i < 400; i++ {
		switch {
		case rng.Intn(100) < 55 || len(live) == 0:
			oid, err := p.Alloc(32 + uint64(rng.Intn(3000)))
			if err != nil {
				t.Fatalf("Alloc: %v", err)
			}
			live = append(live, oid)
		case rng.Intn(2) == 0:
			k := rng.Intn(len(live))
			if err := p.Free(live[k]); err != nil {
				t.Fatalf("Free: %v", err)
			}
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		default:
			k := rng.Intn(len(live))
			oid, err := p.Realloc(live[k], 32+uint64(rng.Intn(3000)))
			if err != nil {
				t.Fatalf("Realloc: %v", err)
			}
			live[k] = oid
		}
	}

	base := blockMap(t, p)
	baseStats := p.Stats()

	open := func(disable bool) *Pool {
		t.Helper()
		q, err := OpenConfig(dev, nil, testBase, Config{Knobs: Knobs{DisableBitmapAlloc: disable}})
		if err != nil {
			t.Fatalf("OpenConfig(disable=%v): %v", disable, err)
		}
		return q
	}
	bm, mp := open(false), open(true)
	if bm.heap.arenas[0].bm == nil || mp.heap.arenas[0].bm != nil {
		t.Fatal("DisableBitmapAlloc knob not honoured")
	}
	// The two rebuilt views must be structurally identical to each
	// other (open coalesces adjacent free runs, so free blocks may be
	// fewer than on the live chain — but identically so in both modes),
	// and every allocated block must survive the rebuild untouched.
	bmChain, mpChain := blockMap(t, bm), blockMap(t, mp)
	if len(bmChain) != len(mpChain) {
		t.Fatalf("rebuilt chains differ: bitmap %d blocks, maps %d", len(bmChain), len(mpChain))
	}
	for off, ss := range bmChain {
		if mpChain[off] != ss {
			t.Fatalf("block %#x: bitmap rebuilt %v, maps %v", off, ss, mpChain[off])
		}
	}
	for off, ss := range base {
		if ss[1] != blockAllocated {
			continue
		}
		if bmChain[off] != ss {
			t.Fatalf("allocated block %#x rebuilt as %v, want %v", off, bmChain[off], ss)
		}
	}
	for _, q := range []*Pool{bm, mp} {
		if s := q.Stats(); s != baseStats {
			t.Fatalf("rebuilt stats %+v, want %+v", s, baseStats)
		}
	}
	if nb, nm := freeCount(bm), freeCount(mp); nb != nm {
		t.Fatalf("free-list depth differs: bitmap %d, maps %d", nb, nm)
	}

	// Both rebuilt views must serve the same live set: free everything
	// through one, then the other must see a fully coalesced heap.
	// (The two Pools share the device; use each for disjoint work.)
	for _, oid := range live {
		if err := bm.Free(oid); err != nil {
			t.Fatalf("Free after rebuild: %v", err)
		}
	}
	mp2 := open(true)
	if got := mp2.Stats().AllocatedObjects; got != 0 {
		t.Fatalf("map-mode reopen after bitmap-mode frees: %d objects live, want 0", got)
	}
	if _, err := mp2.Alloc(4096); err != nil {
		t.Fatalf("Alloc after full free: %v", err)
	}
}

// TestBitmapLargeBlocks exercises the map-list spillover: requests
// above smallClassMax bypass the class pools in bitmap mode and must
// still round-trip, merge and rebuild.
func TestBitmapLargeBlocks(t *testing.T) {
	dev := pmem.NewPool("test", 1<<23)
	p, err := Create(dev, nil, testBase, Config{UUID: 0xbeef, Knobs: Knobs{NArenas: 1}})
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	a, err := p.Alloc(smallClassMax * 2)
	if err != nil {
		t.Fatalf("Alloc large: %v", err)
	}
	b, err := p.Alloc(smallClassMax * 3)
	if err != nil {
		t.Fatalf("Alloc large: %v", err)
	}
	if err := p.Free(a); err != nil {
		t.Fatalf("Free: %v", err)
	}
	// The freed large block must be found again by a same-size request.
	a2, err := p.Alloc(smallClassMax * 2)
	if err != nil {
		t.Fatalf("Alloc large again: %v", err)
	}
	if a2.Off != a.Off {
		t.Fatalf("large block not reused: got %#x, want %#x", a2.Off, a.Off)
	}
	if err := p.Free(b); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := p.Free(a2); err != nil {
		t.Fatalf("Free: %v", err)
	}
	q := reopen(t, dev)
	if got := q.Stats().AllocatedObjects; got != 0 {
		t.Fatalf("%d objects live after frees, want 0", got)
	}
}
