package pmemobj

import (
	"fmt"
	"sync"
)

// allocator manages the persistent heap. Persistent state lives in the
// block headers; the free lists are volatile and rebuilt on open,
// matching PMDK's recovery-time heap boot.
type allocator struct {
	mu         sync.Mutex
	free       map[uint64][]uint64 // block size -> block offsets
	freeSet    map[uint64]uint64   // block offset -> size, for O(1) membership
	usedBytes  uint64
	usedBlocks uint64
}

func (a *allocator) addFree(off, size uint64) {
	a.free[size] = append(a.free[size], off)
	a.freeSet[off] = size
}

func (a *allocator) removeFree(off, size uint64) {
	delete(a.freeSet, off)
	bucket := a.free[size]
	for i, b := range bucket {
		if b == off {
			bucket[i] = bucket[len(bucket)-1]
			a.free[size] = bucket[:len(bucket)-1]
			break
		}
	}
	if len(a.free[size]) == 0 {
		delete(a.free, size)
	}
}

// rebuild walks the heap, releases blocks left uncommitted by a crash,
// persistently merges adjacent free blocks and reconstructs the
// volatile free lists.
func (a *allocator) rebuild(p *Pool) error {
	a.free = make(map[uint64][]uint64)
	a.freeSet = make(map[uint64]uint64)
	a.usedBytes, a.usedBlocks = 0, 0

	var runStart, runSize uint64
	var runBlocks int
	closeRun := func() {
		if runBlocks == 0 {
			return
		}
		if runBlocks > 1 {
			p.dev.WriteU64(runStart, runSize)
			p.dev.WriteU64(runStart+8, blockFree)
			p.dev.Persist(runStart, blockHdrSize)
		}
		a.addFree(runStart, runSize)
		runBlocks, runSize = 0, 0
	}

	off := p.heapOff
	for off < p.heapEnd {
		size := p.dev.ReadU64(off)
		state := p.dev.ReadU64(off + 8)
		if size < minBlockSize || size%blockAlign != 0 || off+size > p.heapEnd {
			return fmt.Errorf("%w: block at %#x has size %d", ErrCorruptPool, off, size)
		}
		if state == blockUncommitted {
			// Reserved by a transaction that never committed.
			p.dev.WriteU64(off+8, blockFree)
			p.dev.Persist(off+8, 8)
			state = blockFree
		}
		switch state {
		case blockFree:
			if runBlocks == 0 {
				runStart = off
			}
			runSize += size
			runBlocks++
		case blockAllocated:
			closeRun()
			a.usedBytes += size
			a.usedBlocks++
		default:
			return fmt.Errorf("%w: block at %#x has state %d", ErrCorruptPool, off, state)
		}
		off += size
	}
	closeRun()
	return nil
}

// compact persistently merges adjacent free blocks across the whole
// heap and rebuilds the free lists. Unlike rebuild it runs on a live
// pool, so uncommitted blocks (open-transaction reservations) are
// treated as allocated. Caller holds a.mu.
func (a *allocator) compact(p *Pool) error {
	a.free = make(map[uint64][]uint64)
	a.freeSet = make(map[uint64]uint64)

	var runStart, runSize uint64
	var runBlocks int
	closeRun := func() {
		if runBlocks == 0 {
			return
		}
		if runBlocks > 1 {
			p.dev.WriteU64(runStart, runSize)
			p.dev.WriteU64(runStart+8, blockFree)
			p.dev.Persist(runStart, blockHdrSize)
		}
		a.addFree(runStart, runSize)
		runBlocks, runSize = 0, 0
	}
	for off := p.heapOff; off < p.heapEnd; {
		size := p.dev.ReadU64(off)
		state := p.dev.ReadU64(off + 8)
		if size < minBlockSize || size%blockAlign != 0 || off+size > p.heapEnd {
			return fmt.Errorf("%w: block at %#x has size %d", ErrCorruptPool, off, size)
		}
		if state == blockFree {
			if runBlocks == 0 {
				runStart = off
			}
			runSize += size
			runBlocks++
		} else {
			closeRun()
		}
		off += size
	}
	closeRun()
	return nil
}

// reservation is a block picked for an allocation but not yet
// published: its header still reads as free (or carries the previous
// state), so a crash before publication loses nothing.
type reservation struct {
	blk  uint64 // block header offset
	size uint64 // block size to publish (header included)
}

func (r reservation) payloadOff() uint64 { return r.blk + blockHdrSize }

// reserve picks and, if profitable, splits a free block for a payload
// of the given size. The remainder's header is persisted before the
// chosen block is published, so the heap walk stays consistent at
// every intermediate state. Caller holds a.mu.
func (a *allocator) reserve(p *Pool, payload uint64) (reservation, error) {
	need := align16(payload) + blockHdrSize
	if need < payload { // overflow
		return reservation{}, ErrObjectTooBig
	}
	need = classSize(need)

	size, off, ok := a.pick(need)
	if !ok {
		// Free-at-time coalescing only merges forward; fall back to a
		// full defragmentation pass before giving up.
		if err := a.compact(p); err != nil {
			return reservation{}, err
		}
		if size, off, ok = a.pick(need); !ok {
			return reservation{}, fmt.Errorf("%w: need %d bytes", ErrOutOfMemory, need)
		}
	}
	a.removeFree(off, size)

	if size-need >= minBlockSize {
		rem := size - need
		p.dev.WriteU64(off+need, rem)
		p.dev.WriteU64(off+need+8, blockFree)
		p.dev.Persist(off+need, blockHdrSize)
		a.addFree(off+need, rem)
		size = need
	}
	return reservation{blk: off, size: size}, nil
}

// classSize rounds a block size up to its allocation class, like
// PMDK's class-based heap: a 128-byte minimum unit, 128-byte steps up
// to 1 KiB and 256-byte steps beyond. Small layout growth — such as
// SPP's extra 8 bytes per embedded oid in tree nodes — is absorbed by
// the class padding, which is why Table III reports ~0% for ctree and
// rbtree while rtree's 256-oid nodes cross into larger classes.
func classSize(need uint64) uint64 {
	switch {
	case need <= 128:
		return 128
	case need <= 1024:
		return (need + 127) &^ 127
	default:
		return (need + 255) &^ 255
	}
}

// pick returns the best free block for a request of `need` bytes:
// exact fit if available, else the smallest larger block.
func (a *allocator) pick(need uint64) (size, off uint64, ok bool) {
	if bucket := a.free[need]; len(bucket) > 0 {
		return need, bucket[len(bucket)-1], true
	}
	best := ^uint64(0)
	for s := range a.free {
		if s >= need && s < best {
			best = s
		}
	}
	if best == ^uint64(0) {
		return 0, 0, false
	}
	bucket := a.free[best]
	return best, bucket[len(bucket)-1], true
}

// release returns a published-free block to the volatile lists,
// merging it with an immediately following free block. The merge is
// persisted through the caller's redo entries; release only updates
// volatile state. Caller holds a.mu.
func (a *allocator) release(off, size uint64) {
	a.addFree(off, size)
}

// checkAllocSize validates a requested object size against the pool
// configuration.
func (p *Pool) checkAllocSize(size uint64) error {
	if size == 0 {
		return ErrZeroSizeAlloc
	}
	if p.spp && size > p.enc.MaxObjectSize() {
		return fmt.Errorf("%w: %d > %d (tag bits %d)", ErrObjectTooBig, size, p.enc.MaxObjectSize(), p.enc.TagBits())
	}
	return nil
}

// allocEntries returns the redo entries that publish a reservation as
// an allocated block.
func allocEntries(r reservation) []redoEntry {
	return []redoEntry{
		{r.blk, r.size},
		{r.blk + 8, blockAllocated},
	}
}

// destOidEntries returns the redo entries that publish an oid into a
// persistent destination. The size field precedes the offset field —
// the SPP ordering requirement of §IV-F.
func (p *Pool) destOidEntries(destOff uint64, oid Oid) []redoEntry {
	if p.packed {
		// The packed layout publishes offset and size in one word.
		return []redoEntry{
			{destOff + oidPoolField, oid.Pool},
			{destOff + oidOffField, p.PackOff(oid.Off, oid.Size)},
		}
	}
	var entries []redoEntry
	if p.spp {
		entries = append(entries, redoEntry{destOff + oidSizeField, oid.Size})
	}
	entries = append(entries,
		redoEntry{destOff + oidPoolField, oid.Pool},
		redoEntry{destOff + oidOffField, oid.Off},
	)
	return entries
}

// Alloc atomically allocates a zeroed object of the given size and
// returns its oid to the (volatile) caller — pmemobj_alloc with a
// stack-resident destination.
func (p *Pool) Alloc(size uint64) (Oid, error) {
	oid, _, err := p.allocCommon(size, nil)
	return oid, err
}

// AllocAt atomically allocates a zeroed object and publishes its oid
// into the pool at destOff, all through one redo log: either the
// destination holds the complete oid (size before offset) or the
// allocation never happened.
func (p *Pool) AllocAt(destOff, size uint64) error {
	_, _, err := p.allocCommon(size, &destOff)
	return err
}

func (p *Pool) allocCommon(size uint64, destOff *uint64) (Oid, reservation, error) {
	if err := p.checkAllocSize(size); err != nil {
		return OidNull, reservation{}, err
	}
	lane := <-p.lanes
	defer func() { p.lanes <- lane }()
	p.heap.mu.Lock()
	defer p.heap.mu.Unlock()

	resv, err := p.heap.reserve(p, size)
	if err != nil {
		return OidNull, reservation{}, err
	}
	p.dev.Zero(resv.payloadOff(), resv.size-blockHdrSize)
	p.dev.Persist(resv.payloadOff(), resv.size-blockHdrSize)

	oid := Oid{Pool: p.uuid, Off: resv.payloadOff(), Size: size}
	entries := allocEntries(resv)
	if destOff != nil {
		entries = append(entries, p.destOidEntries(*destOff, oid)...)
	}
	if err := p.publishRedo(p.laneOff(lane), entries); err != nil {
		// Publication failed before the committed flag: hand the block
		// back to the volatile lists; persistent state never changed.
		p.heap.release(resv.blk, resv.size)
		return OidNull, reservation{}, err
	}
	p.heap.usedBytes += resv.size
	p.heap.usedBlocks++
	return oid, resv, nil
}

// Free atomically releases the object behind oid (pmemobj_free with a
// volatile oid variable).
func (p *Pool) Free(oid Oid) error {
	return p.freeCommon(oid, nil)
}

// FreeAt atomically releases the object whose oid is stored at destOff
// and clears the stored oid, all in one redo log.
func (p *Pool) FreeAt(destOff uint64) error {
	oid := p.ReadOid(destOff)
	return p.freeCommon(oid, &destOff)
}

func (p *Pool) freeCommon(oid Oid, destOff *uint64) error {
	blk, err := p.validateOid(oid)
	if err != nil {
		return err
	}
	lane := <-p.lanes
	defer func() { p.lanes <- lane }()
	p.heap.mu.Lock()
	defer p.heap.mu.Unlock()

	size := p.dev.ReadU64(blk)
	merged := size
	next := blk + size
	if nsize, ok := p.heap.freeSet[next]; ok {
		// Forward coalescing: absorb the adjacent free block in the
		// same redo publication.
		p.heap.removeFree(next, nsize)
		merged += nsize
	}
	entries := []redoEntry{{blk, merged}, {blk + 8, blockFree}}
	if destOff != nil {
		entries = append(entries, p.destOidEntries(*destOff, OidNull)...)
	}
	if err := p.publishRedo(p.laneOff(lane), entries); err != nil {
		if merged != size {
			p.heap.addFree(next, merged-size)
		}
		return err
	}
	p.heap.release(blk, merged)
	p.heap.usedBytes -= size
	p.heap.usedBlocks--
	return nil
}

// Realloc atomically resizes the object behind oid, returning the new
// oid to a volatile caller.
func (p *Pool) Realloc(oid Oid, size uint64) (Oid, error) {
	return p.reallocCommon(oid, size, nil)
}

// ReallocAt atomically resizes the object whose oid is stored at
// destOff, publishing the entire new oid through the redo log — the
// paper's "entire PMEMoid structure is captured in a log" (§IV-F).
func (p *Pool) ReallocAt(destOff, size uint64) error {
	oid := p.ReadOid(destOff)
	if oid.IsNull() {
		return p.AllocAt(destOff, size)
	}
	_, err := p.reallocCommon(oid, size, &destOff)
	return err
}

func (p *Pool) reallocCommon(oid Oid, size uint64, destOff *uint64) (Oid, error) {
	if err := p.checkAllocSize(size); err != nil {
		return OidNull, err
	}
	blk, err := p.validateOid(oid)
	if err != nil {
		return OidNull, err
	}
	lane := <-p.lanes
	defer func() { p.lanes <- lane }()
	p.heap.mu.Lock()
	defer p.heap.mu.Unlock()

	oldSize := p.dev.ReadU64(blk)
	newOid := Oid{Pool: p.uuid, Off: oid.Off, Size: size}
	if align16(size)+blockHdrSize == oldSize {
		// Same block footprint: only the logical size changes.
		var entries []redoEntry
		if destOff != nil {
			entries = p.destOidEntries(*destOff, newOid)
		}
		if len(entries) > 0 {
			if err := p.publishRedo(p.laneOff(lane), entries); err != nil {
				return OidNull, err
			}
		}
		return newOid, nil
	}

	resv, err := p.heap.reserve(p, size)
	if err != nil {
		return OidNull, err
	}
	// Move the payload before publication; the copy targets a block
	// that is still free, so a crash loses nothing.
	copyLen := oldSize - blockHdrSize
	if newPayload := resv.size - blockHdrSize; newPayload < copyLen {
		copyLen = newPayload
	}
	p.dev.WriteBytes(resv.payloadOff(), p.dev.ReadBytes(blk+blockHdrSize, copyLen))
	if grow := resv.size - blockHdrSize - copyLen; grow > 0 {
		p.dev.Zero(resv.payloadOff()+copyLen, grow)
	}
	p.dev.Persist(resv.payloadOff(), resv.size-blockHdrSize)

	newOid.Off = resv.payloadOff()
	entries := append(allocEntries(resv), redoEntry{blk + 8, blockFree})
	if destOff != nil {
		entries = append(entries, p.destOidEntries(*destOff, newOid)...)
	}
	if err := p.publishRedo(p.laneOff(lane), entries); err != nil {
		p.heap.release(resv.blk, resv.size)
		return OidNull, err
	}
	p.heap.release(blk, oldSize)
	p.heap.usedBytes += resv.size - oldSize
	return newOid, nil
}
