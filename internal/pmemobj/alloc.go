package pmemobj

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/telemetry"
)

// The heap is organized as N arenas — contiguous address ranges of the
// persistent heap, each with its own mutex, size-class free lists and
// O(1) membership index. Allocations are goroutine-affine: a sync.Pool
// hint remembers the arena a worker last succeeded in, so concurrent
// allocators spread across arenas and the common path takes exactly one
// uncontended lock. When an arena runs dry the request steals from the
// neighbors (hint+1, hint+2, ...) before falling back to a compaction
// pass over the whole heap.
//
// Persistent state lives only in the block headers; arena membership
// and free lists are volatile and rebuilt on open. A block is owned by
// the arena containing its START offset; blocks may extend past their
// arena's end (rebuild avoids creating such blocks, but a neighboring
// merge or a whole-heap compaction can).
//
// In-flux blocks and the reserved set. Between picking a block and the
// redo publication that settles it, a block's persistent header
// disagrees with the volatile truth (a reservation's header still
// reads free; a freed block's forward-merge victim is off the lists
// but still reads free). Every such block is entered into its arena's
// reserved set, mapping start offset -> current span. Whole-heap walks
// (compaction, ForEachAllocated) hold all arena locks and treat a
// reserved entry as an allocated block of that span, overriding
// whatever the headers under it say. The memory-model contract: header
// bytes inside a reserved span may be written without any lock held;
// the matching unreserve/finish call takes the arena lock, which
// publishes those writes to every later walk.
//
// Lock hierarchy: a data-path operation holds at most one arena lock;
// the only place a second is taken is the split-remainder handoff,
// which always locks a strictly higher-indexed arena. Whole-heap walks
// take all arena locks in ascending index order. The pmem device's
// internal locks are below all arena locks.

// minArenaSpan keeps arenas from becoming too small to be useful; the
// arena count is clamped so each spans at least this much heap.
const minArenaSpan = 64 << 10

// freeRef locates a free block inside its arena's lists: the size
// bucket and the block's index within it, for O(1) removal.
type freeRef struct {
	size uint64
	idx  int
}

// arena is one lockable shard of the heap.
type arena struct {
	mu      sync.Mutex
	lo, hi  uint64
	free    map[uint64][]uint64 // block size -> block offsets
	freeSet map[uint64]freeRef  // block offset -> list position
	// bm, when non-nil, is the bitmap fast path (fbits.go): blocks up
	// to smallClassMax live in per-class stacks indexed by hierarchical
	// bitmaps instead of the maps above, which then hold only the rare
	// large blocks.
	bm    *classPools
	nFree int // live free-listed blocks (both structures)
	// reserved maps the start offset of every in-flux block owned by
	// this arena to its current span. See the package comment above.
	reserved map[uint64]uint64
}

func (a *arena) contains(off uint64) bool { return off >= a.lo && off < a.hi }

func (a *arena) addFree(off, size uint64) {
	a.nFree++
	if a.bm != nil && size <= smallClassMax {
		a.bm.push(a.lo, off, size)
		return
	}
	bucket := a.free[size]
	a.freeSet[off] = freeRef{size: size, idx: len(bucket)}
	a.free[size] = append(bucket, off)
}

// removeFree unlinks a free block in O(1). In the bitmap fast path a
// small block's slot bit is cleared and its stack entry left to lazy
// discard; otherwise the freeSet index names its bucket slot and the
// bucket's last element is swapped into the hole.
func (a *arena) removeFree(off, size uint64) {
	if a.bm != nil && size <= smallClassMax {
		if a.bm.take(a.lo, off) {
			a.nFree--
		}
		return
	}
	ref, ok := a.freeSet[off]
	if !ok {
		return
	}
	a.nFree--
	delete(a.freeSet, off)
	bucket := a.free[ref.size]
	last := len(bucket) - 1
	if moved := bucket[last]; moved != off {
		bucket[ref.idx] = moved
		a.freeSet[moved] = freeRef{size: ref.size, idx: ref.idx}
	}
	bucket = bucket[:last]
	if len(bucket) == 0 {
		delete(a.free, ref.size)
	} else {
		a.free[ref.size] = bucket
	}
}

// freeSizeAt reports whether a live free-listed block starts at off,
// and its size. Caller holds a.mu.
func (a *arena) freeSizeAt(p *Pool, off uint64) (uint64, bool) {
	if a.bm != nil && a.bm.testSlot(a.lo, off) {
		// The slot bit guarantees the persistent header is the free
		// size (see fbits.go).
		return p.dev.ReadU64(off), true
	}
	if ref, ok := a.freeSet[off]; ok {
		return ref.size, true
	}
	return 0, false
}

// pick returns the best free block for a request of need bytes: exact
// fit if available, else the smallest larger block. Caller holds a.mu.
func (a *arena) pick(p *Pool, need uint64) (size, off uint64, ok bool) {
	if a.bm != nil {
		if need <= smallClassMax {
			if off, size, ok := a.bm.pickSmall(p, a.lo, need); ok {
				return size, off, true
			}
		}
		// Small classes dry (or the request is large): fall through to
		// the map-based large lists.
	} else if bucket := a.free[need]; len(bucket) > 0 {
		return need, bucket[len(bucket)-1], true
	}
	best := ^uint64(0)
	for s := range a.free {
		if s >= need && s < best {
			best = s
		}
	}
	if best == ^uint64(0) {
		return 0, 0, false
	}
	bucket := a.free[best]
	return best, bucket[len(bucket)-1], true
}

// reset clears the free lists for repopulation. The reserved set is
// preserved: it is the volatile truth for in-flux blocks and outlives
// any rebuild of the lists.
func (a *arena) reset() {
	a.free = map[uint64][]uint64{}
	a.freeSet = map[uint64]freeRef{}
	a.nFree = 0
	if a.bm != nil {
		a.bm.reset()
	}
}

// arenaHint is a worker's remembered arena, recycled through a
// sync.Pool. It carries only an index — losing one to the GC costs
// nothing but affinity.
type arenaHint struct {
	idx uint32
}

// heap manages the persistent heap across its arenas.
type heap struct {
	lo, hi uint64
	span   uint64
	arenas []arena

	usedBytes  atomic.Uint64
	usedBlocks atomic.Uint64

	rotor atomic.Uint32 // round-robin seed for fresh hints
	hints sync.Pool     // *arenaHint

	// arenaMet caches the per-arena reservation counters so the hot
	// path never formats a label.
	arenaMet []*telemetry.Counter
}

func (h *heap) init(lo, hi uint64, nArenas int, bitmap bool) {
	h.lo, h.hi = lo, hi
	total := hi - lo
	n := nArenas
	if n < 1 {
		n = 1
	}
	if max := int(total / minArenaSpan); n > max {
		n = max
	}
	if n < 1 {
		n = 1
	}
	span := (total / uint64(n)) &^ (blockAlign - 1)
	if span < minBlockSize {
		n, span = 1, total
	}
	h.span = span
	h.arenas = make([]arena, n)
	for i := range h.arenas {
		a := &h.arenas[i]
		a.lo = lo + uint64(i)*span
		a.hi = a.lo + span
		if i == n-1 {
			a.hi = hi
		}
		if bitmap {
			a.bm = newClassPools(a.hi - a.lo)
		}
		a.reset()
		a.reserved = map[uint64]uint64{}
	}
	h.arenaMet = arenaCounters(n)
}

func (h *heap) arenaIdx(off uint64) int {
	i := int((off - h.lo) / h.span)
	if i >= len(h.arenas) {
		i = len(h.arenas) - 1
	}
	return i
}

func (h *heap) arenaOf(off uint64) *arena { return &h.arenas[h.arenaIdx(off)] }

func (h *heap) lockAll() {
	for i := range h.arenas {
		h.arenas[i].mu.Lock()
	}
}

func (h *heap) unlockAll() {
	for i := len(h.arenas) - 1; i >= 0; i-- {
		h.arenas[i].mu.Unlock()
	}
}

func (h *heap) getHint() *arenaHint {
	if v := h.hints.Get(); v != nil {
		return v.(*arenaHint)
	}
	return &arenaHint{idx: (h.rotor.Add(1) - 1) % uint32(len(h.arenas))}
}

// reservation is a block picked for an allocation but not yet
// published: its header still reads as free (or carries the previous
// state), so a crash before publication loses nothing. The block stays
// in its arena's reserved set until the owner settles it.
type reservation struct {
	blk  uint64 // block header offset
	size uint64 // block size to publish (header included)
}

func (r reservation) payloadOff() uint64 { return r.blk + blockHdrSize }

// reserveAny picks (and if profitable splits) a free block for a
// payload of the given size, trying the goroutine's affine arena
// first, then stealing from neighbors, then compacting — first within
// arena boundaries, then across the whole heap for requests no single
// arena can hold.
func (h *heap) reserveAny(p *Pool, payload uint64) (reservation, error) {
	need := align16(payload) + blockHdrSize
	if need < payload { // overflow
		return reservation{}, ErrObjectTooBig
	}
	need = classSize(need)

	if r, ok := h.tryReserve(p, need); ok {
		return r, nil
	}
	// Free-at-time coalescing only merges forward within an arena;
	// defragment each arena before giving up.
	if err := h.compactAll(p, true); err != nil {
		return reservation{}, err
	}
	if r, ok := h.tryReserve(p, need); ok {
		return r, nil
	}
	// A request larger than any per-arena run needs whole-heap runs:
	// compact again without cutting at arena boundaries.
	if err := h.compactAll(p, false); err != nil {
		return reservation{}, err
	}
	if r, ok := h.tryReserve(p, need); ok {
		return r, nil
	}
	return reservation{}, fmt.Errorf("%w: need %d bytes", ErrOutOfMemory, need)
}

// tryReserve probes the arenas starting at the worker's affine hint,
// advancing to the neighbors when one is dry. At most one arena lock is
// held at a time (plus a higher-indexed one inside the split handoff).
func (h *heap) tryReserve(p *Pool, need uint64) (reservation, bool) {
	n := len(h.arenas)
	hint := h.getHint()
	start := int(hint.idx) % n
	for k := 0; k < n; k++ {
		ai := (start + k) % n
		a := &h.arenas[ai]
		a.mu.Lock()
		r, ok := h.reserveIn(p, a, need)
		a.mu.Unlock()
		if telemetry.On() && k > 0 {
			distCounter(&stealAttemptByDist, k).Inc()
			if ok {
				distCounter(&stealOKByDist, k).Inc()
			}
		}
		if ok {
			if telemetry.On() {
				h.arenaMet[ai].Inc()
			}
			if k > 0 {
				telemetry.Flight.Record(telemetry.EvSteal, uint64(ai), uint64(k))
			}
			hint.idx = uint32(ai)
			h.hints.Put(hint)
			return r, true
		}
	}
	h.hints.Put(hint)
	return reservation{}, false
}

// reserveIn carves a block of exactly need bytes out of arena a.
// Caller holds a.mu. The chosen block enters a.reserved before any
// header is touched; if the pick is split, the remainder's header is
// persisted and the remainder is handed to the arena owning its start
// offset (always this one or a higher-indexed one, keeping lock
// acquisition ascending).
func (h *heap) reserveIn(p *Pool, a *arena, need uint64) (reservation, bool) {
	size, off, ok := a.pick(p, need)
	if !ok {
		return reservation{}, false
	}
	a.removeFree(off, size)
	a.reserved[off] = size

	if size-need >= minBlockSize {
		rem := size - need
		remOff := off + need
		p.dev.WriteU64(remOff, rem)
		p.dev.WriteU64(remOff+8, blockFree)
		p.dev.Persist(remOff, blockHdrSize)
		if a.contains(remOff) {
			a.addFree(remOff, rem)
		} else {
			b := h.arenaOf(remOff) // strictly higher index than a
			b.mu.Lock()
			b.addFree(remOff, rem)
			b.mu.Unlock()
		}
		size = need
		a.reserved[off] = need
	}
	return reservation{blk: off, size: size}, true
}

// unreserve settles a reservation whose block header has reached its
// final published state. Taking the arena lock here publishes the
// owner's lock-free header writes to every later whole-heap walk.
func (h *heap) unreserve(blk uint64) {
	a := h.arenaOf(blk)
	a.mu.Lock()
	delete(a.reserved, blk)
	a.mu.Unlock()
}

// markReserved puts an already-published block into the in-flux state
// (realloc does this to the old block before the redo that frees it).
func (h *heap) markReserved(blk, span uint64) {
	a := h.arenaOf(blk)
	a.mu.Lock()
	a.reserved[blk] = span
	a.mu.Unlock()
}

// releaseBlock returns an in-flux block to the free lists, persisting
// a free header of exactly r.size first. It serves both failed
// publications (whose header may still carry the pre-split size) and
// uncommitted blocks being released (tx aborts, log extensions).
func (h *heap) releaseBlock(p *Pool, r reservation) {
	a := h.arenaOf(r.blk)
	a.mu.Lock()
	p.dev.WriteU64(r.blk, r.size)
	p.dev.WriteU64(r.blk+8, blockFree)
	p.dev.Persist(r.blk, blockHdrSize)
	delete(a.reserved, r.blk)
	a.addFree(r.blk, r.size)
	a.mu.Unlock()
}

// planFree prepares to free the published block at blk: a
// forward-adjacent free block in the same arena is absorbed (off the
// lists, merged into the span) and the whole span turns in-flux so
// concurrent walks treat it as live until the redo publication
// settles. Returns the merged span.
func (h *heap) planFree(p *Pool, blk, size uint64) (merged uint64) {
	a := h.arenaOf(blk)
	a.mu.Lock()
	merged = size
	next := blk + size
	if next < h.hi && h.arenaOf(next) == a {
		if nsz, ok := a.freeSizeAt(p, next); ok {
			a.removeFree(next, nsz)
			merged += nsz
		}
	}
	a.reserved[blk] = merged
	a.mu.Unlock()
	return merged
}

// finishFree completes a planned free after its redo publication: the
// merged span, now persistently free, joins the lists.
func (h *heap) finishFree(blk, merged uint64) {
	a := h.arenaOf(blk)
	a.mu.Lock()
	delete(a.reserved, blk)
	a.addFree(blk, merged)
	a.mu.Unlock()
}

// abortFree undoes a planned free whose publication failed: the block
// stays allocated and the absorbed neighbor returns to the lists.
func (h *heap) abortFree(blk, size, merged uint64) {
	a := h.arenaOf(blk)
	a.mu.Lock()
	delete(a.reserved, blk)
	if merged != size {
		a.addFree(blk+size, merged-size)
	}
	a.mu.Unlock()
}

// walkLocked traverses the heap's block chain. Caller holds all arena
// locks. In-flux blocks are reported as allocated with their reserved
// span — their persistent headers may be mid-rewrite and are neither
// read nor trusted.
func (h *heap) walkLocked(p *Pool, fn func(off, size, state uint64, inFlux bool) error) error {
	for off := h.lo; off < h.hi; {
		if span, ok := h.arenaOf(off).reserved[off]; ok {
			if err := fn(off, span, blockAllocated, true); err != nil {
				return err
			}
			off += span
			continue
		}
		size := p.dev.ReadU64(off)
		state := p.dev.ReadU64(off + 8)
		if size < minBlockSize || size%blockAlign != 0 || off+size > h.hi {
			return fmt.Errorf("%w: block at %#x has size %d", ErrCorruptPool, off, size)
		}
		if state != blockFree && state != blockAllocated && state != blockUncommitted {
			return fmt.Errorf("%w: block at %#x has state %d", ErrCorruptPool, off, state)
		}
		if err := fn(off, size, state, false); err != nil {
			return err
		}
		off += size
	}
	return nil
}

// runPiece is one arena-local slice of a free run.
type runPiece struct {
	off, size uint64
}

// cutRun splits a free run at arena boundaries so each arena's lists
// own locally-contained blocks. A cut that would leave a sliver below
// minBlockSize on either side is skipped (the piece then crosses the
// boundary; reserve handles such blocks). With split=false the run is
// kept whole — the path that serves requests larger than one arena.
func (h *heap) cutRun(start, size uint64, split bool) []runPiece {
	if !split {
		return []runPiece{{start, size}}
	}
	var out []runPiece
	off, rem := start, size
	for {
		end := h.arenaOf(off).hi
		if off+rem <= end || off+rem-end < minBlockSize || end-off < minBlockSize {
			out = append(out, runPiece{off, rem})
			return out
		}
		piece := end - off
		out = append(out, runPiece{off, piece})
		off += piece
		rem -= piece
	}
}

// rebuildLocked walks the heap, merges adjacent free blocks into runs,
// cuts the runs into per-arena pieces and repopulates the free lists.
// Caller holds all arena locks. At open it additionally releases
// blocks left uncommitted by a crash and recounts occupancy; on a live
// pool uncommitted blocks are open-transaction reservations and stay
// allocated, and in-flux spans are skipped via the reserved sets.
//
// Piece headers are persisted in descending address order: a walk
// interrupted by a crash then follows original headers up to the first
// rewritten piece and rewritten headers after it, staying consistent
// at every intermediate state. When crash tracking is off (no
// intermediate states exist) and the machine has spare cores, an
// open-time rebuild populates the arenas in parallel shards instead.
func (h *heap) rebuildLocked(p *Pool, atOpen, split bool) error {
	type run struct {
		start, size uint64
	}
	var runs []run
	orig := make(map[uint64]uint64) // pre-existing free headers: off -> size
	var usedB, usedN uint64
	var runStart, runSize uint64
	var runBlocks int
	closeRun := func() {
		if runBlocks > 0 {
			runs = append(runs, run{runStart, runSize})
			runBlocks, runSize = 0, 0
		}
	}
	err := h.walkLocked(p, func(off, size, state uint64, inFlux bool) error {
		if state == blockUncommitted && atOpen {
			// Reserved by a transaction that never committed.
			p.dev.WriteU64(off+8, blockFree)
			p.dev.Persist(off+8, 8)
			state = blockFree
		}
		if state == blockFree && !inFlux {
			if runBlocks == 0 {
				runStart = off
			}
			runSize += size
			runBlocks++
			orig[off] = size
			return nil
		}
		closeRun()
		usedB += size
		usedN++
		return nil
	})
	if err != nil {
		return err
	}
	closeRun()
	if atOpen {
		h.usedBytes.Store(usedB)
		h.usedBlocks.Store(usedN)
	}

	var pieces []runPiece
	for _, r := range runs {
		pieces = append(pieces, h.cutRun(r.start, r.size, split)...)
	}
	for i := range h.arenas {
		h.arenas[i].reset()
	}
	populate := func(pc runPiece) {
		if orig[pc.off] != pc.size {
			p.dev.WriteU64(pc.off, pc.size)
			p.dev.WriteU64(pc.off+8, blockFree)
			p.dev.Persist(pc.off, blockHdrSize)
		}
		h.arenaOf(pc.off).addFree(pc.off, pc.size)
	}
	if atOpen && !p.dev.Tracking() && len(h.arenas) > 1 && runtime.GOMAXPROCS(0) > 1 {
		byArena := make([][]runPiece, len(h.arenas))
		for _, pc := range pieces {
			i := h.arenaIdx(pc.off)
			byArena[i] = append(byArena[i], pc)
		}
		var wg sync.WaitGroup
		for i := range byArena {
			if len(byArena[i]) == 0 {
				continue
			}
			wg.Add(1)
			go func(ps []runPiece) {
				defer wg.Done()
				for _, pc := range ps {
					populate(pc)
				}
			}(byArena[i])
		}
		wg.Wait()
	} else {
		for i := len(pieces) - 1; i >= 0; i-- {
			populate(pieces[i])
		}
	}
	return nil
}

// rebuild is the open-time heap boot: crash-released blocks, merged
// runs, arena population (in parallel shards when tracking is off).
func (h *heap) rebuild(p *Pool) error {
	h.lockAll()
	defer h.unlockAll()
	return h.rebuildLocked(p, true, true)
}

// compactAll defragments the live heap: all arena locks are taken,
// adjacent free blocks are merged persistently and the lists rebuilt.
// In-flux and uncommitted blocks are treated as allocated.
func (h *heap) compactAll(p *Pool, split bool) error {
	metCompactions.Inc()
	var whole uint64
	if !split {
		whole = 1
	}
	telemetry.Flight.Record(telemetry.EvCompact, whole, 0)
	h.lockAll()
	defer h.unlockAll()
	return h.rebuildLocked(p, false, split)
}

// subUsed subtracts from an occupancy counter.
func subUsed(c *atomic.Uint64, n uint64) {
	c.Add(^(n - 1))
}

// classSize rounds a block size up to its allocation class, like
// PMDK's class-based heap: a 128-byte minimum unit, 128-byte steps up
// to 1 KiB and 256-byte steps beyond. Small layout growth — such as
// SPP's extra 8 bytes per embedded oid in tree nodes — is absorbed by
// the class padding, which is why Table III reports ~0% for ctree and
// rbtree while rtree's 256-oid nodes cross into larger classes.
func classSize(need uint64) uint64 {
	switch {
	case need <= 128:
		return 128
	case need <= 1024:
		return (need + 127) &^ 127
	default:
		return (need + 255) &^ 255
	}
}

// checkAllocSize validates a requested object size against the pool
// configuration.
func (p *Pool) checkAllocSize(size uint64) error {
	if size == 0 {
		return ErrZeroSizeAlloc
	}
	if p.spp && size > p.enc.MaxObjectSize() {
		return fmt.Errorf("%w: %d > %d (tag bits %d)", ErrObjectTooBig, size, p.enc.MaxObjectSize(), p.enc.TagBits())
	}
	return nil
}

// allocEntries returns the redo entries that publish a reservation as
// an allocated block.
func allocEntries(r reservation) []redoEntry {
	return []redoEntry{
		{r.blk, r.size},
		{r.blk + 8, blockAllocated},
	}
}

// destOidEntries returns the redo entries that publish an oid into a
// persistent destination. The size field precedes the offset field —
// the SPP ordering requirement of §IV-F.
func (p *Pool) destOidEntries(destOff uint64, oid Oid) []redoEntry {
	if p.packed {
		// The packed layout publishes offset and size in one word.
		return []redoEntry{
			{destOff + oidPoolField, oid.Pool},
			{destOff + oidOffField, p.PackOff(oid.Off, oid.Size)},
		}
	}
	var entries []redoEntry
	if p.spp {
		entries = append(entries, redoEntry{destOff + oidSizeField, oid.Size})
	}
	entries = append(entries,
		redoEntry{destOff + oidPoolField, oid.Pool},
		redoEntry{destOff + oidOffField, oid.Off},
	)
	return entries
}

// Alloc atomically allocates a zeroed object of the given size and
// returns its oid to the (volatile) caller — pmemobj_alloc with a
// stack-resident destination.
func (p *Pool) Alloc(size uint64) (Oid, error) {
	oid, _, err := p.allocCommon(size, nil)
	return oid, err
}

// AllocAt atomically allocates a zeroed object and publishes its oid
// into the pool at destOff, all through one redo log: either the
// destination holds the complete oid (size before offset) or the
// allocation never happened.
func (p *Pool) AllocAt(destOff, size uint64) error {
	_, _, err := p.allocCommon(size, &destOff)
	return err
}

func (p *Pool) allocCommon(size uint64, destOff *uint64) (Oid, reservation, error) {
	if err := p.checkAllocSize(size); err != nil {
		return OidNull, reservation{}, err
	}
	lane := p.lanes.acquire()
	defer p.lanes.release(lane)

	resv, err := p.heap.reserveAny(p, size)
	if err != nil {
		return OidNull, reservation{}, err
	}
	p.dev.Zero(resv.payloadOff(), resv.size-blockHdrSize)
	p.dev.Persist(resv.payloadOff(), resv.size-blockHdrSize)

	oid := Oid{Pool: p.uuid, Off: resv.payloadOff(), Size: size}
	entries := allocEntries(resv)
	if destOff != nil {
		entries = append(entries, p.destOidEntries(*destOff, oid)...)
	}
	if err := p.publishRedo(p.laneOff(lane), entries); err != nil {
		// Publication failed before the committed flag: hand the block
		// back; no allocated state was ever persisted.
		p.heap.releaseBlock(p, resv)
		return OidNull, reservation{}, err
	}
	p.heap.unreserve(resv.blk)
	p.heap.usedBytes.Add(resv.size)
	p.heap.usedBlocks.Add(1)
	metAllocs.Inc()
	metAllocBytes.Add(resv.size)
	metBlockSize.Observe(resv.size)
	telemetry.Flight.Record(telemetry.EvAlloc, resv.payloadOff(), resv.size)
	return oid, resv, nil
}

// Free atomically releases the object behind oid (pmemobj_free with a
// volatile oid variable).
func (p *Pool) Free(oid Oid) error {
	return p.freeCommon(oid, nil)
}

// FreeAt atomically releases the object whose oid is stored at destOff
// and clears the stored oid, all in one redo log.
func (p *Pool) FreeAt(destOff uint64) error {
	oid := p.ReadOid(destOff)
	return p.freeCommon(oid, &destOff)
}

func (p *Pool) freeCommon(oid Oid, destOff *uint64) error {
	blk, err := p.validateOid(oid)
	if err != nil {
		return err
	}
	lane := p.lanes.acquire()
	defer p.lanes.release(lane)

	size := p.dev.ReadU64(blk)
	merged := p.heap.planFree(p, blk, size)
	entries := []redoEntry{{blk, merged}, {blk + 8, blockFree}}
	if destOff != nil {
		entries = append(entries, p.destOidEntries(*destOff, OidNull)...)
	}
	if err := p.publishRedo(p.laneOff(lane), entries); err != nil {
		p.heap.abortFree(blk, size, merged)
		return err
	}
	p.heap.finishFree(blk, merged)
	subUsed(&p.heap.usedBytes, size)
	subUsed(&p.heap.usedBlocks, 1)
	metFrees.Inc()
	telemetry.Flight.Record(telemetry.EvFree, blk, merged)
	return nil
}

// Realloc atomically resizes the object behind oid, returning the new
// oid to a volatile caller.
func (p *Pool) Realloc(oid Oid, size uint64) (Oid, error) {
	return p.reallocCommon(oid, size, nil)
}

// ReallocAt atomically resizes the object whose oid is stored at
// destOff, publishing the entire new oid through the redo log — the
// paper's "entire PMEMoid structure is captured in a log" (§IV-F).
func (p *Pool) ReallocAt(destOff, size uint64) error {
	oid := p.ReadOid(destOff)
	if oid.IsNull() {
		return p.AllocAt(destOff, size)
	}
	_, err := p.reallocCommon(oid, size, &destOff)
	return err
}

func (p *Pool) reallocCommon(oid Oid, size uint64, destOff *uint64) (Oid, error) {
	if err := p.checkAllocSize(size); err != nil {
		return OidNull, err
	}
	blk, err := p.validateOid(oid)
	if err != nil {
		return OidNull, err
	}
	lane := p.lanes.acquire()
	defer p.lanes.release(lane)

	oldSize := p.dev.ReadU64(blk)
	newOid := Oid{Pool: p.uuid, Off: oid.Off, Size: size}
	if align16(size)+blockHdrSize == oldSize {
		// Same block footprint: only the logical size changes.
		var entries []redoEntry
		if destOff != nil {
			entries = p.destOidEntries(*destOff, newOid)
		}
		if len(entries) > 0 {
			if err := p.publishRedo(p.laneOff(lane), entries); err != nil {
				return OidNull, err
			}
		}
		metReallocs.Inc()
		return newOid, nil
	}

	resv, err := p.heap.reserveAny(p, size)
	if err != nil {
		return OidNull, err
	}
	// Move the payload before publication; the copy targets a block
	// that is still free, so a crash loses nothing.
	copyLen := oldSize - blockHdrSize
	if newPayload := resv.size - blockHdrSize; newPayload < copyLen {
		copyLen = newPayload
	}
	p.dev.WriteBytes(resv.payloadOff(), p.dev.ReadBytes(blk+blockHdrSize, copyLen))
	if grow := resv.size - blockHdrSize - copyLen; grow > 0 {
		p.dev.Zero(resv.payloadOff()+copyLen, grow)
	}
	p.dev.Persist(resv.payloadOff(), resv.size-blockHdrSize)

	// The old block turns in-flux before the redo that frees it: its
	// header is rewritten by applyRedo without any lock held.
	p.heap.markReserved(blk, oldSize)

	newOid.Off = resv.payloadOff()
	entries := append(allocEntries(resv), redoEntry{blk + 8, blockFree})
	if destOff != nil {
		entries = append(entries, p.destOidEntries(*destOff, newOid)...)
	}
	if err := p.publishRedo(p.laneOff(lane), entries); err != nil {
		p.heap.unreserve(blk)
		p.heap.releaseBlock(p, resv)
		return OidNull, err
	}
	p.heap.unreserve(resv.blk)
	p.heap.finishFree(blk, oldSize)
	p.heap.usedBytes.Add(resv.size - oldSize)
	metReallocs.Inc()
	metBlockSize.Observe(resv.size)
	telemetry.Flight.Record(telemetry.EvAlloc, resv.payloadOff(), resv.size)
	return newOid, nil
}
