package pmemobj

import "repro/internal/pmem"

// commitScratch is the per-call working set of the batched commit
// pipeline: a flush accumulator bound to this pool's device and a
// reusable word buffer for bulk log writes. Instances are recycled
// through Pool.scratch so the commit path does not allocate.
type commitScratch struct {
	ac    *pmem.FlushAccum
	words []uint64
}

func (p *Pool) getScratch() *commitScratch {
	return p.scratch.Get().(*commitScratch)
}

func (p *Pool) putScratch(s *commitScratch) {
	s.words = s.words[:0]
	p.scratch.Put(s)
}

// fence orders all previously issued flushes. With group fencing on,
// the fence is shared with concurrent committers through the device's
// epoch combiner; a return still guarantees that every flush this
// goroutine issued before the call is durable.
func (p *Pool) fence() {
	if p.groupFence {
		p.dev.GroupFence()
	} else {
		p.dev.Fence()
	}
}

// persist is Flush+fence on the pool's fence policy.
func (p *Pool) persist(off, size uint64) {
	p.dev.Flush(off, size)
	p.fence()
}
