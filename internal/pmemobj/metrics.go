package pmemobj

import (
	"strconv"

	"repro/internal/telemetry"
)

// Package-wide telemetry for the memory path. Counters aggregate
// across pools (benchmark harnesses open many); per-pool state gauges
// are registered by registerTelemetry and rebind to the most recently
// opened pool with Config.Telemetry set.
var (
	metAllocs     = telemetry.Default.Counter("spp_alloc_total", "atomic+tx object allocations")
	metFrees      = telemetry.Default.Counter("spp_free_total", "atomic+tx object frees")
	metReallocs   = telemetry.Default.Counter("spp_realloc_total", "object reallocations")
	metAllocBytes = telemetry.Default.Counter("spp_alloc_bytes_total", "bytes of allocated blocks, headers included")
	metBlockSize  = telemetry.Default.Histogram("spp_alloc_block_size_bytes", "allocated block sizes")

	metArenaAlloc   = telemetry.Default.CounterVec("spp_arena_alloc_total", "reservations served per arena", "arena")
	metStealAttempt = telemetry.Default.CounterVec("spp_steal_attempts_total", "reservation probes of non-affine arenas", "distance")
	metStealOK      = telemetry.Default.CounterVec("spp_steal_success_total", "reservations served by non-affine arenas", "distance")
	metCompactions  = telemetry.Default.Counter("spp_compactions_total", "whole-heap compaction passes")

	metLaneAffinity = telemetry.Default.Counter("spp_lane_affinity_hits_total", "lane acquires served by the worker's affine slot")
	metLaneScan     = telemetry.Default.Counter("spp_lane_scan_hits_total", "lane acquires served by the slow-path slot scan")
	metLaneChannel  = telemetry.Default.Counter("spp_lane_channel_total", "lane acquires served by the shared channel")
	metLanePark     = telemetry.Default.Counter("spp_lane_park_total", "lane releases parked in an affine slot")
	metLaneForward  = telemetry.Default.Counter("spp_lane_forward_total", "parked lanes retaken and forwarded to waiters")

	metTxBegin    = telemetry.Default.Counter("spp_tx_begin_total", "transactions begun")
	metTxCommit   = telemetry.Default.Counter("spp_tx_commit_total", "transactions committed")
	metTxAbort    = telemetry.Default.Counter("spp_tx_abort_total", "transactions aborted")
	metUndoBytes  = telemetry.Default.Histogram("spp_tx_undo_bytes", "undo bytes snapshotted per transaction")
	metRedoEnts   = telemetry.Default.Histogram("spp_redo_entries", "entries per published redo log")
	metRecovered  = telemetry.Default.Counter("spp_recovered_lanes_total", "lanes repaired during pool recovery")
	metLogExtends = telemetry.Default.Counter("spp_undo_extensions_total", "undo-log heap extensions")

	metRangeDedup = telemetry.Default.Counter("spp_tx_ranges_deduped_total", "AddRange calls fully or partially covered by an earlier snapshot")
	metDedupBytes = telemetry.Default.Counter("spp_tx_dedup_bytes_total", "snapshot bytes skipped by undo-range dedup")
)

// maxDistLabels caps the distance label cardinality; probes farther
// than this share the overflow counter.
const maxDistLabels = 16

var (
	stealAttemptByDist [maxDistLabels + 1]*telemetry.Counter
	stealOKByDist      [maxDistLabels + 1]*telemetry.Counter
)

func init() {
	for d := 0; d <= maxDistLabels; d++ {
		label := strconv.Itoa(d)
		if d == maxDistLabels {
			label = strconv.Itoa(maxDistLabels) + "+"
		}
		stealAttemptByDist[d] = metStealAttempt.With(label)
		stealOKByDist[d] = metStealOK.With(label)
	}
}

func distCounter(set *[maxDistLabels + 1]*telemetry.Counter, dist int) *telemetry.Counter {
	if dist >= maxDistLabels {
		dist = maxDistLabels
	}
	return set[dist]
}

// maxArenaLabels caps the per-arena label cardinality.
const maxArenaLabels = 64

// arenaCounters caches the per-arena reservation counters for a heap
// so the allocation path never builds a label string.
func arenaCounters(n int) []*telemetry.Counter {
	out := make([]*telemetry.Counter, n)
	for i := range out {
		if i < maxArenaLabels {
			out[i] = metArenaAlloc.With(strconv.Itoa(i))
		} else {
			out[i] = metArenaAlloc.With(strconv.Itoa(maxArenaLabels) + "+")
		}
	}
	return out
}

// registerTelemetry publishes this pool's heap-state gauges. GaugeFunc
// replaces on re-registration, so the gauges always describe the most
// recently opened telemetry-enabled pool.
func (p *Pool) registerTelemetry() {
	reg := telemetry.Default
	reg.GaugeFunc("spp_heap_used_bytes", "bytes in allocated blocks", func() int64 {
		return int64(p.heap.usedBytes.Load())
	})
	reg.GaugeFunc("spp_heap_used_blocks", "live allocations", func() int64 {
		return int64(p.heap.usedBlocks.Load())
	})
	reg.GaugeFunc("spp_heap_free_blocks", "free-list depth across arenas", func() int64 {
		var n int64
		for i := range p.heap.arenas {
			a := &p.heap.arenas[i]
			a.mu.Lock()
			n += int64(a.nFree)
			a.mu.Unlock()
		}
		return n
	})
	reg.GaugeFunc("spp_heap_reserved_blocks", "in-flux blocks across arenas", func() int64 {
		var n int64
		for i := range p.heap.arenas {
			a := &p.heap.arenas[i]
			a.mu.Lock()
			n += int64(len(a.reserved))
			a.mu.Unlock()
		}
		return n
	})
	reg.GaugeFunc("spp_heap_arenas", "allocator arena count", func() int64 {
		return int64(len(p.heap.arenas))
	})
	reg.GaugeFunc("spp_lanes", "configured lane count", func() int64 {
		return int64(p.nLanes)
	})
}
