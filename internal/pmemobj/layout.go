package pmemobj

// Pool layout constants. All offsets are relative to the pool start.
const (
	poolMagic   = 0x314a424f4d505053 // "SPPMOBJ1" little-endian
	poolVersion = 1

	headerSize = 4096

	// Header field offsets.
	hMagic       = 0
	hVersion     = 8
	hUUID        = 16
	hPoolSize    = 24
	hOidSize     = 32 // 16 (PMDK) or 24 (SPP)
	hTagBits     = 40
	hHeapOff     = 48
	hHeapSize    = 56
	hNLanes      = 64
	hLaneSize    = 72
	hRedoEntries = 80
	hUndoBytes   = 88
	hRoot        = 96  // persisted oid (24 bytes reserved)
	hRootSize    = 120 // requested root size, for Root() growth checks
	hUserSlot    = 128 // persisted oid reserved for sanitizer metadata (SafePM shadow)
	hPackedOid   = 152 // 1 = size packed into the oid offset field (16-byte SPP oids)

	// Heap block header: {size, state}, each 8 bytes. size includes
	// the header and is a multiple of blockAlign.
	blockHdrSize = 16
	blockAlign   = 16
	minBlockSize = 32 // header + smallest payload

	// Block states.
	blockFree        = 0
	blockAllocated   = 1
	blockUncommitted = 2 // reserved inside an open transaction

	// Lane sub-layout (offsets relative to the lane start). Like the
	// undo log, the redo log grows into heap-allocated extension
	// segments when a commit carries more entries than the lane holds.
	laneRedoState = 0 // 0 = empty, 1 = committed
	laneRedoCount = 8 // total entries, across extensions
	laneRedoExt   = 16
	laneRedoBase  = 24 // redoEntries × {off, val}

	// Redo extension segment payload layout.
	redoExtNextOff  = 0
	redoExtCountOff = 8
	redoExtDataOff  = 16

	// Undo log header follows the redo area. The fixed in-lane data
	// region is extended with heap-allocated overflow segments (PMDK's
	// log extensions) chained through undoExtOff.
	undoStateOff = 0 // relative to undo area: 0 = inactive, 1 = active
	undoUsedOff  = 8
	undoExtOff   = 16 // payload offset of the first extension, 0 = none
	undoDataOff  = 24

	// Extension segment payload layout.
	extNextOff = 0 // payload offset of the next extension, 0 = none
	extUsedOff = 8
	extDataOff = 16

	redoEmpty     = 0
	redoCommitted = 1

	undoInactive = 0
	undoActive   = 1
)

// Defaults for Config.
const (
	DefaultNLanes      = 32
	DefaultRedoEntries = 64
	DefaultUndoBytes   = 1 << 15
	DefaultNArenas     = 8
)

func align16(n uint64) uint64 { return (n + blockAlign - 1) &^ (blockAlign - 1) }

func align8(n uint64) uint64 { return (n + 7) &^ 7 }
