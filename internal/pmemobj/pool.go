package pmemobj

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pmem"
	"repro/internal/telemetry"
	"repro/internal/vmem"
)

// Knobs and Geometry alias the shared engine tuning surface (the
// single definition of every volatile knob and log-geometry field;
// see internal/engine).
type (
	Knobs    = engine.Knobs
	Geometry = engine.Geometry
)

// Config controls pool creation. The volatile knobs (embedded Knobs)
// shape rebuilt in-memory structure only; the embedded Geometry and
// the fields below are persisted in the pool header at creation.
type Config struct {
	// SPP enables the paper's extensions: 24-byte persisted oids and
	// tagged pointers from Direct.
	SPP bool
	// PackedOid implements the paper's future-work design (§VI-C): the
	// object size is encoded in the upper bits of the oid's offset
	// field, so SPP oids keep PMDK's 16-byte footprint and the PM
	// space overhead of Table III disappears. Implies SPP. The
	// offset/size split follows the pointer encoding: size in the top
	// tagBits, offset in the low addrBits.
	PackedOid bool
	// TagBits is the SPP tag width; core.DefaultTagBits when zero.
	TagBits uint
	// UUID fixes the pool UUID; a random one is chosen when zero.
	UUID uint64

	Geometry
	Knobs
}

func (c Config) withDefaults() Config {
	if c.TagBits == 0 {
		c.TagBits = core.DefaultTagBits
	}
	if c.NLanes == 0 {
		c.NLanes = DefaultNLanes
	}
	if c.RedoEntries == 0 {
		c.RedoEntries = DefaultRedoEntries
	}
	if c.UndoBytes == 0 {
		c.UndoBytes = DefaultUndoBytes
	}
	if c.UUID == 0 {
		c.UUID = rand.Uint64() | 1 // never zero
	}
	if c.NArenas == 0 {
		c.NArenas = DefaultNArenas
	}
	return c
}

// Errors returned by pool operations.
var (
	ErrCorruptPool   = errors.New("pmemobj: corrupt pool")
	ErrBadOid        = errors.New("pmemobj: invalid oid")
	ErrOutOfMemory   = errors.New("pmemobj: out of persistent memory")
	ErrObjectTooBig  = errors.New("pmemobj: object exceeds maximum size for tag width")
	ErrLogFull       = errors.New("pmemobj: lane log capacity exceeded")
	ErrNotInPool     = errors.New("pmemobj: address not inside pool")
	ErrTxActive      = errors.New("pmemobj: operation invalid inside a transaction")
	ErrRootMismatch  = errors.New("pmemobj: root object exists with different size")
	ErrPoolMapsHigh  = errors.New("pmemobj: pool mapped beyond SPP address-bit limit")
	ErrZeroSizeAlloc = errors.New("pmemobj: zero-size allocation")
)

// Pool is an open persistent object pool.
type Pool struct {
	dev  *pmem.Pool
	as   *vmem.AddressSpace
	base uint64 // virtual address of pool start

	uuid     uint64
	spp      bool
	packed   bool
	enc      core.Encoding
	oidSize  uint64
	heapOff  uint64
	heapEnd  uint64
	nLanes   int
	laneSize uint64
	redoCap  int
	undoCap  uint64

	nArenas      int
	laneAffinity bool
	mvcc         bool

	// Batched commit pipeline knobs (see DESIGN.md §12) and the
	// recycled per-commit scratch (flush accumulator + word buffer).
	rangeDedup    bool
	flushCoalesce bool
	groupFence    bool
	scratch       sync.Pool

	heap  heap
	lanes *laneQueue

	rootMu sync.Mutex
}

// Create formats dev as a fresh pool, maps it at base in as, and
// returns the open pool. base must be non-zero so that a null oid never
// resolves to mapped memory, and in SPP mode the whole pool must fit
// under the encoding's address-bit limit.
func Create(dev *pmem.Pool, as *vmem.AddressSpace, base uint64, cfg Config) (*Pool, error) {
	cfg = cfg.withDefaults()
	enc, err := core.NewEncoding(cfg.TagBits)
	if err != nil {
		return nil, err
	}
	if base == 0 {
		return nil, fmt.Errorf("pmemobj: pool base must be non-zero")
	}
	if cfg.SPP && base+dev.Size() > enc.MaxPoolEnd() {
		return nil, fmt.Errorf("%w: pool end %#x > limit %#x (tag bits %d)",
			ErrPoolMapsHigh, base+dev.Size(), enc.MaxPoolEnd(), cfg.TagBits)
	}

	laneSize := laneRedoBase + uint64(cfg.RedoEntries)*16 + undoDataOff + cfg.UndoBytes
	heapOff := align16(headerSize + uint64(cfg.NLanes)*laneSize)
	if dev.Size() < heapOff+minBlockSize {
		return nil, fmt.Errorf("pmemobj: pool of %d bytes too small for layout (need > %d)", dev.Size(), heapOff)
	}
	heapSize := dev.Size() - heapOff

	if cfg.PackedOid {
		cfg.SPP = true
	}
	oidSize := uint64(OidSizePMDK)
	if cfg.SPP && !cfg.PackedOid {
		oidSize = OidSizeSPP
	}

	dev.Zero(0, headerSize)
	dev.WriteU64(hVersion, poolVersion)
	dev.WriteU64(hUUID, cfg.UUID)
	dev.WriteU64(hPoolSize, dev.Size())
	dev.WriteU64(hOidSize, oidSize)
	dev.WriteU64(hTagBits, uint64(cfg.TagBits))
	dev.WriteU64(hHeapOff, heapOff)
	dev.WriteU64(hHeapSize, heapSize)
	dev.WriteU64(hNLanes, uint64(cfg.NLanes))
	dev.WriteU64(hLaneSize, laneSize)
	dev.WriteU64(hRedoEntries, uint64(cfg.RedoEntries))
	dev.WriteU64(hUndoBytes, cfg.UndoBytes)
	if cfg.PackedOid {
		dev.WriteU64(hPackedOid, 1)
	}

	// Clear lane control words; lane bodies need no initialization.
	for i := 0; i < cfg.NLanes; i++ {
		lane := headerSize + uint64(i)*laneSize
		dev.WriteU64(lane+laneRedoState, redoEmpty)
		dev.WriteU64(lane+laneRedoCount, 0)
		dev.WriteU64(lane+laneRedoExt, 0)
		undo := lane + laneRedoBase + uint64(cfg.RedoEntries)*16
		dev.WriteU64(undo+undoStateOff, undoInactive)
		dev.WriteU64(undo+undoUsedOff, 0)
	}

	// One free block spans the whole heap.
	dev.WriteU64(heapOff, heapSize&^(blockAlign-1))
	dev.WriteU64(heapOff+8, blockFree)
	dev.Persist(0, heapOff+blockHdrSize)

	// Magic last: its presence marks a validly formatted pool.
	dev.WriteU64(hMagic, poolMagic)
	dev.Persist(hMagic, 8)

	return open(dev, as, base, cfg)
}

// Open maps an existing pool at base and runs recovery: committed redo
// logs are re-applied, active undo logs are rolled back, uncommitted
// blocks are released, and the volatile allocator state is rebuilt.
func Open(dev *pmem.Pool, as *vmem.AddressSpace, base uint64) (*Pool, error) {
	return OpenConfig(dev, as, base, Config{})
}

// OpenConfig is Open with explicit volatile knobs (arena count, lane
// affinity). Persistent geometry always comes from the pool header;
// fields of cfg that describe persistent layout are ignored.
func OpenConfig(dev *pmem.Pool, as *vmem.AddressSpace, base uint64, cfg Config) (*Pool, error) {
	if dev.Size() < headerSize || dev.ReadU64(hMagic) != poolMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptPool)
	}
	if v := dev.ReadU64(hVersion); v != poolVersion {
		return nil, fmt.Errorf("%w: version %d", ErrCorruptPool, v)
	}
	return open(dev, as, base, cfg)
}

func open(dev *pmem.Pool, as *vmem.AddressSpace, base uint64, cfg Config) (*Pool, error) {
	tagBits := uint(dev.ReadU64(hTagBits))
	enc, err := core.NewEncoding(tagBits)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptPool, err)
	}
	packed := dev.ReadU64(hPackedOid) == 1
	p := &Pool{
		dev:      dev,
		as:       as,
		base:     base,
		uuid:     dev.ReadU64(hUUID),
		packed:   packed,
		spp:      dev.ReadU64(hOidSize) == OidSizeSPP || packed,
		enc:      enc,
		oidSize:  dev.ReadU64(hOidSize),
		heapOff:  dev.ReadU64(hHeapOff),
		nLanes:   int(dev.ReadU64(hNLanes)),
		laneSize: dev.ReadU64(hLaneSize),
		redoCap:  int(dev.ReadU64(hRedoEntries)),
		undoCap:  dev.ReadU64(hUndoBytes),
	}
	p.heapEnd = p.heapOff + dev.ReadU64(hHeapSize)&^(blockAlign-1)
	if p.heapEnd > dev.Size() || p.heapOff >= p.heapEnd || p.nLanes <= 0 {
		return nil, fmt.Errorf("%w: bad geometry", ErrCorruptPool)
	}
	if p.spp && base+dev.Size() > enc.MaxPoolEnd() {
		return nil, fmt.Errorf("%w: pool end %#x > limit %#x", ErrPoolMapsHigh, base+dev.Size(), enc.MaxPoolEnd())
	}

	p.nArenas = cfg.NArenas
	if p.nArenas <= 0 {
		p.nArenas = DefaultNArenas
	}
	p.laneAffinity = !cfg.DisableLaneAffinity
	p.mvcc = !cfg.NoMVCC
	p.rangeDedup = !cfg.DisableRangeDedup
	p.flushCoalesce = !cfg.DisableFlushCoalesce
	p.groupFence = !cfg.DisableGroupFence
	p.scratch.New = func() any {
		return &commitScratch{ac: pmem.NewFlushAccum(p.dev, p.flushCoalesce)}
	}

	if cfg.Telemetry {
		telemetry.Enable()
	}
	if cfg.FlightRecorder {
		telemetry.Flight.Enable()
	}
	if cfg.MetricsSample > 0 {
		telemetry.SetHookSampling(cfg.MetricsSample)
	}

	if err := p.recover(); err != nil {
		return nil, err
	}
	p.heap.init(p.heapOff, p.heapEnd, p.nArenas, !cfg.DisableBitmapAlloc)
	if err := p.heap.rebuild(p); err != nil {
		return nil, err
	}
	p.nArenas = len(p.heap.arenas) // after clamping to the heap size

	p.lanes = newLaneQueue(p.nLanes, p.laneAffinity)

	if cfg.Telemetry {
		p.registerTelemetry()
	}

	if as != nil {
		err := as.Map(&vmem.Mapping{Base: base, Data: dev.Data(), Name: dev.Name(), Observer: dev})
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// Close unmaps the pool from the address space.
func (p *Pool) Close() error {
	if p.as == nil {
		return nil
	}
	return p.as.Unmap(p.base)
}

// recover runs the lane recovery protocol (§5 of DESIGN.md): a lane
// whose undo log is active belongs to an uncommitted transaction — its
// prepared redo is discarded and the undo rolled back; otherwise a
// committed redo log is (re-)applied.
func (p *Pool) recover() error {
	for i := 0; i < p.nLanes; i++ {
		lane := p.laneOff(i)
		undo := p.undoOff(i)
		if p.dev.ReadU64(undo+undoStateOff) == undoActive {
			p.discardRedo(lane)
			if err := p.rollbackUndo(undo); err != nil {
				return err
			}
			metRecovered.Inc()
			telemetry.Flight.Record(telemetry.EvRecovery, uint64(i), 1)
			continue
		}
		if p.dev.ReadU64(lane+laneRedoState) == redoCommitted {
			p.applyRedo(lane)
			metRecovered.Inc()
			telemetry.Flight.Record(telemetry.EvRecovery, uint64(i), 2)
		}
	}
	return nil
}

func (p *Pool) laneOff(i int) uint64 { return headerSize + uint64(i)*p.laneSize }

func (p *Pool) undoOff(i int) uint64 {
	return p.laneOff(i) + laneRedoBase + uint64(p.redoCap)*16
}

// UUID returns the pool UUID (low half).
func (p *Pool) UUID() uint64 { return p.uuid }

// SPP reports whether the pool persists SPP oids and tags pointers.
func (p *Pool) SPP() bool { return p.spp }

// PackedOid reports whether oid size fields are packed into the
// offset word (the future-work layout with zero PM space overhead).
func (p *Pool) PackedOid() bool { return p.packed }

// Encoding returns the pool's SPP encoding.
func (p *Pool) Encoding() core.Encoding { return p.enc }

// Base returns the pool's virtual base address.
func (p *Pool) Base() uint64 { return p.base }

// Device returns the underlying pmem device.
func (p *Pool) Device() *pmem.Pool { return p.dev }

// OidPersistedSize returns the persisted footprint of an oid in this
// pool: 24 bytes with SPP, 16 without. Persistent data structures must
// lay out embedded oids with this stride (the type system accounting
// for sizeof(PMEMoid) in §IV-F).
func (p *Pool) OidPersistedSize() uint64 { return p.oidSize }

// Direct is pmemobj_direct: it converts an oid into a native pointer.
// In SPP mode the pointer is tagged with the negated object size; in
// native mode it is the plain virtual address. A null or foreign oid
// yields 0.
func (p *Pool) Direct(oid Oid) uint64 {
	if oid.Off == 0 || oid.Pool != p.uuid {
		return 0
	}
	addr := p.base + oid.Off
	if !p.spp {
		return addr
	}
	return p.enc.MakeTagged(addr, oid.Size)
}

// OffsetOf translates a virtual address (already tag-cleaned) into a
// pool offset.
func (p *Pool) OffsetOf(addr uint64) (uint64, error) {
	if addr < p.base || addr-p.base >= p.dev.Size() {
		return 0, ErrNotInPool
	}
	return addr - p.base, nil
}

// PersistRange flushes [addr, addr+size) of pool memory, addr being a
// cleaned virtual address. It is pmemobj_persist for application data.
func (p *Pool) PersistRange(addr, size uint64) error {
	off, err := p.OffsetOf(addr)
	if err != nil {
		return err
	}
	p.dev.Persist(off, size)
	return nil
}

// PackOff encodes an (offset, size) pair into one offset word for the
// packed layout: size in the top tagBits, offset in the low addrBits —
// the same split as the pointer encoding.
func (p *Pool) PackOff(off, size uint64) uint64 {
	return size<<p.enc.AddrBits() | off
}

// UnpackOff splits a packed offset word.
func (p *Pool) UnpackOff(word uint64) (off, size uint64) {
	return word & (1<<p.enc.AddrBits() - 1), word >> p.enc.AddrBits()
}

// ReadOid reads a persisted oid at pool offset off, honouring the
// pool's persisted oid layout.
func (p *Pool) ReadOid(off uint64) Oid {
	oid := Oid{
		Pool: p.dev.ReadU64(off + oidPoolField),
		Off:  p.dev.ReadU64(off + oidOffField),
	}
	if p.packed {
		oid.Off, oid.Size = p.UnpackOff(oid.Off)
	} else if p.spp {
		oid.Size = p.dev.ReadU64(off + oidSizeField)
	}
	return oid
}

// WriteOid stores a persisted oid at pool offset off and persists it.
// In the classic SPP layout the size field is written before the
// offset so that a readable offset always implies a valid size; in the
// packed layout one 8-byte store publishes both atomically.
func (p *Pool) WriteOid(off uint64, oid Oid) {
	if p.packed {
		p.dev.WriteU64(off+oidPoolField, oid.Pool)
		p.dev.WriteU64(off+oidOffField, p.PackOff(oid.Off, oid.Size))
		p.dev.Persist(off, p.oidSize)
		return
	}
	if p.spp {
		p.dev.WriteU64(off+oidSizeField, oid.Size)
	}
	p.dev.WriteU64(off+oidPoolField, oid.Pool)
	p.dev.WriteU64(off+oidOffField, oid.Off)
	p.dev.Persist(off, p.oidSize)
}

// Root returns the root object oid, allocating it on first use
// (pmemobj_root). A larger requested size grows the root via realloc;
// requesting a smaller or equal size returns the existing root.
func (p *Pool) Root(size uint64) (Oid, error) {
	p.rootMu.Lock()
	defer p.rootMu.Unlock()
	cur := p.ReadOid(hRoot)
	curSize := p.dev.ReadU64(hRootSize)
	if !cur.IsNull() {
		if size <= curSize {
			if !p.spp {
				cur.Size = curSize
			}
			return cur, nil
		}
		if err := p.ReallocAt(hRoot, size); err != nil {
			return OidNull, err
		}
	} else {
		if err := p.AllocAt(hRoot, size); err != nil {
			return OidNull, err
		}
	}
	p.dev.WriteU64(hRootSize, size)
	p.dev.Persist(hRootSize, 8)
	out := p.ReadOid(hRoot)
	if !p.spp {
		out.Size = size
	}
	return out, nil
}

// UserSlot returns the reserved sanitizer-metadata oid (used by the
// SafePM baseline to find its persisted shadow region).
func (p *Pool) UserSlot() Oid { return p.ReadOid(hUserSlot) }

// SetUserSlot stores the sanitizer-metadata oid.
func (p *Pool) SetUserSlot(oid Oid) { p.WriteOid(hUserSlot, oid) }

// validateOid checks that oid refers to a live allocation and returns
// its block offset.
func (p *Pool) validateOid(oid Oid) (uint64, error) {
	if oid.IsNull() || oid.Pool != p.uuid {
		return 0, fmt.Errorf("%w: %v", ErrBadOid, oid)
	}
	if oid.Off < p.heapOff+blockHdrSize || oid.Off >= p.heapEnd {
		return 0, fmt.Errorf("%w: %v outside heap", ErrBadOid, oid)
	}
	blk := oid.Off - blockHdrSize
	state := p.dev.ReadU64(blk + 8)
	if state != blockAllocated && state != blockUncommitted {
		return 0, fmt.Errorf("%w: %v not allocated (state %d)", ErrBadOid, oid, state)
	}
	return blk, nil
}

// ForEachAllocated walks the heap and calls fn with the payload offset
// and payload size of every live allocation. Sanitizer baselines use
// it to rebuild their volatile or shadow metadata after a restart. The
// walk holds every arena lock; blocks with an in-flight publication
// are skipped (their state is not yet settled).
func (p *Pool) ForEachAllocated(fn func(payloadOff, payloadSize uint64) error) error {
	p.heap.lockAll()
	defer p.heap.unlockAll()
	return p.heap.walkLocked(p, func(off, size, state uint64, inFlux bool) error {
		if state == blockAllocated && !inFlux {
			return fn(off+blockHdrSize, size-blockHdrSize)
		}
		return nil
	})
}

// errStopWalk is a sentinel that ends a heap walk early with success.
var errStopWalk = errors.New("pmemobj: stop walk")

// ObjectAt resolves the live allocation enclosing pool offset off —
// or, for a one-past-the-end overflow, the allocation ending exactly
// at off. It feeds the safety-violation audit trail, so it runs only
// on the (rare) violation path; the whole-heap walk under all arena
// locks is acceptable there.
func (p *Pool) ObjectAt(off uint64) (payloadOff, payloadSize uint64, ok bool) {
	if off < p.heapOff || off > p.heapEnd {
		return 0, 0, false
	}
	p.heap.lockAll()
	defer p.heap.unlockAll()
	err := p.heap.walkLocked(p, func(blk, size, state uint64, inFlux bool) error {
		if state != blockAllocated {
			return nil
		}
		pOff := blk + blockHdrSize
		if off >= pOff && off <= blk+size {
			payloadOff, payloadSize, ok = pOff, size-blockHdrSize, true
			return errStopWalk
		}
		return nil
	})
	if err != nil && !errors.Is(err, errStopWalk) {
		return 0, 0, false
	}
	return payloadOff, payloadSize, ok
}

// HeapBounds returns the heap's [start, end) offsets within the pool.
func (p *Pool) HeapBounds() (start, end uint64) { return p.heapOff, p.heapEnd }

// Stats reports allocator occupancy, for the space-overhead experiment
// (Table III).
type Stats struct {
	// HeapBytes is the total heap capacity.
	HeapBytes uint64
	// AllocatedBytes is the sum of live block sizes, headers included.
	AllocatedBytes uint64
	// AllocatedObjects is the number of live allocations.
	AllocatedObjects uint64
	// FreeBytes is the remaining heap capacity.
	FreeBytes uint64
}

// Stats returns current allocator occupancy. The counters are
// maintained atomically, so this never blocks the allocation path.
func (p *Pool) Stats() Stats {
	used := p.heap.usedBytes.Load()
	return Stats{
		HeapBytes:        p.heapEnd - p.heapOff,
		AllocatedBytes:   used,
		AllocatedObjects: p.heap.usedBlocks.Load(),
		FreeBytes:        p.heapEnd - p.heapOff - used,
	}
}

// NArenas returns the number of allocator arenas the heap is running
// with (after clamping to the heap size).
func (p *Pool) NArenas() int { return p.nArenas }

// LaneAffinity reports whether the worker-affine lane cache is active.
func (p *Pool) LaneAffinity() bool { return p.laneAffinity }

// MVCC reports whether kvstore snapshot isolation is active for stores
// opened over this pool.
func (p *Pool) MVCC() bool { return p.mvcc }

// RangeDedup reports whether AddRange interval dedup is active.
func (p *Pool) RangeDedup() bool { return p.rangeDedup }

// FlushCoalesce reports whether commit-path flush coalescing is active.
func (p *Pool) FlushCoalesce() bool { return p.flushCoalesce }

// GroupFence reports whether commit fences go through the device's
// group combiner.
func (p *Pool) GroupFence() bool { return p.groupFence }
