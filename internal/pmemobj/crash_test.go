package pmemobj

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// crashAfterFences is a trace sink that injects a power loss (panic,
// recovered by the caller) after a chosen number of fences.
type crashAfterFences struct {
	remaining int
	crashed   bool
}

func (c *crashAfterFences) RecordStore(off uint64, data []byte) {}
func (c *crashAfterFences) RecordFlush(off, size uint64)        {}
func (c *crashAfterFences) RecordFence() {
	c.remaining--
	if c.remaining == 0 {
		c.crashed = true
		panic("injected power loss")
	}
}

// TestTxAtomicityUnderRandomCrashes drives random transactions — each
// updating a generation counter and a data cell together — and crashes
// at a random fence. After recovery, counter and cell must always
// agree: either both from the last committed transaction or both from
// an earlier one, never mixed.
func TestTxAtomicityUnderRandomCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		dev := pmem.NewPool("atomicity", 1<<23)
		p, err := Create(dev, nil, testBase, Config{SPP: true, UUID: 7})
		if err != nil {
			t.Fatal(err)
		}
		root, err := p.Root(64)
		if err != nil {
			t.Fatal(err)
		}
		// Layout: [gen u64][cell u64].
		dev.Persist(root.Off, 16)

		committed := uint64(0)
		runTx := func(gen uint64) error {
			tx := p.Begin()
			if err := tx.AddRange(root.Off, 16); err != nil {
				return err
			}
			dev.WriteU64(root.Off, gen)
			dev.WriteU64(root.Off+8, gen*1000)
			if err := tx.Commit(); err != nil {
				return err
			}
			committed = gen
			return nil
		}
		// A few committed transactions before tracking starts.
		for g := uint64(1); g <= 3; g++ {
			if err := runTx(g); err != nil {
				t.Fatal(err)
			}
		}

		sink := &crashAfterFences{remaining: rng.Intn(30) + 1}
		dev.EnableTracking(sink)
		func() {
			defer func() { _ = recover() }()
			for g := uint64(4); g <= 10; g++ {
				if err := runTx(g); err != nil {
					t.Errorf("trial %d: tx: %v", trial, err)
					return
				}
			}
		}()
		if sink.crashed {
			if err := dev.Crash(); err != nil {
				t.Fatal(err)
			}
		}
		dev.DisableTracking()

		q, err := Open(dev, nil, testBase)
		if err != nil {
			t.Fatalf("trial %d: recovery: %v", trial, err)
		}
		r, err := q.Root(64)
		if err != nil {
			t.Fatal(err)
		}
		gen := dev.ReadU64(r.Off)
		cell := dev.ReadU64(r.Off + 8)
		if cell != gen*1000 {
			t.Fatalf("trial %d: torn state after crash: gen=%d cell=%d", trial, gen, cell)
		}
		if sink.crashed {
			// The recovered generation can be at most one behind the
			// last commit that returned, and never ahead of the last
			// attempted one.
			if gen > 10 || (committed > 0 && gen+1 < committed) {
				t.Fatalf("trial %d: impossible generation %d (committed through %d)", trial, gen, committed)
			}
		} else if gen != 10 {
			t.Fatalf("trial %d: no crash but gen=%d", trial, gen)
		}
	}
}

// TestAllocatorConsistencyUnderRandomCrashes crashes random allocator
// operation sequences at random fences and checks that recovery always
// yields a walkable heap with no overlapping live blocks.
func TestAllocatorConsistencyUnderRandomCrashes(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 60; trial++ {
		dev := pmem.NewPool("alloc-crash", 1<<23)
		p, err := Create(dev, nil, testBase, Config{SPP: true})
		if err != nil {
			t.Fatal(err)
		}
		var live []Oid
		// Pre-populate.
		for i := 0; i < 8; i++ {
			oid, err := p.Alloc(uint64(rng.Intn(500) + 1))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, oid)
		}

		sink := &crashAfterFences{remaining: rng.Intn(40) + 1}
		dev.EnableTracking(sink)
		func() {
			defer func() { _ = recover() }()
			for i := 0; i < 20; i++ {
				switch rng.Intn(3) {
				case 0:
					if oid, err := p.Alloc(uint64(rng.Intn(500) + 1)); err == nil {
						live = append(live, oid)
					}
				case 1:
					if len(live) > 0 {
						i := rng.Intn(len(live))
						_ = p.Free(live[i])
						live = append(live[:i], live[i+1:]...)
					}
				case 2:
					if len(live) > 0 {
						i := rng.Intn(len(live))
						if oid, err := p.Realloc(live[i], uint64(rng.Intn(800)+1)); err == nil {
							live[i] = oid
						}
					}
				}
			}
		}()
		if sink.crashed {
			if err := dev.Crash(); err != nil {
				t.Fatal(err)
			}
		}
		dev.DisableTracking()

		q, err := Open(dev, nil, testBase)
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		if err := walkCheck(q); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Recovery must be repeatable.
		if _, err := Open(dev, nil, testBase); err != nil {
			t.Fatalf("trial %d: second recovery failed: %v", trial, err)
		}
	}
}

// walkCheck validates heap structure: blocks tile the heap exactly and
// no two live payloads overlap (guaranteed by tiling + state checks).
func walkCheck(p *Pool) error {
	var prevEnd uint64 = p.heapOff
	count := 0
	err := p.ForEachAllocated(func(off, size uint64) error {
		if off < prevEnd {
			return fmt.Errorf("allocation at %#x overlaps previous ending at %#x", off, prevEnd)
		}
		prevEnd = off + size
		count++
		return nil
	})
	if err != nil {
		return err
	}
	if prevEnd > p.heapEnd {
		return fmt.Errorf("allocations run past heap end")
	}
	return nil
}
