package pmemobj

import "math/bits"

// The bitmap allocator fast path (DESIGN.md §14). The map-based free
// lists (free/freeSet in arena) answer "smallest free block ≥ need" by
// iterating every distinct block size under the arena lock — O(#sizes)
// with map overhead on every alloc and free. The fast path replaces
// them for small blocks with gostore-style hierarchical free bitmaps:
//
//   - a size-class index: block sizes up to smallClassMax bucket into
//     one class per blockAlign step (class = size>>smallShift, exact
//     because every block size is blockAlign-aligned). A hierarchical
//     bitmap over the classes answers "smallest occupied class ≥ need"
//     in O(1) word operations;
//   - per-class LIFO stacks of block offsets, pushed and popped in
//     O(1);
//   - a flat per-arena slot bitmap (one bit per blockAlign of arena
//     span) recording which offsets hold a live free-listed block.
//     Membership tests — the free-at-time forward merge, stale-entry
//     validation — become a single bit test instead of a map lookup.
//
// Removal of an arbitrary block (the forward merge in planFree) only
// clears its slot bit; the stack entry goes stale and is discarded
// lazily the next time its class is popped. A popped entry is live iff
// its slot bit is set AND the persistent block header still carries the
// class's size — the header of every free-listed block equals its free
// size (releaseBlock, split remainders, redo publication and rebuild
// all persist the header before listing the block), so the pair
// (bit, header) disambiguates every reuse of an offset. Blocks larger
// than smallClassMax stay on the map-based lists; they are rare (class
// padding caps most requests well below smallClassMax) and excluded
// from the slot bitmap.

const (
	// smallShift is the class granularity: one class per blockAlign.
	smallShift = 4
	// smallClassMax is the largest block size served by the bitmap
	// pools; larger blocks use the map-based lists.
	smallClassMax = 2048
	// nSmallClasses indexes classes 0..smallClassMax>>smallShift.
	nSmallClasses = smallClassMax>>smallShift + 1
)

// fbits is a hierarchical bitmap: level 0 holds the bits, every higher
// level holds one summary bit per word below (set iff the word is
// non-zero), and the top level is a single word. Set, clear and
// next-set-bit all cost O(levels) word operations — effectively O(1)
// for any realistic size.
type fbits struct {
	n      int
	levels [][]uint64
}

func newFbits(n int) *fbits {
	if n < 1 {
		n = 1
	}
	f := &fbits{n: n}
	words := (n + 63) / 64
	for {
		f.levels = append(f.levels, make([]uint64, words))
		if words == 1 {
			return f
		}
		words = (words + 63) / 64
	}
}

func (f *fbits) set(i int) {
	for _, words := range f.levels {
		w := i >> 6
		words[w] |= 1 << uint(i&63)
		i = w
	}
}

func (f *fbits) clear(i int) {
	for _, words := range f.levels {
		w := i >> 6
		words[w] &^= 1 << uint(i&63)
		if words[w] != 0 {
			return // the summary bit above stays set
		}
		i = w
	}
}

func (f *fbits) test(i int) bool {
	return f.levels[0][i>>6]&(1<<uint(i&63)) != 0
}

// nextSet returns the smallest set bit ≥ i, or -1. It scans the word
// holding i at level 0, then climbs the summaries until a level has a
// set bit at or after the current position and descends back to the
// first bit it implies.
func (f *fbits) nextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= f.n {
		return -1
	}
	pos, lvl := i, 0
	for {
		words := f.levels[lvl]
		if w := pos >> 6; w < len(words) {
			if rem := words[w] >> uint(pos&63); rem != 0 {
				pos += bits.TrailingZeros64(rem)
				for lvl > 0 { // descend: pos is a non-zero word below
					lvl--
					pos = pos<<6 + bits.TrailingZeros64(f.levels[lvl][pos])
				}
				return pos
			}
			pos = w + 1
		} else {
			pos = len(words) // past the end: force the climb
		}
		lvl++
		if lvl >= len(f.levels) {
			return -1
		}
	}
}

// classPools is one arena's bitmap fast path: the class-occupancy
// index, the per-class offset stacks and the slot membership bitmap.
type classPools struct {
	occ    *fbits
	stacks [nSmallClasses][]uint64
	slots  []uint64 // bit per blockAlign of arena span: free block starts here
}

func newClassPools(span uint64) *classPools {
	return &classPools{
		occ:   newFbits(nSmallClasses),
		slots: make([]uint64, (span>>smallShift+63)/64),
	}
}

func (b *classPools) slotOf(lo, off uint64) uint64 { return (off - lo) >> smallShift }

func (b *classPools) testSlot(lo, off uint64) bool {
	s := b.slotOf(lo, off)
	return b.slots[s>>6]&(1<<(s&63)) != 0
}

func (b *classPools) setSlot(lo, off uint64) {
	s := b.slotOf(lo, off)
	b.slots[s>>6] |= 1 << (s & 63)
}

func (b *classPools) clearSlot(lo, off uint64) {
	s := b.slotOf(lo, off)
	b.slots[s>>6] &^= 1 << (s & 63)
}

// push lists a free block of the given (small) size.
func (b *classPools) push(lo, off, size uint64) {
	c := int(size >> smallShift)
	b.stacks[c] = append(b.stacks[c], off)
	b.occ.set(c)
	b.setSlot(lo, off)
}

// take delists the block at off if it is live, reporting whether it
// was. Only the slot bit is cleared; the stack entry goes stale and is
// skipped when popped.
func (b *classPools) take(lo, off uint64) bool {
	if !b.testSlot(lo, off) {
		return false
	}
	b.clearSlot(lo, off)
	return true
}

// pickSmall pops the best-fitting live block for a request of need
// bytes: the lowest occupied class ≥ need's class, skipping (and
// discarding) stale entries. The returned block is removed from its
// stack but keeps its slot bit — the caller's removeFree settles it.
func (b *classPools) pickSmall(p *Pool, lo, need uint64) (off, size uint64, ok bool) {
	for c := b.occ.nextSet(int(need >> smallShift)); c >= 0; c = b.occ.nextSet(c + 1) {
		want := uint64(c) << smallShift
		st := b.stacks[c]
		for len(st) > 0 {
			e := st[len(st)-1]
			st = st[:len(st)-1]
			if b.testSlot(lo, e) && p.dev.ReadU64(e) == want {
				b.stacks[c] = st
				if len(st) == 0 {
					b.occ.clear(c)
				}
				return e, want, true
			}
		}
		b.stacks[c] = st
		b.occ.clear(c)
	}
	return 0, 0, false
}

// reset clears every class stack, the occupancy index and the slot
// bitmap for repopulation.
func (b *classPools) reset() {
	for c := range b.stacks {
		b.stacks[c] = b.stacks[c][:0]
	}
	for c := b.occ.nextSet(0); c >= 0; c = b.occ.nextSet(c + 1) {
		b.occ.clear(c)
	}
	for i := range b.slots {
		b.slots[i] = 0
	}
}
