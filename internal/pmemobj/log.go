package pmemobj

import "fmt"

// redoEntry is one 8-byte redo-log write: pool[off] = val.
type redoEntry struct {
	off, val uint64
}

// prepareRedo writes entries into the lane's redo log — spilling into
// heap-allocated extension segments when they exceed the lane's
// capacity — and marks it committed, but does not apply it. Used by
// transaction commit, where the undo-log invalidation between prepare
// and apply is the commit point. A crash after prepare is resolved by
// recovery: the redo is applied if the lane's undo log is inactive and
// discarded otherwise; extension blocks are in the uncommitted state
// and are reclaimed by heap rebuild, which runs after lane recovery.
//
// The returned reservations must be released by the caller after
// apply.
func (p *Pool) prepareRedo(lane uint64, entries []redoEntry) ([]reservation, error) {
	metRedoEnts.Observe(uint64(len(entries)))
	s := p.getScratch()
	defer p.putScratch(s)
	inLane := len(entries)
	if inLane > p.redoCap {
		inLane = p.redoCap
	}
	words := s.words[:0]
	for _, e := range entries[:inLane] {
		words = append(words, e.off, e.val)
	}
	p.dev.WriteU64s(lane+laneRedoBase, words)
	s.ac.Flush(lane+laneRedoBase, uint64(inLane)*16)

	var exts []reservation
	prevLink := lane + laneRedoExt
	p.dev.WriteU64(prevLink, 0)
	rest := entries[inLane:]
	for len(rest) > 0 {
		n := len(rest)
		if n > p.redoCap {
			n = p.redoCap
		}
		resv, err := p.heap.reserveAny(p, redoExtDataOff+uint64(n)*16)
		if err != nil {
			for _, r := range exts {
				p.heap.releaseBlock(p, r)
			}
			s.ac.Drain()
			s.words = words
			return nil, fmt.Errorf("redo log extension: %w", err)
		}
		p.dev.WriteU64(resv.blk, resv.size)
		p.dev.Persist(resv.blk, 8)
		p.dev.WriteU64(resv.blk+8, blockUncommitted)
		p.dev.Persist(resv.blk+8, 8)
		p.heap.unreserve(resv.blk)
		// Segment header and entries are contiguous: {next=0, count,
		// off/val pairs} lands in one bulk write and one flush range.
		payload := resv.payloadOff()
		words = append(words[:0], 0, uint64(n))
		for _, e := range rest[:n] {
			words = append(words, e.off, e.val)
		}
		p.dev.WriteU64s(payload+redoExtNextOff, words)
		s.ac.Flush(payload, redoExtDataOff+uint64(n)*16)
		p.dev.WriteU64(prevLink, payload)
		s.ac.Flush(prevLink, 8)
		prevLink = payload + redoExtNextOff
		exts = append(exts, resv)
		rest = rest[n:]
	}

	p.dev.WriteU64(lane+laneRedoCount, uint64(len(entries)))
	s.ac.Flush(lane+laneRedoCount, 8)
	s.ac.Flush(lane+laneRedoExt, 8)
	s.ac.Drain()
	p.fence()
	// The committed flag is a single 8-byte store: the atomicity point.
	p.dev.WriteU64(lane+laneRedoState, redoCommitted)
	p.persist(lane+laneRedoState, 8)
	s.words = words
	return exts, nil
}

// applyRedo replays a committed redo log in order and discards it.
// Replay is idempotent: recovery can re-run it after a crash at any
// point. Entry order guarantees SPP's invariant that the oid size
// field is written before the offset field that validates the oid.
func (p *Pool) applyRedo(lane uint64) {
	count := p.dev.ReadU64(lane + laneRedoCount)
	inLane := count
	if inLane > uint64(p.redoCap) {
		inLane = uint64(p.redoCap)
	}
	// Redo targets cluster heavily — a tx's {size, state} flips are 8
	// bytes apart — so the accumulator collapses most of the per-entry
	// flushes.
	s := p.getScratch()
	defer p.putScratch(s)
	apply := func(base, n uint64) {
		for i := uint64(0); i < n; i++ {
			off := p.dev.ReadU64(base + i*16)
			val := p.dev.ReadU64(base + i*16 + 8)
			p.dev.WriteU64(off, val)
			s.ac.Flush(off, 8)
		}
	}
	apply(lane+laneRedoBase, inLane)
	remaining := count - inLane
	for ext := p.dev.ReadU64(lane + laneRedoExt); ext != 0 && remaining > 0; {
		n := p.dev.ReadU64(ext + redoExtCountOff)
		if n > remaining {
			n = remaining
		}
		apply(ext+redoExtDataOff, n)
		remaining -= n
		ext = p.dev.ReadU64(ext + redoExtNextOff)
	}
	s.ac.Drain()
	p.fence()
	p.discardRedo(lane)
}

// publishRedo is prepare followed immediately by apply — the path for
// atomic (non-transactional) operations. The caller owns the lane;
// every block the entries touch must be in the arenas' reserved sets.
func (p *Pool) publishRedo(lane uint64, entries []redoEntry) error {
	exts, err := p.prepareRedo(lane, entries)
	if err != nil {
		return err
	}
	p.applyRedo(lane)
	p.releaseRedoExts(exts)
	return nil
}

// releaseRedoExts returns redo extension segments to the heap.
func (p *Pool) releaseRedoExts(exts []reservation) {
	for _, r := range exts {
		p.heap.releaseBlock(p, r)
	}
}

// discardRedo clears the lane's redo log.
func (p *Pool) discardRedo(lane uint64) {
	p.dev.WriteU64(lane+laneRedoState, redoEmpty)
	p.persist(lane+laneRedoState, 8)
}

// writeUndoEntry appends one snapshot entry to a segment whose data
// region starts at dataBase with the given used counter field. The
// entry becomes valid only once the used counter is advanced (a
// single 8-byte store), so a torn append is ignored by recovery.
// The two fences cannot be merged: the entry body must be durable
// before the used counter that validates it advances, or recovery
// parses a torn entry.
func (p *Pool) writeUndoEntry(dataBase, usedField, used, off, length uint64) {
	base := dataBase + used
	p.dev.WriteU64s(base, []uint64{off, length})
	p.dev.WriteBytes(base+16, p.dev.ReadBytes(off, length))
	p.dev.Flush(base, 16+align8(length))
	p.fence()
	p.dev.WriteU64(usedField, used+16+align8(length))
	p.persist(usedField, 8)
}

// parseUndoSegment collects the valid entries of one undo segment.
func (p *Pool) parseUndoSegment(dataBase, used uint64, entries []undoEntry) ([]undoEntry, error) {
	for cur := uint64(0); cur < used; {
		base := dataBase + cur
		off := p.dev.ReadU64(base)
		length := p.dev.ReadU64(base + 8)
		need := 16 + align8(length)
		if length == 0 || cur+need > used || off+length > p.dev.Size() || off+length < off {
			return nil, fmt.Errorf("%w: bad undo entry at %#x+%d", ErrCorruptPool, dataBase, cur)
		}
		entries = append(entries, undoEntry{off, length, base + 16})
		cur += need
	}
	return entries, nil
}

type undoEntry struct {
	off, length, data uint64
}

// rollbackUndo restores all valid undo entries — from the in-lane
// region and every extension segment — in reverse order, then
// deactivates the log. Extension blocks themselves are left to the
// caller (heap rebuild frees them during recovery, since they are in
// the uncommitted state).
func (p *Pool) rollbackUndo(undo uint64) error {
	used := p.dev.ReadU64(undo + undoUsedOff)
	if used > p.undoCap {
		return fmt.Errorf("%w: undo used %d > capacity %d", ErrCorruptPool, used, p.undoCap)
	}
	entries, err := p.parseUndoSegment(undo+undoDataOff, used, nil)
	if err != nil {
		return err
	}
	seen := 0
	for ext := p.dev.ReadU64(undo + undoExtOff); ext != 0; {
		if ext+extDataOff > p.dev.Size() || seen > 1<<20 {
			return fmt.Errorf("%w: bad undo extension chain at %#x", ErrCorruptPool, ext)
		}
		extUsed := p.dev.ReadU64(ext + extUsedOff)
		if ext+extDataOff+extUsed > p.dev.Size() {
			return fmt.Errorf("%w: undo extension at %#x overflows pool", ErrCorruptPool, ext)
		}
		entries, err = p.parseUndoSegment(ext+extDataOff, extUsed, entries)
		if err != nil {
			return err
		}
		ext = p.dev.ReadU64(ext + extNextOff)
		seen++
	}
	s := p.getScratch()
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		p.dev.WriteBytes(e.off, p.dev.ReadBytes(e.data, e.length))
		s.ac.Flush(e.off, e.length)
	}
	s.ac.Drain()
	p.putScratch(s)
	p.fence()
	p.dev.WriteU64s(undo+undoStateOff, []uint64{undoInactive, 0, 0})
	p.persist(undo, undoDataOff)
	return nil
}
