package pmemobj

import "fmt"

// redoEntry is one 8-byte redo-log write: pool[off] = val.
type redoEntry struct {
	off, val uint64
}

// prepareRedo writes entries into the lane's redo log — spilling into
// heap-allocated extension segments when they exceed the lane's
// capacity — and marks it committed, but does not apply it. Used by
// transaction commit, where the undo-log invalidation between prepare
// and apply is the commit point. A crash after prepare is resolved by
// recovery: the redo is applied if the lane's undo log is inactive and
// discarded otherwise; extension blocks are in the uncommitted state
// and are reclaimed by heap rebuild, which runs after lane recovery.
//
// The returned reservations must be released by the caller after
// apply.
func (p *Pool) prepareRedo(lane uint64, entries []redoEntry) ([]reservation, error) {
	metRedoEnts.Observe(uint64(len(entries)))
	inLane := len(entries)
	if inLane > p.redoCap {
		inLane = p.redoCap
	}
	for i, e := range entries[:inLane] {
		base := lane + laneRedoBase + uint64(i)*16
		p.dev.WriteU64(base, e.off)
		p.dev.WriteU64(base+8, e.val)
	}
	p.dev.Flush(lane+laneRedoBase, uint64(inLane)*16)

	var exts []reservation
	prevLink := lane + laneRedoExt
	p.dev.WriteU64(prevLink, 0)
	rest := entries[inLane:]
	for len(rest) > 0 {
		n := len(rest)
		if n > p.redoCap {
			n = p.redoCap
		}
		resv, err := p.heap.reserveAny(p, redoExtDataOff+uint64(n)*16)
		if err != nil {
			for _, r := range exts {
				p.heap.releaseBlock(p, r)
			}
			return nil, fmt.Errorf("redo log extension: %w", err)
		}
		p.dev.WriteU64(resv.blk, resv.size)
		p.dev.Persist(resv.blk, 8)
		p.dev.WriteU64(resv.blk+8, blockUncommitted)
		p.dev.Persist(resv.blk+8, 8)
		p.heap.unreserve(resv.blk)
		payload := resv.payloadOff()
		p.dev.WriteU64(payload+redoExtNextOff, 0)
		p.dev.WriteU64(payload+redoExtCountOff, uint64(n))
		for i, e := range rest[:n] {
			base := payload + redoExtDataOff + uint64(i)*16
			p.dev.WriteU64(base, e.off)
			p.dev.WriteU64(base+8, e.val)
		}
		p.dev.Flush(payload, redoExtDataOff+uint64(n)*16)
		p.dev.WriteU64(prevLink, payload)
		p.dev.Flush(prevLink, 8)
		prevLink = payload + redoExtNextOff
		exts = append(exts, resv)
		rest = rest[n:]
	}

	p.dev.WriteU64(lane+laneRedoCount, uint64(len(entries)))
	p.dev.Flush(lane+laneRedoCount, 8)
	p.dev.Flush(lane+laneRedoExt, 8)
	p.dev.Fence()
	// The committed flag is a single 8-byte store: the atomicity point.
	p.dev.WriteU64(lane+laneRedoState, redoCommitted)
	p.dev.Persist(lane+laneRedoState, 8)
	return exts, nil
}

// applyRedo replays a committed redo log in order and discards it.
// Replay is idempotent: recovery can re-run it after a crash at any
// point. Entry order guarantees SPP's invariant that the oid size
// field is written before the offset field that validates the oid.
func (p *Pool) applyRedo(lane uint64) {
	count := p.dev.ReadU64(lane + laneRedoCount)
	inLane := count
	if inLane > uint64(p.redoCap) {
		inLane = uint64(p.redoCap)
	}
	apply := func(base, n uint64) {
		for i := uint64(0); i < n; i++ {
			off := p.dev.ReadU64(base + i*16)
			val := p.dev.ReadU64(base + i*16 + 8)
			p.dev.WriteU64(off, val)
			p.dev.Flush(off, 8)
		}
	}
	apply(lane+laneRedoBase, inLane)
	remaining := count - inLane
	for ext := p.dev.ReadU64(lane + laneRedoExt); ext != 0 && remaining > 0; {
		n := p.dev.ReadU64(ext + redoExtCountOff)
		if n > remaining {
			n = remaining
		}
		apply(ext+redoExtDataOff, n)
		remaining -= n
		ext = p.dev.ReadU64(ext + redoExtNextOff)
	}
	p.dev.Fence()
	p.discardRedo(lane)
}

// publishRedo is prepare followed immediately by apply — the path for
// atomic (non-transactional) operations. The caller owns the lane;
// every block the entries touch must be in the arenas' reserved sets.
func (p *Pool) publishRedo(lane uint64, entries []redoEntry) error {
	exts, err := p.prepareRedo(lane, entries)
	if err != nil {
		return err
	}
	p.applyRedo(lane)
	p.releaseRedoExts(exts)
	return nil
}

// releaseRedoExts returns redo extension segments to the heap.
func (p *Pool) releaseRedoExts(exts []reservation) {
	for _, r := range exts {
		p.heap.releaseBlock(p, r)
	}
}

// discardRedo clears the lane's redo log.
func (p *Pool) discardRedo(lane uint64) {
	p.dev.WriteU64(lane+laneRedoState, redoEmpty)
	p.dev.Persist(lane+laneRedoState, 8)
}

// writeUndoEntry appends one snapshot entry to a segment whose data
// region starts at dataBase with the given used counter field. The
// entry becomes valid only once the used counter is advanced (a
// single 8-byte store), so a torn append is ignored by recovery.
func (p *Pool) writeUndoEntry(dataBase, usedField, used, off, length uint64) {
	base := dataBase + used
	p.dev.WriteU64(base, off)
	p.dev.WriteU64(base+8, length)
	p.dev.WriteBytes(base+16, p.dev.ReadBytes(off, length))
	p.dev.Flush(base, 16+align8(length))
	p.dev.Fence()
	p.dev.WriteU64(usedField, used+16+align8(length))
	p.dev.Persist(usedField, 8)
}

// parseUndoSegment collects the valid entries of one undo segment.
func (p *Pool) parseUndoSegment(dataBase, used uint64, entries []undoEntry) ([]undoEntry, error) {
	for cur := uint64(0); cur < used; {
		base := dataBase + cur
		off := p.dev.ReadU64(base)
		length := p.dev.ReadU64(base + 8)
		need := 16 + align8(length)
		if length == 0 || cur+need > used || off+length > p.dev.Size() || off+length < off {
			return nil, fmt.Errorf("%w: bad undo entry at %#x+%d", ErrCorruptPool, dataBase, cur)
		}
		entries = append(entries, undoEntry{off, length, base + 16})
		cur += need
	}
	return entries, nil
}

type undoEntry struct {
	off, length, data uint64
}

// rollbackUndo restores all valid undo entries — from the in-lane
// region and every extension segment — in reverse order, then
// deactivates the log. Extension blocks themselves are left to the
// caller (heap rebuild frees them during recovery, since they are in
// the uncommitted state).
func (p *Pool) rollbackUndo(undo uint64) error {
	used := p.dev.ReadU64(undo + undoUsedOff)
	if used > p.undoCap {
		return fmt.Errorf("%w: undo used %d > capacity %d", ErrCorruptPool, used, p.undoCap)
	}
	entries, err := p.parseUndoSegment(undo+undoDataOff, used, nil)
	if err != nil {
		return err
	}
	seen := 0
	for ext := p.dev.ReadU64(undo + undoExtOff); ext != 0; {
		if ext+extDataOff > p.dev.Size() || seen > 1<<20 {
			return fmt.Errorf("%w: bad undo extension chain at %#x", ErrCorruptPool, ext)
		}
		extUsed := p.dev.ReadU64(ext + extUsedOff)
		if ext+extDataOff+extUsed > p.dev.Size() {
			return fmt.Errorf("%w: undo extension at %#x overflows pool", ErrCorruptPool, ext)
		}
		entries, err = p.parseUndoSegment(ext+extDataOff, extUsed, entries)
		if err != nil {
			return err
		}
		ext = p.dev.ReadU64(ext + extNextOff)
		seen++
	}
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		p.dev.WriteBytes(e.off, p.dev.ReadBytes(e.data, e.length))
		p.dev.Flush(e.off, e.length)
	}
	p.dev.Fence()
	p.dev.WriteU64(undo+undoUsedOff, 0)
	p.dev.WriteU64(undo+undoExtOff, 0)
	p.dev.WriteU64(undo+undoStateOff, undoInactive)
	p.dev.Persist(undo, undoDataOff)
	return nil
}
