// Package pmemobj is a from-scratch persistent object store modeled on
// PMDK's libpmemobj, with the SPP extensions of §IV-B of the paper.
//
// A pool is a pmem.Pool mapped into a simulated address space. It
// contains a header, a set of lanes (each with a redo log for atomic
// operations and an undo log for transactions) and a persistent heap.
// Objects are addressed by PMEMoids; in SPP mode the persisted oid
// carries the extra 8-byte size field and Direct returns tagged
// pointers built by the SPP encoding.
//
// Crash consistency follows PMDK's protocol: atomic operations publish
// their effects through a committed redo log (the SPP size field is
// written to the log before the offset, so a valid offset implies a
// valid size); transactions snapshot pre-images into an undo log whose
// single-word invalidation is the commit point.
package pmemobj

import "fmt"

// Oid is the in-memory persistent pointer (PMEMoid). In SPP mode all
// three fields are persisted (24 bytes); in native-PMDK mode only Pool
// and Off are (16 bytes) and Size is zero when read back.
type Oid struct {
	// Pool is the low half of the pool UUID, identifying the pool the
	// object lives in.
	Pool uint64
	// Off is the object's offset from the beginning of the pool.
	Off uint64
	// Size is the SPP extension: the allocated object size, used to
	// construct the pointer tag (§IV-B).
	Size uint64
}

// OidNull is the invalid object ID.
var OidNull = Oid{}

// IsNull reports whether the oid addresses no object.
func (o Oid) IsNull() bool { return o.Off == 0 }

func (o Oid) String() string {
	return fmt.Sprintf("oid{pool=%#x off=%#x size=%d}", o.Pool, o.Off, o.Size)
}

// Persisted oid field offsets relative to an oid location in the pool.
const (
	oidPoolField = 0
	oidOffField  = 8
	oidSizeField = 16

	// OidSizePMDK is the persisted footprint of a native PMDK oid.
	OidSizePMDK = 16
	// OidSizeSPP is the persisted footprint of an SPP oid.
	OidSizeSPP = 24
)
