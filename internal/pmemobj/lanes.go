package pmemobj

import (
	"sync"
	"sync/atomic"
)

// laneQueue dispenses the pool's lanes. The classic path is a buffered
// channel — a fair FIFO semaphore — but every acquire/release pair
// round-trips a single channel and its lock, which serializes
// independent workers doing atomic ops. With affinity enabled, each
// worker holds a hint to a per-slot atomic lane cache: release parks
// the lane in the worker's slot with one CAS, and the next acquire by
// the same worker takes it back with one swap — no shared state
// touched at all on the repeat path. Under oversubscription (more
// workers than lanes, or a worker migrating between slots) acquire
// falls back to scanning all slots and finally to the channel.
//
// Lane ownership lives in exactly one of three places at any time: the
// channel, a slot, or a holder. Hints themselves carry only a slot
// index and are recycled through a sync.Pool — the GC dropping one
// never strands a lane.
//
// The handoff race — a releaser parking a lane in a slot no one will
// look at while an acquirer commits to blocking on the channel — is
// closed by a waiters counter: acquirers advertise themselves before
// their final slot scan, and a releaser that parked a lane re-checks
// the counter afterwards, retaking and forwarding the lane to the
// channel if anyone might be scanning. Either the waiter's scan (which
// follows its counter increment) observes the parked lane, or the
// releaser's counter load (which follows its park) observes the
// waiter and forwards.
type laneQueue struct {
	ch       chan int
	slots    []atomic.Int64 // lane+1, or 0 when empty
	slotMask uint32
	waiters  atomic.Int32
	rotor    atomic.Uint32
	hints    sync.Pool // *laneHint
	affinity bool
}

type laneHint struct {
	slot uint32
}

func newLaneQueue(nLanes int, affinity bool) *laneQueue {
	q := &laneQueue{
		ch:       make(chan int, nLanes),
		affinity: affinity,
	}
	for i := 0; i < nLanes; i++ {
		q.ch <- i
	}
	nslots := 1
	for nslots < nLanes {
		nslots <<= 1
	}
	q.slots = make([]atomic.Int64, nslots)
	q.slotMask = uint32(nslots - 1)
	return q
}

func (q *laneQueue) getHint() *laneHint {
	if v := q.hints.Get(); v != nil {
		return v.(*laneHint)
	}
	return &laneHint{slot: (q.rotor.Add(1) - 1) & q.slotMask}
}

// acquire returns a lane index, blocking until one is available.
func (q *laneQueue) acquire() int {
	if q.affinity {
		hint := q.getHint()
		slot := hint.slot
		q.hints.Put(hint)
		if v := q.slots[slot].Swap(0); v != 0 {
			metLaneAffinity.Inc()
			return int(v - 1)
		}
	}
	select {
	case lane := <-q.ch:
		metLaneChannel.Inc()
		return lane
	default:
	}
	if q.affinity {
		// Slow path: advertise, then scan every slot once before
		// parking on the channel. The counter order pairs with
		// release's park-then-check.
		q.waiters.Add(1)
		defer q.waiters.Add(-1)
		for i := range q.slots {
			if v := q.slots[i].Swap(0); v != 0 {
				metLaneScan.Inc()
				return int(v - 1)
			}
		}
	}
	metLaneChannel.Inc()
	return <-q.ch
}

// release returns a lane, preferring the worker's affine slot.
func (q *laneQueue) release(lane int) {
	if q.affinity && q.waiters.Load() == 0 {
		hint := q.getHint()
		slot := hint.slot
		q.hints.Put(hint)
		if q.slots[slot].CompareAndSwap(0, int64(lane+1)) {
			metLanePark.Inc()
			if q.waiters.Load() > 0 {
				// A waiter may have finished scanning this slot before
				// the park landed; retake and forward via the channel.
				if v := q.slots[slot].Swap(0); v != 0 {
					metLaneForward.Inc()
					q.ch <- int(v - 1)
				}
			}
			return
		}
	}
	q.ch <- lane
}
