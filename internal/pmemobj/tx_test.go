package pmemobj

import (
	"errors"
	"sync"
	"testing"
)

func TestTxCommitMakesChangesDurable(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)

	tx := p.Begin()
	if err := tx.AddRange(root.Off, 16); err != nil {
		t.Fatal(err)
	}
	dev.WriteU64(root.Off, 0xaa)
	dev.WriteU64(root.Off+8, 0xbb)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	q := reopen(t, dev)
	r, _ := q.Root(64)
	if dev.ReadU64(r.Off) != 0xaa || dev.ReadU64(r.Off+8) != 0xbb {
		t.Error("committed stores lost after reopen")
	}
}

func TestTxAbortRollsBack(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	dev.WriteU64(root.Off, 0x11)
	dev.Persist(root.Off, 8)

	tx := p.Begin()
	if err := tx.AddRange(root.Off, 8); err != nil {
		t.Fatal(err)
	}
	dev.WriteU64(root.Off, 0x22)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := dev.ReadU64(root.Off); got != 0x11 {
		t.Errorf("after abort = %#x, want 0x11", got)
	}
}

func TestTxRollbackOrderIsLIFO(t *testing.T) {
	// Two snapshots of the same range: rollback must restore the
	// oldest pre-image (reverse application).
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	dev.WriteU64(root.Off, 1)
	dev.Persist(root.Off, 8)

	tx := p.Begin()
	_ = tx.AddRange(root.Off, 8)
	dev.WriteU64(root.Off, 2)
	_ = tx.AddRange(root.Off, 8) // snapshots value 2
	dev.WriteU64(root.Off, 3)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if got := dev.ReadU64(root.Off); got != 1 {
		t.Errorf("after abort = %d, want original 1", got)
	}
}

func TestTxDoneErrors(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	tx := p.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxDone) {
		t.Errorf("second Commit = %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrTxDone) {
		t.Errorf("Abort after Commit = %v", err)
	}
	if err := tx.AddRange(0, 8); !errors.Is(err, ErrTxDone) {
		t.Errorf("AddRange after Commit = %v", err)
	}
	if _, err := tx.Alloc(8); !errors.Is(err, ErrTxDone) {
		t.Errorf("Alloc after Commit = %v", err)
	}
}

func TestTxAddRangeValidation(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	tx := p.Begin()
	defer func() { _ = tx.Abort() }()
	if err := tx.AddRange(p.dev.Size()-4, 8); err == nil {
		t.Error("AddRange past pool end accepted")
	}
}

func TestTxAllocCommitted(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)

	tx := p.Begin()
	oid, err := tx.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AddOidRange(root.Off); err != nil {
		t.Fatal(err)
	}
	p.WriteOid(root.Off, oid)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	q := reopen(t, dev)
	got := q.ReadOid(root.Off)
	if got != oid {
		t.Errorf("oid after reopen = %v, want %v", got, oid)
	}
	if _, err := q.validateOid(got); err != nil {
		t.Errorf("tx-allocated object not live after reopen: %v", err)
	}
}

func TestTxAllocAbortReleasesBlock(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	before := p.Stats()
	tx := p.Begin()
	oid, err := tx.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.validateOid(oid); err == nil {
		t.Error("aborted tx alloc still live")
	}
	if got := p.Stats(); got.AllocatedBytes != before.AllocatedBytes {
		t.Errorf("stats leaked: %+v vs %+v", got, before)
	}
}

func TestTxAllocLostOnCrashBeforeCommit(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	tx := p.Begin()
	oid, err := tx.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	// Simulated power loss: reopen the device without ending the tx.
	q := reopen(t, dev)
	if _, err := q.validateOid(oid); err == nil {
		t.Error("uncommitted block still allocated after recovery")
	}
	if got := q.Stats(); got.AllocatedObjects != 0 {
		t.Errorf("recovered pool has %d objects, want 0", got.AllocatedObjects)
	}
}

func TestTxFreeDeferredToCommit(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.Free(oid); err != nil {
		t.Fatal(err)
	}
	// Before commit the object is still live.
	if _, err := p.validateOid(oid); err != nil {
		t.Errorf("object freed before commit: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.validateOid(oid); err == nil {
		t.Error("object live after committed tx free")
	}
}

func TestTxFreeSurvivesAbort(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	oid, _ := p.Alloc(64)
	tx := p.Begin()
	_ = tx.Free(oid)
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.validateOid(oid); err != nil {
		t.Errorf("object freed despite abort: %v", err)
	}
}

func TestTxFreeOwnAllocImmediate(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	before := p.Stats()
	tx := p.Begin()
	oid, _ := tx.Alloc(64)
	if err := tx.Free(oid); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := p.Stats(); got.AllocatedBytes != before.AllocatedBytes {
		t.Errorf("alloc+free in tx leaked: %+v", got)
	}
}

func TestTxRealloc(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	if err := p.AllocAt(root.Off, 16); err != nil {
		t.Fatal(err)
	}
	oid := p.ReadOid(root.Off)
	dev.WriteBytes(oid.Off, []byte("txdata"))
	dev.Persist(oid.Off, 6)

	tx := p.Begin()
	newOid, err := tx.Realloc(oid, 256)
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.AddOidRange(root.Off)
	p.WriteOid(root.Off, newOid)
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got := p.ReadOid(root.Off)
	if got.Size != 256 {
		t.Errorf("size = %d", got.Size)
	}
	if string(dev.ReadBytes(got.Off, 6)) != "txdata" {
		t.Error("payload lost in tx realloc")
	}
}

func TestTxReallocAbortKeepsOriginal(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	oid, _ := p.Alloc(16)
	dev.WriteBytes(oid.Off, []byte("orig"))
	dev.Persist(oid.Off, 4)

	tx := p.Begin()
	if _, err := tx.Realloc(oid, 256); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.validateOid(oid); err != nil {
		t.Errorf("original object gone after aborted realloc: %v", err)
	}
	if string(dev.ReadBytes(oid.Off, 4)) != "orig" {
		t.Error("original payload damaged")
	}
}

// TestCrashDuringTxRollsBackOnRecovery is the core §VI-E property: a
// transaction interrupted by power loss must leave no trace.
func TestCrashDuringTxRollsBackOnRecovery(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	dev.WriteU64(root.Off, 0x1111)
	dev.Persist(root.Off, 8)

	tx := p.Begin()
	_ = tx.AddRange(root.Off, 8)
	dev.WriteU64(root.Off, 0x2222)
	dev.Persist(root.Off, 8) // even persisted stores must roll back
	_, _ = tx.Alloc(512)

	q := reopen(t, dev) // crash + recovery
	r, _ := q.Root(64)
	if got := dev.ReadU64(r.Off); got != 0x1111 {
		t.Errorf("after crash recovery = %#x, want rollback to 0x1111", got)
	}
	if got := q.Stats(); got.AllocatedObjects != 1 { // the root only
		t.Errorf("recovered pool has %d objects, want 1 (root)", got.AllocatedObjects)
	}
}

// TestCrashWithPreparedRedoBeforeCommitPoint: the redo log is written
// and committed, but the undo log is still active — the tx had not
// reached its commit point, so recovery must discard the redo.
func TestCrashWithPreparedRedoBeforeCommitPoint(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	dev.WriteU64(root.Off, 7)
	dev.Persist(root.Off, 8)

	tx := p.Begin()
	_ = tx.AddRange(root.Off, 8)
	dev.WriteU64(root.Off, 8)
	// Hand-prepare a redo that would clobber the root if applied.
	if _, err := p.prepareRedo(tx.laneOff, []redoEntry{{root.Off, 0xdddd}}); err != nil {
		t.Fatal(err)
	}

	q := reopen(t, dev)
	r, _ := q.Root(64)
	if got := dev.ReadU64(r.Off); got != 7 {
		t.Errorf("after recovery = %#x, want 7 (redo discarded, undo rolled back)", got)
	}
}

// TestCrashAfterCommitPointAppliesRedo: the undo log is inactive and a
// committed redo log remains — recovery must complete it.
func TestCrashAfterCommitPointAppliesRedo(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	lane := p.laneOff(0)
	if _, err := p.prepareRedo(lane, []redoEntry{{root.Off, 0xcafe}}); err != nil {
		t.Fatal(err)
	}
	q := reopen(t, dev)
	r, _ := q.Root(64)
	if got := dev.ReadU64(r.Off); got != 0xcafe {
		t.Errorf("after recovery = %#x, want redo applied 0xcafe", got)
	}
	if dev.ReadU64(lane+laneRedoState) != redoEmpty {
		t.Error("redo log not cleared after recovery")
	}
}

func TestRecoveryIsIdempotent(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	_ = p.AllocAt(root.Off, 100)
	tx := p.Begin()
	_ = tx.AddRange(root.Off, 8)
	dev.WriteU64(root.Off, 0)

	q := reopen(t, dev)
	oid1 := q.ReadOid(root.Off)
	q2 := reopen(t, dev)
	oid2 := q2.ReadOid(root.Off)
	if oid1 != oid2 {
		t.Errorf("recovery not idempotent: %v vs %v", oid1, oid2)
	}
	if _, err := q2.validateOid(oid2); err != nil {
		t.Errorf("object invalid after double recovery: %v", err)
	}
}

// TestUndoLogGrowsWithExtensions: snapshots beyond the in-lane log
// capacity spill into heap-allocated extension segments (PMDK's log
// extensions) and still roll back correctly — including across a
// crash, where heap rebuild reclaims the extension blocks.
func TestUndoLogGrowsWithExtensions(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true, Geometry: Geometry{UndoBytes: 256}})
	root, _ := p.Root(64)
	oid, err := p.Alloc(64 << 10)
	if err != nil {
		t.Fatal(err)
	}
	p.WriteOid(root.Off, oid)
	for i := uint64(0); i < 64<<10; i += 8 {
		dev.WriteU64(oid.Off+i, i)
	}
	dev.Persist(oid.Off, 64<<10)

	// Abort path: many small snapshots plus one huge one.
	tx := p.Begin()
	for i := uint64(0); i < 64; i++ {
		if err := tx.AddRange(oid.Off+i*128, 64); err != nil {
			t.Fatalf("small AddRange %d: %v", i, err)
		}
	}
	if err := tx.AddRange(oid.Off, 64<<10); err != nil {
		t.Fatalf("huge AddRange: %v", err)
	}
	for i := uint64(0); i < 64<<10; i += 8 {
		dev.WriteU64(oid.Off+i, 0xdead)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64<<10; i += 8 {
		if got := dev.ReadU64(oid.Off + i); got != i {
			t.Fatalf("rollback lost data at +%d: %#x", i, got)
		}
	}
	stats := p.Stats()
	if stats.AllocatedObjects != 2 { // root + object
		t.Errorf("extension blocks leaked: %d objects", stats.AllocatedObjects)
	}

	// Crash path: same snapshots, power loss instead of Abort.
	tx2 := p.Begin()
	if err := tx2.AddRange(oid.Off, 64<<10); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64<<10; i += 8 {
		dev.WriteU64(oid.Off+i, 0xbeef)
	}
	q := reopen(t, dev)
	r, _ := q.Root(64)
	oid2 := q.ReadOid(r.Off)
	for i := uint64(0); i < 64<<10; i += 8 {
		if got := dev.ReadU64(oid2.Off + i); got != i {
			t.Fatalf("crash rollback lost data at +%d: %#x", i, got)
		}
	}
	if got := q.Stats(); got.AllocatedObjects != 2 {
		t.Errorf("extension blocks leaked across crash: %d objects", got.AllocatedObjects)
	}
}

func TestConcurrentTransactions(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true, Geometry: Geometry{NLanes: 8}})
	root, _ := p.Root(1024)
	const goroutines = 8
	const iters = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			slot := root.Off + uint64(g)*32
			for i := 0; i < iters; i++ {
				tx := p.Begin()
				if err := tx.AddRange(slot, 8); err != nil {
					t.Errorf("AddRange: %v", err)
					_ = tx.Abort()
					return
				}
				dev.WriteU64(slot, uint64(g)<<32|uint64(i))
				oid, err := tx.Alloc(64)
				if err != nil {
					t.Errorf("tx.Alloc: %v", err)
					_ = tx.Abort()
					return
				}
				if err := tx.Free(oid); err != nil {
					t.Errorf("tx.Free: %v", err)
					_ = tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("Commit: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for g := 0; g < goroutines; g++ {
		slot := root.Off + uint64(g)*32
		if got := dev.ReadU64(slot); got != uint64(g)<<32|uint64(iters-1) {
			t.Errorf("slot %d = %#x", g, got)
		}
	}
	if got := p.Stats(); got.AllocatedObjects != 1 { // root only
		t.Errorf("leaked objects: %d", got.AllocatedObjects)
	}
}

func TestConcurrentAtomicAllocFree(t *testing.T) {
	p, _ := newTestPool(t, Config{Geometry: Geometry{NLanes: 8}})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				oid, err := p.Alloc(uint64(16 + i%64))
				if err != nil {
					t.Errorf("Alloc: %v", err)
					return
				}
				if err := p.Free(oid); err != nil {
					t.Errorf("Free: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := p.Stats(); got.AllocatedObjects != 0 {
		t.Errorf("leaked %d objects", got.AllocatedObjects)
	}
}
