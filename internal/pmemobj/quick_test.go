package pmemobj

import (
	"math/rand"
	"testing"

	"repro/internal/pmem"
)

// TestRandomOpsMaintainInvariants drives the allocator with a random
// alloc/free/realloc sequence against an oracle and checks, at every
// step, that live objects never overlap and their payloads survive.
func TestRandomOpsMaintainInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p, dev := newTestPool(t, Config{SPP: true})

	type live struct {
		oid     Oid
		pattern byte
	}
	var objs []live

	fill := func(o live) {
		b := make([]byte, o.oid.Size)
		for i := range b {
			b[i] = o.pattern
		}
		dev.WriteBytes(o.oid.Off, b)
		dev.Persist(o.oid.Off, o.oid.Size)
	}
	check := func(o live) {
		b := dev.ReadBytes(o.oid.Off, o.oid.Size)
		for i, v := range b {
			if v != o.pattern {
				t.Fatalf("object %v corrupted at +%d: %#x != %#x", o.oid, i, v, o.pattern)
			}
		}
	}
	noOverlap := func() {
		type span struct{ lo, hi uint64 }
		var spans []span
		for _, o := range objs {
			lo := o.oid.Off - blockHdrSize
			hi := o.oid.Off + p.dev.ReadU64(o.oid.Off-blockHdrSize) - blockHdrSize
			for _, s := range spans {
				if lo < s.hi && s.lo < hi {
					t.Fatalf("blocks overlap: [%#x,%#x) vs [%#x,%#x)", lo, hi, s.lo, s.hi)
				}
			}
			spans = append(spans, span{lo, hi})
		}
	}

	for step := 0; step < 400; step++ {
		switch op := rng.Intn(10); {
		case op < 5 || len(objs) == 0: // alloc
			size := uint64(rng.Intn(2000) + 1)
			oid, err := p.Alloc(size)
			if err != nil {
				t.Fatalf("step %d: Alloc(%d): %v", step, size, err)
			}
			o := live{oid: oid, pattern: byte(step + 1)}
			fill(o)
			objs = append(objs, o)
		case op < 8: // free
			i := rng.Intn(len(objs))
			check(objs[i])
			if err := p.Free(objs[i].oid); err != nil {
				t.Fatalf("step %d: Free: %v", step, err)
			}
			objs = append(objs[:i], objs[i+1:]...)
		default: // realloc
			i := rng.Intn(len(objs))
			check(objs[i])
			size := uint64(rng.Intn(4000) + 1)
			newOid, err := p.Realloc(objs[i].oid, size)
			if err != nil {
				t.Fatalf("step %d: Realloc: %v", step, err)
			}
			objs[i].oid = newOid
			fill(objs[i]) // rewrite with the same pattern at new size
		}
		noOverlap()
	}
	for _, o := range objs {
		check(o)
	}
	if got := p.Stats(); got.AllocatedObjects != uint64(len(objs)) {
		t.Errorf("stats report %d objects, oracle has %d", got.AllocatedObjects, len(objs))
	}

	// Everything must survive a reopen.
	q := reopen(t, dev)
	for _, o := range objs {
		if _, err := q.validateOid(o.oid); err != nil {
			t.Errorf("object %v lost across reopen: %v", o.oid, err)
		}
		check(o)
	}
}

// TestCrashAtEveryPersistencePoint exercises atomic allocation under
// power loss injected after each fence: whatever the crash point, the
// destination oid is either fully null or a fully valid allocation
// whose size field is correct.
func TestCrashAtEveryPersistencePoint(t *testing.T) {
	for crashAt := 1; crashAt < 40; crashAt++ {
		dev := pmemNew(t)
		p, err := Create(dev, nil, testBase, Config{SPP: true, UUID: 0xbeef})
		if err != nil {
			t.Fatal(err)
		}
		root, err := p.Root(64)
		if err != nil {
			t.Fatal(err)
		}

		// Track fences and crash after the crashAt-th one.
		sink := &fenceCounter{dev: dev, crashAt: crashAt}
		dev.EnableTracking(sink)
		func() {
			defer func() { _ = recover() }() // crash aborts the op
			_ = p.AllocAt(root.Off, 48)
		}()
		if !sink.crashed {
			// Operation completed before the crash point: done.
			dev.DisableTracking()
			q := reopen(t, dev)
			oid := q.ReadOid(root.Off)
			if oid.IsNull() || oid.Size != 48 {
				t.Fatalf("crashAt=%d: completed alloc lost: %v", crashAt, oid)
			}
			return
		}
		if err := dev.Crash(); err != nil {
			t.Fatal(err)
		}
		dev.DisableTracking()
		q, err := Open(dev, nil, testBase)
		if err != nil {
			t.Fatalf("crashAt=%d: recovery failed: %v", crashAt, err)
		}
		oid := q.ReadOid(root.Off)
		if !oid.IsNull() {
			// Published: must be complete and valid.
			if oid.Size != 48 || oid.Pool != 0xbeef {
				t.Fatalf("crashAt=%d: torn oid %v", crashAt, oid)
			}
			if _, err := q.validateOid(oid); err != nil {
				t.Fatalf("crashAt=%d: published oid invalid: %v", crashAt, err)
			}
		} else if oid.Size != 0 {
			// SPP invariant: a null offset must never leave a stale
			// size behind that a later publication could expose.
			t.Fatalf("crashAt=%d: null oid with size %d", crashAt, oid.Size)
		}
		// The heap must stay walkable either way.
		if _, err := Open(dev, nil, testBase); err != nil {
			t.Fatalf("crashAt=%d: second recovery failed: %v", crashAt, err)
		}
	}
}

type fenceCounter struct {
	dev     interface{ Crash() error }
	fences  int
	crashAt int
	crashed bool
}

func (f *fenceCounter) RecordStore(off uint64, data []byte) {}
func (f *fenceCounter) RecordFlush(off, size uint64)        {}
func (f *fenceCounter) RecordFence() {
	f.fences++
	if f.fences == f.crashAt {
		f.crashed = true
		panic("injected crash")
	}
}

func pmemNew(t *testing.T) *pmem.Pool {
	t.Helper()
	return pmem.NewPool("crash", 1<<23)
}
