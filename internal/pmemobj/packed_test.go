package pmemobj

import (
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/pmem"
)

func newPackedPool(t *testing.T) (*Pool, *pmem.Pool) {
	t.Helper()
	dev := pmem.NewPool("packed", 1<<23)
	p, err := Create(dev, nil, testBase, Config{PackedOid: true, UUID: 0xfeed})
	if err != nil {
		t.Fatal(err)
	}
	return p, dev
}

func TestPackedImpliesSPP(t *testing.T) {
	p, dev := newPackedPool(t)
	if !p.SPP() || !p.PackedOid() {
		t.Fatalf("SPP=%v Packed=%v", p.SPP(), p.PackedOid())
	}
	if p.OidPersistedSize() != OidSizePMDK {
		t.Errorf("packed oid footprint = %d, want 16", p.OidPersistedSize())
	}
	q := reopen(t, dev)
	if !q.PackedOid() || q.OidPersistedSize() != OidSizePMDK {
		t.Error("packed flag lost across reopen")
	}
}

func TestPackedQuickRoundTrip(t *testing.T) {
	p, _ := newPackedPool(t)
	enc := p.Encoding()
	f := func(offRaw, sizeRaw uint32) bool {
		off := uint64(offRaw) % enc.MaxPoolEnd()
		size := uint64(sizeRaw) % enc.MaxObjectSize()
		word := p.PackOff(off, size)
		gotOff, gotSize := p.UnpackOff(word)
		return gotOff == off && gotSize == size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPackedOidPublication(t *testing.T) {
	p, dev := newPackedPool(t)
	root, err := p.Root(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AllocAt(root.Off, 4000); err != nil {
		t.Fatal(err)
	}
	oid := p.ReadOid(root.Off)
	if oid.Size != 4000 || oid.IsNull() {
		t.Fatalf("published packed oid = %v", oid)
	}
	// The persisted footprint really is 16 bytes: the word at +16 is
	// untouched.
	if v := dev.ReadU64(root.Off + oidSizeField); v != 0 {
		t.Errorf("third oid word written in packed mode: %#x", v)
	}
	// Direct produces a correctly tagged pointer.
	ptr := p.Direct(oid)
	if !core.IsPM(ptr) {
		t.Error("untagged pointer")
	}
	enc := p.Encoding()
	if core.Overflow(enc.Gep(ptr, 3999)) {
		t.Error("in-bounds overflowed")
	}
	if !core.Overflow(enc.Gep(ptr, 4000)) {
		t.Error("out-of-bounds did not overflow")
	}
	// Free clears the slot.
	if err := p.FreeAt(root.Off); err != nil {
		t.Fatal(err)
	}
	if got := p.ReadOid(root.Off); !got.IsNull() || got.Size != 0 {
		t.Errorf("after FreeAt = %v", got)
	}
}

func TestPackedSurvivesCrashRecovery(t *testing.T) {
	p, dev := newPackedPool(t)
	root, _ := p.Root(64)
	if err := p.AllocAt(root.Off, 128); err != nil {
		t.Fatal(err)
	}
	tx := p.Begin()
	if err := tx.AddOidRange(root.Off); err != nil {
		t.Fatal(err)
	}
	p.WriteOid(root.Off, OidNull) // clobber inside the tx, then crash
	q := reopen(t, dev)
	r, _ := q.Root(64)
	got := q.ReadOid(r.Off)
	if got.IsNull() || got.Size != 128 {
		t.Errorf("rollback lost packed oid: %v", got)
	}
}

// TestPackedSpaceEqualsPMDK is the future-work claim: rtree-style
// oid-dense structures cost no extra PM under the packed layout.
func TestPackedSpaceEqualsPMDK(t *testing.T) {
	usage := func(cfg Config) uint64 {
		dev := pmem.NewPool("x", 1<<23)
		p, err := Create(dev, nil, testBase, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// 16 nodes of 256 embedded oids each, like the rtree.
		for i := 0; i < 16; i++ {
			if _, err := p.Alloc(32 + 256*p.OidPersistedSize()); err != nil {
				t.Fatal(err)
			}
		}
		return p.Stats().AllocatedBytes
	}
	pmdk := usage(Config{})
	classic := usage(Config{SPP: true})
	packed := usage(Config{PackedOid: true})
	if packed != pmdk {
		t.Errorf("packed usage %d != pmdk %d", packed, pmdk)
	}
	if classic <= pmdk {
		t.Errorf("classic SPP usage %d not larger than pmdk %d", classic, pmdk)
	}
}
