package pmemobj

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/pmem"
	"repro/internal/pmemcheck"
)

// knobConfig builds a Config for knob mask m: bit 0 disables range
// dedup, bit 1 flush coalescing, bit 2 group fencing. The UUID is
// pinned so images are comparable across runs.
func knobConfig(m int) Config {
	return Config{
		UUID: 7,
		Knobs: Knobs{
			NArenas:              1,
			DisableRangeDedup:    m&1 != 0,
			DisableFlushCoalesce: m&2 != 0,
			DisableGroupFence:    m&4 != 0,
		},
	}
}

// batchCrashStorm drives a deterministic mix of committed transactions
// exercising every leg of the batched pipeline: overlapping snapshots
// (dedup), multi-entry redo publication (allocs and frees), and a
// generation/cell pair whose agreement proves atomicity after a crash.
func batchCrashStorm(p *Pool, rootOff, dataOff uint64, txs int) error {
	dev := p.dev
	var live []Oid
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for g := uint64(1); g <= uint64(txs); g++ {
		tx := p.Begin()
		if err := tx.AddRange(rootOff, 16); err != nil {
			_ = tx.Abort()
			return err
		}
		for k := 0; k < 6; k++ {
			off := dataOff + (next()%24)*64
			if err := tx.AddRange(off, 96); err != nil {
				_ = tx.Abort()
				return err
			}
			dev.WriteU64(off, g<<32|uint64(k))
		}
		if g%2 == 1 {
			oid, err := tx.Alloc(64 + next()%128)
			if err != nil {
				_ = tx.Abort()
				return err
			}
			live = append(live, oid)
		} else if len(live) > 0 {
			if err := tx.Free(live[0]); err != nil {
				_ = tx.Abort()
				return err
			}
			live = live[1:]
		}
		dev.WriteU64(rootOff, g)
		dev.WriteU64(rootOff+8, g*1000)
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	return nil
}

// TestBatchedCommitCrashEquivalenceAllKnobs explores every crash point
// (every fence, pmreorder-style) of the storm under each of the eight
// knob combinations. Whatever the batching does to the flush/fence
// stream, recovery from any power-loss image must yield an agreeing
// generation/cell pair and a walkable heap.
func TestBatchedCommitCrashEquivalenceAllKnobs(t *testing.T) {
	for mask := 0; mask < 8; mask++ {
		mask := mask
		t.Run(fmt.Sprintf("mask=%d", mask), func(t *testing.T) {
			t.Parallel()
			cfg := knobConfig(mask)
			// Tight log geometry so the storm also crosses the redo- and
			// undo-extension paths.
			cfg.NLanes = 2
			cfg.RedoEntries = 4
			cfg.UndoBytes = 256
			dev := pmem.NewPool("batch-crash", 1<<20)
			p, err := Create(dev, nil, testBase, cfg)
			if err != nil {
				t.Fatal(err)
			}
			root, err := p.Root(16)
			if err != nil {
				t.Fatal(err)
			}
			dev.Persist(root.Off, 16)
			data, err := p.Alloc(2048)
			if err != nil {
				t.Fatal(err)
			}

			base := make([]byte, dev.Size())
			copy(base, dev.Data())
			tr := pmemcheck.NewTracker()
			dev.EnableTracking(tr)
			const txs = 6
			if err := batchCrashStorm(p, root.Off, data.Off, txs); err != nil {
				t.Fatal(err)
			}
			dev.DisableTracking()

			rep := pmemcheck.Analyze(tr.Events())
			if !rep.Clean() {
				t.Fatalf("protocol violations: %v", rep.Violations[0])
			}
			states, err := pmemcheck.Explore(base, tr.Events(),
				pmemcheck.ExploreOptions{EveryNthFence: 1, MaxSingles: 3, MaxStates: 2000},
				func(img []byte) error {
					d2 := pmem.NewPool("batch-crash-img", uint64(len(img)))
					copy(d2.Data(), img)
					q, err := OpenConfig(d2, nil, testBase, cfg)
					if err != nil {
						return err
					}
					gen := d2.ReadU64(root.Off)
					cell := d2.ReadU64(root.Off + 8)
					if cell != gen*1000 {
						return fmt.Errorf("torn root: gen=%d cell=%d", gen, cell)
					}
					if gen > txs {
						return fmt.Errorf("impossible generation %d", gen)
					}
					if err := walkCheck(q); err != nil {
						return err
					}
					// Recovery must be repeatable.
					if _, err := OpenConfig(d2, nil, testBase, cfg); err != nil {
						return fmt.Errorf("second recovery: %w", err)
					}
					return nil
				})
			if err != nil {
				t.Fatalf("crash exploration: %v", err)
			}
			if states == 0 {
				t.Fatal("explored no states")
			}
		})
	}
}

// TestBatchedCommitDurableImageMatchesUnbatched runs the same committed
// workload with the full pipeline and with every leg disabled, and
// requires byte-identical durable images over the header and heap —
// batching may reorder and merge flushes, but never change what ends up
// durable. Lane bytes are excluded: dedup legitimately writes fewer
// undo entries there.
func TestBatchedCommitDurableImageMatchesUnbatched(t *testing.T) {
	type result struct {
		img              []byte
		heapOff, heapEnd uint64
		rep              pmemcheck.Report
	}
	run := func(mask int) result {
		t.Helper()
		// Default log geometry: the workload must stay inside the lane
		// logs, since extension blocks would allocate heap differently
		// per knob setting.
		dev := pmem.NewPool("batch-img", 1<<22)
		p, err := Create(dev, nil, testBase, knobConfig(mask))
		if err != nil {
			t.Fatal(err)
		}
		root, err := p.Root(16)
		if err != nil {
			t.Fatal(err)
		}
		dev.Persist(root.Off, 16)
		data, err := p.Alloc(2048)
		if err != nil {
			t.Fatal(err)
		}
		tr := pmemcheck.NewTracker()
		dev.EnableTracking(tr)
		if err := batchCrashStorm(p, root.Off, data.Off, 8); err != nil {
			t.Fatal(err)
		}
		img, err := dev.DurableImage()
		if err != nil {
			t.Fatal(err)
		}
		dev.DisableTracking()
		return result{img, p.heapOff, p.heapEnd, pmemcheck.Analyze(tr.Events())}
	}
	batched, unbatched := run(0), run(7)
	if batched.heapOff != unbatched.heapOff || batched.heapEnd != unbatched.heapEnd {
		t.Fatalf("heap layout differs: [%#x,%#x) vs [%#x,%#x)",
			batched.heapOff, batched.heapEnd, unbatched.heapOff, unbatched.heapEnd)
	}
	regions := []struct {
		name   string
		lo, hi uint64
	}{
		{"header", 0, headerSize},
		{"heap", batched.heapOff, batched.heapEnd},
	}
	for _, r := range regions {
		a, b := batched.img[r.lo:r.hi], unbatched.img[r.lo:r.hi]
		if !bytes.Equal(a, b) {
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s region differs at offset %#x: batched %#x vs unbatched %#x",
						r.name, r.lo+uint64(i), a[i], b[i])
				}
			}
		}
	}
	// The batching must not add flush traffic: duplicate-line flushes
	// per fence epoch can only go down when coalescing is on.
	if batched.rep.DuplicateLineFlushes > unbatched.rep.DuplicateLineFlushes {
		t.Errorf("batched pipeline flushed more duplicate lines (%d) than unbatched (%d)",
			batched.rep.DuplicateLineFlushes, unbatched.rep.DuplicateLineFlushes)
	}
	if batched.rep.Fences > unbatched.rep.Fences {
		t.Errorf("batched pipeline fenced more (%d) than unbatched (%d)",
			batched.rep.Fences, unbatched.rep.Fences)
	}
}
