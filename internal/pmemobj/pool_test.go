package pmemobj

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/pmem"
	"repro/internal/vmem"
)

const testBase = 0x10000

func newTestPool(t *testing.T, cfg Config) (*Pool, *pmem.Pool) {
	t.Helper()
	dev := pmem.NewPool("test", 1<<23)
	if cfg.UUID == 0 {
		cfg.UUID = 0xdead
	}
	p, err := Create(dev, nil, testBase, cfg)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return p, dev
}

func reopen(t *testing.T, dev *pmem.Pool) *Pool {
	t.Helper()
	p, err := Open(dev, nil, testBase)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return p
}

func TestCreateAndReopen(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	if !p.SPP() {
		t.Error("SPP() = false")
	}
	if p.UUID() != 0xdead {
		t.Errorf("UUID = %#x", p.UUID())
	}
	if p.OidPersistedSize() != OidSizeSPP {
		t.Errorf("oid size = %d", p.OidPersistedSize())
	}
	q := reopen(t, dev)
	if q.UUID() != 0xdead || !q.SPP() || q.Encoding().TagBits() != core.DefaultTagBits {
		t.Error("reopened pool lost configuration")
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dev := pmem.NewPool("junk", 1<<20)
	if _, err := Open(dev, nil, testBase); !errors.Is(err, ErrCorruptPool) {
		t.Errorf("Open(unformatted) = %v, want ErrCorruptPool", err)
	}
	dev.WriteU64(hMagic, poolMagic)
	dev.WriteU64(hVersion, 99)
	if _, err := Open(dev, nil, testBase); !errors.Is(err, ErrCorruptPool) {
		t.Errorf("Open(bad version) = %v, want ErrCorruptPool", err)
	}
}

func TestCreateRejectsBadGeometry(t *testing.T) {
	dev := pmem.NewPool("tiny", 1<<12)
	if _, err := Create(dev, nil, testBase, Config{}); err == nil {
		t.Error("Create on tiny pool succeeded")
	}
	if _, err := Create(pmem.NewPool("x", 1<<22), nil, 0, Config{}); err == nil {
		t.Error("Create with zero base succeeded")
	}
	// SPP pool must fit under the tag-limited address space: with 46
	// tag bits only 16 address bits remain.
	_, err := Create(pmem.NewPool("x", 1<<20), nil, testBase, Config{SPP: true, TagBits: 46})
	if !errors.Is(err, ErrPoolMapsHigh) {
		t.Errorf("Create beyond address limit = %v, want ErrPoolMapsHigh", err)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	before := p.Stats()
	oid, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if oid.Size != 100 || oid.Pool != p.UUID() || oid.IsNull() {
		t.Errorf("oid = %v", oid)
	}
	mid := p.Stats()
	if mid.AllocatedObjects != before.AllocatedObjects+1 {
		t.Errorf("objects = %d", mid.AllocatedObjects)
	}
	// Payload is zeroed.
	for i := uint64(0); i < 100; i += 8 {
		if v := p.dev.ReadU64(oid.Off + i); v != 0 {
			t.Fatalf("payload not zeroed at +%d: %#x", i, v)
		}
	}
	if err := p.Free(oid); err != nil {
		t.Fatal(err)
	}
	after := p.Stats()
	if after.AllocatedBytes != before.AllocatedBytes || after.AllocatedObjects != before.AllocatedObjects {
		t.Errorf("stats not restored: %+v vs %+v", after, before)
	}
	if err := p.Free(oid); !errors.Is(err, ErrBadOid) {
		t.Errorf("double free = %v, want ErrBadOid", err)
	}
}

func TestAllocErrors(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true, TagBits: 8}) // max object 256 B
	if _, err := p.Alloc(0); !errors.Is(err, ErrZeroSizeAlloc) {
		t.Errorf("Alloc(0) = %v", err)
	}
	if _, err := p.Alloc(257); !errors.Is(err, ErrObjectTooBig) {
		t.Errorf("Alloc(max+1) = %v, want ErrObjectTooBig", err)
	}
	if _, err := p.Alloc(256); err != nil {
		t.Errorf("Alloc(max) = %v", err)
	}
}

func TestHeapExhaustionAndReuse(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	var oids []Oid
	for {
		oid, err := p.Alloc(1 << 16)
		if err != nil {
			if !errors.Is(err, ErrOutOfMemory) {
				t.Fatalf("unexpected error: %v", err)
			}
			break
		}
		oids = append(oids, oid)
	}
	if len(oids) < 16 {
		t.Fatalf("only %d allocations fit", len(oids))
	}
	for _, oid := range oids {
		if err := p.Free(oid); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything, one allocation of almost the whole
	// heap must succeed again (forward coalescing at free time plus
	// free-list reuse).
	big := (p.heapEnd - p.heapOff) * 3 / 4
	if _, err := p.Alloc(big); err != nil {
		t.Fatalf("big alloc after frees: %v (coalescing broken?)", err)
	}
}

func TestFreeRejectsForeignOid(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	tests := []Oid{
		{},
		{Pool: p.UUID() + 1, Off: p.heapOff + 16, Size: 8},
		{Pool: p.UUID(), Off: 8, Size: 8},
		{Pool: p.UUID(), Off: p.heapEnd + 100, Size: 8},
		{Pool: p.UUID(), Off: p.heapOff + 16 + 4096, Size: 8}, // inside free space
	}
	for _, oid := range tests {
		if err := p.Free(oid); !errors.Is(err, ErrBadOid) {
			t.Errorf("Free(%v) = %v, want ErrBadOid", oid, err)
		}
	}
}

func TestAllocAtPublishesOid(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	root, err := p.Root(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AllocAt(root.Off, 48); err != nil {
		t.Fatal(err)
	}
	oid := p.ReadOid(root.Off)
	if oid.IsNull() || oid.Size != 48 || oid.Pool != p.UUID() {
		t.Errorf("published oid = %v", oid)
	}
	if err := p.FreeAt(root.Off); err != nil {
		t.Fatal(err)
	}
	if got := p.ReadOid(root.Off); !got.IsNull() || got.Size != 0 {
		t.Errorf("oid after FreeAt = %v, want null", got)
	}
}

func TestReallocPreservesPrefix(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	if err := p.AllocAt(root.Off, 32); err != nil {
		t.Fatal(err)
	}
	oid := p.ReadOid(root.Off)
	p.dev.WriteBytes(oid.Off, []byte("hello pm"))
	p.dev.Persist(oid.Off, 8)
	if err := p.ReallocAt(root.Off, 1024); err != nil {
		t.Fatal(err)
	}
	grown := p.ReadOid(root.Off)
	if grown.Size != 1024 {
		t.Errorf("grown size = %d", grown.Size)
	}
	if string(p.dev.ReadBytes(grown.Off, 8)) != "hello pm" {
		t.Error("payload lost across realloc")
	}
	// Shrink keeps the prefix too.
	if err := p.ReallocAt(root.Off, 4); err != nil {
		t.Fatal(err)
	}
	shrunk := p.ReadOid(root.Off)
	if string(p.dev.ReadBytes(shrunk.Off, 4)) != "hell" {
		t.Error("payload lost across shrink")
	}
}

func TestReallocAtOnNullAllocates(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	root, _ := p.Root(64)
	if err := p.ReallocAt(root.Off, 128); err != nil {
		t.Fatal(err)
	}
	if oid := p.ReadOid(root.Off); oid.Size != 128 {
		t.Errorf("oid = %v", oid)
	}
}

func TestReallocVolatileHandle(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p.dev.WriteBytes(oid.Off, []byte("abcd"))
	newOid, err := p.Realloc(oid, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if newOid.Size != 4096 {
		t.Errorf("size = %d", newOid.Size)
	}
	if string(p.dev.ReadBytes(newOid.Off, 4)) != "abcd" {
		t.Error("payload lost")
	}
	if err := p.Free(newOid); err != nil {
		t.Fatal(err)
	}
}

func TestDirectTagging(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	oid, err := p.Alloc(42)
	if err != nil {
		t.Fatal(err)
	}
	ptr := p.Direct(oid)
	if !core.IsPM(ptr) {
		t.Error("Direct did not set PM bit")
	}
	enc := p.Encoding()
	if enc.Addr(ptr) != testBase+oid.Off {
		t.Errorf("addr = %#x, want %#x", enc.Addr(ptr), testBase+oid.Off)
	}
	if core.Overflow(enc.Gep(ptr, 41)) {
		t.Error("in-bounds Gep overflowed")
	}
	if !core.Overflow(enc.Gep(ptr, 42)) {
		t.Error("out-of-bounds Gep did not overflow")
	}
	if p.Direct(OidNull) != 0 {
		t.Error("Direct(null) != 0")
	}
	if p.Direct(Oid{Pool: 123, Off: oid.Off}) != 0 {
		t.Error("Direct(foreign pool) != 0")
	}
}

func TestDirectUntaggedInNativeMode(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: false})
	oid, err := p.Alloc(42)
	if err != nil {
		t.Fatal(err)
	}
	ptr := p.Direct(oid)
	if core.IsPM(ptr) {
		t.Error("native pool returned tagged pointer")
	}
	if ptr != testBase+oid.Off {
		t.Errorf("ptr = %#x", ptr)
	}
}

func TestNativeOidLayoutIs16Bytes(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: false})
	if p.OidPersistedSize() != OidSizePMDK {
		t.Fatalf("oid size = %d", p.OidPersistedSize())
	}
	root, _ := p.Root(64)
	if err := p.AllocAt(root.Off, 8); err != nil {
		t.Fatal(err)
	}
	// The size field location must be untouched in native mode.
	if v := p.dev.ReadU64(root.Off + oidSizeField); v != 0 {
		t.Errorf("native pool wrote size field: %#x", v)
	}
	if got := p.ReadOid(root.Off); got.Size != 0 {
		t.Errorf("native ReadOid.Size = %d", got.Size)
	}
}

func TestRootPersistsAcrossReopen(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	r1, err := p.Root(256)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := p.Root(100) // smaller: same root
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("Root not stable: %v vs %v", r1, r2)
	}
	p.dev.WriteBytes(r1.Off, []byte("rootdata"))
	p.dev.Persist(r1.Off, 8)

	q := reopen(t, dev)
	r3, err := q.Root(256)
	if err != nil {
		t.Fatal(err)
	}
	if r3 != r1 {
		t.Errorf("Root after reopen = %v, want %v", r3, r1)
	}
	if string(q.dev.ReadBytes(r3.Off, 8)) != "rootdata" {
		t.Error("root payload lost")
	}
}

func TestRootGrows(t *testing.T) {
	p, _ := newTestPool(t, Config{SPP: true})
	r1, _ := p.Root(64)
	p.dev.WriteBytes(r1.Off, []byte("grow"))
	r2, err := p.Root(4096)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Size != 4096 {
		t.Errorf("grown root size = %d", r2.Size)
	}
	if string(p.dev.ReadBytes(r2.Off, 4)) != "grow" {
		t.Error("root payload lost on growth")
	}
}

func TestUserSlot(t *testing.T) {
	p, dev := newTestPool(t, Config{SPP: true})
	oid, _ := p.Alloc(128)
	p.SetUserSlot(oid)
	q := reopen(t, dev)
	if got := q.UserSlot(); got != oid {
		t.Errorf("UserSlot after reopen = %v, want %v", got, oid)
	}
}

func TestVmemMappingAndPersistRange(t *testing.T) {
	dev := pmem.NewPool("test", 1<<21)
	as := vmem.New()
	p, err := Create(dev, as, testBase, Config{SPP: true})
	if err != nil {
		t.Fatal(err)
	}
	oid, err := p.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	addr := p.Encoding().CleanTag(p.Direct(oid))
	if err := as.StoreU64(addr, 0x1234); err != nil {
		t.Fatalf("store through mapping: %v", err)
	}
	if got := dev.ReadU64(oid.Off); got != 0x1234 {
		t.Errorf("store not visible in pool: %#x", got)
	}
	if err := p.PersistRange(addr, 8); err != nil {
		t.Fatal(err)
	}
	if err := p.PersistRange(0x5, 8); !errors.Is(err, ErrNotInPool) {
		t.Errorf("PersistRange outside pool = %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadU64(addr); err == nil {
		t.Error("mapping still accessible after Close")
	}
}

func TestOffsetOf(t *testing.T) {
	p, _ := newTestPool(t, Config{})
	if _, err := p.OffsetOf(testBase - 1); !errors.Is(err, ErrNotInPool) {
		t.Error("below base accepted")
	}
	off, err := p.OffsetOf(testBase + 100)
	if err != nil || off != 100 {
		t.Errorf("OffsetOf = %d, %v", off, err)
	}
	if _, err := p.OffsetOf(testBase + p.dev.Size()); !errors.Is(err, ErrNotInPool) {
		t.Error("past end accepted")
	}
}
