package pmemobj

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/telemetry"
	"repro/internal/trace"
)

// ErrTxDone is returned when a finished transaction is used again.
var ErrTxDone = errors.New("pmemobj: transaction already committed or aborted")

type txRange struct {
	off, size uint64
}

// Tx is an open software transaction, PMDK's TX_BEGIN block. A Tx is
// bound to one lane and must be used from a single goroutine; it must
// end in exactly one Commit or Abort.
//
// The commit point is the invalidation of the lane's undo log — a
// single 8-byte store. Until then a crash rolls every snapshotted
// range back and releases every block the transaction reserved; after
// it, recovery completes the deferred frees and allocation state flips
// from the prepared redo log.
type Tx struct {
	p       *Pool
	lane    int
	laneOff uint64
	undoOff uint64
	allocs  []reservation // blocks reserved (uncommitted) by this tx
	frees   []uint64      // block offsets to release at commit
	ranges  []txRange     // snapshotted ranges, flushed at commit
	exts    []reservation // undo-log extension blocks
	done    bool

	// undoBytes is the payload total snapshotted so far, for the
	// per-transaction telemetry histogram.
	undoBytes uint64

	// tr, when non-nil, is the sampled request this transaction serves;
	// Begin and Commit attribute their stage durations to it. Nil for
	// every untraced transaction, which then pays only nil checks.
	tr *trace.Req

	// Active undo segment (the in-lane region first, then extensions).
	segData      uint64 // pool offset of the segment's data region
	segUsed      uint64 // bytes used in the active segment
	segCap       uint64 // data capacity of the active segment
	segUsedField uint64 // pool offset of the segment's used counter
}

// Begin opens a transaction. It blocks until a lane is available.
func (p *Pool) Begin() *Tx { return p.BeginTraced(nil) }

// BeginTraced is Begin for a traced request: lane acquisition and log
// initialization are attributed to tr's tx-begin phase, and the
// transaction carries tr into Commit so the commit pipeline's stages
// (flush coalesce, fence, commit point) report their own durations.
// A nil tr is exactly Begin.
func (p *Pool) BeginTraced(tr *trace.Req) *Tx {
	span := tr.Span(trace.PhaseTxBegin)
	lane := p.lanes.acquire()
	undo := p.undoOff(lane)
	p.dev.WriteU64s(undo+undoStateOff, []uint64{undoActive, 0, 0})
	p.persist(undo, undoDataOff)
	metTxBegin.Inc()
	telemetry.Flight.Record(telemetry.EvTxBegin, uint64(lane), 0)
	span.End()
	return &Tx{
		p: p, lane: lane, laneOff: p.laneOff(lane), undoOff: undo, tr: tr,
		segData:      undo + undoDataOff,
		segCap:       p.undoCap,
		segUsedField: undo + undoUsedOff,
	}
}

// AddRange snapshots [off, off+size) of the pool into the undo log
// (pmemobj_tx_add_range). Ranges snapshotted through this call are
// flushed at commit, so the caller may store into them with plain
// writes. With range dedup on (the default), the transaction keeps a
// sorted interval set of everything snapshotted so far — PMDK's ranges
// tree — and only the uncovered sub-ranges grow the undo log.
func (tx *Tx) AddRange(off, size uint64) error {
	if tx.done {
		return ErrTxDone
	}
	if off+size > tx.p.dev.Size() || off+size < off {
		return fmt.Errorf("%w: range [%#x,+%d) outside pool", ErrBadOid, off, size)
	}
	if !tx.p.rangeDedup {
		if err := tx.undoAppend(off, size); err != nil {
			return err
		}
		tx.ranges = append(tx.ranges, txRange{off, size})
		return nil
	}
	return tx.addRangeDedup(off, size)
}

// addRangeDedup snapshots only the sub-ranges of [off, off+size) not
// yet covered by this transaction, then folds the request into the
// interval set, merging overlapping and adjacent intervals. A byte's
// first covering call snapshots its pre-tx value, so the LIFO rollback
// restores exactly what the dense path would: the oldest snapshot is
// replayed last either way.
func (tx *Tx) addRangeDedup(off, size uint64) error {
	if size == 0 {
		return nil
	}
	lo, hi := off, off+size
	rs := tx.ranges
	// First interval ending at or after lo; everything before it is
	// strictly left of the request and not adjacent to it.
	i := sort.Search(len(rs), func(k int) bool { return rs[k].off+rs[k].size >= lo })
	cur, appended := lo, uint64(0)
	j := i
	for ; j < len(rs) && rs[j].off <= hi; j++ {
		if rs[j].off > cur {
			if err := tx.undoAppend(cur, rs[j].off-cur); err != nil {
				return err
			}
			appended += rs[j].off - cur
		}
		if end := rs[j].off + rs[j].size; end > cur {
			cur = end
		}
	}
	if cur < hi {
		if err := tx.undoAppend(cur, hi-cur); err != nil {
			return err
		}
		appended += hi - cur
	}
	if appended < size {
		metRangeDedup.Inc()
		metDedupBytes.Add(size - appended)
	}
	// Replace rs[i:j] with the union of the request and the intervals
	// it touched.
	merged := txRange{lo, hi - lo}
	if i < j {
		if rs[i].off < merged.off {
			merged.off = rs[i].off
		}
		if end := rs[j-1].off + rs[j-1].size; end > hi {
			merged.size = end - merged.off
		} else {
			merged.size = hi - merged.off
		}
	}
	if i == j {
		rs = append(rs, txRange{})
		copy(rs[i+1:], rs[i:])
	} else if i+1 < j {
		rs = append(rs[:i+1], rs[j:]...)
	}
	rs[i] = merged
	tx.ranges = rs
	return nil
}

// undoAppend snapshots a range into the active undo segment, growing
// the log with a heap extension when the segment is full (PMDK's undo
// log extensions). Extensions are published in the uncommitted block
// state, so a crash reclaims them automatically after rollback.
func (tx *Tx) undoAppend(off, size uint64) error {
	if size == 0 {
		return nil
	}
	p := tx.p
	need := 16 + align8(size)
	if tx.segUsed+need > tx.segCap {
		extPayload := need + extDataOff
		if min := p.undoCap; extPayload < min {
			extPayload = min
		}
		resv, err := p.heap.reserveAny(p, extPayload)
		if err != nil {
			return fmt.Errorf("undo log extension: %w", err)
		}
		metLogExtends.Inc()
		// Publish the uncommitted header while the block is still in
		// the reserved set, then settle it. The size gets its own fence
		// (a sized state flip must never be seen with a stale size);
		// the state and the segment header share the second fence, both
		// only needing to be durable before the link that makes the
		// segment reachable.
		payload := resv.payloadOff()
		p.dev.WriteU64(resv.blk, resv.size)
		p.dev.Persist(resv.blk, 8)
		p.dev.WriteU64(resv.blk+8, blockUncommitted)
		p.dev.Flush(resv.blk+8, 8)
		p.dev.WriteU64s(payload+extNextOff, []uint64{0, 0})
		p.persist(payload, extDataOff)
		p.heap.unreserve(resv.blk)
		// Link the extension into the chain; the link is the validity
		// point for the new segment.
		var linkField uint64
		if len(tx.exts) == 0 {
			linkField = tx.undoOff + undoExtOff
		} else {
			linkField = tx.exts[len(tx.exts)-1].payloadOff() + extNextOff
		}
		p.dev.WriteU64(linkField, payload)
		p.persist(linkField, 8)

		tx.exts = append(tx.exts, resv)
		tx.segData = payload + extDataOff
		tx.segUsed = 0
		tx.segCap = resv.size - blockHdrSize - extDataOff
		tx.segUsedField = payload + extUsedOff
		if need > tx.segCap {
			return fmt.Errorf("%w: snapshot of %d bytes exceeds extension capacity", ErrLogFull, size)
		}
	}
	p.writeUndoEntry(tx.segData, tx.segUsedField, tx.segUsed, off, size)
	tx.segUsed += need
	tx.undoBytes += size
	return nil
}

// releaseExts returns undo-log extension blocks to the heap after the
// transaction has ended (in either direction).
func (tx *Tx) releaseExts() {
	for _, r := range tx.exts {
		tx.p.heap.releaseBlock(tx.p, r)
	}
	tx.exts = nil
}

// AddRangeAddr is AddRange for a cleaned virtual address.
func (tx *Tx) AddRangeAddr(addr, size uint64) error {
	off, err := tx.p.OffsetOf(addr)
	if err != nil {
		return err
	}
	return tx.AddRange(off, size)
}

// AddOidRange snapshots the persisted oid stored at off. With SPP this
// covers 24 bytes — the implicit inclusion of the size field in the
// undo log that §IV-F describes.
func (tx *Tx) AddOidRange(off uint64) error {
	return tx.AddRange(off, tx.p.OidPersistedSize())
}

// Alloc reserves a zeroed object inside the transaction
// (pmemobj_tx_alloc). The block is persisted in the uncommitted state:
// recovery from a crash before commit releases it.
func (tx *Tx) Alloc(size uint64) (Oid, error) {
	if tx.done {
		return OidNull, ErrTxDone
	}
	if err := tx.p.checkAllocSize(size); err != nil {
		return OidNull, err
	}
	resv, err := tx.p.heap.reserveAny(tx.p, size)
	if err != nil {
		return OidNull, err
	}
	// Publish the reservation in the uncommitted state. Size first,
	// fence, then state, so the heap walk never sees a sized state
	// change with a stale size. The zeroed payload rides the size
	// fence — it only needs to be durable before the state flip. The
	// block stays in the reserved set until Commit/Abort settles it:
	// its state word is rewritten by the commit redo without any lock
	// held.
	tx.p.dev.Zero(resv.payloadOff(), resv.size-blockHdrSize)
	tx.p.dev.Flush(resv.payloadOff(), resv.size-blockHdrSize)
	tx.p.dev.WriteU64(resv.blk, resv.size)
	tx.p.persist(resv.blk, 8)
	tx.p.dev.WriteU64(resv.blk+8, blockUncommitted)
	tx.p.persist(resv.blk+8, 8)
	tx.allocs = append(tx.allocs, resv)
	return Oid{Pool: tx.p.uuid, Off: resv.payloadOff(), Size: size}, nil
}

// Free releases an object at commit (pmemobj_tx_free). Freeing an
// object allocated by this same transaction releases it immediately.
func (tx *Tx) Free(oid Oid) error {
	if tx.done {
		return ErrTxDone
	}
	blk, err := tx.p.validateOid(oid)
	if err != nil {
		return err
	}
	for i, r := range tx.allocs {
		if r.blk == blk {
			tx.p.heap.releaseBlock(tx.p, r)
			tx.allocs = append(tx.allocs[:i], tx.allocs[i+1:]...)
			return nil
		}
	}
	if tx.p.dev.ReadU64(blk+8) != blockAllocated {
		return fmt.Errorf("%w: tx free of foreign uncommitted block", ErrBadOid)
	}
	tx.frees = append(tx.frees, blk)
	return nil
}

// Realloc resizes an object transactionally (pmemobj_tx_realloc): a
// new block is reserved, the payload moved, and the old block freed at
// commit. Aborting restores the original object untouched.
func (tx *Tx) Realloc(oid Oid, size uint64) (Oid, error) {
	if tx.done {
		return OidNull, ErrTxDone
	}
	blk, err := tx.p.validateOid(oid)
	if err != nil {
		return OidNull, err
	}
	newOid, err := tx.Alloc(size)
	if err != nil {
		return OidNull, err
	}
	oldPayload := tx.p.dev.ReadU64(blk) - blockHdrSize
	copyLen := oldPayload
	if size < copyLen {
		copyLen = size
	}
	tx.p.dev.WriteBytes(newOid.Off, tx.p.dev.ReadBytes(oid.Off, copyLen))
	tx.p.dev.Persist(newOid.Off, copyLen)
	if err := tx.Free(oid); err != nil {
		return OidNull, err
	}
	return newOid, nil
}

// Commit makes every change of the transaction durable and atomic.
func (tx *Tx) Commit() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	defer func() { tx.p.lanes.release(tx.lane) }()
	p := tx.p

	// 1. Make all stores into snapshotted ranges — and into objects
	// allocated by this transaction — durable. The accumulator merges
	// ranges that share cachelines (dedup already merged adjacent
	// snapshots, but allocs and ranges still collide) and the fence is
	// shared with concurrent committers. Under tracing the coalesce
	// pass and the fence wait report as separate phases: the fence is
	// where a traced request waits on *other* lanes' epochs.
	var t0 time.Time
	if tx.tr != nil {
		t0 = time.Now()
	}
	s := p.getScratch()
	for _, r := range tx.ranges {
		s.ac.Flush(r.off, r.size)
	}
	for _, r := range tx.allocs {
		s.ac.Flush(r.blk+blockHdrSize, r.size-blockHdrSize)
	}
	s.ac.Drain()
	p.putScratch(s)
	if tx.tr != nil {
		now := time.Now()
		tx.tr.Add(trace.PhaseFlush, now.Sub(t0))
		t0 = now
	}
	p.fence()
	if tx.tr != nil {
		now := time.Now()
		tx.tr.Add(trace.PhaseFence, now.Sub(t0))
		t0 = now
	}

	// 2. Prepare (but do not apply) the redo log with the allocation
	// state flips and deferred frees. Every block the redo will touch
	// is in the reserved sets: the tx allocs never left them, and
	// planFree enters each freed span.
	type mergedFree struct {
		blk, size, merged uint64
	}
	var entries []redoEntry
	var freePlans []mergedFree
	for _, r := range tx.allocs {
		entries = append(entries, redoEntry{r.blk + 8, blockAllocated})
	}
	for _, blk := range tx.frees {
		size := p.dev.ReadU64(blk)
		merged := p.heap.planFree(p, blk, size)
		entries = append(entries, redoEntry{blk, merged}, redoEntry{blk + 8, blockFree})
		freePlans = append(freePlans, mergedFree{blk, size, merged})
	}
	var redoExts []reservation
	if len(entries) > 0 {
		var err error
		if redoExts, err = p.prepareRedo(tx.laneOff, entries); err != nil {
			// Too many heap operations for the lane's redo capacity:
			// the transaction cannot commit atomically; abort it.
			for _, f := range freePlans {
				p.heap.abortFree(f.blk, f.size, f.merged)
			}
			if err2 := tx.rollback(); err2 != nil {
				return err2
			}
			return err
		}
	}

	// 3. Commit point: invalidate the undo log. The state flip and the
	// used reset keep separate fences: collapsing them would admit a
	// crash image with used=0 durable while the state is still active,
	// where rollback restores nothing but the prepared redo is
	// discarded.
	p.dev.WriteU64(tx.undoOff+undoStateOff, undoInactive)
	p.persist(tx.undoOff+undoStateOff, 8)
	p.dev.WriteU64(tx.undoOff+undoUsedOff, 0)
	p.persist(tx.undoOff+undoUsedOff, 8)

	// 4. Complete the heap updates.
	if len(entries) > 0 {
		p.applyRedo(tx.laneOff)
		p.releaseRedoExts(redoExts)
	}
	for _, r := range tx.allocs {
		p.heap.unreserve(r.blk)
		p.heap.usedBytes.Add(r.size)
		p.heap.usedBlocks.Add(1)
	}
	for _, f := range freePlans {
		p.heap.finishFree(f.blk, f.merged)
		subUsed(&p.heap.usedBytes, f.size)
		subUsed(&p.heap.usedBlocks, 1)
	}
	tx.releaseExts()
	metTxCommit.Inc()
	metUndoBytes.Observe(tx.undoBytes)
	telemetry.Flight.Record(telemetry.EvTxCommit, uint64(tx.lane), tx.undoBytes)
	// Everything after the fence — redo preparation, the commit point,
	// heap settlement — is the commit phase proper.
	if tx.tr != nil {
		tx.tr.Add(trace.PhaseTxCommit, time.Since(t0))
	}
	return nil
}

// Abort rolls the transaction back: snapshotted ranges are restored
// and reserved blocks are released.
func (tx *Tx) Abort() error {
	if tx.done {
		return ErrTxDone
	}
	tx.done = true
	defer func() { tx.p.lanes.release(tx.lane) }()
	metTxAbort.Inc()
	telemetry.Flight.Record(telemetry.EvTxAbort, uint64(tx.lane), 0)
	return tx.rollback()
}

func (tx *Tx) rollback() error {
	p := tx.p
	p.discardRedo(tx.laneOff)
	if err := p.rollbackUndo(tx.undoOff); err != nil {
		return err
	}
	tx.releaseExts()
	for _, r := range tx.allocs {
		p.heap.releaseBlock(p, r)
	}
	tx.allocs = nil
	return nil
}
