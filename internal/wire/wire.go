// Package wire is the KV service's length-prefixed binary protocol,
// shared by the server (internal/server) and the client library
// (repro/client). A connection carries a sequence of request frames
// and their responses in order; each frame is one operation against
// one tenant's store.
//
// Request frame layout (all integers big-endian):
//
//	u32  payload length (bytes after this field)
//	u8   op              (OpGet, OpPut, OpDelete, OpCount, OpScan;
//	                      high bit = OpTraceFlag, a trace header
//	                      follows)
//	u64  trace ID        (only with OpTraceFlag)
//	u8   trace flags     (only with OpTraceFlag; bit 0 = sampled,
//	                      other bits reserved and must be zero)
//	u8   tenant length   (1..MaxTenantLen)
//	...  tenant
//	u32  key length
//	...  key             (SCAN: the inclusive lower bound; empty =
//	                      from the start)
//	...  value           (rest of the frame; PUT only)
//
// A SCAN frame replaces the value tail with an exactly-sized bound
// extension — anything shorter or longer is malformed:
//
//	u32  hi length
//	...  hi              (exclusive upper bound; empty = unbounded)
//	u32  limit           (max pairs returned; 0 = no limit beyond the
//	                      response frame budget)
//
// The trace header is a backward-compatible extension: a client only
// emits it for requests actually chosen for tracing, so a new client
// with tracing disabled (or sampling past this request) produces
// byte-identical frames to the original protocol and old servers are
// none the wiser. An old server receiving a traced frame rejects it
// deterministically ("bad op") rather than misparsing it — tracing
// against a server that predates the extension is a configuration
// error, not a silent corruption.
//
// Response frame layout:
//
//	u32  payload length
//	u8   status          (StatusOK, StatusNotFound, StatusError,
//	                      StatusOverloaded)
//	...  payload         (GET: value; COUNT: u64; SCAN: repeated
//	                      {u32 klen, key, u32 vlen, value} pairs in
//	                      ascending key order; errors: message)
//
// StatusOverloaded is distinct from StatusError so clients can tell
// admission-control shedding (retry later, the request was never
// executed) from a failed operation.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/trace"
)

// Ops.
const (
	OpGet byte = iota + 1
	OpPut
	OpDelete
	OpCount
	OpScan

	// OpTraceFlag marks a request frame carrying the 9-byte trace
	// header between the op byte and the tenant length.
	OpTraceFlag byte = 0x80
)

// Trace header layout.
const (
	traceHdrLen      = 8 + 1 // u64 ID + u8 flags
	traceFlagSampled = 0x01
)

// Statuses.
const (
	StatusOK byte = iota
	StatusNotFound
	StatusError
	StatusOverloaded
)

// Limits. MaxFrame bounds a whole request or response payload; a
// reader rejects larger length prefixes without allocating, so a
// garbage prefix cannot balloon memory.
const (
	MaxFrame     = 1 << 20
	MaxTenantLen = 255

	reqHeader  = 1 + 1 + 4 // op + tenant length + key length
	scanExtLen = 4 + 4     // hi length + limit (hi bytes in between)
)

// Protocol errors. ErrMalformed wraps every framing violation; after
// one the stream is unsynchronized and must be closed.
var (
	ErrMalformed     = errors.New("wire: malformed frame")
	ErrFrameTooLarge = fmt.Errorf("%w: frame exceeds %d bytes", ErrMalformed, MaxFrame)
	ErrOverloaded    = errors.New("wire: server overloaded")
)

// Request is one decoded operation. A zero Trace means the frame
// carried no trace header (and none is emitted on encode). Hi and
// Limit are meaningful only for OpScan, whose Key is the inclusive
// lower bound.
type Request struct {
	Op     byte
	Tenant string
	Key    []byte
	Value  []byte
	Hi     []byte
	Limit  uint32
	Trace  trace.Ctx
}

// Response is one decoded reply.
type Response struct {
	Status  byte
	Payload []byte
}

// AppendRequest encodes r onto dst and returns the extended slice.
func AppendRequest(dst []byte, r Request) ([]byte, error) {
	if r.Op < OpGet || r.Op > OpScan {
		return dst, fmt.Errorf("%w: bad op %d", ErrMalformed, r.Op)
	}
	if r.Op != OpScan && (len(r.Hi) != 0 || r.Limit != 0) {
		return dst, fmt.Errorf("%w: op %d carries scan bounds", ErrMalformed, r.Op)
	}
	if r.Op == OpScan && len(r.Value) != 0 {
		return dst, fmt.Errorf("%w: scan carries a value", ErrMalformed)
	}
	if len(r.Tenant) == 0 || len(r.Tenant) > MaxTenantLen {
		return dst, fmt.Errorf("%w: tenant length %d", ErrMalformed, len(r.Tenant))
	}
	traced := r.Trace != (trace.Ctx{})
	n := reqHeader + len(r.Tenant) + len(r.Key) + len(r.Value)
	if r.Op == OpScan {
		n += scanExtLen + len(r.Hi)
	}
	if traced {
		n += traceHdrLen
	}
	if n > MaxFrame {
		return dst, ErrFrameTooLarge
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	if traced {
		dst = append(dst, r.Op|OpTraceFlag)
		dst = binary.BigEndian.AppendUint64(dst, r.Trace.ID)
		var flags byte
		if r.Trace.Sampled {
			flags |= traceFlagSampled
		}
		dst = append(dst, flags)
	} else {
		dst = append(dst, r.Op)
	}
	dst = append(dst, byte(len(r.Tenant)))
	dst = append(dst, r.Tenant...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Key)))
	dst = append(dst, r.Key...)
	if r.Op == OpScan {
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(r.Hi)))
		dst = append(dst, r.Hi...)
		dst = binary.BigEndian.AppendUint32(dst, r.Limit)
		return dst, nil
	}
	dst = append(dst, r.Value...)
	return dst, nil
}

// WriteRequest encodes r and writes the frame to w.
func WriteRequest(w io.Writer, r Request) error {
	buf, err := AppendRequest(nil, r)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadRequest decodes one request frame from r. Errors matching
// ErrMalformed mean the stream cannot be resynchronized.
func ReadRequest(r io.Reader) (Request, error) {
	payload, err := readFrame(r)
	if err != nil {
		return Request{}, err
	}
	if len(payload) < reqHeader {
		return Request{}, fmt.Errorf("%w: request payload %d bytes", ErrMalformed, len(payload))
	}
	op := payload[0]
	var tc trace.Ctx
	if op&OpTraceFlag != 0 {
		op &^= OpTraceFlag
		if len(payload) < reqHeader+traceHdrLen {
			return Request{}, fmt.Errorf("%w: truncated trace header in %d-byte payload", ErrMalformed, len(payload))
		}
		tc.ID = binary.BigEndian.Uint64(payload[1:])
		flags := payload[1+8]
		if flags&^traceFlagSampled != 0 {
			return Request{}, fmt.Errorf("%w: reserved trace flags %#x", ErrMalformed, flags)
		}
		tc.Sampled = flags&traceFlagSampled != 0
		if tc == (trace.Ctx{}) {
			return Request{}, fmt.Errorf("%w: empty trace header", ErrMalformed)
		}
		// Cut the header out so the rest of the frame parses at the
		// untraced offsets (index 0 becomes dead padding where the op
		// byte sat).
		payload = payload[traceHdrLen:]
	}
	if op < OpGet || op > OpScan {
		return Request{}, fmt.Errorf("%w: bad op %d", ErrMalformed, op)
	}
	tlen := int(payload[1])
	if tlen == 0 || 2+tlen+4 > len(payload) {
		return Request{}, fmt.Errorf("%w: tenant length %d in %d-byte payload", ErrMalformed, tlen, len(payload))
	}
	tenant := string(payload[2 : 2+tlen])
	rest := payload[2+tlen:]
	klen := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if klen > len(rest) {
		return Request{}, fmt.Errorf("%w: key length %d exceeds remaining %d bytes", ErrMalformed, klen, len(rest))
	}
	req := Request{Op: op, Tenant: tenant, Key: rest[:klen], Value: rest[klen:], Trace: tc}
	if op == OpScan {
		// The tail is the bound extension, sized exactly: a truncated
		// hi, a missing limit, or trailing garbage all fold to
		// ErrMalformed.
		ext := req.Value
		req.Value = nil
		if len(ext) < scanExtLen {
			return Request{}, fmt.Errorf("%w: scan extension %d bytes", ErrMalformed, len(ext))
		}
		hlen := int(binary.BigEndian.Uint32(ext))
		if len(ext) != scanExtLen+hlen {
			return Request{}, fmt.Errorf("%w: scan extension %d bytes, want %d for hi length %d", ErrMalformed, len(ext), scanExtLen+hlen, hlen)
		}
		if hlen > 0 {
			req.Hi = ext[4 : 4+hlen]
		}
		req.Limit = binary.BigEndian.Uint32(ext[4+hlen:])
		return req, nil
	}
	if op != OpPut && len(req.Value) != 0 {
		return Request{}, fmt.Errorf("%w: op %d carries a value", ErrMalformed, op)
	}
	return req, nil
}

// WriteResponse encodes and writes one response frame.
func WriteResponse(w io.Writer, resp Response) error {
	n := 1 + len(resp.Payload)
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	buf := make([]byte, 0, 4+n)
	buf = binary.BigEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, resp.Status)
	buf = append(buf, resp.Payload...)
	_, err := w.Write(buf)
	return err
}

// ReadResponse decodes one response frame from r.
func ReadResponse(r io.Reader) (Response, error) {
	payload, err := readFrame(r)
	if err != nil {
		return Response{}, err
	}
	if len(payload) < 1 {
		return Response{}, fmt.Errorf("%w: empty response payload", ErrMalformed)
	}
	return Response{Status: payload[0], Payload: payload[1:]}, nil
}

// readFrame reads a length prefix and its payload, enforcing MaxFrame
// before allocating.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF between frames means a clean close
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, fmt.Errorf("%w: zero-length frame", ErrMalformed)
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, fmt.Errorf("%w: truncated frame: %v", ErrMalformed, err)
	}
	return payload, nil
}

// Count encodes a COUNT result payload.
func Count(n uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, n)
}

// ParseCount decodes a COUNT result payload.
func ParseCount(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: count payload %d bytes", ErrMalformed, len(payload))
	}
	return binary.BigEndian.Uint64(payload), nil
}

// KV is one scanned key/value pair.
type KV struct {
	Key   []byte
	Value []byte
}

// ScanPairSize is the encoded size of one scan result pair — the
// server budgets response frames with it.
func ScanPairSize(klen, vlen int) int { return 8 + klen + vlen }

// AppendScanPair encodes one pair onto a SCAN response payload.
func AppendScanPair(dst, key, value []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(value)))
	dst = append(dst, value...)
	return dst
}

// ParseScanResult decodes a SCAN response payload into its pairs.
func ParseScanResult(payload []byte) ([]KV, error) {
	var out []KV
	for len(payload) > 0 {
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: scan result tail %d bytes", ErrMalformed, len(payload))
		}
		klen := int(binary.BigEndian.Uint32(payload))
		payload = payload[4:]
		if klen > len(payload) {
			return nil, fmt.Errorf("%w: scan result key length %d exceeds remaining %d", ErrMalformed, klen, len(payload))
		}
		key := payload[:klen]
		payload = payload[klen:]
		if len(payload) < 4 {
			return nil, fmt.Errorf("%w: scan result missing value length", ErrMalformed)
		}
		vlen := int(binary.BigEndian.Uint32(payload))
		payload = payload[4:]
		if vlen > len(payload) {
			return nil, fmt.Errorf("%w: scan result value length %d exceeds remaining %d", ErrMalformed, vlen, len(payload))
		}
		out = append(out, KV{Key: key, Value: payload[:vlen]})
		payload = payload[vlen:]
	}
	return out, nil
}
