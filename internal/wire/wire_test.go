package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"

	"repro/internal/trace"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Tenant: "acme", Key: []byte("k1")},
		{Op: OpPut, Tenant: "acme", Key: []byte("k1"), Value: []byte("v1")},
		{Op: OpPut, Tenant: "t", Key: nil, Value: []byte("value-for-empty-key")},
		{Op: OpDelete, Tenant: "other", Key: []byte("k2")},
		{Op: OpCount, Tenant: "acme"},
	}
	var buf bytes.Buffer
	for _, r := range reqs {
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatalf("write %+v: %v", r, err)
		}
	}
	for i, want := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Op != want.Op || got.Tenant != want.Tenant ||
			!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Errorf("round trip %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Errorf("after all frames: err = %v, want io.EOF", err)
	}
}

// TestTracedRequestRoundTrip covers frames carrying the trace-header
// extension: the context survives the round trip on every op,
// including a sampled context with ID zero.
func TestTracedRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Tenant: "acme", Key: []byte("k1"), Trace: trace.Ctx{ID: 0xdeadbeefcafe, Sampled: true}},
		{Op: OpPut, Tenant: "acme", Key: []byte("k1"), Value: []byte("v1"), Trace: trace.Ctx{ID: 7, Sampled: true}},
		{Op: OpDelete, Tenant: "t", Key: []byte("k2"), Trace: trace.Ctx{ID: 1}},
		{Op: OpCount, Tenant: "acme", Trace: trace.Ctx{Sampled: true}},
	}
	var buf bytes.Buffer
	for _, r := range reqs {
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatalf("write %+v: %v", r, err)
		}
	}
	for i, want := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Trace != want.Trace {
			t.Errorf("round trip %d: trace = %+v, want %+v", i, got.Trace, want.Trace)
		}
		if got.Op != want.Op || got.Tenant != want.Tenant ||
			!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Errorf("round trip %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestTraceWireCompat pins the backward-compatibility contract of the
// trace-header extension in both directions.
func TestTraceWireCompat(t *testing.T) {
	// New client, unsampled request: the frame must be byte-identical
	// to the pre-extension layout, so old servers decode it unchanged.
	got, err := AppendRequest(nil, Request{Op: OpPut, Tenant: "acme", Key: []byte("k"), Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	old := []byte{
		0, 0, 0, 12, // payload length
		OpPut,
		4, 'a', 'c', 'm', 'e',
		0, 0, 0, 1, 'k',
		'v',
	}
	if !bytes.Equal(got, old) {
		t.Errorf("unsampled frame not byte-identical to old layout:\n got %x\nwant %x", got, old)
	}
	// Old client, new server: the old-layout frame decodes with a zero
	// trace context.
	req, err := ReadRequest(bytes.NewReader(old))
	if err != nil {
		t.Fatalf("old frame on new decoder: %v", err)
	}
	if req.Trace != (trace.Ctx{}) {
		t.Errorf("old frame decoded with trace %+v", req.Trace)
	}
	// New client, old server: a traced frame's op byte carries the high
	// bit, which the pre-extension op-range check (op > OpCount) turns
	// into a deterministic "bad op" rejection rather than a misparse.
	traced, err := AppendRequest(nil, Request{Op: OpPut, Tenant: "acme", Key: []byte("k"), Value: []byte("v"), Trace: trace.Ctx{ID: 1, Sampled: true}})
	if err != nil {
		t.Fatal(err)
	}
	if op := traced[4]; op&OpTraceFlag == 0 || op <= OpCount {
		t.Errorf("traced op byte %#x would pass an old server's op check", op)
	}
}

// TestScanRequestRoundTrip covers the OpScan bound extension: lo/hi
// bounds and the limit survive the round trip, with and without a
// trace header, and empty bounds decode as nil (unbounded).
func TestScanRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpScan, Tenant: "acme", Key: []byte("a"), Hi: []byte("m"), Limit: 10},
		{Op: OpScan, Tenant: "acme", Key: nil, Hi: nil, Limit: 0},
		{Op: OpScan, Tenant: "t", Key: []byte("k-000"), Hi: nil, Limit: 1},
		{Op: OpScan, Tenant: "t", Key: nil, Hi: []byte("zz"), Limit: 1 << 20,
			Trace: trace.Ctx{ID: 99, Sampled: true}},
	}
	var buf bytes.Buffer
	for _, r := range reqs {
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatalf("write %+v: %v", r, err)
		}
	}
	for i, want := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Op != OpScan || got.Tenant != want.Tenant ||
			!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Hi, want.Hi) ||
			got.Limit != want.Limit || got.Trace != want.Trace || got.Value != nil {
			t.Errorf("round trip %d: got %+v, want %+v", i, got, want)
		}
	}
}

func TestScanResultRoundTrip(t *testing.T) {
	var payload []byte
	pairs := []KV{
		{Key: []byte("a"), Value: []byte("1")},
		{Key: []byte("b"), Value: nil},
		{Key: nil, Value: []byte("empty-key")},
	}
	for _, p := range pairs {
		payload = AppendScanPair(payload, p.Key, p.Value)
	}
	got, err := ParseScanResult(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pairs) {
		t.Fatalf("parsed %d pairs, want %d", len(got), len(pairs))
	}
	for i := range pairs {
		if !bytes.Equal(got[i].Key, pairs[i].Key) || !bytes.Equal(got[i].Value, pairs[i].Value) {
			t.Errorf("pair %d: got %q=%q, want %q=%q", i, got[i].Key, got[i].Value, pairs[i].Key, pairs[i].Value)
		}
	}
	empty, err := ParseScanResult(nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("empty payload: %v pairs, err %v", empty, err)
	}
	for name, b := range map[string][]byte{
		"short key length":   {0, 0, 1},
		"key overrun":        {0, 0, 0, 9, 'k'},
		"missing value len":  {0, 0, 0, 1, 'k', 0},
		"value overrun":      {0, 0, 0, 1, 'k', 0, 0, 0, 9, 'v'},
		"trailing half pair": AppendScanPair(nil, []byte("k"), []byte("v"))[:11],
	} {
		if _, err := ParseScanResult(b); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	resps := []Response{
		{Status: StatusOK, Payload: []byte("value")},
		{Status: StatusNotFound},
		{Status: StatusOverloaded},
		{Status: StatusError, Payload: []byte("boom")},
		{Status: StatusOK, Payload: Count(42)},
	}
	for _, r := range resps {
		if err := WriteResponse(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range resps {
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Status != want.Status || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("round trip %d: got %+v, want %+v", i, got, want)
		}
	}
	n, err := ParseCount(Count(42))
	if err != nil || n != 42 {
		t.Errorf("ParseCount = %d, %v", n, err)
	}
}

// TestMalformedFrames feeds broken byte streams and asserts every one
// is rejected with ErrMalformed (never a panic, never a bogus decode).
func TestMalformedFrames(t *testing.T) {
	valid, err := AppendRequest(nil, Request{Op: OpPut, Tenant: "t", Key: []byte("k"), Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	oversize := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	cases := map[string][]byte{
		"zero length":        binary.BigEndian.AppendUint32(nil, 0),
		"oversize length":    append(oversize, 0xff),
		"truncated payload":  valid[:len(valid)-1],
		"short payload":      {0, 0, 0, 2, OpGet, 1},
		"bad op":             {0, 0, 0, 7, 99, 1, 't', 0, 0, 0, 1, 'k'},
		"zero tenant":        {0, 0, 0, 7, OpGet, 0, 't', 0, 0, 0, 1},
		"tenant overrun":     {0, 0, 0, 7, OpGet, 200, 't', 0, 0, 0, 1},
		"key overrun":        {0, 0, 0, 8, OpGet, 1, 't', 0, 0, 0, 99, 'k'},
		"value on GET":       {0, 0, 0, 9, OpGet, 1, 't', 0, 0, 0, 1, 'k', 'v'},
		"garbage everywhere": bytes.Repeat([]byte{0xee}, 16),
		// Trace-header extension: the flagged op promises 9 more header
		// bytes; frames that break that promise are rejected before the
		// rest of the payload is interpreted.
		"truncated trace header": {0, 0, 0, 8, OpGet | OpTraceFlag, 0, 0, 0, 0, 0, 0, 0},
		"reserved trace flags": {0, 0, 0, 16, OpGet | OpTraceFlag,
			0, 0, 0, 0, 0, 0, 0, 1, 0x02, // ID 1, flags with reserved bit
			1, 't', 0, 0, 0, 0},
		"empty trace header": {0, 0, 0, 16, OpGet | OpTraceFlag,
			0, 0, 0, 0, 0, 0, 0, 0, 0x00, // ID 0, unsampled: header says nothing
			1, 't', 0, 0, 0, 0},
		// Scan bound extension: OpScan promises `u32 hiLen | hi | u32
		// limit` after the key, sized exactly. Frames that are short,
		// overrun, or carry trailing bytes are rejected.
		"scan missing extension": {0, 0, 0, 8, OpScan, 1, 't', 0, 0, 0, 1, 'k'},
		"scan truncated limit": {0, 0, 0, 15, OpScan, 1, 't', 0, 0, 0, 1, 'k',
			0, 0, 0, 1, 'h', 0, 0},
		"scan hi overrun": {0, 0, 0, 13, OpScan, 1, 't', 0, 0, 0, 1, 'k',
			0, 0, 0, 5, 'h'},
		"scan trailing garbage": {0, 0, 0, 17, OpScan, 1, 't', 0, 0, 0, 1, 'k',
			0, 0, 0, 0, 0, 0, 0, 0, 0xee},
	}
	for name, b := range cases {
		_, err := ReadRequest(bytes.NewReader(b))
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestEncodeRejectsBadRequests(t *testing.T) {
	for name, r := range map[string]Request{
		"bad op":        {Op: 0, Tenant: "t"},
		"empty tenant":  {Op: OpGet},
		"long tenant":   {Op: OpGet, Tenant: string(bytes.Repeat([]byte{'a'}, 300))},
		"huge value":    {Op: OpPut, Tenant: "t", Value: make([]byte, MaxFrame)},
		"hi on GET":     {Op: OpGet, Tenant: "t", Key: []byte("k"), Hi: []byte("z")},
		"limit on PUT":  {Op: OpPut, Tenant: "t", Key: []byte("k"), Value: []byte("v"), Limit: 5},
		"value on SCAN": {Op: OpScan, Tenant: "t", Key: []byte("k"), Value: []byte("v")},
	} {
		if _, err := AppendRequest(nil, r); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}
