package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []Request{
		{Op: OpGet, Tenant: "acme", Key: []byte("k1")},
		{Op: OpPut, Tenant: "acme", Key: []byte("k1"), Value: []byte("v1")},
		{Op: OpPut, Tenant: "t", Key: nil, Value: []byte("value-for-empty-key")},
		{Op: OpDelete, Tenant: "other", Key: []byte("k2")},
		{Op: OpCount, Tenant: "acme"},
	}
	var buf bytes.Buffer
	for _, r := range reqs {
		if err := WriteRequest(&buf, r); err != nil {
			t.Fatalf("write %+v: %v", r, err)
		}
	}
	for i, want := range reqs {
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Op != want.Op || got.Tenant != want.Tenant ||
			!bytes.Equal(got.Key, want.Key) || !bytes.Equal(got.Value, want.Value) {
			t.Errorf("round trip %d: got %+v, want %+v", i, got, want)
		}
	}
	if _, err := ReadRequest(&buf); err != io.EOF {
		t.Errorf("after all frames: err = %v, want io.EOF", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	resps := []Response{
		{Status: StatusOK, Payload: []byte("value")},
		{Status: StatusNotFound},
		{Status: StatusOverloaded},
		{Status: StatusError, Payload: []byte("boom")},
		{Status: StatusOK, Payload: Count(42)},
	}
	for _, r := range resps {
		if err := WriteResponse(&buf, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range resps {
		got, err := ReadResponse(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Status != want.Status || !bytes.Equal(got.Payload, want.Payload) {
			t.Errorf("round trip %d: got %+v, want %+v", i, got, want)
		}
	}
	n, err := ParseCount(Count(42))
	if err != nil || n != 42 {
		t.Errorf("ParseCount = %d, %v", n, err)
	}
}

// TestMalformedFrames feeds broken byte streams and asserts every one
// is rejected with ErrMalformed (never a panic, never a bogus decode).
func TestMalformedFrames(t *testing.T) {
	valid, err := AppendRequest(nil, Request{Op: OpPut, Tenant: "t", Key: []byte("k"), Value: []byte("v")})
	if err != nil {
		t.Fatal(err)
	}
	oversize := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	cases := map[string][]byte{
		"zero length":        binary.BigEndian.AppendUint32(nil, 0),
		"oversize length":    append(oversize, 0xff),
		"truncated payload":  valid[:len(valid)-1],
		"short payload":      {0, 0, 0, 2, OpGet, 1},
		"bad op":             {0, 0, 0, 7, 99, 1, 't', 0, 0, 0, 1, 'k'},
		"zero tenant":        {0, 0, 0, 7, OpGet, 0, 't', 0, 0, 0, 1},
		"tenant overrun":     {0, 0, 0, 7, OpGet, 200, 't', 0, 0, 0, 1},
		"key overrun":        {0, 0, 0, 8, OpGet, 1, 't', 0, 0, 0, 99, 'k'},
		"value on GET":       {0, 0, 0, 9, OpGet, 1, 't', 0, 0, 0, 1, 'k', 'v'},
		"garbage everywhere": bytes.Repeat([]byte{0xee}, 16),
	}
	for name, b := range cases {
		_, err := ReadRequest(bytes.NewReader(b))
		if !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}

func TestEncodeRejectsBadRequests(t *testing.T) {
	for name, r := range map[string]Request{
		"bad op":       {Op: 0, Tenant: "t"},
		"empty tenant": {Op: OpGet},
		"long tenant":  {Op: OpGet, Tenant: string(bytes.Repeat([]byte{'a'}, 300))},
		"huge value":   {Op: OpPut, Tenant: "t", Value: make([]byte, MaxFrame)},
	} {
		if _, err := AppendRequest(nil, r); !errors.Is(err, ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", name, err)
		}
	}
}
