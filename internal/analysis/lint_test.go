package analysis

import (
	"strings"
	"testing"
)

func lintOne(t *testing.T, src, rule string) []Diagnostic {
	t.Helper()
	var out []Diagnostic
	for _, d := range Lint(parse(t, src)) {
		if d.Rule == rule {
			out = append(out, d)
		}
	}
	return out
}

func TestLintLaunderedRepairable(t *testing.T) {
	diags := lintOne(t, `
func @f() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %i = ptrtoint %p
  %eight = const 8
  %j = add %i, %eight
  %q = inttoptr %j
  %v = load.8 %q
  ret %v
}
`, RuleLaunderedPointer)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly one laundered-pointer", diags)
	}
	if !strings.Contains(diags[0].Msg, "-restore-intptr") || strings.Contains(diags[0].Msg, "cannot repair") {
		t.Errorf("ptrtoint+const origin is repairable; message must point at -restore-intptr: %q", diags[0].Msg)
	}
}

func TestLintLaunderedUnrepairable(t *testing.T) {
	diags := lintOne(t, `
func @f(%p) {
entry:
  %v = load.8 %p
  %q = inttoptr %v
  %w = load.8 %q
  ret %w
}
`, RuleLaunderedPointer)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly one laundered-pointer", diags)
	}
	if !strings.Contains(diags[0].Msg, "cannot repair") {
		t.Errorf("loaded integer has no pointer origin; message must say so: %q", diags[0].Msg)
	}
}

func TestLintLaunderedThroughGep(t *testing.T) {
	// The dereference is one gep away from the inttoptr; the chain must
	// still be traced back to the laundering site.
	diags := lintOne(t, `
func @f(%p) {
entry:
  %i = ptrtoint %p
  %q = inttoptr %i
  %r = gep %q, 16
  %v = load.8 %r
  ret %v
}
`, RuleLaunderedPointer)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one finding at the inttoptr", diags)
	}
	if !strings.Contains(diags[0].Instr, "inttoptr") {
		t.Errorf("diagnostic must anchor at the laundering site, got %q", diags[0].Instr)
	}
}

func TestLintLaunderedNotDereferenced(t *testing.T) {
	// An integer-born pointer that is never dereferenced is not flagged.
	diags := lintOne(t, `
func @f(%p) {
entry:
  %i = ptrtoint %p
  %q = inttoptr %i
  ret %q
}
`, RuleLaunderedPointer)
	if len(diags) != 0 {
		t.Errorf("undereferenced laundering flagged: %v", diags)
	}
}

func TestLintUnmaskedExternal(t *testing.T) {
	diags := lintOne(t, `
extern @consume
func @f() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  callext @consume, %p
  ret
}
`, RuleUnmaskedExternal)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one unmasked-external-call", diags)
	}
	if !strings.Contains(diags[0].Msg, "spp.cleantag.ext") || !strings.Contains(diags[0].Msg, "@consume") {
		t.Errorf("message must name the callee and the masking hook: %q", diags[0].Msg)
	}
}

func TestLintMaskedExternalClean(t *testing.T) {
	diags := lintOne(t, `
extern @consume
func @f() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %m = spp.cleantag.ext %p
  callext @consume, %m
  ret
}
`, RuleUnmaskedExternal)
	if len(diags) != 0 {
		t.Errorf("masked argument flagged: %v", diags)
	}
}

func TestLintExternalVolatileArgClean(t *testing.T) {
	// Volatile pointers carry no tag; passing them outside is fine.
	diags := lintOne(t, `
extern @consume
func @f() {
entry:
  %s = const 64
  %m = malloc %s
  callext @consume, %m
  ret
}
`, RuleUnmaskedExternal)
	if len(diags) != 0 {
		t.Errorf("untagged volatile argument flagged: %v", diags)
	}
}

func TestLintUnflushedStore(t *testing.T) {
	diags := lintOne(t, `
func @f(%c) {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %one = const 1
  store.8 %p, %one
  condbr %c, doflush, skip
doflush:
  flush %p
  fence
  br done
skip:
  br done
done:
  ret
}
`, RuleUnflushedStore)
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want one unflushed-pm-store (the skip path)", diags)
	}
	if !strings.Contains(diags[0].Msg, "every path") {
		t.Errorf("message must explain the path condition: %q", diags[0].Msg)
	}
}

func TestLintFlushedStoreClean(t *testing.T) {
	// flush+fence of the same object on the single path; the store
	// address is a gep off the flushed root, which must resolve.
	diags := lintOne(t, `
func @f() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %one = const 1
  %q = gep %p, 8
  store.8 %q, %one
  flush %p
  fence
  ret
}
`, RuleUnflushedStore)
	if len(diags) != 0 {
		t.Errorf("flushed store flagged: %v", diags)
	}
}

func TestLintFlushWithoutFence(t *testing.T) {
	diags := lintOne(t, `
func @f() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %one = const 1
  store.8 %p, %one
  flush %p
  ret
}
`, RuleUnflushedStore)
	if len(diags) != 1 {
		t.Errorf("flush without trailing fence must still be flagged: %v", diags)
	}
}

func TestLintNoFlushDelegates(t *testing.T) {
	// A function that never flushes delegates durability to its caller
	// and is not held to the flush+fence rule.
	diags := lintOne(t, `
func @f() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %one = const 1
  store.8 %p, %one
  ret
}
`, RuleUnflushedStore)
	if len(diags) != 0 {
		t.Errorf("flush-free function flagged: %v", diags)
	}
}

func TestFormatDiagnostics(t *testing.T) {
	out := FormatDiagnostics([]Diagnostic{{
		Rule: RuleUnmaskedExternal, Func: "f", Block: "entry",
		Instr: "callext @x, %p", Msg: "boom",
	}})
	if !strings.Contains(out, "@f/entry") || !strings.Contains(out, RuleUnmaskedExternal) {
		t.Errorf("formatted output missing location or rule: %q", out)
	}
}
