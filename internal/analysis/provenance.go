package analysis

import "repro/internal/ir"

// Class is a pointer-provenance classification (§IV-E "Pointer
// tracking"): what the static analysis knows about where a pointer
// value came from.
type Class int

// Classes. Unknown instruments with the generic hooks (run-time PM-bit
// test), Volatile prunes instrumentation, Persistent uses the _direct
// hook variants.
const (
	Unknown Class = iota
	Volatile
	Persistent
)

func (c Class) String() string {
	switch c {
	case Volatile:
		return "volatile"
	case Persistent:
		return "persistent"
	default:
		return "unknown"
	}
}

// meet is the class lattice meet: agreeing classes survive, conflicts
// fall to Unknown.
func meet(a, b Class) Class {
	if a == b {
		return a
	}
	return Unknown
}

// Provenance is the result of pointer-provenance analysis over a
// module.
type Provenance struct {
	// Classes maps function name → value name → class.
	Classes map[string]map[string]Class
	// Returns maps function name → the class of its return value,
	// met over all ret sites.
	Returns map[string]Class
	// Escapes maps function name → value name → true when the value
	// flows somewhere the analysis cannot follow: stored to memory,
	// passed to an external callee or a memory intrinsic, converted to
	// an integer, or returned.
	Escapes map[string]map[string]bool
	// Reclassified counts values whose class the interprocedural pass
	// refined from Unknown (relative to the intraprocedural result).
	Reclassified int
}

// PointerProvenance classifies every value of every function. With
// interproc it additionally propagates classes across call edges —
// parameter classes are met over all call sites (§IV-E: a parameter
// keeps a class only when every caller agrees), and call results take
// the callee's return class — iterating the call graph to a fixpoint.
func PointerProvenance(m *ir.Module, interproc bool) *Provenance {
	p := &Provenance{
		Classes: make(map[string]map[string]Class, len(m.Funcs)),
		Returns: make(map[string]Class, len(m.Funcs)),
		Escapes: make(map[string]map[string]bool, len(m.Funcs)),
	}
	for _, f := range m.Funcs {
		if f.External {
			continue
		}
		p.Classes[f.Name] = ClassifyFunc(f, nil, nil)
		p.Escapes[f.Name] = escapingValues(f)
	}
	intra := p.Classes
	for _, f := range m.Funcs {
		if !f.External {
			p.Returns[f.Name] = returnClass(f, p.Classes[f.Name])
		}
	}
	if !interproc {
		return p
	}

	classes := make(map[string]map[string]Class, len(intra))
	for k, v := range intra {
		classes[k] = v
	}
	for pass := 0; pass < 8; pass++ {
		changed := false
		// Parameter classes from every call site.
		paramClasses := make(map[string][]Class)
		for _, f := range m.Funcs {
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Op != ir.Call {
						continue
					}
					callee := m.Func(in.Sym)
					if callee == nil || callee.External {
						continue
					}
					cur, ok := paramClasses[in.Sym]
					if !ok {
						cur = make([]Class, len(callee.Params))
						for i := range cur {
							cur[i] = -1 // unseen
						}
						paramClasses[in.Sym] = cur
					}
					for i := range callee.Params {
						argClass := Unknown
						if i < len(in.Args) {
							argClass = classes[f.Name][in.Args[i]]
						}
						if cur[i] == -1 {
							cur[i] = argClass
						} else {
							cur[i] = meet(cur[i], argClass)
						}
					}
				}
			}
		}
		for _, f := range m.Funcs {
			if f.External {
				continue
			}
			seed := make(map[string]Class)
			if pcs, ok := paramClasses[f.Name]; ok {
				for i, pc := range pcs {
					if pc == Volatile || pc == Persistent {
						seed[f.Params[i]] = pc
					}
				}
			}
			next := ClassifyFunc(f, seed, p.Returns)
			if !sameClasses(classes[f.Name], next) {
				classes[f.Name] = next
				changed = true
			}
			if rc := returnClass(f, next); rc != p.Returns[f.Name] {
				p.Returns[f.Name] = rc
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	p.Classes = classes
	for name, cls := range classes {
		base := intra[name]
		for v, c := range cls {
			if c != Unknown && base[v] == Unknown {
				p.Reclassified++
			}
		}
	}
	return p
}

// returnClass meets the classes of every ret operand; a bare ret (no
// value) contributes Volatile, since there is no pointer to protect.
func returnClass(f *ir.Func, classes map[string]Class) Class {
	rc := Class(-1)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op != ir.Ret {
				continue
			}
			c := Volatile
			if len(in.Args) > 0 {
				c = classes[in.Args[0]]
			}
			if rc == -1 {
				rc = c
			} else {
				rc = meet(rc, c)
			}
		}
	}
	if rc == -1 {
		return Unknown
	}
	return rc
}

// ClassifyFunc assigns classes to every value of f, seeded with
// parameter classes (from call sites) and callee return classes.
// Iterates to a fixpoint so gep chains across blocks settle.
func ClassifyFunc(f *ir.Func, seed map[string]Class, returns map[string]Class) map[string]Class {
	c := make(map[string]Class)
	for _, p := range f.Params {
		if cl, ok := seed[p]; ok {
			c[p] = cl
		} else {
			c[p] = Unknown
		}
	}
	for pass := 0; pass < 8; pass++ {
		changed := false
		set := func(name string, cl Class) {
			if name == "" {
				return
			}
			if old, ok := c[name]; !ok || old != cl {
				c[name] = cl
				changed = true
			}
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.Const, ir.Add, ir.Sub, ir.Mul, ir.ICmpLt, ir.ICmpEq, ir.PtrToInt:
					set(in.Dst, Volatile) // integers carry no tag
				case ir.Malloc:
					set(in.Dst, Volatile)
				case ir.CallExt:
					// Pointers returned by external functions are
					// untagged: treated as volatile (§V-C).
					set(in.Dst, Volatile)
				case ir.IntToPtr:
					// An integer-born pointer has no tag; SPP cannot
					// protect it (§IV-G) and skips its hooks.
					set(in.Dst, Volatile)
				case ir.PmemAlloc:
					set(in.Dst, Persistent) // oid handle
				case ir.PmemDirect:
					set(in.Dst, Persistent)
				case ir.Gep:
					set(in.Dst, c[in.Args[0]])
				case ir.Call:
					cl := Unknown
					if returns != nil {
						if rc, ok := returns[in.Sym]; ok {
							cl = rc
						}
					}
					if cl != Unknown {
						set(in.Dst, cl)
					} else if _, ok := c[in.Dst]; !ok && in.Dst != "" {
						set(in.Dst, Unknown)
					}
				case ir.Load:
					if _, ok := c[in.Dst]; !ok && in.Dst != "" {
						set(in.Dst, Unknown)
					}
				case ir.SppCheckBound, ir.SppUpdateTag, ir.SppCleanTag, ir.SppCleanExternal, ir.SppMemIntrCheck:
					set(in.Dst, c[in.Args[0]])
				}
			}
		}
		if !changed {
			break
		}
	}
	return c
}

func sameClasses(a, b map[string]Class) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// escapingValues marks values the intraprocedural analysis loses track
// of: stored to memory as data, passed to calls, external callees or
// memory intrinsics, converted to integers, or returned.
func escapingValues(f *ir.Func) map[string]bool {
	esc := make(map[string]bool)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.Store:
				if len(in.Args) == 2 {
					esc[in.Args[1]] = true
				}
			case ir.Call, ir.CallExt, ir.MemCpy, ir.MemSet, ir.StrCpy:
				for _, a := range in.Args {
					esc[a] = true
				}
			case ir.PtrToInt:
				esc[in.Args[0]] = true
			case ir.Ret:
				for _, a := range in.Args {
					esc[a] = true
				}
			}
		}
	}
	return esc
}
