package analysis

import (
	"testing"

	"repro/internal/ir"
)

// canonicalLoop is the slot-IV shape the loop tier recognizes: init in
// the preheader path, the whole increment quadruple in the latch.
const canonicalLoop = `
func @f() {
entry:
  %eight = const 8
  %slot = malloc %eight
  %zero = const 0
  store.8 %slot, %zero
  br loop
loop:
  %i = load.8 %slot
  %one = const 1
  %i2 = add %i, %one
  store.8 %slot, %i2
  %lim = const 100
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  ret %i2
}
`

func loopsOf(t *testing.T, src string) (*LoopInfo, *CFG) {
	t.Helper()
	f := parse(t, src).Funcs[0]
	c := BuildCFG(f)
	return FindLoops(c, Dominators(c)), c
}

func TestFindLoopsShape(t *testing.T) {
	li, c := loopsOf(t, canonicalLoop)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	l := li.Loops[0]
	loop, entry, done := c.Index["loop"], c.Index["entry"], c.Index["done"]
	if l.Header != loop {
		t.Errorf("header = %d, want %d", l.Header, loop)
	}
	if !l.Contains(loop) || l.Contains(entry) || l.Contains(done) {
		t.Errorf("body = %v", l.Blocks)
	}
	if len(l.Latches) != 1 || l.Latches[0] != loop {
		t.Errorf("latches = %v", l.Latches)
	}
	if len(l.Exiting) != 1 || l.Exiting[0] != loop {
		t.Errorf("exiting = %v", l.Exiting)
	}
	if l.Preheader != entry {
		t.Errorf("preheader = %d, want %d", l.Preheader, entry)
	}
}

// A conditional branch into the header is not a preheader: a hoisted
// check would run on the loop-skipping path too.
func TestNoPreheaderOnConditionalEntry(t *testing.T) {
	li, _ := loopsOf(t, `
func @f(%n) {
entry:
  %eight = const 8
  %slot = malloc %eight
  %zero = const 0
  store.8 %slot, %zero
  %go = icmp.lt %zero, %n
  condbr %go, loop, done
loop:
  %i = load.8 %slot
  %one = const 1
  %i2 = add %i, %one
  store.8 %slot, %i2
  %lim = const 100
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  ret %n
}
`)
	if len(li.Loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(li.Loops))
	}
	if li.Loops[0].Preheader != -1 {
		t.Errorf("preheader = %d, want -1 (conditional entry)", li.Loops[0].Preheader)
	}
}

func TestIndVarRecognition(t *testing.T) {
	li, _ := loopsOf(t, canonicalLoop)
	ivs := li.IndVars(li.Loops[0])
	if len(ivs) != 1 {
		t.Fatalf("ivs = %v, want 1", ivs)
	}
	iv := ivs[0]
	if iv.Init != 0 || iv.Step != 1 || iv.Limit != 100 {
		t.Errorf("init/step/limit = %d/%d/%d, want 0/1/100", iv.Init, iv.Step, iv.Limit)
	}
	// Header-entry values are 0,1,...,99: MaxVal is 99.
	if iv.MaxVal != 99 {
		t.Errorf("MaxVal = %d, want 99", iv.MaxVal)
	}
	// The single load precedes the increment store, so it observes at
	// most MaxVal.
	if len(iv.LoadHi) != 1 {
		t.Fatalf("LoadHi = %v, want one load", iv.LoadHi)
	}
	for _, hi := range iv.LoadHi {
		if hi != 99 {
			t.Errorf("LoadHi = %d, want 99", hi)
		}
	}
}

func TestIndVarStride(t *testing.T) {
	li, _ := loopsOf(t, `
func @f() {
entry:
  %eight = const 8
  %slot = malloc %eight
  %four = const 4
  store.8 %slot, %four
  br loop
loop:
  %i = load.8 %slot
  %step = const 3
  %i2 = add %i, %step
  store.8 %slot, %i2
  %lim = const 20
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  ret %i2
}
`)
	ivs := li.IndVars(li.Loops[0])
	if len(ivs) != 1 {
		t.Fatalf("ivs = %v, want 1", ivs)
	}
	// Values at header entry: 4,7,10,13,16,19 — 4 + floor((20-1-4)/3)*3 = 19.
	if ivs[0].MaxVal != 19 {
		t.Errorf("MaxVal = %d, want 19", ivs[0].MaxVal)
	}
}

// Negative recognition cases: any deviation from the audited canonical
// shape must yield no induction variable, never a wrong bound.
func TestIndVarRejections(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"slot escapes via call", `
func @g(%p) {
entry:
  ret
}
func @f() {
entry:
  %eight = const 8
  %slot = malloc %eight
  %zero = const 0
  store.8 %slot, %zero
  call @g, %slot
  br loop
loop:
  %i = load.8 %slot
  %one = const 1
  %i2 = add %i, %one
  store.8 %slot, %i2
  %lim = const 100
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  ret %i2
}
`},
		{"second in-loop store", `
func @f() {
entry:
  %eight = const 8
  %slot = malloc %eight
  %zero = const 0
  store.8 %slot, %zero
  br loop
loop:
  %i = load.8 %slot
  store.8 %slot, %i
  %one = const 1
  %i2 = add %i, %one
  store.8 %slot, %i2
  %lim = const 100
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  ret %i2
}
`},
		{"non-constant limit", `
func @f(%n) {
entry:
  %eight = const 8
  %slot = malloc %eight
  %zero = const 0
  store.8 %slot, %zero
  br loop
loop:
  %i = load.8 %slot
  %one = const 1
  %i2 = add %i, %one
  store.8 %slot, %i2
  %c = icmp.lt %i2, %n
  condbr %c, loop, done
done:
  ret %i2
}
`},
		{"negative step", `
func @f() {
entry:
  %eight = const 8
  %slot = malloc %eight
  %hund = const 100
  store.8 %slot, %hund
  br loop
loop:
  %i = load.8 %slot
  %step = const -1
  %i2 = add %i, %step
  store.8 %slot, %i2
  %lim = const 200
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  ret %i2
}
`},
		{"no init store", `
func @f() {
entry:
  %eight = const 8
  %slot = malloc %eight
  br loop
loop:
  %i = load.8 %slot
  %one = const 1
  %i2 = add %i, %one
  store.8 %slot, %i2
  %lim = const 100
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  ret %i2
}
`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := parse(t, tc.src)
			f := m.Funcs[len(m.Funcs)-1] // @f is last when a helper precedes it
			c := BuildCFG(f)
			li := FindLoops(c, Dominators(c))
			if len(li.Loops) != 1 {
				t.Fatalf("loops = %d, want 1", len(li.Loops))
			}
			if ivs := li.IndVars(li.Loops[0]); len(ivs) != 0 {
				t.Errorf("recognized an IV from a non-canonical loop: %+v", ivs)
			}
		})
	}
}

// The IV-aware range tier proves an in-bounds monotone access pattern
// that the plain tier cannot: the loop body load %i is bounded by
// [0, 99], so %off = %i*8 is within the 800-byte object.
func TestInferRangesLoopTier(t *testing.T) {
	src := `
func @f() {
entry:
  %size = const 800
  %oid = pmalloc %size
  %p = direct %oid
  %eight = const 8
  %slot = malloc %eight
  %zero = const 0
  store.8 %slot, %zero
  br loop
loop:
  %i = load.8 %slot
  %c8 = const 8
  %off = mul %i, %c8
  %q = gep %p, %off
  store.8 %q, %i
  %one = const 1
  %i2 = add %i, %one
  store.8 %slot, %i2
  %lim = const 100
  %c = icmp.lt %i2, %lim
  condbr %c, loop, done
done:
  ret %i2
}
`
	f := parse(t, src).Funcs[0]
	with := InferRangesOpt(f, RangeOptions{Loops: true})
	without := InferRangesOpt(f, RangeOptions{Loops: false})
	var target *ir.Instr
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.Store && in.Args[0] == "%q" {
				target = in
			}
		}
	}
	if target == nil {
		t.Fatal("loop store not found")
	}
	if !with.SafeAccess(target) {
		t.Errorf("loop tier must prove the IV-indexed store in bounds; fact = %+v",
			with.AddrFact[target])
	}
	if without.SafeAccess(target) {
		t.Error("plain tier proved an IV-indexed store it cannot bound — unsound transfer somewhere")
	}
}
