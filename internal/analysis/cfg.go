// Package analysis is a reusable static-analysis framework over the
// mini-IR: control-flow graphs, dominator trees and a generic
// forward/backward dataflow solver, plus the three clients the SPP
// pass consumes — interprocedural pointer provenance (§IV-E pointer
// tracking, extended across call edges), value-range bound proving
// (elides __spp_checkbound/__spp_updatetag hooks for accesses that
// provably stay in bounds) and an IR safety linter for tag-unsafe
// patterns the instrumentation cannot repair.
package analysis

import "repro/internal/ir"

// CFG is the control-flow graph of one function. Blocks are addressed
// by their index in Func.Blocks; block 0 is the entry.
type CFG struct {
	Func  *ir.Func
	Succs [][]int
	Preds [][]int
	// Index maps block names to indices.
	Index map[string]int
}

// BuildCFG constructs the CFG of f. External functions (no blocks)
// yield an empty graph.
func BuildCFG(f *ir.Func) *CFG {
	c := &CFG{
		Func:  f,
		Succs: make([][]int, len(f.Blocks)),
		Preds: make([][]int, len(f.Blocks)),
		Index: make(map[string]int, len(f.Blocks)),
	}
	for i, blk := range f.Blocks {
		c.Index[blk.Name] = i
	}
	for i, blk := range f.Blocks {
		if len(blk.Instrs) == 0 {
			continue
		}
		term := blk.Instrs[len(blk.Instrs)-1]
		switch term.Op {
		case ir.Br:
			c.addEdge(i, c.Index[term.Sym])
		case ir.CondBr:
			c.addEdge(i, c.Index[term.Sym])
			if c.Index[term.SymElse] != c.Index[term.Sym] {
				c.addEdge(i, c.Index[term.SymElse])
			}
		}
	}
	return c
}

func (c *CFG) addEdge(from, to int) {
	c.Succs[from] = append(c.Succs[from], to)
	c.Preds[to] = append(c.Preds[to], from)
}

// Exits returns the indices of blocks ending in Ret.
func (c *CFG) Exits() []int {
	var out []int
	for i, blk := range c.Func.Blocks {
		if len(blk.Instrs) == 0 {
			continue
		}
		if blk.Instrs[len(blk.Instrs)-1].Op == ir.Ret {
			out = append(out, i)
		}
	}
	return out
}

// PostOrder returns a DFS postorder over blocks reachable from entry.
func (c *CFG) PostOrder() []int {
	order := make([]int, 0, len(c.Succs))
	seen := make([]bool, len(c.Succs))
	var walk func(int)
	walk = func(n int) {
		seen[n] = true
		for _, s := range c.Succs[n] {
			if !seen[s] {
				walk(s)
			}
		}
		order = append(order, n)
	}
	if len(c.Succs) > 0 {
		walk(0)
	}
	return order
}

// RPO returns the reverse postorder — the canonical iteration order
// for forward dataflow problems.
func (c *CFG) RPO() []int {
	po := c.PostOrder()
	out := make([]int, len(po))
	for i, n := range po {
		out[len(po)-1-i] = n
	}
	return out
}
