package analysis

import (
	"testing"

	"repro/internal/ir"
)

func parse(t *testing.T, src string) *ir.Module {
	t.Helper()
	m, err := ir.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return m
}

const diamond = `
func @f(%c) {
entry:
  condbr %c, left, right
left:
  br merge
right:
  br merge
merge:
  ret
}
`

func TestCFG(t *testing.T) {
	m := parse(t, diamond)
	c := BuildCFG(m.Funcs[0])
	entry, left, right, merge := c.Index["entry"], c.Index["left"], c.Index["right"], c.Index["merge"]
	if len(c.Succs[entry]) != 2 {
		t.Errorf("entry succs = %v", c.Succs[entry])
	}
	if len(c.Preds[merge]) != 2 {
		t.Errorf("merge preds = %v", c.Preds[merge])
	}
	if ex := c.Exits(); len(ex) != 1 || ex[0] != merge {
		t.Errorf("Exits = %v, want [%d]", ex, merge)
	}
	rpo := c.RPO()
	if rpo[0] != entry || rpo[len(rpo)-1] != merge {
		t.Errorf("RPO = %v: want entry first, merge last", rpo)
	}
	po := c.PostOrder()
	if po[len(po)-1] != entry {
		t.Errorf("PostOrder = %v: want entry last", po)
	}
	_ = left
	_ = right
}

func TestCFGCondBrSameTarget(t *testing.T) {
	m := parse(t, `
func @f(%c) {
entry:
  condbr %c, next, next
next:
  ret
}
`)
	c := BuildCFG(m.Funcs[0])
	if n := len(c.Succs[0]); n != 1 {
		t.Errorf("duplicate edge not collapsed: %d succs", n)
	}
}

func TestDominators(t *testing.T) {
	m := parse(t, diamond)
	c := BuildCFG(m.Funcs[0])
	d := Dominators(c)
	entry, left, right, merge := c.Index["entry"], c.Index["left"], c.Index["right"], c.Index["merge"]
	if d.Idom[left] != entry || d.Idom[right] != entry {
		t.Errorf("Idom[left]=%d Idom[right]=%d, want %d", d.Idom[left], d.Idom[right], entry)
	}
	if d.Idom[merge] != entry {
		t.Errorf("Idom[merge] = %d, want %d (branch sides do not dominate the join)", d.Idom[merge], entry)
	}
	if !d.Dominates(entry, merge) || !d.Dominates(merge, merge) {
		t.Error("entry and merge must dominate merge")
	}
	if d.Dominates(left, merge) || d.Dominates(left, right) {
		t.Error("left dominates neither merge nor right")
	}
}

func TestDominatorsLoop(t *testing.T) {
	m := parse(t, `
func @f(%c) {
entry:
  br head
head:
  condbr %c, body, done
body:
  br head
done:
  ret
}
`)
	c := BuildCFG(m.Funcs[0])
	d := Dominators(c)
	head, body, done := c.Index["head"], c.Index["body"], c.Index["done"]
	if d.Idom[body] != head || d.Idom[done] != head {
		t.Errorf("Idom[body]=%d Idom[done]=%d, want %d", d.Idom[body], d.Idom[done], head)
	}
	if !d.Dominates(head, body) || d.Dominates(body, done) {
		t.Error("head dominates body; the loop body does not dominate the exit")
	}
}

func TestInferRangesStraightLine(t *testing.T) {
	m := parse(t, `
func @f() {
entry:
  %sz = const 256
  %p = malloc %sz
  %q = gep %p, 248
  %v = load.8 %q
  %r = gep %p, 249
  %w = load.8 %r
  %x = add %v, %w
  ret %x
}
`)
	f := m.Funcs[0]
	ri := InferRanges(f)
	if !ri.Converged {
		t.Fatal("straight-line function did not converge")
	}
	if got := ri.RootSize["%p"]; got != 256 {
		t.Fatalf("RootSize[%%p] = %d, want 256", got)
	}
	loads := findAll(f, ir.Load)
	if len(loads) != 2 {
		t.Fatalf("want 2 loads, got %d", len(loads))
	}
	if !ri.SafeAccess(loads[0]) {
		t.Error("load at offset 248 of a 256-byte object (8 bytes) must be provably safe")
	}
	if ri.SafeAccess(loads[1]) {
		t.Error("load at offset 249 of a 256-byte object (8 bytes) crosses the bound; must not be proven safe")
	}
}

func TestInferRangesBranch(t *testing.T) {
	// Offsets from the two sides hull at the join: [8,8] ⊔ [240,240]
	// = [8,240]; the 8-byte access at the hull's top stays inside 256.
	m := parse(t, `
func @f(%c) {
entry:
  %sz = const 256
  %p = malloc %sz
  condbr %c, lo, hi
lo:
  %o1 = const 8
  br join
hi:
  %o1 = const 240
  br join
join:
  %q = gep %p, %o1
  %v = load.8 %q
  ret %v
}
`)
	f := m.Funcs[0]
	ri := InferRanges(f)
	if !ri.Converged {
		t.Fatal("did not converge")
	}
	loads := findAll(f, ir.Load)
	// %o1 is defined twice, so the def-once rule drops it: the access
	// must NOT be proven (conservative but sound under re-definition).
	if ri.SafeAccess(loads[0]) {
		t.Error("multi-defined offset must not be tracked")
	}
}

func TestInferRangesJoinHull(t *testing.T) {
	m := parse(t, `
func @f(%c) {
entry:
  %sz = const 256
  %p = malloc %sz
  condbr %c, lo, hi
lo:
  %q1 = gep %p, 8
  br join
hi:
  %q2 = gep %p, 240
  br join
join:
  %o = const 0
  condbr %c, uselo, usehi
uselo:
  %v1 = load.8 %q1
  ret %v1
usehi:
  %v2 = load.8 %q2
  ret %v2
}
`)
	f := m.Funcs[0]
	ri := InferRanges(f)
	if !ri.Converged {
		t.Fatal("did not converge")
	}
	for i, ld := range findAll(f, ir.Load) {
		if !ri.SafeAccess(ld) {
			t.Errorf("load %d: single-def gep facts survive the join; must be provably safe", i)
		}
	}
}

func TestInferRangesLoop(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 80
  %oid = pmalloc %s
  %p = direct %oid
  %eight = const 8
  %islot = malloc %eight
  %zero = const 0
  store.8 %islot, %zero
  br loop
loop: !loop.bound 10
  %i = load.8 %islot
  %c8 = const 8
  %off = mul %i, %c8
  %q = gep %p, %off
  store.8 %q, %i
  %one = const 1
  %i2 = add %i, %one
  store.8 %islot, %i2
  %n = const 10
  %c = icmp.lt %i2, %n
  condbr %c, loop, done
done:
  ret
}
`)
	f := m.Funcs[0]
	ri := InferRanges(f)
	if !ri.Converged {
		t.Fatal("loop did not converge")
	}
	if got := ri.RootSize["%p"]; got != 80 {
		t.Fatalf("RootSize[%%p] = %d (pmalloc size must flow through direct)", got)
	}
	var loopStore *ir.Instr
	for _, in := range f.Block("loop").Instrs {
		if in.Op == ir.Store && in.Args[0] == "%q" {
			loopStore = in
		}
	}
	if loopStore == nil {
		t.Fatal("loop store not found")
	}
	fact, ok := ri.AddrFact[loopStore]
	if !ok {
		t.Fatal("no fact for the loop store address")
	}
	if fact.Off.Lo != 0 || fact.Off.Hi != 72 {
		t.Errorf("loop offset interval = [%d,%d], want [0,72]", fact.Off.Lo, fact.Off.Hi)
	}
	if !ri.SafeAccess(loopStore) {
		t.Error("i*8 for i in [0,10) against an 80-byte object must be provably safe")
	}
}

func TestInferRangesUnknownSize(t *testing.T) {
	m := parse(t, `
func @f(%n) {
entry:
  %p = malloc %n
  %v = load.8 %p
  ret %v
}
`)
	ri := InferRanges(m.Funcs[0])
	if ri.SafeAccess(findAll(m.Funcs[0], ir.Load)[0]) {
		t.Error("access to dynamically sized object must not be proven safe")
	}
}

func TestPointerProvenanceInterproc(t *testing.T) {
	m := parse(t, `
func @main() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %r = call @helper, %p
  %v = load.8 %r
  ret %v
}
func @helper(%q) {
entry:
  %t = gep %q, 8
  ret %t
}
`)
	intra := PointerProvenance(m, false)
	if got := intra.Classes["helper"]["%q"]; got != Unknown {
		t.Fatalf("intra: helper %%q = %v, want unknown", got)
	}
	inter := PointerProvenance(m, true)
	if got := inter.Classes["helper"]["%q"]; got != Persistent {
		t.Errorf("interproc: helper %%q = %v, want persistent (every caller passes PM)", got)
	}
	if got := inter.Returns["helper"]; got != Persistent {
		t.Errorf("Returns[helper] = %v, want persistent", got)
	}
	if got := inter.Classes["main"]["%r"]; got != Persistent {
		t.Errorf("call result %%r = %v, want persistent (callee return class)", got)
	}
	if inter.Reclassified < 3 {
		t.Errorf("Reclassified = %d, want >= 3 (%%q, %%t, %%r)", inter.Reclassified)
	}
}

func TestPointerProvenanceConflict(t *testing.T) {
	m := parse(t, `
func @a() {
entry:
  %s = const 64
  %oid = pmalloc %s
  %p = direct %oid
  %r = call @helper, %p
  ret
}
func @b() {
entry:
  %s = const 64
  %m = malloc %s
  %r = call @helper, %m
  ret
}
func @helper(%q) {
entry:
  %v = load.8 %q
  ret %v
}
`)
	inter := PointerProvenance(m, true)
	if got := inter.Classes["helper"]["%q"]; got != Unknown {
		t.Errorf("helper %%q = %v, want unknown (callers disagree: persistent vs volatile)", got)
	}
}

func TestEscapes(t *testing.T) {
	m := parse(t, `
func @f(%slot) {
entry:
  %s = const 64
  %p = malloc %s
  store.8 %slot, %p
  %i = ptrtoint %p
  ret %i
}
`)
	prov := PointerProvenance(m, false)
	esc := prov.Escapes["f"]
	if !esc["%p"] {
		t.Error("the stored and int-converted pointer must escape")
	}
	if esc["%s"] {
		t.Error("the size constant only feeds malloc; must not escape")
	}
}

func findAll(f *ir.Func, op ir.Op) []*ir.Instr {
	var out []*ir.Instr
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == op {
				out = append(out, in)
			}
		}
	}
	return out
}
