package analysis

import "testing"

func persistOne(t *testing.T, src string) *PersistInfo {
	t.Helper()
	info := AnalyzePersistence(parse(t, src).Funcs[0])
	if !info.Converged {
		t.Fatal("persistence dataflow did not converge")
	}
	return info
}

func countRule(info *PersistInfo, rule string) int {
	n := 0
	for _, d := range info.Diags {
		if d.Rule == rule {
			n++
		}
	}
	return n
}

func TestSameLineAllShifts(t *testing.T) {
	cases := []struct {
		o1, o2 int64
		want   bool
	}{
		{0, 0, true},    // identical
		{16, 16, true},  // identical, nonzero
		{0, 8, false},   // residue 56: 56/64=0 but 64/64=1
		{0, 63, false},  // same line only at residue 0
		{64, 64, true},  // identical on the next line
		{0, 64, false},  // different lines at every residue
		{-8, -8, false}, // negative offsets: refuse to prove
		{0, -8, false},
	}
	for _, tc := range cases {
		if got := sameLineAllShifts(tc.o1, tc.o2); got != tc.want {
			t.Errorf("sameLineAllShifts(%d, %d) = %v, want %v", tc.o1, tc.o2, got, tc.want)
		}
	}
}

func TestMayShareLine(t *testing.T) {
	if !mayShareLine(0, 63) || !mayShareLine(63, 0) {
		t.Error("offsets 63 apart may share a line under some alignment")
	}
	if mayShareLine(0, 64) {
		t.Error("offsets 64 apart never share a line")
	}
}

func TestDoubleFlushDetected(t *testing.T) {
	info := persistOne(t, `
func @f(%p) {
entry:
  %v = const 1
  store.8 %p, %v
  flush %p
  flush %p
  fence
  ret %v
}
`)
	if len(info.RedundantFlushes) != 1 {
		t.Fatalf("redundant flushes = %d, want 1", len(info.RedundantFlushes))
	}
	if countRule(info, RuleDoubleFlush) != 1 {
		t.Errorf("diags = %v, want one double-flush", info.Diags)
	}
}

// The MUST set survives a join only when both arms flushed the line.
func TestDoubleFlushAcrossJoin(t *testing.T) {
	both := persistOne(t, `
func @f(%p, %c) {
entry:
  %v = const 1
  store.8 %p, %v
  condbr %c, left, right
left:
  flush %p
  br join
right:
  flush %p
  br join
join:
  flush %p
  fence
  ret %v
}
`)
	if len(both.RedundantFlushes) != 1 {
		t.Errorf("both arms flush: redundant = %d, want 1", len(both.RedundantFlushes))
	}
	oneArm := persistOne(t, `
func @f(%p, %c) {
entry:
  %v = const 1
  store.8 %p, %v
  condbr %c, left, join
left:
  flush %p
  br join
join:
  flush %p
  fence
  ret %v
}
`)
	if len(oneArm.RedundantFlushes) != 0 {
		t.Errorf("one arm flushes: redundant = %d, want 0 (intersection must drop it)",
			len(oneArm.RedundantFlushes))
	}
}

// A store, a fence, or a call between the flushes invalidates the proof.
func TestDoubleFlushKilled(t *testing.T) {
	for _, tc := range []struct{ name, clobber string }{
		{"store", "store.8 %p, %v"},
		{"fence", "fence"},
		{"call", "call @g, %p"},
		{"memset", "memset %p, %v, %v"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			m := parse(t, `
func @g(%q) {
entry:
  ret
}
func @f(%p) {
entry:
  %v = const 1
  store.8 %p, %v
  flush %p
  `+tc.clobber+`
  flush %p
  fence
  ret %v
}
`)
			info := AnalyzePersistence(m.Func("f"))
			if !info.Converged {
				t.Fatal("did not converge")
			}
			if len(info.RedundantFlushes) != 0 {
				t.Errorf("%s between flushes: redundant = %d, want 0", tc.name, len(info.RedundantFlushes))
			}
		})
	}
}

// Geps with constant offsets resolve to exact keys: offset 0 vs 8 can
// straddle a line boundary (residue 56), so no elision; offset 0 vs 0
// through a gep chain is still the same key.
func TestFlushKeyResolution(t *testing.T) {
	straddle := persistOne(t, `
func @f(%p) {
entry:
  %v = const 1
  store.8 %p, %v
  flush %p
  %q = gep %p, 8
  flush %q
  fence
  ret %v
}
`)
	if len(straddle.RedundantFlushes) != 0 {
		t.Error("offsets 0 and 8 are not provably same-line for all alignments")
	}
	chain := persistOne(t, `
func @f(%p) {
entry:
  %v = const 1
  store.8 %p, %v
  flush %p
  %q = gep %p, 0
  flush %q
  fence
  ret %v
}
`)
	if len(chain.RedundantFlushes) != 1 {
		t.Error("gep +0 resolves to the same key; second flush is redundant")
	}
}

func TestFenceNoPendingFlush(t *testing.T) {
	info := persistOne(t, `
func @f(%p) {
entry:
  %v = const 1
  store.8 %p, %v
  flush %p
  fence
  fence
  ret %v
}
`)
	if countRule(info, RuleFenceNoFlush) != 1 {
		t.Errorf("diags = %v, want one fence-no-pending-flush (the second fence)", info.Diags)
	}
	// A call may flush: the conservative bit suppresses the diagnostic.
	m := parse(t, `
func @g(%q) {
entry:
  ret
}
func @f(%p) {
entry:
  %v = const 1
  flush %p
  fence
  call @g, %p
  fence
  ret %v
}
`)
	quiet := AnalyzePersistence(m.Func("f"))
	if countRule(quiet, RuleFenceNoFlush) != 0 {
		t.Errorf("a call may flush; fence after call must not be flagged: %v", quiet.Diags)
	}
}

func TestStoreAfterFlushBeforeFence(t *testing.T) {
	info := persistOne(t, `
func @f(%p) {
entry:
  %v = const 1
  store.8 %p, %v
  flush %p
  store.8 %p, %v
  fence
  ret %v
}
`)
	if countRule(info, RuleStoreAfterFlush) != 1 {
		t.Errorf("diags = %v, want one store-after-flush", info.Diags)
	}
	// After the fence the pending set is empty: no hazard.
	clean := persistOne(t, `
func @f(%p) {
entry:
  %v = const 1
  store.8 %p, %v
  flush %p
  fence
  store.8 %p, %v
  flush %p
  fence
  ret %v
}
`)
	if countRule(clean, RuleStoreAfterFlush) != 0 {
		t.Errorf("store after fence is ordered; diags = %v", clean.Diags)
	}
	// A store to a far offset of the same root cannot share the line.
	far := persistOne(t, `
func @f(%p) {
entry:
  %v = const 1
  store.8 %p, %v
  flush %p
  %q = gep %p, 128
  store.8 %q, %v
  flush %q
  fence
  ret %v
}
`)
	if countRule(far, RuleStoreAfterFlush) != 0 {
		t.Errorf("offset 128 never shares the flushed line; diags = %v", far.Diags)
	}
}

// Redefining a name kills keys rooted at it: the second flush flushes a
// DIFFERENT allocation even though the name matches.
func TestDefKillsKeys(t *testing.T) {
	info := persistOne(t, `
func @f() {
entry:
  %eight = const 8
  %v = const 1
  br a
a:
  %p = malloc %eight
  store.8 %p, %v
  flush %p
  %c = icmp.lt %v, %eight
  condbr %c, a, b
b:
  fence
  ret %v
}
`)
	if len(info.RedundantFlushes) != 0 {
		t.Error("flush of a re-allocated name must not be proven redundant")
	}
}

// Functions with no flush or fence skip the dataflow entirely.
func TestPersistEarlyOut(t *testing.T) {
	info := persistOne(t, `
func @f(%p) {
entry:
  %v = load.8 %p
  ret %v
}
`)
	if len(info.Diags) != 0 || len(info.RedundantFlushes) != 0 {
		t.Errorf("flush-free function produced results: %+v", info)
	}
}
