package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// Persistence-ordering lint rules.
const (
	// RuleDoubleFlush: a cacheline is flushed twice with no intervening
	// store or fence — the second flush is provably redundant.
	RuleDoubleFlush = "double-flush"
	// RuleFenceNoFlush: a fence with no flush on any path since the
	// previous fence orders nothing and signals a misplaced barrier.
	RuleFenceNoFlush = "fence-no-pending-flush"
	// RuleStoreAfterFlush: a store may hit a cacheline that was already
	// flushed but not yet fenced; whether the new value is covered by
	// the pending flush depends on eviction timing.
	RuleStoreAfterFlush = "store-after-flush-before-fence"
)

// cacheline is the flush granularity assumed by the device model.
const cacheline = 64

// flushKey identifies a flushed location exactly: a byte offset from an
// allocation root, resolved through single-def gep/hook chains.
type flushKey struct {
	Root string
	Off  int64
}

// sameLineAllShifts reports whether offsets o1 and o2 from the same
// root land on the same cacheline for EVERY possible alignment of the
// root. Allocator payloads are only 16-byte aligned, so "same line"
// must hold for all 8-byte-aligned base residues to be a proof; this
// is what licenses deleting the second flush.
func sameLineAllShifts(o1, o2 int64) bool {
	if o1 < 0 || o2 < 0 {
		return false // truncating division misorders negative offsets
	}
	for r := int64(0); r < cacheline; r += 8 {
		if (r+o1)/cacheline != (r+o2)/cacheline {
			return false
		}
	}
	return true
}

// mayShareLine over-approximates: could o1 and o2 share a cacheline
// under SOME root alignment? Used for warnings, where erring toward
// reporting is the right bias.
func mayShareLine(o1, o2 int64) bool {
	d := o1 - o2
	if d < 0 {
		d = -d
	}
	return d < cacheline
}

// persistFact is the forward fact of the persistence-ordering pass.
// clean is a MUST set (intersection at joins): lines flushed on every
// path with no store or fence since — a second flush of such a line is
// redundant. pending is a MAY set (union): lines flushed on some path
// since the last fence — a store to one is a reordering hazard.
// anyFlush is a MAY bit driving the fence diagnostic; unlike pending it
// survives unresolvable flushes and calls, so it never fires falsely.
type persistFact struct {
	univ     bool // lattice top: unvisited (identity at meets)
	clean    map[flushKey]bool
	pending  map[flushKey]bool
	anyFlush bool
}

func (pf persistFact) clone() persistFact {
	out := persistFact{univ: pf.univ, anyFlush: pf.anyFlush,
		clean:   make(map[flushKey]bool, len(pf.clean)),
		pending: make(map[flushKey]bool, len(pf.pending))}
	for k := range pf.clean {
		out.clean[k] = true
	}
	for k := range pf.pending {
		out.pending[k] = true
	}
	return out
}

type persistProblem struct {
	cfg     *CFG
	resolve func(string) (flushKey, bool)
}

func (p *persistProblem) Direction() Direction { return Forward }
func (p *persistProblem) Boundary() persistFact {
	return persistFact{clean: map[flushKey]bool{}, pending: map[flushKey]bool{}}
}
func (p *persistProblem) Top() persistFact { return persistFact{univ: true} }

func (p *persistProblem) Meet(a, b persistFact) persistFact {
	if a.univ {
		return b
	}
	if b.univ {
		return a
	}
	out := persistFact{anyFlush: a.anyFlush || b.anyFlush,
		clean: make(map[flushKey]bool), pending: make(map[flushKey]bool)}
	for k := range a.clean {
		if b.clean[k] {
			out.clean[k] = true
		}
	}
	for k := range a.pending {
		out.pending[k] = true
	}
	for k := range b.pending {
		out.pending[k] = true
	}
	return out
}

func (p *persistProblem) Equal(a, b persistFact) bool {
	if a.univ != b.univ || a.anyFlush != b.anyFlush ||
		len(a.clean) != len(b.clean) || len(a.pending) != len(b.pending) {
		return false
	}
	for k := range a.clean {
		if !b.clean[k] {
			return false
		}
	}
	for k := range a.pending {
		if !b.pending[k] {
			return false
		}
	}
	return true
}

func (p *persistProblem) Transfer(b int, in persistFact) persistFact {
	out := in.clone()
	for _, instr := range p.cfg.Func.Blocks[b].Instrs {
		p.step(instr, &out, nil)
	}
	return out
}

// step applies one instruction. When info is non-nil (the replay pass)
// it also records redundant flushes and diagnostics.
func (p *persistProblem) step(in *ir.Instr, f *persistFact, info *PersistInfo) {
	killRoot := func(root string) {
		for k := range f.clean {
			if k.Root == root {
				delete(f.clean, k)
			}
		}
		for k := range f.pending {
			if k.Root == root {
				delete(f.pending, k)
			}
		}
	}
	switch in.Op {
	case ir.Flush:
		key, exact := p.resolve(in.Args[0])
		if exact && !f.univ {
			for k := range f.clean {
				if k.Root == key.Root && sameLineAllShifts(k.Off, key.Off) {
					if info != nil {
						info.RedundantFlushes = append(info.RedundantFlushes, in)
						info.diag(in, RuleDoubleFlush, fmt.Sprintf(
							"cacheline of %s (offset %d from %s) is already flushed on every path "+
								"with no intervening store or fence; this flush is redundant",
							in.Args[0], key.Off, key.Root))
					}
					break
				}
			}
		}
		if exact {
			if f.clean == nil {
				f.clean = map[flushKey]bool{}
			}
			if f.pending == nil {
				f.pending = map[flushKey]bool{}
			}
			f.univ = false
			f.clean[key] = true
			f.pending[key] = true
		}
		f.anyFlush = true

	case ir.Fence:
		if info != nil && !f.anyFlush && !f.univ {
			info.diag(in, RuleFenceNoFlush,
				"fence with no flush on any path since the previous fence; "+
					"the barrier orders nothing — a flush is missing or the fence is misplaced")
		}
		f.clean = map[flushKey]bool{}
		f.pending = map[flushKey]bool{}
		f.univ = false
		f.anyFlush = false

	case ir.Store:
		if info != nil && !f.univ {
			if key, exact := p.resolve(in.Args[0]); exact {
				for k := range f.pending {
					if k.Root == key.Root && mayShareLine(k.Off, key.Off) {
						info.diag(in, RuleStoreAfterFlush, fmt.Sprintf(
							"store through %s may hit a cacheline flushed earlier but not yet fenced; "+
								"whether the new value reaches persistence under the pending flush depends "+
								"on eviction timing — flush again after the store or fence first", in.Args[0]))
						break
					}
				}
			}
		}
		// Any store may dirty any tracked line (the resolver's roots are
		// name identities, not a full alias analysis): drop all proofs.
		f.clean = map[flushKey]bool{}

	case ir.MemCpy, ir.MemSet, ir.StrCpy:
		f.clean = map[flushKey]bool{}

	case ir.Call, ir.CallExt:
		// The callee may store anywhere (drop proofs) and may flush
		// (so a following fence is not vacuous).
		f.clean = map[flushKey]bool{}
		f.anyFlush = true
	}
	// Redefining a name invalidates keys rooted at it: the old
	// allocation the key described is no longer what the name denotes.
	if in.Dst != "" {
		killRoot(in.Dst)
	}
}

// PersistInfo is the result of the persistence-ordering pass over one
// function.
type PersistInfo struct {
	fn *ir.Func
	// RedundantFlushes are flush instructions whose cacheline is
	// provably already flushed on every path with no intervening store
	// or fence: deleting them cannot change any durable image.
	RedundantFlushes []*ir.Instr
	// Diags are the ordering diagnostics (double-flush, vacuous fence,
	// store-after-flush hazards).
	Diags []Diagnostic
	// Converged is false when the solver hit its iteration cap; the
	// result is then empty (nothing proven, nothing reported).
	Converged bool
}

func (pi *PersistInfo) diag(in *ir.Instr, rule, msg string) {
	blk, bi, pos := locate(pi.fn, in)
	pi.Diags = append(pi.Diags, Diagnostic{
		Rule: rule, Func: pi.fn.Name, Block: blk, BlockIdx: bi, Pos: pos,
		Instr: in.String(), Msg: msg,
	})
}

// AnalyzePersistence runs the flush/fence ordering dataflow over f,
// reporting redundant flushes and ordering hazards.
func AnalyzePersistence(f *ir.Func) *PersistInfo {
	info := &PersistInfo{fn: f}
	if f.External || len(f.Blocks) == 0 {
		info.Converged = true
		return info
	}
	usesFlush := false
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.Flush || in.Op == ir.Fence {
				usesFlush = true
			}
		}
	}
	if !usesFlush {
		info.Converged = true
		return info
	}

	cfg := BuildCFG(f)
	dom := Dominators(cfg)
	prob := &persistProblem{cfg: cfg, resolve: persistResolver(f)}
	in, _, converged := Solve(cfg, prob)
	info.Converged = converged
	if !converged {
		return info
	}
	// Replay reachable blocks from their entry facts, recording
	// redundancies and diagnostics. Unreachable blocks keep top facts
	// (everything "proven"), which must not report or delete anything.
	for bi, blk := range f.Blocks {
		if dom.rpoNum[bi] < 0 {
			continue
		}
		fact := in[bi].clone()
		for _, instr := range blk.Instrs {
			prob.step(instr, &fact, info)
		}
	}
	return info
}

// persistResolver maps a pointer value to an exact (root, offset) pair
// by walking single-def chains of constant-offset geps and SPP hooks.
// Variable offsets, multi-def intermediates or over-deep chains return
// exact=false.
func persistResolver(f *ir.Func) func(string) (flushKey, bool) {
	defs := make(map[string]*ir.Instr)
	defCount := make(map[string]int)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dst != "" {
				defs[in.Dst] = in
				defCount[in.Dst]++
			}
		}
	}
	var walk func(v string, off int64, depth int) (flushKey, bool)
	walk = func(v string, off int64, depth int) (flushKey, bool) {
		if depth > 64 {
			return flushKey{}, false
		}
		d := defs[v]
		if d == nil {
			return flushKey{Root: v, Off: off}, true // param or undefined: name identity
		}
		switch d.Op {
		case ir.Gep:
			if defCount[v] != 1 || len(d.Args) != 1 {
				return flushKey{}, false // multi-def or variable offset
			}
			return walk(d.Args[0], off+d.Imm, depth+1)
		case ir.SppCheckBound, ir.SppUpdateTag, ir.SppCleanTag, ir.SppCleanExternal, ir.SppMemIntrCheck:
			if defCount[v] != 1 {
				return flushKey{}, false
			}
			// Hooks pass the already-computed address through (the gep
			// did the arithmetic); the hook only adjusts tag bits.
			return walk(d.Args[0], off, depth+1)
		}
		// Terminal def (malloc, pmem.direct, load, ...): root identity.
		return flushKey{Root: v, Off: off}, true
	}
	return func(v string) (flushKey, bool) { return walk(v, 0, 0) }
}
