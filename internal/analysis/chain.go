package analysis

import "repro/internal/ir"

// ProvenanceChain renders the static use-def chain that produced value
// v in f — innermost definition first — for the safety-violation audit
// trail: each entry is one defining instruction, so a report shows how
// the offending pointer was derived (the gep chain, casts, arithmetic)
// rather than just its final address. The walk follows each definition
// to its first non-constant defined operand, which tracks the pointer
// operand through geps, conversions and additions; max bounds it on
// cyclic or very deep chains.
func ProvenanceChain(f *ir.Func, v string, max int) []string {
	if f == nil || max <= 0 {
		return nil
	}
	o := NewOrigin(f)
	var chain []string
	seen := map[string]bool{}
	cur := v
	for len(chain) < max {
		d := o.defs[cur]
		if d == nil || seen[cur] {
			break
		}
		seen[cur] = true
		chain = append(chain, f.Name+": "+d.String())
		next := ""
		for _, a := range d.Args {
			if ad := o.defs[a]; ad != nil && ad.Op != ir.Const {
				next = a
				break
			}
		}
		if next == "" {
			break
		}
		cur = next
	}
	return chain
}
