package analysis

import "repro/internal/ir"

// Origin resolves integer values of one function back to the pointer
// they were derived from, following the use-def chain through a
// ptr-to-int conversion and optionally one addition or constant
// subtraction — the §IV-G mitigation's reach.
type Origin struct {
	defs   map[string]*ir.Instr
	consts map[string]int64
}

// NewOrigin indexes f's definitions.
func NewOrigin(f *ir.Func) *Origin {
	o := &Origin{defs: make(map[string]*ir.Instr), consts: make(map[string]int64)}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dst != "" {
				o.defs[in.Dst] = in
			}
			if in.Op == ir.Const {
				o.consts[in.Dst] = in.Imm
			}
		}
	}
	return o
}

// PtrOrigin resolves integer value v to (pointer, constant offset,
// variable offset). ok is false when v has no recoverable pointer
// provenance.
func (o *Origin) PtrOrigin(v string) (ptr string, imm int64, varOff string, ok bool) {
	d := o.defs[v]
	if d == nil {
		return "", 0, "", false
	}
	switch d.Op {
	case ir.PtrToInt:
		return d.Args[0], 0, "", true
	case ir.Add:
		for i := 0; i < 2; i++ {
			if pi := o.defs[d.Args[i]]; pi != nil && pi.Op == ir.PtrToInt {
				other := d.Args[1-i]
				if c, isConst := o.consts[other]; isConst {
					return pi.Args[0], c, "", true
				}
				return pi.Args[0], 0, other, true
			}
		}
	case ir.Sub:
		if pi := o.defs[d.Args[0]]; pi != nil && pi.Op == ir.PtrToInt {
			if c, isConst := o.consts[d.Args[1]]; isConst {
				return pi.Args[0], -c, "", true
			}
		}
	}
	return "", 0, "", false
}
