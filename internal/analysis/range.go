package analysis

import "repro/internal/ir"

// rangeBound caps the magnitude of tracked intervals; anything beyond
// falls to unknown, which also guards the arithmetic against overflow.
const rangeBound = int64(1) << 40

// Interval is an inclusive integer range.
type Interval struct{ Lo, Hi int64 }

func (iv Interval) valid() bool {
	return iv.Lo <= iv.Hi && iv.Lo > -rangeBound && iv.Hi < rangeBound
}

func (iv Interval) hull(o Interval) Interval {
	if o.Lo < iv.Lo {
		iv.Lo = o.Lo
	}
	if o.Hi > iv.Hi {
		iv.Hi = o.Hi
	}
	return iv
}

// PtrFact locates a pointer value relative to its allocation: the
// value points Off bytes past Root, for some Off in the interval.
type PtrFact struct {
	Root string
	Off  Interval
}

// RangeInfo is the result of value-range analysis over one function.
type RangeInfo struct {
	// RootSize maps a base pointer value (malloc or pmemobj_direct
	// result) to its statically known allocation size.
	RootSize map[string]uint64
	// AddrFact gives, for each Load/Store, the fact about its address
	// operand at that program point.
	AddrFact map[*ir.Instr]PtrFact
	// GepFact gives the fact about each Gep's result.
	GepFact map[*ir.Instr]PtrFact
	// Converged is false when the solver hit its iteration cap; all
	// facts are then dropped, so the zero maps stay sound.
	Converged bool
}

// SafeAccess reports whether the Load/Store provably stays inside its
// allocation: the base object's size is statically known and the
// offset interval plus the access width fits.
func (ri *RangeInfo) SafeAccess(in *ir.Instr) bool {
	fact, ok := ri.AddrFact[in]
	if !ok {
		return false
	}
	size, ok := ri.RootSize[fact.Root]
	if !ok {
		return false
	}
	return fact.Off.Lo >= 0 && fact.Off.Hi+int64(in.Size) <= int64(size)
}

// rangeFact is the dataflow fact: intervals for integer values and
// offset facts for pointer values. Maps are treated as immutable.
type rangeFact struct {
	ints map[string]Interval
	ptrs map[string]PtrFact
}

// rangeProblem runs forward over the CFG. Missing keys mean "not yet
// defined on this path" (bottom), so the meet keeps the union of keys
// and hulls intervals present on both sides — sound because a use only
// executes on paths where its def executed.
type rangeProblem struct {
	cfg    *CFG
	consts map[string]int64 // def-once const values
	multi  map[string]bool  // names defined more than once: untracked
	// ivLoad bounds loads of recognized induction-variable slots (the
	// loop tier): the loaded value provably stays in the interval for
	// every execution of that load.
	ivLoad map[*ir.Instr]Interval
}

func (p *rangeProblem) Direction() Direction { return Forward }
func (p *rangeProblem) Boundary() rangeFact  { return rangeFact{} }
func (p *rangeProblem) Top() rangeFact       { return rangeFact{} }

func (p *rangeProblem) Meet(a, b rangeFact) rangeFact {
	out := rangeFact{ints: make(map[string]Interval), ptrs: make(map[string]PtrFact)}
	for k, v := range a.ints {
		out.ints[k] = v
	}
	for k, v := range b.ints {
		if av, ok := out.ints[k]; ok {
			h := av.hull(v)
			if h.valid() {
				out.ints[k] = h
			} else {
				delete(out.ints, k)
			}
		} else {
			out.ints[k] = v
		}
	}
	for k, v := range a.ptrs {
		out.ptrs[k] = v
	}
	for k, v := range b.ptrs {
		if av, ok := out.ptrs[k]; ok {
			if av.Root != v.Root {
				delete(out.ptrs, k)
				continue
			}
			h := av.Off.hull(v.Off)
			if h.valid() {
				out.ptrs[k] = PtrFact{Root: av.Root, Off: h}
			} else {
				delete(out.ptrs, k)
			}
		} else {
			out.ptrs[k] = v
		}
	}
	return out
}

func (p *rangeProblem) Equal(a, b rangeFact) bool {
	if len(a.ints) != len(b.ints) || len(a.ptrs) != len(b.ptrs) {
		return false
	}
	for k, v := range a.ints {
		if bv, ok := b.ints[k]; !ok || bv != v {
			return false
		}
	}
	for k, v := range a.ptrs {
		if bv, ok := b.ptrs[k]; !ok || bv != v {
			return false
		}
	}
	return true
}

func (p *rangeProblem) Transfer(b int, in rangeFact) rangeFact {
	out := rangeFact{ints: make(map[string]Interval, len(in.ints)), ptrs: make(map[string]PtrFact, len(in.ptrs))}
	for k, v := range in.ints {
		out.ints[k] = v
	}
	for k, v := range in.ptrs {
		out.ptrs[k] = v
	}
	blk := p.cfg.Func.Blocks[b]
	for _, instr := range blk.Instrs {
		p.step(blk, instr, &out, nil)
	}
	return out
}

// step applies one instruction's effect to the fact. When record is
// non-nil the per-instruction results (access and gep facts) are
// written into it — used by the final annotation pass.
func (p *rangeProblem) step(blk *ir.Block, in *ir.Instr, f *rangeFact, record *RangeInfo) {
	setInt := func(name string, iv Interval) {
		if name == "" || p.multi[name] {
			return
		}
		if iv.valid() {
			f.ints[name] = iv
		} else {
			delete(f.ints, name)
		}
	}
	kill := func(name string) {
		if name == "" {
			return
		}
		delete(f.ints, name)
		delete(f.ptrs, name)
	}
	intOf := func(name string) (Interval, bool) {
		iv, ok := f.ints[name]
		return iv, ok
	}

	switch in.Op {
	case ir.Const:
		setInt(in.Dst, Interval{in.Imm, in.Imm})

	case ir.Add, ir.Sub:
		a, aok := intOf(in.Args[0])
		bv, bok := intOf(in.Args[1])
		if aok && bok {
			if in.Op == ir.Add {
				setInt(in.Dst, Interval{a.Lo + bv.Lo, a.Hi + bv.Hi})
			} else {
				setInt(in.Dst, Interval{a.Lo - bv.Hi, a.Hi - bv.Lo})
			}
		} else {
			kill(in.Dst)
		}

	case ir.Mul:
		a, aok := intOf(in.Args[0])
		bv, bok := intOf(in.Args[1])
		switch {
		case aok && bok:
			lo, hi := mulHull(a, bv)
			setInt(in.Dst, Interval{lo, hi})
		case blk.LoopBound > 0:
			// Inside a block annotated with its trip count, an
			// induction*stride offset ranges over [0, (bound-1)*stride]
			// — the same scalar-evolution trust the hoisting
			// optimization (§V-C) places in the annotation.
			if c, ok := p.strideOf(in, f); ok && c > 0 {
				setInt(in.Dst, Interval{0, (blk.LoopBound - 1) * c})
			} else {
				kill(in.Dst)
			}
		default:
			kill(in.Dst)
		}

	case ir.Malloc, ir.PmemDirect:
		// Allocation-site pointers anchor their own interval; sizes
		// come from the pre-scan in InferRanges.
		if in.Dst != "" && !p.multi[in.Dst] {
			f.ptrs[in.Dst] = PtrFact{Root: in.Dst, Off: Interval{0, 0}}
		}

	case ir.Gep:
		base, ok := f.ptrs[in.Args[0]]
		if !ok {
			kill(in.Dst)
			if record != nil {
				delete(record.GepFact, in)
			}
			break
		}
		off := Interval{in.Imm, in.Imm}
		if len(in.Args) == 2 {
			v, vok := intOf(in.Args[1])
			if !vok {
				kill(in.Dst)
				if record != nil {
					delete(record.GepFact, in)
				}
				break
			}
			off = v
		}
		fact := PtrFact{Root: base.Root, Off: Interval{base.Off.Lo + off.Lo, base.Off.Hi + off.Hi}}
		if !fact.Off.valid() {
			kill(in.Dst)
			if record != nil {
				delete(record.GepFact, in)
			}
			break
		}
		if in.Dst != "" && !p.multi[in.Dst] {
			f.ptrs[in.Dst] = fact
		}
		if record != nil {
			record.GepFact[in] = fact
		}

	case ir.Load, ir.Store:
		if record != nil {
			if fact, ok := f.ptrs[in.Args[0]]; ok {
				record.AddrFact[in] = fact
			}
		}
		if in.Op == ir.Load {
			kill(in.Dst)
			if iv, ok := p.ivLoad[in]; ok {
				// A load of an induction-variable slot: the loop tier
				// bounds the loaded value independently of the incoming
				// fact, so this is a constant transfer (monotone).
				setInt(in.Dst, iv)
			}
		}

	default:
		kill(in.Dst)
	}
}

// strideOf extracts the constant factor of a mul, from the fact or the
// def-once const table.
func (p *rangeProblem) strideOf(in *ir.Instr, f *rangeFact) (int64, bool) {
	for i := 0; i < 2; i++ {
		if iv, ok := f.ints[in.Args[i]]; ok && iv.Lo == iv.Hi {
			return iv.Lo, true
		}
		if c, ok := p.consts[in.Args[i]]; ok {
			return c, true
		}
	}
	return 0, false
}

func mulHull(a, b Interval) (int64, int64) {
	cands := [4]int64{a.Lo * b.Lo, a.Lo * b.Hi, a.Hi * b.Lo, a.Hi * b.Hi}
	lo, hi := cands[0], cands[0]
	for _, c := range cands[1:] {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	return lo, hi
}

// RangeOptions selects optional tiers of the value-range analysis.
type RangeOptions struct {
	// Loops enables the loop tier: natural-loop discovery plus
	// induction-variable recognition feed loads of recognized counter
	// slots into the interval domain, so strided loop accesses get
	// finite offset intervals without a trip-count annotation.
	Loops bool
}

// InferRanges runs interval analysis over f with every tier enabled.
func InferRanges(f *ir.Func) *RangeInfo {
	return InferRangesOpt(f, RangeOptions{Loops: true})
}

// InferRangesOpt runs interval analysis over f and returns per-access
// bound facts. Allocation sizes come from def-once constants feeding
// malloc / pmemobj_alloc; offsets flow through gep chains, integer
// arithmetic, trip-count-annotated loops and (with the loop tier)
// recognized induction variables.
func InferRangesOpt(f *ir.Func, opt RangeOptions) *RangeInfo {
	info := &RangeInfo{
		RootSize: make(map[string]uint64),
		AddrFact: make(map[*ir.Instr]PtrFact),
		GepFact:  make(map[*ir.Instr]PtrFact),
	}
	if f.External || len(f.Blocks) == 0 {
		info.Converged = true
		return info
	}

	// Pre-scan: def counts, def-once constants, and allocation sizes.
	defCount := make(map[string]int)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dst != "" {
				defCount[in.Dst]++
			}
		}
	}
	multi := make(map[string]bool)
	for name, n := range defCount {
		if n > 1 {
			multi[name] = true
		}
	}
	consts := make(map[string]int64)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.Const && !multi[in.Dst] {
				consts[in.Dst] = in.Imm
			}
		}
	}
	oidSize := make(map[string]uint64) // pmalloc handle -> size
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			switch in.Op {
			case ir.PmemAlloc:
				if c, ok := consts[in.Args[0]]; ok && c > 0 && !multi[in.Dst] {
					oidSize[in.Dst] = uint64(c)
				}
			case ir.Malloc:
				if c, ok := consts[in.Args[0]]; ok && c > 0 && !multi[in.Dst] {
					info.RootSize[in.Dst] = uint64(c)
				}
			}
		}
	}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.PmemDirect && !multi[in.Dst] {
				if sz, ok := oidSize[in.Args[0]]; ok {
					info.RootSize[in.Dst] = sz
				}
			}
		}
	}

	cfg := BuildCFG(f)
	prob := &rangeProblem{cfg: cfg, consts: consts, multi: multi}
	if opt.Loops {
		prob.ivLoad = inductionLoadBounds(cfg)
	}
	in, _, converged := Solve(cfg, prob)
	info.Converged = converged
	if !converged {
		// Optimistic intermediate facts must not prove anything.
		return info
	}

	// Annotation pass: replay each block from its entry fact, recording
	// per-instruction address and gep facts.
	for bi, blk := range f.Blocks {
		fact := prob.Meet(rangeFact{}, in[bi]) // copy
		for _, instr := range blk.Instrs {
			prob.step(blk, instr, &fact, info)
		}
	}
	return info
}

// inductionLoadBounds runs loop discovery and induction-variable
// recognition, returning the value interval of each in-loop load of a
// recognized counter slot.
func inductionLoadBounds(cfg *CFG) map[*ir.Instr]Interval {
	dom := Dominators(cfg)
	li := FindLoops(cfg, dom)
	if len(li.Loops) == 0 {
		return nil
	}
	bounds := make(map[*ir.Instr]Interval)
	for _, l := range li.Loops {
		for _, iv := range li.IndVars(l) {
			for ld, hi := range iv.LoadHi {
				b := Interval{iv.Init, hi}
				if prev, ok := bounds[ld]; ok {
					// A slot can only be claimed by one loop, but stay
					// defensive: keep the tighter bound.
					if prev.Hi < b.Hi {
						b.Hi = prev.Hi
					}
					if prev.Lo > b.Lo {
						b.Lo = prev.Lo
					}
				}
				if b.valid() {
					bounds[ld] = b
				}
			}
		}
	}
	return bounds
}
