package analysis

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// Lint rule identifiers.
const (
	RuleLaunderedPointer = "laundered-pointer"
	RuleUnmaskedExternal = "unmasked-external-call"
	RuleUnflushedStore   = "unflushed-pm-store"
)

// Diagnostic is one linter finding.
type Diagnostic struct {
	Rule     string
	Func     string
	Block    string
	BlockIdx int    // index of Block in its function, for stable ordering
	Pos      int    // instruction index within Block
	Instr    string // rendered offending instruction
	Msg      string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("@%s/%s: %s: %s [%s]", d.Func, d.Block, d.Rule, d.Msg, d.Instr)
}

// Lint checks a module for tag-unsafe patterns the SPP instrumentation
// cannot (or can only partially) repair:
//
//   - integer-to-pointer laundering: a dereferenced pointer born from
//     an integer carries no tag, so SPP is blind to its overflows
//     (§IV-G); the message says whether -restore-intptr can repair it;
//   - external calls receiving tagged pointers without masking: the
//     uninstrumented callee would fault on the raw dereference;
//   - stores to persistent memory with no flush+fence on some path to
//     function exit: the data may not be durable after a crash;
//   - persistence-ordering hazards from the flush/fence dataflow:
//     double flushes of one cacheline, fences ordering nothing, and
//     stores landing on a flushed-but-unfenced line.
//
// Output is deterministic: diagnostics are sorted by (function, block,
// instruction position, rule), so goldens and CI diffs are stable.
func Lint(m *ir.Module) []Diagnostic {
	prov := PointerProvenance(m, true)
	var diags []Diagnostic
	funcIdx := make(map[string]int, len(m.Funcs))
	for i, f := range m.Funcs {
		funcIdx[f.Name] = i
		if f.External {
			continue
		}
		classes := prov.Classes[f.Name]
		diags = append(diags, lintLaundering(f)...)
		diags = append(diags, lintExternalCalls(f, classes)...)
		diags = append(diags, lintUnflushedStores(f, classes)...)
		diags = append(diags, AnalyzePersistence(f).Diags...)
	}
	sort.SliceStable(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Func != b.Func {
			return funcIdx[a.Func] < funcIdx[b.Func]
		}
		if a.BlockIdx != b.BlockIdx {
			return a.BlockIdx < b.BlockIdx
		}
		if a.Pos != b.Pos {
			return a.Pos < b.Pos
		}
		return a.Rule < b.Rule
	})
	return diags
}

// lintLaundering flags int-to-ptr conversions whose result reaches a
// dereference (directly or through pointer arithmetic).
func lintLaundering(f *ir.Func) []Diagnostic {
	origin := NewOrigin(f)
	// ptrDerived[v] = v is an int-to-ptr result or a gep chained off one.
	ptrDerived := make(map[string]*ir.Instr) // derived value -> laundering site
	for pass := 0; pass < 8; pass++ {
		changed := false
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				var src *ir.Instr
				switch in.Op {
				case ir.IntToPtr:
					src = in
				case ir.Gep:
					src = ptrDerived[in.Args[0]]
				default:
					continue
				}
				if src != nil && ptrDerived[in.Dst] == nil {
					ptrDerived[in.Dst] = src
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	flagged := make(map[*ir.Instr]bool)
	var diags []Diagnostic
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op != ir.Load && in.Op != ir.Store {
				continue
			}
			src := ptrDerived[in.Args[0]]
			if src == nil || flagged[src] {
				continue
			}
			flagged[src] = true
			var msg string
			if _, _, _, ok := origin.PtrOrigin(src.Args[0]); ok {
				msg = fmt.Sprintf("%s launders a pointer through an integer and is later dereferenced; "+
					"SPP loses the tag across the round trip — recompile with -restore-intptr to re-derive the tagged pointer", src.Dst)
			} else {
				msg = fmt.Sprintf("%s is an integer-born pointer with no recoverable pointer origin; "+
					"-restore-intptr cannot repair it — keep the provenance in pointer form (gep) instead of integer arithmetic", src.Dst)
			}
			blk, bi, pos := locate(f, src)
			diags = append(diags, Diagnostic{
				Rule: RuleLaunderedPointer, Func: f.Name, Block: blk, BlockIdx: bi, Pos: pos,
				Instr: src.String(), Msg: msg,
			})
		}
	}
	return diags
}

// lintExternalCalls flags tagged pointers passed to uninstrumented
// callees without a masking hook.
func lintExternalCalls(f *ir.Func, classes map[string]Class) []Diagnostic {
	defs := make(map[string]*ir.Instr)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dst != "" {
				defs[in.Dst] = in
			}
		}
	}
	var diags []Diagnostic
	for bi, blk := range f.Blocks {
		for ii, in := range blk.Instrs {
			if in.Op != ir.CallExt {
				continue
			}
			for _, a := range in.Args {
				if classes[a] == Volatile {
					continue
				}
				if d := defs[a]; d != nil && d.Op == ir.SppCleanExternal {
					continue
				}
				diags = append(diags, Diagnostic{
					Rule: RuleUnmaskedExternal, Func: f.Name, Block: blk.Name, BlockIdx: bi, Pos: ii,
					Instr: in.String(),
					Msg: fmt.Sprintf("external callee @%s receives tagged pointer %s unmasked and would fault dereferencing it; "+
						"mask it with spp.cleantag.ext (the SPP LTO pass injects this automatically)", in.Sym, a),
				})
			}
		}
	}
	return diags
}

// flushFact is the backward must-fact for durability linting: at a
// program point it records whether a fence is reached on every path to
// exit, and the set of allocation roots for which a flush-then-fence
// pair is reached on every path.
type flushFact struct {
	univ    bool // lattice top: everything flushed (pre-fixpoint optimism)
	fence   bool
	flushed map[string]bool
}

func (ff flushFact) has(root string) bool { return ff.univ || ff.flushed[root] }

func (ff flushFact) clone() flushFact {
	out := flushFact{univ: ff.univ, fence: ff.fence, flushed: make(map[string]bool, len(ff.flushed))}
	for r := range ff.flushed {
		out.flushed[r] = true
	}
	return out
}

type flushProblem struct {
	cfg   *CFG
	roots func(string) string
}

func (p *flushProblem) Direction() Direction { return Backward }
func (p *flushProblem) Boundary() flushFact  { return flushFact{} }
func (p *flushProblem) Top() flushFact       { return flushFact{univ: true, fence: true} }

func (p *flushProblem) Meet(a, b flushFact) flushFact {
	if a.univ {
		return b
	}
	if b.univ {
		return a
	}
	out := flushFact{fence: a.fence && b.fence, flushed: make(map[string]bool)}
	for r := range a.flushed {
		if b.flushed[r] {
			out.flushed[r] = true
		}
	}
	return out
}

func (p *flushProblem) Equal(a, b flushFact) bool {
	if a.univ != b.univ || a.fence != b.fence || len(a.flushed) != len(b.flushed) {
		return false
	}
	for r := range a.flushed {
		if !b.flushed[r] {
			return false
		}
	}
	return true
}

// Transfer walks the block backward: facts describe the path suffix
// after each instruction.
func (p *flushProblem) Transfer(b int, in flushFact) flushFact {
	out := flushFact{univ: in.univ, fence: in.fence, flushed: make(map[string]bool, len(in.flushed))}
	for r := range in.flushed {
		out.flushed[r] = true
	}
	blk := p.cfg.Func.Blocks[b]
	for i := len(blk.Instrs) - 1; i >= 0; i-- {
		p.stepBack(blk.Instrs[i], &out)
	}
	return out
}

func (p *flushProblem) stepBack(in *ir.Instr, f *flushFact) {
	switch in.Op {
	case ir.Fence:
		f.fence = true
	case ir.Flush:
		if f.fence && !f.univ {
			f.flushed[p.roots(in.Args[0])] = true
		}
	}
}

// lintUnflushedStores flags stores through persistent pointers that
// some path to function exit leaves without a flush of the same object
// followed by a fence.
func lintUnflushedStores(f *ir.Func, classes map[string]Class) []Diagnostic {
	// Does the function flush at all? A function that never flushes is
	// treated as delegating durability to its caller (the common case
	// for helpers and for instrumented benchmark kernels); only
	// functions that manage durability themselves are held to it.
	usesFlush := false
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.Flush || in.Op == ir.Fence {
				usesFlush = true
			}
		}
	}
	if !usesFlush {
		return nil
	}

	roots := rootResolver(f)
	cfg := BuildCFG(f)
	prob := &flushProblem{cfg: cfg, roots: roots}
	_, out, converged := Solve(cfg, prob)
	if !converged {
		return nil
	}
	var diags []Diagnostic
	for bi, blk := range f.Blocks {
		// Replay backward from the block's exit fact, checking each PM
		// store against the facts of its path suffix.
		fact := out[bi].clone()
		for i := len(blk.Instrs) - 1; i >= 0; i-- {
			in := blk.Instrs[i]
			if in.Op == ir.Store && classes[in.Args[0]] == Persistent && !fact.has(roots(in.Args[0])) {
				diags = append(diags, Diagnostic{
					Rule: RuleUnflushedStore, Func: f.Name, Block: blk.Name, BlockIdx: bi, Pos: i,
					Instr: in.String(),
					Msg: fmt.Sprintf("store to persistent memory through %s is not followed by flush+fence of the same object "+
						"on every path to return; the data may not be durable after a crash", in.Args[0]),
				})
			}
			prob.stepBack(in, &fact)
		}
	}
	return diags
}

// rootResolver maps a pointer value to its allocation root by walking
// the def chain through geps and hooks.
func rootResolver(f *ir.Func) func(string) string {
	defs := make(map[string]*ir.Instr)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dst != "" {
				defs[in.Dst] = in
			}
		}
	}
	var resolve func(v string, depth int) string
	resolve = func(v string, depth int) string {
		if depth > 64 {
			return v
		}
		d := defs[v]
		if d == nil {
			return v
		}
		switch d.Op {
		case ir.Gep, ir.SppCheckBound, ir.SppUpdateTag, ir.SppCleanTag, ir.SppCleanExternal, ir.SppMemIntrCheck:
			return resolve(d.Args[0], depth+1)
		}
		return v
	}
	return func(v string) string { return resolve(v, 0) }
}

// FormatDiagnostics renders diagnostics one per line.
func FormatDiagnostics(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}

func blockOf(f *ir.Func, target *ir.Instr) string {
	name, _, _ := locate(f, target)
	return name
}

// locate returns the block name, block index and instruction position
// of target within f.
func locate(f *ir.Func, target *ir.Instr) (string, int, int) {
	for bi, blk := range f.Blocks {
		for ii, in := range blk.Instrs {
			if in == target {
				return blk.Name, bi, ii
			}
		}
	}
	return "?", 1 << 30, 1 << 30
}
