package analysis

// Direction selects how facts propagate through the CFG.
type Direction int

// Dataflow directions.
const (
	Forward  Direction = iota // facts flow entry → exits
	Backward                  // facts flow exits → entry
)

// Problem describes one dataflow analysis over a CFG. F is the fact
// type attached to block boundaries.
type Problem[F any] interface {
	// Direction of propagation.
	Direction() Direction
	// Boundary is the fact at the entry block (forward) or at every
	// exit block (backward).
	Boundary() F
	// Top is the optimistic initial fact for all other blocks; Meet
	// must satisfy Meet(Top, x) = x.
	Top() F
	// Meet combines facts arriving over several edges.
	Meet(a, b F) F
	// Transfer applies block b's effect to the incoming fact. It must
	// not mutate in; return a fresh fact.
	Transfer(b int, in F) F
	// Equal reports fact equality, for fixpoint detection.
	Equal(a, b F) bool
}

// Solve runs the iterative worklist algorithm to a fixpoint and
// returns the facts at each block's entry and exit (in program order:
// in[b] is the fact before the block's first instruction, out[b] the
// fact after its terminator, regardless of direction). converged is
// false when the iteration cap was hit first; clients proving facts
// from optimistic intermediate state must then discard the result.
func Solve[F any](c *CFG, p Problem[F]) (in, out []F, converged bool) {
	n := len(c.Succs)
	in = make([]F, n)
	out = make([]F, n)
	if n == 0 {
		return in, out, true
	}
	fwd := p.Direction() == Forward

	// sources: edges facts arrive over; order: iteration order.
	sources := c.Preds
	order := c.RPO()
	if !fwd {
		sources = c.Succs
		order = c.PostOrder()
	}
	boundary := func(b int) bool {
		if fwd {
			return b == 0
		}
		return len(c.Succs[b]) == 0
	}
	for i := 0; i < n; i++ {
		in[i] = p.Top()
		out[i] = p.Top()
	}

	for pass := 0; pass < 4*n+8; pass++ {
		changed := false
		for _, b := range order {
			// Gather the incoming fact.
			var acc F
			if boundary(b) {
				acc = p.Boundary()
			} else {
				acc = p.Top()
			}
			for _, s := range sources[b] {
				var edge F
				if fwd {
					edge = out[s]
				} else {
					edge = in[s]
				}
				acc = p.Meet(acc, edge)
			}
			res := p.Transfer(b, acc)
			if fwd {
				if !p.Equal(in[b], acc) {
					in[b] = acc
					changed = true
				}
				if !p.Equal(out[b], res) {
					out[b] = res
					changed = true
				}
			} else {
				if !p.Equal(out[b], acc) {
					out[b] = acc
					changed = true
				}
				if !p.Equal(in[b], res) {
					in[b] = res
					changed = true
				}
			}
		}
		if !changed {
			return in, out, true
		}
	}
	return in, out, false
}
