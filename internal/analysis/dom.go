package analysis

import "repro/internal/ir"

// DomTree is the dominator tree of a CFG, computed with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
type DomTree struct {
	cfg *CFG
	// Idom[b] is the immediate dominator of block b, -1 for the entry
	// and for blocks unreachable from it.
	Idom []int
	// rpoNum[b] is b's position in reverse postorder (-1 unreachable).
	rpoNum []int
}

// Dominators computes the dominator tree of c.
func Dominators(c *CFG) *DomTree {
	n := len(c.Succs)
	d := &DomTree{cfg: c, Idom: make([]int, n), rpoNum: make([]int, n)}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.rpoNum[i] = -1
	}
	if n == 0 {
		return d
	}
	rpo := c.RPO()
	for i, b := range rpo {
		d.rpoNum[b] = i
	}
	d.Idom[0] = 0 // temporarily self, for the intersection walk
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range c.Preds[b] {
				if d.rpoNum[p] < 0 || d.Idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	d.Idom[0] = -1
	return d
}

func (d *DomTree) intersect(a, b int) int {
	for a != b {
		for d.rpoNum[a] > d.rpoNum[b] {
			a = d.Idom[a]
		}
		for d.rpoNum[b] > d.rpoNum[a] {
			b = d.Idom[b]
		}
	}
	return a
}

// UsesDominated reports whether every value use in f is dominated by a
// definition of that name (or the name is a parameter). When it holds,
// no execution path can read a value before some definition of it has
// executed — so running f over zero-initialized register slots is
// observably identical to the interpreter's per-name map, which faults
// on undefined reads. The compiler (internal/interp) requires it;
// functions that fail it fall back to interpretation, preserving the
// fault-on-undefined semantics exactly. Uses inside blocks unreachable
// from the entry are ignored: neither execution mode can reach them.
func UsesDominated(f *ir.Func) bool {
	if f.External || len(f.Blocks) == 0 {
		return false
	}
	c := BuildCFG(f)
	d := Dominators(c)
	param := make(map[string]bool, len(f.Params))
	for _, p := range f.Params {
		param[p] = true
	}
	type defSite struct{ blk, idx int }
	defs := map[string][]defSite{}
	for bi, blk := range f.Blocks {
		for ii, in := range blk.Instrs {
			if in.Dst != "" {
				defs[in.Dst] = append(defs[in.Dst], defSite{bi, ii})
			}
		}
	}
	for bi, blk := range f.Blocks {
		if d.rpoNum[bi] < 0 {
			continue // unreachable
		}
		for ii, in := range blk.Instrs {
			for _, a := range in.Args {
				if param[a] {
					continue
				}
				ok := false
				for _, ds := range defs[a] {
					if ds.blk == bi && ds.idx < ii {
						ok = true
						break
					}
					if ds.blk != bi && d.rpoNum[ds.blk] >= 0 && d.Dominates(ds.blk, bi) {
						ok = true
						break
					}
				}
				if !ok {
					return false
				}
			}
		}
	}
	return true
}

// Dominates reports whether block a dominates block b (reflexively).
func (d *DomTree) Dominates(a, b int) bool {
	if d.rpoNum[b] < 0 {
		return false // unreachable: vacuous, but report false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 || d.Idom[b] < 0 {
			return false
		}
		b = d.Idom[b]
	}
}
