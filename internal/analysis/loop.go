package analysis

import "repro/internal/ir"

// Loop is one natural loop: a header plus every block that can reach a
// back edge to the header without passing through the header. Loops
// sharing a header are merged, as usual.
type Loop struct {
	// Header is the block index of the loop header.
	Header int
	// Blocks is the loop body, header included.
	Blocks map[int]bool
	// Latches are the sources of the back edges.
	Latches []int
	// Exiting are the body blocks with a successor outside the loop.
	Exiting []int
	// Preheader is the unique predecessor of the header outside the
	// loop, when it ends in an unconditional branch to the header — the
	// only shape that guarantees a hoisted check executes exactly when
	// the loop is entered. -1 otherwise.
	Preheader int
}

// Contains reports whether block index b is in the loop body.
func (l *Loop) Contains(b int) bool { return l.Blocks[b] }

// LoopInfo is the result of natural-loop discovery over one function.
type LoopInfo struct {
	CFG *CFG
	Dom *DomTree
	// Loops is ordered by header block index.
	Loops []*Loop
}

// FindLoops discovers the natural loops of c: every edge u->h where h
// dominates u is a back edge, and the loop body is collected by walking
// predecessors from u until h.
func FindLoops(c *CFG, d *DomTree) *LoopInfo {
	li := &LoopInfo{CFG: c, Dom: d}
	byHeader := make(map[int]*Loop)
	for u := range c.Succs {
		for _, h := range c.Succs[u] {
			if d.rpoNum[u] < 0 || !d.Dominates(h, u) {
				continue // unreachable source or not a back edge
			}
			l := byHeader[h]
			if l == nil {
				l = &Loop{Header: h, Blocks: map[int]bool{h: true}, Preheader: -1}
				byHeader[h] = l
				li.Loops = append(li.Loops, l)
			}
			l.Latches = append(l.Latches, u)
			// Walk backward from the latch, stopping at the header.
			work := []int{u}
			for len(work) > 0 {
				b := work[len(work)-1]
				work = work[:len(work)-1]
				if l.Blocks[b] {
					continue
				}
				l.Blocks[b] = true
				work = append(work, c.Preds[b]...)
			}
		}
	}
	// Order by header index so downstream rewrites are deterministic.
	for i := 1; i < len(li.Loops); i++ {
		for j := i; j > 0 && li.Loops[j-1].Header > li.Loops[j].Header; j-- {
			li.Loops[j-1], li.Loops[j] = li.Loops[j], li.Loops[j-1]
		}
	}
	for _, l := range li.Loops {
		for b := range l.Blocks {
			for _, s := range c.Succs[b] {
				if !l.Blocks[s] {
					l.Exiting = append(l.Exiting, b)
					break
				}
			}
		}
		l.Preheader = findPreheader(c, l)
	}
	return li
}

// findPreheader returns the unique out-of-loop predecessor of the
// header when it ends in an unconditional br to the header, else -1.
// The unconditional-branch requirement matters for check hoisting: a
// conditional branch into the loop would execute a preheader check on
// the path that skips the loop entirely.
func findPreheader(c *CFG, l *Loop) int {
	pre := -1
	for _, p := range c.Preds[l.Header] {
		if l.Blocks[p] {
			continue // back edge
		}
		if pre != -1 {
			return -1 // multiple entries
		}
		pre = p
	}
	if pre == -1 {
		return -1
	}
	blk := c.Func.Blocks[pre]
	if len(blk.Instrs) == 0 || blk.Instrs[len(blk.Instrs)-1].Op != ir.Br {
		return -1
	}
	return pre
}

// IndVar is a recognized memory-slot induction variable of a loop. The
// mini-IR has no phis: loop counters live in a malloc'd slot that is
// loaded, incremented and stored back once per iteration. The canonical
// shape recognized here confines the whole increment to the single
// latch block,
//
//	%cur  = load.8 slot
//	%next = add %cur, step          ; step a positive constant
//	store.8 slot, %next
//	%c    = icmp.lt %next, limit    ; limit a constant
//	condbr %c, header, exit
//
// with one constant-init store outside the loop dominating the header,
// and no other access to the slot anywhere in the function. Because the
// only in-loop store sits in the latch — whose sole successors are the
// header and the exit — every other in-loop load observes the value the
// slot held at header entry, which the latch compare bounds below
// Limit; latch loads after the store observe at most one extra step.
type IndVar struct {
	// Slot is the counter's memory cell (a malloc result).
	Slot string
	// Init, Step, Limit: initial value, positive stride, and the
	// exclusive bound of the latch compare.
	Init, Step, Limit int64
	// MaxVal is the largest value the slot holds at header entry:
	// Init + floor((Limit-1-Init)/Step)*Step, or Init when the compare
	// fails on the first iteration (do-while runs the body once).
	MaxVal int64
	// Latch is the block index holding the increment.
	Latch int
	// Inc is the increment store.
	Inc *ir.Instr
	// LoadHi bounds each in-loop load of the slot: [Init, LoadHi[ld]].
	// Loads before the increment see MaxVal; latch loads after it see
	// MaxVal+Step.
	LoadHi map[*ir.Instr]int64
}

// IndVars recognizes the induction variables of l. Only loops with a
// single latch ending in the canonical compare-and-branch are
// considered.
func (li *LoopInfo) IndVars(l *Loop) []IndVar {
	if len(l.Latches) != 1 {
		return nil
	}
	f := li.CFG.Func
	latch := l.Latches[0]
	lb := f.Blocks[latch]
	if len(lb.Instrs) == 0 {
		return nil
	}
	term := lb.Instrs[len(lb.Instrs)-1]
	header := f.Blocks[l.Header].Name
	if term.Op != ir.CondBr {
		return nil
	}
	// Exactly one arm re-enters via the header; the other leaves.
	var exitName string
	switch {
	case term.Sym == header && term.SymElse != header:
		exitName = term.SymElse
	case term.SymElse == header && term.Sym != header:
		exitName = term.Sym
	default:
		return nil
	}
	if ei, ok := li.CFG.Index[exitName]; !ok || l.Blocks[ei] {
		return nil
	}

	defCount := make(map[string]int)
	defs := make(map[string]*ir.Instr)
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Dst != "" {
				defCount[in.Dst]++
				defs[in.Dst] = in
			}
		}
	}
	constOf := func(v string) (int64, bool) {
		d := defs[v]
		if d == nil || d.Op != ir.Const || defCount[v] != 1 {
			return 0, false
		}
		return d.Imm, true
	}
	cond := defs[term.Args[0]]
	if cond == nil || cond.Op != ir.ICmpLt || defCount[term.Args[0]] != 1 {
		return nil
	}
	next := cond.Args[0]
	limit, ok := constOf(cond.Args[1])
	if !ok || limit >= rangeBound || limit <= -rangeBound {
		return nil
	}
	add := defs[next]
	if add == nil || add.Op != ir.Add || defCount[next] != 1 {
		return nil
	}
	cur, step, ok := addOperands(add, constOf)
	if !ok || step <= 0 || step >= rangeBound {
		return nil
	}
	ld := defs[cur]
	if ld == nil || ld.Op != ir.Load || ld.Size != 8 || defCount[cur] != 1 {
		return nil
	}
	slot := ld.Args[0]
	sd := defs[slot]
	if sd == nil || sd.Op != ir.Malloc || defCount[slot] != 1 {
		return nil
	}

	// Canonical ordering inside the latch: load, add, store, compare.
	idx := make(map[*ir.Instr]int)
	for i, in := range lb.Instrs {
		idx[in] = i
	}
	ldIdx, okLd := idx[ld]
	addIdx, okAdd := idx[add]
	cmpIdx, okCmp := idx[cond]
	if !okLd || !okAdd || !okCmp {
		return nil
	}
	var inc *ir.Instr
	incIdx := -1

	// Audit every use of the slot across the function: only 8-byte
	// loads and stores through it, one in-loop store (the increment),
	// one constant-init store outside, in a block dominating the header.
	var init int64
	haveInit := false
	var loads []*ir.Instr
	for bi, blk := range f.Blocks {
		for ii, in := range blk.Instrs {
			uses := false
			for ai, a := range in.Args {
				if a != slot {
					continue
				}
				if (in.Op != ir.Load && in.Op != ir.Store) || ai != 0 || in.Size != 8 {
					return nil // escapes, or a non-word access
				}
				uses = true
			}
			if !uses {
				continue
			}
			switch in.Op {
			case ir.Load:
				if l.Blocks[bi] {
					loads = append(loads, in)
				}
			case ir.Store:
				if l.Blocks[bi] {
					if inc != nil || bi != latch || in.Args[1] != next {
						return nil // a second in-loop store, or not the increment
					}
					inc, incIdx = in, ii
				} else {
					if haveInit {
						return nil // one init store only
					}
					c, ok := constOf(in.Args[1])
					if !ok || c >= rangeBound || c <= -rangeBound {
						return nil
					}
					if !li.Dom.Dominates(bi, l.Header) {
						return nil
					}
					init, haveInit = c, true
				}
			}
		}
	}
	if inc == nil || !haveInit {
		return nil
	}
	if !(ldIdx < addIdx && addIdx < incIdx && incIdx < cmpIdx) {
		return nil
	}

	maxv := init
	if limit > init {
		k := (limit - 1 - init) / step
		maxv = init + k*step
	}
	iv := IndVar{
		Slot: slot, Init: init, Step: step, Limit: limit,
		MaxVal: maxv, Latch: latch, Inc: inc,
		LoadHi: make(map[*ir.Instr]int64, len(loads)),
	}
	for _, lod := range loads {
		hi := maxv
		if i, ok := idx[lod]; ok && i > incIdx {
			hi = maxv + step // latch load after the increment
		}
		iv.LoadHi[lod] = hi
	}
	return []IndVar{iv}
}

// addOperands splits an add into (variable, constant) via constOf,
// accepting either operand order.
func addOperands(add *ir.Instr, constOf func(string) (int64, bool)) (string, int64, bool) {
	if c, ok := constOf(add.Args[1]); ok {
		return add.Args[0], c, true
	}
	if c, ok := constOf(add.Args[0]); ok {
		return add.Args[1], c, true
	}
	return "", 0, false
}
