// Package ripe reimplements the buffer-overflow subset of the RIPE
// runtime intrusion prevention evaluator (Wilander et al., ACSAC'11)
// in its 64-bit PM port, as used for Table IV of the paper: a fixed
// matrix of attack instances, each combining an overflow technique, an
// overflow primitive, a victim location and a target, executed against
// every protection variant.
//
// An attack is Successful when it corrupts its target without
// triggering a trap, and Prevented otherwise (trapped, crashed, or
// intrinsically failed — RIPE counts non-viable attacks as prevented).
// Each mechanism's misses are emergent from its blind spots:
//
//   - every variant misses intra-object overflows (no mechanism has
//     sub-object bounds) and attacks through pointers laundered via
//     integers (the tag is stripped at PtrToInt, §IV-G);
//   - SafePM additionally misses layout-adaptive jumps that skip its
//     redzones and land inside a live neighbour;
//   - memcheck additionally misses fixed-offset jumps into live
//     neighbours, since without redzones its layout equals the
//     baseline and it only tracks block-granular addressability.
package ripe

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/hooks"
	"repro/internal/variant"
)

// Technique is how the out-of-bounds pointer is formed.
type Technique string

// Techniques.
const (
	Direct          Technique = "direct"           // contiguous walk off the buffer end
	IndexedFixed    Technique = "indexed-fixed"    // single jump, offset from the baseline layout
	IndexedAdaptive Technique = "indexed-adaptive" // single jump, offset read from the live layout
	Laundered       Technique = "laundered"        // pointer round-tripped through an integer
	Wraparound      Technique = "wraparound"       // offset past the tag representation range
	IntoFree        Technique = "into-free"        // jump into freed space
	OvershootPool   Technique = "overshoot-pool"   // offset beyond the pool mapping
	IntraObject     Technique = "intra-object"     // overflow within one allocation
)

// Primitive is the code path performing the overflow writes.
type Primitive string

// Primitives.
const (
	LoopStore Primitive = "loop-store"
	Memcpy    Primitive = "memcpy"
	Memmove   Primitive = "memmove"
	Strcpy    Primitive = "strcpy"
	Strcat    Primitive = "strcat"
	Sprintf   Primitive = "sprintf"
	StoreU64  Primitive = "store-u64"
)

// Location is the victim/target placement.
type Location string

// Locations.
const (
	Adjacent Location = "adjacent" // target object directly after the victim
	Spaced   Location = "spaced"   // a spacer object between victim and target
)

// TargetKind is what the attack corrupts.
type TargetKind string

// Targets (RIPE's code pointers, mapped to PM analogues).
const (
	FuncPtr   TargetKind = "funcptr" // a stored code-pointer slot
	StoredOid TargetKind = "oid"     // a persisted PMEMoid
	Data      TargetKind = "data"    // plain application data
)

// Payload shapes for direct attacks.
type Payload string

// Payloads.
const (
	Exact        Payload = "exact"         // reaches exactly through the target
	Short        Payload = "short"         // stops halfway to the target
	ShortQuarter Payload = "short-quarter" // stops a quarter of the way
	WithNul      Payload = "with-nul"      // contains a 0x00 byte (string primitives truncate)
	Overshoot    Payload = "overshoot"     // continues past the target
)

// Attack is one instance of the matrix.
type Attack struct {
	ID        int
	Technique Technique
	Primitive Primitive
	Location  Location
	Target    TargetKind
	Payload   Payload
	// Spot selects where a fixed-offset jump lands inside the target
	// (0 = target slot, 1 = slot+8), a sub-variant dimension.
	Spot int
}

func (a Attack) String() string {
	return fmt.Sprintf("#%d %s/%s/%s/%s/%s", a.ID, a.Technique, a.Primitive, a.Location, a.Target, a.Payload)
}

var allTargets = []TargetKind{FuncPtr, StoredOid, Data}
var allLocations = []Location{Adjacent, Spaced}
var memPrimitives = []Primitive{LoopStore, Memcpy, Memmove}
var allPrimitives = []Primitive{LoopStore, Memcpy, Memmove, Strcpy, Strcat, Sprintf}

// Matrix generates the full attack set (223 instances).
func Matrix() []Attack {
	var out []Attack
	add := func(a Attack) {
		a.ID = len(out) + 1
		out = append(out, a)
	}
	// Direct contiguous overflows: the bulk of the benchmark.
	for _, prim := range allPrimitives {
		for _, loc := range allLocations {
			for _, tgt := range allTargets {
				for _, pay := range []Payload{Exact, Short, ShortQuarter, WithNul} {
					add(Attack{Technique: Direct, Primitive: prim, Location: loc, Target: tgt, Payload: pay})
				}
			}
		}
	}
	// Overshooting variants for the memory primitives.
	for _, prim := range memPrimitives {
		for _, tgt := range allTargets {
			add(Attack{Technique: Direct, Primitive: prim, Location: Adjacent, Target: tgt, Payload: Overshoot})
		}
	}
	// Fixed-offset single-store jumps (14): layout-derived offsets.
	for _, loc := range allLocations {
		for _, tgt := range allTargets {
			for spot := 0; spot < 2; spot++ {
				add(Attack{Technique: IndexedFixed, Primitive: StoreU64, Location: loc, Target: tgt, Spot: spot})
			}
		}
	}
	add(Attack{Technique: IndexedFixed, Primitive: StoreU64, Location: Adjacent, Target: FuncPtr, Spot: 2})
	add(Attack{Technique: IndexedFixed, Primitive: StoreU64, Location: Spaced, Target: FuncPtr, Spot: 2})
	// Adaptive jumps (2): the attacker reads the live layout first.
	add(Attack{Technique: IndexedAdaptive, Primitive: StoreU64, Location: Adjacent, Target: FuncPtr})
	add(Attack{Technique: IndexedAdaptive, Primitive: StoreU64, Location: Spaced, Target: StoredOid})
	// Laundered pointers (2): PtrToInt/IntToPtr strips the tag.
	add(Attack{Technique: Laundered, Primitive: StoreU64, Location: Adjacent, Target: FuncPtr})
	add(Attack{Technique: Laundered, Primitive: StoreU64, Location: Adjacent, Target: Data})
	// Intra-object overflows (2): within one allocation's bounds.
	add(Attack{Technique: IntraObject, Primitive: LoopStore, Location: Adjacent, Target: FuncPtr})
	add(Attack{Technique: IntraObject, Primitive: StoreU64, Location: Adjacent, Target: Data})
	// Wraparound attempts (14): offsets past the tag range.
	for _, loc := range allLocations {
		for _, tgt := range allTargets {
			add(Attack{Technique: Wraparound, Primitive: StoreU64, Location: loc, Target: tgt})
		}
	}
	for _, loc := range allLocations {
		for _, tgt := range allTargets {
			add(Attack{Technique: Wraparound, Primitive: LoopStore, Location: loc, Target: tgt})
		}
	}
	add(Attack{Technique: Wraparound, Primitive: Memcpy, Location: Adjacent, Target: FuncPtr})
	add(Attack{Technique: Wraparound, Primitive: Memcpy, Location: Spaced, Target: FuncPtr})
	// Jumps into freed space (18): nothing to corrupt there.
	for _, prim := range []Primitive{StoreU64, LoopStore, Memcpy} {
		for _, loc := range allLocations {
			for _, tgt := range allTargets {
				add(Attack{Technique: IntoFree, Primitive: prim, Location: loc, Target: tgt})
			}
		}
	}
	// Offsets beyond the pool mapping (18): fault everywhere.
	for _, prim := range allPrimitives {
		for _, tgt := range allTargets {
			add(Attack{Technique: OvershootPool, Primitive: prim, Location: Adjacent, Target: tgt})
		}
	}
	return out
}

// Outcome of one attack execution.
type Outcome int

// Outcomes.
const (
	Successful Outcome = iota + 1
	Prevented
)

func (o Outcome) String() string {
	if o == Successful {
		return "successful"
	}
	return "prevented"
}

// RowKind names a Table IV row.
type RowKind string

// Table IV rows.
const (
	VolatileHeap RowKind = "volatile-heap"
	PMPoolHeap   RowKind = "pm-pool-heap"
	RowSafePM    RowKind = "safepm"
	RowSPP       RowKind = "spp"
	RowMemcheck  RowKind = "memcheck"
)

// Rows lists Table IV in the paper's order.
var Rows = []RowKind{VolatileHeap, PMPoolHeap, RowSafePM, RowSPP, RowMemcheck}

func (r RowKind) variantKind() variant.Kind {
	switch r {
	case RowSafePM:
		return variant.SafePM
	case RowSPP:
		return variant.SPP
	case RowMemcheck:
		return variant.Memcheck
	default:
		return variant.PMDK
	}
}

const (
	// victimSize is chosen so SafePM's 32 bytes of redzone push the
	// padded allocation into the next size class: fixed-offset attacks
	// compiled against the baseline layout then miss under SafePM.
	victimSize = 112
	spacerSize = 128
	intraSize  = 160
	// attackerWord is the value the attack tries to plant.
	attackerWord = 0x4141414141414141
)

// baselineDist is the victim-payload to target-payload distance under
// the unprotected layout of the given environment class. Fixed-offset
// attacks are compiled against this layout; runtime layouts that
// differ (SafePM's redzones) send them astray.
func baselineDist(row RowKind, loc Location) int64 {
	if row == VolatileHeap {
		// Bump allocator: 16-aligned, no headers.
		d := int64(victimSize)
		if loc == Spaced {
			d += spacerSize
		}
		return d
	}
	// Pool allocator: class-rounded block (header included).
	d := int64(128) // class of a 112-byte object
	if loc == Spaced {
		d += 256 // class of a 128-byte spacer
	}
	return d
}

// scenario is a prepared attack site.
type scenario struct {
	rt        hooks.Runtime
	bufPtr    uint64 // victim buffer pointer (tagged under SPP)
	targetPtr uint64 // plain address of the target slot, for verification
	dist      int64  // actual payload-to-target distance in this run
	poolSize  uint64
	tagBits   uint
}

// Runner executes attacks.
type Runner struct {
	// PoolSize for per-attack environments.
	PoolSize uint64
}

// Execute runs one attack under one row's protection and reports the
// outcome.
func (r *Runner) Execute(a Attack, row RowKind) (Outcome, error) {
	poolSize := r.PoolSize
	if poolSize == 0 {
		poolSize = 8 << 20
	}
	env, err := variant.New(row.variantKind(), variant.Options{
		PoolSize: poolSize,
		Geometry: engine.Geometry{NLanes: 4},
	})
	if err != nil {
		return 0, err
	}
	sc, err := r.setup(a, row, env)
	if err != nil {
		return 0, err
	}
	trapErr := r.attack(a, row, sc)
	if hooks.IsSafetyTrap(trapErr) {
		return Prevented, nil
	}
	if trapErr != nil {
		return 0, trapErr
	}
	// No trap: did the target get corrupted?
	v, err := env.AS.LoadU64(sc.targetPtr)
	if err != nil {
		return 0, fmt.Errorf("verify target: %w", err)
	}
	if v == attackerWord {
		return Successful, nil
	}
	return Prevented, nil
}

// setup allocates the victim, spacer and target per the attack's
// location and returns the prepared scenario.
func (r *Runner) setup(a Attack, row RowKind, env *variant.Env) (*scenario, error) {
	rt := env.RT
	sc := &scenario{
		rt:       rt,
		poolSize: env.Dev.Size(),
		tagBits:  env.Pool.Encoding().TagBits(),
	}
	alloc := func(size uint64) (ptr, plain uint64, free func() error, err error) {
		if row == VolatileHeap {
			p, err := env.Heap.Alloc(size)
			return p, p, func() error { env.Heap.Free(p); return nil }, err
		}
		oid, err := rt.Alloc(size)
		if err != nil {
			return 0, 0, nil, err
		}
		p := rt.Direct(oid)
		return p, rt.External(p), func() error { return rt.Free(oid) }, nil
	}

	if a.Technique == IntraObject {
		p, plain, _, err := alloc(intraSize)
		if err != nil {
			return nil, err
		}
		sc.bufPtr = p
		sc.dist = 96 // sibling field inside the same struct
		sc.targetPtr = plain + 96
		return sc, nil
	}

	victim, victimPlain, _, err := alloc(victimSize)
	if err != nil {
		return nil, err
	}
	if a.Location == Spaced {
		if _, _, _, err := alloc(spacerSize); err != nil {
			return nil, err
		}
	}
	var freedPlain uint64
	var freeVictimGap func() error
	if a.Technique == IntoFree {
		// An extra object freed before the attack: its space holds no
		// target.
		_, fplain, ffree, err := alloc(victimSize)
		if err != nil {
			return nil, err
		}
		freedPlain, freeVictimGap = fplain, ffree
	}
	_, targetPlain, _, err := alloc(victimSize)
	if err != nil {
		return nil, err
	}
	sc.bufPtr = victim
	sc.targetPtr = targetPlain
	if a.Technique == IndexedFixed {
		// Spot sub-variants aim at different slots of the target.
		sc.targetPtr = targetPlain + uint64(a.Spot*8)
	}
	sc.dist = int64(targetPlain - victimPlain)
	if a.Technique == IntoFree {
		sc.dist = int64(freedPlain - victimPlain)
		if err := freeVictimGap(); err != nil {
			return nil, err
		}
	}
	return sc, nil
}

// buildPayload constructs the byte string a direct attack writes: a
// filler run ending in the attacker word placed over the target slot.
func buildPayload(a Attack, dist int64) []byte {
	full := int(dist) + 8
	switch a.Payload {
	case Short:
		full = int(dist) / 2
	case ShortQuarter:
		full = int(dist) / 4
	case Overshoot:
		full += 64
	}
	p := make([]byte, full)
	for i := range p {
		p[i] = 0x42
	}
	if a.Payload == WithNul {
		p[len(p)/3] = 0x00
	}
	// Plant the attacker word over the target slot if the payload
	// reaches it.
	if full >= int(dist)+8 {
		for i := 0; i < 8; i++ {
			p[int(dist)+i] = byte(uint64(attackerWord) >> (8 * i))
		}
	}
	return p
}

// attack performs the overflow. The returned error is the trap (if
// any); a nil error means the writes completed.
func (r *Runner) attack(a Attack, row RowKind, sc *scenario) error {
	rt := sc.rt
	buf := sc.bufPtr

	switch a.Technique {
	case Direct, IntraObject:
		return r.writePayload(a, rt, buf, buildPayload(a, sc.dist))

	case IndexedFixed:
		off := baselineDist(row, a.Location) + int64(a.Spot*8)
		return hooks.StoreU64(rt, rt.Gep(buf, off), attackerWord)

	case IndexedAdaptive, IntoFree:
		return hooks.StoreU64(rt, rt.Gep(buf, sc.dist), attackerWord)

	case Laundered:
		// PtrToInt: the instrumentation masks the tag; IntToPtr yields
		// an untagged pointer (§IV-G) through which SPP is blind.
		laundered := rt.External(buf)
		return hooks.StoreU64(rt, rt.Gep(laundered, sc.dist), attackerWord)

	case Wraparound:
		// Drive the tag+overflow field all the way around: the offset
		// must be a multiple of 2^(tag+1) past the target. The address
		// moves with it, far beyond the pool.
		off := sc.dist + int64(uint64(1)<<(sc.tagBits+1))
		if a.Primitive == LoopStore {
			p := rt.Gep(buf, off)
			for i := int64(0); i < 8; i++ {
				if err := hooks.StoreU8(rt, rt.Gep(p, i), 0x41); err != nil {
					return err
				}
			}
			return nil
		}
		if a.Primitive == Memcpy {
			return hooks.Memcpy(rt, rt.Gep(buf, off), buf, 8)
		}
		return hooks.StoreU64(rt, rt.Gep(buf, off), attackerWord)

	case OvershootPool:
		off := int64(sc.poolSize)
		return r.writePayload(a, rt, rt.Gep(buf, off), []byte{0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41, 0x41})

	default:
		return fmt.Errorf("ripe: unknown technique %q", a.Technique)
	}
}

// writePayload runs the attack's overflow primitive.
func (r *Runner) writePayload(a Attack, rt hooks.Runtime, dst uint64, payload []byte) error {
	switch a.Primitive {
	case LoopStore, StoreU64, Sprintf:
		// sprintf formats into a local buffer and then stores byte by
		// byte — identical at the memory interface.
		for i, b := range payload {
			if a.Primitive == Sprintf && b == 0 {
				return nil // %s formatting stops at NUL
			}
			if err := hooks.StoreU8(rt, rt.Gep(dst, int64(i)), b); err != nil {
				return err
			}
		}
		return nil
	case Memcpy, Memmove:
		src, err := r.stage(rt, payload, false)
		if err != nil {
			return err
		}
		if a.Primitive == Memcpy {
			return hooks.Memcpy(rt, dst, src, uint64(len(payload)))
		}
		return hooks.Memmove(rt, dst, src, uint64(len(payload)))
	case Strcpy:
		src, err := r.stage(rt, payload, true)
		if err != nil {
			return err
		}
		return hooks.Strcpy(rt, dst, src)
	case Strcat:
		src, err := r.stage(rt, payload, true)
		if err != nil {
			return err
		}
		// The destination currently starts with a zero byte, so the
		// concatenation begins at dst.
		return hooks.Strcat(rt, dst, src)
	default:
		return fmt.Errorf("ripe: unknown primitive %q", a.Primitive)
	}
}

// stage places the payload into an attacker-controlled staging object
// (NUL-terminated for the string primitives).
func (r *Runner) stage(rt hooks.Runtime, payload []byte, asString bool) (uint64, error) {
	data := payload
	if asString {
		data = append(append([]byte{}, payload...), 0)
	}
	oid, err := rt.Alloc(uint64(len(data)))
	if err != nil {
		return 0, err
	}
	p := rt.Direct(oid)
	if err := rt.Space().StoreBytes(rt.External(p), data); err != nil {
		return 0, err
	}
	return p, nil
}

// RowResult is one Table IV row.
type RowResult struct {
	Row        RowKind
	Successful int
	Prevented  int
	// SucceededIDs lists the attacks that got through, for diagnosis.
	SucceededIDs []int
}

// RunRow executes the whole matrix against one row.
func (r *Runner) RunRow(row RowKind) (RowResult, error) {
	res := RowResult{Row: row}
	for _, a := range Matrix() {
		out, err := r.Execute(a, row)
		if err != nil {
			return res, fmt.Errorf("%s under %s: %w", a, row, err)
		}
		if out == Successful {
			res.Successful++
			res.SucceededIDs = append(res.SucceededIDs, a.ID)
		} else {
			res.Prevented++
		}
	}
	return res, nil
}

// RunTable executes the matrix against every row of Table IV.
func (r *Runner) RunTable() ([]RowResult, error) {
	out := make([]RowResult, 0, len(Rows))
	for _, row := range Rows {
		res, err := r.RunRow(row)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
