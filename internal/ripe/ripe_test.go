package ripe

import "testing"

func TestMatrixSize(t *testing.T) {
	m := Matrix()
	if len(m) != 223 {
		t.Fatalf("matrix has %d attacks, want 223 (RIPE's buffer-overflow subset)", len(m))
	}
	seen := make(map[int]bool, len(m))
	for _, a := range m {
		if a.ID == 0 || seen[a.ID] {
			t.Fatalf("bad or duplicate attack ID %d", a.ID)
		}
		seen[a.ID] = true
		if a.String() == "" {
			t.Error("empty attack description")
		}
	}
}

// TestTableIV reproduces the paper's Table IV exactly: the same attack
// counts survive or are prevented under each protection row.
func TestTableIV(t *testing.T) {
	want := map[RowKind]struct{ successful, prevented int }{
		VolatileHeap: {83, 140},
		PMPoolHeap:   {83, 140},
		RowSafePM:    {6, 217},
		RowSPP:       {4, 219},
		RowMemcheck:  {20, 203},
	}
	r := &Runner{}
	results, err := r.RunTable()
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		w := want[res.Row]
		if res.Successful != w.successful || res.Prevented != w.prevented {
			t.Errorf("%s: got %d/%d, want %d/%d (succeeded: %v)",
				res.Row, res.Successful, res.Prevented, w.successful, w.prevented, res.SucceededIDs)
		}
	}
}

// TestSPPMissesAreExplained: every attack surviving SPP must be of a
// class the paper concedes (laundered pointers or intra-object).
func TestSPPMissesAreExplained(t *testing.T) {
	r := &Runner{}
	res, err := r.RunRow(RowSPP)
	if err != nil {
		t.Fatal(err)
	}
	byID := make(map[int]Attack)
	for _, a := range Matrix() {
		byID[a.ID] = a
	}
	for _, id := range res.SucceededIDs {
		a := byID[id]
		if a.Technique != Laundered && a.Technique != IntraObject {
			t.Errorf("SPP missed %s, which it should catch", a)
		}
	}
}

// TestMechanismOrdering: the precision ordering of the mechanisms must
// hold attack-by-attack, not just in aggregate: anything SPP misses is
// also missed by SafePM and memcheck (their blind spots are supersets).
func TestMechanismOrdering(t *testing.T) {
	r := &Runner{}
	spp, err := r.RunRow(RowSPP)
	if err != nil {
		t.Fatal(err)
	}
	safepm, err := r.RunRow(RowSafePM)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := r.RunRow(RowMemcheck)
	if err != nil {
		t.Fatal(err)
	}
	inSafe := make(map[int]bool)
	for _, id := range safepm.SucceededIDs {
		inSafe[id] = true
	}
	inMc := make(map[int]bool)
	for _, id := range mc.SucceededIDs {
		inMc[id] = true
	}
	for _, id := range spp.SucceededIDs {
		if !inSafe[id] || !inMc[id] {
			t.Errorf("attack %d missed by SPP but caught by a weaker mechanism", id)
		}
	}
	for _, id := range safepm.SucceededIDs {
		if !inMc[id] {
			t.Errorf("attack %d missed by SafePM but caught by memcheck", id)
		}
	}
}

// TestBaselineLayoutAssumption pins the layout constants that the
// fixed-offset attacks are compiled against.
func TestBaselineLayoutAssumption(t *testing.T) {
	if d := baselineDist(PMPoolHeap, Adjacent); d != 128 {
		t.Errorf("pool adjacent baseline = %d, want 128", d)
	}
	if d := baselineDist(PMPoolHeap, Spaced); d != 384 {
		t.Errorf("pool spaced baseline = %d, want 384", d)
	}
	if d := baselineDist(VolatileHeap, Adjacent); d != 112 {
		t.Errorf("volatile adjacent baseline = %d, want 112", d)
	}
	// Verify against a live unprotected environment.
	r := &Runner{}
	a := Attack{Technique: IndexedAdaptive, Primitive: StoreU64, Location: Adjacent, Target: FuncPtr}
	out, err := r.Execute(a, PMPoolHeap)
	if err != nil {
		t.Fatal(err)
	}
	if out != Successful {
		t.Error("adaptive jump failed on unprotected pool; layout drifted")
	}
}
