package variant

import (
	"testing"

	"repro/internal/engine/enginetest"
)

// TestKnobsSurviveTranslation asserts the variant layer forwards every
// engine knob and geometry field into the pool config. The fields are
// filled by reflection, so a field added to engine.Knobs is covered
// here without editing the test.
func TestKnobsSurviveTranslation(t *testing.T) {
	o := Options{
		PoolSize: 1 << 20,
		Knobs:    enginetest.Filled(),
		Geometry: enginetest.FilledGeometry(),
	}
	cfg := o.poolConfig()
	if cfg.Knobs != o.Knobs {
		t.Errorf("poolConfig dropped knobs: got %+v, want %+v", cfg.Knobs, o.Knobs)
	}
	if cfg.Geometry != o.Geometry {
		t.Errorf("poolConfig dropped geometry: got %+v, want %+v", cfg.Geometry, o.Geometry)
	}
}
