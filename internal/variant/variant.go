// Package variant wires up the benchmarking environments of Table I:
// a simulated PM device, the simulated address space, an object pool
// and the protection runtime for each mechanism under evaluation.
package variant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/hooks"
	"repro/internal/memcheck"
	"repro/internal/pmem"
	"repro/internal/pmemobj"
	"repro/internal/safepm"
	"repro/internal/telemetry"
	"repro/internal/vmem"
)

// Kind selects the protection mechanism.
type Kind string

// The evaluated variants (Table I plus the memcheck row of Table IV).
const (
	PMDK     Kind = "pmdk"
	SPP      Kind = "spp"
	SafePM   Kind = "safepm"
	Memcheck Kind = "memcheck"
	// SPPPacked is the paper's future-work oid layout (§VI-C): SPP
	// protection with the size packed into the offset word, keeping
	// oids at PMDK's 16-byte footprint.
	SPPPacked Kind = "spp-packed"
)

// Kinds lists all variants in presentation order.
var Kinds = []Kind{PMDK, SafePM, SPP, Memcheck}

// DefaultBase is where pools map in the simulated address space: low,
// as the paper configures via PMEM_MMAP_HINT=0.
const DefaultBase = 0x10000

// Options sizes the environment.
type Options struct {
	// PoolSize is the PM pool size in bytes.
	PoolSize uint64
	// TagBits is the SPP tag width (core.DefaultTagBits when zero).
	TagBits uint
	// HeapSize is the simulated volatile heap size (16 MiB when zero).
	HeapSize uint64
	// NLanes, RedoEntries, UndoBytes override pool log geometry.
	NLanes      int
	RedoEntries int
	UndoBytes   uint64
	// NArenas overrides the allocator arena count (volatile knob).
	NArenas int
	// DisableLaneAffinity dispenses lanes only through the shared
	// channel (volatile knob).
	DisableLaneAffinity bool
	// DisableRangeDedup, DisableFlushCoalesce and DisableGroupFence
	// turn off the corresponding legs of the batched commit pipeline
	// (volatile knobs; see pmemobj.Config).
	DisableRangeDedup    bool
	DisableFlushCoalesce bool
	DisableGroupFence    bool
	// Telemetry enables the global metrics registry and binds the
	// pool's heap-state gauges (volatile knob).
	Telemetry bool
	// FlightRecorder enables the global flight-recorder event ring
	// (volatile knob).
	FlightRecorder bool
	// DisableBitmapAlloc turns off the allocator's free-bitmap
	// size-class pools (volatile knob; see pmemobj.Config).
	DisableBitmapAlloc bool
	// NoCompile makes the interpreter execute IR by walking
	// instructions instead of through closure-compiled functions
	// (volatile knob; the interpreter is the reference semantics).
	NoCompile bool
}

// poolConfig translates the volatile knobs into a pmemobj.Config.
func (o Options) poolConfig() pmemobj.Config {
	return pmemobj.Config{
		NArenas:              o.NArenas,
		DisableLaneAffinity:  o.DisableLaneAffinity,
		DisableRangeDedup:    o.DisableRangeDedup,
		DisableFlushCoalesce: o.DisableFlushCoalesce,
		DisableGroupFence:    o.DisableGroupFence,
		Telemetry:            o.Telemetry,
		FlightRecorder:       o.FlightRecorder,
		DisableBitmapAlloc:   o.DisableBitmapAlloc,
	}
}

// Env is an assembled environment.
type Env struct {
	Kind Kind
	Dev  *pmem.Pool
	AS   *vmem.AddressSpace
	Pool *pmemobj.Pool
	RT   hooks.Runtime
	Heap *vmem.Heap

	base uint64
	opts Options
}

// New builds a fresh environment of the given kind.
func New(kind Kind, opts Options) (*Env, error) {
	if opts.PoolSize == 0 {
		return nil, fmt.Errorf("variant: PoolSize required")
	}
	// Enable before the device exists: pmem latches the telemetry flag
	// at pool creation so its data path stays branch-predictable.
	if opts.Telemetry {
		telemetry.Enable()
	}
	return Format(kind, pmem.NewPool(string(kind), opts.PoolSize), opts)
}

// Format builds an environment over a caller-supplied device, creating
// the pool layout on it.
func Format(kind Kind, dev *pmem.Pool, opts Options) (*Env, error) {
	if opts.HeapSize == 0 {
		opts.HeapSize = 16 << 20
	}
	if opts.TagBits == 0 {
		opts.TagBits = core.DefaultTagBits
	}
	as := vmem.New()
	heap, err := vmem.NewHeap(as, vmem.DefaultHeapBase, opts.HeapSize)
	if err != nil {
		return nil, err
	}
	cfg := opts.poolConfig()
	cfg.SPP = kind == SPP || kind == SPPPacked
	cfg.PackedOid = kind == SPPPacked
	cfg.TagBits = opts.TagBits
	cfg.NLanes = opts.NLanes
	cfg.RedoEntries = opts.RedoEntries
	cfg.UndoBytes = opts.UndoBytes
	pool, err := pmemobj.Create(dev, as, DefaultBase, cfg)
	if err != nil {
		return nil, err
	}
	env := &Env{Kind: kind, Dev: dev, AS: as, Pool: pool, Heap: heap, base: DefaultBase, opts: opts}
	if err := env.attach(); err != nil {
		return nil, err
	}
	return env, nil
}

func (e *Env) attach() error {
	var err error
	switch e.Kind {
	case PMDK:
		e.RT = hooks.NewNative(e.Pool, e.AS)
	case SPP, SPPPacked:
		e.RT, err = hooks.NewSPP(e.Pool, e.AS)
	case SafePM:
		e.RT, err = safepm.Attach(e.Pool, e.AS)
	case Memcheck:
		e.RT, err = memcheck.Attach(e.Pool, e.AS)
	default:
		err = fmt.Errorf("variant: unknown kind %q", e.Kind)
	}
	return err
}

// Adopt opens an environment over an existing device image (e.g. a
// crash state produced by the pmemcheck exploration engine), running
// pool recovery and attaching the runtime.
func Adopt(kind Kind, dev *pmem.Pool) (*Env, error) {
	return AdoptConfig(kind, dev, Options{})
}

// AdoptConfig is Adopt with explicit volatile knobs (arena count, lane
// affinity, telemetry). The knobs are kept on the environment, so a
// later Reopen preserves them — persistent geometry still comes from
// the pool header.
func AdoptConfig(kind Kind, dev *pmem.Pool, opts Options) (*Env, error) {
	if opts.HeapSize == 0 {
		opts.HeapSize = 16 << 20
	}
	as := vmem.New()
	heap, err := vmem.NewHeap(as, vmem.DefaultHeapBase, opts.HeapSize)
	if err != nil {
		return nil, err
	}
	pool, err := pmemobj.OpenConfig(dev, as, DefaultBase, opts.poolConfig())
	if err != nil {
		return nil, err
	}
	env := &Env{Kind: kind, Dev: dev, AS: as, Pool: pool, Heap: heap, base: DefaultBase, opts: opts}
	if err := env.attach(); err != nil {
		return nil, err
	}
	return env, nil
}

// Reopen simulates an application restart: the pool is unmapped and
// re-opened from the same device, running recovery and rebuilding the
// runtime's metadata. The environment's volatile concurrency knobs
// (arena count, lane affinity) carry over.
// NoCompile reports whether machines over this environment should run
// the reference interpreter instead of closure-compiled functions.
func (e *Env) NoCompile() bool { return e.opts.NoCompile }

func (e *Env) Reopen() error {
	if err := e.Pool.Close(); err != nil {
		return err
	}
	pool, err := pmemobj.OpenConfig(e.Dev, e.AS, e.base, e.opts.poolConfig())
	if err != nil {
		return err
	}
	e.Pool = pool
	return e.attach()
}
