// Package variant wires up the benchmarking environments of Table I:
// a simulated PM device, the simulated address space, an object pool
// and the protection runtime for each mechanism under evaluation.
package variant

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/hooks"
	"repro/internal/memcheck"
	"repro/internal/pmem"
	"repro/internal/pmemobj"
	"repro/internal/safepm"
	"repro/internal/telemetry"
	"repro/internal/vmem"
)

// Kind selects the protection mechanism.
type Kind string

// The evaluated variants (Table I plus the memcheck row of Table IV).
const (
	PMDK     Kind = "pmdk"
	SPP      Kind = "spp"
	SafePM   Kind = "safepm"
	Memcheck Kind = "memcheck"
	// SPPPacked is the paper's future-work oid layout (§VI-C): SPP
	// protection with the size packed into the offset word, keeping
	// oids at PMDK's 16-byte footprint.
	SPPPacked Kind = "spp-packed"
)

// Kinds lists all variants in presentation order.
var Kinds = []Kind{PMDK, SafePM, SPP, Memcheck}

// DefaultBase is where pools map in the simulated address space: low,
// as the paper configures via PMEM_MMAP_HINT=0.
const DefaultBase = 0x10000

// Options sizes the environment. The engine tuning surface is the
// embedded engine.Knobs/engine.Geometry (the single definition of
// those fields); Options adds only the environment-level sizing.
type Options struct {
	// PoolSize is the PM pool size in bytes.
	PoolSize uint64
	// TagBits is the SPP tag width (core.DefaultTagBits when zero).
	TagBits uint
	// HeapSize is the simulated volatile heap size (16 MiB when zero).
	HeapSize uint64

	engine.Geometry
	engine.Knobs
}

// poolConfig translates the environment options into a pmemobj.Config.
// Knobs and geometry pass through as whole structs, so a field added
// to engine.Knobs cannot be dropped here.
func (o Options) poolConfig() pmemobj.Config {
	return pmemobj.Config{
		Geometry: o.Geometry,
		Knobs:    o.Knobs,
	}
}

// Env is an assembled environment.
type Env struct {
	Kind Kind
	Dev  *pmem.Pool
	AS   *vmem.AddressSpace
	Pool *pmemobj.Pool
	RT   hooks.Runtime
	Heap *vmem.Heap

	base uint64
	opts Options
}

// New builds a fresh environment of the given kind.
func New(kind Kind, opts Options) (*Env, error) {
	if opts.PoolSize == 0 {
		return nil, fmt.Errorf("variant: PoolSize required")
	}
	// Enable before the device exists: pmem latches the telemetry flag
	// at pool creation so its data path stays branch-predictable.
	if opts.Telemetry {
		telemetry.Enable()
	}
	return Format(kind, pmem.NewPool(string(kind), opts.PoolSize), opts)
}

// Format builds an environment over a caller-supplied device, creating
// the pool layout on it.
func Format(kind Kind, dev *pmem.Pool, opts Options) (*Env, error) {
	if opts.HeapSize == 0 {
		opts.HeapSize = 16 << 20
	}
	if opts.TagBits == 0 {
		opts.TagBits = core.DefaultTagBits
	}
	as := vmem.New()
	heap, err := vmem.NewHeap(as, vmem.DefaultHeapBase, opts.HeapSize)
	if err != nil {
		return nil, err
	}
	cfg := opts.poolConfig()
	cfg.SPP = kind == SPP || kind == SPPPacked
	cfg.PackedOid = kind == SPPPacked
	cfg.TagBits = opts.TagBits
	pool, err := pmemobj.Create(dev, as, DefaultBase, cfg)
	if err != nil {
		return nil, err
	}
	env := &Env{Kind: kind, Dev: dev, AS: as, Pool: pool, Heap: heap, base: DefaultBase, opts: opts}
	if err := env.attach(); err != nil {
		return nil, err
	}
	return env, nil
}

func (e *Env) attach() error {
	var err error
	switch e.Kind {
	case PMDK:
		e.RT = hooks.NewNative(e.Pool, e.AS)
	case SPP, SPPPacked:
		e.RT, err = hooks.NewSPP(e.Pool, e.AS)
	case SafePM:
		e.RT, err = safepm.Attach(e.Pool, e.AS)
	case Memcheck:
		e.RT, err = memcheck.Attach(e.Pool, e.AS)
	default:
		err = fmt.Errorf("variant: unknown kind %q", e.Kind)
	}
	return err
}

// Adopt opens an environment over an existing device image (e.g. a
// crash state produced by the pmemcheck exploration engine), running
// pool recovery and attaching the runtime.
func Adopt(kind Kind, dev *pmem.Pool) (*Env, error) {
	return AdoptConfig(kind, dev, Options{})
}

// AdoptConfig is Adopt with explicit volatile knobs (arena count, lane
// affinity, telemetry). The knobs are kept on the environment, so a
// later Reopen preserves them — persistent geometry still comes from
// the pool header.
func AdoptConfig(kind Kind, dev *pmem.Pool, opts Options) (*Env, error) {
	if opts.HeapSize == 0 {
		opts.HeapSize = 16 << 20
	}
	as := vmem.New()
	heap, err := vmem.NewHeap(as, vmem.DefaultHeapBase, opts.HeapSize)
	if err != nil {
		return nil, err
	}
	pool, err := pmemobj.OpenConfig(dev, as, DefaultBase, opts.poolConfig())
	if err != nil {
		return nil, err
	}
	env := &Env{Kind: kind, Dev: dev, AS: as, Pool: pool, Heap: heap, base: DefaultBase, opts: opts}
	if err := env.attach(); err != nil {
		return nil, err
	}
	return env, nil
}

// Reopen simulates an application restart: the pool is unmapped and
// re-opened from the same device, running recovery and rebuilding the
// runtime's metadata. The environment's volatile concurrency knobs
// (arena count, lane affinity) carry over.
// NoCompile reports whether machines over this environment should run
// the reference interpreter instead of closure-compiled functions.
func (e *Env) NoCompile() bool { return e.opts.NoCompile }

func (e *Env) Reopen() error {
	if err := e.Pool.Close(); err != nil {
		return err
	}
	pool, err := pmemobj.OpenConfig(e.Dev, e.AS, e.base, e.opts.poolConfig())
	if err != nil {
		return err
	}
	e.Pool = pool
	return e.attach()
}
