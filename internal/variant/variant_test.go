package variant

import (
	"errors"
	"testing"

	"repro/internal/hooks"
	"repro/internal/vmem"
)

func newEnv(t *testing.T, kind Kind) *Env {
	t.Helper()
	env, err := New(kind, Options{PoolSize: 8 << 20})
	if err != nil {
		t.Fatalf("New(%s): %v", kind, err)
	}
	return env
}

// TestAllVariantsBasicUsage drives the same program through every
// variant: allocate, write, read back, free. In-bounds behaviour must
// be identical everywhere.
func TestAllVariantsBasicUsage(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(string(kind), func(t *testing.T) {
			env := newEnv(t, kind)
			rt := env.RT
			oid, err := rt.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			p := rt.Direct(oid)
			for i := int64(0); i < 8; i++ {
				if err := hooks.StoreU64(rt, rt.Gep(p, i*8), uint64(i)*7); err != nil {
					t.Fatalf("store %d: %v", i, err)
				}
			}
			for i := int64(0); i < 8; i++ {
				v, err := hooks.LoadU64(rt, rt.Gep(p, i*8))
				if err != nil {
					t.Fatalf("load %d: %v", i, err)
				}
				if v != uint64(i)*7 {
					t.Errorf("slot %d = %d", i, v)
				}
			}
			if err := rt.Free(oid); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOverflowDetectionByVariant is the mechanism-level contract
// behind Table IV: a one-past-the-end store must be detected by every
// protection variant and sail through on native PMDK.
func TestOverflowDetectionByVariant(t *testing.T) {
	tests := []struct {
		kind   Kind
		caught bool
	}{
		{PMDK, false},
		{SPP, true},
		{SafePM, true},
		{Memcheck, true},
	}
	for _, tt := range tests {
		t.Run(string(tt.kind), func(t *testing.T) {
			env := newEnv(t, tt.kind)
			rt := env.RT
			// Surround the victim with live neighbours so the native
			// run has mapped memory to scribble on.
			pre, err := rt.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			victim, err := rt.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			_ = pre
			p := rt.Direct(victim)
			err = hooks.StoreU64(rt, rt.Gep(p, 64), 0xbad)
			if tt.caught && !hooks.IsSafetyTrap(err) {
				t.Errorf("overflow not caught: err=%v", err)
			}
			if !tt.caught && err != nil {
				t.Errorf("native run trapped unexpectedly: %v", err)
			}
		})
	}
}

// TestAdjacentObjectOverflowEscapesMemcheck encodes the precision
// ordering of the mechanisms: an overflow that jumps over any redzone
// straight into an adjacent live object is caught by SPP (tag carries
// per-object bounds) but missed by memcheck (block-granular
// addressability).
func TestAdjacentObjectOverflowEscapesMemcheck(t *testing.T) {
	// Allocate two equal objects back to back; under memcheck they
	// are contiguous live blocks.
	env := newEnv(t, Memcheck)
	rt := env.RT
	a, _ := rt.Alloc(64)
	b, _ := rt.Alloc(64)
	dist := int64(b.Off) - int64(a.Off)
	if dist <= 0 {
		t.Skip("allocator did not place b after a")
	}
	p := rt.Direct(a)
	if err := hooks.StoreU64(rt, rt.Gep(p, dist), 0xbad); err != nil {
		t.Errorf("memcheck caught adjacent-object overflow (too precise): %v", err)
	}

	envS := newEnv(t, SPP)
	rtS := envS.RT
	a2, _ := rtS.Alloc(64)
	b2, _ := rtS.Alloc(64)
	dist2 := int64(b2.Off) - int64(a2.Off)
	p2 := rtS.Direct(a2)
	if err := hooks.StoreU64(rtS, rtS.Gep(p2, dist2), 0xbad); !hooks.IsSafetyTrap(err) {
		t.Errorf("SPP missed adjacent-object overflow: %v", err)
	}
}

// TestFarOverflowEscapesSafePMRedzone: a strided write that skips the
// redzone and lands in the next object's user range evades SafePM but
// not SPP — the paper's explanation for SafePM's 6 surviving RIPE
// attacks vs SPP's 4.
func TestFarOverflowEscapesSafePMRedzone(t *testing.T) {
	env := newEnv(t, SafePM)
	rt := env.RT
	a, _ := rt.Alloc(64)
	b, _ := rt.Alloc(64)
	dist := int64(b.Off) - int64(a.Off)
	if dist <= 64 {
		t.Fatalf("objects not disjoint: dist=%d", dist)
	}
	p := rt.Direct(a)
	// Jump directly into b's user range: both endpoints addressable.
	if err := hooks.StoreU64(rt, rt.Gep(p, dist), 0xbad); err != nil {
		t.Errorf("SafePM caught a redzone-skipping write (unexpected): %v", err)
	}
	// But a write into the redzone itself is caught.
	if err := hooks.StoreU64(rt, rt.Gep(p, 64), 0xbad); !hooks.IsSafetyTrap(err) {
		t.Errorf("SafePM missed a redzone write: %v", err)
	}
}

// TestIntToPtrLaunderingEscapesSPP: converting a tagged pointer to an
// integer and back strips the tag (§IV-G), so a subsequent overflow is
// invisible to SPP. SafePM, checking addresses rather than tags, still
// catches it.
func TestIntToPtrLaunderingEscapesSPP(t *testing.T) {
	env := newEnv(t, SPP)
	rt := env.RT
	pre, _ := rt.Alloc(64)
	victim, _ := rt.Alloc(64)
	_ = pre
	p := rt.Direct(victim)
	// PtrToInt: the compiler inserts __spp_cleantag, yielding the bare
	// address; IntToPtr yields an untagged pointer.
	laundered := env.Pool.Encoding().CleanTag(p)
	err := hooks.StoreU64(rt, rt.Gep(laundered, 64), 0xbad)
	if err != nil {
		t.Errorf("SPP caught laundered overflow (should be blind): %v", err)
	}

	envS := newEnv(t, SafePM)
	rtS := envS.RT
	v2, _ := rtS.Alloc(64)
	p2 := rtS.Direct(v2) // untagged already; laundering is a no-op
	if err := hooks.StoreU64(rtS, rtS.Gep(p2, 64), 0xbad); !hooks.IsSafetyTrap(err) {
		t.Errorf("SafePM missed laundered overflow: %v", err)
	}
}

func TestMemIntrinsicsChecked(t *testing.T) {
	for _, kind := range []Kind{SPP, SafePM, Memcheck} {
		t.Run(string(kind), func(t *testing.T) {
			env := newEnv(t, kind)
			rt := env.RT
			src, _ := rt.Alloc(128)
			dst, _ := rt.Alloc(64)
			ps, pd := rt.Direct(src), rt.Direct(dst)
			if err := hooks.Memcpy(rt, pd, ps, 64); err != nil {
				t.Fatalf("in-bounds memcpy: %v", err)
			}
			if err := hooks.Memcpy(rt, pd, ps, 65); !hooks.IsSafetyTrap(err) {
				t.Errorf("memcpy overflow not caught: %v", err)
			}
			if err := hooks.Memset(rt, pd, 0xAA, 65); !hooks.IsSafetyTrap(err) {
				t.Errorf("memset overflow not caught: %v", err)
			}
		})
	}
}

func TestStringWrappersChecked(t *testing.T) {
	for _, kind := range []Kind{SPP, SafePM} {
		t.Run(string(kind), func(t *testing.T) {
			env := newEnv(t, kind)
			rt := env.RT
			src, _ := rt.Alloc(32)
			dst, _ := rt.Alloc(8)
			ps, pd := rt.Direct(src), rt.Direct(dst)
			if err := hooks.StoreBytes(rt, ps, append([]byte("0123456789"), 0)); err != nil {
				t.Fatal(err)
			}
			// 11 bytes into an 8-byte buffer.
			if err := hooks.Strcpy(rt, pd, ps); !hooks.IsSafetyTrap(err) {
				t.Errorf("strcpy overflow not caught: %v", err)
			}
			// A short string fits.
			if err := hooks.StoreBytes(rt, ps, append([]byte("ok"), 0)); err != nil {
				t.Fatal(err)
			}
			if err := hooks.Strcpy(rt, pd, ps); err != nil {
				t.Errorf("in-bounds strcpy failed: %v", err)
			}
			n, err := hooks.Strlen(rt, pd)
			if err != nil || n != 2 {
				t.Errorf("strlen = %d, %v", n, err)
			}
			c, err := hooks.Strcmp(rt, pd, ps)
			if err != nil || c != 0 {
				t.Errorf("strcmp = %d, %v", c, err)
			}
		})
	}
}

func TestStrcatChecked(t *testing.T) {
	env := newEnv(t, SPP)
	rt := env.RT
	dst, _ := rt.Alloc(8)
	src, _ := rt.Alloc(8)
	pd, ps := rt.Direct(dst), rt.Direct(src)
	if err := hooks.StoreBytes(rt, pd, append([]byte("abc"), 0)); err != nil {
		t.Fatal(err)
	}
	if err := hooks.StoreBytes(rt, ps, append([]byte("de"), 0)); err != nil {
		t.Fatal(err)
	}
	if err := hooks.Strcat(rt, pd, ps); err != nil {
		t.Fatalf("in-bounds strcat: %v", err)
	}
	n, _ := hooks.Strlen(rt, pd)
	if n != 5 {
		t.Errorf("after strcat len = %d", n)
	}
	// Appending 4 more bytes (3 + NUL) to the 6 used exceeds 8.
	if err := hooks.StoreBytes(rt, ps, append([]byte("xyz"), 0)); err != nil {
		t.Fatal(err)
	}
	if err := hooks.Strcat(rt, pd, ps); !hooks.IsSafetyTrap(err) {
		t.Errorf("strcat overflow not caught: %v", err)
	}
}

// TestSafePMShadowSurvivesReopen: the shadow is persistent and
// rebuilt, so redzone protection holds across restarts — including on
// the recovery path (design goal #4, evaluated for SafePM in §VI).
func TestSafePMShadowSurvivesReopen(t *testing.T) {
	env := newEnv(t, SafePM)
	oid, err := env.RT.Alloc(40)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Reopen(); err != nil {
		t.Fatal(err)
	}
	rt := env.RT
	p := rt.Direct(oid)
	if err := hooks.StoreU64(rt, p, 1); err != nil {
		t.Fatalf("in-bounds store after reopen: %v", err)
	}
	if err := hooks.StoreU8(rt, rt.Gep(p, 40), 1); !hooks.IsSafetyTrap(err) {
		t.Errorf("redzone not restored after reopen: %v", err)
	}
}

// TestSPPTagsSurviveReopen: the persisted size field lets Direct
// reconstruct identical tagged pointers after a restart (§IV-B).
func TestSPPTagsSurviveReopen(t *testing.T) {
	env := newEnv(t, SPP)
	root, err := env.RT.Root(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.RT.AllocAt(root.Off, 48); err != nil {
		t.Fatal(err)
	}
	before := env.RT.Direct(env.Pool.ReadOid(root.Off))
	if err := env.Reopen(); err != nil {
		t.Fatal(err)
	}
	after := env.RT.Direct(env.Pool.ReadOid(root.Off))
	if before != after {
		t.Errorf("tagged pointer changed across reopen: %#x vs %#x", before, after)
	}
	rt := env.RT
	if err := hooks.StoreU8(rt, rt.Gep(after, 48), 1); !hooks.IsSafetyTrap(err) {
		t.Errorf("bounds not enforced after reopen: %v", err)
	}
}

func TestMemcheckDetectionSurvivesReopen(t *testing.T) {
	env := newEnv(t, Memcheck)
	oid, err := env.RT.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	free, err := env.RT.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := env.RT.Free(free); err != nil {
		t.Fatal(err)
	}
	if err := env.Reopen(); err != nil {
		t.Fatal(err)
	}
	rt := env.RT
	p := rt.Direct(oid)
	if err := hooks.StoreU64(rt, p, 1); err != nil {
		t.Fatalf("in-bounds store after reopen: %v", err)
	}
	// The freed neighbour must be non-addressable after rebuild.
	if err := hooks.StoreU64(rt, rt.Gep(p, int64(free.Off)-int64(oid.Off)), 1); !hooks.IsSafetyTrap(err) {
		t.Errorf("freed block addressable after reopen: %v", err)
	}
}

func TestTxThroughHooks(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(string(kind), func(t *testing.T) {
			env := newEnv(t, kind)
			rt := env.RT
			root, err := rt.Root(64)
			if err != nil {
				t.Fatal(err)
			}
			tx := env.Pool.Begin()
			// 112 is 16-aligned so even block-granular memcheck sees
			// the first out-of-bounds byte as outside the allocation.
			oid, err := rt.TxAlloc(tx, 112)
			if err != nil {
				t.Fatal(err)
			}
			if err := tx.AddRange(root.Off, env.Pool.OidPersistedSize()); err != nil {
				t.Fatal(err)
			}
			env.Pool.WriteOid(root.Off, oid)
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			p := rt.Direct(env.Pool.ReadOid(root.Off))
			if err := hooks.StoreU64(rt, p, 42); err != nil {
				t.Fatalf("store into tx-allocated object: %v", err)
			}
			if kind != PMDK {
				if err := hooks.StoreU8(rt, rt.Gep(p, 112), 1); !hooks.IsSafetyTrap(err) {
					t.Errorf("overflow on tx-allocated object not caught: %v", err)
				}
			}
			tx2 := env.Pool.Begin()
			if err := rt.TxFree(tx2, env.Pool.ReadOid(root.Off)); err != nil {
				t.Fatal(err)
			}
			if err := tx2.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestReallocThroughHooks(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(string(kind), func(t *testing.T) {
			env := newEnv(t, kind)
			rt := env.RT
			oid, err := rt.Alloc(32)
			if err != nil {
				t.Fatal(err)
			}
			if err := hooks.StoreU64(rt, rt.Direct(oid), 0x77); err != nil {
				t.Fatal(err)
			}
			grown, err := rt.Realloc(oid, 512)
			if err != nil {
				t.Fatal(err)
			}
			v, err := hooks.LoadU64(rt, rt.Direct(grown))
			if err != nil || v != 0x77 {
				t.Errorf("payload after realloc = %#x, %v", v, err)
			}
			if kind != PMDK {
				p := rt.Direct(grown)
				if err := hooks.StoreU8(rt, rt.Gep(p, 512), 1); !hooks.IsSafetyTrap(err) {
					t.Errorf("overflow after realloc not caught: %v", err)
				}
			}
			if err := rt.Free(grown); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllocAtFreeAtThroughHooks(t *testing.T) {
	for _, kind := range Kinds {
		t.Run(string(kind), func(t *testing.T) {
			env := newEnv(t, kind)
			rt := env.RT
			root, err := rt.Root(64)
			if err != nil {
				t.Fatal(err)
			}
			if err := rt.AllocAt(root.Off, 80); err != nil {
				t.Fatal(err)
			}
			oid := env.Pool.ReadOid(root.Off)
			if oid.IsNull() {
				t.Fatal("AllocAt left null oid")
			}
			if err := hooks.StoreU64(rt, rt.Direct(oid), 5); err != nil {
				t.Fatal(err)
			}
			if err := rt.ReallocAt(root.Off, 160); err != nil {
				t.Fatal(err)
			}
			v, err := hooks.LoadU64(rt, rt.Direct(env.Pool.ReadOid(root.Off)))
			if err != nil || v != 5 {
				t.Errorf("after ReallocAt = %d, %v", v, err)
			}
			if err := rt.FreeAt(root.Off); err != nil {
				t.Fatal(err)
			}
			if got := env.Pool.ReadOid(root.Off); !got.IsNull() {
				t.Errorf("oid after FreeAt = %v", got)
			}
		})
	}
}

func TestExternalMasking(t *testing.T) {
	env := newEnv(t, SPP)
	rt := env.RT
	oid, _ := rt.Alloc(64)
	p := rt.Direct(oid)
	masked := rt.External(p)
	// An external library receives a plain address it can use directly.
	if err := env.AS.StoreU64(masked, 9); err != nil {
		t.Fatalf("external store through masked pointer: %v", err)
	}
	if v, _ := hooks.LoadU64(rt, p); v != 9 {
		t.Error("external store not visible through tagged pointer")
	}
}

func TestVolatileHeapUnchecked(t *testing.T) {
	// Pointers into the volatile heap pass through every mechanism
	// (design goal #3: only PM pointers are instrumented).
	for _, kind := range Kinds {
		env := newEnv(t, kind)
		rt := env.RT
		a, err := env.Heap.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if err := hooks.StoreU64(rt, a, 3); err != nil {
			t.Errorf("%s: volatile store failed: %v", kind, err)
		}
		if v, err := hooks.LoadU64(rt, a); err != nil || v != 3 {
			t.Errorf("%s: volatile load = %d, %v", kind, v, err)
		}
	}
}

func TestNewRequiresPoolSize(t *testing.T) {
	if _, err := New(SPP, Options{}); err == nil {
		t.Error("New without PoolSize succeeded")
	}
	if _, err := New(Kind("bogus"), Options{PoolSize: 8 << 20}); err == nil {
		t.Error("New with bogus kind succeeded")
	}
}

func TestFaultErrorSurfacesFromSPP(t *testing.T) {
	env := newEnv(t, SPP)
	rt := env.RT
	oid, _ := rt.Alloc(8)
	p := rt.Direct(oid)
	_, err := hooks.LoadU64(rt, rt.Gep(p, 8))
	var fe *vmem.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("SPP overflow error = %T %v, want vmem.FaultError", err, err)
	}
	if fe.Addr&(1<<62) == 0 {
		t.Errorf("faulting address %#x lacks overflow bit", fe.Addr)
	}
}
