package variant

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/hooks"
	"repro/internal/pmemobj"
)

// TestAdoptConfigThreadsVolatileKnobs is the regression test for the
// Adopt path losing the volatile concurrency knobs: an environment
// adopted over an existing image must honour the requested arena count
// and lane-affinity setting, and keep honouring them across Reopen.
func TestAdoptConfigThreadsVolatileKnobs(t *testing.T) {
	env := newEnv(t, SPP)
	oid, err := env.RT.Alloc(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := hooks.StoreU64(env.RT, env.RT.Direct(oid), 0xfeed); err != nil {
		t.Fatal(err)
	}
	if err := env.Pool.Close(); err != nil {
		t.Fatal(err)
	}

	opts := Options{Knobs: engine.Knobs{NArenas: 2, DisableLaneAffinity: true}}
	adopted, err := AdoptConfig(SPP, env.Dev, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := adopted.Pool.NArenas(); got != 2 {
		t.Fatalf("adopted pool has %d arenas, want the configured 2", got)
	}
	if adopted.Pool.LaneAffinity() {
		t.Fatal("adopted pool kept lane affinity despite DisableLaneAffinity")
	}

	// The knobs must survive a Reopen (this was the bug: Reopen rebuilt
	// the pool from zero-value options).
	if err := adopted.Reopen(); err != nil {
		t.Fatal(err)
	}
	if got := adopted.Pool.NArenas(); got != 2 {
		t.Fatalf("reopened pool has %d arenas, want 2", got)
	}
	if adopted.Pool.LaneAffinity() {
		t.Fatal("reopened pool regained lane affinity")
	}

	// And the adopted environment still reads the pre-crash data.
	v, err := hooks.LoadU64(adopted.RT, adopted.RT.Direct(oid))
	if err != nil {
		t.Fatal(err)
	}
	if v != 0xfeed {
		t.Fatalf("read %#x, want 0xfeed", v)
	}
}

// TestAdoptDefaultsMatchOpen checks the plain Adopt wrapper still
// yields pool defaults.
func TestAdoptDefaultsMatchOpen(t *testing.T) {
	env := newEnv(t, PMDK)
	if err := env.Pool.Close(); err != nil {
		t.Fatal(err)
	}
	adopted, err := Adopt(PMDK, env.Dev)
	if err != nil {
		t.Fatal(err)
	}
	if got := adopted.Pool.NArenas(); got != pmemobj.DefaultNArenas {
		t.Fatalf("adopted pool has %d arenas, want default %d", got, pmemobj.DefaultNArenas)
	}
	if !adopted.Pool.LaneAffinity() {
		t.Fatal("adopted pool lost lane affinity by default")
	}
}
