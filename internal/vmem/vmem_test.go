package vmem

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"testing/quick"
)

func newSpace(t *testing.T, base Addr, size uint64) *AddressSpace {
	t.Helper()
	as := New()
	if err := as.Map(&Mapping{Base: base, Data: make([]byte, size), Name: "test"}); err != nil {
		t.Fatalf("map: %v", err)
	}
	return as
}

func TestMapRejectsOverlap(t *testing.T) {
	as := newSpace(t, 0x1000, 0x1000)
	tests := []struct {
		name string
		base Addr
		size uint64
	}{
		{"identical", 0x1000, 0x1000},
		{"head overlap", 0x800, 0x900},
		{"tail overlap", 0x1f00, 0x200},
		{"contained", 0x1100, 0x100},
		{"containing", 0x800, 0x3000},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := as.Map(&Mapping{Base: tt.base, Data: make([]byte, tt.size), Name: tt.name})
			if err == nil {
				t.Fatalf("Map(%#x, %#x) succeeded, want overlap error", tt.base, tt.size)
			}
		})
	}
}

func TestMapRejectsEmptyAndWrapping(t *testing.T) {
	as := New()
	if err := as.Map(&Mapping{Base: 0x1000, Name: "empty"}); err == nil {
		t.Error("mapping with empty region accepted")
	}
	if err := as.Map(&Mapping{Base: ^Addr(0) - 10, Data: make([]byte, 100), Name: "wrap"}); err == nil {
		t.Error("wrapping mapping accepted")
	}
}

func TestMapAdjacentRegionsAllowed(t *testing.T) {
	as := newSpace(t, 0x1000, 0x1000)
	if err := as.Map(&Mapping{Base: 0x2000, Data: make([]byte, 0x1000), Name: "next"}); err != nil {
		t.Fatalf("adjacent mapping rejected: %v", err)
	}
	if err := as.Map(&Mapping{Base: 0x0, Data: make([]byte, 0x1000), Name: "prev"}); err != nil {
		t.Fatalf("adjacent mapping rejected: %v", err)
	}
}

func TestUnmap(t *testing.T) {
	as := newSpace(t, 0x1000, 0x1000)
	if err := as.Unmap(0x1000); err != nil {
		t.Fatalf("unmap: %v", err)
	}
	if _, err := as.LoadU8(0x1000); err == nil {
		t.Error("load after unmap succeeded")
	}
	if err := as.Unmap(0x1000); err == nil {
		t.Error("double unmap succeeded")
	}
}

func TestLoadStoreRoundTrip(t *testing.T) {
	as := newSpace(t, 0x1000, 0x1000)

	if err := as.StoreU8(0x1000, 0xab); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU8(0x1000); err != nil || v != 0xab {
		t.Errorf("LoadU8 = %#x, %v; want 0xab", v, err)
	}

	if err := as.StoreU16(0x1010, 0xbeef); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU16(0x1010); err != nil || v != 0xbeef {
		t.Errorf("LoadU16 = %#x, %v; want 0xbeef", v, err)
	}

	if err := as.StoreU32(0x1020, 0xdeadbeef); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU32(0x1020); err != nil || v != 0xdeadbeef {
		t.Errorf("LoadU32 = %#x, %v; want 0xdeadbeef", v, err)
	}

	if err := as.StoreU64(0x1030, 0x0123456789abcdef); err != nil {
		t.Fatal(err)
	}
	if v, err := as.LoadU64(0x1030); err != nil || v != 0x0123456789abcdef {
		t.Errorf("LoadU64 = %#x, %v; want 0x0123456789abcdef", v, err)
	}
}

func TestFaultOnUnmappedAccess(t *testing.T) {
	as := newSpace(t, 0x1000, 0x100)
	tests := []struct {
		name string
		fn   func() error
	}{
		{"load below", func() error { _, err := as.LoadU8(0xfff); return err }},
		{"load above", func() error { _, err := as.LoadU8(0x1100); return err }},
		{"load straddling end", func() error { _, err := as.LoadU64(0x10f9); return err }},
		{"store above", func() error { return as.StoreU64(0x1100, 1) }},
		{"store straddling end", func() error { return as.StoreU32(0x10fd, 1) }},
		{"overflow-bit address", func() error { _, err := as.LoadU64(1<<62 | 0x1000); return err }},
		{"bytes straddling end", func() error { return as.StoreBytes(0x10f0, make([]byte, 32)) }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.fn()
			var fe *FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("got %v, want FaultError", err)
			}
		})
	}
}

func TestFaultErrorFields(t *testing.T) {
	as := newSpace(t, 0x1000, 0x100)
	_, err := as.LoadU64(0x2000)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want FaultError", err)
	}
	if fe.Addr != 0x2000 || fe.Size != 8 || fe.Kind != Load {
		t.Errorf("fault = %+v, want addr=0x2000 size=8 kind=load", fe)
	}
	if fe.Error() == "" {
		t.Error("empty fault message")
	}
}

func TestBytesAndMemmove(t *testing.T) {
	as := newSpace(t, 0x1000, 0x1000)
	src := []byte("persistent memory")
	if err := as.StoreBytes(0x1000, src); err != nil {
		t.Fatal(err)
	}
	got, err := as.LoadBytes(0x1000, uint64(len(src)))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("LoadBytes = %q, %v; want %q", got, err, src)
	}
	if err := as.Memmove(0x1100, 0x1000, uint64(len(src))); err != nil {
		t.Fatal(err)
	}
	got, _ = as.LoadBytes(0x1100, uint64(len(src)))
	if !bytes.Equal(got, src) {
		t.Fatalf("after Memmove = %q, want %q", got, src)
	}
	// Overlapping forward copy must behave like memmove, not memcpy.
	if err := as.Memmove(0x1004, 0x1000, uint64(len(src))); err != nil {
		t.Fatal(err)
	}
	got, _ = as.LoadBytes(0x1004, uint64(len(src)))
	if !bytes.Equal(got, src) {
		t.Fatalf("overlapping Memmove = %q, want %q", got, src)
	}
}

func TestMemset(t *testing.T) {
	as := newSpace(t, 0x1000, 0x100)
	if err := as.Memset(0x1010, 0x7f, 16); err != nil {
		t.Fatal(err)
	}
	got, _ := as.LoadBytes(0x1010, 16)
	for i, b := range got {
		if b != 0x7f {
			t.Fatalf("byte %d = %#x, want 0x7f", i, b)
		}
	}
	if err := as.Memset(0x10f0, 0, 17); err == nil {
		t.Error("Memset past end succeeded")
	}
}

func TestCString(t *testing.T) {
	as := newSpace(t, 0x1000, 0x100)
	if err := as.StoreBytes(0x1000, append([]byte("hello"), 0)); err != nil {
		t.Fatal(err)
	}
	s, err := as.CString(0x1000, 64)
	if err != nil || s != "hello" {
		t.Fatalf("CString = %q, %v; want hello", s, err)
	}
	if _, err := as.CString(0x1000, 3); err == nil {
		t.Error("CString with short max succeeded")
	}
	// Unterminated string running off the mapping must fault.
	if err := as.Memset(0x1000, 'x', 0x100); err != nil {
		t.Fatal(err)
	}
	_, err = as.CString(0x1000, 0x1000)
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("unterminated CString: got %v, want FaultError", err)
	}
}

func TestSliceAliasesBacking(t *testing.T) {
	as := newSpace(t, 0x1000, 0x100)
	s, err := as.Slice(0x1008, 8)
	if err != nil {
		t.Fatal(err)
	}
	s[0] = 0x42
	if v, _ := as.LoadU8(0x1008); v != 0x42 {
		t.Errorf("write through slice not visible: %#x", v)
	}
	if _, err := as.Slice(0x10ff, 2); err == nil {
		t.Error("slice past end succeeded")
	}
}

type recordingObserver struct {
	mu     sync.Mutex
	events []uint64 // packed off<<8 | size
}

func (r *recordingObserver) ObserveStore(off, size uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, off<<8|size)
}

func TestStoreObserver(t *testing.T) {
	obs := &recordingObserver{}
	as := New()
	if err := as.Map(&Mapping{Base: 0x1000, Data: make([]byte, 0x100), Name: "obs", Observer: obs}); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreU64(0x1008, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.StoreBytes(0x1010, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := as.LoadU64(0x1008); err != nil {
		t.Fatal(err)
	}
	want := []uint64{8<<8 | 8, 0x10<<8 | 3}
	obs.mu.Lock()
	defer obs.mu.Unlock()
	if len(obs.events) != len(want) {
		t.Fatalf("observer saw %d events, want %d", len(obs.events), len(want))
	}
	for i := range want {
		if obs.events[i] != want[i] {
			t.Errorf("event %d = %#x, want %#x", i, obs.events[i], want[i])
		}
	}
}

func TestConcurrentMapAndAccess(t *testing.T) {
	as := newSpace(t, 0x1000, 0x1000)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			addr := Addr(0x1000 + g*64)
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := as.StoreU64(addr, uint64(g)); err != nil {
					t.Errorf("store: %v", err)
					return
				}
				if _, err := as.LoadU64(addr); err != nil {
					t.Errorf("load: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 100; i++ {
		base := Addr(0x100000 + i*0x1000)
		if err := as.Map(&Mapping{Base: base, Data: make([]byte, 16), Name: "extra"}); err != nil {
			t.Fatalf("concurrent map: %v", err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestQuickLoadStoreU64(t *testing.T) {
	as := newSpace(t, 0x10000, 1<<16)
	f := func(off uint16, v uint64) bool {
		addr := 0x10000 + Addr(off)%(1<<16-8)
		if err := as.StoreU64(addr, v); err != nil {
			return false
		}
		got, err := as.LoadU64(addr)
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHeapAllocAndFree(t *testing.T) {
	as := New()
	h, err := NewHeap(as, DefaultHeapBase, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	if a != DefaultHeapBase {
		t.Errorf("first alloc at %#x, want heap base %#x", a, DefaultHeapBase)
	}
	if err := as.StoreU64(a, 7); err != nil {
		t.Fatalf("store into heap alloc: %v", err)
	}
	b, err := h.Alloc(8)
	if err != nil {
		t.Fatal(err)
	}
	if b < a+24 {
		t.Errorf("allocations overlap: %#x then %#x", a, b)
	}
	if b%16 != 0 {
		t.Errorf("allocation %#x not 16-byte aligned", b)
	}
	used := h.Used()
	h.Free(b) // LIFO free recycles
	if h.Used() >= used {
		t.Errorf("LIFO free did not shrink heap: %d -> %d", used, h.Used())
	}
	h.Free(a) // non-top free is a no-op
	c, _ := h.Alloc(8)
	if c == a {
		t.Error("non-LIFO free recycled memory")
	}
}

func TestHeapExhaustion(t *testing.T) {
	as := New()
	h, err := NewHeap(as, DefaultHeapBase, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(48); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(32); err == nil {
		t.Error("allocation beyond heap size succeeded")
	}
}

func TestHeapZeroSizeAlloc(t *testing.T) {
	as := New()
	h, err := NewHeap(as, DefaultHeapBase, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	a, err := h.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.Alloc(0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("zero-size allocations share an address")
	}
}
