// Package vmem simulates a 64-bit virtual address space.
//
// SPP's implicit bounds check relies on MMU behaviour: a tagged pointer
// whose overflow bit survives tag cleaning resolves to an address that no
// mapping covers, so the next load or store faults. This package provides
// that address space in Go: byte-addressable mappings registered at fixed
// virtual bases, load/store primitives operating on 64-bit addresses, and
// deterministic faults for any access that falls outside every mapping.
//
// Persistent-memory pools are mapped in the lower part of the address
// space (the paper sets PMEM_MMAP_HINT=0 for the same reason) and the
// simulated volatile heap is mapped high, below the overflow bit.
package vmem

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
)

// Addr is a simulated 64-bit virtual address.
type Addr = uint64

// AccessKind distinguishes loads from stores in fault reports.
type AccessKind int

// Access kinds.
const (
	Load AccessKind = iota + 1
	Store
)

func (k AccessKind) String() string {
	switch k {
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return "access"
	}
}

// FaultError reports an access outside every mapping — the simulated
// SIGSEGV/bus error that an overflown SPP pointer triggers.
type FaultError struct {
	Addr Addr
	Size uint64
	Kind AccessKind
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("vmem: fault: invalid %s of %d bytes at 0x%x", e.Kind, e.Size, e.Addr)
}

// StoreObserver is notified after every store that lands in a mapping
// registered with an observer. The persistent-memory device uses it to
// record store events for crash-consistency checking.
type StoreObserver interface {
	ObserveStore(off, size uint64)
}

// Mapping is a contiguous region of the address space backed by a byte
// slice.
type Mapping struct {
	// Base is the first virtual address of the region.
	Base Addr
	// Data backs the region; its length fixes the region size.
	Data []byte
	// Name identifies the mapping in diagnostics.
	Name string
	// Observer, if non-nil, is notified of stores with offsets relative
	// to Base.
	Observer StoreObserver
}

func (m *Mapping) contains(addr Addr, size uint64) bool {
	off := addr - m.Base
	return addr >= m.Base && off < uint64(len(m.Data)) && uint64(len(m.Data))-off >= size
}

// AddressSpace is a set of non-overlapping mappings. The zero value is
// an empty address space ready for use. Lookups are lock-free; Map and
// Unmap copy-on-write the mapping table, so they are safe to call
// concurrently with accesses.
type AddressSpace struct {
	mu   sync.Mutex // serializes Map/Unmap
	maps atomic.Pointer[[]*Mapping]
}

// New returns an empty address space.
func New() *AddressSpace {
	return &AddressSpace{}
}

func (as *AddressSpace) table() []*Mapping {
	p := as.maps.Load()
	if p == nil {
		return nil
	}
	return *p
}

// Map registers a region. It returns an error if the region is empty,
// wraps around the address space, or overlaps an existing mapping.
func (as *AddressSpace) Map(m *Mapping) error {
	if len(m.Data) == 0 {
		return fmt.Errorf("vmem: map %q: empty region", m.Name)
	}
	size := uint64(len(m.Data))
	if m.Base+size < m.Base {
		return fmt.Errorf("vmem: map %q: region wraps address space", m.Name)
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	old := as.table()
	for _, ex := range old {
		exEnd := ex.Base + uint64(len(ex.Data))
		if m.Base < exEnd && ex.Base < m.Base+size {
			return fmt.Errorf("vmem: map %q: overlaps mapping %q at 0x%x", m.Name, ex.Name, ex.Base)
		}
	}
	next := make([]*Mapping, len(old)+1)
	copy(next, old)
	next[len(old)] = m
	as.maps.Store(&next)
	return nil
}

// Unmap removes the mapping starting at base. It returns an error if no
// mapping starts there.
func (as *AddressSpace) Unmap(base Addr) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	old := as.table()
	for i, ex := range old {
		if ex.Base == base {
			next := make([]*Mapping, 0, len(old)-1)
			next = append(next, old[:i]...)
			next = append(next, old[i+1:]...)
			as.maps.Store(&next)
			return nil
		}
	}
	return fmt.Errorf("vmem: unmap: no mapping at 0x%x", base)
}

// Resolve returns the mapping covering [addr, addr+size) or a fault.
func (as *AddressSpace) Resolve(addr Addr, size uint64, kind AccessKind) (*Mapping, error) {
	for _, m := range as.table() {
		if m.contains(addr, size) {
			return m, nil
		}
	}
	return nil, &FaultError{Addr: addr, Size: size, Kind: kind}
}

// Slice returns a view of mapped memory for [addr, addr+size). The view
// aliases the backing array: writes through it are visible but bypass
// store observers, so it must only be used for reads or for regions
// whose mapping has no observer.
func (as *AddressSpace) Slice(addr Addr, size uint64) ([]byte, error) {
	m, err := as.Resolve(addr, size, Load)
	if err != nil {
		return nil, err
	}
	off := addr - m.Base
	return m.Data[off : off+size : off+size], nil
}

// LoadU8 loads one byte.
func (as *AddressSpace) LoadU8(addr Addr) (byte, error) {
	m, err := as.Resolve(addr, 1, Load)
	if err != nil {
		return 0, err
	}
	return m.Data[addr-m.Base], nil
}

// LoadU16 loads a little-endian 16-bit value.
func (as *AddressSpace) LoadU16(addr Addr) (uint16, error) {
	m, err := as.Resolve(addr, 2, Load)
	if err != nil {
		return 0, err
	}
	off := addr - m.Base
	return binary.LittleEndian.Uint16(m.Data[off:]), nil
}

// LoadU32 loads a little-endian 32-bit value.
func (as *AddressSpace) LoadU32(addr Addr) (uint32, error) {
	m, err := as.Resolve(addr, 4, Load)
	if err != nil {
		return 0, err
	}
	off := addr - m.Base
	return binary.LittleEndian.Uint32(m.Data[off:]), nil
}

// LoadU64 loads a little-endian 64-bit value.
func (as *AddressSpace) LoadU64(addr Addr) (uint64, error) {
	m, err := as.Resolve(addr, 8, Load)
	if err != nil {
		return 0, err
	}
	off := addr - m.Base
	return binary.LittleEndian.Uint64(m.Data[off:]), nil
}

// StoreU8 stores one byte.
func (as *AddressSpace) StoreU8(addr Addr, v byte) error {
	m, err := as.Resolve(addr, 1, Store)
	if err != nil {
		return err
	}
	off := addr - m.Base
	m.Data[off] = v
	if m.Observer != nil {
		m.Observer.ObserveStore(off, 1)
	}
	return nil
}

// StoreU16 stores a little-endian 16-bit value.
func (as *AddressSpace) StoreU16(addr Addr, v uint16) error {
	m, err := as.Resolve(addr, 2, Store)
	if err != nil {
		return err
	}
	off := addr - m.Base
	binary.LittleEndian.PutUint16(m.Data[off:], v)
	if m.Observer != nil {
		m.Observer.ObserveStore(off, 2)
	}
	return nil
}

// StoreU32 stores a little-endian 32-bit value.
func (as *AddressSpace) StoreU32(addr Addr, v uint32) error {
	m, err := as.Resolve(addr, 4, Store)
	if err != nil {
		return err
	}
	off := addr - m.Base
	binary.LittleEndian.PutUint32(m.Data[off:], v)
	if m.Observer != nil {
		m.Observer.ObserveStore(off, 4)
	}
	return nil
}

// StoreU64 stores a little-endian 64-bit value.
func (as *AddressSpace) StoreU64(addr Addr, v uint64) error {
	m, err := as.Resolve(addr, 8, Store)
	if err != nil {
		return err
	}
	off := addr - m.Base
	binary.LittleEndian.PutUint64(m.Data[off:], v)
	if m.Observer != nil {
		m.Observer.ObserveStore(off, 8)
	}
	return nil
}

// LoadBytes copies size bytes starting at addr into a fresh slice.
func (as *AddressSpace) LoadBytes(addr Addr, size uint64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	m, err := as.Resolve(addr, size, Load)
	if err != nil {
		return nil, err
	}
	off := addr - m.Base
	out := make([]byte, size)
	copy(out, m.Data[off:off+size])
	return out, nil
}

// StoreBytes writes b starting at addr.
func (as *AddressSpace) StoreBytes(addr Addr, b []byte) error {
	if len(b) == 0 {
		return nil
	}
	m, err := as.Resolve(addr, uint64(len(b)), Store)
	if err != nil {
		return err
	}
	off := addr - m.Base
	copy(m.Data[off:], b)
	if m.Observer != nil {
		m.Observer.ObserveStore(off, uint64(len(b)))
	}
	return nil
}

// Memmove copies n bytes from src to dst, handling overlap like the C
// memmove. Both ranges must be fully mapped.
func (as *AddressSpace) Memmove(dst, src Addr, n uint64) error {
	if n == 0 {
		return nil
	}
	sm, err := as.Resolve(src, n, Load)
	if err != nil {
		return err
	}
	dm, err := as.Resolve(dst, n, Store)
	if err != nil {
		return err
	}
	soff := src - sm.Base
	doff := dst - dm.Base
	copy(dm.Data[doff:doff+n], sm.Data[soff:soff+n])
	if dm.Observer != nil {
		dm.Observer.ObserveStore(doff, n)
	}
	return nil
}

// Memset writes n copies of c starting at dst.
func (as *AddressSpace) Memset(dst Addr, c byte, n uint64) error {
	if n == 0 {
		return nil
	}
	m, err := as.Resolve(dst, n, Store)
	if err != nil {
		return err
	}
	off := dst - m.Base
	region := m.Data[off : off+n]
	for i := range region {
		region[i] = c
	}
	if m.Observer != nil {
		m.Observer.ObserveStore(off, n)
	}
	return nil
}

// CString reads a NUL-terminated string starting at addr, up to max
// bytes. It faults if the string runs off the end of its mapping before
// a NUL is found.
func (as *AddressSpace) CString(addr Addr, max uint64) (string, error) {
	m, err := as.Resolve(addr, 1, Load)
	if err != nil {
		return "", err
	}
	off := addr - m.Base
	region := m.Data[off:]
	limit := uint64(len(region))
	if max < limit {
		limit = max
	}
	for i := uint64(0); i < limit; i++ {
		if region[i] == 0 {
			return string(region[:i]), nil
		}
	}
	if limit == uint64(len(region)) {
		return "", &FaultError{Addr: addr + limit, Size: 1, Kind: Load}
	}
	return "", fmt.Errorf("vmem: unterminated string at 0x%x (max %d)", addr, max)
}
