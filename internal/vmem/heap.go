package vmem

import (
	"fmt"
	"sync"
)

// DefaultHeapBase is where the simulated volatile heap is mapped. It
// sits high in the usable address range but below bit 62, so volatile
// pointers never collide with the SPP overflow bit or with PM pools,
// which are mapped low (PMEM_MMAP_HINT=0 in the paper's setup).
const DefaultHeapBase Addr = 0x3000_0000_0000

// Heap is a simple bump allocator over a mapped region. It models the
// volatile heap of an instrumented process: pointers it returns are
// plain (untagged) addresses, exactly like malloc results that SPP's
// pointer tracking classifies as volatile and leaves uninstrumented.
//
// Free only recycles the most recent allocation (LIFO); general reuse
// is not needed by the workloads, which model process-lifetime volatile
// state.
type Heap struct {
	mu   sync.Mutex
	base Addr
	size uint64
	next uint64
	last uint64 // offset of the most recent allocation, for LIFO free
}

// NewHeap maps a volatile heap of the given size at base and returns
// the allocator.
func NewHeap(as *AddressSpace, base Addr, size uint64) (*Heap, error) {
	m := &Mapping{Base: base, Data: make([]byte, size), Name: "volatile-heap"}
	if err := as.Map(m); err != nil {
		return nil, err
	}
	return &Heap{base: base, size: size}, nil
}

// Alloc returns the address of a fresh, zeroed region of n bytes,
// aligned to 16 bytes.
func (h *Heap) Alloc(n uint64) (Addr, error) {
	if n == 0 {
		n = 1
	}
	n = (n + 15) &^ 15
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.next+n > h.size || h.next+n < h.next {
		return 0, fmt.Errorf("vmem: volatile heap exhausted (%d of %d bytes used)", h.next, h.size)
	}
	off := h.next
	h.last = off
	h.next += n
	return h.base + off, nil
}

// Free releases the allocation at addr if it was the most recent one;
// otherwise it is a no-op, as in a bump allocator.
func (h *Heap) Free(addr Addr) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if addr == h.base+h.last {
		h.next = h.last
	}
}

// Base returns the heap's base address.
func (h *Heap) Base() Addr { return h.base }

// Used reports the number of bytes currently allocated.
func (h *Heap) Used() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.next
}
