// Package phoenix ports the Phoenix 2.0 benchmark suite (Ranger et
// al., HPCA'07) to persistent memory, as the paper does for Figure 6:
// the seven kernels allocate their inputs and outputs as PM objects
// through the PMDK-style API and run their compute loops over
// instrumented PM accesses with a configurable number of worker
// threads.
//
// Results are returned as checksums so tests can verify that every
// protection variant computes identical answers.
package phoenix

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
)

// Kernels lists the suite in the paper's order.
var Kernels = []string{
	"histogram", "kmeans", "linear_regression", "matrix_multiply",
	"pca", "string_match", "word_count",
}

// Run executes the named kernel at the given scale with the given
// number of worker threads and returns a deterministic checksum.
func Run(name string, rt hooks.Runtime, scale, threads int) (uint64, error) {
	if threads < 1 {
		threads = 1
	}
	switch name {
	case "histogram":
		return histogram(rt, scale, threads)
	case "kmeans":
		return kmeans(rt, scale, threads)
	case "linear_regression":
		return linearRegression(rt, scale, threads)
	case "matrix_multiply":
		return matrixMultiply(rt, scale, threads)
	case "pca":
		return pca(rt, scale, threads)
	case "string_match":
		return stringMatch(rt, scale, threads, false)
	case "word_count":
		return wordCount(rt, scale, threads)
	default:
		return 0, fmt.Errorf("phoenix: unknown kernel %q", name)
	}
}

// StringMatchBuggy runs string_match with the off-by-one read of the
// upstream Phoenix bug (§VI-D: reading one byte past the input
// buffer), which the protection variants detect.
func StringMatchBuggy(rt hooks.Runtime, scale, threads int) (uint64, error) {
	return stringMatch(rt, scale, threads, true)
}

// xorshift is the deterministic input generator.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// allocInput allocates a PM object and fills it via the interposed
// store path.
func allocInput(rt hooks.Runtime, data []byte) (pmemobj.Oid, uint64, error) {
	oid, err := rt.Alloc(uint64(len(data)))
	if err != nil {
		return pmemobj.OidNull, 0, err
	}
	p := rt.Direct(oid)
	if err := hooks.StoreBytes(rt, p, data); err != nil {
		return pmemobj.OidNull, 0, err
	}
	if err := rt.Pool().PersistRange(rt.External(p), uint64(len(data))); err != nil {
		return pmemobj.OidNull, 0, err
	}
	return oid, p, nil
}

// parallel partitions [0, n) across workers and joins their errors.
func parallel(threads, n int, fn func(worker, lo, hi int) error) error {
	if threads > n && n > 0 {
		threads = n
	}
	errs := make([]error, threads)
	var wg sync.WaitGroup
	chunk := (n + threads - 1) / threads
	for w := 0; w < threads; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// histogram: 256-bin R/G/B histograms over scale pixels of 3 bytes.
func histogram(rt hooks.Runtime, scale, threads int) (uint64, error) {
	n := scale * 3
	rng := xorshift(1)
	img := make([]byte, n)
	for i := range img {
		img[i] = byte(rng.next())
	}
	_, p, err := allocInput(rt, img)
	if err != nil {
		return 0, err
	}
	bins := make([][3 * 256]uint64, threads)
	err = parallel(threads, scale, func(w, lo, hi int) error {
		for i := lo; i < hi; i++ {
			for ch := 0; ch < 3; ch++ {
				b, err := hooks.LoadU8(rt, rt.Gep(p, int64(i*3+ch)))
				if err != nil {
					return err
				}
				bins[w][ch*256+int(b)]++
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum uint64
	for _, bin := range bins {
		for i, v := range bin {
			sum += v * uint64(i+1)
		}
	}
	return sum, nil
}

// kmeans: K-means over scale 3-d points, fixed 10 iterations — the
// kernel that re-reads its whole working set every iteration and shows
// the largest SPP overhead in Figure 6.
func kmeans(rt hooks.Runtime, scale, threads int) (uint64, error) {
	const (
		dim   = 3
		k     = 8
		iters = 10
	)
	rng := xorshift(2)
	pts := make([]byte, scale*dim*8)
	for i := 0; i < scale*dim; i++ {
		v := rng.next() % 1000
		putU64(pts[i*8:], v)
	}
	_, p, err := allocInput(rt, pts)
	if err != nil {
		return 0, err
	}
	centers := make([]float64, k*dim)
	for i := range centers {
		centers[i] = float64(rng.next() % 1000)
	}
	assign := make([]int, scale)
	for it := 0; it < iters; it++ {
		sums := make([][]float64, threads)
		counts := make([][]int, threads)
		err := parallel(threads, scale, func(w, lo, hi int) error {
			s := make([]float64, k*dim)
			cnt := make([]int, k)
			for i := lo; i < hi; i++ {
				var pt [dim]float64
				for d := 0; d < dim; d++ {
					v, err := hooks.LoadU64(rt, rt.Gep(p, int64((i*dim+d)*8)))
					if err != nil {
						return err
					}
					pt[d] = float64(v)
				}
				best, bestDist := 0, math.MaxFloat64
				for c := 0; c < k; c++ {
					var dist float64
					for d := 0; d < dim; d++ {
						diff := pt[d] - centers[c*dim+d]
						dist += diff * diff
					}
					if dist < bestDist {
						best, bestDist = c, dist
					}
				}
				assign[i] = best
				cnt[best]++
				for d := 0; d < dim; d++ {
					s[best*dim+d] += pt[d]
				}
			}
			sums[w], counts[w] = s, cnt
			return nil
		})
		if err != nil {
			return 0, err
		}
		for c := 0; c < k; c++ {
			var cnt int
			var s [dim]float64
			for w := 0; w < threads; w++ {
				if counts[w] == nil {
					continue
				}
				cnt += counts[w][c]
				for d := 0; d < dim; d++ {
					s[d] += sums[w][c*dim+d]
				}
			}
			if cnt > 0 {
				for d := 0; d < dim; d++ {
					centers[c*dim+d] = s[d] / float64(cnt)
				}
			}
		}
	}
	var sum uint64
	for i, a := range assign {
		sum += uint64(a) * uint64(i+1)
	}
	return sum, nil
}

// linearRegression: least squares over scale (x, y) pairs.
func linearRegression(rt hooks.Runtime, scale, threads int) (uint64, error) {
	rng := xorshift(3)
	data := make([]byte, scale*16)
	for i := 0; i < scale; i++ {
		x := rng.next() % 4096
		putU64(data[i*16:], x)
		putU64(data[i*16+8:], 3*x+7+(rng.next()%11))
	}
	_, p, err := allocInput(rt, data)
	if err != nil {
		return 0, err
	}
	type sums struct{ sx, sy, sxx, sxy uint64 }
	parts := make([]sums, threads)
	err = parallel(threads, scale, func(w, lo, hi int) error {
		var s sums
		for i := lo; i < hi; i++ {
			x, err := hooks.LoadU64(rt, rt.Gep(p, int64(i*16)))
			if err != nil {
				return err
			}
			y, err := hooks.LoadU64(rt, rt.Gep(p, int64(i*16+8)))
			if err != nil {
				return err
			}
			s.sx += x
			s.sy += y
			s.sxx += x * x
			s.sxy += x * y
		}
		parts[w] = s
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total sums
	for _, s := range parts {
		total.sx += s.sx
		total.sy += s.sy
		total.sxx += s.sxx
		total.sxy += s.sxy
	}
	return total.sx ^ total.sy ^ total.sxx ^ total.sxy, nil
}

// matrixMultiply: C = A×B over n×n u64 matrices in PM, n = scale.
func matrixMultiply(rt hooks.Runtime, scale, threads int) (uint64, error) {
	n := scale
	rng := xorshift(4)
	mat := func() []byte {
		m := make([]byte, n*n*8)
		for i := 0; i < n*n; i++ {
			putU64(m[i*8:], rng.next()%100)
		}
		return m
	}
	_, pa, err := allocInput(rt, mat())
	if err != nil {
		return 0, err
	}
	_, pb, err := allocInput(rt, mat())
	if err != nil {
		return 0, err
	}
	cOid, err := rt.Alloc(uint64(n * n * 8))
	if err != nil {
		return 0, err
	}
	pc := rt.Direct(cOid)
	err = parallel(threads, n, func(w, lo, hi int) error {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				var acc uint64
				for k := 0; k < n; k++ {
					a, err := hooks.LoadU64(rt, rt.Gep(pa, int64((i*n+k)*8)))
					if err != nil {
						return err
					}
					b, err := hooks.LoadU64(rt, rt.Gep(pb, int64((k*n+j)*8)))
					if err != nil {
						return err
					}
					acc += a * b
				}
				if err := hooks.StoreU64(rt, rt.Gep(pc, int64((i*n+j)*8)), acc); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum uint64
	for i := 0; i < n*n; i += 7 {
		v, err := hooks.LoadU64(rt, rt.Gep(pc, int64(i*8)))
		if err != nil {
			return 0, err
		}
		sum ^= v
	}
	return sum, nil
}

// pca: column means and a band of the covariance matrix for a
// scale×16 matrix.
func pca(rt hooks.Runtime, scale, threads int) (uint64, error) {
	const cols = 16
	rows := scale
	rng := xorshift(5)
	data := make([]byte, rows*cols*8)
	for i := 0; i < rows*cols; i++ {
		putU64(data[i*8:], rng.next()%1000)
	}
	_, p, err := allocInput(rt, data)
	if err != nil {
		return 0, err
	}
	// Column means.
	colSums := make([][cols]uint64, threads)
	err = parallel(threads, rows, func(w, lo, hi int) error {
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				v, err := hooks.LoadU64(rt, rt.Gep(p, int64((i*cols+j)*8)))
				if err != nil {
					return err
				}
				colSums[w][j] += v
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var mean [cols]float64
	for j := 0; j < cols; j++ {
		var s uint64
		for w := 0; w < threads; w++ {
			s += colSums[w][j]
		}
		mean[j] = float64(s) / float64(rows)
	}
	// Covariance (upper triangle), accumulated per thread pair-block.
	cov := make([][cols * cols]float64, threads)
	err = parallel(threads, rows, func(w, lo, hi int) error {
		var row [cols]float64
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				v, err := hooks.LoadU64(rt, rt.Gep(p, int64((i*cols+j)*8)))
				if err != nil {
					return err
				}
				row[j] = float64(v) - mean[j]
			}
			for a := 0; a < cols; a++ {
				for b := a; b < cols; b++ {
					cov[w][a*cols+b] += row[a] * row[b]
				}
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	var sum uint64
	for a := 0; a < cols; a++ {
		for b := a; b < cols; b++ {
			var total float64
			for w := 0; w < threads; w++ {
				total += cov[w][a*cols+b]
			}
			sum += uint64(int64(total / float64(rows)))
		}
	}
	return sum, nil
}

// stringMatch scans a PM text of space-separated words and counts
// matches against four fixed keys, byte-comparing through the
// instrumented loads like the Phoenix original. In buggy mode the
// scanner peeks one byte past the input buffer when the text does not
// end in a separator — the upstream off-by-one of §VI-D.
func stringMatch(rt hooks.Runtime, scale, threads int, buggy bool) (uint64, error) {
	keys := [4]string{"persistent", "memory", "safety", "pointer"}
	words := [8]string{"persistent", "memory", "safety", "pointer", "buffer", "overflow", "tag", "check"}
	rng := xorshift(6)
	text := make([]byte, 0, scale*8)
	for len(text) < scale*8 {
		text = append(text, words[rng.next()%8]...)
		text = append(text, ' ')
	}
	text = text[:len(text)-1] // no trailing separator: the final word ends at EOF
	_, p, err := allocInput(rt, text)
	if err != nil {
		return 0, err
	}
	n := len(text)
	loadAt := func(i int) (byte, error) { return hooks.LoadU8(rt, rt.Gep(p, int64(i))) }
	counts := make([]uint64, threads)
	err = parallel(threads, threads, func(w, _, _ int) error {
		lo := w * n / threads
		hi := (w + 1) * n / threads
		// Skip a word straddling the range start; its owner is the
		// previous worker.
		if lo > 0 {
			b, err := loadAt(lo - 1)
			if err != nil {
				return err
			}
			if b != ' ' {
				for lo < n {
					b, err := loadAt(lo)
					if err != nil {
						return err
					}
					lo++
					if b == ' ' {
						break
					}
				}
			}
		}
		var cnt uint64
		i := lo
		for i < n {
			b, err := loadAt(i)
			if err != nil {
				return err
			}
			if b == ' ' {
				i++
				continue
			}
			if i >= hi {
				break // word belongs to the next worker
			}
			start := i
			for i < n {
				b, err := loadAt(i)
				if err != nil {
					return err
				}
				if b == ' ' {
					break
				}
				i++
			}
			if buggy && i == n {
				// Off-by-one: test for a terminator one past the end.
				if _, err := loadAt(n); err != nil {
					return err
				}
			}
			wlen := i - start
			for _, key := range keys {
				if len(key) != wlen {
					continue
				}
				match := true
				for j := 0; j < wlen; j++ {
					b, err := loadAt(start + j)
					if err != nil {
						return err
					}
					if b != key[j] {
						match = false
						break
					}
				}
				if match {
					cnt++
					break
				}
			}
		}
		counts[w] = cnt
		return nil
	})
	if err != nil {
		return 0, err
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	return total, nil
}

// wordCount counts word frequencies in a PM text with per-thread
// volatile maps merged at the end.
func wordCount(rt hooks.Runtime, scale, threads int) (uint64, error) {
	vocab := [16]string{
		"alpha", "beta", "gamma", "delta", "epsilon", "zeta", "eta", "theta",
		"iota", "kappa", "lambda", "mu", "nu", "xi", "omicron", "pi",
	}
	rng := xorshift(7)
	text := make([]byte, 0, scale*8)
	for len(text) < scale*8 {
		text = append(text, vocab[rng.next()%16]...)
		text = append(text, ' ')
	}
	_, p, err := allocInput(rt, text)
	if err != nil {
		return 0, err
	}
	n := len(text)
	maps := make([]map[string]uint64, threads)
	loadAt := func(i int) (byte, error) { return hooks.LoadU8(rt, rt.Gep(p, int64(i))) }
	err = parallel(threads, threads, func(w, _, _ int) error {
		lo := w * n / threads
		hi := (w + 1) * n / threads
		m := make(map[string]uint64, 32)
		// A word straddling the range start belongs to the previous
		// worker: skip it.
		if lo > 0 {
			b, err := loadAt(lo - 1)
			if err != nil {
				return err
			}
			if b != ' ' {
				for lo < n {
					b, err := loadAt(lo)
					if err != nil {
						return err
					}
					lo++
					if b == ' ' {
						break
					}
				}
			}
		}
		var word []byte
		i := lo
		for i < n {
			b, err := loadAt(i)
			if err != nil {
				return err
			}
			if b == ' ' {
				i++
				continue
			}
			if i >= hi {
				break // the next worker owns words starting here
			}
			word = word[:0]
			for i < n {
				b, err := loadAt(i)
				if err != nil {
					return err
				}
				if b == ' ' {
					break
				}
				word = append(word, b)
				i++
			}
			m[string(word)]++
		}
		maps[w] = m
		return nil
	})
	if err != nil {
		return 0, err
	}
	total := make(map[string]uint64)
	for _, m := range maps {
		for k, v := range m {
			total[k] += v
		}
	}
	var sum uint64
	for _, w := range vocab {
		sum = sum*31 + total[w]
	}
	return sum, nil
}

func putU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
