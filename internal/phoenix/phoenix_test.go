package phoenix

import (
	"testing"

	"repro/internal/core"
	"repro/internal/hooks"
	"repro/internal/variant"
)

func newEnv(t *testing.T, kind variant.Kind) *variant.Env {
	t.Helper()
	env, err := variant.New(kind, variant.Options{
		PoolSize: 64 << 20,
		TagBits:  core.PhoenixTagBits, // the paper uses 31 tag bits for Phoenix
	})
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestUnknownKernel(t *testing.T) {
	env := newEnv(t, variant.PMDK)
	if _, err := Run("sorting", env.RT, 10, 1); err == nil {
		t.Error("unknown kernel accepted")
	}
}

// TestKernelsDeterministicAcrossVariants: every kernel must compute
// the same checksum under every protection mechanism — the
// instrumentation may slow the run down but never change results.
func TestKernelsDeterministicAcrossVariants(t *testing.T) {
	scales := map[string]int{
		"histogram":         4000,
		"kmeans":            800,
		"linear_regression": 4000,
		"matrix_multiply":   24,
		"pca":               300,
		"string_match":      800,
		"word_count":        800,
	}
	for _, kernel := range Kernels {
		t.Run(kernel, func(t *testing.T) {
			var want uint64
			for i, kind := range []variant.Kind{variant.PMDK, variant.SPP, variant.SafePM} {
				env := newEnv(t, kind)
				got, err := Run(kernel, env.RT, scales[kernel], 4)
				if err != nil {
					t.Fatalf("%s under %s: %v", kernel, kind, err)
				}
				if i == 0 {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s under %s = %#x, want %#x", kernel, kind, got, want)
				}
			}
		})
	}
}

// TestThreadCountInvariant: results must not depend on parallelism.
func TestThreadCountInvariant(t *testing.T) {
	for _, kernel := range Kernels {
		t.Run(kernel, func(t *testing.T) {
			env1 := newEnv(t, variant.SPP)
			one, err := Run(kernel, env1.RT, 500, 1)
			if err != nil {
				t.Fatal(err)
			}
			env8 := newEnv(t, variant.SPP)
			eight, err := Run(kernel, env8.RT, 500, 8)
			if err != nil {
				t.Fatal(err)
			}
			if one != eight {
				t.Errorf("1 thread = %#x, 8 threads = %#x", one, eight)
			}
		})
	}
}

// TestStringMatchBugDetection reproduces §VI-D: the off-by-one read
// past the input buffer is caught by SPP and SafePM and sails through
// under native PMDK.
func TestStringMatchBugDetection(t *testing.T) {
	for _, tt := range []struct {
		kind   variant.Kind
		caught bool
	}{
		{variant.PMDK, false},
		{variant.SPP, true},
		{variant.SafePM, true},
	} {
		t.Run(string(tt.kind), func(t *testing.T) {
			env := newEnv(t, tt.kind)
			_, err := StringMatchBuggy(env.RT, 500, 1)
			if tt.caught && !hooks.IsSafetyTrap(err) {
				t.Errorf("off-by-one not caught: %v", err)
			}
			if !tt.caught && err != nil {
				t.Errorf("native run failed: %v", err)
			}
		})
	}
}

// TestBuggyAndCleanAgreeWhenUndetected: the buggy scan differs from
// the clean one only by the extra peek, so its match count is
// unchanged where it survives.
func TestBuggyAndCleanAgreeWhenUndetected(t *testing.T) {
	env1 := newEnv(t, variant.PMDK)
	clean, err := Run("string_match", env1.RT, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	env2 := newEnv(t, variant.PMDK)
	buggy, err := StringMatchBuggy(env2.RT, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	if clean != buggy {
		t.Errorf("clean = %d, buggy = %d", clean, buggy)
	}
}
