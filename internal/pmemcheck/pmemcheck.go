// Package pmemcheck reimplements the validation tools of §VI-E: a
// store/flush/fence trace recorder in the spirit of Valgrind's
// pmemcheck and a crash-state exploration engine in the spirit of
// pmreorder.
//
// The Tracker plugs into a pmem.Pool as its TraceSink. Analyze reports
// protocol violations in the recorded trace (stores that were never
// made durable, flushes never fenced, redundant flushes). Explore
// replays the trace, and at sampled crash points constructs candidate
// power-loss images — the durable prefix plus subsets of the in-flight
// stores — and runs a caller-supplied consistency check (typically:
// recover the pool and validate the data structure) on each.
package pmemcheck

import (
	"fmt"
	"sync"

	"repro/internal/telemetry"
)

// EventKind discriminates trace events.
type EventKind uint8

// Trace event kinds.
const (
	EvStore EventKind = iota + 1
	EvFlush
	EvFence
)

// Event is one entry of the persistence trace.
type Event struct {
	Kind EventKind
	Off  uint64
	Size uint64
	Data []byte // stores only
}

// Tracker records the persistence event stream of a pool.
type Tracker struct {
	mu     sync.Mutex
	events []Event
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker { return &Tracker{} }

// RecordStore implements pmem.TraceSink.
func (t *Tracker) RecordStore(off uint64, data []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{Kind: EvStore, Off: off, Size: uint64(len(data)), Data: data})
}

// RecordFlush implements pmem.TraceSink.
func (t *Tracker) RecordFlush(off, size uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{Kind: EvFlush, Off: off, Size: size})
}

// RecordFence implements pmem.TraceSink.
func (t *Tracker) RecordFence() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{Kind: EvFence})
}

// Events returns a snapshot of the recorded trace.
func (t *Tracker) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Reset clears the trace.
func (t *Tracker) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
}

// Violation is one pmemcheck finding.
type Violation struct {
	Kind   string // "unflushed-store", "unfenced-flush"
	Off    uint64
	Size   uint64
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: [%#x,+%d) %s", v.Kind, v.Off, v.Size, v.Detail)
}

// Report summarizes a trace analysis.
type Report struct {
	// Violations lists stores that never became durable and flushes
	// that were never fenced by the end of the trace.
	Violations []Violation
	// RedundantFlushes counts flushes of ranges with no dirty store,
	// a performance diagnostic pmemcheck also emits.
	RedundantFlushes int
	// DuplicateLineFlushes counts cachelines flushed more than once
	// within a single fence epoch — wasted flush traffic the commit
	// pipeline's coalescing is meant to eliminate.
	DuplicateLineFlushes int
	// Stores, Flushes, Fences count the trace events.
	Stores, Flushes, Fences int
}

// Clean reports whether the trace has no violations.
func (r Report) Clean() bool { return len(r.Violations) == 0 }

type pendingStore struct {
	off, size uint64
	flushed   bool
}

// Analyze runs the pmemcheck protocol check over the trace: every
// store must be covered by a flush after it, and that flush must be
// followed by a fence, before the trace ends.
func Analyze(events []Event) Report {
	var rep Report
	var inflight []pendingStore
	const lineSize = 64
	lines := make(map[uint64]struct{}) // cachelines flushed this epoch
	for _, ev := range events {
		switch ev.Kind {
		case EvStore:
			rep.Stores++
			inflight = append(inflight, pendingStore{ev.Off, ev.Size, false})
		case EvFlush:
			rep.Flushes++
			for l := ev.Off &^ (lineSize - 1); l < ev.Off+ev.Size; l += lineSize {
				if _, dup := lines[l]; dup {
					rep.DuplicateLineFlushes++
				} else {
					lines[l] = struct{}{}
				}
			}
			hit := false
			for i := range inflight {
				s := &inflight[i]
				if !s.flushed && s.off < ev.Off+ev.Size && ev.Off < s.off+s.size {
					// Partial coverage only counts if the whole store
					// range is inside the flushed range.
					if s.off >= ev.Off && s.off+s.size <= ev.Off+ev.Size {
						s.flushed = true
					}
					hit = true
				}
			}
			if !hit {
				rep.RedundantFlushes++
			}
		case EvFence:
			rep.Fences++
			kept := inflight[:0]
			for _, s := range inflight {
				if !s.flushed {
					kept = append(kept, s)
				}
			}
			inflight = kept
			clear(lines)
		}
	}
	for _, s := range inflight {
		kind, detail := "unflushed-store", "store never flushed"
		if s.flushed {
			kind, detail = "unfenced-flush", "flush never fenced"
		}
		rep.Violations = append(rep.Violations, Violation{Kind: kind, Off: s.off, Size: s.size, Detail: detail})
	}
	return rep
}

// FenceImages replays the trace with the device model's semantics —
// stores update a working image, flushes make ranges pending, a fence
// copies the CURRENT working contents of every pending range into the
// durable image — and returns the durable image after each fence, plus
// the final durable state as the last element. Two traces that differ
// only in provably-redundant flushes (same line, no intervening store
// or fence) must produce byte-identical sequences; the flush
// elimination tests assert exactly that.
func FenceImages(base []byte, events []Event) [][]byte {
	working := make([]byte, len(base))
	durable := make([]byte, len(base))
	copy(working, base)
	copy(durable, base)

	type rng struct{ off, size uint64 }
	var pending []rng
	var images [][]byte
	clampLen := uint64(len(base))
	for _, ev := range events {
		switch ev.Kind {
		case EvStore:
			end := ev.Off + uint64(len(ev.Data))
			if ev.Off < clampLen {
				if end > clampLen {
					end = clampLen
				}
				copy(working[ev.Off:end], ev.Data[:end-ev.Off])
			}
		case EvFlush:
			pending = append(pending, rng{ev.Off, ev.Size})
		case EvFence:
			for _, r := range pending {
				end := r.off + r.size
				if r.off >= clampLen {
					continue
				}
				if end > clampLen {
					end = clampLen
				}
				copy(durable[r.off:end], working[r.off:end])
			}
			pending = pending[:0]
			snap := make([]byte, len(durable))
			copy(snap, durable)
			images = append(images, snap)
		}
	}
	final := make([]byte, len(durable))
	copy(final, durable)
	return append(images, final)
}

// Strategy selects which in-flight-store subsets Explore tries at a
// crash point, mirroring pmreorder's engines.
type Strategy int

// Strategies.
const (
	// ReorderPartial (default) tries: no in-flight stores, all of
	// them, and each single store (capped by MaxSingles).
	ReorderPartial Strategy = iota
	// ReorderAccumulative additionally tries every issue-order prefix
	// of the in-flight stores — the "stores retire in order, cut
	// anywhere" model.
	ReorderAccumulative
	// ReorderReverse additionally tries every issue-order suffix —
	// the adversarial "later stores retired first" model.
	ReorderReverse
)

// ExploreOptions bounds the crash-state search.
type ExploreOptions struct {
	// EveryNthFence samples crash points (1 = every fence).
	EveryNthFence int
	// MaxSingles caps how many single-in-flight-store images are
	// tried per crash point.
	MaxSingles int
	// MaxStates caps the total number of images checked.
	MaxStates int
	// Strategy selects the subset engine.
	Strategy Strategy
}

func (o ExploreOptions) withDefaults() ExploreOptions {
	if o.EveryNthFence == 0 {
		o.EveryNthFence = 1
	}
	if o.MaxSingles == 0 {
		o.MaxSingles = 16
	}
	if o.MaxStates == 0 {
		o.MaxStates = 10000
	}
	return o
}

// ConsistencyError wraps a check failure with the crash point that
// produced it.
type ConsistencyError struct {
	CrashPoint int // event index
	Image      string
	Err        error
	// Audit holds safety-violation records the checker filed while
	// examining the failing image (empty when the failure is a pure
	// consistency mismatch rather than a detected unsafe access).
	Audit []telemetry.Violation
}

func (e *ConsistencyError) Error() string {
	return fmt.Sprintf("pmemcheck: inconsistent crash state at event %d (%s): %v", e.CrashPoint, e.Image, e.Err)
}

func (e *ConsistencyError) Unwrap() error { return e.Err }

// Explore replays the trace over a copy of the base image and, at
// sampled fences, builds candidate power-loss images: the durable
// state alone, the durable state plus every in-flight store, and the
// durable state plus each single in-flight store. Each image is passed
// to check; the first failure aborts the search. It returns the number
// of states checked.
func Explore(base []byte, events []Event, opts ExploreOptions, check func(img []byte) error) (int, error) {
	opts = opts.withDefaults()
	durable := make([]byte, len(base))
	copy(durable, base)

	type flushRange struct{ off, size uint64 }
	var inflight []Event // stores not yet durable
	var pendingFlushes []flushRange
	states := 0
	fences := 0

	covered := func(s Event) bool {
		for _, f := range pendingFlushes {
			if s.Off >= f.off && s.Off+s.Size <= f.off+f.size {
				return true
			}
		}
		return false
	}
	tryImage := func(point int, name string, stores []Event) error {
		if states >= opts.MaxStates {
			return nil
		}
		img := make([]byte, len(durable))
		copy(img, durable)
		for _, s := range stores {
			copy(img[s.Off:s.Off+s.Size], s.Data)
		}
		states++
		mark := telemetry.Audit.Total()
		if err := check(img); err != nil {
			return &ConsistencyError{
				CrashPoint: point, Image: name, Err: err,
				Audit: telemetry.Audit.RecordsSince(mark),
			}
		}
		return nil
	}

	for i, ev := range events {
		switch ev.Kind {
		case EvStore:
			inflight = append(inflight, ev)
		case EvFlush:
			pendingFlushes = append(pendingFlushes, flushRange{ev.Off, ev.Size})
		case EvFence:
			fences++
			// Crash-point exploration happens just before the fence
			// retires the pending flushes.
			if fences%opts.EveryNthFence == 0 {
				if err := tryImage(i, "durable-only", nil); err != nil {
					return states, err
				}
				if len(inflight) > 0 {
					if err := tryImage(i, "all-in-flight", inflight); err != nil {
						return states, err
					}
					n := len(inflight)
					if n > opts.MaxSingles {
						n = opts.MaxSingles
					}
					for k := 0; k < n; k++ {
						s := inflight[len(inflight)-1-k]
						if err := tryImage(i, fmt.Sprintf("single-store[%#x]", s.Off), []Event{s}); err != nil {
							return states, err
						}
					}
					if opts.Strategy == ReorderAccumulative || opts.Strategy == ReorderReverse {
						for k := 1; k < len(inflight); k++ {
							if err := tryImage(i, fmt.Sprintf("prefix[%d]", k), inflight[:k]); err != nil {
								return states, err
							}
						}
					}
					if opts.Strategy == ReorderReverse {
						for k := 1; k < len(inflight); k++ {
							if err := tryImage(i, fmt.Sprintf("suffix[%d]", k), inflight[k:]); err != nil {
								return states, err
							}
						}
					}
				}
			}
			// Retire: flushed in-flight stores become durable.
			kept := inflight[:0]
			for _, s := range inflight {
				if covered(s) {
					copy(durable[s.Off:s.Off+s.Size], s.Data)
				} else {
					kept = append(kept, s)
				}
			}
			inflight = kept
			pendingFlushes = pendingFlushes[:0]
		}
	}
	// Final state (no crash) must also be consistent.
	if err := tryImage(len(events), "final", inflight); err != nil {
		return states, err
	}
	return states, nil
}
