package pmemcheck

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/indices"
	"repro/internal/pmem"
	"repro/internal/variant"
)

func TestAnalyzeCleanProtocol(t *testing.T) {
	dev := pmem.NewPool("t", 1<<12)
	tr := NewTracker()
	dev.EnableTracking(tr)
	dev.WriteU64(0, 1)
	dev.Persist(0, 8)
	dev.WriteU64(64, 2)
	dev.WriteU64(72, 3)
	dev.Persist(64, 16)
	rep := Analyze(tr.Events())
	if !rep.Clean() {
		t.Errorf("violations on clean protocol: %v", rep.Violations)
	}
	if rep.Stores != 3 || rep.Fences != 2 {
		t.Errorf("counts: %+v", rep)
	}
}

func TestAnalyzeFlagsUnflushedStore(t *testing.T) {
	dev := pmem.NewPool("t", 1<<12)
	tr := NewTracker()
	dev.EnableTracking(tr)
	dev.WriteU64(0, 1) // never flushed
	dev.WriteU64(128, 2)
	dev.Persist(128, 8)
	rep := Analyze(tr.Events())
	if len(rep.Violations) != 1 {
		t.Fatalf("violations = %v", rep.Violations)
	}
	v := rep.Violations[0]
	if v.Kind != "unflushed-store" || v.Off != 0 {
		t.Errorf("violation = %v", v)
	}
	if v.String() == "" {
		t.Error("empty violation string")
	}
}

func TestAnalyzeFlagsUnfencedFlush(t *testing.T) {
	dev := pmem.NewPool("t", 1<<12)
	tr := NewTracker()
	dev.EnableTracking(tr)
	dev.WriteU64(0, 1)
	dev.Flush(0, 8) // no fence
	rep := Analyze(tr.Events())
	if len(rep.Violations) != 1 || rep.Violations[0].Kind != "unfenced-flush" {
		t.Errorf("violations = %v", rep.Violations)
	}
}

func TestAnalyzeCountsRedundantFlush(t *testing.T) {
	dev := pmem.NewPool("t", 1<<12)
	tr := NewTracker()
	dev.EnableTracking(tr)
	dev.Persist(512, 8) // nothing stored there
	rep := Analyze(tr.Events())
	if rep.RedundantFlushes != 1 {
		t.Errorf("redundant flushes = %d", rep.RedundantFlushes)
	}
}

func TestAnalyzeCountsDuplicateLineFlushes(t *testing.T) {
	dev := pmem.NewPool("t", 1<<12)
	tr := NewTracker()
	dev.EnableTracking(tr)
	dev.WriteU64(0, 1)
	dev.WriteU64(8, 2)
	dev.Flush(0, 8)
	dev.Flush(8, 8) // same cacheline again, same epoch
	dev.Fence()
	dev.WriteU64(16, 3)
	dev.Persist(16, 8) // same line, but a new fence epoch: not a dup
	rep := Analyze(tr.Events())
	if rep.DuplicateLineFlushes != 1 {
		t.Errorf("duplicate line flushes = %d, want 1", rep.DuplicateLineFlushes)
	}
	if !rep.Clean() {
		t.Errorf("violations: %v", rep.Violations)
	}
}

// TestExploreCatchesOrderingBug builds the classic bug: a length field
// persisted before its data. A crash between the two exposes a state
// where the length is visible but the data is garbage.
func TestExploreCatchesOrderingBug(t *testing.T) {
	dev := pmem.NewPool("t", 1<<12)
	base := make([]byte, dev.Size())
	tr := NewTracker()
	dev.EnableTracking(tr)

	// Buggy protocol: publish the valid flag first, then the value.
	dev.WriteU64(0, 1) // valid = 1
	dev.Persist(0, 8)
	dev.WriteU64(128, 0x1234) // value (different cacheline)
	dev.Persist(128, 8)

	check := func(img []byte) error {
		valid := uint64(img[0]) | uint64(img[1])<<8
		value := uint64(img[128]) | uint64(img[129])<<8 | uint64(img[130])<<16
		if valid == 1 && value != 0x1234 {
			return errors.New("valid flag set but value missing")
		}
		return nil
	}
	_, err := Explore(base, tr.Events(), ExploreOptions{}, check)
	var ce *ConsistencyError
	if !errors.As(err, &ce) {
		t.Fatalf("ordering bug not caught: %v", err)
	}

	// The correct protocol (value first, then flag) passes.
	tr.Reset()
	dev2 := pmem.NewPool("t2", 1<<12)
	dev2.EnableTracking(tr)
	dev2.WriteU64(128, 0x1234)
	dev2.Persist(128, 8)
	dev2.WriteU64(0, 1)
	dev2.Persist(0, 8)
	states, err := Explore(base, tr.Events(), ExploreOptions{}, check)
	if err != nil {
		t.Fatalf("correct protocol flagged: %v", err)
	}
	if states < 4 {
		t.Errorf("only %d states explored", states)
	}
}

// TestIndexWorkloadIsCrashConsistent is the §VI-E experiment in
// miniature: record an index workload, then verify every explored
// crash state recovers to a structurally consistent pool.
func TestIndexWorkloadIsCrashConsistent(t *testing.T) {
	for _, kind := range []string{"ctree", "hashmap"} {
		t.Run(kind, func(t *testing.T) {
			env, err := variant.New(variant.SPP, variant.Options{PoolSize: 8 << 20})
			if err != nil {
				t.Fatal(err)
			}
			m, err := indices.New(kind, env.RT)
			if err != nil {
				t.Fatal(err)
			}
			// Stabilize, then record a window of operations.
			for k := uint64(1); k <= 20; k++ {
				if err := m.Insert(k, k); err != nil {
					t.Fatal(err)
				}
			}
			base, snapErr := snapshot(env)
			if snapErr != nil {
				t.Fatal(snapErr)
			}
			tr := NewTracker()
			env.Dev.EnableTracking(tr)
			for k := uint64(21); k <= 40; k++ {
				if err := m.Insert(k, k); err != nil {
					t.Fatal(err)
				}
			}
			for k := uint64(1); k <= 10; k++ {
				if _, err := m.Remove(k); err != nil {
					t.Fatal(err)
				}
			}
			env.Dev.DisableTracking()

			rep := Analyze(tr.Events())
			if !rep.Clean() {
				t.Fatalf("protocol violations: %v", rep.Violations[:min(len(rep.Violations), 5)])
			}

			states, err := Explore(base, tr.Events(), ExploreOptions{EveryNthFence: 8, MaxSingles: 4, MaxStates: 400},
				func(img []byte) error { return recoverAndValidate(img, kind) })
			if err != nil {
				t.Fatalf("crash state inconsistent: %v", err)
			}
			t.Logf("%s: %d crash states consistent", kind, states)
		})
	}
}

func snapshot(env *variant.Env) ([]byte, error) {
	img := make([]byte, env.Dev.Size())
	copy(img, env.Dev.Data())
	return img, nil
}

// recoverAndValidate opens a pool from a crash image, runs recovery
// and validates the index structurally.
func recoverAndValidate(img []byte, kind string) error {
	dev := pmem.NewPool("crash-image", uint64(len(img)))
	copy(dev.Data(), img)
	env, err := rebuildEnv(dev)
	if err != nil {
		return err
	}
	m, err := indices.New(kind, env.RT)
	if err != nil {
		return fmt.Errorf("index open: %w", err)
	}
	want, err := m.Count()
	if err != nil {
		return fmt.Errorf("count: %w", err)
	}
	// Walk every possible key of the workload; reachable entries must
	// match the recorded count and round-trip correctly.
	var got uint64
	for k := uint64(1); k <= 60; k++ {
		v, ok, err := m.Get(k)
		if err != nil {
			return fmt.Errorf("get(%d): %w", k, err)
		}
		if ok {
			got++
			if v != k {
				return fmt.Errorf("key %d has value %d", k, v)
			}
		}
	}
	if got != want {
		return fmt.Errorf("count %d but %d reachable keys", want, got)
	}
	return nil
}

func rebuildEnv(dev *pmem.Pool) (*variant.Env, error) {
	return variant.Adopt(variant.SPP, dev)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestReorderStrategies: a bug visible only in an intermediate prefix
// of in-flight stores — three fields where the invariant is
// "b set implies a set" and the stores are issued b-first — escapes
// the partial engine at some crash points but not the accumulative
// one.
func TestReorderStrategies(t *testing.T) {
	dev := pmem.NewPool("t", 1<<12)
	base := make([]byte, dev.Size())
	tr := NewTracker()
	dev.EnableTracking(tr)
	// Buggy issue order inside one fence epoch: b, filler, a.
	dev.WriteU64(128, 1) // b
	dev.WriteU64(256, 7) // unrelated filler
	dev.WriteU64(0, 1)   // a
	dev.Flush(0, 8)
	dev.Flush(128, 8)
	dev.Flush(256, 8)
	dev.Fence()

	check := func(img []byte) error {
		a := img[0]
		b := img[128]
		if b == 1 && a != 1 {
			return errors.New("b visible without a")
		}
		return nil
	}
	// The accumulative engine tries prefix {b} and prefix {b, filler},
	// both violating the invariant.
	_, err := Explore(base, tr.Events(), ExploreOptions{Strategy: ReorderAccumulative}, check)
	var ce *ConsistencyError
	if !errors.As(err, &ce) {
		t.Fatalf("accumulative engine missed the prefix bug: %v", err)
	}
	// Reverse engine additionally tries suffixes; it must also catch it
	// (the single-store image {b} is already in the partial set here,
	// so use it to validate the suffix path runs without error on a
	// correct trace).
	tr.Reset()
	dev2 := pmem.NewPool("t2", 1<<12)
	dev2.EnableTracking(tr)
	dev2.WriteU64(0, 1) // a first: correct order
	dev2.WriteU64(128, 1)
	dev2.Persist(0, 256)
	states, err := Explore(base, tr.Events(), ExploreOptions{Strategy: ReorderReverse}, check)
	if err == nil {
		t.Fatalf("reverse engine should catch suffix {b}: states=%d", states)
	}
	// With a fully ordered protocol (a persisted before b is even
	// stored), every engine passes.
	tr.Reset()
	dev3 := pmem.NewPool("t3", 1<<12)
	dev3.EnableTracking(tr)
	dev3.WriteU64(0, 1)
	dev3.Persist(0, 8)
	dev3.WriteU64(128, 1)
	dev3.Persist(128, 8)
	if _, err := Explore(base, tr.Events(), ExploreOptions{Strategy: ReorderReverse}, check); err != nil {
		t.Fatalf("ordered protocol flagged: %v", err)
	}
}
