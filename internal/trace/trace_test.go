package trace

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestSamplerOneInN(t *testing.T) {
	s := NewSampler(8)
	sampled := 0
	ids := make(map[uint64]bool)
	for i := 0; i < 800; i++ {
		c := s.Next()
		if c.Sampled {
			sampled++
		}
		if ids[c.ID] {
			t.Fatalf("duplicate request ID %#x", c.ID)
		}
		ids[c.ID] = true
	}
	if sampled != 100 {
		t.Errorf("sampled %d of 800 at 1-in-8, want exactly 100", sampled)
	}
	// n <= 1 samples everything.
	every := NewSampler(0)
	for i := 0; i < 10; i++ {
		if !every.Next().Sampled {
			t.Fatal("NewSampler(0) skipped a request")
		}
	}
}

func TestNilReqIsFree(t *testing.T) {
	var r *Req
	r.Add(PhaseQueue, time.Millisecond) // must not panic
	sp := r.Span(PhaseExec)
	sp.End()
	r.Finish()
	r.Drop()
}

func TestReqAccumulatesIntoTotals(t *testing.T) {
	before := Snapshot()
	r := Start(42, "put", "acme")
	r.Add(PhaseQueue, 3*time.Millisecond)
	r.Add(PhaseFence, time.Millisecond)
	sp := r.Span(PhaseExec)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	r.Finish()

	d := Snapshot().Delta(before)
	if d.Count != 1 {
		t.Fatalf("Count delta = %d, want 1", d.Count)
	}
	if got := time.Duration(d.Phase[PhaseQueue]); got != 3*time.Millisecond {
		t.Errorf("queue total = %v, want 3ms", got)
	}
	if got := time.Duration(d.Phase[PhaseFence]); got != time.Millisecond {
		t.Errorf("fence total = %v, want 1ms", got)
	}
	if got := time.Duration(d.Phase[PhaseExec]); got < 2*time.Millisecond {
		t.Errorf("exec total = %v, want >= 2ms", got)
	}
	if time.Duration(d.Total) < 2*time.Millisecond {
		t.Errorf("end-to-end total = %v, want >= 2ms", time.Duration(d.Total))
	}
	if d.Phase[PhaseTxBegin] != 0 || d.Phase[PhaseFlush] != 0 {
		t.Errorf("untouched phases accumulated: %+v", d.Phase)
	}
}

func TestDropRecordsNothing(t *testing.T) {
	before := Snapshot()
	r := Start(7, "get", "acme")
	r.Add(PhaseQueue, time.Second)
	r.Drop()
	if d := Snapshot().Delta(before); d.Count != 0 || d.Phase[PhaseQueue] != 0 {
		t.Errorf("Drop leaked into totals: %+v", d)
	}
}

// TestReqPoolReuse: a pooled Req must come back clean — phase residue
// from a prior request would corrupt the next trace's attribution.
func TestReqPoolReuse(t *testing.T) {
	r := Start(1, "put", "t")
	r.Add(PhaseFlush, time.Hour)
	r.Finish()
	before := Snapshot()
	r2 := Start(2, "get", "t")
	r2.Finish()
	if d := Snapshot().Delta(before); d.Phase[PhaseFlush] != 0 {
		t.Errorf("recycled Req kept %v of flush time", time.Duration(d.Phase[PhaseFlush]))
	}
}

func TestSlowExemplarCapture(t *testing.T) {
	ResetSlow()
	old := SlowThreshold()
	SetSlowThreshold(time.Microsecond)
	defer SetSlowThreshold(old)

	r := Start(0xabc, "put", "acme")
	r.Add(PhaseFence, 5*time.Millisecond)
	time.Sleep(time.Millisecond)
	r.Finish()

	exs := SlowExemplars()
	if len(exs) != 1 {
		t.Fatalf("got %d exemplars, want 1", len(exs))
	}
	e := exs[0]
	if e.ID != 0xabc || e.Op != "put" || e.Tenant != "acme" {
		t.Errorf("exemplar identity = %+v", e)
	}
	if e.Phases[PhaseFence] != 5*time.Millisecond {
		t.Errorf("exemplar fence = %v", e.Phases[PhaseFence])
	}
	if s := e.String(); !strings.Contains(s, "fence=5ms") || !strings.Contains(s, "put") {
		t.Errorf("exemplar String() = %q", s)
	}

	// Below-threshold requests are not captured.
	SetSlowThreshold(time.Hour)
	fast := Start(1, "get", "acme")
	fast.Finish()
	if got := len(SlowExemplars()); got != 1 {
		t.Errorf("fast request captured: %d exemplars", got)
	}
	ResetSlow()
}

func TestSlowRingEvictsOldestFirst(t *testing.T) {
	ResetSlow()
	defer ResetSlow()
	for i := 0; i < slowRingCap+10; i++ {
		captureSlow(Exemplar{ID: uint64(i)})
	}
	exs := SlowExemplars()
	if len(exs) != slowRingCap {
		t.Fatalf("ring holds %d, want %d", len(exs), slowRingCap)
	}
	for i, e := range exs {
		if want := uint64(i + 10); e.ID != want {
			t.Fatalf("exemplar %d has ID %d, want %d (oldest first)", i, e.ID, want)
		}
	}
}

// TestSlowRingTenantQuota: once the ring is full, a flooding tenant
// replaces only its own oldest exemplars — other tenants' entries stay
// resident — and a newly active tenant reclaims its slot from the
// heaviest occupant, not from the quiet ones.
func TestSlowRingTenantQuota(t *testing.T) {
	ResetSlow()
	defer ResetSlow()
	for i := 0; i < 5; i++ {
		captureSlow(Exemplar{ID: uint64(i), Tenant: fmt.Sprintf("quiet-%d", i)})
	}
	const flood = 10 * slowRingCap
	for i := 0; i < flood; i++ {
		captureSlow(Exemplar{ID: 1000 + uint64(i), Tenant: "noisy"})
	}
	exs := SlowExemplars()
	if len(exs) != slowRingCap {
		t.Fatalf("ring holds %d, want %d", len(exs), slowRingCap)
	}
	byTenant := map[string]int{}
	var noisyIDs []uint64
	for _, e := range exs {
		byTenant[e.Tenant]++
		if e.Tenant == "noisy" {
			noisyIDs = append(noisyIDs, e.ID)
		}
	}
	for i := 0; i < 5; i++ {
		tn := fmt.Sprintf("quiet-%d", i)
		if byTenant[tn] != 1 {
			t.Errorf("tenant %s holds %d exemplars after the flood, want 1", tn, byTenant[tn])
		}
	}
	if byTenant["noisy"] != slowRingCap-5 {
		t.Errorf("noisy tenant holds %d, want %d", byTenant["noisy"], slowRingCap-5)
	}
	// The flooder evicted its own oldest each time: what it retains are
	// its newest captures.
	if want := 1000 + uint64(flood-len(noisyIDs)); len(noisyIDs) == 0 || noisyIDs[0] != want {
		t.Errorf("noisy oldest retained = %v, want %d", noisyIDs, want)
	}

	captureSlow(Exemplar{ID: 9999, Tenant: "late"})
	byTenant = map[string]int{}
	for _, e := range SlowExemplars() {
		byTenant[e.Tenant]++
	}
	if byTenant["late"] != 1 {
		t.Errorf("late tenant not admitted: %v", byTenant)
	}
	for i := 0; i < 5; i++ {
		if tn := fmt.Sprintf("quiet-%d", i); byTenant[tn] != 1 {
			t.Errorf("late insert evicted %s: %v", tn, byTenant)
		}
	}
	if byTenant["noisy"] != slowRingCap-6 {
		t.Errorf("noisy holds %d after the late insert, want %d", byTenant["noisy"], slowRingCap-6)
	}
}

func TestPhaseString(t *testing.T) {
	if PhaseQueue.String() != "queue" || PhaseFence.String() != "fence" {
		t.Errorf("phase names: %v %v", PhaseQueue, PhaseFence)
	}
	if got := Phase(200).String(); got != fmt.Sprintf("phase(%d)", 200) {
		t.Errorf("out-of-range phase = %q", got)
	}
}
