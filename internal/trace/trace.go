// Package trace is the request-scoped span layer of the serve path:
// it attributes each sampled request's latency to the phases that
// spent it — admission-queue wait, store-op execution, and the tx
// begin / commit / flush-coalesce / group-fence stages of the commit
// pipeline — so a p99 regression names the stage that moved instead of
// just the total.
//
// A trace context (request ID + sampling decision) is minted by a
// Sampler — in repro/client for end-to-end traces, or server-side for
// requests from clients that predate tracing — and carried in the
// internal/wire frame header. A sampled request materializes a Req;
// the layers it crosses add phase durations through Span handles (the
// *Tx carries the Req into the commit pipeline, so no API below the
// store grows a context parameter).
//
// Costs follow the telemetry discipline: an unsampled request pays a
// few nil checks and no clock reads; a sampled one pays two clock
// reads per phase. Completed Reqs feed three sinks: per-phase
// nanosecond histograms in telemetry.Default (the Prometheus/expvar
// surface), always-on atomic phase totals (Snapshot, which sppbench's
// serve attribution columns read), and — for requests slower than
// SetSlowThreshold — a bounded exemplar ring served at /debug/slow
// alongside an EvSlowReq flight-recorder event. See DESIGN.md §16.
package trace

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// Phase enumerates the serve-path stages a request's time is
// attributed to.
type Phase uint8

// The phases. Queue and Exec are disjoint wall-clock intervals of the
// request (admission wait, then everything after admission); TxBegin,
// TxCommit, Flush and Fence are sub-intervals nested inside Exec,
// recorded by the commit pipeline.
const (
	// PhaseQueue is time parked in admission control waiting for a
	// window slot.
	PhaseQueue Phase = iota
	// PhaseExec is time executing the operation after admission:
	// tenant lookup, store traversal, and the nested tx phases.
	PhaseExec
	// PhaseTxBegin is lane acquisition in Pool.Begin.
	PhaseTxBegin
	// PhaseTxCommit is Tx.Commit outside the flush and fence stages:
	// redo preparation, the commit point, and heap settlement.
	PhaseTxCommit
	// PhaseFlush is the commit pipeline's flush-coalesce stage: the
	// accumulator pass over snapshotted ranges and fresh allocations.
	PhaseFlush
	// PhaseFence is the commit fence — under group fencing, time
	// waiting on the device's epoch combiner.
	PhaseFence
	// PhaseMaint is background maintenance a request triggered and
	// waited on: shard rehash and MVCC version reclamation. Attributing
	// it separately keeps a rehash-paying Put from looking like a slow
	// store traversal.
	PhaseMaint
	// NumPhases sizes per-phase arrays.
	NumPhases
)

var phaseNames = [NumPhases]string{"queue", "exec", "tx-begin", "tx-commit", "flush", "fence", "maint"}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Per-phase latency histograms plus the end-to-end total, on the
// Prometheus/expvar surface whenever telemetry is enabled.
var (
	phaseHists = func() (h [NumPhases]*telemetry.Histogram) {
		for p := range h {
			h[p] = telemetry.Default.HistogramBuckets(
				"spp_trace_"+phaseNames[p]+"_ns",
				fmt.Sprintf("sampled request time in the %s phase", Phase(p)),
				telemetry.NSBuckets)
		}
		return
	}()
	totalHist = telemetry.Default.HistogramBuckets("spp_trace_total_ns",
		"sampled request end-to-end service time", telemetry.NSBuckets)
	metTraced = telemetry.Default.Counter("spp_trace_requests_total", "requests sampled for tracing")
	metSlow   = telemetry.Default.Counter("spp_trace_slow_total", "sampled requests over the slow threshold")
)

// Always-on phase totals: unlike the histograms these are recorded for
// every finished Req even with the metrics registry disabled, so the
// serve benchmark can attribute latency without turning full telemetry
// on. Only sampled requests touch them.
var (
	phaseTotals [NumPhases]atomic.Uint64
	reqTotal    atomic.Uint64
	reqCount    atomic.Uint64
)

// Totals is a snapshot of the always-on accumulation.
type Totals struct {
	Phase [NumPhases]uint64 // ns per phase
	Total uint64            // ns end-to-end
	Count uint64            // finished sampled requests
}

// Snapshot returns the phase totals accumulated so far.
func Snapshot() Totals {
	var t Totals
	for p := range t.Phase {
		t.Phase[p] = phaseTotals[p].Load()
	}
	t.Total = reqTotal.Load()
	t.Count = reqCount.Load()
	return t
}

// Delta returns t - prev, fieldwise.
func (t Totals) Delta(prev Totals) Totals {
	out := Totals{Total: t.Total - prev.Total, Count: t.Count - prev.Count}
	for p := range t.Phase {
		out.Phase[p] = t.Phase[p] - prev.Phase[p]
	}
	return out
}

// Ctx is the wire-carried trace context: who the request is (for
// exemplar correlation) and whether it was chosen for tracing.
type Ctx struct {
	ID      uint64
	Sampled bool
}

// Sampler mints trace contexts with a 1-in-N decision. The zero
// Sampler is invalid; use NewSampler.
type Sampler struct {
	n   uint64
	ctr atomic.Uint64
	ids atomic.Uint64
}

// NewSampler returns a sampler marking one in n requests (n <= 1
// samples everything). Request IDs are scrambled from a time-seeded
// counter so concurrent samplers do not collide.
func NewSampler(n int) *Sampler {
	if n < 1 {
		n = 1
	}
	s := &Sampler{n: uint64(n)}
	s.ids.Store(uint64(time.Now().UnixNano()))
	return s
}

// Next mints the context for one request.
func (s *Sampler) Next() Ctx {
	id := splitmix64(s.ids.Add(1))
	return Ctx{ID: id, Sampled: s.ctr.Add(1)%s.n == 0}
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijection spreading
// sequential counter values over the whole ID space.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Req is one sampled request being traced. Reqs are pooled; obtain
// them from Start and finish each with exactly one Finish or Drop.
// The phase accumulators tolerate concurrent Add calls (the commit
// pipeline records while the server goroutine owns the Req).
type Req struct {
	ID     uint64
	Op     string
	Tenant string

	start  time.Time
	phases [NumPhases]atomic.Int64
}

var reqPool = sync.Pool{New: func() any { return new(Req) }}

// Start begins tracing one request. The caller decided sampling
// already (via a Sampler or an inbound wire context).
func Start(id uint64, op, tenant string) *Req {
	r := reqPool.Get().(*Req)
	r.ID, r.Op, r.Tenant = id, op, tenant
	r.start = time.Now()
	for p := range r.phases {
		r.phases[p].Store(0)
	}
	return r
}

// Add attributes d to phase p. Safe on a nil Req (no-op), so deep
// layers need no reached-by-a-trace branch beyond the nil check.
func (r *Req) Add(p Phase, d time.Duration) {
	if r == nil {
		return
	}
	r.phases[p].Add(int64(d))
}

// Span is an open interval of one phase. The zero Span (from a nil
// Req) ends without reading the clock.
type Span struct {
	r  *Req
	p  Phase
	t0 time.Time
}

// Span opens a measuring interval for phase p; End closes it.
func (r *Req) Span(p Phase) Span {
	if r == nil {
		return Span{}
	}
	return Span{r: r, p: p, t0: time.Now()}
}

// End records the interval opened by Span.
func (s Span) End() {
	if s.r != nil {
		s.r.phases[s.p].Add(int64(time.Since(s.t0)))
	}
}

// Finish completes the request: phase durations land in the histograms
// and the always-on totals, and a request over the slow threshold is
// captured as an exemplar. The Req must not be used afterwards.
func (r *Req) Finish() {
	if r == nil {
		return
	}
	total := time.Since(r.start)
	metTraced.Inc()
	totalHist.Observe(uint64(total))
	reqTotal.Add(uint64(total))
	reqCount.Add(1)
	var phases [NumPhases]time.Duration
	for p := range r.phases {
		d := r.phases[p].Load()
		phases[p] = time.Duration(d)
		if d > 0 {
			phaseHists[p].Observe(uint64(d))
			phaseTotals[p].Add(uint64(d))
		}
	}
	if thr := slowNS.Load(); thr > 0 && total >= time.Duration(thr) {
		metSlow.Inc()
		captureSlow(Exemplar{
			ID: r.ID, Op: r.Op, Tenant: r.Tenant,
			When: r.start, Total: total, Phases: phases,
		})
		telemetry.Flight.Record(telemetry.EvSlowReq, r.ID, uint64(total))
	}
	reqPool.Put(r)
}

// Drop abandons the request without recording it — a shed request was
// never executed, and tracing it would pollute the attribution.
func (r *Req) Drop() {
	if r != nil {
		reqPool.Put(r)
	}
}

// slowNS is the exemplar-capture threshold in nanoseconds (0 = off).
var slowNS atomic.Int64

// SetSlowThreshold captures finished requests at least d slow as
// /debug/slow exemplars; d <= 0 disables capture.
func SetSlowThreshold(d time.Duration) { slowNS.Store(int64(d)) }

// SlowThreshold returns the current exemplar threshold.
func SlowThreshold() time.Duration { return time.Duration(slowNS.Load()) }

// Exemplar is one captured slow request, whole: identity plus the full
// per-phase breakdown.
type Exemplar struct {
	ID     uint64
	Op     string
	Tenant string
	When   time.Time
	Total  time.Duration
	Phases [NumPhases]time.Duration
}

func (e Exemplar) String() string {
	s := fmt.Sprintf("#%016x %s %s tenant=%s total=%v", e.ID,
		e.When.Format("15:04:05.000"), e.Op, e.Tenant, e.Total)
	for p, d := range e.Phases {
		if d > 0 {
			s += fmt.Sprintf(" %s=%v", Phase(p), d)
		}
	}
	return s
}

// slowRingCap bounds retained exemplars; newer evict older.
// slowTenantQuota is the most slots a single tenant's eviction can
// reclaim from other tenants: once the ring is full, a tenant at or
// over quota replaces only its own oldest exemplar, so one noisy
// tenant cannot wash everyone else's exemplars out of /debug/slow.
const (
	slowRingCap     = 64
	slowTenantQuota = slowRingCap / 4
)

var slowRing struct {
	mu     sync.Mutex
	buf    []Exemplar // oldest first
	counts map[string]int
}

func captureSlow(e Exemplar) {
	slowRing.mu.Lock()
	defer slowRing.mu.Unlock()
	if slowRing.counts == nil {
		slowRing.counts = make(map[string]int)
	}
	if len(slowRing.buf) >= slowRingCap {
		victim := e.Tenant
		if slowRing.counts[e.Tenant] < slowTenantQuota {
			// The inserting tenant is under quota: the slot comes out
			// of the heaviest occupant instead (name-ordered on ties,
			// for determinism).
			best := -1
			for t, n := range slowRing.counts {
				if n > best || (n == best && t < victim) {
					victim, best = t, n
				}
			}
		}
		evictOldestOf(victim)
	}
	slowRing.buf = append(slowRing.buf, e)
	slowRing.counts[e.Tenant]++
}

// evictOldestOf drops tenant's oldest exemplar. The ring is full when
// called, so the scan always finds one.
func evictOldestOf(tenant string) {
	for i := range slowRing.buf {
		if slowRing.buf[i].Tenant == tenant {
			slowRing.buf = append(slowRing.buf[:i], slowRing.buf[i+1:]...)
			if slowRing.counts[tenant]--; slowRing.counts[tenant] <= 0 {
				delete(slowRing.counts, tenant)
			}
			return
		}
	}
}

// SlowExemplars returns the retained slow requests, oldest first.
func SlowExemplars() []Exemplar {
	slowRing.mu.Lock()
	defer slowRing.mu.Unlock()
	return append([]Exemplar(nil), slowRing.buf...)
}

// ResetSlow discards retained exemplars (tests).
func ResetSlow() {
	slowRing.mu.Lock()
	slowRing.buf, slowRing.counts = nil, nil
	slowRing.mu.Unlock()
}

// init mounts the exemplar ring on the shared debug surface: any
// telemetry.Handler built after package init serves /debug/slow.
func init() {
	telemetry.Handle("/debug/slow", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		exs := SlowExemplars()
		fmt.Fprintf(w, "slow-request exemplars: %d retained (threshold %v)\n", len(exs), SlowThreshold())
		for _, e := range exs {
			fmt.Fprintln(w, e)
		}
	}))
}
