package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/variant"
)

// Commit measures the batched commit pipeline (DESIGN.md §12): a
// transaction storm sweeping snapshot ranges per transaction against
// the goroutine axis, with the full pipeline (undo-range dedup, flush
// coalescing, cross-lane group fencing) against the unbatched one
// (all three knobs off). Device tracking is enabled so the flush and
// fence machinery is live — exactly the regime the batching targets;
// with tracking off both columns collapse to the same fast path.
func Commit(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	txs := cfg.scaled(200_000)

	t := Table{
		Title: fmt.Sprintf("Commit pipeline batching: %d transactions, batched vs unbatched", txs),
		Columns: []string{"ranges/tx", "goroutines",
			"batched ns/tx", "unbatched ns/tx", "speedup"},
	}

	modes := []struct {
		name string
		off  bool // disable all three batching legs
	}{
		{"batched", false},
		{"unbatched", true},
	}

	for _, ranges := range []int{4, 16, 64} {
		for _, g := range cfg.Threads {
			row := []string{fmt.Sprintf("%d", ranges), fmt.Sprintf("%d", g)}
			var perTx [2]float64
			for mi, m := range modes {
				knobs := cfg.Knobs
				knobs.DisableRangeDedup = m.off
				knobs.DisableFlushCoalesce = m.off
				knobs.DisableGroupFence = m.off
				env, err := variant.New(variant.PMDK, variant.Options{
					PoolSize: cfg.PoolSize,
					Knobs:    knobs,
				})
				if err != nil {
					return t, err
				}
				env.Dev.EnableTracking(nil)
				d, err := commitStorm(env, g, txs/g, ranges, cfg.Seed)
				if err != nil {
					return t, fmt.Errorf("%s/%d ranges/%dg: %w", m.name, ranges, g, err)
				}
				perTx[mi] = float64(d.Nanoseconds()) / float64(txs)
				row = append(row, fmt.Sprintf("%.0f", perTx[mi]))
			}
			speedup := "-"
			if perTx[0] > 0 {
				speedup = fmt.Sprintf("%.2fx", perTx[1]/perTx[0])
			}
			row = append(row, speedup)
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"ranges overlap (random 96-byte snapshots over 32 cachelines of a private object), "+
			"so dedup coverage grows with ranges/tx; device tracking on in both columns")
	return t, nil
}

// commitStorm runs workers goroutines, each committing perWorker
// transactions of rangesPerTx overlapping AddRange snapshots plus one
// store per snapshot, against a private 4 KiB object.
func commitStorm(env *variant.Env, workers, perWorker, rangesPerTx int, seed int64) (time.Duration, error) {
	if perWorker == 0 {
		perWorker = 1
	}
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			oid, err := env.Pool.Alloc(4096)
			if err != nil {
				errs[w] = err
				return
			}
			base := oid.Off
			rng := newXorshift(seed + int64(w) + 1)
			for i := 0; i < perWorker; i++ {
				tx := env.Pool.Begin()
				for k := 0; k < rangesPerTx; k++ {
					off := base + (rng.next()%32)*64
					if err := tx.AddRange(off, 96); err != nil {
						errs[w] = err
						_ = tx.Abort()
						return
					}
					env.Dev.WriteU64(off, rng.next())
				}
				if err := tx.Commit(); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	d := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return d, err
		}
	}
	return d, nil
}
