package bench

import (
	"testing"

	"repro/internal/engine/enginetest"
)

// TestKnobsSurviveTranslation asserts the harness forwards every
// engine knob into the environment options it builds. The knob set is
// filled by reflection, so a field added to engine.Knobs is covered
// here without editing the test.
func TestKnobsSurviveTranslation(t *testing.T) {
	cfg := Config{Knobs: enginetest.Filled()}
	o := cfg.envOptions(0)
	if o.Knobs != cfg.Knobs {
		t.Errorf("envOptions dropped knobs: got %+v, want %+v", o.Knobs, cfg.Knobs)
	}
}
