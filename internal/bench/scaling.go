package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/hooks"
	"repro/internal/kvstore"
	"repro/internal/pmemobj"
	"repro/internal/variant"
)

// Scaling quantifies the concurrency refactor of the memory path: an
// alloc/free storm on the native runtime and a 50/50 pmemkv workload,
// each across the goroutine axis, with the sharded allocator (per-class
// arenas + lane affinity) against a single serialized arena. On a
// multi-core runner the sharded column scales with the axis while the
// single-arena column flattens; on one CPU both stay near the 1-
// goroutine figure.
func Scaling(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	axis := cfg.Threads
	if axis[0] != 1 {
		axis = append([]int{1}, axis...)
	}
	allocOps := cfg.scaled(2_000_000)
	kvPreload := cfg.scaled(100_000)
	kvOps := cfg.scaled(1_000_000)

	t := Table{
		Title: fmt.Sprintf("Memory-path scaling: %d alloc/free + %d kv ops, sharded vs 1 arena",
			allocOps, kvOps),
		Columns: []string{"workload", "goroutines",
			"sharded Kops/s", "vs 1g", "1 arena Kops/s", "vs 1g"},
	}

	type mode struct {
		name       string
		arenas     int
		noAffinity bool
	}
	modes := []mode{
		{"sharded", cfg.NArenas, cfg.DisableLaneAffinity},
		{"1 arena", 1, true},
	}

	type workload struct {
		name string
		run  func(env *variant.Env, workers int) (int, time.Duration, error)
	}
	// kvRun builds the 50/50 pmemkv workload over a given shard count
	// (0 = the store's default), so the shard axis is measurable.
	kvRun := func(shards uint64) func(env *variant.Env, workers int) (int, time.Duration, error) {
		return func(env *variant.Env, workers int) (int, time.Duration, error) {
			s, err := kvstore.Open(env.RT, kvstore.WithShards(shards))
			if err != nil {
				return 0, 0, err
			}
			value := make([]byte, 1024)
			for i := 0; i < kvPreload; i++ {
				if err := s.Put([]byte(fmt.Sprintf("%016d", i)), value); err != nil {
					return 0, 0, err
				}
			}
			wl := fig5Workload{name: "50/50", readPct: 50}
			d, err := runFig5Workload(s, wl, kvPreload, kvOps, workers, cfg.Seed)
			return kvOps, d, err
		}
	}
	workloads := []workload{
		{"alloc/free storm", func(env *variant.Env, workers int) (int, time.Duration, error) {
			d, err := allocStorm(env.RT, workers, allocOps/workers, cfg.Seed)
			return allocOps, d, err
		}},
		{"kvstore 50/50", kvRun(0)},
		{"kvstore 50/50, 8 shards", kvRun(8)},
		{"kvstore 50/50, 1 shard", kvRun(1)},
	}

	for _, wl := range workloads {
		base := map[string]float64{}
		for _, g := range axis {
			row := []string{wl.name, fmt.Sprintf("%d", g)}
			for _, m := range modes {
				env, err := variant.New(variant.PMDK, variant.Options{
					PoolSize: cfg.PoolSize,
					Knobs: engine.Knobs{
						NArenas:             m.arenas,
						DisableLaneAffinity: m.noAffinity,
					},
				})
				if err != nil {
					return t, err
				}
				ops, d, err := wl.run(env, g)
				if err != nil {
					return t, fmt.Errorf("%s/%s/%d: %w", wl.name, m.name, g, err)
				}
				tput := throughput(ops, d)
				if g == axis[0] {
					base[m.name] = tput
				}
				speedup := "-"
				if b := base[m.name]; b > 0 {
					speedup = fmt.Sprintf("%.2fx", tput/b)
				}
				row = append(row, fmt.Sprintf("%.1f", tput/1e3), speedup)
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"sharded = default arena count with lane affinity; 1 arena = single mutex-serialized "+
			"arena, lanes dispensed only through the shared channel",
		"kvstore rows sweep the store's bucket-shard count (default 64): fewer shards "+
			"serialize writers on the per-shard locks regardless of allocator sharding")
	return t, nil
}

// allocStorm runs workers goroutines, each performing perWorker
// allocations of mixed size classes against a sliding window of live
// objects (a random victim is freed whenever the window fills).
func allocStorm(rt hooks.Runtime, workers, perWorker int, seed int64) (time.Duration, error) {
	if perWorker == 0 {
		perWorker = 1
	}
	const window = 64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newXorshift(seed + int64(w) + 1)
			live := make([]pmemobj.Oid, 0, window)
			for i := 0; i < perWorker; i++ {
				oid, err := rt.Alloc(64 + rng.next()%960)
				if err != nil {
					errs[w] = err
					return
				}
				live = append(live, oid)
				if len(live) == window {
					victim := int(rng.next() % uint64(len(live)))
					if err := rt.Free(live[victim]); err != nil {
						errs[w] = err
						return
					}
					live[victim] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, oid := range live {
				if err := rt.Free(oid); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	d := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return d, err
		}
	}
	return d, nil
}
