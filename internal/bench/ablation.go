package bench

import (
	"fmt"
	"time"

	"repro/internal/engine"
	"repro/internal/hooks"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/safepm"
	"repro/internal/telemetry"
	"repro/internal/transform"
	"repro/internal/variant"
)

// ablationProgram is a loop-heavy mixed workload for the compiler-pass
// ablation: a persistent array summed in an annotated loop (hoistable),
// a basic block with several accesses to one object (preemptible), and
// volatile work that pointer tracking prunes.
const ablationProgram = `
func @main(%iters) {
entry:
  %size = const 4096
  %oid = pmalloc %size
  %p = direct %oid
  %eight = const 8
  %islot = malloc %eight
  %oslot = malloc %eight
  %acc = malloc %eight
  %zero = const 0
  store.8 %acc, %zero
  store.8 %oslot, %zero
  br outer
outer:
  %o = load.8 %oslot
  %more = icmp.lt %o, %iters
  condbr %more, fill, end
fill:
  store.8 %islot, %zero
  br loop
loop: !loop.bound 512
  %i = load.8 %islot
  %c8 = const 8
  %off = mul %i, %c8
  %q = gep %p, %off
  store.8 %q, %i
  %one = const 1
  %i2 = add %i, %one
  store.8 %islot, %i2
  %n = const 512
  %c = icmp.lt %i2, %n
  condbr %c, loop, block
block:
  %a = gep %p, 0
  %x = load.8 %a
  %b = gep %p, 8
  %y = load.8 %b
  %d = gep %p, 16
  %z = load.8 %d
  %xy = add %x, %y
  %xyz = add %xy, %z
  %old = load.8 %acc
  %new = add %old, %xyz
  store.8 %acc, %new
  %o2 = load.8 %oslot
  %one2 = const 1
  %onext = add %o2, %one2
  store.8 %oslot, %onext
  br outer
end:
  %r = load.8 %acc
  ret %r
}
`

// ablationConfigs are the pass combinations of the DESIGN.md §7
// ablation.
var ablationConfigs = []struct {
	name string
	opts transform.Options
}{
	// Value-range elision subsumes preemption and hoisting wherever it
	// proves a chain, so the classic optimizations are measured with it
	// off — otherwise they would have nothing left to merge or hoist.
	{"full (paper default)", transform.Options{}},
	{"no value-range elision", transform.Options{DisableValueRange: true}},
	{"no pointer tracking", transform.Options{
		DisablePointerTracking: true, DisableValueRange: true,
	}},
	{"no preemption/hoisting", transform.Options{
		DisablePreemption: true, DisableHoisting: true, DisableValueRange: true,
		DisableLoopOpt: true,
	}},
	{"no optimizations", transform.Options{
		DisablePointerTracking: true, DisablePreemption: true,
		DisableHoisting: true, DisableLTO: true, DisableValueRange: true,
		DisableLoopOpt: true, DisableFlushElim: true,
	}},
}

// Ablation quantifies the design choices DESIGN.md calls out: the
// compiler optimizations (static hook counts and dynamic run time of
// an instrumented loop kernel under SPP), the _direct hook variant,
// and SafePM's PM-media latency model.
func Ablation(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Title: "Ablation: SPP pass optimizations, _direct hooks, SafePM medium model",
		Columns: []string{"configuration", "updatetags", "checks", "pruned",
			"merged+hoisted", "elided", "runtime", "vs full"},
	}
	mod, err := ir.Parse(ablationProgram)
	if err != nil {
		return t, err
	}
	iters := uint64(cfg.scaled(100_000) / 100)
	var baseline time.Duration
	var want uint64
	for i, ac := range ablationConfigs {
		instrumented, stats, err := transform.Apply(mod, ac.opts)
		if err != nil {
			return t, err
		}
		env, err := newEnv(variant.SPP, cfg, 0)
		if err != nil {
			return t, err
		}
		mach := interp.New(instrumented, env)
		mach.MaxSteps = 1 << 40
		start := time.Now()
		got, err := mach.Run("main", iters)
		if err != nil {
			return t, fmt.Errorf("%s: %w", ac.name, err)
		}
		d := time.Since(start)
		if i == 0 {
			baseline, want = d, got
		} else if got != want {
			return t, fmt.Errorf("%s: result %d != %d", ac.name, got, want)
		}
		t.Rows = append(t.Rows, []string{
			ac.name,
			fmt.Sprintf("%d", stats.UpdateTags),
			fmt.Sprintf("%d", stats.CheckBounds),
			fmt.Sprintf("%d", stats.PrunedVolatile),
			fmt.Sprintf("%d", stats.Preempted+stats.Hoisted),
			fmt.Sprintf("%d", stats.RangeElidedChecks+stats.RangeElidedTags),
			fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000),
			fmt.Sprintf("%.2fx", float64(d)/float64(baseline)),
		})
	}

	// The _direct hook variant: generic vs known-PM check cost.
	env, err := newEnv(variant.SPP, cfg, 0)
	if err != nil {
		return t, err
	}
	oid, err := env.RT.Alloc(4096)
	if err != nil {
		return t, err
	}
	p := env.RT.Direct(oid)
	n := cfg.scaled(10_000_000)
	generic := timeHookLoop(n, func(i int) error {
		_, err := hooks.LoadU64(env.RT, env.RT.Gep(p, int64(i%512)*8))
		return err
	})
	direct := timeHookLoop(n, func(i int) error {
		_, err := hooks.LoadU64PM(env.RT, env.RT.Gep(p, int64(i%512)*8))
		return err
	})
	t.Rows = append(t.Rows, []string{
		"_direct hooks (known-PM)", "-", "-", "-", "-", "-",
		fmt.Sprintf("%.2fms", float64(direct.Microseconds())/1000),
		fmt.Sprintf("%.2fx vs generic %.2fms", float64(direct)/float64(generic),
			float64(generic.Microseconds())/1000),
	})

	// SafePM's PM-media latency model on/off.
	for _, loops := range []int{0, 48} {
		old := safepm.ShadowLatencyLoops
		safepm.ShadowLatencyLoops = loops
		envS, err := newEnv(variant.SafePM, cfg, 0)
		if err != nil {
			safepm.ShadowLatencyLoops = old
			return t, err
		}
		oidS, err := envS.RT.Alloc(4096)
		if err != nil {
			safepm.ShadowLatencyLoops = old
			return t, err
		}
		ps := envS.RT.Direct(oidS)
		d := timeHookLoop(n, func(i int) error {
			_, err := hooks.LoadU64(envS.RT, envS.RT.Gep(ps, int64(i%512)*8))
			return err
		})
		safepm.ShadowLatencyLoops = old
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("safepm shadow latency = %d loops", loops), "-", "-", "-", "-", "-",
			fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000), "-",
		})
	}
	// Arena sharding on/off: an 8-goroutine alloc/free storm on the
	// native runtime, default arena layout vs one serialized arena.
	stormOps := cfg.scaled(400_000)
	var stormBase time.Duration
	for i, mode := range []struct {
		name       string
		arenas     int
		noAffinity bool
	}{
		{"sharded arenas (8-goroutine storm)", 0, false},
		{"1 arena, no lane affinity", 1, true},
	} {
		envN, err := variant.New(variant.PMDK, variant.Options{
			PoolSize: cfg.PoolSize,
			Knobs: engine.Knobs{
				NArenas:             mode.arenas,
				DisableLaneAffinity: mode.noAffinity,
			},
		})
		if err != nil {
			return t, err
		}
		d, err := allocStorm(envN.RT, 8, stormOps/8, cfg.Seed)
		if err != nil {
			return t, fmt.Errorf("%s: %w", mode.name, err)
		}
		rel := "-"
		if i == 0 {
			stormBase = d
		} else if stormBase > 0 {
			rel = fmt.Sprintf("%.2fx", float64(d)/float64(stormBase))
		}
		t.Rows = append(t.Rows, []string{
			mode.name, "-", "-", "-", "-", "-",
			fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000), rel,
		})
	}

	// Telemetry on/off: the same storm with the metrics registry cold
	// (counters gated off) vs hot (every alloc/free/lane event counted).
	wasOn := telemetry.On()
	defer func() {
		if wasOn {
			telemetry.Enable()
		} else {
			telemetry.Disable()
		}
	}()
	var telemBase time.Duration
	for i, on := range []bool{false, true} {
		if on {
			telemetry.Enable()
		} else {
			telemetry.Disable()
		}
		envT, err := variant.New(variant.PMDK, variant.Options{
			PoolSize: cfg.PoolSize,
			Knobs:    engine.Knobs{Telemetry: on},
		})
		if err != nil {
			return t, err
		}
		d, err := allocStorm(envT.RT, 8, stormOps/8, cfg.Seed)
		if err != nil {
			return t, fmt.Errorf("telemetry ablation: %w", err)
		}
		rel := "-"
		if i == 0 {
			telemBase = d
		} else if telemBase > 0 {
			rel = fmt.Sprintf("%.2fx", float64(d)/float64(telemBase))
		}
		name := "telemetry off (8-goroutine storm)"
		if on {
			name = "telemetry on"
		}
		t.Rows = append(t.Rows, []string{
			name, "-", "-", "-", "-", "-",
			fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000), rel,
		})
	}

	// Commit pipeline batching legs on/off: an 8-goroutine transaction
	// storm with device tracking enabled, so the flush/fence machinery
	// the batching targets is live (DESIGN.md §12).
	commitTxs := cfg.scaled(100_000)
	var commitBase time.Duration
	for i, mode := range []struct {
		name                   string
		dedup, coalesce, fence bool // disable flags
	}{
		{"commit batching full (8-goroutine tx storm)", false, false, false},
		{"no undo-range dedup", true, false, false},
		{"no flush coalescing", false, true, false},
		{"no group fencing", false, false, true},
		{"unbatched commit pipeline", true, true, true},
	} {
		envC, err := variant.New(variant.PMDK, variant.Options{
			PoolSize: cfg.PoolSize,
			Knobs: engine.Knobs{
				DisableRangeDedup:    mode.dedup,
				DisableFlushCoalesce: mode.coalesce,
				DisableGroupFence:    mode.fence,
			},
		})
		if err != nil {
			return t, err
		}
		envC.Dev.EnableTracking(nil)
		d, err := commitStorm(envC, 8, commitTxs/8, 16, cfg.Seed)
		if err != nil {
			return t, fmt.Errorf("%s: %w", mode.name, err)
		}
		rel := "-"
		if i == 0 {
			commitBase = d
		} else if commitBase > 0 {
			rel = fmt.Sprintf("%.2fx", float64(d)/float64(commitBase))
		}
		t.Rows = append(t.Rows, []string{
			mode.name, "-", "-", "-", "-", "-",
			fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000), rel,
		})
	}

	t.Notes = append(t.Notes,
		"tag width is a capacity trade-off, not a speed one: 26 bits caps objects at 64 MiB "+
			"and pools at 64 GiB; 31 bits (Phoenix) caps objects at 2 GiB and pools at 2 GiB; "+
			"arithmetic cost is identical")
	return t, nil
}

func timeHookLoop(n int, fn func(i int) error) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			break
		}
	}
	return time.Since(start)
}
