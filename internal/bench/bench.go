// Package bench is the experiment harness: one entry point per table
// and figure of the paper's evaluation (§VI), each regenerating the
// same rows or series the paper reports. Absolute numbers differ from
// the paper's Optane testbed — the substrate here is a simulator — but
// the shapes (who wins, by what factor, where the outliers are) are
// the reproduction target; see EXPERIMENTS.md.
package bench

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/variant"
)

// Config scales the experiments. Scale 1.0 is the paper's size
// (e.g. one million index keys); the default test scale is much
// smaller so the suite stays fast.
type Config struct {
	// Scale multiplies the paper's operation counts (1.0 = paper).
	Scale float64
	// Threads is the pmemkv thread axis; the paper uses 1..32.
	Threads []int
	// PoolSize per environment.
	PoolSize uint64
	// Seed for workload generation.
	Seed int64

	// Knobs are the engine knobs applied to every environment the
	// harness builds (the single definition; see internal/engine).
	engine.Knobs
}

// DefaultConfig is a laptop-scale configuration that keeps every
// experiment under a few seconds.
func DefaultConfig() Config {
	return Config{
		Scale:    0.01,
		Threads:  []int{1, 2, 4, 8},
		PoolSize: 256 << 20,
		Seed:     42,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Scale == 0 {
		c.Scale = d.Scale
	}
	if len(c.Threads) == 0 {
		c.Threads = d.Threads
	}
	if c.PoolSize == 0 {
		c.PoolSize = d.PoolSize
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
	return c
}

func (c Config) scaled(paperCount int) int {
	n := int(float64(paperCount) * c.Scale)
	if n < 10 {
		n = 10
	}
	return n
}

// Table is a formatted experiment result.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// envOptions translates the harness config into environment options.
// Knobs pass through as one struct, so a field added to engine.Knobs
// cannot be dropped here.
func (c Config) envOptions(tagBits uint) variant.Options {
	return variant.Options{
		PoolSize: c.PoolSize,
		TagBits:  tagBits,
		Knobs:    c.Knobs,
	}
}

// newEnv builds a variant environment sized for the harness.
func newEnv(kind variant.Kind, cfg Config, tagBits uint) (*variant.Env, error) {
	return variant.New(kind, cfg.envOptions(tagBits))
}

// throughput returns operations per second.
func throughput(n int, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(n) / d.Seconds()
}

// slowdown formats the paper's "slowdown w.r.t. native PMDK" metric:
// baseline throughput divided by variant throughput.
func slowdown(base, v float64) string {
	if v == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", base/v)
}

// uniformKeys generates n pseudo-random 8-byte keys (pmembench's
// uniform distribution).
func uniformKeys(n int, seed int64) []uint64 {
	rng := rand.New(rand.NewSource(seed))
	keys := make([]uint64, n)
	for i := range keys {
		keys[i] = rng.Uint64()%uint64(n*8) + 1
	}
	return keys
}
