package bench

import (
	"fmt"
	"time"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/transform"
	"repro/internal/variant"
)

// elidePrograms is the static-elision corpus: hook-heavy kernels where
// each analysis tier has something to prove. The inner loops are NOT
// annotated with !loop.bound — the point of the ablation is what the
// discovered-loop tier proves on its own.
var elidePrograms = []struct {
	name string
	src  string
}{
	// A slot-IV sweep over a known-size array with a per-round flush
	// epoch that double-flushes the first line: the loop tier widens the
	// IV access, the range tier elides the epilogue's constant geps, and
	// the persistence pass deletes the redundant flush.
	{"iv-sweep", `
func @main(%iters) {
entry:
  %size = const 4096
  %oid = pmalloc %size
  %p = direct %oid
  %eight = const 8
  %islot = malloc %eight
  %oslot = malloc %eight
  %acc = malloc %eight
  %zero = const 0
  store.8 %acc, %zero
  store.8 %oslot, %zero
  br outer
outer:
  %o = load.8 %oslot
  %more = icmp.lt %o, %iters
  condbr %more, fill, end
fill:
  store.8 %islot, %zero
  br loop
loop:
  %i = load.8 %islot
  %c8 = const 8
  %off = mul %i, %c8
  %q = gep %p, %off
  store.8 %q, %i
  %one = const 1
  %i2 = add %i, %one
  store.8 %islot, %i2
  %n = const 512
  %c = icmp.lt %i2, %n
  condbr %c, loop, epi
epi:
  %a = gep %p, 0
  %x = load.8 %a
  %b = gep %p, 8
  %y = load.8 %b
  %xy = add %x, %y
  %old = load.8 %acc
  %new = add %old, %xy
  store.8 %acc, %new
  flush %p
  flush %p
  %far = gep %p, 128
  flush %far
  fence
  %o2 = load.8 %oslot
  %one2 = const 1
  %onext = add %o2, %one2
  store.8 %oslot, %onext
  br outer
end:
  %r = load.8 %acc
  ret %r
}
`},
	// Three strided IV accesses per iteration: the widened check covers
	// the whole iteration space of all three, replacing three dynamic
	// checks per iteration with one per loop entry.
	{"stencil", `
func @main(%iters) {
entry:
  %size = const 8192
  %oid = pmalloc %size
  %p = direct %oid
  %eight = const 8
  %islot = malloc %eight
  %oslot = malloc %eight
  %acc = malloc %eight
  %zero = const 0
  store.8 %acc, %zero
  store.8 %oslot, %zero
  br outer
outer:
  %o = load.8 %oslot
  %more = icmp.lt %o, %iters
  condbr %more, fill, end
fill:
  store.8 %islot, %zero
  br loop
loop:
  %i = load.8 %islot
  %c8 = const 8
  %c16 = const 16
  %off0 = mul %i, %c8
  %q0 = gep %p, %off0
  store.8 %q0, %i
  %off1 = mul %i, %c16
  %q1 = gep %p, %off1
  %v1 = load.8 %q1
  %off2 = mul %i, %c8
  %q2 = gep %p, %off2
  %v2 = load.8 %q2
  %s = add %v1, %v2
  %old = load.8 %acc
  %new = add %old, %s
  store.8 %acc, %new
  %one = const 1
  %i2 = add %i, %one
  store.8 %islot, %i2
  %n = const 500
  %c = icmp.lt %i2, %n
  condbr %c, loop, next
next:
  %o2 = load.8 %oslot
  %one2 = const 1
  %onext = add %o2, %one2
  store.8 %oslot, %onext
  br outer
end:
  %r = load.8 %acc
  ret %r
}
`},
	// The array reaches the loop as a call parameter, so its size is
	// statically unknown and the range tier cannot elide: this is the
	// widened-check tier's territory — one whole-iteration-space check
	// per loop entry replaces one check per iteration.
	{"kernel-param", `
func @kernel(%p) {
entry:
  %eight = const 8
  %islot = malloc %eight
  %zero = const 0
  store.8 %islot, %zero
  br loop
loop:
  %i = load.8 %islot
  %c8 = const 8
  %off = mul %i, %c8
  %q = gep %p, %off
  store.8 %q, %i
  %one = const 1
  %i2 = add %i, %one
  store.8 %islot, %i2
  %n = const 512
  %c = icmp.lt %i2, %n
  condbr %c, loop, done
done:
  %x = load.8 %p
  ret %x
}
func @main(%iters) {
entry:
  %size = const 4096
  %oid = pmalloc %size
  %p = direct %oid
  %eight = const 8
  %oslot = malloc %eight
  %acc = malloc %eight
  %zero = const 0
  store.8 %acc, %zero
  store.8 %oslot, %zero
  br outer
outer:
  %o = load.8 %oslot
  %more = icmp.lt %o, %iters
  condbr %more, body, end
body:
  %x = call @kernel, %p
  %old = load.8 %acc
  %new = add %old, %x
  store.8 %acc, %new
  %one = const 1
  %onext = add %o, %one
  store.8 %oslot, %onext
  br outer
end:
  %r = load.8 %acc
  ret %r
}
`},
	// Straight-line constant geps over a known-size object: entirely the
	// plain range tier's territory.
	{"const-geps", `
func @main(%iters) {
entry:
  %size = const 256
  %oid = pmalloc %size
  %p = direct %oid
  %v = const 7
  store.8 %p, %v
  %a = gep %p, 64
  store.8 %a, %v
  %b = gep %p, 128
  store.8 %b, %v
  %d = gep %p, 248
  store.8 %d, %v
  %x = load.8 %p
  %y = load.8 %a
  %xy = add %x, %y
  ret %xy
}
`},
}

// elideConfigs are the static-analysis tiers of the DESIGN.md §13
// ablation, cumulative left to right. Pointer tracking, preemption and
// hoisting stay on in every row: the question is what the value-range,
// loop and persistence tiers remove beyond the classic passes.
var elideConfigs = []struct {
	name string
	opts transform.Options
}{
	{"none", transform.Options{
		DisableValueRange: true, DisableLoopOpt: true, DisableFlushElim: true,
	}},
	{"range only", transform.Options{DisableLoopOpt: true, DisableFlushElim: true}},
	{"range+loop", transform.Options{DisableFlushElim: true}},
	{"range+loop+flush-elim", transform.Options{}},
}

// Elide quantifies the static-analysis tiers (DESIGN.md §13): surviving
// bound checks, the elision rate against the no-analysis build, elided
// flushes, and the run time of the instrumented corpus under SPP. Every
// configuration must compute the same results.
func Elide(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Title: "Static elision: value-range, loop, and persistence tiers",
		Columns: []string{"configuration", "checks", "elided", "widened",
			"flushes elided", "runtime", "vs none"},
	}
	mods := make([]*ir.Module, len(elidePrograms))
	for i, p := range elidePrograms {
		m, err := ir.Parse(p.src)
		if err != nil {
			return t, fmt.Errorf("%s: %w", p.name, err)
		}
		mods[i] = m
	}
	iters := uint64(cfg.scaled(100_000) / 100)
	var baseline time.Duration
	var baseChecks int
	want := make([]uint64, len(elidePrograms))
	for ci, ec := range elideConfigs {
		checks, widened, flushElided := 0, 0, 0
		var elapsed time.Duration
		for pi := range mods {
			instrumented, stats, err := transform.Apply(mods[pi], ec.opts)
			if err != nil {
				return t, fmt.Errorf("%s/%s: %w", ec.name, elidePrograms[pi].name, err)
			}
			checks += stats.CheckBounds
			widened += stats.WidenedIVChecks
			flushElided += stats.FlushesElided
			env, err := newEnv(variant.SPP, cfg, 0)
			if err != nil {
				return t, err
			}
			mach := interp.New(instrumented, env)
			mach.MaxSteps = 1 << 40
			start := time.Now()
			got, err := mach.Run("main", iters)
			if err != nil {
				return t, fmt.Errorf("%s/%s: %w", ec.name, elidePrograms[pi].name, err)
			}
			elapsed += time.Since(start)
			if ci == 0 {
				want[pi] = got
			} else if got != want[pi] {
				return t, fmt.Errorf("%s/%s: result %d != %d",
					ec.name, elidePrograms[pi].name, got, want[pi])
			}
		}
		if ci == 0 {
			baseline, baseChecks = elapsed, checks
		}
		elided := "-"
		if ci > 0 && baseChecks > 0 {
			elided = fmt.Sprintf("%d%%", (baseChecks-checks)*100/baseChecks)
		}
		t.Rows = append(t.Rows, []string{
			ec.name,
			fmt.Sprintf("%d", checks),
			elided,
			fmt.Sprintf("%d", widened),
			fmt.Sprintf("%d", flushElided),
			fmt.Sprintf("%.2fms", float64(elapsed.Microseconds())/1000),
			fmt.Sprintf("%.2fx", float64(elapsed)/float64(baseline)),
		})
	}
	t.Notes = append(t.Notes,
		"checks are static SppCheckBound hooks after pointer tracking, preemption and "+
			"hoisting — the classic passes stay on in every row",
		"a widened check replaces every per-iteration check of its loop with one "+
			"whole-iteration-space check in the preheader")
	return t, nil
}
