package bench

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/indices"
	"repro/internal/kvstore"
	"repro/internal/phoenix"
	"repro/internal/variant"
)

// fig4Variants are the Table I variants compared in the throughput
// figures.
var fig4Variants = []variant.Kind{variant.PMDK, variant.SafePM, variant.SPP}

// Fig4 reproduces Figure 4: persistent-index throughput slowdown
// w.r.t. native PMDK for ctree/rbtree/rtree/hashmap × insert/get/
// remove, one million uniform 8-byte keys at paper scale.
func Fig4(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(1_000_000)
	keys := uniformKeys(n, cfg.Seed)

	t := Table{
		Title:   fmt.Sprintf("Figure 4: persistent indices, %d uniform keys, slowdown w.r.t. PMDK", n),
		Columns: []string{"index", "op", "pmdk Mops/s", "safepm", "spp"},
	}
	for _, kind := range indices.Kinds {
		// ops -> variant -> throughput
		tput := map[string]map[variant.Kind]float64{
			"insert": {}, "get": {}, "remove": {},
		}
		for _, vk := range fig4Variants {
			env, err := newEnv(vk, cfg, 0)
			if err != nil {
				return t, err
			}
			m, err := indices.New(kind, env.RT)
			if err != nil {
				return t, fmt.Errorf("%s/%s: %w", kind, vk, err)
			}
			// Warm caches and the allocator with a prefix of the keys.
			for _, k := range keys[:len(keys)/5] {
				if err := m.Insert(k, k); err != nil {
					return t, err
				}
			}
			for _, k := range keys[:len(keys)/5] {
				if _, err := m.Remove(k); err != nil {
					return t, err
				}
			}
			runtime.GC()
			start := time.Now()
			for _, k := range keys {
				if err := m.Insert(k, k); err != nil {
					return t, fmt.Errorf("%s/%s insert: %w", kind, vk, err)
				}
			}
			tput["insert"][vk] = throughput(n, time.Since(start))

			runtime.GC()
			start = time.Now()
			for _, k := range keys {
				if _, _, err := m.Get(k); err != nil {
					return t, fmt.Errorf("%s/%s get: %w", kind, vk, err)
				}
			}
			tput["get"][vk] = throughput(n, time.Since(start))

			runtime.GC()
			start = time.Now()
			for _, k := range keys {
				if _, err := m.Remove(k); err != nil {
					return t, fmt.Errorf("%s/%s remove: %w", kind, vk, err)
				}
			}
			tput["remove"][vk] = throughput(n, time.Since(start))
		}
		for _, op := range []string{"insert", "get", "remove"} {
			base := tput[op][variant.PMDK]
			t.Rows = append(t.Rows, []string{
				kind, op,
				fmt.Sprintf("%.3f", base/1e6),
				slowdown(base, tput[op][variant.SafePM]),
				slowdown(base, tput[op][variant.SPP]),
			})
		}
	}
	return t, nil
}

// fig5Workload is one pmemkv-bench workload mix.
type fig5Workload struct {
	name       string
	readPct    int
	sequential bool
}

var fig5Workloads = []fig5Workload{
	{"random reads/writes (50%-50%)", 50, false},
	{"random reads/writes (95%-5%)", 95, false},
	{"random reads", 100, false},
	{"sequential reads", 100, true},
}

// Fig5 reproduces Figure 5: pmemkv throughput slowdown w.r.t. native
// PMDK across four workloads and the thread axis. Paper scale: 1M
// preloaded keys, 10M operations, 16-byte keys, 1024-byte values.
func Fig5(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	preload := cfg.scaled(1_000_000)
	ops := cfg.scaled(10_000_000)

	t := Table{
		Title:   fmt.Sprintf("Figure 5: pmemkv (cmap), %d keys preloaded, %d ops, slowdown w.r.t. PMDK", preload, ops),
		Columns: []string{"workload", "threads", "pmdk Kops/s", "safepm", "spp"},
	}
	value := make([]byte, 1024)
	for i := range value {
		value[i] = byte(i)
	}
	keyOf := func(i int) []byte { return []byte(fmt.Sprintf("%016d", i)) }

	for _, wl := range fig5Workloads {
		for _, threads := range cfg.Threads {
			tput := map[variant.Kind]float64{}
			for _, vk := range fig4Variants {
				env, err := newEnv(vk, cfg, 0)
				if err != nil {
					return t, err
				}
				s, err := kvstore.Open(env.RT)
				if err != nil {
					return t, err
				}
				for i := 0; i < preload; i++ {
					if err := s.Put(keyOf(i), value); err != nil {
						return t, fmt.Errorf("preload %s: %w", vk, err)
					}
				}
				d, err := runFig5Workload(s, wl, preload, ops, threads, cfg.Seed)
				if err != nil {
					return t, fmt.Errorf("%s/%s: %w", wl.name, vk, err)
				}
				tput[vk] = throughput(ops, d)
			}
			base := tput[variant.PMDK]
			t.Rows = append(t.Rows, []string{
				wl.name, fmt.Sprintf("%d", threads),
				fmt.Sprintf("%.1f", base/1e3),
				slowdown(base, tput[variant.SafePM]),
				slowdown(base, tput[variant.SPP]),
			})
		}
	}
	return t, nil
}

func runFig5Workload(s *kvstore.Store, wl fig5Workload, preload, ops, threads int, seed int64) (time.Duration, error) {
	value := make([]byte, 1024)
	errs := make([]error, threads)
	perThread := ops / threads
	if perThread == 0 {
		perThread = 1
	}
	start := time.Now()
	done := make(chan int, threads)
	for w := 0; w < threads; w++ {
		go func(w int) {
			defer func() { done <- w }()
			rng := newXorshift(seed + int64(w) + 1)
			for i := 0; i < perThread; i++ {
				var idx int
				if wl.sequential {
					idx = (w*perThread + i) % preload
				} else {
					idx = int(rng.next() % uint64(preload))
				}
				key := []byte(fmt.Sprintf("%016d", idx))
				if int(rng.next()%100) < wl.readPct {
					if _, _, err := s.Get(key); err != nil {
						errs[w] = err
						return
					}
				} else {
					if err := s.Put(key, value); err != nil {
						errs[w] = err
						return
					}
				}
			}
		}(w)
	}
	for i := 0; i < threads; i++ {
		<-done
	}
	d := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return d, err
		}
	}
	return d, nil
}

type xorshift uint64

func newXorshift(seed int64) *xorshift {
	x := xorshift(seed)
	if x == 0 {
		x = 1
	}
	return &x
}

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}

// Fig6 reproduces Figure 6: Phoenix suite slowdown w.r.t. native PMDK
// with 8 worker threads and 31 tag bits.
func Fig6(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	threads := 8
	// Per-kernel paper-scale units, scaled down by cfg.Scale.
	scales := map[string]int{
		"histogram":         8_000_000,
		"kmeans":            500_000,
		"linear_regression": 8_000_000,
		"matrix_multiply":   600, // n×n: cubic work
		"pca":               400_000,
		"string_match":      2_000_000,
		"word_count":        2_000_000,
	}
	t := Table{
		Title:   "Figure 6: Phoenix benchmark suite, slowdown w.r.t. PMDK (8 threads, 31 tag bits)",
		Columns: []string{"kernel", "pmdk ms", "safepm", "spp"},
	}
	for _, kernel := range phoenix.Kernels {
		scale := cfg.scaled(scales[kernel])
		if kernel == "matrix_multiply" {
			// Cubic kernel: scale the edge, not the volume.
			scale = cfg.scaled(scales[kernel] * 10)
			if scale > scales[kernel] {
				scale = scales[kernel]
			}
			if scale < 16 {
				scale = 16
			}
		}
		var base time.Duration
		row := []string{kernel}
		var want uint64
		for i, vk := range []variant.Kind{variant.PMDK, variant.SafePM, variant.SPP} {
			env, err := newEnv(vk, cfg, core.PhoenixTagBits)
			if err != nil {
				return t, err
			}
			start := time.Now()
			sum, err := phoenix.Run(kernel, env.RT, scale, threads)
			if err != nil {
				return t, fmt.Errorf("%s/%s: %w", kernel, vk, err)
			}
			d := time.Since(start)
			if i == 0 {
				want = sum
				base = d
				row = append(row, fmt.Sprintf("%.1f", float64(d.Microseconds())/1000))
			} else {
				if sum != want {
					return t, fmt.Errorf("%s/%s: checksum %#x != %#x", kernel, vk, sum, want)
				}
				row = append(row, fmt.Sprintf("%.2fx", float64(d)/float64(base)))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
