package bench

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kvstore"
	"repro/internal/variant"
)

// ScanBench measures the MVCC read path (DESIGN.md §17): a snapshot
// reader — batches of point gets plus a bounded range scan, each batch
// against one pinned snapshot — first against an idle store, then with
// a writer storming puts over the same key space. The mvcc rows use
// the lock-free snapshot path; the no-mvcc rows are the ablation
// baseline, where the same reader degrades to per-shard RWMutex reads
// that queue behind every writer transaction. Under MVCC the storm row
// holds near the machine's CPU-share bound; under the lock baseline
// the writer's lock hold times (an entire transaction each) collapse
// it well below that.
func ScanBench(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	keySpace := cfg.scaled(100_000)
	dur := time.Duration(float64(10*time.Second) * cfg.Scale)
	if dur < 250*time.Millisecond {
		dur = 250 * time.Millisecond
	}
	if dur > 10*time.Second {
		dur = 10 * time.Second
	}
	const (
		getsPerBatch = 32
		scanWidth    = 100 // keys per bounded range scan
		stormWriters = 4
	)

	t := Table{
		Title: fmt.Sprintf("Snapshot reads under write storm: %d keys, %v/phase, SPP protection",
			keySpace, dur),
		Columns: []string{"mode", "phase", "get Kops/s", "vs idle", "p99 get µs", "scan keys/s", "write Kops/s"},
		Notes: []string{
			fmt.Sprintf("reader: batches of %d snapshot gets + one %d-key range scan per pinned snapshot", getsPerBatch, scanWidth),
			fmt.Sprintf("storm: %d writer goroutines put over the same key space as fast as they can", stormWriters),
			"mvcc = snapshot path (zero read-side locks); no-mvcc = per-shard RWMutex ablation (-no-mvcc)",
			"on an N-core host the storm ceiling for a never-blocking reader is its CPU share, not the idle figure",
			"p99 get latency is the lock-free claim made visible even on one core: snapshot reads never park behind a writer's transaction-length lock hold",
		},
	}

	for _, mode := range []struct {
		name   string
		noMVCC bool
	}{{"mvcc", false}, {"no-mvcc", true}} {
		var idleTput float64
		for _, storm := range []bool{false, true} {
			knobs := cfg.Knobs
			knobs.NoMVCC = mode.noMVCC
			env, err := variant.New(variant.SPP, variant.Options{
				PoolSize: cfg.PoolSize,
				Knobs:    knobs,
			})
			if err != nil {
				return t, err
			}
			writers := 0
			if storm {
				writers = stormWriters
			}
			r, err := runScanPhase(env, keySpace, writers, dur, getsPerBatch, scanWidth)
			if err != nil {
				return t, fmt.Errorf("%s/storm=%v: %w", mode.name, storm, err)
			}
			phase := "idle"
			tput := throughput(r.gets, r.wall)
			vsIdle := "-"
			if storm {
				phase = "storm"
				if idleTput > 0 {
					vsIdle = fmt.Sprintf("%.2fx", tput/idleTput)
				}
			} else {
				idleTput = tput
			}
			t.Rows = append(t.Rows, []string{
				mode.name, phase,
				fmt.Sprintf("%.1f", tput/1e3),
				vsIdle,
				fmt.Sprintf("%.1f", r.p99.Seconds()*1e6),
				fmt.Sprintf("%.0f", throughput(r.scanned, r.wall)),
				fmt.Sprintf("%.1f", throughput(r.writes, r.wall)/1e3),
			})
		}
	}
	return t, nil
}

type scanPhaseResult struct {
	gets, scanned, writes int
	wall                  time.Duration
	p99                   time.Duration
}

// runScanPhase preloads the store, then runs the reader (and, in the
// storm phase, `writers` put goroutines) for dur.
func runScanPhase(env *variant.Env, keySpace, writers int, dur time.Duration, getsPerBatch, scanWidth int) (scanPhaseResult, error) {
	s, err := kvstore.Open(env.RT)
	if err != nil {
		return scanPhaseResult{}, err
	}
	value := make([]byte, 64)
	for i := 0; i < keySpace; i++ {
		if err := s.Put(scanKey(i), value); err != nil {
			return scanPhaseResult{}, err
		}
	}

	var res scanPhaseResult
	var stop atomic.Bool
	var wg sync.WaitGroup
	var writes atomic.Int64
	writeErrs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newXorshift(int64(w) + 1)
			for !stop.Load() {
				if err := s.Put(scanKey(int(rng.next()%uint64(keySpace))), value); err != nil {
					writeErrs[w] = err
					return
				}
				writes.Add(1)
			}
		}(w)
	}

	rng := newXorshift(int64(writers) + 2)
	var lat []time.Duration
	start := time.Now()
	deadline := start.Add(dur)
	for time.Now().Before(deadline) {
		sn := s.Snapshot()
		for i := 0; i < getsPerBatch; i++ {
			t0 := time.Now()
			_, _, err := sn.Get(scanKey(int(rng.next() % uint64(keySpace))))
			if err != nil {
				sn.Release()
				stop.Store(true)
				wg.Wait()
				return res, err
			}
			lat = append(lat, time.Since(t0))
			res.gets++
		}
		lo := int(rng.next() % uint64(keySpace))
		hi := lo + scanWidth
		if hi > keySpace {
			hi = keySpace
		}
		err := sn.Scan(scanKey(lo), scanKey(hi), func(_, _ []byte) bool {
			res.scanned++
			return true
		})
		if rerr := sn.Release(); err == nil {
			err = rerr
		}
		if err != nil {
			stop.Store(true)
			wg.Wait()
			return res, err
		}
	}
	res.wall = time.Since(start)
	stop.Store(true)
	wg.Wait()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	res.p99 = pickQuantile(lat, 0.99)
	res.writes = int(writes.Load())
	for _, err := range writeErrs {
		if err != nil {
			return res, err
		}
	}
	return res, nil
}

func scanKey(i int) []byte { return []byte(fmt.Sprintf("%08d", i)) }
