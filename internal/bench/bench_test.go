package bench

import (
	"strconv"
	"strings"
	"testing"
)

// tiny returns a configuration small enough for unit tests.
func tiny() Config {
	return Config{Scale: 0.001, Threads: []int{1, 2}, PoolSize: 64 << 20, Seed: 7}
}

func parseSlowdown(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "x"), 64)
	if err != nil {
		t.Fatalf("bad slowdown cell %q: %v", cell, err)
	}
	return v
}

func TestTableFormat(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"x", "1"}, {"yyyy", "2"}},
		Notes:   []string{"a note"},
	}
	out := tab.Format()
	for _, want := range []string{"== demo ==", "long-column", "yyyy", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format lacks %q:\n%s", want, out)
		}
	}
}

func TestFig4ShapeHolds(t *testing.T) {
	tab, err := Fig4(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 12 { // 4 indices × 3 ops
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Shape: SafePM slower than SPP on average (the paper's headline).
	var safepmSum, sppSum float64
	for _, row := range tab.Rows {
		safepmSum += parseSlowdown(t, row[3])
		sppSum += parseSlowdown(t, row[4])
	}
	if safepmSum <= sppSum {
		t.Errorf("SafePM (%0.1f total) not slower than SPP (%0.1f total)", safepmSum, sppSum)
	}
	t.Log("\n" + tab.Format())
}

func TestFig5ShapeHolds(t *testing.T) {
	tab, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4*2 { // 4 workloads × 2 thread counts
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var safepmSum, sppSum float64
	for _, row := range tab.Rows {
		safepmSum += parseSlowdown(t, row[3])
		sppSum += parseSlowdown(t, row[4])
	}
	if safepmSum <= sppSum {
		t.Errorf("SafePM (%0.1f) not slower than SPP (%0.1f)", safepmSum, sppSum)
	}
	t.Log("\n" + tab.Format())
}

func TestFig6ShapeHolds(t *testing.T) {
	tab, err := Fig6(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	var safepmSum, sppSum float64
	for _, row := range tab.Rows {
		safepmSum += parseSlowdown(t, row[2])
		sppSum += parseSlowdown(t, row[3])
	}
	if safepmSum <= sppSum {
		t.Errorf("SafePM (%0.1f) not slower than SPP (%0.1f)", safepmSum, sppSum)
	}
	t.Log("\n" + tab.Format())
}

func TestFig7Runs(t *testing.T) {
	// The plausibility bound below is a timing ratio over ~100-op
	// samples; when the whole suite shares one CPU a single descheduled
	// cell can blow past it. Retry once before calling it a failure.
	var tab Table
	for attempt := 0; ; attempt++ {
		var err error
		tab, err = Fig7(tiny())
		if err != nil {
			t.Fatal(err)
		}
		if len(tab.Rows) != 6 { // {atomic, tx} × {alloc, free, realloc}
			t.Fatalf("rows = %d", len(tab.Rows))
		}
		// Management operations barely touch SPP's fast path: slowdowns
		// must stay moderate (the paper reports 1-17%; allow noise).
		implausible := false
		for _, row := range tab.Rows {
			for _, cell := range row[1:] {
				if s := parseSlowdown(t, cell); s > 3.0 {
					if attempt == 0 {
						implausible = true
					} else {
						t.Errorf("%s: slowdown %s implausibly high", row[0], cell)
					}
				}
			}
		}
		if !implausible || t.Failed() {
			break
		}
	}
	t.Log("\n" + tab.Format())
}

func TestScalingRuns(t *testing.T) {
	tab, err := Scaling(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × (1 prepended to the {1,2} axis → 2 counts).
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, col := range []int{3, 5} {
			if row[1] == "1" {
				if got := parseSlowdown(t, row[col]); got != 1.0 {
					t.Errorf("%s g=1: speedup %s != 1.00x", row[0], row[col])
				}
			} else if row[col] == "-" {
				t.Errorf("%s g=%s: missing speedup cell", row[0], row[1])
			}
		}
	}
	t.Log("\n" + tab.Format())
}

func TestCommitRuns(t *testing.T) {
	tab, err := Commit(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// 3 ranges/tx settings × the {1,2} thread axis.
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[4] == "-" {
			t.Errorf("ranges=%s g=%s: missing speedup cell", row[0], row[1])
		}
	}
	t.Log("\n" + tab.Format())
}

func TestTable2Runs(t *testing.T) {
	tab, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	t.Log("\n" + tab.Format())
}

func TestTable3ShapeHolds(t *testing.T) {
	cfg := tiny()
	cfg.Scale = 0.002
	tab, err := Table3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var rtreePct float64
	for _, row := range tab.Rows {
		pct, err := strconv.ParseFloat(strings.TrimSuffix(row[2], "%"), 64)
		if err != nil {
			t.Fatalf("bad pct %q", row[2])
		}
		if row[0] == "rtree" {
			rtreePct = pct
		} else if pct > 25 {
			t.Errorf("%s overhead %.1f%%, expected small", row[0], pct)
		}
	}
	if rtreePct < 30 || rtreePct > 50 {
		t.Errorf("rtree overhead %.1f%%, want ~40%% (paper: 39.7%%)", rtreePct)
	}
	t.Log("\n" + tab.Format())
}

func TestCrashConsistencyCleans(t *testing.T) {
	tab, err := CrashConsistency(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tab.Rows {
		if row[3] != "0" {
			t.Errorf("%s: %s pmemcheck violations", row[0], row[3])
		}
		if row[5] != "PASS" {
			t.Errorf("%s: %s", row[0], row[5])
		}
	}
	t.Log("\n" + tab.Format())
}

func TestAblationRuns(t *testing.T) {
	tab, err := Ablation(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(ablationConfigs)+12 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Rows: 0 full, 1 no-elision, 2 no-tracking, 3 no-preempt/hoist,
	// 4 no-optimizations. Pointer tracking must prune hooks; disabling
	// it must not.
	if tab.Rows[0][3] == "0" {
		t.Error("full config pruned nothing")
	}
	if tab.Rows[2][3] != "0" {
		t.Error("tracking-disabled config pruned hooks")
	}
	// Value-range elision must remove hooks the no-elision build keeps.
	if tab.Rows[0][5] == "0" {
		t.Error("full config elided nothing")
	}
	fullChecks, _ := strconv.Atoi(tab.Rows[0][2])
	noElide, _ := strconv.Atoi(tab.Rows[1][2])
	if fullChecks >= noElide {
		t.Errorf("elision left as many checks (%d) as the no-elision build (%d)",
			fullChecks, noElide)
	}
	// Disabling preemption/hoisting must leave more static checks than
	// the no-elision build that still runs them.
	if tab.Rows[3][1] == tab.Rows[1][1] && tab.Rows[3][2] == tab.Rows[1][2] {
		t.Error("optimizations made no static difference")
	}
	t.Log("\n" + tab.Format())
}

func TestElideRuns(t *testing.T) {
	tab, err := Elide(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != len(elideConfigs) {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(elideConfigs))
	}
	// Rows: 0 none, 1 range only, 2 range+loop, 3 +flush-elim. Surviving
	// static checks must shrink monotonically as tiers are added.
	checks := make([]int, len(tab.Rows))
	for i, row := range tab.Rows {
		checks[i], _ = strconv.Atoi(row[1])
	}
	if !(checks[0] > checks[1] && checks[1] > checks[2] && checks[2] == checks[3]) {
		t.Errorf("checks per tier = %v, want strictly shrinking then stable", checks)
	}
	// The acceptance bar: range+loop elides at least 35% of the checks
	// the no-analysis build emits.
	if checks[0] > 0 && (checks[0]-checks[2])*100/checks[0] < 35 {
		t.Errorf("range+loop elided %d%%, want >= 35%%",
			(checks[0]-checks[2])*100/checks[0])
	}
	// The loop tier must exercise the widened-check path (the
	// kernel-param program's array size is only known dynamically).
	if tab.Rows[2][3] == "0" {
		t.Error("range+loop widened no IV check")
	}
	// The persistence tier must delete the seeded redundant flush.
	if tab.Rows[3][4] == "0" {
		t.Error("flush-elim config elided no flush")
	}
	t.Log("\n" + tab.Format())
}

func TestCompileRuns(t *testing.T) {
	tab, err := Compile(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// One row per corpus program plus the total.
	if len(tab.Rows) != len(elidePrograms)+1 {
		t.Fatalf("rows = %d, want %d", len(tab.Rows), len(elidePrograms)+1)
	}
	total := tab.Rows[len(tab.Rows)-1]
	if total[0] != "total" {
		t.Fatalf("last row is %q, want the total", total[0])
	}
	// Result equality between modes is enforced inside Compile; here
	// check the loop-heavy programs come out ahead even at tiny scale
	// (the one-off compile cost is amortized within a single run).
	if s := parseSlowdown(t, total[3]); s <= 1.0 {
		t.Errorf("compiled total not faster than interpreted: %s", total[3])
	}
	t.Log("\n" + tab.Format())
}

func TestServeBenchRuns(t *testing.T) {
	tab, err := ServeBench(tiny())
	if err != nil {
		t.Fatal(err)
	}
	// Two variants x four offered-load levels.
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "0.0" {
			t.Errorf("%s @ %s clients: zero throughput", row[0], row[1])
		}
	}
	t.Log("\n" + tab.Format())
}
