package bench

import (
	"fmt"
	"time"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/transform"
	"repro/internal/variant"
)

// Compile quantifies the closure-compiled execution path (DESIGN.md
// §14) against the reference interpreter. It reuses the hook-heavy
// elision corpus with every static-elision tier disabled, so each
// iteration carries its full complement of SPP hooks — the workload
// where per-instruction dispatch cost dominates. Both modes run the
// same instrumented module and must compute the same result; the
// interpreted rows are what `-no-compile` selects.
func Compile(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Title:   "Closure compilation vs reference interpreter (hook-heavy corpus, SPP)",
		Columns: []string{"program", "interpreted", "compiled", "speedup"},
	}
	// All elision tiers off: every bound check, tag update and flush
	// the transform would otherwise remove stays live.
	hookHeavy := transform.Options{
		DisableValueRange: true, DisableLoopOpt: true, DisableFlushElim: true,
	}
	iters := uint64(cfg.scaled(100_000) / 100)
	var totInterp, totComp time.Duration
	var funcs, thunks, hooks int
	for _, p := range elidePrograms {
		m, err := ir.Parse(p.src)
		if err != nil {
			return t, fmt.Errorf("%s: %w", p.name, err)
		}
		instrumented, _, err := transform.Apply(m, hookHeavy)
		if err != nil {
			return t, fmt.Errorf("%s: %w", p.name, err)
		}
		run := func(noCompile bool) (uint64, time.Duration, *interp.Machine, error) {
			env, err := newEnv(variant.SPP, cfg, 0)
			if err != nil {
				return 0, 0, nil, err
			}
			mach := interp.New(instrumented, env)
			mach.NoCompile = noCompile
			mach.MaxSteps = 1 << 40
			start := time.Now()
			got, err := mach.Run("main", iters)
			return got, time.Since(start), mach, err
		}
		wantV, dInterp, _, err := run(true)
		if err != nil {
			return t, fmt.Errorf("%s (interpreted): %w", p.name, err)
		}
		gotV, dComp, mach, err := run(false)
		if err != nil {
			return t, fmt.Errorf("%s (compiled): %w", p.name, err)
		}
		if gotV != wantV {
			return t, fmt.Errorf("%s: compiled result %d != interpreted %d", p.name, gotV, wantV)
		}
		st := mach.CompileStats()
		if st.Funcs == 0 {
			return t, fmt.Errorf("%s: no functions compiled", p.name)
		}
		funcs += st.Funcs
		thunks += st.Thunks
		hooks += st.Hooks
		totInterp += dInterp
		totComp += dComp
		t.Rows = append(t.Rows, []string{
			p.name,
			fmt.Sprintf("%.2fms", float64(dInterp.Microseconds())/1000),
			fmt.Sprintf("%.2fms", float64(dComp.Microseconds())/1000),
			fmt.Sprintf("%.2fx", float64(dInterp)/float64(dComp)),
		})
	}
	t.Rows = append(t.Rows, []string{
		"total",
		fmt.Sprintf("%.2fms", float64(totInterp.Microseconds())/1000),
		fmt.Sprintf("%.2fms", float64(totComp.Microseconds())/1000),
		fmt.Sprintf("%.2fx", float64(totInterp)/float64(totComp)),
	})
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d funcs lowered to %d thunks (%d SPP hook sites inlined); "+
			"all elision tiers disabled so every hook stays live", funcs, thunks, hooks),
		"both rows execute the same instrumented module; interpreted rows are what "+
			"-no-compile selects, and compiled runs fall back per function when "+
			"SSA dominance does not hold")
	return t, nil
}
