package bench

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
	"repro/internal/telemetry"
	"repro/internal/variant"
)

// Steal measures cross-arena steal rates under contrasting size-class
// mixes, closing the open roadmap question the sharded-allocator
// refactor left: how often does a worker's affine arena run dry, and
// how far does the probe travel when it does? The uniform mix spreads
// identical load over every arena; the skewed mix gives a quarter of
// the workers arena-filling allocations (their live window exceeds one
// arena) while the rest stay at 128 bytes, so heavy workers must steal.
// Rates come straight from the telemetry registry's per-distance
// counters, diffed around each run.
func Steal(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	telemetry.Enable()
	allocOps := cfg.scaled(500_000)

	t := Table{
		Title: fmt.Sprintf("Cross-arena steal rates: %d allocs, uniform vs skewed size classes", allocOps),
		Columns: []string{"mix", "goroutines", "allocs", "steal att.", "steals",
			"steal rate", "by distance"},
	}

	for _, mix := range []string{"uniform", "skewed"} {
		for _, g := range cfg.Threads {
			knobs := cfg.Knobs
			knobs.Telemetry = true
			env, err := variant.New(variant.PMDK, variant.Options{
				PoolSize: cfg.PoolSize,
				Knobs:    knobs,
			})
			if err != nil {
				return t, err
			}
			// Size the heavy class off the arena: a heavy worker's live
			// window (64 blocks) adds up to ~4/3 of one arena, so its
			// affine arena must run dry and the probe must travel. Capped
			// so all heavy workers together hold at most half the pool.
			heavy := cfg.PoolSize / uint64(env.Pool.NArenas()) / 48
			if cap := cfg.PoolSize / uint64(128*((g+3)/4)); heavy > cap {
				heavy = cap
			}
			before := telemetry.Default.Snapshot()
			if _, err := stealStorm(env.RT, g, allocOps/g, cfg.Seed, mix == "skewed", heavy); err != nil {
				return t, fmt.Errorf("steal/%s/%d: %w", mix, g, err)
			}
			d := telemetry.Default.Snapshot().Delta(before)

			allocs := d["spp_alloc_total"]
			var attempts, successes int64
			type distRow struct {
				dist string
				n    int64
			}
			var byDist []distRow
			for k, v := range d {
				if strings.HasPrefix(k, "spp_steal_attempts_total{") {
					attempts += v
				}
				if strings.HasPrefix(k, "spp_steal_success_total{") {
					successes += v
					dist := strings.TrimSuffix(strings.TrimPrefix(k, `spp_steal_success_total{distance="`), `"}`)
					byDist = append(byDist, distRow{dist, v})
				}
			}
			sort.Slice(byDist, func(i, j int) bool { return byDist[i].dist < byDist[j].dist })
			var distCells []string
			for _, r := range byDist {
				distCells = append(distCells, fmt.Sprintf("%s:%d", r.dist, r.n))
			}
			distStr := strings.Join(distCells, " ")
			if distStr == "" {
				distStr = "-"
			}
			rate := "0.0%"
			if allocs > 0 {
				rate = fmt.Sprintf("%.1f%%", 100*float64(successes)/float64(allocs))
			}
			t.Rows = append(t.Rows, []string{mix, fmt.Sprintf("%d", g),
				fmt.Sprintf("%d", allocs), fmt.Sprintf("%d", attempts),
				fmt.Sprintf("%d", successes), rate, distStr})
		}
	}
	t.Notes = append(t.Notes,
		"skewed = every 4th worker allocates arena-sized/48 blocks (live window ~4/3 arena), "+
			"the rest 128 B; distance = arenas probed past the worker's affine arena before one "+
			"served the reservation")
	return t, nil
}

// stealStorm is allocStorm with a controllable per-worker size mix:
// uniform draws every size from the same distribution, skewed gives
// every fourth worker heavy-sized allocations and the rest 128 bytes.
func stealStorm(rt hooks.Runtime, workers, perWorker int, seed int64, skewed bool, heavy uint64) (time.Duration, error) {
	if perWorker == 0 {
		perWorker = 1
	}
	const window = 64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := newXorshift(seed + int64(w) + 1)
			size := func() uint64 { return 64 + rng.next()%960 }
			if skewed {
				if w%4 == 0 {
					size = func() uint64 { return heavy }
				} else {
					size = func() uint64 { return 128 }
				}
			}
			live := make([]pmemobj.Oid, 0, window)
			for i := 0; i < perWorker; i++ {
				oid, err := rt.Alloc(size())
				if err != nil {
					errs[w] = err
					return
				}
				live = append(live, oid)
				if len(live) == window {
					victim := int(rng.next() % uint64(len(live)))
					if err := rt.Free(live[victim]); err != nil {
						errs[w] = err
						return
					}
					live[victim] = live[len(live)-1]
					live = live[:len(live)-1]
				}
			}
			for _, oid := range live {
				if err := rt.Free(oid); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	d := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return d, err
		}
	}
	return d, nil
}
