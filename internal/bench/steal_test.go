package bench

import (
	"strconv"
	"testing"

	"repro/internal/telemetry"
)

func TestStealRuns(t *testing.T) {
	was := telemetry.On()
	defer func() {
		if !was {
			telemetry.Disable()
		}
	}()
	cfg := tiny()
	cfg.Threads = []int{8}
	cfg.NArenas = 2 // few arenas + many goroutines forces cross-arena traffic
	tab, err := Steal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want uniform + skewed", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		allocs, err := strconv.Atoi(row[2])
		if err != nil || allocs == 0 {
			t.Fatalf("%s: alloc count %q", row[0], row[2])
		}
	}
	t.Log("\n" + tab.Format())
}
