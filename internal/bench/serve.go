package bench

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/client"
	"repro/internal/server"
	"repro/internal/trace"
)

// ServeBench closes the loop on the KV service: for each protection
// variant it starts an in-process sppserver on a loopback socket and
// drives it with a closed-loop load generator — C clients, each with
// its own connection, issuing a 50/50 get/put mix back-to-back — while
// sweeping C past the admission window. The table reports throughput,
// p50/p99 service latency and the shed rate per offered-load level:
// under saturation a healthy server sheds (shed%% rises) while served
// latency stays bounded, instead of queueing toward collapse.
func ServeBench(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	const (
		maxInFlight = 8
		maxQueue    = 8
		keySpace    = 1024
		// opCost emulates a heavier engine so the window saturates
		// within the swept client counts on any machine; raw loopback
		// round trips are too fast to ever queue 16 deep.
		opCost = 100 * time.Microsecond
	)
	// Each level runs to an op budget or a wall-clock deadline,
	// whichever comes first: the closed loop self-limits at low client
	// counts (1 client through a 100µs/op server tops out near 10
	// Kops/s), so a pure op budget would stretch the sweep unbounded.
	opsPerLevel := cfg.scaled(50_000)
	if opsPerLevel < 64 {
		opsPerLevel = 64
	}
	const levelDeadline = 3 * time.Second
	levels := []int{1, 4, 16, 64}

	traced := cfg.Knobs.TraceSample > 0
	t := Table{
		Title: fmt.Sprintf("KV service under closed-loop load: %d ops/level, window %d+%d queue, %v/op",
			opsPerLevel, maxInFlight, maxQueue, opCost),
		Columns: []string{"variant", "clients", "Kops/s", "p50 µs", "p99 µs", "shed %", "queue %", "exec %", "fence %"},
		Notes: []string{
			"closed loop: each client issues the next op as soon as the last returns",
			fmt.Sprintf("every op carries an emulated %v service cost inside the admission window", opCost),
			"shed = StatusOverloaded from admission control; the op never executed",
			"bounded backpressure: p99 of served ops stays flat past saturation while shed% absorbs the excess",
			"queue/exec/fence = sampled traces' share of service time in that phase (fence nests inside exec); needs -trace-sample",
		},
	}
	if !traced {
		t.Notes = append(t.Notes, "attribution columns empty: rerun with -trace-sample N to populate them")
	}

	variants := []struct{ name, protection string }{
		{"none", "none"},
		{"SPP", "spp"},
	}
	for _, v := range variants {
		srv, err := server.New(server.Config{
			Protection:  v.protection,
			PoolSize:    cfg.PoolSize,
			MaxInFlight: maxInFlight,
			MaxQueue:    maxQueue,
			OpCost:      opCost,
			Knobs:       cfg.Knobs,
		})
		if err != nil {
			return t, err
		}
		addr, err := srv.Listen("127.0.0.1:0")
		if err != nil {
			return t, err
		}
		if err := preloadServe(addr, keySpace); err != nil {
			srv.Close()
			return t, err
		}
		for _, clients := range levels {
			before := trace.Snapshot()
			r, err := serveLevel(addr, clients, opsPerLevel, keySpace, cfg.Seed, levelDeadline)
			if err != nil {
				srv.Close()
				return t, err
			}
			queuePct, execPct, fencePct := "-", "-", "-"
			if traced {
				if d := trace.Snapshot().Delta(before); d.Total > 0 {
					pct := func(p trace.Phase) string {
						return fmt.Sprintf("%.1f", 100*float64(d.Phase[p])/float64(d.Total))
					}
					queuePct, execPct, fencePct = pct(trace.PhaseQueue), pct(trace.PhaseExec), pct(trace.PhaseFence)
				}
			}
			t.Rows = append(t.Rows, []string{
				v.name,
				fmt.Sprintf("%d", clients),
				fmt.Sprintf("%.1f", throughput(r.served, r.wall)/1e3),
				fmt.Sprintf("%.0f", r.p50.Seconds()*1e6),
				fmt.Sprintf("%.0f", r.p99.Seconds()*1e6),
				fmt.Sprintf("%.1f", 100*float64(r.shed)/float64(r.served+r.shed)),
				queuePct, execPct, fencePct,
			})
		}
		if err := srv.Close(); err != nil {
			return t, err
		}
	}
	return t, nil
}

type serveResult struct {
	served, shed int
	wall         time.Duration
	p50, p99     time.Duration
}

// preloadServe populates the benchmark tenant so GETs hit live keys
// and the lazy tenant open happens outside the measured window.
func preloadServe(addr string, keySpace int) error {
	c, err := client.Dial(addr, "bench")
	if err != nil {
		return err
	}
	defer c.Close()
	value := make([]byte, 256)
	for i := 0; i < keySpace; i++ {
		if err := c.Put(serveKey(i), value); err != nil {
			return err
		}
	}
	return nil
}

func serveKey(i int) []byte { return []byte(fmt.Sprintf("%016d", i)) }

// serveLevel runs one closed-loop level: `clients` connections issue a
// 50/50 get/put mix until totalOps attempts are spent, recording
// per-op service latency for the served ops.
func serveLevel(addr string, clients, totalOps, keySpace int, seed int64, maxWall time.Duration) (serveResult, error) {
	perClient := totalOps / clients
	if perClient == 0 {
		perClient = 1
	}
	type clientResult struct {
		served, shed int
		lat          []time.Duration
		err          error
	}
	results := make([]clientResult, clients)
	value := make([]byte, 256)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(maxWall)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := &results[ci]
			c, err := client.Dial(addr, "bench")
			if err != nil {
				res.err = err
				return
			}
			defer c.Close()
			res.lat = make([]time.Duration, 0, perClient)
			rng := uint64(seed)*0x9e3779b97f4a7c15 + uint64(ci+1)
			for i := 0; i < perClient; i++ {
				if i%32 == 0 && time.Now().After(deadline) {
					return
				}
				rng ^= rng << 13
				rng ^= rng >> 7
				rng ^= rng << 17
				key := serveKey(int(rng % uint64(keySpace)))
				t0 := time.Now()
				if rng&1 == 0 {
					_, _, err = c.Get(key)
				} else {
					err = c.Put(key, value)
				}
				d := time.Since(t0)
				switch {
				case err == nil:
					res.served++
					res.lat = append(res.lat, d)
				case errors.Is(err, client.ErrOverloaded):
					res.shed++
				default:
					res.err = err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	out := serveResult{wall: time.Since(start)}
	var all []time.Duration
	for i := range results {
		if results[i].err != nil {
			return out, results[i].err
		}
		out.served += results[i].served
		out.shed += results[i].shed
		all = append(all, results[i].lat...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out.p50 = pickQuantile(all, 0.50)
	out.p99 = pickQuantile(all, 0.99)
	return out, nil
}

func pickQuantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
