package bench

import (
	"fmt"
	"time"

	"repro/internal/indices"
	"repro/internal/pmem"
	"repro/internal/pmemcheck"
	"repro/internal/pmemobj"
	"repro/internal/ripe"
	"repro/internal/variant"
)

// fig7Sizes is the object-size axis of Figure 7.
var fig7Sizes = []uint64{64, 256, 1024, 4096, 16384}

// Fig7 reproduces Figure 7: slowdown of SPP w.r.t. native PMDK for the
// atomic and transactional PM management operations across object
// sizes. Paper scale: 100K operations per point.
func Fig7(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(100_000)
	t := Table{
		Title:   fmt.Sprintf("Figure 7: PM management operations, %d ops, slowdown of SPP w.r.t. PMDK", n),
		Columns: []string{"operation", "64B", "256B", "1KB", "4KB", "16KB"},
	}
	type opFn func(env *variant.Env, size uint64, n int) (time.Duration, error)
	ops := []struct {
		name string
		fn   opFn
	}{
		{"atomic alloc", benchAtomicAlloc},
		{"transactional alloc", benchTxAlloc},
		{"atomic free", benchAtomicFree},
		{"transactional free", benchTxFree},
		{"atomic realloc", benchAtomicRealloc},
		{"transactional realloc", benchTxRealloc},
	}
	for _, op := range ops {
		row := []string{op.name}
		for _, size := range fig7Sizes {
			var durs [2]time.Duration
			for i, vk := range []variant.Kind{variant.PMDK, variant.SPP} {
				env, err := newEnv(vk, cfg, 0)
				if err != nil {
					return t, err
				}
				d, err := op.fn(env, size, n)
				if err != nil {
					return t, fmt.Errorf("%s/%s/%d: %w", op.name, vk, size, err)
				}
				durs[i] = d
			}
			row = append(row, fmt.Sprintf("%.2fx", float64(durs[1])/float64(durs[0])))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func benchAtomicAlloc(env *variant.Env, size uint64, n int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		oid, err := env.Pool.Alloc(size)
		if err != nil {
			return 0, err
		}
		if err := env.Pool.Free(oid); err != nil { // keep the heap from filling
			return 0, err
		}
	}
	return time.Since(start), nil
}

func benchTxAlloc(env *variant.Env, size uint64, n int) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < n; i++ {
		tx := env.Pool.Begin()
		oid, err := tx.Alloc(size)
		if err != nil {
			return 0, err
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
		if err := env.Pool.Free(oid); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func benchAtomicFree(env *variant.Env, size uint64, n int) (time.Duration, error) {
	oids := make([]pmemobj.Oid, n)
	for i := range oids {
		oid, err := env.Pool.Alloc(size)
		if err != nil {
			return 0, err
		}
		oids[i] = oid
	}
	start := time.Now()
	for _, oid := range oids {
		if err := env.Pool.Free(oid); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func benchTxFree(env *variant.Env, size uint64, n int) (time.Duration, error) {
	oids := make([]pmemobj.Oid, n)
	for i := range oids {
		oid, err := env.Pool.Alloc(size)
		if err != nil {
			return 0, err
		}
		oids[i] = oid
	}
	start := time.Now()
	for _, oid := range oids {
		tx := env.Pool.Begin()
		if err := tx.Free(oid); err != nil {
			return 0, err
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func benchAtomicRealloc(env *variant.Env, size uint64, n int) (time.Duration, error) {
	oid, err := env.Pool.Alloc(size)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		// Alternate between size and 2*size so every call moves.
		target := size
		if i%2 == 0 {
			target = size * 2
		}
		if oid, err = env.Pool.Realloc(oid, target); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

func benchTxRealloc(env *variant.Env, size uint64, n int) (time.Duration, error) {
	oid, err := env.Pool.Alloc(size)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		target := size
		if i%2 == 0 {
			target = size * 2
		}
		tx := env.Pool.Begin()
		newOid, err := tx.Realloc(oid, target)
		if err != nil {
			return 0, err
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
		oid = newOid
	}
	return time.Since(start), nil
}

// table2Counts is the snapshotted-PMEMoid axis of Table II at paper
// scale.
var table2Counts = []int{100, 1_000, 10_000, 100_000, 1_000_000}

// Table2 reproduces Table II: pool recovery time after a crash during
// a transaction that snapshotted N PMEMoids, PMDK vs SPP. SPP's undo
// entries are 24 bytes instead of 16, so its recovery replays more
// log data.
func Table2(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Title:   "Table II: recovery time (ms) vs snapshotted PMEMoids",
		Columns: []string{"variant"},
	}
	counts := make([]int, 0, len(table2Counts))
	for _, c := range table2Counts {
		n := int(float64(c) * cfg.Scale * 10) // recovery is cheap; scale less
		if n < 10 {
			n = 10
		}
		counts = append(counts, n)
		t.Columns = append(t.Columns, fmt.Sprintf("%d", n))
	}
	for _, vk := range []variant.Kind{variant.PMDK, variant.SPP} {
		row := []string{string(vk)}
		for _, count := range counts {
			ms, err := recoveryTime(vk, cfg, count)
			if err != nil {
				return t, fmt.Errorf("%s/%d: %w", vk, count, err)
			}
			row = append(row, fmt.Sprintf("%.3f", ms))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// recoveryTime sets up the Table II scenario and measures pool
// recovery in milliseconds.
func recoveryTime(vk variant.Kind, cfg Config, count int) (float64, error) {
	env, err := newEnv(vk, cfg, 0)
	if err != nil {
		return 0, err
	}
	pool := env.Pool
	oidSize := pool.OidPersistedSize()
	arr, err := pool.Alloc(uint64(count) * oidSize)
	if err != nil {
		return 0, err
	}
	member, err := pool.Alloc(64)
	if err != nil {
		return 0, err
	}
	for i := 0; i < count; i++ {
		pool.WriteOid(arr.Off+uint64(i)*oidSize, member)
	}
	// Snapshot every oid in one transaction, then crash before commit.
	tx := pool.Begin()
	for i := 0; i < count; i++ {
		if err := tx.AddRange(arr.Off+uint64(i)*oidSize, oidSize); err != nil {
			return 0, err
		}
	}
	if err := pool.Close(); err != nil {
		return 0, err
	}
	start := time.Now()
	if _, err := pmemobj.Open(env.Dev, nil, variant.DefaultBase); err != nil {
		return 0, err
	}
	return float64(time.Since(start).Microseconds()) / 1000, nil
}

// Table3 reproduces Table III: the PM space overhead of SPP for the
// four persistent indices after insert and get phases.
func Table3(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(1_000_000)
	keys := uniformKeys(n, cfg.Seed)
	t := Table{
		Title:   fmt.Sprintf("Table III: SPP PM space overhead, %d keys", n),
		Columns: []string{"index", "insert (MB)", "insert (%)", "get (MB)", "get (%)"},
	}
	for _, kind := range indices.Kinds {
		var usage [2][2]uint64 // variant × phase
		for vi, vk := range []variant.Kind{variant.PMDK, variant.SPP} {
			env, err := newEnv(vk, cfg, 0)
			if err != nil {
				return t, err
			}
			m, err := indices.New(kind, env.RT)
			if err != nil {
				return t, err
			}
			for _, k := range keys {
				if err := m.Insert(k, k); err != nil {
					return t, fmt.Errorf("%s/%s: %w", kind, vk, err)
				}
			}
			usage[vi][0] = env.Pool.Stats().AllocatedBytes
			for _, k := range keys {
				if _, _, err := m.Get(k); err != nil {
					return t, err
				}
			}
			usage[vi][1] = env.Pool.Stats().AllocatedBytes
		}
		row := []string{kind}
		for phase := 0; phase < 2; phase++ {
			base, spp := usage[0][phase], usage[1][phase]
			delta := int64(spp) - int64(base)
			row = append(row,
				fmt.Sprintf("%.1f", float64(delta)/(1<<20)),
				fmt.Sprintf("%.1f%%", 100*float64(delta)/float64(base)))
		}
		t.Rows = append(t.Rows, row)
	}
	// The paper's future-work layout (size packed into the offset
	// word) eliminates the overhead; demonstrate on the worst case.
	packed, err := indexUsage(variant.SPPPacked, cfg, "rtree", keys)
	if err != nil {
		return t, err
	}
	base, err := indexUsage(variant.PMDK, cfg, "rtree", keys)
	if err != nil {
		return t, err
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"packed-oid layout (paper §VI-C future work): rtree overhead %.1f%% (%d vs %d bytes)",
		100*float64(int64(packed)-int64(base))/float64(base), packed, base))
	return t, nil
}

// indexUsage measures pool usage after inserting keys into one index.
func indexUsage(vk variant.Kind, cfg Config, kind string, keys []uint64) (uint64, error) {
	env, err := newEnv(vk, cfg, 0)
	if err != nil {
		return 0, err
	}
	m, err := indices.New(kind, env.RT)
	if err != nil {
		return 0, err
	}
	for _, k := range keys {
		if err := m.Insert(k, k); err != nil {
			return 0, err
		}
	}
	return env.Pool.Stats().AllocatedBytes, nil
}

// Table4 reproduces Table IV: RIPE buffer-overflow attacks successful
// and prevented per protection mechanism.
func Table4(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	t := Table{
		Title:   fmt.Sprintf("Table IV: RIPE attacks (%d instances)", len(ripe.Matrix())),
		Columns: []string{"RIPE variant", "successful", "prevented"},
	}
	r := &ripe.Runner{}
	results, err := r.RunTable()
	if err != nil {
		return t, err
	}
	names := map[ripe.RowKind]string{
		ripe.VolatileHeap: "Volatile heap",
		ripe.PMPoolHeap:   "PM pool heap",
		ripe.RowSafePM:    "SafePM",
		ripe.RowSPP:       "SPP",
		ripe.RowMemcheck:  "memcheck",
	}
	for _, res := range results {
		t.Rows = append(t.Rows, []string{
			names[res.Row],
			fmt.Sprintf("%d", res.Successful),
			fmt.Sprintf("%d", res.Prevented),
		})
	}
	return t, nil
}

// CrashConsistency reproduces §VI-E: the pmemcheck protocol analysis
// and pmreorder-style crash-state exploration over the index
// workloads, under SPP.
func CrashConsistency(cfg Config) (Table, error) {
	cfg = cfg.withDefaults()
	n := cfg.scaled(10_000) / 10
	if n < 20 {
		n = 20
	}
	t := Table{
		Title:   fmt.Sprintf("§VI-E: crash consistency (pmemcheck + pmreorder), %d ops per index", n),
		Columns: []string{"index", "stores", "fences", "violations", "crash states", "result"},
	}
	for _, kind := range indices.Kinds {
		env, err := variant.New(variant.SPP, variant.Options{PoolSize: 64 << 20})
		if err != nil {
			return t, err
		}
		m, err := indices.New(kind, env.RT)
		if err != nil {
			return t, err
		}
		// Warm up, snapshot the base image, then record a window.
		for k := 1; k <= n/2; k++ {
			if err := m.Insert(uint64(k), uint64(k)); err != nil {
				return t, err
			}
		}
		base := make([]byte, env.Dev.Size())
		copy(base, env.Dev.Data())
		tracker := pmemcheck.NewTracker()
		env.Dev.EnableTracking(tracker)
		for k := n/2 + 1; k <= n; k++ {
			if err := m.Insert(uint64(k), uint64(k)); err != nil {
				return t, err
			}
		}
		for k := 1; k <= n/4; k++ {
			if _, err := m.Remove(uint64(k)); err != nil {
				return t, err
			}
		}
		env.Dev.DisableTracking()

		events := tracker.Events()
		rep := pmemcheck.Analyze(events)
		states, expErr := pmemcheck.Explore(base, events,
			pmemcheck.ExploreOptions{EveryNthFence: 16, MaxSingles: 2, MaxStates: 200},
			func(img []byte) error { return validateIndexImage(img, kind, n) })
		result := "PASS"
		if len(rep.Violations) > 0 || expErr != nil {
			result = fmt.Sprintf("FAIL (%v)", expErr)
		}
		t.Rows = append(t.Rows, []string{
			kind,
			fmt.Sprintf("%d", rep.Stores),
			fmt.Sprintf("%d", rep.Fences),
			fmt.Sprintf("%d", len(rep.Violations)),
			fmt.Sprintf("%d", states),
			result,
		})
	}
	return t, nil
}

// validateIndexImage recovers a pool from a crash image and validates
// the index structurally: reachable keys round-trip and match the
// stored count.
func validateIndexImage(img []byte, kind string, maxKey int) error {
	dev := pmem.NewPool("crash-image", uint64(len(img)))
	copy(dev.Data(), img)
	env, err := variant.Adopt(variant.SPP, dev)
	if err != nil {
		return err
	}
	m, err := indices.New(kind, env.RT)
	if err != nil {
		return fmt.Errorf("index open: %w", err)
	}
	want, err := m.Count()
	if err != nil {
		return err
	}
	var got uint64
	for k := 1; k <= maxKey; k++ {
		v, ok, err := m.Get(uint64(k))
		if err != nil {
			return fmt.Errorf("get(%d): %w", k, err)
		}
		if ok {
			got++
			if v != uint64(k) {
				return fmt.Errorf("key %d maps to %d", k, v)
			}
		}
	}
	if got != want {
		return fmt.Errorf("count %d but %d reachable", want, got)
	}
	return nil
}
