// Package pmaccess provides a sticky-error accessor over the
// instrumented PM interface. Application code (indices, the KV store,
// the Phoenix kernels) uses it to express pointer-chasing persistent
// data structures naturally: the first fault or sanitizer violation is
// recorded, subsequent operations become no-ops, and the error
// surfaces once at the operation boundary.
package pmaccess

import (
	"fmt"

	"repro/internal/hooks"
	"repro/internal/pmemobj"
	"repro/internal/trace"
)

// Ctx is the accessor. It is single-goroutine; create one per
// operation (or per exclusively-owned structure).
type Ctx struct {
	RT      hooks.Runtime
	Pool    *pmemobj.Pool
	SPP     bool
	Packed  bool
	OidSize int64

	// Trace, when set, is the sampled request this operation serves;
	// Run hands it to the transaction so the commit pipeline reports
	// per-stage durations against it.
	Trace *trace.Req

	err error
}

// New returns an accessor bound to the runtime.
func New(rt hooks.Runtime) *Ctx {
	pool := rt.Pool()
	return &Ctx{
		RT: rt, Pool: pool, SPP: pool.SPP(), Packed: pool.PackedOid(),
		OidSize: int64(pool.OidPersistedSize()),
	}
}

// Fail records err if no earlier error is pending.
func (c *Ctx) Fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Err returns the pending error without clearing it.
func (c *Ctx) Err() error { return c.err }

// Take returns and clears the pending error.
func (c *Ctx) Take() error {
	err := c.err
	c.err = nil
	return err
}

// Load reads a u64 field at p+off through the bounds check.
func (c *Ctx) Load(p uint64, off int64) uint64 {
	if c.err != nil {
		return 0
	}
	v, err := hooks.LoadU64(c.RT, c.RT.Gep(p, off))
	if err != nil {
		c.Fail(err)
		return 0
	}
	return v
}

// Store writes a u64 field at p+off through the bounds check.
func (c *Ctx) Store(p uint64, off int64, v uint64) {
	if c.err != nil {
		return
	}
	if err := hooks.StoreU64(c.RT, c.RT.Gep(p, off), v); err != nil {
		c.Fail(err)
	}
}

// LoadBytes reads n bytes at p+off through a memory-intrinsic check.
func (c *Ctx) LoadBytes(p uint64, off int64, n uint64) []byte {
	if c.err != nil {
		return nil
	}
	b, err := hooks.LoadBytes(c.RT, c.RT.Gep(p, off), n)
	if err != nil {
		c.Fail(err)
		return nil
	}
	return b
}

// StoreBytes writes b at p+off through a memory-intrinsic check.
func (c *Ctx) StoreBytes(p uint64, off int64, b []byte) {
	if c.err != nil {
		return
	}
	if err := hooks.StoreBytes(c.RT, c.RT.Gep(p, off), b); err != nil {
		c.Fail(err)
	}
}

// LoadOid reads a persisted oid embedded at p+off with a single
// bounds check covering the whole field — the bound-check preemption
// pattern (§IV-E): consecutive accesses to one small structure share
// one check and then use the masked pointer.
func (c *Ctx) LoadOid(p uint64, off int64) pmemobj.Oid {
	if c.err != nil {
		return pmemobj.OidNull
	}
	a, err := c.RT.Check(c.RT.Gep(p, off), uint64(c.OidSize))
	if err != nil {
		c.Fail(err)
		return pmemobj.OidNull
	}
	as := c.RT.Space()
	oid := pmemobj.Oid{}
	if oid.Pool, err = as.LoadU64(a); err != nil {
		c.Fail(err)
		return pmemobj.OidNull
	}
	if oid.Off, err = as.LoadU64(a + 8); err != nil {
		c.Fail(err)
		return pmemobj.OidNull
	}
	if c.Packed {
		oid.Off, oid.Size = c.Pool.UnpackOff(oid.Off)
	} else if c.SPP {
		if oid.Size, err = as.LoadU64(a + 16); err != nil {
			c.Fail(err)
			return pmemobj.OidNull
		}
	}
	return oid
}

// StoreOid writes a persisted oid at p+off under one merged bounds
// check, size field first (SPP's size-before-offset ordering for
// manual oid updates, §IV-F).
func (c *Ctx) StoreOid(p uint64, off int64, oid pmemobj.Oid) {
	if c.err != nil {
		return
	}
	a, err := c.RT.Check(c.RT.Gep(p, off), uint64(c.OidSize))
	if err != nil {
		c.Fail(err)
		return
	}
	as := c.RT.Space()
	if c.Packed {
		if err := as.StoreU64(a, oid.Pool); err != nil {
			c.Fail(err)
			return
		}
		if err := as.StoreU64(a+8, c.Pool.PackOff(oid.Off, oid.Size)); err != nil {
			c.Fail(err)
		}
		return
	}
	if c.SPP {
		if err := as.StoreU64(a+16, oid.Size); err != nil {
			c.Fail(err)
			return
		}
	}
	if err := as.StoreU64(a, oid.Pool); err != nil {
		c.Fail(err)
		return
	}
	if err := as.StoreU64(a+8, oid.Off); err != nil {
		c.Fail(err)
	}
}

// Direct converts an oid to a pointer.
func (c *Ctx) Direct(oid pmemobj.Oid) uint64 { return c.RT.Direct(oid) }

// Snapshot adds an object's whole range to the transaction undo log.
func (c *Ctx) Snapshot(tx *pmemobj.Tx, oid pmemobj.Oid, size uint64) {
	if c.err != nil {
		return
	}
	if err := tx.AddRange(oid.Off, size); err != nil {
		c.Fail(err)
	}
}

// SnapshotField adds a single embedded field to the undo log.
func (c *Ctx) SnapshotField(tx *pmemobj.Tx, oid pmemobj.Oid, fieldOff int64, size uint64) {
	if c.err != nil {
		return
	}
	if err := tx.AddRange(oid.Off+uint64(fieldOff), size); err != nil {
		c.Fail(err)
	}
}

// Run executes fn inside a transaction, committing on success and
// aborting when an error is pending.
func (c *Ctx) Run(fn func(tx *pmemobj.Tx)) error {
	tx := c.Pool.BeginTraced(c.Trace)
	fn(tx)
	if err := c.Take(); err != nil {
		if abortErr := tx.Abort(); abortErr != nil {
			return fmt.Errorf("%w (abort also failed: %v)", err, abortErr)
		}
		return err
	}
	return tx.Commit()
}
