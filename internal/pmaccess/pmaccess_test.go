package pmaccess

import (
	"errors"
	"testing"

	"repro/internal/hooks"
	"repro/internal/pmem"
	"repro/internal/pmemobj"
	"repro/internal/vmem"
)

func newCtx(t *testing.T, sppMode bool) (*Ctx, *pmemobj.Pool) {
	t.Helper()
	dev := pmem.NewPool("pmaccess-test", 16<<20)
	as := vmem.New()
	pool, err := pmemobj.Create(dev, as, 0x10000, pmemobj.Config{SPP: sppMode})
	if err != nil {
		t.Fatal(err)
	}
	var rt hooks.Runtime
	if sppMode {
		rt, err = hooks.NewSPP(pool, as)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		rt = hooks.NewNative(pool, as)
	}
	return New(rt), pool
}

func TestLoadStoreRoundTrip(t *testing.T) {
	c, _ := newCtx(t, true)
	oid, err := c.RT.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	p := c.Direct(oid)
	c.Store(p, 8, 0xabcd)
	if got := c.Load(p, 8); got != 0xabcd {
		t.Errorf("Load = %#x", got)
	}
	c.StoreBytes(p, 16, []byte("hello"))
	if got := c.LoadBytes(p, 16, 5); string(got) != "hello" {
		t.Errorf("LoadBytes = %q", got)
	}
	if err := c.Take(); err != nil {
		t.Fatal(err)
	}
}

func TestStickyError(t *testing.T) {
	c, _ := newCtx(t, true)
	oid, _ := c.RT.Alloc(8)
	p := c.Direct(oid)
	// Trip the bound.
	_ = c.Load(p, 8)
	if c.Err() == nil {
		t.Fatal("out-of-bounds load did not record an error")
	}
	// Everything after the first failure is a no-op.
	c.Store(p, 0, 1)
	if got := c.Load(p, 0); got != 0 {
		t.Errorf("post-error Load = %d, want 0", got)
	}
	if got := c.LoadOid(p, 0); got != pmemobj.OidNull {
		t.Errorf("post-error LoadOid = %v", got)
	}
	err := c.Take()
	if !hooks.IsSafetyTrap(err) {
		t.Errorf("Take = %v", err)
	}
	if c.Err() != nil {
		t.Error("Take did not clear the error")
	}
	// The context is usable again.
	c.Store(p, 0, 5)
	if got := c.Load(p, 0); got != 5 || c.Err() != nil {
		t.Errorf("recovered Load = %d, %v", got, c.Err())
	}
}

func TestOidRoundTripBothLayouts(t *testing.T) {
	for _, sppMode := range []bool{false, true} {
		c, pool := newCtx(t, sppMode)
		holder, err := c.RT.Alloc(2 * pool.OidPersistedSize())
		if err != nil {
			t.Fatal(err)
		}
		member, err := c.RT.Alloc(48)
		if err != nil {
			t.Fatal(err)
		}
		p := c.Direct(holder)
		c.StoreOid(p, 0, member)
		got := c.LoadOid(p, 0)
		if err := c.Take(); err != nil {
			t.Fatal(err)
		}
		if got.Off != member.Off || got.Pool != member.Pool {
			t.Errorf("spp=%v: LoadOid = %v, want %v", sppMode, got, member)
		}
		if sppMode && got.Size != 48 {
			t.Errorf("size field lost: %v", got)
		}
		if !sppMode && got.Size != 0 {
			t.Errorf("native layout read a size: %v", got)
		}
	}
}

func TestRunCommitAndAbort(t *testing.T) {
	c, pool := newCtx(t, true)
	oid, _ := c.RT.Alloc(64)
	p := c.Direct(oid)
	c.Store(p, 0, 1)
	if err := c.Take(); err != nil {
		t.Fatal(err)
	}
	pool.Device().Persist(oid.Off, 8)

	// A failing body aborts and restores the snapshot.
	sentinel := errors.New("boom")
	err := c.Run(func(tx *pmemobj.Tx) {
		c.Snapshot(tx, oid, 64)
		c.Store(c.Direct(oid), 0, 999)
		c.Fail(sentinel)
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run = %v", err)
	}
	if got := c.Load(p, 0); got != 1 || c.Take() != nil {
		t.Errorf("after aborted Run = %d", got)
	}

	// A clean body commits.
	err = c.Run(func(tx *pmemobj.Tx) {
		c.SnapshotField(tx, oid, 0, 8)
		c.Store(c.Direct(oid), 0, 2)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Load(p, 0); got != 2 {
		t.Errorf("after committed Run = %d", got)
	}
}
