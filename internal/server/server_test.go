package server

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/client"
	"repro/internal/engine"
	"repro/internal/pmem"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/wire"
)

// startServer builds, binds and (on cleanup) closes a server.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, addr
}

func dial(t *testing.T, addr, tenant string) *client.Client {
	t.Helper()
	c, err := client.Dial(addr, tenant)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// TestMultiTenantConcurrent drives several tenants from several
// concurrent clients each over a real socket and checks both the data
// and the isolation between tenant stores.
func TestMultiTenantConcurrent(t *testing.T) {
	_, addr := startServer(t, Config{Protection: "spp", PoolSize: 32 << 20})
	const (
		tenants    = 3
		perTenant  = 4 // concurrent clients per tenant
		keysPerCli = 40
	)
	var wg sync.WaitGroup
	errCh := make(chan error, tenants*perTenant)
	for ti := 0; ti < tenants; ti++ {
		for ci := 0; ci < perTenant; ci++ {
			wg.Add(1)
			go func(ti, ci int) {
				defer wg.Done()
				c, err := client.Dial(addr, fmt.Sprintf("tenant-%d", ti))
				if err != nil {
					errCh <- err
					return
				}
				defer c.Close()
				for k := 0; k < keysPerCli; k++ {
					key := []byte(fmt.Sprintf("c%d-k%d", ci, k))
					val := []byte(fmt.Sprintf("t%d/%d/%d", ti, ci, k))
					if err := c.Put(key, val); err != nil {
						errCh <- err
						return
					}
					got, ok, err := c.Get(key)
					if err != nil || !ok || !bytes.Equal(got, val) {
						errCh <- fmt.Errorf("get %s = %q, %v, %v", key, got, ok, err)
						return
					}
				}
			}(ti, ci)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	for ti := 0; ti < tenants; ti++ {
		c := dial(t, addr, fmt.Sprintf("tenant-%d", ti))
		n, err := c.Count()
		if err != nil {
			t.Fatal(err)
		}
		if want := uint64(perTenant * keysPerCli); n != want {
			t.Errorf("tenant-%d count = %d, want %d", ti, n, want)
		}
	}
	// Isolation: a key written only to tenant-0 is invisible elsewhere.
	c0, c1 := dial(t, addr, "tenant-0"), dial(t, addr, "tenant-1")
	if err := c0.Put([]byte("only-zero"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c1.Get([]byte("only-zero")); err != nil || ok {
		t.Errorf("tenant-1 sees tenant-0's key: ok=%v err=%v", ok, err)
	}
}

// TestScanEndToEnd drives OpScan over a real socket: ordering, bound
// handling, limits, and snapshot consistency against a concurrent
// writer hammering the same tenant.
func TestScanEndToEnd(t *testing.T) {
	_, addr := startServer(t, Config{Protection: "spp", PoolSize: 32 << 20})
	c := dial(t, addr, "t")
	const n = 50
	for i := 0; i < n; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := c.Scan(nil, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != n {
		t.Fatalf("full scan returned %d pairs, want %d", len(kvs), n)
	}
	for i, kv := range kvs {
		wantK := fmt.Sprintf("k-%03d", i)
		if string(kv.Key) != wantK || string(kv.Value) != fmt.Sprintf("v%d", i) {
			t.Fatalf("pair %d = %s=%s, want %s", i, kv.Key, kv.Value, wantK)
		}
	}
	kvs, err = c.Scan([]byte("k-010"), []byte("k-020"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 10 || string(kvs[0].Key) != "k-010" || string(kvs[9].Key) != "k-019" {
		t.Fatalf("bounded scan = %d pairs [%s..%s], want 10 [k-010..k-019]",
			len(kvs), kvs[0].Key, kvs[len(kvs)-1].Key)
	}
	if kvs, err = c.Scan(nil, nil, 7); err != nil || len(kvs) != 7 {
		t.Fatalf("limited scan = %d pairs, %v, want 7", len(kvs), err)
	}
	// Snapshot consistency under a write storm: every value a scan
	// returns must pair with its key's generation (gen stamped into all
	// keys before the value write completes would tear only if the scan
	// mixed versions across epochs for one key).
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := dial(t, addr, "t")
		for g := 1; ; g++ {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < n; i++ {
				if err := w.Put([]byte(fmt.Sprintf("k-%03d", i)), []byte(fmt.Sprintf("g%d", g))); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	for r := 0; r < 20; r++ {
		kvs, err := c.Scan(nil, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(kvs) != n {
			t.Fatalf("mid-storm scan %d returned %d pairs, want %d", r, len(kvs), n)
		}
		for i := 1; i < len(kvs); i++ {
			if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
				t.Fatalf("mid-storm scan %d unordered at %d: %s >= %s", r, i, kvs[i-1].Key, kvs[i].Key)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestMalformedFrameDropsConnection sends broken frames and checks the
// server rejects the stream, closes the connection, and keeps serving
// well-formed clients.
func TestMalformedFrameDropsConnection(t *testing.T) {
	_, addr := startServer(t, Config{Protection: "none"})
	for name, frame := range map[string][]byte{
		"garbage":         bytes.Repeat([]byte{0xee}, 16),
		"zero frame":      {0, 0, 0, 0},
		"oversize prefix": {0xff, 0xff, 0xff, 0xff},
		"bad op":          {0, 0, 0, 7, 99, 1, 't', 0, 0, 0, 1, 'k'},
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		// The server may answer with one StatusError frame; either way
		// the connection must reach EOF, not hang.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		resp, err := wire.ReadResponse(conn)
		if err == nil && resp.Status != wire.StatusError {
			t.Errorf("%s: response status %d, want StatusError or close", name, resp.Status)
		}
		if err == nil {
			if _, err = wire.ReadResponse(conn); err == nil {
				t.Errorf("%s: connection still open after malformed frame", name)
			}
		}
		conn.Close()
	}
	// The server is still healthy.
	c := dial(t, addr, "ok")
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("after malformed clients: %v", err)
	}
}

// TestInvalidTenantRejected checks tenant names that could escape the
// data directory are refused per-request, not fatally.
func TestInvalidTenantRejected(t *testing.T) {
	_, addr := startServer(t, Config{Protection: "none"})
	for _, tenant := range []string{"../evil", "a/b", "sp ace", "nul\x00"} {
		c := dial(t, addr, tenant)
		err := c.Put([]byte("k"), []byte("v"))
		var se *client.ServerError
		if !errors.As(err, &se) {
			t.Errorf("tenant %q: err = %v, want ServerError", tenant, err)
		}
	}
}

// TestBackpressureShed saturates a tiny admission window and checks
// the server sheds with StatusOverloaded quickly instead of queueing
// without bound: shed requests come back in far less time than the
// backlog would take to execute.
func TestBackpressureShed(t *testing.T) {
	const opDelay = 25 * time.Millisecond
	_, addr := startServer(t, Config{
		Protection:  "none",
		MaxInFlight: 2,
		MaxQueue:    2,
		OpCost:      opDelay,
	})

	const clients = 24
	var (
		wg            sync.WaitGroup
		shed, served  atomic64
		slowestShed   atomic64
		unexpectedErr atomic64
	)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := client.Dial(addr, "t")
			if err != nil {
				unexpectedErr.add(1)
				return
			}
			defer c.Close()
			t0 := time.Now()
			err = c.Put([]byte(fmt.Sprintf("k%d", i)), []byte("v"))
			elapsed := time.Since(t0)
			switch {
			case errors.Is(err, client.ErrOverloaded):
				shed.add(1)
				slowestShed.max(uint64(elapsed))
			case err == nil:
				served.add(1)
			default:
				unexpectedErr.add(1)
			}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)

	if unexpectedErr.load() != 0 {
		t.Fatalf("%d unexpected errors", unexpectedErr.load())
	}
	if shed.load() == 0 {
		t.Fatalf("no requests shed (served %d of %d through window 2+2)", served.load(), clients)
	}
	if served.load() == 0 {
		t.Fatal("every request shed; admission window never admitted")
	}
	// Bounded latency, not collapse: a shed answer must not wait out
	// the whole backlog. The backlog would take clients/2*opDelay to
	// drain serially through the window.
	backlog := time.Duration(clients/2) * opDelay
	if got := time.Duration(slowestShed.load()); got > backlog/2 {
		t.Errorf("slowest shed reply took %v; want well under backlog %v", got, backlog)
	}
	if wall > 2*backlog {
		t.Errorf("wall time %v suggests unbounded queueing (backlog %v)", wall, backlog)
	}
	t.Logf("served=%d shed=%d wall=%v slowest shed=%v",
		served.load(), shed.load(), wall, time.Duration(slowestShed.load()))
}

// TestTraceSmoke runs a fully sampled server under enough concurrency
// to make every phase real, then checks the three places traces land:
// the always-on phase totals (queue, exec and fence all accumulate and
// account for the end-to-end time), the slow-exemplar ring, and the
// /debug/slow HTTP surface.
func TestTraceSmoke(t *testing.T) {
	trace.ResetSlow()
	t.Cleanup(func() { trace.SetSlowThreshold(0); trace.ResetSlow() })
	before := trace.Snapshot()
	_, addr := startServer(t, Config{
		Protection:  "spp",
		PoolSize:    32 << 20,
		MaxInFlight: 2,
		MaxQueue:    32,
		OpCost:      2 * time.Millisecond, // every request clears the slow threshold
		Knobs:       engine.Knobs{TraceSample: 1, SlowTraceUS: 1000},
	})

	const clients, opsPerClient = 8, 8
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			c, err := client.Dial(addr, "t", client.WithTracing(1))
			if err != nil {
				errCh <- err
				return
			}
			defer c.Close()
			for i := 0; i < opsPerClient; i++ {
				if err := c.Put([]byte(fmt.Sprintf("c%d-k%d", ci, i)), []byte("v")); err != nil {
					errCh <- err
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	d := trace.Snapshot().Delta(before)
	if want := uint64(clients * opsPerClient); d.Count != want {
		t.Fatalf("traced %d requests, want %d (sampling 1-in-1 on both ends)", d.Count, want)
	}
	for _, p := range []trace.Phase{trace.PhaseQueue, trace.PhaseExec, trace.PhaseFence} {
		if d.Phase[p] == 0 {
			t.Errorf("phase %v accumulated nothing", p)
		}
	}
	// Queue and exec partition the traced interval: together they must
	// account for nearly all of the end-to-end time.
	if covered := d.Phase[trace.PhaseQueue] + d.Phase[trace.PhaseExec]; covered < d.Total*9/10 {
		t.Errorf("queue+exec = %v of %v total (< 90%%)",
			time.Duration(covered), time.Duration(d.Total))
	}

	exs := trace.SlowExemplars()
	if len(exs) == 0 {
		t.Fatal("no slow exemplars despite 2ms ops over a 1ms threshold")
	}
	if e := exs[0]; e.Tenant != "t" || e.Total < time.Millisecond {
		t.Errorf("exemplar = %+v", e)
	}

	// The exemplars are served on the shared debug surface.
	hsrv := httptest.NewServer(telemetry.Handler(telemetry.NewRegistry()))
	defer hsrv.Close()
	resp, err := http.Get(hsrv.URL + "/debug/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "tenant=t") {
		t.Errorf("/debug/slow missing exemplars:\n%s", body)
	}
}

// TestCrashRestartRecovery kills a server mid-life (no graceful close),
// reverts its tenant device to the durable image, restarts over the
// same device, and checks every acknowledged write survived.
func TestCrashRestartRecovery(t *testing.T) {
	for _, protection := range []string{"none", "spp"} {
		t.Run(protection, func(t *testing.T) {
			dev := pmem.NewPool("crash-tenant", 32<<20)
			fresh := true
			cfg := Config{
				Protection: protection,
				PoolSize:   32 << 20,
				OpenDevice: func(string) (*pmem.Pool, bool, error) { return dev, fresh, nil },
			}
			srv1, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			go srv1.Serve(ln) //nolint:errcheck // killed below
			c, err := client.Dial(ln.Addr().String(), "t")
			if err != nil {
				t.Fatal(err)
			}

			// Trigger the lazy tenant open, then arm crash tracking on
			// a quiescent device.
			if err := c.Put([]byte("pre"), []byte("x")); err != nil {
				t.Fatal(err)
			}
			dev.EnableTracking(nil)

			const acked = 100
			for i := 0; i < acked; i++ {
				key := []byte(fmt.Sprintf("k%04d", i))
				if err := c.Put(key, []byte(fmt.Sprintf("v%d", i))); err != nil {
					t.Fatalf("acked put %d: %v", i, err)
				}
			}

			// Hard kill: drop the listener and the connection, wait for
			// the handlers, never close the pool.
			c.Close()
			ln.Close()
			srv1.wg.Wait()
			if err := dev.Crash(); err != nil {
				t.Fatal(err)
			}
			dev.DisableTracking()

			// Restart over the same device: adoption must recover.
			fresh = false
			srv2, addr := startServer(t, cfg)
			_ = srv2
			c2 := dial(t, addr, "t")
			for i := 0; i < acked; i++ {
				key := []byte(fmt.Sprintf("k%04d", i))
				got, ok, err := c2.Get(key)
				if err != nil {
					t.Fatalf("get %s after crash: %v", key, err)
				}
				if !ok || !bytes.Equal(got, []byte(fmt.Sprintf("v%d", i))) {
					t.Fatalf("acked write lost: %s = %q, ok=%v", key, got, ok)
				}
			}
			n, err := c2.Count()
			if err != nil {
				t.Fatal(err)
			}
			if n < acked {
				t.Errorf("count after crash = %d, want >= %d", n, acked)
			}
		})
	}
}

// TestGracefulShutdownPersists round-trips tenants through DataDir:
// Close saves the pool images and a new server adopts them.
func TestGracefulShutdownPersists(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{Protection: "spp", PoolSize: 32 << 20, DataDir: dir}
	srv1, addr := startServer(t, cfg)
	c := dial(t, addr, "durable")
	for i := 0; i < 20; i++ {
		if err := c.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if err := srv1.Close(); err != nil {
		t.Fatal(err)
	}

	_, addr2 := startServer(t, cfg)
	c2 := dial(t, addr2, "durable")
	n, err := c2.Count()
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Errorf("count after restart = %d, want 20", n)
	}
	v, ok, err := c2.Get([]byte("k7"))
	if err != nil || !ok || string(v) != "v7" {
		t.Errorf("k7 after restart = %q, %v, %v", v, ok, err)
	}
}

// TestShutdownRejectsLateRequests checks a closed server refuses new
// connections rather than hanging them.
func TestShutdownRejectsLateRequests(t *testing.T) {
	srv, addr := startServer(t, Config{Protection: "none"})
	c := dial(t, addr, "t")
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := net.DialTimeout("tcp", addr, time.Second); err == nil {
		// A connect may race the close; a subsequent request must fail.
		c2, err := client.Dial(addr, "t")
		if err == nil {
			if err := c2.Put([]byte("k2"), []byte("v2")); err == nil {
				t.Error("request succeeded after Close")
			}
			c2.Close()
		}
	}
}

// atomic64 is a tiny test helper (max is not in sync/atomic).
type atomic64 struct {
	mu sync.Mutex
	v  uint64
}

func (a *atomic64) add(n uint64) { a.mu.Lock(); a.v += n; a.mu.Unlock() }
func (a *atomic64) load() uint64 { a.mu.Lock(); defer a.mu.Unlock(); return a.v }
func (a *atomic64) max(n uint64) {
	a.mu.Lock()
	if n > a.v {
		a.v = n
	}
	a.mu.Unlock()
}
