// Package server is the multi-tenant KV service: a TCP front end over
// per-tenant protected pools, speaking the length-prefixed protocol of
// internal/wire. Each connection gets a goroutine; each tenant gets
// its own pmem device, pool, protection runtime and kvstore, opened
// lazily on first use and recovered (not re-created) when the device
// already holds a pool image. Admission control bounds the work the
// commit pipeline sees: at most MaxInFlight requests execute at once,
// at most MaxQueue more may wait, and everything beyond that is shed
// with a distinct StatusOverloaded reply so clients can tell "retry
// later, never executed" from a failed operation. See DESIGN.md §15.
package server

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/hooks"
	"repro/internal/kvstore"
	"repro/internal/pmem"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/variant"
	"repro/internal/wire"
)

// Defaults.
const (
	DefaultPoolSize    = 64 << 20
	DefaultMaxInFlight = 64
	DefaultMaxTenants  = 64
)

// Config configures a Server. The zero value serves SPP-protected
// in-memory tenants with the defaults above.
type Config struct {
	// Protection selects the mechanism guarding every tenant pool:
	// "none" (or "pmdk"), "spp", "safepm", "memcheck". "spp" when
	// empty.
	Protection string
	// PoolSize is the per-tenant pool size in bytes.
	PoolSize uint64
	// TagBits is the SPP tag width (paper default when zero).
	TagBits uint
	// Shards is the kvstore shard count for newly created tenant
	// stores (0 = store default).
	Shards uint64
	// DataDir, when set, backs each tenant pool with
	// <DataDir>/<tenant>.pool: existing images are adopted through
	// recovery on open, and the working image is saved back on
	// graceful Close. Empty means volatile in-memory tenants.
	DataDir string
	// MaxInFlight bounds concurrently executing requests across all
	// connections (the admission window).
	MaxInFlight int
	// MaxQueue bounds requests waiting for the window; beyond it
	// requests are shed with StatusOverloaded. 2*MaxInFlight when
	// zero.
	MaxQueue int
	// MaxTenants bounds distinct tenants; beyond it opens fail.
	MaxTenants int
	// OpCost adds an artificial minimum service time to every executed
	// request (spent inside the admission window). Load experiments
	// and backpressure tests use it to emulate heavier engines so the
	// window saturates at modest client counts. Zero for production.
	OpCost time.Duration

	// Knobs are the engine knobs applied to every tenant environment
	// (the single definition; see internal/engine).
	engine.Knobs

	// OpenDevice overrides how a tenant's device is obtained: it
	// returns the device and whether it is fresh (fresh pools are
	// formatted; non-fresh ones are adopted through recovery). Tests
	// use it to inject tracked devices and crash images. When nil,
	// devices come from DataDir or memory per the fields above.
	OpenDevice func(tenant string) (dev *pmem.Pool, fresh bool, err error)
}

func (c Config) withDefaults() Config {
	if c.Protection == "" {
		c.Protection = "spp"
	}
	if c.PoolSize == 0 {
		c.PoolSize = DefaultPoolSize
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = DefaultMaxInFlight
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = DefaultMaxTenants
	}
	return c
}

func kindOf(protection string) (variant.Kind, error) {
	switch protection {
	case "none", "pmdk":
		return variant.PMDK, nil
	case "spp", "":
		return variant.SPP, nil
	case "safepm":
		return variant.SafePM, nil
	case "memcheck":
		return variant.Memcheck, nil
	}
	return "", fmt.Errorf("server: unknown protection %q", protection)
}

// Server metrics (the /metrics ops surface).
var (
	metRequests  = telemetry.Default.CounterVec("spp_server_requests_total", "requests executed per op", "op")
	metShed      = telemetry.Default.Counter("spp_server_shed_total", "requests shed by admission control")
	metMalformed = telemetry.Default.Counter("spp_server_malformed_total", "connections dropped on malformed frames")
	metOpErrors  = telemetry.Default.Counter("spp_server_op_errors_total", "requests answered with StatusError")
	metConns     = telemetry.Default.Gauge("spp_server_active_conns", "open client connections")
	metTenants   = telemetry.Default.Gauge("spp_server_tenants", "open tenant pools")
	metLatency   = telemetry.Default.HistogramBuckets("spp_server_request_ns",
		"request service time, admission wait included", telemetry.NSBuckets)
)

var opNames = map[byte]string{
	wire.OpGet: "get", wire.OpPut: "put", wire.OpDelete: "delete", wire.OpCount: "count",
	wire.OpScan: "scan",
}

// Server is a running KV service.
type Server struct {
	cfg  Config
	kind variant.Kind

	// sampler, when non-nil, traces 1 in cfg.TraceSample requests that
	// arrive without a client-minted trace context; client-sampled
	// requests are always traced.
	sampler *trace.Sampler

	ln      net.Listener
	sem     chan struct{}
	waiting atomic.Int64
	done    chan struct{}
	closing sync.Once
	wg      sync.WaitGroup

	mu      sync.Mutex
	tenants map[string]*tenant
	conns   map[net.Conn]struct{}
	closed  bool
}

type tenant struct {
	once  sync.Once
	env   *variant.Env
	store *kvstore.Store
	err   error
}

// New validates cfg and returns an unstarted server; follow with
// Listen or Serve.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	kind, err := kindOf(cfg.Protection)
	if err != nil {
		return nil, err
	}
	if cfg.Telemetry {
		telemetry.Enable()
	}
	if cfg.FlightRecorder {
		telemetry.Flight.Enable()
	}
	if cfg.MetricsSample > 0 {
		telemetry.SetHookSampling(cfg.MetricsSample)
	}
	if cfg.SlowTraceUS > 0 {
		trace.SetSlowThreshold(time.Duration(cfg.SlowTraceUS) * time.Microsecond)
	}
	var sampler *trace.Sampler
	if cfg.TraceSample > 0 {
		sampler = trace.NewSampler(cfg.TraceSample)
	}
	if cfg.DataDir != "" {
		if err := os.MkdirAll(cfg.DataDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: data dir: %w", err)
		}
	}
	return &Server{
		cfg:     cfg,
		kind:    kind,
		sampler: sampler,
		sem:     make(chan struct{}, cfg.MaxInFlight),
		done:    make(chan struct{}),
		tenants: make(map[string]*tenant),
		conns:   make(map[net.Conn]struct{}),
	}, nil
}

// Listen binds addr (e.g. "127.0.0.1:0") and serves it on a background
// goroutine, returning the bound address.
func (s *Server) Listen(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go s.Serve(ln) //nolint:errcheck // surfaced through Close
	return ln.Addr().String(), nil
}

// Serve accepts connections on ln until Close. It returns nil on
// graceful shutdown.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: closed")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.done:
				return nil
			default:
				return err
			}
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		metConns.Add(1)
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Addr returns the listener address ("" before Serve).
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// handle serves one connection: requests execute in order, one at a
// time, each passing through admission control.
func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		metConns.Add(-1)
		conn.Close()
	}()
	for {
		req, err := wire.ReadRequest(conn)
		if err != nil {
			if errors.Is(err, wire.ErrMalformed) {
				metMalformed.Inc()
				// Best-effort reject; the stream is unsynchronized, so
				// close regardless.
				_ = wire.WriteResponse(conn, wire.Response{
					Status: wire.StatusError, Payload: []byte(err.Error()),
				})
			}
			return // clean EOF, deadline from Close, or malformed
		}
		resp := s.dispatch(req)
		if err := wire.WriteResponse(conn, resp); err != nil {
			return
		}
		select {
		case <-s.done:
			return
		default:
		}
	}
}

// dispatch runs one request through admission control and the tenant
// store. A request sampled for tracing — by the client via the wire
// context, or by the server's own sampler when the client sent none —
// materializes a trace.Req and reports queue wait, execution, and (via
// the transaction it opens) the commit-pipeline stages.
func (s *Server) dispatch(req wire.Request) wire.Response {
	start := time.Now()
	tc := req.Trace
	if !tc.Sampled && s.sampler != nil {
		tc = s.sampler.Next()
	}
	var tr *trace.Req
	if tc.Sampled {
		tr = trace.Start(tc.ID, opNames[req.Op], req.Tenant)
	}
	qs := tr.Span(trace.PhaseQueue)
	if !s.admit() {
		metShed.Inc()
		tr.Drop() // never executed; keep it out of the attribution
		return wire.Response{Status: wire.StatusOverloaded}
	}
	qs.End()
	defer func() {
		<-s.sem
		metLatency.Observe(uint64(time.Since(start).Nanoseconds()))
		tr.Finish()
	}()
	metRequests.With(opNames[req.Op]).Inc()
	es := tr.Span(trace.PhaseExec)
	defer es.End()
	if s.cfg.OpCost > 0 {
		time.Sleep(s.cfg.OpCost)
	}
	st, err := s.tenantStore(req.Tenant)
	if err != nil {
		metOpErrors.Inc()
		return wire.Response{Status: wire.StatusError, Payload: []byte(err.Error())}
	}
	return execute(st, req, tr)
}

// admit implements the bounded window + bounded queue: a free window
// slot admits immediately; otherwise the request may wait only while
// fewer than MaxQueue others are waiting, and is shed past that.
func (s *Server) admit() bool {
	select {
	case s.sem <- struct{}{}:
		return true
	default:
	}
	if int(s.waiting.Add(1)) > s.cfg.MaxQueue {
		s.waiting.Add(-1)
		return false
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return true
	case <-s.done:
		return false
	}
}

// execute applies one admitted request to a tenant store. Safety traps
// surface as StatusError with the audit-grade message; the server
// keeps serving.
func execute(st *kvstore.Store, req wire.Request, tr *trace.Req) wire.Response {
	fail := func(err error) wire.Response {
		metOpErrors.Inc()
		if hooks.IsSafetyTrap(err) {
			err = fmt.Errorf("memory-safety violation: %w", err)
		}
		return wire.Response{Status: wire.StatusError, Payload: []byte(err.Error())}
	}
	switch req.Op {
	case wire.OpGet:
		v, ok, err := st.Get(req.Key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK, Payload: v}
	case wire.OpPut:
		if err := st.PutTraced(tr, req.Key, req.Value); err != nil {
			return fail(err)
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpDelete:
		ok, err := st.DeleteTraced(tr, req.Key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			return wire.Response{Status: wire.StatusNotFound}
		}
		return wire.Response{Status: wire.StatusOK}
	case wire.OpCount:
		n, err := st.Count()
		if err != nil {
			return fail(err)
		}
		return wire.Response{Status: wire.StatusOK, Payload: wire.Count(n)}
	case wire.OpScan:
		// The snapshot-backed scan stops at the client's limit or when
		// the next pair would overflow the response frame (one status
		// byte shares the payload budget), whichever comes first.
		budget := wire.MaxFrame - 1
		var payload []byte
		var n uint32
		err := st.Scan(req.Key, req.Hi, func(k, v []byte) bool {
			if wire.ScanPairSize(len(k), len(v)) > budget-len(payload) {
				return false
			}
			payload = wire.AppendScanPair(payload, k, v)
			n++
			return req.Limit == 0 || n < req.Limit
		})
		if err != nil {
			return fail(err)
		}
		return wire.Response{Status: wire.StatusOK, Payload: payload}
	}
	return fail(fmt.Errorf("server: unhandled op %d", req.Op))
}

// Close shuts the server down gracefully: stop accepting, nudge every
// blocked read so in-flight requests drain, wait for the handlers,
// then save (DataDir mode) and close every tenant pool.
func (s *Server) Close() error {
	var errs []error
	s.closing.Do(func() {
		close(s.done)
		s.mu.Lock()
		s.closed = true
		if s.ln != nil {
			errs = append(errs, s.ln.Close())
		}
		// Wake handlers parked in ReadRequest; handlers mid-request
		// finish and write their response first (the deadline only
		// fires on the next read).
		now := time.Now()
		for conn := range s.conns {
			_ = conn.SetReadDeadline(now)
		}
		s.mu.Unlock()
		s.wg.Wait()
		s.mu.Lock()
		defer s.mu.Unlock()
		for name, t := range s.tenants {
			if t.err != nil || t.env == nil {
				continue
			}
			if s.cfg.DataDir != "" && s.cfg.OpenDevice == nil {
				if err := t.env.Dev.SaveFile(s.tenantPath(name)); err != nil {
					errs = append(errs, err)
				}
			}
			if err := t.env.Pool.Close(); err != nil {
				errs = append(errs, err)
			}
			metTenants.Add(-1)
		}
		s.tenants = make(map[string]*tenant)
	})
	return errors.Join(errs...)
}

func (s *Server) tenantPath(name string) string {
	return filepath.Join(s.cfg.DataDir, name+".pool")
}

// validTenant keeps tenant names filesystem- and protocol-safe.
func validTenant(name string) bool {
	if name == "" || len(name) > wire.MaxTenantLen {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return !strings.Contains(name, "..")
}

// tenantStore returns the tenant's store, opening the tenant exactly
// once. A failed open is sticky for the tenant but does not poison the
// server.
func (s *Server) tenantStore(name string) (*kvstore.Store, error) {
	if !validTenant(name) {
		return nil, fmt.Errorf("server: invalid tenant name %q", name)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, errors.New("server: shutting down")
	}
	t, ok := s.tenants[name]
	if !ok {
		if len(s.tenants) >= s.cfg.MaxTenants {
			s.mu.Unlock()
			return nil, fmt.Errorf("server: tenant limit %d reached", s.cfg.MaxTenants)
		}
		t = &tenant{}
		s.tenants[name] = t
	}
	s.mu.Unlock()
	t.once.Do(func() { t.env, t.store, t.err = s.openTenant(name) })
	if t.err != nil {
		return nil, t.err
	}
	return t.store, nil
}

// openTenant builds the tenant's environment: a fresh device is
// formatted, an existing image is adopted through the recovery path
// (rebuilding shard locks and protection metadata from persistent
// state).
func (s *Server) openTenant(name string) (*variant.Env, *kvstore.Store, error) {
	dev, fresh, err := s.openDevice(name)
	if err != nil {
		return nil, nil, err
	}
	opts := variant.Options{
		PoolSize: s.cfg.PoolSize,
		TagBits:  s.cfg.TagBits,
		Knobs:    s.cfg.Knobs,
	}
	var env *variant.Env
	if fresh {
		env, err = variant.Format(s.kind, dev, opts)
	} else {
		env, err = variant.AdoptConfig(s.kind, dev, opts)
	}
	if err != nil {
		return nil, nil, fmt.Errorf("server: open tenant %q: %w", name, err)
	}
	st, err := kvstore.Open(env.RT, kvstore.WithShards(s.cfg.Shards))
	if err != nil {
		return nil, nil, fmt.Errorf("server: open tenant %q store: %w", name, err)
	}
	metTenants.Add(1)
	return env, st, nil
}

func (s *Server) openDevice(name string) (*pmem.Pool, bool, error) {
	if s.cfg.OpenDevice != nil {
		return s.cfg.OpenDevice(name)
	}
	if s.cfg.DataDir == "" {
		return pmem.NewPool("tenant:"+name, s.cfg.PoolSize), true, nil
	}
	path := s.tenantPath(name)
	_, statErr := os.Stat(path)
	dev, err := pmem.OpenFile(path, s.cfg.PoolSize)
	if err != nil {
		return nil, false, err
	}
	return dev, os.IsNotExist(statErr), nil
}
